#!/usr/bin/env python3
"""Perf-regression gate for the committed bench baselines.

Compares a freshly produced bench JSON against the baseline committed
under bench/baselines/, row by row.  Two kinds of checks run:

  * absolute floors — the properties a PR must never regress past
    (fusion >= 1.3x host speedup on memory-bound sizes, planner legs
    within 5% of the hand-written composites' host speedup with a
    simulated clock never above them, reduced simulated memory
    cycles/bytes, pinned trajectories; native fast path >= 5x on the hot
    Table II kernels);
  * relative-to-baseline — each row's speedup may not drop below
    (1 - tol) x its committed value.  Host timings on shared CI runners
    are noisy, so the default tolerance is generous; the floors do the
    hard gating.

Simulated quantities (cycles, bytes, iteration counts) are deterministic,
so those compare near-exactly; drift there means the pricing or the
solver trajectory changed and the baseline must be regenerated
deliberately (rerun the bench and commit the new JSON with the change
that explains it).

Usage:
  tools/check_bench.py fusion  BENCH_fusion.json  bench/baselines/BENCH_fusion.json
  tools/check_bench.py kernels BENCH_kernels.json bench/baselines/BENCH_kernels.json
  tools/check_bench.py rank_parallel BENCH_rank_parallel.json \
      bench/baselines/BENCH_rank_parallel.json
  tools/check_bench.py farm BENCH_farm.json bench/baselines/BENCH_farm.json
  tools/check_bench.py resilience BENCH_resilience.json \
      bench/baselines/BENCH_resilience.json

Conditional floors (rank_parallel, farm) carry an explicit per-row
"speedup_gate" marker — "enforced", "skipped" (host lacks the cores) or
"n/a" (not a gate row).  This checker re-derives what the marker *should*
be from the row's own host_cores, so a runner can neither silently skip a
floor it could have judged nor claim to have enforced one it couldn't.
Fusion rows carry the same idea as "plan_gate": "enforced" on rows large
enough for the planner host floor, "n/a" below it — re-derived here from
the row's own n.

rank_parallel rows are keyed by (threads, sched) — "sched" defaults to
"barrier" for pre-graph baselines — and graph-family rows ("graph",
"graph+affinity") additionally carry a "graph_floor" marker:
--host-sched graph must keep >= 95% of barrier's host throughput at the
same thread count whenever the runner has >= 2 cores.  "graph+affinity"
rows carry an "affinity_floor" marker with the same core condition (the
homing policy may never lose to the submitter-lane placement it
replaced, vs_graph >= 1.0) plus scheduler-counter keys (sched_tasks,
sched_chained, sched_steals, sched_affinity_hits, sched_combines) that
must be populated on every graph-family row — an all-zero counter block
means the run never actually went through the graph executor.

--subset (rank_parallel only) permits the current run's rows to be a
subset of the baseline's, for CI legs that re-run only a slice of the
thread sweep (e.g. a forced --threads 1,2 leg on a 2-core runner).
"""

import argparse
import json
import sys

# Deterministic fields drift only when code meaningfully changes; allow a
# hair of slack for platform libm differences in iteration counts.
SIM_REL_TOL = 0.02

# Host-speedup floors (mirror the in-binary gates).
FUSION_GATE_SIZE = 256
FUSION_GATE_SPEEDUP = 1.3
# Planner dispatch overhead allowance: --fuse plan must keep >= 95% of
# the hand-written --fuse on host speedup on gated rows.
FUSION_PLAN_KEEP = 0.95
KERNELS_GATE_N = 40000
KERNELS_GATE_SPEEDUP = 5.0
KERNELS_HOT = {"daxpy", "dprod", "matvec"}
RANK_PARALLEL_GATE_THREADS = 4
RANK_PARALLEL_GATE_SPEEDUP = 2.0
RANK_PARALLEL_GATE_RANKS = 16
# --host-sched graph must keep >= 95% of barrier's host throughput at the
# same thread count, judged only with >= 2 host cores (on one core the
# ratio is scheduling noise).
RANK_PARALLEL_GRAPH_FLOOR = 0.95
RANK_PARALLEL_GRAPH_CORES = 2
# graph+affinity must keep >= 1.0x of plain graph's host throughput at
# the same thread count (best-of-repeats; same >= 2-core condition).
RANK_PARALLEL_AFFINITY_FLOOR = 1.0
RANK_PARALLEL_SCHED_COUNTERS = ("sched_tasks", "sched_chained",
                                "sched_steals", "sched_affinity_hits",
                                "sched_combines")
FARM_GATE_JOBS = 8
FARM_GATE_SPEEDUP = 1.3
FARM_GATE_CORES = 2
# Resilience floors (mirror bench_resilience's in-binary gates).
GUARD_GATE_PCT = 5.0
GUARD_GATE_MIN_SECONDS = 0.05


def check_gate_marker(row, tag, expected, errors, field="speedup_gate"):
    """The marker in the JSON must match what the row's own data says it
    should be — a mismatch means the bench binary and this checker
    disagree about when the floor applies."""
    got = row.get(field, "<missing>")
    if got != expected:
        errors.append(
            f"{tag}: {field} is '{got}' but this row's own data says it "
            f"should be '{expected}'")
    return got == expected


def load(path):
    with open(path) as f:
        return json.load(f)


def index(rows, key_fields):
    out = {}
    for row in rows:
        out[tuple(row[k] for k in key_fields)] = row
    return out


def check_fusion(current, baseline, tol):
    errors = []
    cur = index(current, ("solver", "n", "vl_bits", "precond"))
    base = index(baseline, ("solver", "n", "vl_bits", "precond"))
    missing = set(base) - set(cur)
    if missing:
        errors.append(f"rows missing from current run: {sorted(missing)}")
    for key, row in sorted(cur.items()):
        tag = f"fusion {key[0]}/{key[1]}x{key[1]}@vl{key[2]}/{key[3]}"
        if not row["identical"]:
            errors.append(f"{tag}: fused trajectory diverged from unfused")
        if not row["plan_identical"]:
            errors.append(f"{tag}: planned trajectory diverged from unfused")
        if row["mem_cycles_fused"] >= row["mem_cycles_unfused"]:
            errors.append(f"{tag}: simulated memory cycles not reduced")
        if row["bytes_fused"] >= row["bytes_unfused"]:
            errors.append(f"{tag}: priced bytes not reduced")
        # The planner's simulated clock is deterministic and may never
        # exceed the hand-written composites' — it emits the same fused
        # groups, so this holds on every row.
        if row["sim_plan_s"] > row["sim_fused_s"]:
            errors.append(
                f"{tag}: planned simulated clock {row['sim_plan_s']} s "
                f"> hand-written {row['sim_fused_s']} s")
        gated = row["n"] >= FUSION_GATE_SIZE
        check_gate_marker(row, tag, "enforced" if gated else "n/a",
                          errors, field="plan_gate")
        if gated:
            if row["host_speedup"] < FUSION_GATE_SPEEDUP:
                errors.append(
                    f"{tag}: host speedup {row['host_speedup']:.2f} "
                    f"< floor {FUSION_GATE_SPEEDUP}")
            plan_floor = FUSION_PLAN_KEEP * row["host_speedup"]
            if row["plan_host_speedup"] < plan_floor:
                errors.append(
                    f"{tag}: planned host speedup "
                    f"{row['plan_host_speedup']:.2f} < "
                    f"{FUSION_PLAN_KEEP:.0%} of hand-written "
                    f"{row['host_speedup']:.2f}")
        ref = base.get(key)
        if ref is None:
            continue
        floor = ref["host_speedup"] * (1.0 - tol)
        if row["host_speedup"] < floor:
            errors.append(
                f"{tag}: host speedup {row['host_speedup']:.2f} < "
                f"baseline {ref['host_speedup']:.2f} - {tol:.0%}")
        plan_ref_floor = ref["plan_host_speedup"] * (1.0 - tol)
        if row["plan_host_speedup"] < plan_ref_floor:
            errors.append(
                f"{tag}: planned host speedup "
                f"{row['plan_host_speedup']:.2f} < baseline "
                f"{ref['plan_host_speedup']:.2f} - {tol:.0%}")
        for field in ("iters", "bytes_unfused", "bytes_fused",
                      "bytes_plan"):
            a, b = row[field], ref[field]
            if abs(a - b) > SIM_REL_TOL * max(abs(b), 1):
                errors.append(
                    f"{tag}: deterministic field '{field}' drifted "
                    f"({b} -> {a}); regenerate the baseline deliberately")
    return errors


def check_kernels(current, baseline, tol):
    errors = []
    cur = index(current, ("kernel", "n", "vl_bits"))
    base = index(baseline, ("kernel", "n", "vl_bits"))
    missing = set(base) - set(cur)
    if missing:
        errors.append(f"rows missing from current run: {sorted(missing)}")
    for key, row in sorted(cur.items()):
        kernel, n, vl = key
        tag = f"kernels {kernel}@n={n}/vl{vl}"
        if kernel in KERNELS_HOT and n >= KERNELS_GATE_N:
            if row["speedup"] < KERNELS_GATE_SPEEDUP:
                errors.append(
                    f"{tag}: native speedup {row['speedup']:.1f} "
                    f"< floor {KERNELS_GATE_SPEEDUP}")
        ref = base.get(key)
        if ref is None:
            continue
        floor = ref["speedup"] * (1.0 - tol)
        if row["speedup"] < floor:
            errors.append(
                f"{tag}: native speedup {row['speedup']:.1f} < "
                f"baseline {ref['speedup']:.1f} - {tol:.0%}")
    return errors


def check_rank_parallel(current, baseline, tol, subset=False):
    errors = []
    # Rows are keyed by (threads, sched); pre-graph baselines carry no
    # "sched" field and mean the barrier engine.
    def rp_key(row):
        return (row["threads"], row.get("sched", "barrier"))

    cur = {rp_key(r): r for r in current}
    base = {rp_key(r): r for r in baseline}
    missing = set(base) - set(cur)
    if missing and not subset:
        errors.append(f"rows missing from current run: {sorted(missing)}")
    for key, row in sorted(cur.items()):
        tag = f"rank_parallel threads={key[0]}/{key[1]}"
        # The engine's invariant: bit-identical fields and simulated clocks
        # at any host-thread count.
        if not row["identical"]:
            errors.append(f"{tag}: diverged from the serial baseline")
        # The in-binary floor, re-checked here, fires only when the runner
        # can physically deliver the parallelism; the row's marker must
        # agree with that derivation.
        if (row["threads"] >= RANK_PARALLEL_GATE_THREADS
                and row["ranks"] >= RANK_PARALLEL_GATE_RANKS):
            expected = ("enforced" if row["host_cores"] >= row["threads"]
                        else "skipped")
            check_gate_marker(row, tag, expected, errors)
            if (expected == "enforced"
                    and row["speedup"] < RANK_PARALLEL_GATE_SPEEDUP):
                errors.append(
                    f"{tag}: host speedup {row['speedup']:.2f} "
                    f"< floor {RANK_PARALLEL_GATE_SPEEDUP}")
        else:
            check_gate_marker(row, tag, "n/a", errors)
        # The graph-vs-barrier regression floor, re-derived from the row's
        # own host_cores: a graph-family row must keep >= 95% of its
        # barrier sibling's throughput whenever the host can actually
        # schedule.
        if key[1] != "barrier":
            expected = ("enforced"
                        if row["host_cores"] >= RANK_PARALLEL_GRAPH_CORES
                        else "skipped")
            check_gate_marker(row, tag, expected, errors,
                              field="graph_floor")
            if (expected == "enforced"
                    and row["vs_barrier"] < RANK_PARALLEL_GRAPH_FLOOR):
                errors.append(
                    f"{tag}: graph kept only {row['vs_barrier']:.2f}x of "
                    f"barrier's throughput, floor "
                    f"{RANK_PARALLEL_GRAPH_FLOOR}")
            # Scheduler counters must be present and populated: a
            # graph-family row that never executed graph tasks is
            # measuring the wrong engine.
            absent = [f for f in RANK_PARALLEL_SCHED_COUNTERS
                      if f not in row]
            if absent:
                errors.append(f"{tag}: missing scheduler counters "
                              f"{absent}")
            elif row["sched_tasks"] <= 0 or row["sched_chained"] <= 0:
                errors.append(
                    f"{tag}: scheduler counters not populated "
                    f"(tasks={row['sched_tasks']}, "
                    f"chained={row['sched_chained']})")
        # The affinity-vs-plain-graph floor, same >= 2-core condition:
        # homing may never lose to the submitter-lane placement.  With
        # >= 2 threads the affinity leg must also actually report
        # home-lane hits — chained tasks are homed whenever more than one
        # lane exists.
        if key[1] == "graph+affinity":
            expected = ("enforced"
                        if row["host_cores"] >= RANK_PARALLEL_GRAPH_CORES
                        else "skipped")
            check_gate_marker(row, tag, expected, errors,
                              field="affinity_floor")
            if (expected == "enforced"
                    and row["vs_graph"] < RANK_PARALLEL_AFFINITY_FLOOR):
                errors.append(
                    f"{tag}: graph+affinity kept only "
                    f"{row['vs_graph']:.2f}x of plain graph's throughput, "
                    f"floor {RANK_PARALLEL_AFFINITY_FLOOR}")
            if (row["threads"] >= 2
                    and row.get("sched_affinity_hits", 0) <= 0):
                errors.append(
                    f"{tag}: affinity leg reported no home-lane hits at "
                    f"{row['threads']} threads")
        ref = base.get(key)
        if ref is None:
            continue
        # The simulated clock is deterministic: drift means the pricing or
        # trajectory changed and the baseline must be regenerated.
        a, b = row["sim_elapsed_s"], ref["sim_elapsed_s"]
        if abs(a - b) > SIM_REL_TOL * max(abs(b), 1e-30):
            errors.append(
                f"{tag}: deterministic field 'sim_elapsed_s' drifted "
                f"({b} -> {a}); regenerate the baseline deliberately")
        # Host speedups only compare like-for-like core counts: CI runners
        # differ from the baseline machine.
        if row["host_cores"] == ref["host_cores"]:
            floor = ref["speedup"] * (1.0 - tol)
            if row["speedup"] < floor:
                errors.append(
                    f"{tag}: host speedup {row['speedup']:.2f} < "
                    f"baseline {ref['speedup']:.2f} - {tol:.0%}")
    return errors


def check_farm(current, baseline, tol):
    errors = []
    cur = index(current, ("jobs",))
    base = index(baseline, ("jobs",))
    missing = set(base) - set(cur)
    if missing:
        errors.append(f"rows missing from current run: {sorted(missing)}")
    for key, row in sorted(cur.items()):
        tag = f"farm jobs={key[0]}"
        # The farm's invariant: every farmed job is bit-identical to its
        # solo run (fields and simulated clocks), at every batch size.
        if not row["identical"]:
            errors.append(f"{tag}: a farmed job diverged from its solo run")
        # The throughput floor applies at >= 8 same-shape jobs, but only
        # when the host can actually run sessions concurrently.
        if row["jobs"] >= FARM_GATE_JOBS:
            expected = ("enforced" if row["host_cores"] >= FARM_GATE_CORES
                        else "skipped")
            check_gate_marker(row, tag, expected, errors)
            if expected == "enforced" and row["speedup"] < FARM_GATE_SPEEDUP:
                errors.append(
                    f"{tag}: farm speedup {row['speedup']:.2f} "
                    f"< floor {FARM_GATE_SPEEDUP}")
        else:
            check_gate_marker(row, tag, "n/a", errors)
        ref = base.get(key)
        if ref is None:
            continue
        # The simulated clock of a farmed job is deterministic: drift means
        # pricing or the solver trajectory changed, and the baseline must
        # be regenerated deliberately.
        a, b = row["sim_elapsed_s"], ref["sim_elapsed_s"]
        if abs(a - b) > SIM_REL_TOL * max(abs(b), 1e-30):
            errors.append(
                f"{tag}: deterministic field 'sim_elapsed_s' drifted "
                f"({b} -> {a}); regenerate the baseline deliberately")
        # Host throughput only compares like-for-like core counts.
        if row["host_cores"] == ref["host_cores"]:
            floor = ref["speedup"] * (1.0 - tol)
            if row["speedup"] < floor:
                errors.append(
                    f"{tag}: farm speedup {row['speedup']:.2f} < "
                    f"baseline {ref['speedup']:.2f} - {tol:.0%}")
    return errors


def check_resilience(current, baseline, tol):
    del tol  # no host-speedup ratio to relax; floors + exact fields only
    errors = []
    cur = index(current, ("kind",))
    base = index(baseline, ("kind",))
    missing = set(base) - set(cur)
    if missing:
        errors.append(f"rows missing from current run: {sorted(missing)}")

    guard = cur.get(("guard",))
    if guard is not None:
        tag = f"resilience guard {guard['nx1']}x{guard['nx2']}"
        # Guards are host-only and unpriced: a guarded run must be
        # bit-identical to an unguarded one.
        if not guard["identical"]:
            errors.append(f"{tag}: --guard on perturbed fields or clocks")
        # The 5% floor is judged only when the unguarded run is long
        # enough to time; the marker must agree with the row's own
        # plain_seconds, so a runner can't skip a floor it could judge.
        expected = ("enforced"
                    if guard["plain_seconds"] >= GUARD_GATE_MIN_SECONDS
                    else "skipped")
        check_gate_marker(guard, tag, expected, errors,
                          field="overhead_gate")
        if expected == "enforced" and guard["overhead_pct"] > GUARD_GATE_PCT:
            errors.append(
                f"{tag}: guard overhead {guard['overhead_pct']:.2f}% "
                f"> floor {GUARD_GATE_PCT}%")

    retry = cur.get(("retry",))
    if retry is not None:
        tag = "resilience retry"
        if not retry["recovered_identical"]:
            errors.append(
                f"{tag}: retried job diverged from its fault-free run")
        # Driven steps are deterministic (pure scheduler arithmetic): the
        # checkpoint resume must beat restart-from-scratch, and both
        # counts must match the committed baseline exactly.
        if retry["driven_ckpt"] >= retry["driven_scratch"]:
            errors.append(
                f"{tag}: checkpoint resume drove {retry['driven_ckpt']} "
                f"steps, not fewer than from-scratch's "
                f"{retry['driven_scratch']}")
        ref = base.get(("retry",))
        if ref is not None:
            for field in ("driven_ckpt", "driven_scratch", "steps",
                          "fault_step", "checkpoint_every"):
                if retry[field] != ref[field]:
                    errors.append(
                        f"{tag}: deterministic field '{field}' drifted "
                        f"({ref[field]} -> {retry[field]}); regenerate "
                        f"the baseline deliberately")
    return errors


CHECKS = {
    "fusion": check_fusion,
    "kernels": check_kernels,
    "rank_parallel": check_rank_parallel,
    "farm": check_farm,
    "resilience": check_resilience,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("kind", choices=tuple(CHECKS))
    ap.add_argument("current", help="freshly produced bench JSON")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--tol", type=float, default=0.35,
                    help="relative host-speedup tolerance vs baseline "
                         "(default 0.35 — CI runners are noisy; the "
                         "absolute floors do the hard gating)")
    ap.add_argument("--subset", action="store_true",
                    help="permit the current rows to be a subset of the "
                         "baseline's (rank_parallel only; for CI legs "
                         "that re-run a slice of the thread sweep)")
    args = ap.parse_args()

    if args.subset and args.kind != "rank_parallel":
        ap.error("--subset is only supported for rank_parallel")
    kwargs = {"subset": True} if args.subset else {}
    errors = CHECKS[args.kind](load(args.current), load(args.baseline),
                               args.tol, **kwargs)
    if errors:
        print(f"check_bench: {len(errors)} regression(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"check_bench: {args.kind} OK "
          f"({args.current} vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
