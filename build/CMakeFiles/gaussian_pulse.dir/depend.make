# Empty dependencies file for gaussian_pulse.
# This may be replaced when dependencies are built.
