file(REMOVE_RECURSE
  "CMakeFiles/gaussian_pulse.dir/examples/gaussian_pulse.cpp.o"
  "CMakeFiles/gaussian_pulse.dir/examples/gaussian_pulse.cpp.o.d"
  "gaussian_pulse"
  "gaussian_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaussian_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
