# Empty dependencies file for test_rad.
# This may be replaced when dependencies are built.
