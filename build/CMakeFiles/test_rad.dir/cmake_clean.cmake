file(REMOVE_RECURSE
  "CMakeFiles/test_rad.dir/tests/test_rad.cpp.o"
  "CMakeFiles/test_rad.dir/tests/test_rad.cpp.o.d"
  "test_rad"
  "test_rad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
