file(REMOVE_RECURSE
  "CMakeFiles/sedov_radhydro.dir/examples/sedov_radhydro.cpp.o"
  "CMakeFiles/sedov_radhydro.dir/examples/sedov_radhydro.cpp.o.d"
  "sedov_radhydro"
  "sedov_radhydro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedov_radhydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
