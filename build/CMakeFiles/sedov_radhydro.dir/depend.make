# Empty dependencies file for sedov_radhydro.
# This may be replaced when dependencies are built.
