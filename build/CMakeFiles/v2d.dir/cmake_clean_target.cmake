file(REMOVE_RECURSE
  "libv2d.a"
)
