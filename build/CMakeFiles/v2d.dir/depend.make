# Empty dependencies file for v2d.
# This may be replaced when dependencies are built.
