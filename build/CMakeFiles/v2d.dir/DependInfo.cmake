
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/profile.cpp" "CMakeFiles/v2d.dir/src/compiler/profile.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/compiler/profile.cpp.o.d"
  "/root/repo/src/core/config.cpp" "CMakeFiles/v2d.dir/src/core/config.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/core/config.cpp.o.d"
  "/root/repo/src/core/v2d.cpp" "CMakeFiles/v2d.dir/src/core/v2d.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/core/v2d.cpp.o.d"
  "/root/repo/src/grid/dist_field.cpp" "CMakeFiles/v2d.dir/src/grid/dist_field.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/grid/dist_field.cpp.o.d"
  "/root/repo/src/hydro/coupling.cpp" "CMakeFiles/v2d.dir/src/hydro/coupling.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/hydro/coupling.cpp.o.d"
  "/root/repo/src/hydro/euler.cpp" "CMakeFiles/v2d.dir/src/hydro/euler.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/hydro/euler.cpp.o.d"
  "/root/repo/src/hydro/setups.cpp" "CMakeFiles/v2d.dir/src/hydro/setups.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/hydro/setups.cpp.o.d"
  "/root/repo/src/io/h5lite.cpp" "CMakeFiles/v2d.dir/src/io/h5lite.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/io/h5lite.cpp.o.d"
  "/root/repo/src/linalg/banded.cpp" "CMakeFiles/v2d.dir/src/linalg/banded.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/banded.cpp.o.d"
  "/root/repo/src/linalg/bicgstab.cpp" "CMakeFiles/v2d.dir/src/linalg/bicgstab.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/bicgstab.cpp.o.d"
  "/root/repo/src/linalg/cg.cpp" "CMakeFiles/v2d.dir/src/linalg/cg.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/cg.cpp.o.d"
  "/root/repo/src/linalg/dist_vector.cpp" "CMakeFiles/v2d.dir/src/linalg/dist_vector.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/dist_vector.cpp.o.d"
  "/root/repo/src/linalg/kernels.cpp" "CMakeFiles/v2d.dir/src/linalg/kernels.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/kernels.cpp.o.d"
  "/root/repo/src/linalg/mg/hierarchy.cpp" "CMakeFiles/v2d.dir/src/linalg/mg/hierarchy.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/mg/hierarchy.cpp.o.d"
  "/root/repo/src/linalg/mg/mg_precond.cpp" "CMakeFiles/v2d.dir/src/linalg/mg/mg_precond.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/mg/mg_precond.cpp.o.d"
  "/root/repo/src/linalg/mg/smoother.cpp" "CMakeFiles/v2d.dir/src/linalg/mg/smoother.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/mg/smoother.cpp.o.d"
  "/root/repo/src/linalg/mg/transfer.cpp" "CMakeFiles/v2d.dir/src/linalg/mg/transfer.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/mg/transfer.cpp.o.d"
  "/root/repo/src/linalg/precond.cpp" "CMakeFiles/v2d.dir/src/linalg/precond.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/precond.cpp.o.d"
  "/root/repo/src/linalg/stencil_op.cpp" "CMakeFiles/v2d.dir/src/linalg/stencil_op.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/linalg/stencil_op.cpp.o.d"
  "/root/repo/src/mpisim/exec_model.cpp" "CMakeFiles/v2d.dir/src/mpisim/exec_model.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/mpisim/exec_model.cpp.o.d"
  "/root/repo/src/mpisim/msgqueue.cpp" "CMakeFiles/v2d.dir/src/mpisim/msgqueue.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/mpisim/msgqueue.cpp.o.d"
  "/root/repo/src/mpisim/netcost.cpp" "CMakeFiles/v2d.dir/src/mpisim/netcost.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/mpisim/netcost.cpp.o.d"
  "/root/repo/src/perfmon/papi.cpp" "CMakeFiles/v2d.dir/src/perfmon/papi.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/perfmon/papi.cpp.o.d"
  "/root/repo/src/perfmon/perf_stat.cpp" "CMakeFiles/v2d.dir/src/perfmon/perf_stat.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/perfmon/perf_stat.cpp.o.d"
  "/root/repo/src/perfmon/profiler.cpp" "CMakeFiles/v2d.dir/src/perfmon/profiler.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/perfmon/profiler.cpp.o.d"
  "/root/repo/src/rad/fld.cpp" "CMakeFiles/v2d.dir/src/rad/fld.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/rad/fld.cpp.o.d"
  "/root/repo/src/rad/gaussian.cpp" "CMakeFiles/v2d.dir/src/rad/gaussian.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/rad/gaussian.cpp.o.d"
  "/root/repo/src/rad/limiter.cpp" "CMakeFiles/v2d.dir/src/rad/limiter.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/rad/limiter.cpp.o.d"
  "/root/repo/src/rad/radstep.cpp" "CMakeFiles/v2d.dir/src/rad/radstep.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/rad/radstep.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "CMakeFiles/v2d.dir/src/sim/cache.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/sim/cache.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "CMakeFiles/v2d.dir/src/sim/cost_model.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/ledger.cpp" "CMakeFiles/v2d.dir/src/sim/ledger.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/sim/ledger.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "CMakeFiles/v2d.dir/src/sim/machine.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/sim/machine.cpp.o.d"
  "/root/repo/src/support/log.cpp" "CMakeFiles/v2d.dir/src/support/log.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/support/log.cpp.o.d"
  "/root/repo/src/support/options.cpp" "CMakeFiles/v2d.dir/src/support/options.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/support/options.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/v2d.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/support/table.cpp.o.d"
  "/root/repo/src/support/units.cpp" "CMakeFiles/v2d.dir/src/support/units.cpp.o" "gcc" "CMakeFiles/v2d.dir/src/support/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
