# Empty dependencies file for test_mg.
# This may be replaced when dependencies are built.
