file(REMOVE_RECURSE
  "CMakeFiles/test_mg.dir/tests/test_mg.cpp.o"
  "CMakeFiles/test_mg.dir/tests/test_mg.cpp.o.d"
  "test_mg"
  "test_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
