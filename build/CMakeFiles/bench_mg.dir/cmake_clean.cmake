file(REMOVE_RECURSE
  "CMakeFiles/bench_mg.dir/bench/bench_mg.cpp.o"
  "CMakeFiles/bench_mg.dir/bench/bench_mg.cpp.o.d"
  "bench_mg"
  "bench_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
