# Empty dependencies file for bench_mg.
# This may be replaced when dependencies are built.
