file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_kernels.dir/tests/test_linalg_kernels.cpp.o"
  "CMakeFiles/test_linalg_kernels.dir/tests/test_linalg_kernels.cpp.o.d"
  "test_linalg_kernels"
  "test_linalg_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
