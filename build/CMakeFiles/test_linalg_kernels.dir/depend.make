# Empty dependencies file for test_linalg_kernels.
# This may be replaced when dependencies are built.
