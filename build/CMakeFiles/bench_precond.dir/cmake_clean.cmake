file(REMOVE_RECURSE
  "CMakeFiles/bench_precond.dir/bench/bench_precond.cpp.o"
  "CMakeFiles/bench_precond.dir/bench/bench_precond.cpp.o.d"
  "bench_precond"
  "bench_precond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
