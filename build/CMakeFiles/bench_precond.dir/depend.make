# Empty dependencies file for bench_precond.
# This may be replaced when dependencies are built.
