# Empty dependencies file for test_linalg_solvers.
# This may be replaced when dependencies are built.
