file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_solvers.dir/tests/test_linalg_solvers.cpp.o"
  "CMakeFiles/test_linalg_solvers.dir/tests/test_linalg_solvers.cpp.o.d"
  "test_linalg_solvers"
  "test_linalg_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
