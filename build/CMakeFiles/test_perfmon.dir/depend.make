# Empty dependencies file for test_perfmon.
# This may be replaced when dependencies are built.
