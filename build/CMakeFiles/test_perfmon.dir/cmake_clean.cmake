file(REMOVE_RECURSE
  "CMakeFiles/test_perfmon.dir/tests/test_perfmon.cpp.o"
  "CMakeFiles/test_perfmon.dir/tests/test_perfmon.cpp.o.d"
  "test_perfmon"
  "test_perfmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
