# Empty dependencies file for bench_ganged.
# This may be replaced when dependencies are built.
