file(REMOVE_RECURSE
  "CMakeFiles/bench_ganged.dir/bench/bench_ganged.cpp.o"
  "CMakeFiles/bench_ganged.dir/bench/bench_ganged.cpp.o.d"
  "bench_ganged"
  "bench_ganged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ganged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
