# Empty dependencies file for bench_kernels_native.
# This may be replaced when dependencies are built.
