file(REMOVE_RECURSE
  "CMakeFiles/bench_kernels_native.dir/bench/bench_kernels_native.cpp.o"
  "CMakeFiles/bench_kernels_native.dir/bench/bench_kernels_native.cpp.o.d"
  "bench_kernels_native"
  "bench_kernels_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernels_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
