# Empty dependencies file for test_vla.
# This may be replaced when dependencies are built.
