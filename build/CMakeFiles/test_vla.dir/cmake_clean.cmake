file(REMOVE_RECURSE
  "CMakeFiles/test_vla.dir/tests/test_vla.cpp.o"
  "CMakeFiles/test_vla.dir/tests/test_vla.cpp.o.d"
  "test_vla"
  "test_vla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
