file(REMOVE_RECURSE
  "CMakeFiles/sve_explorer.dir/examples/sve_explorer.cpp.o"
  "CMakeFiles/sve_explorer.dir/examples/sve_explorer.cpp.o.d"
  "sve_explorer"
  "sve_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sve_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
