# Empty dependencies file for sve_explorer.
# This may be replaced when dependencies are built.
