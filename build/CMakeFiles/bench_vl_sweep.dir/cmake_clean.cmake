file(REMOVE_RECURSE
  "CMakeFiles/bench_vl_sweep.dir/bench/bench_vl_sweep.cpp.o"
  "CMakeFiles/bench_vl_sweep.dir/bench/bench_vl_sweep.cpp.o.d"
  "bench_vl_sweep"
  "bench_vl_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vl_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
