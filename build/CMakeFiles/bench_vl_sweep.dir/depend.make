# Empty dependencies file for bench_vl_sweep.
# This may be replaced when dependencies are built.
