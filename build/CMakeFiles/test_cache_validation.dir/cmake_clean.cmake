file(REMOVE_RECURSE
  "CMakeFiles/test_cache_validation.dir/tests/test_cache_validation.cpp.o"
  "CMakeFiles/test_cache_validation.dir/tests/test_cache_validation.cpp.o.d"
  "test_cache_validation"
  "test_cache_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
