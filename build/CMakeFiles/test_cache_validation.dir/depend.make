# Empty dependencies file for test_cache_validation.
# This may be replaced when dependencies are built.
