/// \file quickstart.cpp
/// \brief Smallest complete use of the v2dsve public API.
///
/// Solves one V2D radiation system on a small grid under two simulated
/// compiler configurations and prints what the study would measure: the
/// simulated times, the solver statistics, and where the time went.
///
///   ./quickstart [--nx1 64 --nx2 32 --steps 5 ...]
///
/// Try `--precond mg` to swap the SPAI preconditioner for the geometric
/// multigrid V-cycle (tune with --mg-smoother, --mg-nu-pre, ...).

#include <iostream>

#include "core/v2d.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  core::RunConfig::register_options(opt);
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("quickstart");
    return 1;
  }

  core::RunConfig cfg = core::RunConfig::from_options(opt);
  // Quickstart defaults: a small fast problem unless the user overrides.
  if (!opt.was_set("nx1")) cfg.nx1 = 64;
  if (!opt.was_set("nx2")) cfg.nx2 = 32;
  if (!opt.was_set("steps")) cfg.steps = 5;
  if (!opt.was_set("compilers")) cfg.compilers = {"cray", "cray-noopt"};

  core::Simulation sim(cfg);
  std::cout << "v2dsve quickstart: " << cfg.nx1 << "x" << cfg.nx2 << "x"
            << cfg.ns << " unknowns, " << cfg.steps << " steps, "
            << cfg.nranks() << " simulated rank(s)\n\n";

  for (int s = 0; s < cfg.steps; ++s) {
    const auto stats = sim.advance();
    std::cout << "step " << sim.steps_taken() << ": iterations per solve =";
    for (const auto& sv : stats.solves) std::cout << ' ' << sv.iterations;
    std::cout << (stats.all_converged() ? "  (converged)" : "  (FAILED)")
              << '\n';
  }

  std::cout << "\ntotal radiation energy: " << sim.total_energy() << '\n';

  TableWriter table("\nSimulated time by compiler profile");
  table.set_columns({"profile", "SVE", "time (s)"});
  for (std::size_t p = 0; p < sim.exec().nprofiles(); ++p) {
    const auto& prof = sim.exec().profile(p);
    table.add_row({prof.name(),
                   prof.mode() == sim::ExecMode::SVE ? "yes" : "no",
                   TableWriter::num(sim.elapsed(p), 3)});
  }
  std::cout << table.str();

  std::cout << "\nTAU-style profile (" << sim.exec().profile(0).name()
            << "):\n"
            << sim.profiler(0).report();
  return 0;
}
