/// \file sve_explorer.cpp
/// \brief Interactive-ish playground for the SVE cost model.
///
/// Pick a kernel, a vector length, a compiler and a working-set size and
/// see exactly how the machine model prices it: recorded instruction mix,
/// port pressure, compute-vs-memory rooflines and the resulting SVE /
/// no-SVE ratio.  Useful for understanding *why* Table II looks the way
/// it does.
///
///   ./sve_explorer --kernel matvec --bits 512 --compiler cray --n 1000

#include <iostream>

#include "compiler/profile.hpp"
#include "linalg/kernels.hpp"
#include "linalg/stencil_op.hpp"
#include "sim/cost_model.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace v2d;

sim::KernelCounts record_kernel(const std::string& kernel, unsigned bits,
                                std::size_t n) {
  vla::Context ctx{vla::VectorArch(bits)};
  Rng rng(1);
  std::vector<double> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0.5, 1.5);
    y[i] = rng.uniform(0.5, 1.5);
    z[i] = rng.uniform(0.5, 1.5);
  }
  if (kernel == "dprod") {
    (void)linalg::dprod(ctx, x, y);
  } else if (kernel == "daxpy") {
    linalg::daxpy(ctx, 1.5, x, y);
  } else if (kernel == "dscal") {
    linalg::dscal(ctx, 0.75, 1.5, y);
  } else if (kernel == "ddaxpy") {
    linalg::ddaxpy(ctx, 1.5, x, 0.5, y, z);
  } else if (kernel == "matvec") {
    // One stencil row per n elements plus the V2D evaluation overhead.
    std::vector<double> xg(n + 2, 1.0);
    linalg::stencil_row(ctx, x, y, z, x, y, xg.data() + 1, x.data(), y.data(),
                        z);
    ctx.record_external(sim::OpClass::LoadContig,
                        n * linalg::kMatvecEvalDoublesRead,
                        n * linalg::kMatvecEvalDoublesRead * 8, 0);
    ctx.record_external(sim::OpClass::FlopFma,
                        n * linalg::kMatvecEvalFlops / 2, 0, 0);
  } else {
    throw Error("unknown kernel '" + kernel +
                "' (matvec|dprod|daxpy|dscal|ddaxpy)");
  }
  return ctx.take_counts();
}

compiler::KernelFamily family_of(const std::string& kernel) {
  using compiler::KernelFamily;
  if (kernel == "matvec") return KernelFamily::Matvec;
  if (kernel == "dprod") return KernelFamily::Dprod;
  if (kernel == "daxpy") return KernelFamily::Daxpy;
  if (kernel == "dscal") return KernelFamily::Dscal;
  return KernelFamily::Ddaxpy;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("kernel", "matvec", "matvec|dprod|daxpy|dscal|ddaxpy");
  opt.add("bits", "512", "SVE vector length (128..2048)");
  opt.add("compiler", "cray", "gnu|fujitsu|cray|cray-noopt|clang");
  opt.add("n", "1000", "elements per kernel call");
  opt.add("ws", "0", "working-set bytes (0 = derive from n)");
  opt.add("sharers", "1", "ranks sharing the CMG");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("sve_explorer");
    return 1;
  }

  const std::string kernel = opt.get("kernel");
  const auto bits = static_cast<unsigned>(opt.get_int("bits"));
  const auto n = static_cast<std::size_t>(opt.get_int("n"));
  const auto profile = compiler::find_profile(opt.get("compiler"));
  const auto counts = record_kernel(kernel, bits, n);
  std::uint64_t ws = static_cast<std::uint64_t>(opt.get_int("ws"));
  if (ws == 0) ws = 7 * n * sizeof(double);

  std::cout << "kernel " << kernel << " at VL " << bits << " bits, n = " << n
            << ", profile '" << profile.name() << "', working set " << ws
            << " B\n\nRecorded instruction mix:\n";
  TableWriter mix;
  mix.set_columns({"op class", "vector instrs", "scalar-equivalent ops"});
  for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
    if (counts.instr[i] == 0) continue;
    mix.add_row({sim::op_class_name(static_cast<sim::OpClass>(i)),
                 TableWriter::integer(static_cast<long>(counts.instr[i])),
                 TableWriter::integer(static_cast<long>(counts.lanes[i]))});
  }
  std::cout << mix.str();
  std::cout << "bytes: " << counts.bytes_read << " read, "
            << counts.bytes_written << " written; flops: " << counts.flops()
            << "\n\n";

  const sim::CostModel cm(sim::MachineSpec::a64fx());
  const auto sharers = static_cast<std::uint32_t>(opt.get_int("sharers"));
  const auto family = family_of(kernel);
  const auto sve = cm.price(counts, sim::ExecMode::SVE,
                            profile.factors(family), ws, sharers);
  const auto scalar = cm.price(counts, sim::ExecMode::Scalar,
                               profile.factors(family), ws, sharers);

  TableWriter cost("Pricing (cycles)");
  cost.set_columns({"mode", "compute", "memory", "overhead", "total",
                    "bound by", "level"});
  for (const auto* row : {&sve, &scalar}) {
    cost.add_row({row == &sve ? "SVE" : "no-SVE",
                  TableWriter::num(row->compute_cycles, 1),
                  TableWriter::num(row->memory_cycles, 1),
                  TableWriter::num(row->overhead_cycles, 1),
                  TableWriter::num(row->total_cycles(), 1),
                  row->memory_bound() ? "memory" : "compute",
                  sim::mem_level_name(row->level)});
  }
  std::cout << cost.str();
  std::cout << "\nSVE/no-SVE ratio: "
            << TableWriter::num(sve.total_cycles() / scalar.total_cycles(), 3)
            << "   (paper's Table II band: 0.16-0.31 at N=1000, Cray)\n";
  return 0;
}
