/// \file gaussian_pulse.cpp
/// \brief The paper's radiation test problem, end to end.
///
/// Runs the diffusing Gaussian pulse on the full 200×100×2 configuration
/// (or any override), validates against the analytic free-space solution,
/// reports energy conservation, writes an h5lite checkpoint, and prints
/// the perf-stat record and TAU profile a study session on Ookami would
/// have produced.
///
///   ./gaussian_pulse [--steps 20] [--nprx1 5 --nprx2 4]
///                    [--checkpoint pulse.h5l] [--compilers cray,gnu]

#include <iostream>

#include "core/v2d.hpp"
#include "perfmon/perf_stat.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  core::RunConfig::register_options(opt);
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("gaussian_pulse");
    return 1;
  }
  core::RunConfig cfg = core::RunConfig::from_options(opt);
  if (!opt.was_set("steps")) cfg.steps = 20;
  if (!opt.was_set("limiter")) cfg.limiter = rad::LimiterKind::None;

  core::Simulation sim(cfg);
  const double e0 = sim.total_energy();
  std::cout << "Gaussian radiation pulse: " << cfg.nx1 << "x" << cfg.nx2
            << "x" << cfg.ns << " unknowns, " << cfg.nranks()
            << " simulated rank(s) (" << cfg.nprx1 << "x" << cfg.nprx2
            << "), dt = " << cfg.dt << "\n\n";

  for (int s = 0; s < cfg.steps; ++s) {
    const auto stats = sim.advance();
    if (!stats.all_converged()) {
      std::cerr << "solver failed at step " << sim.steps_taken() << '\n';
      return 1;
    }
    if (sim.steps_taken() % 5 == 0 || s + 1 == cfg.steps) {
      std::cout << "step " << sim.steps_taken() << ": t = " << sim.time()
                << ", iterations = " << stats.total_iterations()
                << ", energy drift = "
                << (sim.total_energy() - e0) / e0 << '\n';
    }
  }

  std::cout << "\nrelative L2 error vs analytic solution: "
            << sim.analytic_error()
            << (cfg.limiter == rad::LimiterKind::None
                    ? "  (unlimited diffusion: exact solution applies)"
                    : "  (limited diffusion: analytic profile approximate)")
            << '\n';

  if (!cfg.checkpoint_path.empty()) {
    sim.checkpoint(cfg.checkpoint_path);
    std::cout << "checkpoint written to " << cfg.checkpoint_path << '\n';
  }

  TableWriter table("\nSimulated execution (per compiler profile)");
  table.set_columns({"profile", "time (s)", "flops", "bytes moved"});
  for (std::size_t p = 0; p < sim.exec().nprofiles(); ++p) {
    const auto led = sim.exec().merged_ledger(p);
    table.add_row({sim.exec().profile(p).name(),
                   TableWriter::num(sim.elapsed(p), 3),
                   units::rate(static_cast<double>(led.total_flops()) /
                                   sim.elapsed(p),
                               "flop"),
                   units::bytes(static_cast<double>(led.total_bytes()))});
  }
  std::cout << table.str();

  perfmon::PerfStatResult ps;
  ps.command = "v2d --problem gaussian-pulse";
  ps.duration_seconds = sim.elapsed(0);
  ps.cpu_cycles =
      static_cast<std::uint64_t>(sim.exec().merged_ledger(0).total_cycles());
  std::cout << '\n' << perfmon::format_perf_stat(ps);
  std::cout << "TAU-style call-site profile ("
            << sim.exec().profile(0).name() << "):\n"
            << sim.profiler(0).report();
  return 0;
}
