/// \file sedov_radhydro.cpp
/// \brief Coupled radiation-hydrodynamics: a Sedov-like blast with
/// radiative energy exchange — the kind of problem V2D was built for.
///
/// Each cycle runs a hydro step (dimensionally split HLL), a radiation
/// step (three implicit BiCGSTAB solves) and the explicit radiation–gas
/// energy exchange, with all work priced on the simulated A64FX.
///
///   ./sedov_radhydro [--nx 48] [--cycles 15] [--kappa 5]

#include <iostream>

#include "hydro/coupling.hpp"
#include "hydro/euler.hpp"
#include "hydro/setups.hpp"
#include "rad/gaussian.hpp"
#include "rad/radstep.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  opt.add("nx", "48", "zones per side");
  opt.add("cycles", "15", "rad-hydro cycles");
  opt.add("kappa", "5.0", "total opacity");
  opt.add("nprx1", "2", "tiles in x1");
  opt.add("nprx2", "2", "tiles in x2");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("sedov_radhydro");
    return 1;
  }
  const int nx = static_cast<int>(opt.get_int("nx"));
  const int cycles = static_cast<int>(opt.get_int("cycles"));
  const double kappa = opt.get_double("kappa");

  const grid::Grid2D g(nx, nx, 0.0, 1.0, 0.0, 1.0);
  const grid::Decomposition dec(
      g, mpisim::CartTopology(static_cast<int>(opt.get_int("nprx1")),
                              static_cast<int>(opt.get_int("nprx2"))));
  mpisim::ExecModel em(sim::MachineSpec::a64fx(),
                       {compiler::cray_2103()}, dec.nranks());
  linalg::ExecContext ctx(vla::VectorArch(512), &em,
                          vla::VlaExecMode::Native);

  // Gas: Sedov blast in a reflecting box.
  const hydro::GammaLawEos eos(5.0 / 3.0);
  hydro::HydroState gas(g, dec);
  hydro::setup_sedov(gas, eos, 1.0, 0.08);
  hydro::HydroSolver hydro_solver(g, dec, eos, hydro::HydroBc::Reflecting,
                                  0.3);

  // Radiation: two species, absorbing material.
  rad::OpacitySet opac(2);
  for (int s = 0; s < 2; ++s) {
    opac.absorption(s) = rad::OpacityLaw::constant(0.3 * kappa);
    opac.scattering(s) = rad::OpacityLaw::constant(0.7 * kappa);
  }
  rad::FldConfig fld_cfg;
  fld_cfg.include_absorption = true;
  fld_cfg.exchange_kappa = 0.05;
  rad::FldBuilder builder(g, dec, 2, opac, fld_cfg);
  builder.temperature().fill(0.2);
  rad::RadiationStepper rad_stepper(g, dec, std::move(builder));
  linalg::DistVector e_rad(g, dec, 2);
  e_rad.fill(ctx, 0.05);

  std::cout << "Sedov rad-hydro: " << nx << "x" << nx << " zones, "
            << dec.nranks() << " rank(s), " << cycles << " cycles\n\n";
  TableWriter table;
  table.set_columns({"cycle", "t", "dt", "rad iters", "gas energy",
                     "rad energy", "exchange"});

  double t = 0.0;
  for (int c = 1; c <= cycles; ++c) {
    const double dt = hydro_solver.cfl_dt(ctx, gas);
    hydro_solver.step(ctx, gas, dt);
    const auto rad_stats = rad_stepper.step(ctx, e_rad, dt);
    if (!rad_stats.all_converged()) {
      std::cerr << "radiation solve failed at cycle " << c << '\n';
      return 1;
    }
    const auto exch = hydro::apply_rad_heating(
        ctx, gas, e_rad, rad_stepper.builder(), eos, dt);
    t += dt;
    if (c % 3 == 0 || c == cycles) {
      table.add_row({TableWriter::integer(c), TableWriter::num(t, 4),
                     TableWriter::num(dt, 5),
                     TableWriter::integer(rad_stats.total_iterations()),
                     TableWriter::num(gas.total_energy(), 5),
                     TableWriter::num(rad::GaussianPulse::total_energy(e_rad), 5),
                     TableWriter::num(exch.energy_to_gas, 6)});
    }
  }
  std::cout << table.str();
  std::cout << "\nsimulated A64FX time (" << em.profile(0).name()
            << "): " << em.elapsed(0) << " s\n";
  return 0;
}
