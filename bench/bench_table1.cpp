/// \file bench_table1.cpp
/// \brief Reproduces Table I: whole-code times by compiler × topology.
///
/// Runs the paper's radiation test problem (Gaussian pulse, 200×100×2
/// unknowns, 3 BiCGSTAB solves per step) once per (Np, NX1, NX2) topology;
/// every run is priced simultaneously under GNU 11.1, Fujitsu 4.5,
/// Cray 21.03 (-O3 +SVE) and Cray (no-opt), exactly the four columns of
/// Table I.  The no-opt column is left blank beyond 25 processors, as in
/// the paper.
///
/// The default runs 10 of the paper's 100 steps and scales the reported
/// times to 100 (steps are statistically homogeneous); pass --steps 100
/// for the full-length run.
///
///   ./bench_table1 [--steps 100] [--rows all|quick] [--paper] [--tsv]

#include <iostream>

#include "core/v2d.hpp"
#include "perfmon/perf_stat.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

struct TopoRow {
  int np, nx1, nx2;
  bool has_noopt;  ///< the paper stops the no-opt column after 25 procs
  double paper_gnu, paper_fujitsu, paper_cray, paper_noopt;  // seconds
};

// The 12 rows of Table I with the paper's measurements (for side-by-side
// printing; −1 = no value published).
constexpr TopoRow kRows[] = {
    {1, 1, 1, true, 363.91, 252.31, 181.26, 262.57},
    {10, 10, 1, true, 43.85, 31.76, 24.20, 32.35},
    {20, 20, 1, true, 26.80, 19.79, 16.78, 20.66},
    {20, 10, 2, true, 25.74, 19.66, 15.73, 19.93},
    {20, 5, 4, true, 25.42, 18.85, 15.39, 19.79},
    {25, 25, 1, false, 24.62, 17.24, 15.65, -1},
    {40, 40, 1, false, 25.30, 13.97, 19.12, -1},
    {40, 20, 2, false, 22.88, 12.96, 17.37, -1},
    {40, 10, 4, false, 21.91, 13.04, 17.16, -1},
    {50, 50, 1, false, 30.10, 13.05, 25.56, -1},
    {50, 25, 2, false, 29.26, 12.09, 24.07, -1},
    {50, 10, 5, false, 27.55, 11.40, 23.51, -1},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  opt.add("steps", "10", "time steps to run (scaled to 100 in the output)");
  opt.add("rows", "all", "'all' = 12 paper rows, 'quick' = 4 rows");
  opt.add("nx1", "200", "zones in x1");
  opt.add("nx2", "100", "zones in x2");
  opt.add_flag("tsv", "emit tab-separated values instead of a table");
  opt.add_flag("paper", "include the paper's measured values in the output");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_table1");
    return 1;
  }
  const int steps = static_cast<int>(opt.get_int("steps"));
  const bool quick = opt.get("rows") == "quick";
  const double scale = 100.0 / steps;

  std::cout << "Table I reproduction: Gaussian pulse, "
            << opt.get_int("nx1") << "x" << opt.get_int("nx2")
            << "x2 unknowns, " << steps << " steps (times scaled to 100), "
            << "3 solves/step.\n\n";

  TableWriter table("TABLE I — TIMES BY COMPILER (simulated seconds)");
  std::vector<std::string> cols = {"Np",   "NX1",     "NX2",  "GNU",
                                   "Fujitsu", "Cray(opt)", "Cray(no-opt)"};
  if (opt.get_bool("paper")) {
    cols.insert(cols.end(),
                {"paper:GNU", "paper:Fujitsu", "paper:Cray", "paper:no-opt"});
  }
  table.set_columns(cols);

  for (const TopoRow& row : kRows) {
    if (quick && row.np != 1 && row.np != 20 && row.np != 50) continue;
    core::RunConfig cfg;
    cfg.nx1 = static_cast<int>(opt.get_int("nx1"));
    cfg.nx2 = static_cast<int>(opt.get_int("nx2"));
    cfg.steps = steps;
    cfg.nprx1 = row.nx1;
    cfg.nprx2 = row.nx2;
    cfg.compilers = {"gnu", "fujitsu", "cray", "cray-noopt"};
    core::Simulation sim(cfg);
    sim.run();

    std::vector<std::string> cells = {
        TableWriter::integer(row.np), TableWriter::integer(row.nx1),
        TableWriter::integer(row.nx2),
        TableWriter::num(sim.elapsed(0) * scale, 2),
        TableWriter::num(sim.elapsed(1) * scale, 2),
        TableWriter::num(sim.elapsed(2) * scale, 2),
        row.has_noopt ? TableWriter::num(sim.elapsed(3) * scale, 2)
                      : std::string{}};
    if (opt.get_bool("paper")) {
      auto paper_cell = [](double v) {
        return v < 0 ? std::string{} : TableWriter::num(v, 2);
      };
      cells.push_back(paper_cell(row.paper_gnu));
      cells.push_back(paper_cell(row.paper_fujitsu));
      cells.push_back(paper_cell(row.paper_cray));
      cells.push_back(paper_cell(row.paper_noopt));
    }
    table.add_row(cells);
    std::cerr << "  finished Np=" << row.np << " (" << row.nx1 << "x"
              << row.nx2 << ")\n";
  }
  std::cout << (opt.get_bool("tsv") ? table.tsv() : table.str());

  // A perf-stat style record for the flagship configuration, as collected
  // in the study ("perf stat -e duration_time -e cpu-cycles ./v2d").
  std::cout << "\n";
  {
    core::RunConfig cfg;
    cfg.steps = 1;
    cfg.compilers = {"cray"};
    core::Simulation sim(cfg);
    sim.run();
    perfmon::PerfStatResult ps;
    ps.command = "v2d --problem gaussian-pulse --nprx1 1 --nprx2 1 (1 step)";
    ps.duration_seconds = sim.elapsed(0);
    ps.cpu_cycles = static_cast<std::uint64_t>(
        sim.exec().merged_ledger(0).total_cycles());
    std::cout << perfmon::format_perf_stat(ps);
  }
  return 0;
}
