/// \file bench_resilience.cpp
/// \brief The price of resilience: guard overhead and recovery cost.
///
/// Two claims, two row kinds in one JSON:
///
///   * kind "guard" — `--guard on` scans every interior zone per step on
///     the host; that validation must stay cheap (<= 5% host-time
///     overhead) and must not perturb the simulation at all (guards are
///     host-only and unpriced: fields and simulated clocks bit-identical
///     to a guard-off run).  Host timings on tiny runs are noise, so the
///     bench doubles the step count until the unguarded run takes long
///     enough to resolve (capped at 512 steps) and judges the floor on
///     the scaled workload; rows carry "overhead_gate": "enforced" /
///     "skipped" (only a host too fast even at the cap skips).
///
///   * kind "retry" — recovering a faulted job from its latest finalized
///     checkpoint must beat restarting it from scratch.  The honest
///     metric is deterministic: farm-driven steps summed across attempts
///     (host seconds ride along as context).  The recovered job is also
///     re-verified bit-identical to the same job never faulted.
///
///   ./bench_resilience [--nx1 96 --nx2 48 --steps 6] [--repeats 3]
///                      [--out BENCH_resilience.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/v2d.hpp"
#include "farm/farm.hpp"
#include "resilience/fault_plan.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace v2d;

struct Capture {
  std::vector<double> field;
  std::vector<double> clocks;  // profile 0, per rank

  bool operator==(const Capture&) const = default;
};

Capture capture(core::Simulation& sim) {
  Capture c;
  c.field = sim.radiation().field().gather_global();
  for (int r = 0; r < sim.exec().nranks(); ++r)
    c.clocks.push_back(sim.exec().rank_time(0, r));
  return c;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Below this unguarded runtime the 5% floor is noise, not signal.
constexpr double kGuardGateMinSeconds = 0.05;
constexpr double kGuardGatePct = 5.0;
/// Auto-scaling ceiling: never grow the guard workload past this many
/// steps, however fast the host.
constexpr int kGuardGateMaxSteps = 512;

struct GuardRow {
  double plain_seconds = 1e300;
  double guarded_seconds = 1e300;
  double overhead_pct = 0.0;
  bool identical = true;
  std::string overhead_gate = "skipped";
};

struct RetryRow {
  int steps = 0;
  int fault_step = 0;
  int checkpoint_every = 0;
  long driven_ckpt = 0;
  long driven_scratch = 0;
  double ckpt_seconds = 1e300;
  double scratch_seconds = 1e300;
  bool recovered_identical = true;
};

/// One farmed run of `cfg` under a pinned step-exception fault, retried
/// until it completes.  Returns driven steps across attempts and fills
/// the final capture.
long run_faulted(const core::RunConfig& cfg, int fault_step, Capture* cap,
                 double* seconds) {
  farm::FarmOptions fopt;
  fopt.host_threads = 0;
  fopt.fault_plan = resilience::FaultPlan(
      17, "throw@" + std::to_string(fault_step));
  fopt.max_retries = 2;
  fopt.on_job_complete = [cap](std::size_t, core::Simulation& sim) {
    *cap = capture(sim);
  };
  farm::FarmScheduler sched(fopt);
  sched.add({"faulted", cfg});
  const auto t0 = std::chrono::steady_clock::now();
  const farm::FarmSummary sum = sched.run();
  const double s = seconds_since(t0);
  set_host_threads(0);
  if (sum.failed != 0) {
    std::cerr << "FAIL: faulted bench job did not recover: "
              << sum.jobs[0].error << '\n';
    std::exit(1);
  }
  if (s < *seconds) *seconds = s;
  return sum.jobs[0].driven_steps;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("nx1", "96", "zones in x1");
  opt.add("nx2", "48", "zones in x2");
  opt.add("steps", "6", "time steps (guard rows)");
  opt.add("repeats", "3", "timing repetitions (best kept)");
  opt.add("out", "BENCH_resilience.json", "JSON output path (empty = none)");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_resilience");
    return 1;
  }

  core::RunConfig cfg;
  cfg.nx1 = static_cast<int>(opt.get_int("nx1"));
  cfg.nx2 = static_cast<int>(opt.get_int("nx2"));
  cfg.steps = static_cast<int>(opt.get_int("steps"));
  cfg.compilers = {"cray"};
  cfg.host_threads = 0;
  const int repeats = std::max(1, static_cast<int>(opt.get_int("repeats")));

  // --- guard overhead --------------------------------------------------------
  // Auto-scale the workload: double the step count until the unguarded
  // run is long enough to time (>= kGuardGateMinSeconds), so the 5% floor
  // is judged on signal instead of recorded as "skipped" on hosts fast
  // enough to finish the requested steps in noise.  The scaled count is
  // reported in the JSON.
  int guard_steps = cfg.steps;
  while (guard_steps < kGuardGateMaxSteps) {
    core::RunConfig probe = cfg;
    probe.steps = guard_steps;
    core::Simulation sim(probe);
    const auto t0 = std::chrono::steady_clock::now();
    sim.run();
    if (seconds_since(t0) >= kGuardGateMinSeconds) break;
    guard_steps = std::min(2 * guard_steps, kGuardGateMaxSteps);
  }
  if (guard_steps != cfg.steps)
    std::cerr << "  guard workload auto-scaled: " << cfg.steps << " -> "
              << guard_steps << " steps\n";
  GuardRow guard;
  {
    core::RunConfig plain = cfg;
    plain.steps = guard_steps;
    core::RunConfig guarded = plain;
    guarded.guard = true;
    guarded.guard_drift = 0.5;
    Capture plain_cap, guarded_cap;
    for (int rep = 0; rep < repeats; ++rep) {
      {
        core::Simulation sim(plain);
        const auto t0 = std::chrono::steady_clock::now();
        sim.run();
        const double s = seconds_since(t0);
        if (s < guard.plain_seconds) guard.plain_seconds = s;
        plain_cap = capture(sim);
      }
      {
        core::Simulation sim(guarded);
        const auto t0 = std::chrono::steady_clock::now();
        sim.run();
        const double s = seconds_since(t0);
        if (s < guard.guarded_seconds) guard.guarded_seconds = s;
        guarded_cap = capture(sim);
      }
      if (!(plain_cap == guarded_cap)) guard.identical = false;
    }
    guard.overhead_pct = 100.0 * (guard.guarded_seconds -
                                  guard.plain_seconds) /
                         guard.plain_seconds;
    guard.overhead_gate = guard.plain_seconds >= kGuardGateMinSeconds
                              ? "enforced"
                              : "skipped";
  }

  // --- retry-from-checkpoint vs restart-from-scratch -------------------------
  RetryRow retry;
  retry.steps = 8;
  retry.fault_step = 7;
  retry.checkpoint_every = 2;
  {
    core::RunConfig job = cfg;
    job.steps = retry.steps;

    // Fault-free reference with the same checkpoint cadence (checkpoint
    // Io is priced, so the cadence is part of the job's identity).
    core::RunConfig ref_cfg = job;
    ref_cfg.checkpoint_path = "bench_rez_ref.h5l";
    ref_cfg.checkpoint_every = retry.checkpoint_every;
    Capture ref;
    {
      core::Simulation sim(ref_cfg);
      sim.run();
      ref = capture(sim);
    }

    core::RunConfig ckpt_cfg = job;
    ckpt_cfg.checkpoint_path = "bench_rez_job.h5l";
    ckpt_cfg.checkpoint_every = retry.checkpoint_every;

    Capture ckpt_cap, scratch_cap;
    for (int rep = 0; rep < repeats; ++rep) {
      std::remove(ckpt_cfg.checkpoint_path.c_str());
      retry.driven_ckpt = run_faulted(ckpt_cfg, retry.fault_step, &ckpt_cap,
                                      &retry.ckpt_seconds);
      retry.driven_scratch = run_faulted(job, retry.fault_step, &scratch_cap,
                                         &retry.scratch_seconds);
      if (!(ckpt_cap == ref)) retry.recovered_identical = false;
    }
    std::remove(ref_cfg.checkpoint_path.c_str());
    std::remove(ckpt_cfg.checkpoint_path.c_str());
  }

  // --- report + gates --------------------------------------------------------
  TableWriter table("Resilience overheads (" + std::to_string(cfg.nx1) + "x" +
                    std::to_string(cfg.nx2) + ")");
  table.set_columns({"row", "plain/scratch", "guarded/ckpt", "metric",
                     "bit-identical", "gate"});
  char overhead[32];
  std::snprintf(overhead, sizeof overhead, "%+.2f%%", guard.overhead_pct);
  table.add_row({"guard", TableWriter::num(guard.plain_seconds, 4) + " s",
                 TableWriter::num(guard.guarded_seconds, 4) + " s", overhead,
                 guard.identical ? "yes" : "NO", guard.overhead_gate});
  table.add_row({"retry", std::to_string(retry.driven_scratch) + " steps",
                 std::to_string(retry.driven_ckpt) + " steps",
                 "driven steps across attempts",
                 retry.recovered_identical ? "yes" : "NO", "enforced"});
  table.print(std::cout);

  const std::string out = opt.get("out");
  if (!out.empty()) {
    std::ofstream os(out);
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "[\n  {\"kind\": \"guard\", \"nx1\": %d, \"nx2\": %d, \"steps\": %d, "
        "\"plain_seconds\": %.6f, \"guarded_seconds\": %.6f, "
        "\"overhead_pct\": %.3f, \"identical\": %s, "
        "\"overhead_gate\": \"%s\"},\n",
        cfg.nx1, cfg.nx2, guard_steps, guard.plain_seconds,
        guard.guarded_seconds, guard.overhead_pct,
        guard.identical ? "true" : "false", guard.overhead_gate.c_str());
    os << buf;
    std::snprintf(
        buf, sizeof buf,
        "  {\"kind\": \"retry\", \"steps\": %d, \"fault_step\": %d, "
        "\"checkpoint_every\": %d, \"driven_ckpt\": %ld, "
        "\"driven_scratch\": %ld, \"ckpt_seconds\": %.6f, "
        "\"scratch_seconds\": %.6f, \"recovered_identical\": %s}\n]\n",
        retry.steps, retry.fault_step, retry.checkpoint_every,
        retry.driven_ckpt, retry.driven_scratch, retry.ckpt_seconds,
        retry.scratch_seconds, retry.recovered_identical ? "true" : "false");
    os << buf;
    std::cout << "wrote " << out << "\n";
  }

  int rc = 0;
  if (!guard.identical) {
    std::cerr << "FAIL: --guard on perturbed the simulation (fields or "
                 "simulated clocks differ from guard-off)\n";
    rc = 1;
  }
  if (guard.overhead_gate == "enforced" &&
      guard.overhead_pct > kGuardGatePct) {
    std::cerr << "FAIL: guard overhead " << guard.overhead_pct
              << "% exceeds the " << kGuardGatePct << "% floor\n";
    rc = 1;
  }
  if (!retry.recovered_identical) {
    std::cerr << "FAIL: retried job diverged from the fault-free run\n";
    rc = 1;
  }
  if (retry.driven_ckpt >= retry.driven_scratch) {
    std::cerr << "FAIL: retry-from-checkpoint drove " << retry.driven_ckpt
              << " steps, not fewer than restart-from-scratch's "
              << retry.driven_scratch << "\n";
    rc = 1;
  }
  return rc;
}
