/// \file bench_ganged.cpp
/// \brief Ablation A: classic vs ganged BiCGSTAB reductions.
///
/// V2D's restructured BiCGSTAB gangs inner products into shared
/// allreduces (3 per iteration instead of 5).  This bench quantifies what
/// that buys at each processor count: allreduce counts, communication
/// seconds and total simulated time, on the paper's test problem.
///
///   ./bench_ganged [--steps 2] [--tsv]

#include <iostream>

#include "core/v2d.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  opt.add("steps", "2", "time steps per configuration");
  opt.add_flag("tsv", "emit tab-separated values");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_ganged");
    return 1;
  }
  const int steps = static_cast<int>(opt.get_int("steps"));

  TableWriter table(
      "Ablation A — ganged vs classic BiCGSTAB reductions (Cray profile)");
  table.set_columns({"Np", "scheme", "allreduces", "comm (s)", "total (s)",
                     "speedup"});

  for (const int np : {1, 4, 10, 20, 40, 50, 100}) {
    double classic_total = 0.0;
    for (const bool ganged : {false, true}) {
      core::RunConfig cfg;
      cfg.steps = steps;
      // Keep the paper problem; topology: widest x1 split that divides 200.
      cfg.nprx1 = np;
      cfg.nprx2 = 1;
      cfg.ganged = ganged;
      cfg.compilers = {"cray"};
      core::Simulation sim(cfg);
      sim.run();
      const auto led = sim.exec().merged_ledger(0);
      // Single-rank jobs record no allreduce ledger entry (the collective
      // is free and message-less there).
      const sim::RegionCost ar = led.has("mpi_allreduce")
                                     ? led.at("mpi_allreduce")
                                     : sim::RegionCost{};
      const double total = sim.elapsed(0);
      if (!ganged) classic_total = total;
      table.add_row(
          {TableWriter::integer(np), ganged ? "ganged" : "classic",
           TableWriter::integer(static_cast<long>(ar.comm_messages /
                                                  std::max(1, np))),
           TableWriter::num(ar.comm_seconds / std::max(1, np), 4),
           TableWriter::num(total, 4),
           ganged ? TableWriter::num(classic_total / total, 3) : ""});
    }
    std::cerr << "  finished Np=" << np << "\n";
  }
  std::cout << (opt.get_bool("tsv") ? table.tsv() : table.str());
  std::cout << "\nGanging cuts the per-iteration reduction count from 5 to 3;"
               "\nthe benefit grows with Np as latency dominates.\n";
  return 0;
}
