/// \file bench_compilers.cpp
/// \brief Ablation D: the full compiler axis on the kernel driver.
///
/// Table II only publishes the Cray compiler; the paper's future work asks
/// how the other compilers (and Clang) fare on the same kernels.  This
/// bench runs the Table II driver under every profile with SVE on and off.
///
///   ./bench_compilers [--reps 2000] [--tsv]

#include <iostream>

#include "compiler/profile.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/stencil_op.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  opt.add("reps", "2000", "repetitions of each routine");
  opt.add_flag("tsv", "emit tab-separated values");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_compilers");
    return 1;
  }
  const long reps = opt.get_int("reps");

  // All vendor profiles plus their no-SVE variants, priced simultaneously.
  std::vector<compiler::CodegenProfile> profiles;
  for (const char* name : {"gnu", "fujitsu", "cray", "clang"}) {
    profiles.push_back(compiler::find_profile(name));
    profiles.push_back(compiler::find_profile(name).without_sve());
  }

  grid::Grid2D g(25, 20, 0.0, 1.0, 0.0, 1.0);
  grid::Decomposition dec(g, mpisim::CartTopology(1, 1));
  mpisim::ExecModel em(sim::MachineSpec::a64fx(), profiles, 1);
  linalg::ExecContext ctx(vla::VectorArch(512), &em,
                          vla::VlaExecMode::Native);

  linalg::DistVector x(g, dec, 2), y(g, dec, 2), z(g, dec, 2);
  x.fill(ctx, 1.25);
  y.fill(ctx, 0.75);
  z.fill(ctx, 0.5);
  linalg::StencilOperator A(g, dec, 2);
  A.cc().fill(4.0);
  A.cw().fill(-1.0);
  A.ce().fill(-1.0);
  A.cs().fill(-1.0);
  A.cn().fill(-1.0);
  A.zero_boundary_coefficients();
  A.set_evaluation_overhead(linalg::kMatvecEvalDoublesRead,
                            linalg::kMatvecEvalFlops);

  for (long r = 0; r < reps; ++r) {
    A.apply(ctx, x, y);
    (void)linalg::DistVector::dot(ctx, x, y);
    y.daxpy(ctx, 1.0000001, x);
    y.dscal(ctx, 0.75, 1.0000001);
    z.ddaxpy(ctx, 1.0000001, x, 0.999999, y);
  }

  TableWriter table(
      "Ablation D — Table II driver under every compiler profile");
  table.set_columns({"compiler", "MATVEC", "DPROD", "DAXPY", "DSCAL",
                     "DDAXPY", "SVE/no-SVE (MATVEC)"});
  const double freq = em.cost_model().machine().freq_hz;
  for (std::size_t p = 0; p < profiles.size(); p += 2) {
    const auto sve = em.merged_ledger(p);
    const auto no_sve = em.merged_ledger(p + 1);
    auto ms = [&](const sim::CostLedger& l, const char* r) {
      return l.at(r).total_cycles / freq * 1e3;
    };
    table.add_row({profiles[p].name(), TableWriter::num(ms(sve, "matvec"), 2),
                   TableWriter::num(ms(sve, "dprod"), 2),
                   TableWriter::num(ms(sve, "daxpy"), 2),
                   TableWriter::num(ms(sve, "dscal"), 2),
                   TableWriter::num(ms(sve, "ddaxpy"), 2),
                   TableWriter::num(ms(sve, "matvec") / ms(no_sve, "matvec"),
                                    2)});
  }
  std::cout << (opt.get_bool("tsv") ? table.tsv() : table.str());
  std::cout << "\n(Times in ms of simulated A64FX execution; last column is "
               "the per-compiler SVE benefit on MATVEC.)\n";
  return 0;
}
