/// \file bench_farm.cpp
/// \brief Farm throughput: batched multi-scenario pricing vs a serial loop.
///
/// The farm's claim is pure throughput: running N jobs through one
/// FarmScheduler — shared count/price memos, pooled scratch, wave
/// scheduling across the host pool — prices more scenario-steps per
/// second than running the same N jobs back-to-back as independent solo
/// sessions, while every job's fields and simulated clocks stay
/// bit-identical to its solo run (re-verified here on every row).
///
/// Jobs are single-rank by default: a solo 1-rank session cannot use host
/// threads at all, so the farm's cross-session wave parallelism is the
/// whole lever — the honest "many small pricing queries" service shape.
/// The >= 1.3x floor at >= 8 jobs therefore needs a host that can run
/// sessions concurrently; rows record "speedup_gate": "enforced" when
/// the host has the cores (>= 2) and "skipped" otherwise, mirroring
/// bench_rank_parallel.
///
///   ./bench_farm [--jobs 4,8,16] [--nx1 64 --nx2 32 --steps 2]
///                [--repeats 2] [--out BENCH_farm.json]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/v2d.hpp"
#include "farm/farm.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace v2d;

struct Capture {
  std::vector<double> field;
  std::vector<double> clocks;  // profile 0, per rank

  bool operator==(const Capture&) const = default;
};

Capture capture(core::Simulation& sim) {
  Capture c;
  c.field = sim.radiation().field().gather_global();
  for (int r = 0; r < sim.exec().nranks(); ++r)
    c.clocks.push_back(sim.exec().rank_time(0, r));
  return c;
}

struct Result {
  int jobs = 0;
  double serial_seconds = 0.0;
  double farm_seconds = 0.0;
  double speedup = 1.0;
  double steps_per_sec_serial = 0.0;
  double steps_per_sec_farm = 0.0;
  double sim_elapsed_s = 0.0;  // job 0, profile 0 — deterministic
  bool identical = true;
  std::uint64_t memo_hits = 0;
  std::uint64_t price_hits = 0;
  std::size_t workspaces_created = 0;
  std::uint64_t workspaces_reused = 0;
  std::string speedup_gate = "n/a";
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void write_json(const std::string& path, const std::vector<Result>& results,
                int nx1, int nx2, int steps, int host_cores) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "  {\"jobs\": %d, \"serial_seconds\": %.6f, "
        "\"farm_seconds\": %.6f, \"speedup\": %.3f, "
        "\"steps_per_sec_serial\": %.2f, \"steps_per_sec_farm\": %.2f, "
        "\"sim_elapsed_s\": %.6f, \"identical\": %s, "
        "\"memo_hits\": %llu, \"price_hits\": %llu, "
        "\"workspaces_created\": %zu, \"workspaces_reused\": %llu, "
        "\"nx1\": %d, \"nx2\": %d, \"steps\": %d, \"host_cores\": %d, "
        "\"speedup_gate\": \"%s\"}%s\n",
        r.jobs, r.serial_seconds, r.farm_seconds, r.speedup,
        r.steps_per_sec_serial, r.steps_per_sec_farm, r.sim_elapsed_s,
        r.identical ? "true" : "false",
        static_cast<unsigned long long>(r.memo_hits),
        static_cast<unsigned long long>(r.price_hits), r.workspaces_created,
        static_cast<unsigned long long>(r.workspaces_reused), nx1, nx2, steps,
        host_cores, r.speedup_gate.c_str(),
        i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("jobs", "4,8,16", "comma list of batch sizes");
  opt.add("nx1", "64", "zones in x1 per job");
  opt.add("nx2", "32", "zones in x2 per job");
  opt.add("steps", "2", "time steps per job");
  opt.add("nprx1", "1", "tiles in x1 per job");
  opt.add("nprx2", "1", "tiles in x2 per job");
  opt.add("repeats", "2", "timing repetitions per batch size (best kept)");
  opt.add("out", "BENCH_farm.json", "JSON output path (empty = none)");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_farm");
    return 1;
  }

  std::vector<int> batch_sizes;
  {
    std::stringstream ss(opt.get("jobs"));
    std::string item;
    while (std::getline(ss, item, ','))
      if (!item.empty()) batch_sizes.push_back(std::stoi(item));
  }
  if (batch_sizes.empty()) {
    std::cerr << "--jobs must name at least one batch size\n";
    return 1;
  }

  core::RunConfig cfg;
  cfg.nx1 = static_cast<int>(opt.get_int("nx1"));
  cfg.nx2 = static_cast<int>(opt.get_int("nx2"));
  cfg.steps = static_cast<int>(opt.get_int("steps"));
  cfg.nprx1 = static_cast<int>(opt.get_int("nprx1"));
  cfg.nprx2 = static_cast<int>(opt.get_int("nprx2"));
  cfg.compilers = {"cray"};
  cfg.host_threads = 0;  // serial loop gets the full host too

  const int host_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  const int repeats = std::max(1, static_cast<int>(opt.get_int("repeats")));

  std::vector<Result> results;
  for (const int njobs : batch_sizes) {
    Result r;
    r.jobs = njobs;
    r.serial_seconds = 1e300;
    r.farm_seconds = 1e300;
    std::vector<Capture> solo(static_cast<std::size_t>(njobs));
    std::vector<Capture> farmed(static_cast<std::size_t>(njobs));

    for (int rep = 0; rep < repeats; ++rep) {
      // The status quo: N independent back-to-back sessions, each paying
      // its own context, pricing and workspace setup from cold.
      {
        const auto t0 = std::chrono::steady_clock::now();
        for (int j = 0; j < njobs; ++j) {
          core::Simulation sim(cfg);
          sim.run();
          solo[static_cast<std::size_t>(j)] = capture(sim);
          r.sim_elapsed_s = sim.elapsed(0);
        }
        const double s = seconds_since(t0);
        if (s < r.serial_seconds) r.serial_seconds = s;
      }

      // The farm: same N jobs, one scheduler, shared warm runtime.
      {
        farm::FarmOptions fopt;
        fopt.host_threads = 0;
        fopt.on_job_complete = [&farmed](std::size_t i,
                                         core::Simulation& sim) {
          farmed[i] = capture(sim);
        };
        farm::FarmScheduler sched(fopt);
        for (int j = 0; j < njobs; ++j)
          sched.add({"job-" + std::to_string(j + 1), cfg});
        const auto t0 = std::chrono::steady_clock::now();
        const farm::FarmSummary sum = sched.run();
        const double s = seconds_since(t0);
        set_host_threads(0);
        if (sum.failed != 0) {
          std::cerr << "FAIL: " << sum.failed << " farm job(s) failed\n";
          return 1;
        }
        if (s < r.farm_seconds) {
          r.farm_seconds = s;
          r.memo_hits = sum.memo_hits;
          r.price_hits = sum.price_hits;
          r.workspaces_created = sum.workspaces_created;
          r.workspaces_reused = sum.workspaces_reused;
        }
      }

      // Bit-identity of every job, every repetition: the farm must be a
      // pure throughput optimization.
      for (int j = 0; j < njobs; ++j)
        if (!(farmed[static_cast<std::size_t>(j)] ==
              solo[static_cast<std::size_t>(j)]))
          r.identical = false;
    }

    r.speedup = r.serial_seconds / r.farm_seconds;
    const double total_steps = static_cast<double>(njobs) * cfg.steps;
    r.steps_per_sec_serial = total_steps / r.serial_seconds;
    r.steps_per_sec_farm = total_steps / r.farm_seconds;
    results.push_back(r);
    std::cerr << "  jobs=" << njobs << "  serial=" << r.serial_seconds
              << " s  farm=" << r.farm_seconds << " s  speedup=" << r.speedup
              << "\n";
  }

  // The farm's floor: >= 1.3x scenario-steps/sec over the serial loop at
  // >= 8 same-shape jobs — judged only when the host can actually run
  // sessions concurrently; single-core hosts record "skipped" so the
  // never-firing case is visible in the JSON, not silent.
  bool identical_ok = true;
  bool speedup_ok = true;
  for (Result& r : results) {
    if (!r.identical) identical_ok = false;
    if (r.jobs < 8) continue;
    if (host_cores < 2) {
      r.speedup_gate = "skipped";
      continue;
    }
    r.speedup_gate = "enforced";
    if (r.speedup < 1.3) speedup_ok = false;
  }

  TableWriter table("Farm throughput vs serial job loop (" +
                    std::to_string(cfg.nx1) + "x" +
                    std::to_string(cfg.nx2) + ", " +
                    std::to_string(cfg.steps) + " step(s)/job, " +
                    std::to_string(cfg.nranks()) + " rank(s)/job)");
  table.set_columns({"jobs", "serial (s)", "farm (s)", "speedup",
                     "steps/s farm", "bit-identical", "gate"});
  for (const Result& r : results) {
    table.add_row({TableWriter::integer(r.jobs),
                   TableWriter::num(r.serial_seconds, 4),
                   TableWriter::num(r.farm_seconds, 4),
                   TableWriter::num(r.speedup, 2),
                   TableWriter::num(r.steps_per_sec_farm, 1),
                   r.identical ? "yes" : "NO", r.speedup_gate});
  }
  table.print(std::cout);
  std::cout << "host cores: " << host_cores << "\n";

  const std::string out = opt.get("out");
  if (!out.empty()) {
    write_json(out, results, cfg.nx1, cfg.nx2, cfg.steps, host_cores);
    std::cout << "wrote " << out << "\n";
  }
  if (!identical_ok) {
    std::cerr << "FAIL: a farmed job diverged from its solo run (field or "
                 "simulated clocks differ)\n";
    return 1;
  }
  if (!speedup_ok) {
    std::cerr << "FAIL: farm under 1.3x over the serial loop at >= 8 jobs "
                 "despite >= 2 host cores\n";
    return 1;
  }
  return 0;
}
