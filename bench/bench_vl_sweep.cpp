/// \file bench_vl_sweep.cpp
/// \brief Ablation C: vector-length-agnostic sweep, 128–2048 bits.
///
/// The A64FX implements 512-bit SVE, but SVE's VLA property (paper §I-B)
/// means the same binary runs at any architectural vector length.  This
/// bench executes the Table II kernel driver at every legal VL and prices
/// it on an A64FX-like machine whose vector width matches, showing where
/// each kernel stops being compute-bound and longer vectors stop paying.
///
///   ./bench_vl_sweep [--reps 2000] [--tsv]

#include <iostream>

#include "compiler/profile.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/stencil_op.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  opt.add("reps", "2000", "repetitions of each routine");
  opt.add_flag("tsv", "emit tab-separated values");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_vl_sweep");
    return 1;
  }
  const long reps = opt.get_int("reps");

  TableWriter table(
      "Ablation C — kernel time vs SVE vector length (Cray profile, N=1000)");
  table.set_columns({"VL (bits)", "MATVEC (ms)", "DPROD (ms)", "DAXPY (ms)",
                     "speedup vs 128"});

  double matvec128 = 0.0;
  for (const unsigned bits : {128u, 256u, 512u, 1024u, 2048u}) {
    grid::Grid2D g(25, 20, 0.0, 1.0, 0.0, 1.0);
    grid::Decomposition dec(g, mpisim::CartTopology(1, 1));
    sim::MachineSpec machine = sim::MachineSpec::a64fx();
    machine.sve_bits = bits;  // hypothetical silicon at this VL
    mpisim::ExecModel em(machine, {compiler::cray_2103()}, 1);
    linalg::ExecContext ctx(vla::VectorArch(bits), &em,
                            vla::VlaExecMode::Native);

    linalg::DistVector x(g, dec, 2), y(g, dec, 2);
    x.fill(ctx, 1.25);
    y.fill(ctx, 0.75);
    linalg::StencilOperator A(g, dec, 2);
    A.cc().fill(4.0);
    A.cw().fill(-1.0);
    A.ce().fill(-1.0);
    A.cs().fill(-1.0);
    A.cn().fill(-1.0);
    A.zero_boundary_coefficients();
    A.set_evaluation_overhead(linalg::kMatvecEvalDoublesRead,
                              linalg::kMatvecEvalFlops);

    for (long r = 0; r < reps; ++r) {
      A.apply(ctx, x, y);
      (void)linalg::DistVector::dot(ctx, x, y);
      y.daxpy(ctx, 1.0000001, x);
    }
    const auto led = em.merged_ledger(0);
    const double freq = machine.freq_hz;
    const double matvec = led.at("matvec").total_cycles / freq * 1e3;
    const double dprod = led.at("dprod").total_cycles / freq * 1e3;
    const double daxpy = led.at("daxpy").total_cycles / freq * 1e3;
    if (bits == 128u) matvec128 = matvec;
    table.add_row({TableWriter::integer(bits), TableWriter::num(matvec, 2),
                   TableWriter::num(dprod, 2), TableWriter::num(daxpy, 2),
                   TableWriter::num(matvec128 / matvec, 2)});
  }
  std::cout << (opt.get_bool("tsv") ? table.tsv() : table.str());
  std::cout << "\nGains saturate once the kernels hit the L1 bandwidth "
               "ceiling — wider vectors cannot move more bytes.\n";
  return 0;
}
