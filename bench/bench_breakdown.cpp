/// \file bench_breakdown.cpp
/// \brief Reproduces the §II-E timing-analysis claims.
///
/// The paper reports, for the Cray -O3+SVE executable:
///  * 1 processor: ~141 s of 181 s in the matrix-vector multiplications,
///    ~14 s in preconditioning (ratios 0.78 and 0.077 of total);
///  * Arm MAP: each of the three BiCGSTAB call sites ≈ 31–33 % of total;
///  * 20 processors (5×4): ~7.5 s of 15 s in matvec at maximum per
///    processor (~0.5), preconditioning ~0.8 s (~0.05), with a significant
///    fraction in MPI calls.
///
/// This bench runs both configurations, prints the region breakdown from
/// the per-rank ledgers and the TAU-style call-site profile, and shows the
/// paper's fractions alongside.
///
///   ./bench_breakdown [--steps 20]

#include <iostream>

#include "core/v2d.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace v2d;

void report(const std::string& title, core::Simulation& sim,
            double paper_matvec_frac, double paper_precond_frac) {
  const std::size_t p = 0;  // single profile: Cray
  const double total = sim.elapsed(p);

  // Max-per-rank region times, as Arm MAP / PAPI would report them.
  double matvec_max = 0.0, precond_max = 0.0, mpi_max = 0.0;
  const double freq = sim.exec().cost_model().machine().freq_hz;
  for (int r = 0; r < sim.exec().nranks(); ++r) {
    const auto& led = sim.exec().ledger(p, r);
    auto cyc = [&](const char* region) {
      return led.has(region) ? led.at(region).total_cycles / freq : 0.0;
    };
    auto comm = [&](const char* region) {
      return led.has(region) ? led.at(region).comm_seconds : 0.0;
    };
    matvec_max = std::max(matvec_max, cyc("matvec"));
    precond_max = std::max(precond_max, cyc("precond") + cyc("precond-build"));
    mpi_max = std::max(mpi_max, comm("mpi_allreduce") + comm("mpi_halo"));
  }

  std::cout << title << "\n  total simulated time: "
            << TableWriter::num(total, 3) << " s\n";
  TableWriter t;
  t.set_columns({"component", "max/rank (s)", "fraction", "paper fraction"});
  auto frac = [&](double v) { return TableWriter::num(v / total, 3); };
  t.add_row({"matvec", TableWriter::num(matvec_max, 3), frac(matvec_max),
             TableWriter::num(paper_matvec_frac, 3)});
  t.add_row({"preconditioning", TableWriter::num(precond_max, 3),
             frac(precond_max), TableWriter::num(paper_precond_frac, 3)});
  t.add_row({"MPI (halo+allreduce)", TableWriter::num(mpi_max, 3),
             frac(mpi_max), std::string{}});
  std::cout << t.str();

  std::cout << "\n  TAU/ParaProf call-site view (paper: each BiCGSTAB call "
               "site 31-33% of total):\n";
  std::cout << sim.profiler(p).report() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("steps", "20", "time steps per configuration");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_breakdown");
    return 1;
  }
  const int steps = static_cast<int>(opt.get_int("steps"));

  {
    core::RunConfig cfg;
    cfg.steps = steps;
    cfg.compilers = {"cray"};
    core::Simulation sim(cfg);
    sim.run();
    // Paper: 141/181 matvec, 14/181 preconditioning.
    report("=== 1 processor (1x1) ===", sim, 141.0 / 181.0, 14.0 / 181.0);
  }
  {
    core::RunConfig cfg;
    cfg.steps = steps;
    cfg.nprx1 = 5;
    cfg.nprx2 = 4;
    cfg.compilers = {"cray"};
    core::Simulation sim(cfg);
    sim.run();
    // Paper: ~7.5/15 matvec max per rank, ~0.8/15 preconditioning.
    report("=== 20 processors (5x4) ===", sim, 7.5 / 15.0, 0.8 / 15.0);
  }
  return 0;
}
