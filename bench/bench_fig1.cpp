/// \file bench_fig1.cpp
/// \brief Reproduces Fig. 1: the sparsity pattern of the V2D matrix.
///
/// Assembles the 40,000×40,000 operator of the 200×100×2 test problem
/// (never done inside V2D itself — the paper renders it only to explain
/// the structure) and emits the upper-left 400×400 block as a PBM image
/// plus a coarse ASCII preview.  With dictionary ordering the bands sit at
/// 0, ±1 and ±x1 = ±200, with the species-coupling bands at ±x1·x2 far
/// outside the plotted block — exactly the five-band picture of Fig. 1.
///
///   ./bench_fig1 [--nx1 200 --nx2 100] [--block 400] [--out fig1.pbm]

#include <fstream>
#include <iostream>

#include "core/v2d.hpp"
#include "linalg/stencil_op.hpp"
#include "rad/fld.hpp"
#include "rad/gaussian.hpp"
#include "support/options.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  opt.add("nx1", "200", "zones in x1");
  opt.add("nx2", "100", "zones in x2");
  opt.add("block", "400", "rendered block size (paper: 400)");
  opt.add("out", "fig1.pbm", "output PBM path");
  opt.add_flag("coupled", "include the species-coupling bands");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_fig1");
    return 1;
  }
  const int nx1 = static_cast<int>(opt.get_int("nx1"));
  const int nx2 = static_cast<int>(opt.get_int("nx2"));
  const long block = opt.get_int("block");

  grid::Grid2D g(nx1, nx2, -1.0, 1.0, -0.5, 0.5);
  grid::Decomposition dec(g, mpisim::CartTopology(1, 1));
  linalg::StencilOperator A(g, dec, 2);
  if (opt.get_bool("coupled")) A.enable_coupling();

  // Fill with the actual FLD diffusion coefficients of the test problem so
  // the pattern is the real matrix, not a synthetic one.
  rad::OpacitySet opac(2);
  for (int s = 0; s < 2; ++s)
    opac.scattering(s) = rad::OpacityLaw::constant(10.0);
  rad::FldConfig cfg;
  cfg.include_absorption = false;
  rad::FldBuilder builder(g, dec, 2, opac, cfg);
  linalg::ExecContext ctx;  // unpriced
  ctx.vctx.set_exec_mode(vla::VlaExecMode::Native);  // numerics-only: fast path
  linalg::DistVector e(g, dec, 2), rhs(g, dec, 2);
  rad::GaussianPulse pulse;
  pulse.d_coeff = 1.0 / 30.0;
  pulse.fill(e, 0.0);
  if (opt.get_bool("coupled")) {
    builder.config().exchange_kappa = 0.05;
    builder.build_coupling(ctx, e, e, 0.03, A, rhs);
  } else {
    builder.build_diffusion(ctx, e, e, 0.03, A, rhs);
  }

  const linalg::BandedMatrix M = A.assemble();
  std::cout << "Matrix: " << M.size() << " x " << M.size() << " ("
            << nx1 << "*" << nx2 << "*2), " << M.nnz()
            << " non-zeros, bands at offsets:";
  for (auto off : M.offsets()) std::cout << ' ' << off;
  std::cout << "\n\n";

  const std::string path = opt.get("out");
  std::ofstream os(path, std::ios::binary);
  M.write_pbm(os, block, block);
  std::cout << "Wrote the upper-left " << block << "x" << block
            << " block to " << path << " (Fig. 1).\n\n";

  // Coarse ASCII preview: 80x40 downsample of the same block.
  std::cout << "ASCII preview (" << block << "-wide block, downsampled):\n";
  const std::string full = M.render_block(block, block);
  const long stride_r = block / 40, stride_c = block / 80;
  for (long r = 0; r < block; r += stride_r) {
    std::string line;
    for (long c = 0; c < block; c += stride_c) {
      bool nz = false;
      for (long rr = r; rr < std::min(block, r + stride_r) && !nz; ++rr)
        for (long cc = c; cc < std::min(block, c + stride_c) && !nz; ++cc)
          nz = full[static_cast<std::size_t>(rr * (block + 1) + cc)] == '*';
      line.push_back(nz ? '*' : ' ');
    }
    std::cout << line << '\n';
  }
  return 0;
}
