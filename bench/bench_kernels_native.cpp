/// \file bench_kernels_native.cpp
/// \brief google-benchmark of the kernels' real host performance.
///
/// Everything else in bench/ reports *simulated A64FX* time.  This binary
/// measures what the VLA-instrumented kernels actually cost on the build
/// machine (wall clock), which bounds how long the simulation benches take
/// and documents the instrumentation overhead.  It is not a reproduction
/// artifact.

#include <benchmark/benchmark.h>

#include <vector>

#include "linalg/kernels.hpp"
#include "support/rng.hpp"
#include "vla/vla.hpp"

namespace {

using namespace v2d;

std::vector<double> make_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(0.5, 1.5);
  return v;
}

void BM_Daxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vla::Context ctx{vla::VectorArch(512)};
  const auto x = make_vec(n, 1);
  auto y = make_vec(n, 2);
  for (auto _ : state) {
    linalg::daxpy(ctx, 1.0000001, x, y);
    benchmark::DoNotOptimize(y.data());
    (void)ctx.take_counts();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Daxpy)->Arg(1000)->Arg(40000);

void BM_Dprod(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vla::Context ctx{vla::VectorArch(512)};
  const auto x = make_vec(n, 3), y = make_vec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::dprod(ctx, x, y));
    (void)ctx.take_counts();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Dprod)->Arg(1000)->Arg(40000);

void BM_StencilRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  vla::Context ctx{vla::VectorArch(512)};
  const auto cc = make_vec(n, 5), cw = make_vec(n, 6), ce = make_vec(n, 7),
             cs = make_vec(n, 8), cn = make_vec(n, 9);
  const auto xc = make_vec(n + 2, 10), xs = make_vec(n, 11),
             xn = make_vec(n, 12);
  std::vector<double> y(n);
  for (auto _ : state) {
    linalg::stencil_row(ctx, cc, cw, ce, cs, cn, xc.data() + 1, xs.data(),
                        xn.data(), y);
    benchmark::DoNotOptimize(y.data());
    (void)ctx.take_counts();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_StencilRow)->Arg(200)->Arg(1000);

void BM_VlaOverhead(benchmark::State& state) {
  // Plain scalar daxpy for comparison against BM_Daxpy: the gap is the
  // cost of instrumented VLA execution.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = make_vec(n, 13);
  auto y = make_vec(n, 14);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) y[i] += 1.0000001 * x[i];
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_VlaOverhead)->Arg(1000)->Arg(40000);

}  // namespace

BENCHMARK_MAIN();
