/// \file bench_kernels_native.cpp
/// \brief Host wall-time of the VLA kernels: interpreter vs native fast path.
///
/// Everything else in bench/ reports *simulated A64FX* time.  This binary
/// measures what the kernels actually cost on the build machine under the
/// two VlaExecMode backends — the before/after of the fast-path engine —
/// plus a plain scalar loop as the floor.  Since both backends produce
/// bit-identical results and recordings (tests/test_vla_fastpath.cpp), the
/// speedup column is pure instrumentation overhead removed; it bounds how
/// long the simulation benches take at scale.  Self-timed, no external
/// benchmark dependency; emits BENCH_kernels.json for CI trend tracking.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/mg/mg_kernels.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace v2d;
using vla::Context;
using vla::VectorArch;
using vla::VlaExecMode;

std::vector<double> make_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(0.5, 1.5);
  return v;
}

volatile double g_sink = 0.0;

/// Best-of-3 wall time of `body()` repeated until each sample spans at
/// least `min_ms` milliseconds (minimum, so background noise only ever
/// inflates the other samples).
template <typename Body>
double seconds_per_call(Body&& body, double min_ms) {
  using clock = std::chrono::steady_clock;
  // Calibrate the repetition count.
  std::uint64_t reps = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) body();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (ms >= min_ms || reps > (1ULL << 30)) break;
    reps = ms <= 0.01 ? reps * 16
                      : static_cast<std::uint64_t>(
                            static_cast<double>(reps) * (1.2 * min_ms / ms)) +
                            1;
  }
  double best = 1e300;
  for (int sample = 0; sample < 3; ++sample) {
    const auto t0 = clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) body();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best / static_cast<double>(reps);
}

struct Result {
  std::string kernel;
  std::size_t n;
  unsigned vl_bits;
  double interp_ns_per_elem;
  double native_ns_per_elem;
  double scalar_ns_per_elem;  // 0 when no scalar reference was run
  double speedup() const { return interp_ns_per_elem / native_ns_per_elem; }
};

/// Run `body(ctx)` under both backends and record ns/element.
template <typename Body>
Result measure(const std::string& name, std::size_t n, unsigned bits,
               double min_ms, Body&& body) {
  Context interp{VectorArch(bits), VlaExecMode::Interpret};
  Context fast{VectorArch(bits), VlaExecMode::Native};
  Result res;
  res.kernel = name;
  res.n = n;
  res.vl_bits = bits;
  const double si = seconds_per_call([&] { body(interp); }, min_ms);
  const double sn = seconds_per_call([&] { body(fast); }, min_ms);
  res.interp_ns_per_elem = 1e9 * si / static_cast<double>(n);
  res.native_ns_per_elem = 1e9 * sn / static_cast<double>(n);
  res.scalar_ns_per_elem = 0.0;
  return res;
}

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "  {\"kernel\": \"%s\", \"n\": %zu, \"vl_bits\": %u, "
                  "\"interp_ns_per_elem\": %.4f, \"native_ns_per_elem\": "
                  "%.4f, \"scalar_ns_per_elem\": %.4f, \"speedup\": %.2f}%s\n",
                  r.kernel.c_str(), r.n, r.vl_bits, r.interp_ns_per_elem,
                  r.native_ns_per_elem, r.scalar_ns_per_elem, r.speedup(),
                  i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("sizes", "1000,40000", "comma list of vector lengths");
  opt.add("vl", "512", "VLA vector length in bits");
  opt.add("min-ms", "20", "minimum milliseconds per timing sample");
  opt.add("out", "BENCH_kernels.json", "JSON output path (empty = none)");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_kernels_native");
    return 1;
  }
  const auto bits = static_cast<unsigned>(opt.get_int("vl"));
  const double min_ms = opt.get_double("min-ms");

  std::vector<std::size_t> sizes;
  {
    std::string item;
    std::stringstream ss(opt.get("sizes"));
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      std::size_t pos = 0;
      std::size_t value = 0;
      try {
        value = std::stoul(item, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != item.size() || value == 0) {
        std::cerr << "--sizes: '" << item << "' is not a positive integer\n"
                  << opt.usage("bench_kernels_native");
        return 1;
      }
      sizes.push_back(value);
    }
  }

  std::vector<Result> results;
  for (const std::size_t n : sizes) {
    const auto x = make_vec(n, 1), w = make_vec(n, 2);
    auto y = make_vec(n, 3);
    std::vector<double> z(n);

    results.push_back(measure("dprod", n, bits, min_ms, [&](Context& ctx) {
      g_sink = linalg::dprod(ctx, x, w);
      (void)ctx.take_counts();
    }));
    results.push_back(measure("daxpy", n, bits, min_ms, [&](Context& ctx) {
      linalg::daxpy(ctx, 1.0000001, x, y);
      (void)ctx.take_counts();
    }));
    // Plain scalar daxpy: the floor the native path is chasing.
    {
      auto ys = make_vec(n, 3);
      const double s = seconds_per_call(
          [&] {
            for (std::size_t i = 0; i < n; ++i)
              ys[i] += 1.0000001 * x[i];
            g_sink = ys[n / 2];
          },
          min_ms);
      results.back().scalar_ns_per_elem = 1e9 * s / static_cast<double>(n);
    }
    results.push_back(measure("dscal", n, bits, min_ms, [&](Context& ctx) {
      linalg::dscal(ctx, 0.75, 0.9999999, y);
      (void)ctx.take_counts();
    }));
    results.push_back(measure("ddaxpy", n, bits, min_ms, [&](Context& ctx) {
      linalg::ddaxpy(ctx, 1.0000001, x, 0.9999999, w, y);
      (void)ctx.take_counts();
    }));
    results.push_back(measure("xpby", n, bits, min_ms, [&](Context& ctx) {
      linalg::xpby(ctx, x, 0.9999999, y);
      (void)ctx.take_counts();
    }));
    results.push_back(measure("copy", n, bits, min_ms, [&](Context& ctx) {
      linalg::copy(ctx, x, z);
      (void)ctx.take_counts();
    }));
    results.push_back(measure("fill", n, bits, min_ms, [&](Context& ctx) {
      linalg::fill(ctx, 1.25, z);
      (void)ctx.take_counts();
    }));
    results.push_back(measure("sub", n, bits, min_ms, [&](Context& ctx) {
      linalg::sub(ctx, x, w, z);
      (void)ctx.take_counts();
    }));
    results.push_back(measure("hadamard", n, bits, min_ms, [&](Context& ctx) {
      linalg::hadamard(ctx, x, w, z);
      (void)ctx.take_counts();
    }));

    // MATVEC in its row form: one stencil row of n zones (ghosted center).
    const auto cc = make_vec(n, 5), cw = make_vec(n, 6), ce = make_vec(n, 7),
               cs = make_vec(n, 8), cn = make_vec(n, 9);
    const auto xc = make_vec(n + 2, 10), xs = make_vec(n, 11),
               xn = make_vec(n, 12);
    results.push_back(measure("matvec", n, bits, min_ms, [&](Context& ctx) {
      linalg::stencil_row(ctx, cc, cw, ce, cs, cn, xc.data() + 1, xs.data(),
                          xn.data(), z);
      (void)ctx.take_counts();
    }));
    results.push_back(
        measure("mg-smooth", n, bits, min_ms, [&](Context& ctx) {
          linalg::mg::diag_correct_row(ctx, 0.8, x, w, y);
          (void)ctx.take_counts();
        }));
  }

  TableWriter table("VLA kernel host wall-time: interpreter vs native");
  table.set_columns({"kernel", "n", "interp ns/elem", "native ns/elem",
                     "scalar ns/elem", "speedup"});
  bool ok = true;
  for (const Result& r : results) {
    table.add_row({r.kernel, std::to_string(r.n),
                   TableWriter::num(r.interp_ns_per_elem, 3),
                   TableWriter::num(r.native_ns_per_elem, 3),
                   r.scalar_ns_per_elem > 0.0
                       ? TableWriter::num(r.scalar_ns_per_elem, 3)
                       : "",
                   TableWriter::num(r.speedup(), 1)});
    // The fast-path engine exists to beat the interpreter by a wide
    // margin on the hot Table II kernels; flag regressions loudly.
    if (r.n >= 40000 &&
        (r.kernel == "daxpy" || r.kernel == "dprod" || r.kernel == "matvec") &&
        r.speedup() < 5.0) {
      ok = false;
    }
  }
  table.print(std::cout);

  const std::string out = opt.get("out");
  if (!out.empty()) {
    write_json(out, results);
    std::cout << "\nwrote " << out << "\n";
  }
  if (!ok) {
    std::cerr << "FAIL: native fast path under 5x on a hot kernel at "
                 "n >= 40000\n";
    return 1;
  }
  return 0;
}
