/// \file bench_precond.cpp
/// \brief Ablation B: preconditioner choice (SPAI profiles vs baselines).
///
/// Compares identity / Jacobi / SPAI(0) / SPAI(1) on the paper's test
/// problem: BiCGSTAB iterations per solve, preconditioner build+apply
/// share, and total simulated time under the Cray profile.  This is the
/// trade the 2004 Swesty–Smolarski–Saylor paper studies: stronger
/// approximate inverses cost more per application than they save in
/// iterations on well-conditioned diffusion systems.
///
///   ./bench_precond [--steps 2] [--tsv]

#include <iostream>

#include "core/v2d.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  opt.add("steps", "2", "time steps per configuration");
  opt.add_flag("tsv", "emit tab-separated values");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_precond");
    return 1;
  }
  const int steps = static_cast<int>(opt.get_int("steps"));

  TableWriter table("Ablation B — preconditioner choice (Cray profile)");
  table.set_columns({"preconditioner", "iters/solve", "precond (s)",
                     "matvec (s)", "total (s)"});

  for (const char* kind : {"identity", "jacobi", "spai0", "spai"}) {
    core::RunConfig cfg;
    cfg.steps = steps;
    cfg.preconditioner = kind;
    cfg.max_iterations = 5000;
    cfg.compilers = {"cray"};
    core::Simulation sim(cfg);
    int iterations = 0;
    for (int s = 0; s < steps; ++s) {
      iterations += sim.advance().total_iterations();
    }
    const auto led = sim.exec().merged_ledger(0);
    const double freq = sim.exec().cost_model().machine().freq_hz;
    auto region_s = [&](const char* r) {
      return led.has(r) ? led.at(r).total_cycles / freq : 0.0;
    };
    table.add_row(
        {kind, TableWriter::num(iterations / (3.0 * steps), 1),
         TableWriter::num(region_s("precond") + region_s("precond-build"), 4),
         TableWriter::num(region_s("matvec"), 4),
         TableWriter::num(sim.elapsed(0), 4)});
    std::cerr << "  finished " << kind << "\n";
  }
  std::cout << (opt.get_bool("tsv") ? table.tsv() : table.str());
  return 0;
}
