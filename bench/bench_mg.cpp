/// \file bench_mg.cpp
/// \brief Ablation: multigrid vs SPAI-family preconditioning at scale.
///
/// The Swesty–Smolarski–Saylor SPAI family buys cheap, perfectly
/// vectorizable applications at the price of an iteration count that
/// grows with resolution.  The geometric multigrid V-cycle inverts that
/// trade: each application costs several stencil sweeps plus coarse-level
/// collectives, but the preconditioned iteration count is essentially
/// h-independent.  This bench measures the crossover on the FLD
/// diffusion system (solve site 1 of the radiation step) with CG, across
/// grid sizes and rank counts, under the Cray profile:
///
///   iterations per solve, preconditioner build/apply seconds, matvec
///   seconds, and total modelled wall-time.
///
///   ./bench_mg [--sizes 64,128,256] [--ranks 1,16] [--tol 1e-8] [--tsv]
///
/// The coarse-level gathers make this the first solver component whose
/// simulated communication is latency- rather than bandwidth-dominated —
/// watch the mg rows' comm share grow with rank count.

#include <iostream>
#include <sstream>

#include "core/config.hpp"
#include "linalg/cg.hpp"
#include "mpisim/exec_model.hpp"
#include "rad/fld.hpp"
#include "rad/gaussian.hpp"
#include "sim/machine.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

/// Square-ish topology for np ranks.
v2d::mpisim::CartTopology topo_for(int np) {
  int px1 = 1;
  for (int d = 1; d * d <= np; ++d)
    if (np % d == 0) px1 = d;
  return v2d::mpisim::CartTopology(np / px1, px1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  opt.add("sizes", "64,128,256", "comma list of square grid sizes");
  opt.add("ranks", "1,16", "comma list of rank counts");
  opt.add("tol", "1e-8", "CG relative tolerance");
  opt.add("max-iter", "5000", "CG iteration cap");
  opt.add_flag("tsv", "emit tab-separated values");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_mg");
    return 1;
  }

  TableWriter table(
      "Preconditioner ablation on the FLD diffusion system (CG, Cray "
      "profile)");
  table.set_columns({"grid", "Np", "precond", "iters", "build (s)",
                     "apply (s)", "matvec (s)", "comm (s)", "total (s)"});

  for (const int n : parse_list(opt.get("sizes"))) {
    for (const int np : parse_list(opt.get("ranks"))) {
      const grid::Grid2D g(n, n, -1.0, 1.0, -1.0, 1.0);
      const auto topo = topo_for(np);
      if (topo.nprx1() > n || topo.nprx2() > n) continue;
      const grid::Decomposition dec(g, topo);

      rad::OpacitySet opac(1);
      opac.absorption(0) = rad::OpacityLaw::constant(0.0);
      opac.scattering(0) = rad::OpacityLaw::constant(10.0);
      rad::FldConfig fld_cfg;
      fld_cfg.include_absorption = false;
      const rad::FldBuilder builder(g, dec, 1, opac, fld_cfg);
      // One scratch workspace per shape, shared by every preconditioner's
      // CG solve below.
      linalg::SolverWorkspace ws(g, dec, 1);

      for (const char* kind : {"jacobi", "spai0", "spai", "mg"}) {
        mpisim::ExecModel em(sim::MachineSpec::a64fx(),
                             {compiler::cray_2103()}, np);
        // Native fast path: the priced stream is identical to the
        // interpreter's (tests/test_vla_fastpath.cpp), only the host time
        // to produce it shrinks.
        linalg::ExecContext ctx(vla::VectorArch(512), &em,
                                vla::VlaExecMode::Native);

        // The paper's pulse supplies the field the limiters chew on.
        linalg::DistVector e(g, dec, 1), e_old(g, dec, 1);
        rad::GaussianPulse pulse;
        pulse.d_coeff = 1.0 / 30.0;
        pulse.t0 = 1.0;
        pulse.fill(e, 0.0);
        e_old.copy_from(ctx, e);

        linalg::StencilOperator A(g, dec, 1);
        linalg::DistVector rhs(g, dec, 1), x(g, dec, 1);
        builder.build_diffusion(ctx, e, e_old, 0.03, A, rhs);
        em.reset();  // measure the solve, not the assembly

        auto M = linalg::make_preconditioner(kind, ctx, A);
        linalg::CgSolver cg(ws);
        linalg::SolveOptions sopt;
        sopt.rel_tol = opt.get_double("tol");
        sopt.max_iterations = static_cast<int>(opt.get_int("max-iter"));
        x.fill(ctx, 0.0);
        const auto stats = cg.solve(ctx, A, *M, x, rhs, sopt);

        const auto led = em.merged_ledger(0);
        const double freq = em.cost_model().machine().freq_hz;
        double build_s = 0.0, apply_s = 0.0, matvec_s = 0.0, comm_s = 0.0;
        for (const auto& [region, cost] : led.regions()) {
          const double s = cost.total_cycles / freq;
          if (region == "precond-build" || region == "mg-build" ||
              region == "mg-coarse-factor") {
            build_s += s;
          } else if (region == "precond" || region.rfind("mg-", 0) == 0) {
            apply_s += s;
          } else if (region == "matvec") {
            matvec_s += s;
          }
          comm_s += cost.comm_seconds;
        }
        table.add_row({std::to_string(n) + "x" + std::to_string(n),
                       TableWriter::integer(np),
                       std::string(kind) + (stats.converged ? "" : " (!)"),
                       TableWriter::integer(stats.iterations),
                       TableWriter::num(build_s / np, 4),
                       TableWriter::num(apply_s / np, 4),
                       TableWriter::num(matvec_s / np, 4),
                       TableWriter::num(comm_s / np, 4),
                       TableWriter::num(em.elapsed(0), 4)});
      }
      std::cerr << "  finished " << n << "x" << n << " Np=" << np << "\n";
    }
  }
  std::cout << (opt.get_bool("tsv") ? table.tsv() : table.str());
  std::cout << "\nSPAI iteration counts grow with resolution; the V-cycle's"
               "\nstay flat, so mg wins total time once the grid is large"
               "\nenough for the extra per-application sweeps to pay off.\n";
  return 0;
}
