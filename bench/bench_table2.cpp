/// \file bench_table2.cpp
/// \brief Reproduces Table II: linear-algebra routine times, SVE vs no-SVE.
///
/// "We wrote a simple single-processor driver program that exercised the
/// actual V2D routines that are utilized in the BiCGSTAB solver ...  We
/// used a linear system with 1000 equations and repeated operations
/// 100,000 times."  This bench does exactly that: a 25×20×2 grid gives the
/// 1000-unknown system; MATVEC, DPROD, DAXPY, DSCAL and DDAXPY run `reps`
/// times under the Cray profile with and without SVE, timed through the
/// PAPI-style counter interface.  The paper's ratio band is 0.16–0.31.
///
///   ./bench_table2 [--reps 100000] [--compiler cray] [--tsv]

#include <iostream>

#include "compiler/profile.hpp"
#include "core/v2d.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/precond.hpp"
#include "linalg/stencil_op.hpp"
#include "perfmon/papi.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace v2d;

/// Fill a vector with a reproducible smooth-ish random field.
void randomize(linalg::DistVector& v, Rng& rng) {
  auto& f = v.field();
  const auto& dec = f.decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < v.ns(); ++s) {
      grid::TileView view = f.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj)
        for (int li = 0; li < e.ni; ++li)
          view(li, lj) = 0.5 + rng.uniform();
    }
  }
}

/// Diffusion-like SPD coefficients for the MATVEC.
void fill_coefficients(linalg::StencilOperator& A, Rng& rng) {
  const auto& dec = A.decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      grid::TileView cc = A.cc().view(r, s);
      grid::TileView cw = A.cw().view(r, s);
      grid::TileView ce = A.ce().view(r, s);
      grid::TileView cs = A.cs().view(r, s);
      grid::TileView cn = A.cn().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const double w = 0.5 + 0.5 * rng.uniform();
          cw(li, lj) = -w;
          ce(li, lj) = -w;
          cs(li, lj) = -w;
          cn(li, lj) = -w;
          cc(li, lj) = 4.0 * w + 1.0;
        }
      }
    }
  }
  A.zero_boundary_coefficients();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("reps", "100000", "repetitions of each routine (paper: 100000)");
  opt.add("nx1", "25", "zones in x1 (25×20×2 = the paper's 1000 equations)");
  opt.add("nx2", "20", "zones in x2");
  opt.add("compiler", "cray", "base compiler profile");
  opt.add("vector-bits", "512", "SVE vector length");
  opt.add_flag("tsv", "emit tab-separated values instead of a table");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_table2");
    return 1;
  }

  const long reps = opt.get_int("reps");
  const int nx1 = static_cast<int>(opt.get_int("nx1"));
  const int nx2 = static_cast<int>(opt.get_int("nx2"));

  const auto base = compiler::find_profile(opt.get("compiler"));
  std::vector<compiler::CodegenProfile> profiles = {base.without_sve(), base};
  constexpr std::size_t kNoSve = 0, kSve = 1;

  grid::Grid2D g(nx1, nx2, 0.0, 1.0, 0.0, 1.0);
  grid::Decomposition dec(g, mpisim::CartTopology(1, 1));
  mpisim::ExecModel em(sim::MachineSpec::a64fx(), profiles, 1);
  linalg::ExecContext ctx(
      vla::VectorArch(static_cast<unsigned>(opt.get_int("vector-bits"))), &em,
      vla::VlaExecMode::Native);

  Rng rng(20220727);  // the paper's arXiv date
  linalg::DistVector x(g, dec, 2), y(g, dec, 2), z(g, dec, 2);
  randomize(x, rng);
  randomize(y, rng);
  randomize(z, rng);
  linalg::StencilOperator A(g, dec, 2);
  fill_coefficients(A, rng);
  // "The actual V2D routines": the driver's MATVEC is the matrix-free
  // operator with on-the-fly coefficient evaluation.
  A.set_evaluation_overhead(linalg::kMatvecEvalDoublesRead,
                            linalg::kMatvecEvalFlops);

  std::cout << "Table II driver: " << g.zones() * 2 << " equations, " << reps
            << " repetitions, profiles '" << profiles[kSve].name()
            << "' vs '" << profiles[kNoSve].name() << "'\n";

  perfmon::EventSet events;
  events.start(em.merged_ledger(kSve));
  for (long i = 0; i < reps; ++i) A.apply(ctx, x, y);
  {
    const auto counters = events.stop(em.merged_ledger(kSve));
    std::cout << "(PAPI " << perfmon::event_name(perfmon::Event::TotalCycles)
              << " for MATVEC under SVE: "
              << counters[static_cast<std::size_t>(
                     perfmon::Event::TotalCycles)]
              << " cycles)\n\n";
  }
  for (long i = 0; i < reps; ++i) (void)linalg::DistVector::dot(ctx, x, y);
  for (long i = 0; i < reps; ++i) y.daxpy(ctx, 1.0009, x);
  for (long i = 0; i < reps; ++i) y.dscal(ctx, 0.75, 1.0003);
  for (long i = 0; i < reps; ++i) z.ddaxpy(ctx, 1.0002, x, 0.9991, y);

  const char* regions[] = {"matvec", "dprod", "daxpy", "dscal", "ddaxpy"};
  const char* labels[] = {"MATVEC", "DPROD", "DAXPY", "DSCAL", "DDAXPY"};

  TableWriter table("TABLE II — LINEAR ALGEBRA ROUTINES TIMES (simulated)");
  table.set_columns({"Routine", "No-SVE (s)", "SVE (s)", "SVE/No-SVE"});
  const auto no_sve = em.merged_ledger(kNoSve);
  const auto sve = em.merged_ledger(kSve);
  const double freq = em.cost_model().machine().freq_hz;
  for (int k = 0; k < 5; ++k) {
    const double t0 = no_sve.at(regions[k]).total_cycles / freq;
    const double t1 = sve.at(regions[k]).total_cycles / freq;
    table.add_row({labels[k], TableWriter::num(t0, 3), TableWriter::num(t1, 3),
                   TableWriter::num(t1 / t0, 2)});
  }
  std::cout << (opt.get_bool("tsv") ? table.tsv() : table.str());
  std::cout << "\nPaper (Cray, A64FX): ratios 0.16 / 0.18 / 0.26 / 0.31 / "
               "0.22 for MATVEC / DPROD / DAXPY / DSCAL / DDAXPY.\n";
  return 0;
}
