/// \file bench_rank_parallel.cpp
/// \brief Host wall-time scaling of the rank-parallel execution engine.
///
/// Everything the simulator prices is unchanged by --host-threads and
/// --host-sched (the rank-parallel engine is bit-identical to serial by
/// construction, and this bench re-verifies that on every run): what
/// changes is how long the *host* takes to execute the simulated ranks.
/// This binary runs the paper's radiation problem on a >= 16-rank tiling
/// at each requested (host-thread count, scheduler) leg — the barrier
/// fork/join pool, the dependency-scheduled task graph with the affinity
/// placement policy disabled ("graph"), and the full wave-2 scheduler
/// ("graph+affinity": home lanes + idle-lane steal fallback) — best of
/// --repeats timing samples so noisy shared CI runners don't flake the
/// gates, checks the simulated clocks and the final field of every sample
/// against the serial baseline, and emits BENCH_rank_parallel.json with
/// all scaling curves plus each row's scheduler-counter breakdown
/// (tasks, chained, steals, home-lane hits, combine nodes).
///
/// Three conditional floors:
///   * >= 2x at 4 threads — only when the machine has >= 4 hardware
///     threads (any scheduler);
///   * graph legs >= 0.95x barrier at the same thread count — only when
///     the machine has >= 2 hardware threads (on one core both
///     schedulers serialize and the ratio is pure scheduling noise);
///   * graph+affinity >= 1.0x plain graph at the same thread count —
///     same >= 2-core condition (affinity must never lose to the
///     submitter-lane placement it replaced).
///
///   ./bench_rank_parallel [--nx1 256 --nx2 128 --nprx1 4 --nprx2 4]
///                         [--threads 1,2,4]
///                         [--scheds barrier,graph,graph+affinity]
///                         [--steps 1]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/v2d.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/task_graph.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace v2d;

/// graph must keep >= this fraction of barrier's host throughput at the
/// same thread count (mirrored by tools/check_bench.py).
constexpr double kGraphFloor = 0.95;
constexpr int kGraphFloorCores = 2;
/// graph+affinity must keep >= this fraction of plain graph's throughput
/// at the same thread count (also mirrored by tools/check_bench.py).
constexpr double kAffinityFloor = 1.0;

struct Result {
  int threads = 0;
  std::string sched = "barrier";
  double host_seconds = 0.0;
  double speedup = 1.0;        // vs the first (serial baseline) row
  double vs_barrier = 1.0;     // this row's throughput / barrier's, same threads
  double vs_graph = 1.0;       // affinity row's throughput / plain graph's
  double sim_elapsed_s = 0.0;  // simulated wall clock (profile 0)
  bool identical = true;       // field + clocks match the serial baseline
  /// Scheduler-counter deltas of the best-timed repetition (task_graph
  /// stats; all zero on barrier rows).
  std::uint64_t sched_tasks = 0;
  std::uint64_t sched_chained = 0;
  std::uint64_t sched_steals = 0;
  std::uint64_t sched_affinity_hits = 0;
  std::uint64_t sched_combines = 0;
  /// What happened to the >= 2x-at-4-threads floor on this row:
  /// "enforced" (conditions met, floor judged), "skipped" (a gate row,
  /// but the host lacks the cores to deliver the parallelism — the
  /// ROADMAP-noted silent never-firing case, now visible in the JSON),
  /// or "n/a" (not a gate row: < 4 threads or < 16 ranks).
  std::string speedup_gate = "n/a";
  /// Same idea for the graph-vs-barrier regression floor: "enforced"
  /// (graph-family row, barrier sibling present, >= 2 host cores),
  /// "skipped" (graph-family row on a cores-starved host) or "n/a"
  /// (barrier row).
  std::string graph_floor = "n/a";
  /// And for the affinity-vs-plain-graph floor: "enforced"
  /// (graph+affinity row, >= 2 host cores), "skipped" (graph+affinity
  /// row on a cores-starved host) or "n/a" (other rows).
  std::string affinity_floor = "n/a";
};

struct Baseline {
  std::vector<double> field;
  std::vector<double> clocks;
  bool set = false;
};

void write_json(const std::string& path, const std::vector<Result>& results,
                int ranks, int nx1, int nx2, int host_cores) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "  {\"threads\": %d, \"sched\": \"%s\", "
        "\"host_seconds\": %.6f, \"speedup\": %.3f, "
        "\"vs_barrier\": %.3f, \"vs_graph\": %.3f, "
        "\"sim_elapsed_s\": %.6f, "
        "\"identical\": %s, \"ranks\": %d, \"nx1\": %d, "
        "\"nx2\": %d, \"host_cores\": %d, "
        "\"sched_tasks\": %llu, \"sched_chained\": %llu, "
        "\"sched_steals\": %llu, \"sched_affinity_hits\": %llu, "
        "\"sched_combines\": %llu, "
        "\"speedup_gate\": \"%s\", \"graph_floor\": \"%s\", "
        "\"affinity_floor\": \"%s\"}%s\n",
        r.threads, r.sched.c_str(), r.host_seconds, r.speedup, r.vs_barrier,
        r.vs_graph, r.sim_elapsed_s, r.identical ? "true" : "false", ranks,
        nx1, nx2, host_cores,
        static_cast<unsigned long long>(r.sched_tasks),
        static_cast<unsigned long long>(r.sched_chained),
        static_cast<unsigned long long>(r.sched_steals),
        static_cast<unsigned long long>(r.sched_affinity_hits),
        static_cast<unsigned long long>(r.sched_combines),
        r.speedup_gate.c_str(), r.graph_floor.c_str(),
        r.affinity_floor.c_str(), i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "]\n";
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("nx1", "256", "zones in x1");
  opt.add("nx2", "128", "zones in x2");
  opt.add("nprx1", "4", "tiles in x1");
  opt.add("nprx2", "4", "tiles in x2 (nprx1*nprx2 simulated ranks)");
  opt.add("steps", "2", "time steps per run");
  opt.add("repeats", "3", "timing repetitions per configuration (best kept)");
  opt.add("threads", "1,2,4", "comma list of host-thread counts");
  opt.add("scheds", "barrier,graph,graph+affinity",
          "comma list of host scheduler legs "
          "(barrier|graph|graph+affinity)");
  opt.add("vla-exec", "native", "VLA backend: native | interpret");
  opt.add("out", "BENCH_rank_parallel.json", "JSON output path (empty = none)");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_rank_parallel");
    return 1;
  }

  std::vector<int> thread_counts;
  for (const std::string& item : split_list(opt.get("threads")))
    thread_counts.push_back(std::stoi(item));
  if (thread_counts.empty() || thread_counts.front() != 1) {
    std::cerr << "--threads must start with 1 (the serial baseline)\n";
    return 1;
  }
  const std::vector<std::string> scheds = split_list(opt.get("scheds"));
  if (scheds.empty() || scheds.front() != "barrier") {
    std::cerr << "--scheds must start with barrier (the reference engine)\n";
    return 1;
  }

  core::RunConfig cfg;
  cfg.nx1 = static_cast<int>(opt.get_int("nx1"));
  cfg.nx2 = static_cast<int>(opt.get_int("nx2"));
  cfg.steps = static_cast<int>(opt.get_int("steps"));
  cfg.nprx1 = static_cast<int>(opt.get_int("nprx1"));
  cfg.nprx2 = static_cast<int>(opt.get_int("nprx2"));
  cfg.vla_exec = opt.get("vla-exec");
  cfg.compilers = {"cray"};
  const int ranks = cfg.nranks();

  const int host_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  const int repeats =
      std::max(1, static_cast<int>(opt.get_int("repeats")));
  std::vector<Result> results;
  Baseline base;
  for (const int threads : thread_counts) {
    for (const std::string& sched : scheds) {
      cfg.host_threads = threads;
      // The "graph" and "graph+affinity" legs run the same --host-sched
      // graph executor; the leg name selects the process-wide affinity
      // placement policy, isolating what homing buys over the wave-1
      // submitter-lane placement.
      const bool graph_family = sched != "barrier";
      cfg.host_sched = graph_family ? "graph" : "barrier";
      task_graph::set_affinity(sched == "graph+affinity");
      // Best-of-N timing: shared CI runners are noisy, and only the best
      // sample reflects what the engine can do.  Every repetition's output
      // is still checked against the serial baseline.
      Result r;
      r.threads = threads;
      r.sched = sched;
      r.host_seconds = 1e300;
      std::vector<double> field;
      std::vector<double> clocks;
      for (int rep = 0; rep < repeats; ++rep) {
        const task_graph::SchedStats before = task_graph::stats();
        core::Simulation sim(cfg);  // applies set_host_threads(...)
        const auto t0 = std::chrono::steady_clock::now();
        sim.run();
        const double host_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
        if (host_s < r.host_seconds) {
          r.host_seconds = host_s;
          const task_graph::SchedStats d = task_graph::stats().since(before);
          r.sched_tasks = d.tasks;
          r.sched_chained = d.chained_tasks;
          r.sched_steals = d.steals;
          r.sched_affinity_hits = d.affinity_hits;
          r.sched_combines = d.combines;
        }
        r.sim_elapsed_s = sim.elapsed(0);
        field = sim.radiation().field().gather_global();
        clocks.clear();
        for (int rank = 0; rank < sim.exec().nranks(); ++rank)
          clocks.push_back(sim.exec().rank_time(0, rank));
        if (base.set && (field != base.field || clocks != base.clocks))
          r.identical = false;
      }
      if (!base.set) {
        base.field = field;
        base.clocks = clocks;
        base.set = true;
      } else {
        r.speedup = results.front().host_seconds / r.host_seconds;
      }
      results.push_back(r);
      std::cerr << "  threads=" << threads << " sched=" << sched
                << "  host=" << r.host_seconds << " s  speedup=" << r.speedup
                << "\n";
    }
  }
  task_graph::set_affinity(true);  // restore the default-on policy

  // Pair every graph-family row with its barrier sibling at the same
  // thread count, and every affinity row with its plain-graph sibling.
  for (Result& r : results) {
    if (r.sched == "barrier") continue;
    for (const Result& b : results) {
      if (b.sched == "barrier" && b.threads == r.threads) {
        r.vs_barrier = b.host_seconds / r.host_seconds;
        break;
      }
    }
    if (r.sched != "graph+affinity") continue;
    for (const Result& g : results) {
      if (g.sched == "graph" && g.threads == r.threads) {
        r.vs_graph = g.host_seconds / r.host_seconds;
        break;
      }
    }
  }

  TableWriter table("Rank-parallel host execution: wall-time scaling (" +
                    std::to_string(ranks) + " simulated ranks, " +
                    cfg.vla_exec + " backend)");
  table.set_columns({"host threads", "sched", "host (s)", "speedup",
                     "vs barrier", "vs graph", "home-lane", "steals",
                     "combines", "sim (s)", "bit-identical"});
  bool identical_ok = true;
  bool speedup_ok = true;
  bool floor_ok = true;
  bool affinity_ok = true;
  for (const Result& r : results) {
    const double home_pct =
        r.sched_chained
            ? 100.0 * static_cast<double>(r.sched_affinity_hits) /
                  static_cast<double>(r.sched_chained)
            : 0.0;
    table.add_row(
        {TableWriter::integer(r.threads), r.sched,
         TableWriter::num(r.host_seconds, 4), TableWriter::num(r.speedup, 2),
         r.sched == "barrier" ? "-" : TableWriter::num(r.vs_barrier, 2),
         r.sched == "graph+affinity" ? TableWriter::num(r.vs_graph, 2) : "-",
         r.sched == "graph+affinity" ? TableWriter::num(home_pct, 1) + "%"
                                     : "-",
         TableWriter::integer(static_cast<long>(r.sched_steals)),
         TableWriter::integer(static_cast<long>(r.sched_combines)),
         TableWriter::num(r.sim_elapsed_s, 4), r.identical ? "yes" : "NO"});
    if (!r.identical) identical_ok = false;
  }
  // The engine's raison d'etre: >= 2x at 4 threads on a >= 16-rank
  // configuration — only judged when the host can physically deliver it.
  // Each gate row records whether the floor was enforced or skipped, so a
  // cores-starved runner shows "skipped" in the JSON instead of silently
  // passing.
  for (Result& r : results) {
    if (r.threads >= 4 && ranks >= 16) {
      if (host_cores < r.threads) {
        r.speedup_gate = "skipped";
      } else {
        r.speedup_gate = "enforced";
        if (r.speedup < 2.0) speedup_ok = false;
      }
    }
    // The graph regression floor: never more than 5% behind barrier at
    // the same thread count — judged only with >= 2 host cores (serial
    // machines measure scheduling noise, not scheduling).  Both graph
    // legs are held to it.
    if (r.sched != "barrier") {
      if (host_cores < kGraphFloorCores) {
        r.graph_floor = "skipped";
      } else {
        r.graph_floor = "enforced";
        if (r.vs_barrier < kGraphFloor) floor_ok = false;
      }
    }
    // The affinity floor: homing must never lose to the submitter-lane
    // placement it replaced — same >= 2-core condition.
    if (r.sched == "graph+affinity") {
      if (host_cores < kGraphFloorCores) {
        r.affinity_floor = "skipped";
      } else {
        r.affinity_floor = "enforced";
        if (r.vs_graph < kAffinityFloor) affinity_ok = false;
      }
    }
  }
  table.print(std::cout);
  std::cout << "host cores: " << host_cores << "\n";

  const std::string out = opt.get("out");
  if (!out.empty()) {
    write_json(out, results, ranks, cfg.nx1, cfg.nx2, host_cores);
    std::cout << "wrote " << out << "\n";
  }
  if (!identical_ok) {
    std::cerr << "FAIL: rank-parallel run diverged from the serial "
                 "baseline (field or simulated clocks differ)\n";
    return 1;
  }
  if (!speedup_ok) {
    std::cerr << "FAIL: under 2x host speedup at 4 threads despite >= 4 "
                 "host cores\n";
    return 1;
  }
  if (!floor_ok) {
    std::cerr << "FAIL: --host-sched graph fell below " << kGraphFloor
              << "x of barrier at the same thread count despite >= "
              << kGraphFloorCores << " host cores\n";
    return 1;
  }
  if (!affinity_ok) {
    std::cerr << "FAIL: graph+affinity fell below " << kAffinityFloor
              << "x of plain graph at the same thread count despite >= "
              << kGraphFloorCores << " host cores\n";
    return 1;
  }
  return 0;
}
