/// \file bench_fusion.cpp
/// \brief Fused-vs-unfused ablation: host wall-time, simulated cycles and
/// priced bytes for the --fuse composites.
///
/// Runs the same Jacobi/SPAI(0)-preconditioned CG solve on the FLD
/// diffusion system twice per configuration — FuseMode::Off (the Table II
/// kernel-per-pass reference) and FuseMode::On (MATVEC+DPROD, DAXPY₂,
/// precond+ganged-dot, fused residual) — across grid sizes and the full
/// architectural VL range.  Fusion must not change the trajectory (the
/// solves are verified bit-identical here, not just in the tests), so
/// every delta in the three reported currencies is pure pass-elimination:
///
///   host seconds      — what the build machine pays to run the numerics
///   simulated seconds — what the modelled A64FX pays (CostModel cycles)
///   bytes moved       — the priced traffic CostModel's roofline sees
///
/// Emits BENCH_fusion.json for tools/check_bench.py; the in-binary gate
/// fails the run if, on memory-bound sizes (>= --gate-size), the host
/// speedup drops under --gate-speedup or fusion stops reducing the
/// simulated memory cycles and bytes.
///
///   ./bench_fusion [--sizes 64,128,256] [--vls 128,512,2048]
///                  [--precond spai0] [--tol 1e-7] [--max-iter 600]
///                  [--gate-size 256] [--gate-speedup 1.3]
///                  [--out BENCH_fusion.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/profile.hpp"
#include "linalg/cg.hpp"
#include "mpisim/exec_model.hpp"
#include "perfmon/perf_stat.hpp"
#include "rad/fld.hpp"
#include "rad/gaussian.hpp"
#include "sim/machine.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace v2d;

std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

/// One fuse-mode leg of an ablation cell.
struct Leg {
  int iterations = 0;
  double host_s = 0.0;
  double sim_s = 0.0;
  double mem_cycles = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::vector<double> solution;
};

Leg run_leg(int n, unsigned vl_bits, const std::string& precond,
            linalg::FuseMode fuse, double tol, int max_iter) {
  const grid::Grid2D g(n, n, -1.0, 1.0, -1.0, 1.0);
  const grid::Decomposition dec(g, mpisim::CartTopology(1, 1));

  rad::OpacitySet opac(1);
  opac.absorption(0) = rad::OpacityLaw::constant(0.0);
  opac.scattering(0) = rad::OpacityLaw::constant(10.0);
  rad::FldConfig fld_cfg;
  fld_cfg.include_absorption = false;
  const rad::FldBuilder builder(g, dec, 1, opac, fld_cfg);

  mpisim::ExecModel em(sim::MachineSpec::a64fx(), {compiler::cray_2103()}, 1);
  linalg::ExecContext ctx(vla::VectorArch(vl_bits), &em,
                          vla::VlaExecMode::Native, fuse);

  linalg::DistVector e(g, dec, 1), e_old(g, dec, 1);
  rad::GaussianPulse pulse;
  pulse.d_coeff = 1.0 / 30.0;
  pulse.t0 = 1.0;
  pulse.fill(e, 0.0);
  e_old.copy_from(ctx, e);

  linalg::StencilOperator A(g, dec, 1);
  linalg::DistVector rhs(g, dec, 1), x(g, dec, 1);
  builder.build_diffusion(ctx, e, e_old, 0.03, A, rhs);
  auto M = linalg::make_preconditioner(precond, ctx, A);

  linalg::SolverWorkspace ws(g, dec, 1);
  linalg::CgSolver cg(ws);
  linalg::SolveOptions sopt;
  sopt.rel_tol = tol;
  sopt.max_iterations = max_iter;

  Leg leg;
  using clock = std::chrono::steady_clock;
  // Sample 0 warms caches/allocations; of the timed samples the best is
  // kept (the solves are bit-identical repeats, so min is the right
  // statistic against background noise).
  for (int sample = 0; sample < 3; ++sample) {
    em.reset();
    x.fill(ctx, 0.0);
    const auto memo0 = perfmon::MemoCacheStats::of(ctx.vctx);
    const auto t0 = clock::now();
    const auto stats = cg.solve(ctx, A, *M, x, rhs, sopt);
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    leg.iterations = stats.iterations;
    if (sample == 0) continue;
    if (leg.host_s == 0.0 || s < leg.host_s) leg.host_s = s;
    const auto memo = perfmon::MemoCacheStats::of(ctx.vctx).since(memo0);
    leg.memo_hits = memo.hits;
    leg.memo_misses = memo.misses;
  }
  leg.sim_s = em.elapsed(0);
  const auto led = em.merged_ledger(0);
  for (const auto& [region, cost] : led.regions()) leg.mem_cycles +=
      cost.memory_cycles;
  leg.bytes = led.total_bytes();
  leg.solution = x.field().gather_global();
  return leg;
}

struct Row {
  int n = 0;
  unsigned vl_bits = 0;
  std::string precond;
  Leg off, on;
  bool identical = false;

  double host_speedup() const { return off.host_s / on.host_s; }
  double sim_speedup() const { return off.sim_s / on.sim_s; }
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "  {\"solver\": \"cg\", \"precond\": \"%s\", \"n\": %d, "
        "\"vl_bits\": %u, \"iters\": %d, "
        "\"host_unfused_s\": %.6f, \"host_fused_s\": %.6f, "
        "\"host_speedup\": %.3f, "
        "\"sim_unfused_s\": %.6f, \"sim_fused_s\": %.6f, "
        "\"sim_speedup\": %.3f, "
        "\"mem_cycles_unfused\": %.0f, \"mem_cycles_fused\": %.0f, "
        "\"bytes_unfused\": %llu, \"bytes_fused\": %llu, "
        "\"identical\": %s, \"memo_hits\": %llu, \"memo_misses\": %llu}%s\n",
        r.precond.c_str(), r.n, r.vl_bits, r.on.iterations, r.off.host_s,
        r.on.host_s, r.host_speedup(), r.off.sim_s, r.on.sim_s,
        r.sim_speedup(), r.off.mem_cycles, r.on.mem_cycles,
        static_cast<unsigned long long>(r.off.bytes),
        static_cast<unsigned long long>(r.on.bytes),
        r.identical ? "true" : "false",
        static_cast<unsigned long long>(r.on.memo_hits),
        static_cast<unsigned long long>(r.on.memo_misses),
        i + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("sizes", "64,128,256", "comma list of square grid sizes");
  opt.add("vls", "128,512,2048", "comma list of SVE vector lengths (bits)");
  opt.add("precond", "spai0", "preconditioner for the CG solve");
  opt.add("tol", "1e-7", "CG relative tolerance");
  opt.add("max-iter", "600", "CG iteration cap");
  opt.add("gate-size", "256", "gate rows with n >= this size");
  opt.add("gate-speedup", "1.3", "minimum fused host speedup on gated rows");
  opt.add("out", "BENCH_fusion.json", "JSON output path (empty = none)");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_fusion");
    return 1;
  }
  const std::string precond = opt.get("precond");
  const double tol = opt.get_double("tol");
  const int max_iter = static_cast<int>(opt.get_int("max-iter"));
  const int gate_size = static_cast<int>(opt.get_int("gate-size"));
  const double gate_speedup = opt.get_double("gate-speedup");

  std::vector<Row> rows;
  for (const int n : parse_list(opt.get("sizes"))) {
    for (const int vl : parse_list(opt.get("vls"))) {
      Row row;
      row.n = n;
      row.vl_bits = static_cast<unsigned>(vl);
      row.precond = precond;
      row.off = run_leg(n, row.vl_bits, precond, linalg::FuseMode::Off, tol,
                        max_iter);
      row.on = run_leg(n, row.vl_bits, precond, linalg::FuseMode::On, tol,
                       max_iter);
      row.identical = row.off.iterations == row.on.iterations &&
                      row.off.solution == row.on.solution;
      rows.push_back(std::move(row));
      std::cerr << "  finished " << n << "x" << n << " vl=" << vl << "\n";
    }
  }

  TableWriter table(
      "Fused-kernel ablation: CG/" + precond +
      " solve, --fuse off vs on (host + simulated A64FX, Cray profile)");
  table.set_columns({"grid", "VL", "iters", "host off (s)", "host on (s)",
                     "host x", "sim off (s)", "sim on (s)", "sim x",
                     "bytes off", "bytes on", "pinned"});
  bool ok = true;
  std::string failures;
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.n) + "x" + std::to_string(r.n),
                   TableWriter::integer(r.vl_bits),
                   TableWriter::integer(r.on.iterations),
                   TableWriter::num(r.off.host_s, 4),
                   TableWriter::num(r.on.host_s, 4),
                   TableWriter::num(r.host_speedup(), 2),
                   TableWriter::num(r.off.sim_s, 4),
                   TableWriter::num(r.on.sim_s, 4),
                   TableWriter::num(r.sim_speedup(), 2),
                   TableWriter::num(static_cast<double>(r.off.bytes) / 1e9, 3) +
                       " GB",
                   TableWriter::num(static_cast<double>(r.on.bytes) / 1e9, 3) +
                       " GB",
                   r.identical ? "yes" : "NO"});
    const std::string cell =
        std::to_string(r.n) + "x" + std::to_string(r.n) + "@" +
        std::to_string(r.vl_bits);
    if (!r.identical) {
      ok = false;
      failures += "  " + cell + ": fused trajectory diverged\n";
    }
    if (r.n >= gate_size) {
      if (r.host_speedup() < gate_speedup) {
        ok = false;
        failures += "  " + cell + ": host speedup " +
                    std::to_string(r.host_speedup()) + " < gate\n";
      }
      if (r.on.mem_cycles >= r.off.mem_cycles) {
        ok = false;
        failures += "  " + cell + ": simulated memory cycles not reduced\n";
      }
      if (r.on.bytes >= r.off.bytes) {
        ok = false;
        failures += "  " + cell + ": priced bytes not reduced\n";
      }
    }
  }
  table.print(std::cout);
  if (!rows.empty()) {
    // Fast-path recording overhead of the last fused leg (perfmon
    // satellite): steady-state solves should be ~all memo hits.
    const perfmon::MemoCacheStats memo{rows.back().on.memo_hits,
                                       rows.back().on.memo_misses};
    std::cout << "\n" << perfmon::format_memo_cache(memo) << "\n";
  }

  const std::string out = opt.get("out");
  if (!out.empty()) {
    write_json(out, rows);
    std::cout << "wrote " << out << "\n";
  }
  if (!ok) {
    std::cerr << "FAIL:\n" << failures;
    return 1;
  }
  return 0;
}
