/// \file bench_fusion.cpp
/// \brief Fused-vs-unfused ablation: host wall-time, simulated cycles and
/// priced bytes for the --fuse composites.
///
/// Runs the same Jacobi/SPAI(0)-preconditioned CG solve on the FLD
/// diffusion system three times per configuration — FuseMode::Off (the
/// Table II kernel-per-pass reference), FuseMode::On (the hand-written
/// MATVEC+DPROD, DAXPY₂, precond+ganged-dot, fused-residual composites)
/// and FuseMode::Plan (the same composites emitted by the fusion planner,
/// src/linalg/fusion/) — across grid sizes and the full architectural VL
/// range.  Fusion must not change the trajectory (the solves are verified
/// bit-identical here, not just in the tests), so every delta in the
/// three reported currencies is pure pass-elimination:
///
///   host seconds      — what the build machine pays to run the numerics
///   simulated seconds — what the modelled A64FX pays (CostModel cycles)
///   bytes moved       — the priced traffic CostModel's roofline sees
///
/// Emits BENCH_fusion.json for tools/check_bench.py; the in-binary gate
/// fails the run if, on memory-bound sizes (>= --gate-size), the host
/// speedup drops under --gate-speedup, fusion stops reducing the
/// simulated memory cycles and bytes, the planner legs fall more than 5%
/// of host speedup behind the hand-written ones, or the planner's
/// simulated clock exceeds the hand-written clock anywhere.
///
///   ./bench_fusion [--sizes 64,128,256] [--vls 128,512,2048]
///                  [--precond spai0] [--tol 1e-7] [--max-iter 600]
///                  [--gate-size 256] [--gate-speedup 1.3]
///                  [--out BENCH_fusion.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/profile.hpp"
#include "linalg/cg.hpp"
#include "mpisim/exec_model.hpp"
#include "perfmon/perf_stat.hpp"
#include "rad/fld.hpp"
#include "rad/gaussian.hpp"
#include "sim/machine.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace {

using namespace v2d;

std::vector<int> parse_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

/// One fuse-mode leg of an ablation cell.
struct Leg {
  int iterations = 0;
  double host_s = 0.0;
  double sim_s = 0.0;
  double mem_cycles = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::vector<double> solution;
};

/// Sampling plan per leg: kRounds rounds of kSamplesPerRound consecutive
/// timed solves (plus one warm-up before the first).  The best sample is
/// kept — the solves are bit-identical repeats, so min is the right
/// statistic against background noise.  Rounds rotate across the three
/// fuse modes so a background-load burst hits every mode equally, while
/// the consecutive samples inside a round keep each leg's working set
/// cache-hot — timing a leg cold adds the same constant to every mode and
/// artificially compresses the speedup ratios.
constexpr int kRounds = 2;
constexpr int kSamplesPerRound = 4;

/// All live state for one fuse-mode leg of an ablation cell.  Sessions are
/// kept alive across the whole cell so the off/on/plan samples can be
/// interleaved — a background-load burst then hits every mode equally
/// instead of poisoning whichever leg it landed on.
struct LegSession {
  grid::Grid2D g;
  grid::Decomposition dec;
  rad::OpacitySet opac;
  rad::FldConfig fld_cfg;
  rad::FldBuilder builder;
  mpisim::ExecModel em;
  linalg::ExecContext ctx;
  linalg::DistVector e, e_old, rhs, x;
  linalg::StencilOperator A;
  std::unique_ptr<linalg::Preconditioner> M;
  linalg::SolverWorkspace ws;
  linalg::CgSolver cg;
  linalg::SolveOptions sopt;
  Leg leg;

  static rad::OpacitySet make_opac() {
    rad::OpacitySet o(1);
    o.absorption(0) = rad::OpacityLaw::constant(0.0);
    o.scattering(0) = rad::OpacityLaw::constant(10.0);
    return o;
  }
  static rad::FldConfig make_fld_cfg() {
    rad::FldConfig c;
    c.include_absorption = false;
    return c;
  }

  LegSession(int n, unsigned vl_bits, const std::string& precond,
             linalg::FuseMode fuse, double tol, int max_iter)
      : g(n, n, -1.0, 1.0, -1.0, 1.0),
        dec(g, mpisim::CartTopology(1, 1)),
        opac(make_opac()),
        fld_cfg(make_fld_cfg()),
        builder(g, dec, 1, opac, fld_cfg),
        em(sim::MachineSpec::a64fx(), {compiler::cray_2103()}, 1),
        ctx(vla::VectorArch(vl_bits), &em, vla::VlaExecMode::Native, fuse),
        e(g, dec, 1),
        e_old(g, dec, 1),
        rhs(g, dec, 1),
        x(g, dec, 1),
        A(g, dec, 1),
        ws(g, dec, 1),
        cg(ws) {
    rad::GaussianPulse pulse;
    pulse.d_coeff = 1.0 / 30.0;
    pulse.t0 = 1.0;
    pulse.fill(e, 0.0);
    e_old.copy_from(ctx, e);
    builder.build_diffusion(ctx, e, e_old, 0.03, A, rhs);
    M = linalg::make_preconditioner(precond, ctx, A);
    sopt.rel_tol = tol;
    sopt.max_iterations = max_iter;
  }

  /// Run one timed solve; `warm` samples prime caches/allocations and are
  /// discarded.
  void sample(bool warm) {
    using clock = std::chrono::steady_clock;
    em.reset();
    x.fill(ctx, 0.0);
    const auto memo0 = perfmon::MemoCacheStats::of(ctx.vctx);
    const auto t0 = clock::now();
    const auto stats = cg.solve(ctx, A, *M, x, rhs, sopt);
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    leg.iterations = stats.iterations;
    if (warm) return;
    if (leg.host_s == 0.0 || s < leg.host_s) leg.host_s = s;
    const auto memo = perfmon::MemoCacheStats::of(ctx.vctx).since(memo0);
    leg.memo_hits = memo.hits;
    leg.memo_misses = memo.misses;
  }

  /// Harvest the deterministic quantities from the last sample's ledger.
  Leg finish() {
    leg.sim_s = em.elapsed(0);
    const auto led = em.merged_ledger(0);
    for (const auto& [region, cost] : led.regions())
      leg.mem_cycles += cost.memory_cycles;
    leg.bytes = led.total_bytes();
    leg.solution = x.field().gather_global();
    return std::move(leg);
  }
};

struct Row {
  int n = 0;
  unsigned vl_bits = 0;
  std::string precond;
  Leg off, on, plan;
  bool identical = false;       // on solution == off solution
  bool plan_identical = false;  // plan solution == off solution
  bool plan_gated = false;      // host floor applied (n >= gate size)

  double host_speedup() const { return off.host_s / on.host_s; }
  double sim_speedup() const { return off.sim_s / on.sim_s; }
  double plan_host_speedup() const { return off.host_s / plan.host_s; }
  double plan_sim_speedup() const { return off.sim_s / plan.sim_s; }
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[1536];
    std::snprintf(
        buf, sizeof buf,
        "  {\"solver\": \"cg\", \"precond\": \"%s\", \"n\": %d, "
        "\"vl_bits\": %u, \"iters\": %d, "
        "\"host_unfused_s\": %.6f, \"host_fused_s\": %.6f, "
        "\"host_plan_s\": %.6f, "
        "\"host_speedup\": %.3f, \"plan_host_speedup\": %.3f, "
        "\"sim_unfused_s\": %.6f, \"sim_fused_s\": %.6f, "
        "\"sim_plan_s\": %.6f, \"sim_speedup\": %.3f, "
        "\"mem_cycles_unfused\": %.0f, \"mem_cycles_fused\": %.0f, "
        "\"mem_cycles_plan\": %.0f, "
        "\"bytes_unfused\": %llu, \"bytes_fused\": %llu, "
        "\"bytes_plan\": %llu, "
        "\"identical\": %s, \"plan_identical\": %s, "
        "\"plan_gate\": \"%s\", "
        "\"memo_hits\": %llu, \"memo_misses\": %llu}%s\n",
        r.precond.c_str(), r.n, r.vl_bits, r.on.iterations, r.off.host_s,
        r.on.host_s, r.plan.host_s, r.host_speedup(), r.plan_host_speedup(),
        r.off.sim_s, r.on.sim_s, r.plan.sim_s, r.sim_speedup(),
        r.off.mem_cycles, r.on.mem_cycles, r.plan.mem_cycles,
        static_cast<unsigned long long>(r.off.bytes),
        static_cast<unsigned long long>(r.on.bytes),
        static_cast<unsigned long long>(r.plan.bytes),
        r.identical ? "true" : "false",
        r.plan_identical ? "true" : "false",
        r.plan_gated ? "enforced" : "n/a",
        static_cast<unsigned long long>(r.on.memo_hits),
        static_cast<unsigned long long>(r.on.memo_misses),
        i + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.add("sizes", "64,128,256", "comma list of square grid sizes");
  opt.add("vls", "128,512,2048", "comma list of SVE vector lengths (bits)");
  opt.add("precond", "spai0", "preconditioner for the CG solve");
  opt.add("tol", "1e-7", "CG relative tolerance");
  opt.add("max-iter", "600", "CG iteration cap");
  opt.add("gate-size", "256", "gate rows with n >= this size");
  opt.add("gate-speedup", "1.3", "minimum fused host speedup on gated rows");
  opt.add("out", "BENCH_fusion.json", "JSON output path (empty = none)");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("bench_fusion");
    return 1;
  }
  const std::string precond = opt.get("precond");
  const double tol = opt.get_double("tol");
  const int max_iter = static_cast<int>(opt.get_int("max-iter"));
  const int gate_size = static_cast<int>(opt.get_int("gate-size"));
  const double gate_speedup = opt.get_double("gate-speedup");

  std::vector<Row> rows;
  for (const int n : parse_list(opt.get("sizes"))) {
    for (const int vl : parse_list(opt.get("vls"))) {
      Row row;
      row.n = n;
      row.vl_bits = static_cast<unsigned>(vl);
      row.precond = precond;
      LegSession off(n, row.vl_bits, precond, linalg::FuseMode::Off, tol,
                     max_iter);
      LegSession on(n, row.vl_bits, precond, linalg::FuseMode::On, tol,
                    max_iter);
      LegSession plan(n, row.vl_bits, precond, linalg::FuseMode::Plan, tol,
                      max_iter);
      for (int round = 0; round < kRounds; ++round) {
        for (LegSession* leg : {&off, &on, &plan}) {
          if (round == 0) leg->sample(/*warm=*/true);
          for (int k = 0; k < kSamplesPerRound; ++k)
            leg->sample(/*warm=*/false);
        }
      }
      row.off = off.finish();
      row.on = on.finish();
      row.plan = plan.finish();
      row.identical = row.off.iterations == row.on.iterations &&
                      row.off.solution == row.on.solution;
      row.plan_identical = row.off.iterations == row.plan.iterations &&
                           row.off.solution == row.plan.solution;
      row.plan_gated = n >= gate_size;
      rows.push_back(std::move(row));
      std::cerr << "  finished " << n << "x" << n << " vl=" << vl << "\n";
    }
  }

  TableWriter table(
      "Fused-kernel ablation: CG/" + precond +
      " solve, --fuse off vs on vs plan (host + simulated A64FX, Cray "
      "profile)");
  table.set_columns({"grid", "VL", "iters", "host off (s)", "host on (s)",
                     "host plan (s)", "on x", "plan x", "sim off (s)",
                     "sim on (s)", "sim plan (s)", "bytes off", "bytes on",
                     "pinned"});
  bool ok = true;
  std::string failures;
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.n) + "x" + std::to_string(r.n),
                   TableWriter::integer(r.vl_bits),
                   TableWriter::integer(r.on.iterations),
                   TableWriter::num(r.off.host_s, 4),
                   TableWriter::num(r.on.host_s, 4),
                   TableWriter::num(r.plan.host_s, 4),
                   TableWriter::num(r.host_speedup(), 2),
                   TableWriter::num(r.plan_host_speedup(), 2),
                   TableWriter::num(r.off.sim_s, 4),
                   TableWriter::num(r.on.sim_s, 4),
                   TableWriter::num(r.plan.sim_s, 4),
                   TableWriter::num(static_cast<double>(r.off.bytes) / 1e9, 3) +
                       " GB",
                   TableWriter::num(static_cast<double>(r.on.bytes) / 1e9, 3) +
                       " GB",
                   r.identical && r.plan_identical ? "yes" : "NO"});
    const std::string cell =
        std::to_string(r.n) + "x" + std::to_string(r.n) + "@" +
        std::to_string(r.vl_bits);
    if (!r.identical) {
      ok = false;
      failures += "  " + cell + ": fused trajectory diverged\n";
    }
    if (!r.plan_identical) {
      ok = false;
      failures += "  " + cell + ": planned trajectory diverged\n";
    }
    // The planner's simulated clock may never exceed the hand-written
    // composites': it is supposed to emit the same fused groups, and the
    // clock is deterministic, so this holds on every row, not just the
    // memory-bound ones.
    if (r.plan.sim_s > r.on.sim_s) {
      ok = false;
      failures += "  " + cell + ": planned simulated clock " +
                  std::to_string(r.plan.sim_s) + " s > hand-written " +
                  std::to_string(r.on.sim_s) + " s\n";
    }
    if (r.n >= gate_size) {
      if (r.host_speedup() < gate_speedup) {
        ok = false;
        failures += "  " + cell + ": host speedup " +
                    std::to_string(r.host_speedup()) + " < gate\n";
      }
      // Planner dispatch overhead allowance: plan must keep >= 95% of the
      // hand-written composites' host speedup on memory-bound sizes.
      if (r.plan_host_speedup() < 0.95 * r.host_speedup()) {
        ok = false;
        failures += "  " + cell + ": planned host speedup " +
                    std::to_string(r.plan_host_speedup()) +
                    " < 95% of hand-written " +
                    std::to_string(r.host_speedup()) + "\n";
      }
      if (r.on.mem_cycles >= r.off.mem_cycles) {
        ok = false;
        failures += "  " + cell + ": simulated memory cycles not reduced\n";
      }
      if (r.on.bytes >= r.off.bytes) {
        ok = false;
        failures += "  " + cell + ": priced bytes not reduced\n";
      }
    }
  }
  table.print(std::cout);
  if (!rows.empty()) {
    // Fast-path recording overhead of the last fused leg (perfmon
    // satellite): steady-state solves should be ~all memo hits.
    const perfmon::MemoCacheStats memo{rows.back().on.memo_hits,
                                       rows.back().on.memo_misses};
    std::cout << "\n" << perfmon::format_memo_cache(memo) << "\n";
  }

  const std::string out = opt.get("out");
  if (!out.empty()) {
    write_json(out, rows);
    std::cout << "wrote " << out << "\n";
  }
  if (!ok) {
    std::cerr << "FAIL:\n" << failures;
    return 1;
  }
  return 0;
}
