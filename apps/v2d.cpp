/// \file v2d.cpp
/// \brief The unified V2D driver: any registered scenario, one binary.
///
/// Replaces the per-example wiring: every workload in the ScenarioRegistry
/// runs through the same priced driver spine with the same knobs.
///
///   ./v2d --list-problems
///   ./v2d --problem gaussian-pulse --steps 20
///   ./v2d --problem sedov-radhydro --nx1 48 --nx2 48 --steps 15
///   ./v2d --problem hotspot-absorber --steps 10 --checkpoint run.h5l \
///         --checkpoint-every 5
///   ./v2d --problem hotspot-absorber --steps 20 --restart run.h5l
///   ./v2d --farm jobs.txt --host-threads 8
///
/// `--list-problems` prints one "name<TAB>description" line per catalog
/// entry (machine-friendly: CI iterates `v2d --list-problems | cut -f1`).
///
/// `--farm jobs.txt` runs a whole job list through one process (see
/// farm/job_file.hpp for the format): every line is a full v2d command
/// line, all jobs share the warm caches and the host pool, and the run
/// ends with a per-job table plus aggregate throughput.  Exit status is
/// nonzero when any job failed.

#include <cstddef>
#include <iostream>

#include "core/v2d.hpp"
#include "farm/farm.hpp"
#include "linalg/fusion/fused_exec.hpp"
#include "farm/job_file.hpp"
#include "perfmon/perf_stat.hpp"
#include "resilience/fault_plan.hpp"
#include "scenario/registry.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/task_graph.hpp"
#include "support/units.hpp"
#include "vla/vla.hpp"

namespace {

int run_farm(const std::string& job_path, const v2d::Options& opt) {
  using namespace v2d;
  farm::FarmOptions fopt;
  fopt.host_threads = static_cast<int>(opt.get_int("host-threads"));
  fopt.max_concurrent =
      static_cast<int>(opt.get_int("farm-max-concurrent"));
  fopt.fault_plan = resilience::FaultPlan(
      static_cast<std::uint64_t>(opt.get_int("fault-seed")),
      opt.get("fault-spec"));
  fopt.max_retries = static_cast<int>(opt.get_int("farm-max-retries"));
  fopt.backoff_base_waves =
      static_cast<int>(opt.get_int("farm-backoff-base"));
  fopt.backoff_cap_waves = static_cast<int>(opt.get_int("farm-backoff-cap"));
  fopt.job_step_budget = opt.get_int("farm-step-budget");
  fopt.job_sim_budget = opt.get_double("farm-sim-budget");
  farm::FarmScheduler sched(fopt);
  for (auto& job : farm::parse_job_file(job_path))
    sched.add(std::move(job));

  std::cout << "v2d farm: " << sched.job_count() << " job(s) from "
            << job_path << "\n";
  if (fopt.fault_plan.active())
    std::cout << "fault injection: seed " << fopt.fault_plan.seed()
              << ", spec '" << opt.get("fault-spec") << "', max retries "
              << fopt.max_retries << "\n";
  const farm::FarmSummary sum = sched.run();

  TableWriter table("\nFarm jobs");
  table.set_columns({"job", "problem", "steps", "sim time", "check",
                     "t_sim (s)", "attempts", "status", "cause"});
  for (const auto& r : sum.jobs) {
    const std::string t0 =
        r.profile_elapsed.empty()
            ? std::string("-")
            : TableWriter::num(r.profile_elapsed.front().second, 3);
    table.add_row({r.name, r.problem, std::to_string(r.steps),
                   TableWriter::num(r.sim_time, 3),
                   r.error.empty() ? TableWriter::num(r.analytic_error, 3)
                                   : "-",
                   t0, std::to_string(r.attempts),
                   r.error.empty() ? "ok" : "FAILED",
                   r.cause.empty() ? "-" : r.cause});
  }
  std::cout << table.str();
  for (const auto& r : sum.jobs)
    if (!r.error.empty())
      std::cout << "job " << r.name << " failed: " << r.error << '\n';

  // Per-job recovery ledgers: every injected fault, fallback, retry,
  // backoff and quarantine, in step order.
  for (const auto& r : sum.jobs) {
    if (r.recovery.empty()) continue;
    std::cout << "recovery[" << r.name << "]:\n";
    for (const auto& ev : r.recovery)
      std::cout << "  " << resilience::format_event(ev) << '\n';
  }

  // Aggregate throughput + shared-runtime effectiveness.  The memo line
  // is the *process-wide* total (all fork families and farm prototypes).
  const perfmon::MemoCacheStats memo{vla::process_memo_hits(),
                                     vla::process_memo_misses()};
  std::cout << "\nfarm summary:\n"
            << "  jobs:      " << (sum.jobs.size() - sum.failed) << " ok, "
            << sum.failed << " failed in "
            << TableWriter::num(sum.host_seconds, 3) << " s ("
            << TableWriter::num(sum.jobs_per_sec, 2) << " jobs/s)\n"
            << "  recovery:  " << sum.retries << " retries, "
            << sum.quarantined << " quarantined, " << sum.waves
            << " waves\n"
            << "  steps:     " << sum.scenario_steps << " scenario-steps ("
            << TableWriter::num(sum.steps_per_sec, 1) << " steps/s)\n"
            << "  " << perfmon::format_memo_cache(memo) << '\n'
            << "  price memo: " << sum.price_hits << " hits, "
            << sum.price_misses << " misses\n"
            << "  workspaces: " << sum.workspaces_created << " created, "
            << sum.workspaces_reused << " reused\n";
  return sum.failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  core::RunConfig::register_options(opt);
  opt.add_flag("list-problems", "print the scenario catalog and exit");
  opt.add("farm", "", "run a job list through the farm (one v2d command "
                      "line per job; see src/farm/job_file.hpp)");
  opt.add("farm-max-concurrent", "0",
          "max resident farm sessions (0 = all jobs)");
  opt.add("fault-seed", "0",
          "deterministic fault-injection seed (0 = injection off); the "
          "same seed always produces the same fault schedule");
  opt.add("fault-spec", "throw",
          "fault clauses, comma-separated: kind | kind:count | kind@step "
          "with kind breakdown|nan|io|throw (see src/resilience/)");
  opt.add("farm-max-retries", "0",
          "retry a failed farm job this many times, resuming from its "
          "latest finalized checkpoint (0 = no retry)");
  opt.add("farm-backoff-base", "1",
          "waves the first retry waits; doubles per retry");
  opt.add("farm-backoff-cap", "8", "backoff ceiling in waves");
  opt.add("farm-step-budget", "0",
          "per-job driven-step budget across attempts (0 = unlimited); "
          "exceeding it is a deadline failure");
  opt.add("farm-sim-budget", "0",
          "per-job simulated-seconds budget on profile 0 (0 = unlimited)");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("v2d");
    return 1;
  }

  auto& registry = scenario::ScenarioRegistry::instance();
  if (opt.get_bool("list-problems")) {
    for (const auto& name : registry.names())
      std::cout << name << '\t' << registry.description(name) << '\n';
    return 0;
  }

  if (!opt.get("farm").empty()) {
    try {
      return run_farm(opt.get("farm"), opt);
    } catch (const Error& e) {
      std::cerr << "v2d farm: " << e.what() << '\n';
      return 1;
    }
  }

  try {
    const core::RunConfig cfg = core::RunConfig::from_options(opt);
    core::Simulation sim(cfg);
    // Solo fault injection: same deterministic schedule a farm would
    // derive for a job named after the problem.  Without --farm there is
    // no retry policy — a fault surfaces as a structured error (or a
    // guard trip when --guard on), which is the point of the demo.
    const resilience::FaultPlan plan(
        static_cast<std::uint64_t>(opt.get_int("fault-seed")),
        opt.get("fault-spec"));
    resilience::FaultInjector injector(
        plan.schedule(cfg.problem, 0, cfg.steps));
    if (plan.active()) sim.set_fault_injector(&injector);
    if (!cfg.restart_path.empty()) sim.restart(cfg.restart_path);

    std::cout << "v2d: problem = " << cfg.problem << " ("
              << registry.description(cfg.problem) << ")\n"
              << "     " << cfg.nx1 << "x" << cfg.nx2 << "x" << cfg.ns
              << " unknowns, " << cfg.nranks() << " simulated rank(s) ("
              << cfg.nprx1 << "x" << cfg.nprx2 << ")";
    if (sim.steps_taken() > 0)
      std::cout << ", restarted at step " << sim.steps_taken();
    std::cout << "\n\n";

    const int total = cfg.steps;
    const int stride = std::max(1, (total - sim.steps_taken()) / 10);
    sim.run([&](const rad::StepStats& stats) {
      const int n = sim.steps_taken();
      if (n % stride == 0 || n == total) {
        std::cout << "step " << n << ": t = " << sim.time()
                  << ", iterations = " << stats.total_iterations()
                  << ", total energy = " << sim.total_energy() << '\n';
      }
    });

    std::cout << "\nscenario check (analytic error / conservation drift): "
              << sim.analytic_error() << '\n';
    if (cfg.host_sched == "graph")
      std::cout << perfmon::format_host_sched(
                       perfmon::HostSchedStats::of(task_graph::stats()))
                << '\n';
    if (!cfg.checkpoint_path.empty())
      std::cout << "checkpoint written to " << cfg.checkpoint_path << '\n';
    if (!sim.recovery().empty()) {
      std::cout << "recovery ledger:\n";
      for (const auto& ev : sim.recovery().events)
        std::cout << "  " << resilience::format_event(ev) << '\n';
    }
    if (cfg.dump_fusion_plan) {
      std::cout << "\nfusion plans:\n"
                << linalg::fusion::describe_builtin_plans();
      const std::string dags = sim.context().vctx.dag_store().dump_all();
      if (!dags.empty())
        std::cout << "captured kernel DAGs (--fuse plan only):\n" << dags;
    }

    TableWriter table("\nSimulated execution (per compiler profile)");
    table.set_columns({"profile", "time (s)", "flops", "bytes moved"});
    for (std::size_t p = 0; p < sim.exec().nprofiles(); ++p) {
      const auto led = sim.exec().merged_ledger(p);
      const double elapsed = sim.elapsed(p);
      table.add_row({sim.exec().profile(p).name(),
                     TableWriter::num(elapsed, 3),
                     elapsed > 0.0
                         ? units::rate(static_cast<double>(led.total_flops()) /
                                           elapsed,
                                       "flop")
                         : "-",
                     units::bytes(static_cast<double>(led.total_bytes()))});
    }
    std::cout << table.str();
    std::cout << "\nTAU-style call-site profile ("
              << sim.exec().profile(0).name() << "):\n"
              << sim.profiler(0).report();
  } catch (const Error& e) {
    std::cerr << "v2d: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
