/// \file v2d.cpp
/// \brief The unified V2D driver: any registered scenario, one binary.
///
/// Replaces the per-example wiring: every workload in the ScenarioRegistry
/// runs through the same priced driver spine with the same knobs.
///
///   ./v2d --list-problems
///   ./v2d --problem gaussian-pulse --steps 20
///   ./v2d --problem sedov-radhydro --nx1 48 --nx2 48 --steps 15
///   ./v2d --problem hotspot-absorber --steps 10 --checkpoint run.h5l \
///         --checkpoint-every 5
///   ./v2d --problem hotspot-absorber --steps 20 --restart run.h5l
///
/// `--list-problems` prints one "name<TAB>description" line per catalog
/// entry (machine-friendly: CI iterates `v2d --list-problems | cut -f1`).

#include <iostream>

#include "core/v2d.hpp"
#include "scenario/registry.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

int main(int argc, char** argv) {
  using namespace v2d;
  Options opt;
  core::RunConfig::register_options(opt);
  opt.add_flag("list-problems", "print the scenario catalog and exit");
  try {
    opt.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n' << opt.usage("v2d");
    return 1;
  }

  auto& registry = scenario::ScenarioRegistry::instance();
  if (opt.get_bool("list-problems")) {
    for (const auto& name : registry.names())
      std::cout << name << '\t' << registry.description(name) << '\n';
    return 0;
  }

  try {
    const core::RunConfig cfg = core::RunConfig::from_options(opt);
    core::Simulation sim(cfg);
    if (!cfg.restart_path.empty()) sim.restart(cfg.restart_path);

    std::cout << "v2d: problem = " << cfg.problem << " ("
              << registry.description(cfg.problem) << ")\n"
              << "     " << cfg.nx1 << "x" << cfg.nx2 << "x" << cfg.ns
              << " unknowns, " << cfg.nranks() << " simulated rank(s) ("
              << cfg.nprx1 << "x" << cfg.nprx2 << ")";
    if (sim.steps_taken() > 0)
      std::cout << ", restarted at step " << sim.steps_taken();
    std::cout << "\n\n";

    const int total = cfg.steps;
    const int stride = std::max(1, (total - sim.steps_taken()) / 10);
    sim.run([&](const rad::StepStats& stats) {
      const int n = sim.steps_taken();
      if (n % stride == 0 || n == total) {
        std::cout << "step " << n << ": t = " << sim.time()
                  << ", iterations = " << stats.total_iterations()
                  << ", total energy = " << sim.total_energy() << '\n';
      }
    });

    std::cout << "\nscenario check (analytic error / conservation drift): "
              << sim.analytic_error() << '\n';
    if (!cfg.checkpoint_path.empty())
      std::cout << "checkpoint written to " << cfg.checkpoint_path << '\n';

    TableWriter table("\nSimulated execution (per compiler profile)");
    table.set_columns({"profile", "time (s)", "flops", "bytes moved"});
    for (std::size_t p = 0; p < sim.exec().nprofiles(); ++p) {
      const auto led = sim.exec().merged_ledger(p);
      const double elapsed = sim.elapsed(p);
      table.add_row({sim.exec().profile(p).name(),
                     TableWriter::num(elapsed, 3),
                     elapsed > 0.0
                         ? units::rate(static_cast<double>(led.total_flops()) /
                                           elapsed,
                                       "flop")
                         : "-",
                     units::bytes(static_cast<double>(led.total_bytes()))});
    }
    std::cout << table.str();
    std::cout << "\nTAU-style call-site profile ("
              << sim.exec().profile(0).name() << "):\n"
              << sim.profiler(0).report();
  } catch (const Error& e) {
    std::cerr << "v2d: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
