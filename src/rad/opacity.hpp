#pragma once
/// \file opacity.hpp
/// \brief Opacity models for the multigroup radiation species.
///
/// Each radiation species (energy group) has absorption and scattering
/// opacities in inverse-length units.  The models are deliberately simple
/// analytic forms (constant and temperature power-law) — the SVE study's
/// test problem uses constant opacities, and the power law exists so the
/// coefficient-assembly code path has real temperature dependence to chew
/// on in the physics-heavy benches.

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace v2d::rad {

/// Per-species opacity description: κ(T, ρ) = κ₀ · (T/T₀)^a · (ρ/ρ₀)^b.
struct OpacityLaw {
  double kappa0 = 1.0;   ///< base opacity [1/length]
  double t_ref = 1.0;    ///< reference temperature
  double t_exp = 0.0;    ///< temperature exponent a (e.g. −3.5 Kramers-like)
  double rho_ref = 1.0;  ///< reference density
  double rho_exp = 0.0;  ///< density exponent b

  double evaluate(double temperature, double density) const {
    V2D_CHECK(temperature > 0.0 && density > 0.0,
              "opacity needs positive state");
    double k = kappa0;
    if (t_exp != 0.0) k *= std::pow(temperature / t_ref, t_exp);
    if (rho_exp != 0.0) k *= std::pow(density / rho_ref, rho_exp);
    return k;
  }

  /// True when the law ignores the material state (both exponents zero).
  bool is_constant() const { return t_exp == 0.0 && rho_exp == 0.0; }

  static OpacityLaw constant(double kappa) { return OpacityLaw{kappa}; }
};

/// The opacity table of one run: absorption + scattering per species.
class OpacitySet {
public:
  explicit OpacitySet(int ns) : absorption_(ns), scattering_(ns) {
    V2D_REQUIRE(ns >= 1, "need at least one species");
  }

  int ns() const { return static_cast<int>(absorption_.size()); }

  OpacityLaw& absorption(int s) { return absorption_.at(s); }
  OpacityLaw& scattering(int s) { return scattering_.at(s); }
  const OpacityLaw& absorption(int s) const { return absorption_.at(s); }
  const OpacityLaw& scattering(int s) const { return scattering_.at(s); }

  /// Total (transport) opacity κ_t = κ_a + κ_s.
  double total(int s, double temperature, double density) const {
    return absorption_.at(s).evaluate(temperature, density) +
           scattering_.at(s).evaluate(temperature, density);
  }

  /// True when every law is material-independent: the assembly may hoist
  /// one evaluation per tile instead of evaluating per zone (the study's
  /// test problem); power-law opacities take the per-zone branch.
  bool uniform() const {
    for (int s = 0; s < ns(); ++s) {
      if (!absorption_[static_cast<std::size_t>(s)].is_constant() ||
          !scattering_[static_cast<std::size_t>(s)].is_constant())
        return false;
    }
    return true;
  }

private:
  std::vector<OpacityLaw> absorption_;
  std::vector<OpacityLaw> scattering_;
};

}  // namespace v2d::rad
