#include "rad/gaussian.hpp"

namespace v2d::rad {

void GaussianPulse::fill(linalg::DistVector& e, double t) const {
  const grid::Grid2D& g = e.field().grid();
  const auto& dec = e.field().decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& ext = dec.extent(r);
    for (int s = 0; s < e.ns(); ++s) {
      grid::TileView v = e.field().view(r, s);
      for (int lj = 0; lj < ext.nj; ++lj) {
        for (int li = 0; li < ext.ni; ++li) {
          v(li, lj) = evaluate(g.x1c(ext.i0 + li), g.x2c(ext.j0 + lj), t);
        }
      }
    }
  }
}

double GaussianPulse::rel_l2_error(const linalg::DistVector& e,
                                   double t) const {
  const grid::Grid2D& g = e.field().grid();
  const auto& dec = e.field().decomp();
  double num = 0.0, den = 0.0;
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& ext = dec.extent(r);
    for (int s = 0; s < e.ns(); ++s) {
      const grid::TileView v = e.field().view(r, s);
      for (int lj = 0; lj < ext.nj; ++lj) {
        for (int li = 0; li < ext.ni; ++li) {
          const double exact =
              evaluate(g.x1c(ext.i0 + li), g.x2c(ext.j0 + lj), t);
          const double diff = v(li, lj) - exact;
          num += diff * diff;
          den += exact * exact;
        }
      }
    }
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

double GaussianPulse::total_energy(const linalg::DistVector& e) {
  const grid::Grid2D& g = e.field().grid();
  const auto& dec = e.field().decomp();
  double total = 0.0;
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& ext = dec.extent(r);
    for (int s = 0; s < e.ns(); ++s) {
      const grid::TileView v = e.field().view(r, s);
      for (int lj = 0; lj < ext.nj; ++lj) {
        for (int li = 0; li < ext.ni; ++li) {
          total += v(li, lj) * g.volume(ext.i0 + li, ext.j0 + lj);
        }
      }
    }
  }
  return total;
}

}  // namespace v2d::rad
