#include "rad/gaussian.hpp"

#include "support/thread_pool.hpp"

namespace v2d::rad {

void GaussianPulse::fill(linalg::DistVector& e, double t) const {
  const grid::Grid2D& g = e.field().grid();
  const auto& dec = e.field().decomp();
  par_ranks(dec, [&](int r) {
    const grid::TileExtent& ext = dec.extent(r);
    for (int s = 0; s < e.ns(); ++s) {
      grid::TileView v = e.field().view(r, s);
      for (int lj = 0; lj < ext.nj; ++lj) {
        for (int li = 0; li < ext.ni; ++li) {
          v(li, lj) = evaluate(g.x1c(ext.i0 + li), g.x2c(ext.j0 + lj), t);
        }
      }
    }
  });
}

double GaussianPulse::rel_l2_error(const linalg::DistVector& e,
                                   double t) const {
  const grid::Grid2D& g = e.field().grid();
  const auto& dec = e.field().decomp();
  // Per-rank partial sums combined in rank order: the result does not
  // depend on the host-thread count.
  std::vector<double> num_r(static_cast<std::size_t>(dec.nranks()), 0.0);
  std::vector<double> den_r(static_cast<std::size_t>(dec.nranks()), 0.0);
  par_ranks(dec, [&](int r) {
    const grid::TileExtent& ext = dec.extent(r);
    double num = 0.0, den = 0.0;
    for (int s = 0; s < e.ns(); ++s) {
      const grid::TileView v = e.field().view(r, s);
      for (int lj = 0; lj < ext.nj; ++lj) {
        for (int li = 0; li < ext.ni; ++li) {
          const double exact =
              evaluate(g.x1c(ext.i0 + li), g.x2c(ext.j0 + lj), t);
          const double diff = v(li, lj) - exact;
          num += diff * diff;
          den += exact * exact;
        }
      }
    }
    num_r[static_cast<std::size_t>(r)] = num;
    den_r[static_cast<std::size_t>(r)] = den;
  });
  double num = 0.0, den = 0.0;
  for (std::size_t r = 0; r < num_r.size(); ++r) {
    num += num_r[r];
    den += den_r[r];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

double GaussianPulse::total_energy(const linalg::DistVector& e) {
  const grid::Grid2D& g = e.field().grid();
  const auto& dec = e.field().decomp();
  std::vector<double> total_r(static_cast<std::size_t>(dec.nranks()), 0.0);
  par_ranks(dec, [&](int r) {
    const grid::TileExtent& ext = dec.extent(r);
    double total = 0.0;
    for (int s = 0; s < e.ns(); ++s) {
      const grid::TileView v = e.field().view(r, s);
      for (int lj = 0; lj < ext.nj; ++lj) {
        for (int li = 0; li < ext.ni; ++li) {
          total += v(li, lj) * g.volume(ext.i0 + li, ext.j0 + lj);
        }
      }
    }
    total_r[static_cast<std::size_t>(r)] = total;
  });
  double total = 0.0;
  for (const double v : total_r) total += v;
  return total;
}

}  // namespace v2d::rad
