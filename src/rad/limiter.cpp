#include "rad/limiter.hpp"

namespace v2d::rad {

const char* limiter_name(LimiterKind k) {
  switch (k) {
    case LimiterKind::None: return "none";
    case LimiterKind::LevermorePomraning: return "levermore-pomraning";
    case LimiterKind::Larsen2: return "larsen2";
    case LimiterKind::Wilson: return "wilson";
  }
  return "?";
}

LimiterKind limiter_from_name(const std::string& name) {
  if (name == "none") return LimiterKind::None;
  if (name == "levermore-pomraning" || name == "lp")
    return LimiterKind::LevermorePomraning;
  if (name == "larsen2") return LimiterKind::Larsen2;
  if (name == "wilson") return LimiterKind::Wilson;
  throw Error("unknown flux limiter '" + name +
              "' (expected none|lp|larsen2|wilson)");
}

}  // namespace v2d::rad
