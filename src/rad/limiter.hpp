#pragma once
/// \file limiter.hpp
/// \brief Flux limiters for flux-limited diffusion.
///
/// The FLD closure writes the radiative flux as F = −(c·λ(R)/κ)∇E where
/// R = |∇E|/(κE) measures how free-streaming the radiation field is.  The
/// limiter λ interpolates between the diffusion limit (λ → 1/3 as R → 0)
/// and the free-streaming limit (λ → 1/R as R → ∞, so |F| → cE).
/// V2D's lineage (Swesty & Myra 2009) uses the Levermore–Pomraning
/// limiter; alternatives are provided for the ablation benches.

#include <cmath>
#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace v2d::rad {

enum class LimiterKind : std::uint8_t {
  None = 0,            ///< λ = 1/3 (pure Fick diffusion, no limiting)
  LevermorePomraning,  ///< λ = (2 + R)/(6 + 3R + R²)
  Larsen2,             ///< λ = (9 + R²)^{−1/2}
  Wilson,              ///< λ = 1/(3 + R)
};

const char* limiter_name(LimiterKind k);
LimiterKind limiter_from_name(const std::string& name);

/// Evaluate λ(R).  R must be non-negative.
inline double flux_limiter(LimiterKind kind, double R) {
  V2D_CHECK(R >= 0.0, "limiter argument must be non-negative");
  switch (kind) {
    case LimiterKind::None:
      return 1.0 / 3.0;
    case LimiterKind::LevermorePomraning:
      // Rational form of (coth R − 1/R)/R, exact limits at both ends.
      return (2.0 + R) / (6.0 + 3.0 * R + R * R);
    case LimiterKind::Larsen2:
      return 1.0 / std::sqrt(9.0 + R * R);
    case LimiterKind::Wilson:
      return 1.0 / (3.0 + R);
  }
  V2D_FAIL("bad limiter kind");
}

}  // namespace v2d::rad
