#pragma once
/// \file radstep.hpp
/// \brief The radiation timestep: three BiCGSTAB solves per step.
///
/// "Each time step requires the solution of three unique x1 × x2 × 2
/// linear systems via the BiCGSTAB algorithm."  The operator-split cycle
/// implemented here matches that count:
///
///   solve 1 (predictor) — backward-Euler diffusion with limiters lagged
///            at Eⁿ, producing E*;
///   solve 2 (corrector) — diffusion re-solved with limiters refreshed
///            from E* (rhs still at time level n), producing E**;
///   solve 3 (coupling)  — radiation–matter / species-exchange system
///            built from E**, producing E^{n+1}; the matter temperature
///            is then updated explicitly.
///
/// Every solve rebuilds the SPAI preconditioner (the coefficients change),
/// mirroring V2D's per-system preconditioning.  The driver profiles the
/// three call sites separately — the paper's TAU analysis reports each of
/// the three BiCGSTAB call sites at 31–33 % of total time.

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "linalg/bicgstab.hpp"
#include "linalg/mg/options.hpp"
#include "rad/fld.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/recovery.hpp"

namespace v2d::rad {

struct StepStats {
  std::array<linalg::SolveStats, 3> solves;
  /// Simulated seconds each solve call site took, per compiler profile
  /// (empty when the step ran unpriced).  Includes the preconditioner
  /// build and system assembly attributed to that site.
  std::array<std::vector<double>, 3> site_elapsed;

  int total_iterations() const {
    int n = 0;
    for (const auto& s : solves) n += s.iterations;
    return n;
  }
  bool all_converged() const {
    for (const auto& s : solves)
      if (!s.converged) return false;
    return true;
  }
};

class RadiationStepper {
public:
  /// `pool`, when non-null, leases the solver scratch from a shared
  /// WorkspacePool instead of allocating it privately (farm sessions pass
  /// the farm's pool; solo runs leave it null).  Pooled scratch is
  /// scrubbed on lease, so the trajectory is identical either way.
  RadiationStepper(const grid::Grid2D& g, const grid::Decomposition& d,
                   FldBuilder builder, linalg::SolveOptions solver_options = {},
                   std::string preconditioner = "spai0",
                   linalg::mg::MgOptions mg_options = {},
                   linalg::WorkspacePool* pool = nullptr);

  FldBuilder& builder() { return builder_; }
  const linalg::SolveOptions& solver_options() const { return opt_; }

  /// Deterministic fallback chain: when a solve fails (breakdown or max
  /// iterations), re-attempt from the same initial guess with each of
  /// these preconditioners in order.  Empty (default) = fail as before —
  /// the chain never engages on a converging solve, so configuring it
  /// changes nothing until a failure actually happens.
  void set_fallbacks(std::vector<std::string> kinds) {
    fallbacks_ = std::move(kinds);
  }
  const std::vector<std::string>& fallbacks() const { return fallbacks_; }

  /// Per-step resilience context, re-armed by the driver before every
  /// advance: the fault injector consulted for scheduled breakdowns
  /// (null = none), the recovery ledger fallback events are recorded to
  /// (null = unrecorded), and the 1-based step number being computed.
  void set_resilience(resilience::FaultInjector* injector,
                      resilience::RecoveryLedger* ledger, int step) {
    injector_ = injector;
    recovery_ = ledger;
    step_ = step;
  }

  /// Advance the radiation field by dt in place.
  StepStats step(linalg::ExecContext& ctx, linalg::DistVector& e, double dt);

  /// Run one of the three solves in isolation (benches use this to pin a
  /// call site).  `which` is 0, 1 or 2.
  linalg::SolveStats solve_site(linalg::ExecContext& ctx,
                                linalg::DistVector& e, double dt, int which);

private:
  linalg::SolveStats run_solve(linalg::ExecContext& ctx,
                               linalg::StencilOperator& A,
                               linalg::DistVector& x,
                               const linalg::DistVector& b, int site);

  FldBuilder builder_;
  linalg::SolveOptions opt_;
  std::string precond_kind_;
  std::vector<std::string> fallbacks_;
  resilience::FaultInjector* injector_ = nullptr;
  resilience::RecoveryLedger* recovery_ = nullptr;
  int step_ = 0;
  linalg::mg::MgOptions mg_options_;
  linalg::StencilOperator a_diffusion_;
  linalg::StencilOperator a_coupling_;
  /// Scratch shared across all solves: leased from the pool when one was
  /// given, privately owned otherwise (exactly one of the two is active).
  linalg::WorkspacePool::Lease lease_;
  std::unique_ptr<linalg::SolverWorkspace> owned_workspace_;
  linalg::BicgstabSolver solver_;
  linalg::DistVector rhs_, e_star_, e_old_;
};

}  // namespace v2d::rad
