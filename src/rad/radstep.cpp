#include "rad/radstep.hpp"

#include "linalg/precond.hpp"
#include "support/error.hpp"

namespace v2d::rad {

using linalg::DistVector;
using linalg::ExecContext;
using linalg::SolveStats;
using linalg::StencilOperator;

RadiationStepper::RadiationStepper(const grid::Grid2D& g,
                                   const grid::Decomposition& d,
                                   FldBuilder builder,
                                   linalg::SolveOptions solver_options,
                                   std::string preconditioner,
                                   linalg::mg::MgOptions mg_options,
                                   linalg::WorkspacePool* pool)
    : builder_(std::move(builder)),
      opt_(solver_options),
      precond_kind_(std::move(preconditioner)),
      mg_options_(std::move(mg_options)),
      a_diffusion_(g, d, builder_.ns()),
      a_coupling_(g, d, builder_.ns()),
      lease_(pool != nullptr ? pool->acquire(g, d, builder_.ns())
                             : linalg::WorkspacePool::Lease{}),
      owned_workspace_(pool != nullptr
                           ? nullptr
                           : std::make_unique<linalg::SolverWorkspace>(
                                 g, d, builder_.ns())),
      solver_(lease_.valid() ? lease_.ws() : *owned_workspace_),
      rhs_(g, d, builder_.ns()),
      e_star_(g, d, builder_.ns()),
      e_old_(g, d, builder_.ns()) {
  if (builder_.ns() == 2) a_coupling_.enable_coupling();
}

SolveStats RadiationStepper::run_solve(ExecContext& ctx, StencilOperator& A,
                                       DistVector& x, const DistVector& b,
                                       int site) {
  // Snapshot the initial guess (including ghosts) when a fallback could
  // need it.  Host-only bookkeeping, never priced: a fallback attempt must
  // start from exactly the x0 the primary saw, and the copy models the
  // recovery harness, not the simulated code.
  std::unique_ptr<grid::DistField> x0;
  if (!fallbacks_.empty()) x0 = std::make_unique<grid::DistField>(x.field());

  const std::size_t attempts = 1 + fallbacks_.size();
  SolveStats stats;
  for (std::size_t a = 0; a < attempts; ++a) {
    const std::string& kind = a == 0 ? precond_kind_ : fallbacks_[a - 1];
    if (a > 0) x.field() = *x0;
    if (a == 0 && injector_ != nullptr &&
        injector_->take_breakdown(step_, site)) {
      // Synthetic breakdown: no preconditioner built, no solve run, no
      // pricing committed — a re-attempt with the same kind prices exactly
      // what the fault-free solve would have (the bit-identity contract).
      stats = SolveStats{};
      stats.converged = false;
      stats.stop_reason = "injected breakdown";
      if (recovery_ != nullptr)
        recovery_->record(step_, "injected-breakdown",
                          "forced solver breakdown at call site " +
                              std::to_string(site),
                          site);
    } else {
      const auto precond =
          linalg::make_preconditioner(kind, ctx, A, mg_options_);
      stats = solver_.solve(ctx, A, *precond, x, b, opt_);
    }
    if (stats.converged) {
      if (a > 0 && recovery_ != nullptr)
        recovery_->record(step_, "solver-fallback",
                          "recovered call site " + std::to_string(site) +
                              " with '" + kind + "' (" +
                              std::to_string(stats.iterations) +
                              " iterations)",
                          site);
      return stats;
    }
    if (a + 1 < attempts && recovery_ != nullptr)
      recovery_->record(step_, "solver-fallback",
                        "'" + kind + "' failed at call site " +
                            std::to_string(site) + " (" + stats.stop_reason +
                            "); retrying with '" + fallbacks_[a] + "'",
                        site);
  }
  return stats;
}

StepStats RadiationStepper::step(ExecContext& ctx, DistVector& e, double dt) {
  V2D_REQUIRE(dt > 0.0, "time step must be positive");
  StepStats stats;

  auto snapshot = [&]() {
    std::vector<double> t;
    if (ctx.em != nullptr) {
      t.reserve(ctx.em->nprofiles());
      for (std::size_t p = 0; p < ctx.em->nprofiles(); ++p)
        t.push_back(ctx.em->elapsed(p));
    }
    return t;
  };
  auto record_site = [&](int site, const std::vector<double>& before) {
    if (ctx.em == nullptr) return;
    auto& out = stats.site_elapsed[static_cast<std::size_t>(site)];
    out.resize(before.size());
    for (std::size_t p = 0; p < before.size(); ++p)
      out[p] = ctx.em->elapsed(p) - before[p];
  };

  // Solve 1 — predictor: limiters and rhs both at time level n.
  auto t0 = snapshot();
  e_old_.copy_from(ctx, e);
  builder_.build_diffusion(ctx, e, e_old_, dt, a_diffusion_, rhs_);
  e_star_.copy_from(ctx, e);  // initial guess: Eⁿ
  stats.solves[0] = run_solve(ctx, a_diffusion_, e_star_, rhs_, 0);
  record_site(0, t0);

  // Solve 2 — corrector: limiters refreshed from E*, rhs still at level n.
  t0 = snapshot();
  builder_.build_diffusion(ctx, e_star_, e_old_, dt, a_diffusion_, rhs_);
  e.copy_from(ctx, e_star_);  // initial guess: E*
  stats.solves[1] = run_solve(ctx, a_diffusion_, e, rhs_, 1);
  record_site(1, t0);

  // Solve 3 — coupling (only defined for the two-species configuration;
  // otherwise repeat the corrector against the updated limiters, keeping
  // the 3-solves-per-step structure).
  t0 = snapshot();
  if (builder_.ns() == 2) {
    e_star_.copy_from(ctx, e);  // E** supplies the refreshed limiters
    builder_.build_coupling(ctx, e_star_, e_old_, dt, a_coupling_, rhs_);
    stats.solves[2] = run_solve(ctx, a_coupling_, e, rhs_, 2);
    builder_.update_temperature(ctx, e, dt);
  } else {
    e_star_.copy_from(ctx, e);
    builder_.build_diffusion(ctx, e_star_, e_old_, dt, a_diffusion_, rhs_);
    stats.solves[2] = run_solve(ctx, a_diffusion_, e, rhs_, 2);
  }
  record_site(2, t0);
  return stats;
}

SolveStats RadiationStepper::solve_site(ExecContext& ctx, DistVector& e,
                                        double dt, int which) {
  V2D_REQUIRE(which >= 0 && which < 3, "call site index must be 0..2");
  e_old_.copy_from(ctx, e);
  if (which < 2) {
    builder_.build_diffusion(ctx, e, e_old_, dt, a_diffusion_, rhs_);
    e_star_.copy_from(ctx, e);
    return run_solve(ctx, a_diffusion_, e_star_, rhs_, which);
  }
  if (builder_.ns() == 2) {
    builder_.build_coupling(ctx, e, e_old_, dt, a_coupling_, rhs_);
    e_star_.copy_from(ctx, e);
    return run_solve(ctx, a_coupling_, e_star_, rhs_, which);
  }
  builder_.build_diffusion(ctx, e, e_old_, dt, a_diffusion_, rhs_);
  e_star_.copy_from(ctx, e);
  return run_solve(ctx, a_diffusion_, e_star_, rhs_, which);
}

}  // namespace v2d::rad
