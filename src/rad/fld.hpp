#pragma once
/// \file fld.hpp
/// \brief Multigroup flux-limited diffusion discretization.
///
/// Builds the backward-Euler finite-difference systems V2D solves.  For
/// each radiation species s the diffusive evolution of the energy density
/// E_s is
///
///   ∂E_s/∂t = ∇·(D_s ∇E_s) − c κ_a,s E_s + S_s ,   D_s = c λ(R)/κ_t,s
///
/// discretized with zone volumes V and face areas A on the orthogonal
/// grid:
///
///   [V/Δt + Σ_f A_f D_f/δ_f + V c κ_a] E^{n+1} − Σ_f (A_f D_f/δ_f) E_nb
///       = (V/Δt) Eⁿ + V S .
///
/// Face diffusion coefficients use harmonic means; the limiter argument
/// R = |ΔE|/(δ κ_t max(E, floor)) is evaluated per face from the lagged
/// field, which is why V2D re-solves with refreshed limiters (the
/// predictor/corrector pair of the 3-solve timestep).  Domain-boundary
/// faces carry zero flux (the coefficient is dropped), folding the
/// physical BC into the matrix exactly as stencil_op.hpp requires.

#include <cstdint>

#include "grid/dist_field.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/stencil_op.hpp"
#include "rad/limiter.hpp"
#include "rad/opacity.hpp"

namespace v2d::rad {

struct FldConfig {
  double c_light = 1.0;      ///< speed of light in code units
  LimiterKind limiter = LimiterKind::LevermorePomraning;
  double e_floor = 1.0e-30;  ///< floor in the limiter argument
  bool include_absorption = true;
  double radiation_constant = 1.0;  ///< a in B = a·T⁴ (emission)
  double exchange_kappa = 0.0;      ///< species-exchange opacity (solve 3)
  double cv = 1.0;                  ///< matter specific heat (coupling)
};

class FldBuilder {
public:
  FldBuilder(const grid::Grid2D& g, const grid::Decomposition& d, int ns,
             OpacitySet opacities, FldConfig config);

  const FldConfig& config() const { return config_; }
  FldConfig& config() { return config_; }
  const OpacitySet& opacities() const { return opacities_; }
  int ns() const { return ns_; }

  /// Material state (ns = 1 fields, zone-centred).
  grid::DistField& density() { return rho_; }
  grid::DistField& temperature() { return temp_; }
  const grid::DistField& density() const { return rho_; }
  const grid::DistField& temperature() const { return temp_; }

  /// Fill the diffusion system for a step of size dt: A·E^{n+1} = rhs.
  /// Limiters are evaluated from `e_limiter` (pass Eⁿ for the predictor,
  /// the predictor result E* for the corrector); the right-hand side uses
  /// the time-level-n field `e_old`.  Priced as Physics work.
  void build_diffusion(linalg::ExecContext& ctx, linalg::DistVector& e_limiter,
                       const linalg::DistVector& e_old, double dt,
                       linalg::StencilOperator& A,
                       linalg::DistVector& rhs) const;

  /// Fill the radiation–matter / species-exchange system (the third solve
  /// of each timestep): the same backward-Euler diffusion step re-solved
  /// with limiters refreshed from `e_limiter` (the corrector result), plus
  /// the species-exchange coupling and the emission source.  The rhs uses
  /// the time-level-n field `e_old`, so the step advances exactly dt.
  /// Requires ns == 2 and a coupling-enabled operator.
  void build_coupling(linalg::ExecContext& ctx, linalg::DistVector& e_limiter,
                      const linalg::DistVector& e_old, double dt,
                      linalg::StencilOperator& A,
                      linalg::DistVector& rhs) const;

  /// Explicit matter-temperature update after the coupling solve:
  /// cv·ρ·dT/dt = Σ_s c·κ_a,s (E_s − B_s(T)).  Priced as Physics work.
  void update_temperature(linalg::ExecContext& ctx,
                          const linalg::DistVector& e_new, double dt);

private:
  const grid::Grid2D* grid_;
  const grid::Decomposition* dec_;
  int ns_;
  OpacitySet opacities_;
  FldConfig config_;
  grid::DistField rho_;
  grid::DistField temp_;
};

}  // namespace v2d::rad
