#include "rad/fld.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/task_graph.hpp"

namespace v2d::rad {

using compiler::KernelFamily;
using linalg::DistVector;
using linalg::ExecContext;
using linalg::StencilOperator;

FldBuilder::FldBuilder(const grid::Grid2D& g, const grid::Decomposition& d,
                       int ns, OpacitySet opacities, FldConfig config)
    : grid_(&g),
      dec_(&d),
      ns_(ns),
      opacities_(std::move(opacities)),
      config_(config),
      rho_(g, d, 1, 1),
      temp_(g, d, 1, 1) {
  V2D_REQUIRE(opacities_.ns() == ns, "opacity set species count mismatch");
  rho_.fill(1.0);
  temp_.fill(1.0);
}

namespace {

/// Shared diffusion-coefficient fill: charges Physics work and fills the
/// five stencil bands plus V/Δt (+ absorption) on the diagonal.
///
/// Two material branches share the loop: when every opacity law is
/// constant (the study's test problem) the evaluation is hoisted to one
/// per tile, bit-identically to the historical path; when any law carries
/// a temperature/density power the material fields are halo-exchanged and
/// the opacities are evaluated per zone, with face transport opacities
/// taken as the arithmetic mean of the adjacent zones.  The priced cost
/// is the same either way — commit_synthetic below already charges the
/// per-zone evaluation the real code pays.
void fill_diffusion(const grid::Grid2D& g, const grid::Decomposition& dec,
                    int ns, const OpacitySet& opac, const FldConfig& cfg,
                    ExecContext& ctx, DistVector& e_limiter, double dt,
                    StencilOperator& A, grid::DistField& rho,
                    grid::DistField& temp) {
  V2D_REQUIRE(dt > 0.0, "time step must be positive");
  const bool uniform = opac.uniform();
  // Ghosts for face gradients and material lookups.
  auto transfers = e_limiter.field().exchange_ghosts();
  e_limiter.field().apply_bc(grid::BcKind::Neumann0);
  ctx.exchange(transfers);
  if (!uniform) {
    // Face opacities at tile interfaces read the neighbour's material
    // state: exchange the (per-zone-evaluated) material halos too.
    auto rho_t = rho.exchange_ghosts();
    rho.apply_bc(grid::BcKind::Neumann0);
    ctx.exchange(rho_t);
    auto temp_t = temp.exchange_ghosts();
    temp.apply_bc(grid::BcKind::Neumann0);
    ctx.exchange(temp_t);
  }

  // The V2D operator is applied matrix-free with on-the-fly coefficient
  // evaluation; attach that per-element cost to every application.
  A.set_evaluation_overhead(linalg::kMatvecEvalDoublesRead,
                            linalg::kMatvecEvalFlops);

  const double c = cfg.c_light;
  linalg::par_ranks(ctx, dec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec.extent(r);
    grid::TileView rv = rho.view(r, 0);
    grid::TileView tv = temp.view(r, 0);
    // Non-uniform branch: each zone's transport opacity feeds its own
    // face average and all four neighbours', so evaluate the power laws
    // once per zone (ghost edges included, corners skipped — no face ever
    // reads them and the corner ghosts are never exchanged) into scratch
    // tiles instead of ~5x per zone inside the stencil loop.  The
    // absorption leg is kept separately so the diagonal's ka needs no
    // second evaluation.
    std::vector<double> kt_tile, ka_tile;
    const std::ptrdiff_t kt_stride = e.ni + 2;
    if (!uniform) {
      kt_tile.resize(static_cast<std::size_t>(kt_stride) * (e.nj + 2));
      ka_tile.resize(static_cast<std::size_t>(e.ni) * e.nj);
    }
    for (int s = 0; s < ns; ++s) {
      grid::TileView ev = e_limiter.field().view(r, s);
      grid::TileView cc = A.cc().view(r, s);
      grid::TileView cw = A.cw().view(r, s);
      grid::TileView ce = A.ce().view(r, s);
      grid::TileView cs = A.cs().view(r, s);
      grid::TileView cn = A.cn().view(r, s);
      // The study's test problem uses spatially uniform material state, so
      // the opacity laws are evaluated once per tile here; the per-zone
      // evaluation cost the real code would pay is still charged through
      // commit_synthetic below — pricing is separate from host execution.
      const double kt_u = opac.total(s, 1.0, 1.0);
      const double ka_u = cfg.include_absorption
                              ? opac.absorption(s).evaluate(1.0, 1.0)
                              : 0.0;
      // Zone transport opacity: hoisted when uniform, read from the
      // per-zone scratch otherwise (ghost indices hold the exchanged
      // material halos' evaluations).
      auto kt_at = [&](int li, int lj) {
        return uniform ? kt_u
                       : kt_tile[static_cast<std::size_t>(
                             (li + 1) + kt_stride * (lj + 1))];
      };
      if (!uniform) {
        for (int lj = -1; lj <= e.nj; ++lj) {
          const bool edge_j = lj < 0 || lj >= e.nj;
          for (int li = -1; li <= e.ni; ++li) {
            if (edge_j && (li < 0 || li >= e.ni)) continue;  // corner
            const double ka_z =
                opac.absorption(s).evaluate(tv(li, lj), rv(li, lj));
            const double ks_z =
                opac.scattering(s).evaluate(tv(li, lj), rv(li, lj));
            kt_tile[static_cast<std::size_t>((li + 1) +
                                             kt_stride * (lj + 1))] =
                ka_z + ks_z;
            if (!edge_j && li >= 0 && li < e.ni)
              ka_tile[static_cast<std::size_t>(li + e.ni * lj)] =
                  cfg.include_absorption ? ka_z : 0.0;
          }
        }
      }
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const int gi = e.i0 + li, gj = e.j0 + lj;
          const double vol = g.volume(gi, gj);
          const double ka =
              uniform ? ka_u
                      : ka_tile[static_cast<std::size_t>(li + e.ni * lj)];

          auto face_d = [&](double e_l, double e_r, double delta,
                            double kt) {
            const double e_f = std::max(0.5 * (e_l + e_r), cfg.e_floor);
            const double big_r = std::fabs(e_r - e_l) / (delta * kt * e_f);
            const double lam = flux_limiter(cfg.limiter, big_r);
            return c * lam / kt;
          };
          const double kt_c = kt_at(li, lj);
          auto face_kt = [&](int nli, int nlj) {
            return uniform ? kt_u : 0.5 * (kt_c + kt_at(nli, nlj));
          };

          double diag = vol / dt + vol * c * ka;
          // West face (skipped at the domain boundary: zero flux).
          if (gi > 0) {
            const double d = face_d(ev(li - 1, lj), ev(li, lj), g.dx1(),
                                    face_kt(li - 1, lj));
            const double k = g.area1(gi, gj) * d / g.dx1();
            cw(li, lj) = -k;
            diag += k;
          } else {
            cw(li, lj) = 0.0;
          }
          if (gi + 1 < g.nx1()) {
            const double d = face_d(ev(li, lj), ev(li + 1, lj), g.dx1(),
                                    face_kt(li + 1, lj));
            const double k = g.area1(gi + 1, gj) * d / g.dx1();
            ce(li, lj) = -k;
            diag += k;
          } else {
            ce(li, lj) = 0.0;
          }
          if (gj > 0) {
            const double d = face_d(ev(li, lj - 1), ev(li, lj), g.dx2(),
                                    face_kt(li, lj - 1));
            const double k = g.area2(gi, gj) * d / g.dx2();
            cs(li, lj) = -k;
            diag += k;
          } else {
            cs(li, lj) = 0.0;
          }
          if (gj + 1 < g.nx2()) {
            const double d = face_d(ev(li, lj), ev(li, lj + 1), g.dx2(),
                                    face_kt(li, lj + 1));
            const double k = g.area2(gi, gj + 1) * d / g.dx2();
            cn(li, lj) = -k;
            diag += k;
          } else {
            cn(li, lj) = 0.0;
          }
          cc(li, lj) = diag;
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * ns;
    // ~70 flops/zone (4 face limiters + geometry), ~13 doubles read, 6
    // written; branchy short loops — the Physics family prices this with
    // low vectorized fraction.
    rctx.commit_synthetic(r, KernelFamily::Physics, "physics-assembly",
                          elements, 70, 104, 48, elements * 152);
  });
}

}  // namespace

void FldBuilder::build_diffusion(ExecContext& ctx, DistVector& e_limiter,
                                 const DistVector& e_old, double dt,
                                 StencilOperator& A, DistVector& rhs) const {
  auto* self = const_cast<FldBuilder*>(this);
  // Keep the pool's workers resident across the assembly stages under
  // --host-sched graph (every stage here is a synchronous scheduler stage;
  // the ghost-exchange pricing in fill_diffusion stays a join node).
  task_graph::GraphRegion graph(ctx.sched == linalg::HostSched::Graph);
  fill_diffusion(*grid_, *dec_, ns_, opacities_, config_, ctx, e_limiter, dt,
                 A, self->rho_, self->temp_);
  // rhs = (V/Δt)·Eⁿ from the time-level-n field.
  linalg::par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec_->extent(r);
    for (int s = 0; s < ns_; ++s) {
      grid::TileView ev = const_cast<DistVector&>(e_old).field().view(r, s);
      grid::TileView bv = rhs.field().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          bv(li, lj) =
              grid_->volume(e.i0 + li, e.j0 + lj) / dt * ev(li, lj);
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * ns_;
    rctx.commit_synthetic(r, KernelFamily::Physics, "physics-rhs", elements, 2,
                          8, 8, elements * 16);
  });
}

void FldBuilder::build_coupling(ExecContext& ctx, DistVector& e_limiter,
                                const DistVector& e_old, double dt,
                                StencilOperator& A, DistVector& rhs) const {
  V2D_REQUIRE(ns_ == 2, "coupling solve is defined for ns == 2");
  V2D_REQUIRE(A.coupled(), "operator must have coupling enabled");
  auto* self = const_cast<FldBuilder*>(this);
  task_graph::GraphRegion graph(ctx.sched == linalg::HostSched::Graph);
  fill_diffusion(*grid_, *dec_, ns_, opacities_, config_, ctx, e_limiter, dt,
                 A, self->rho_, self->temp_);

  const double c = config_.c_light;
  const double kx = config_.exchange_kappa;
  const bool uniform = opacities_.uniform();
  linalg::par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec_->extent(r);
    grid::TileView tv = self->temp_.view(r, 0);
    grid::TileView rv = self->rho_.view(r, 0);
    for (int s = 0; s < ns_; ++s) {
      grid::TileView cc = A.cc().view(r, s);
      grid::TileView sp = A.csp().view(r, s);
      grid::TileView ev = const_cast<DistVector&>(e_old).field().view(r, s);
      grid::TileView bv = rhs.field().view(r, s);
      const double ka_u = config_.include_absorption
                              ? opacities_.absorption(s).evaluate(1.0, 1.0)
                              : 0.0;
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const double vol = grid_->volume(e.i0 + li, e.j0 + lj);
          cc(li, lj) += vol * c * kx;
          sp(li, lj) = -vol * c * kx;
          const double T = tv(li, lj);
          const double ka =
              uniform ? ka_u
                      : (config_.include_absorption
                             ? opacities_.absorption(s).evaluate(T, rv(li, lj))
                             : 0.0);
          const double emission =
              0.5 * config_.radiation_constant * T * T * T * T;
          bv(li, lj) = vol / dt * ev(li, lj) + vol * c * ka * emission;
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * ns_;
    rctx.commit_synthetic(r, KernelFamily::Physics, "physics-coupling",
                          elements, 12, 32, 24, elements * 56);
  });
}

void FldBuilder::update_temperature(ExecContext& ctx,
                                    const DistVector& e_new, double dt) {
  const double c = config_.c_light;
  const bool uniform = opacities_.uniform();
  linalg::par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec_->extent(r);
    grid::TileView tv = temp_.view(r, 0);
    grid::TileView rv = rho_.view(r, 0);
    // Per-species views and (uniform-material) absorption opacities hoisted
    // out of the zone loop; the per-zone evaluation is priced below.
    std::vector<grid::TileView> evs;
    std::vector<double> kas;
    for (int s = 0; s < ns_; ++s) {
      evs.push_back(const_cast<DistVector&>(e_new).field().view(r, s));
      kas.push_back(config_.include_absorption
                        ? opacities_.absorption(s).evaluate(1.0, 1.0)
                        : 0.0);
    }
    for (int lj = 0; lj < e.nj; ++lj) {
      for (int li = 0; li < e.ni; ++li) {
        const double T = tv(li, lj);
        const double emission =
            0.5 * config_.radiation_constant * T * T * T * T;
        double heating = 0.0;
        for (int s = 0; s < ns_; ++s) {
          const double ka =
              uniform ? kas[static_cast<std::size_t>(s)]
                      : (config_.include_absorption
                             ? opacities_.absorption(s).evaluate(T, rv(li, lj))
                             : 0.0);
          heating +=
              c * ka * (evs[static_cast<std::size_t>(s)](li, lj) - emission);
        }
        const double dT = dt * heating / (config_.cv * rv(li, lj));
        tv(li, lj) = std::max(1.0e-10, T + dT);
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj;
    rctx.commit_synthetic(r, KernelFamily::Physics, "physics-temperature",
                          elements, 16, 32, 8, elements * 40);
  });
}

}  // namespace v2d::rad
