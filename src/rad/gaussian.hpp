#pragma once
/// \file gaussian.hpp
/// \brief The paper's radiation test problem: diffusing 2-D Gaussian pulse.
///
/// With a constant diffusion coefficient D and no absorption, the linear
/// diffusion equation has the exact self-similar solution
///
///   E(x, y, t) = E_tot / (4π D (t + t₀)) · exp(−r² / (4 D (t + t₀)))
///
/// which both initializes the run (at t = 0 the pulse has effective age
/// t₀) and validates it (the relative L2 error against the evolved
/// analytic profile is reported by the example and asserted by the
/// integration tests in the unlimited-diffusion configuration).

#include <cmath>

#include "grid/dist_field.hpp"
#include "linalg/dist_vector.hpp"

namespace v2d::rad {

struct GaussianPulse {
  double e_total = 1.0;   ///< integrated pulse energy
  double d_coeff = 1.0;   ///< diffusion coefficient D
  double t0 = 1.0;        ///< initial effective age (sets initial width)
  double x_center = 0.0;
  double y_center = 0.0;

  /// Analytic energy density at (x, y) and simulation time t.
  double evaluate(double x, double y, double t) const {
    const double tau = 4.0 * d_coeff * (t + t0);
    const double dx = x - x_center, dy = y - y_center;
    return e_total / (M_PI * tau) * std::exp(-(dx * dx + dy * dy) / tau);
  }

  /// Fill every species of `e` with the analytic profile at time t.
  void fill(linalg::DistVector& e, double t) const;

  /// Relative L2 error of `e` (all species) against the profile at time t.
  double rel_l2_error(const linalg::DistVector& e, double t) const;

  /// Total energy Σ E·V over the grid (conservation diagnostics).
  static double total_energy(const linalg::DistVector& e);
};

}  // namespace v2d::rad
