/// \file two_species_relax.cpp
/// \brief Exchange-dominated two-species relaxation with a closed-form
/// discrete reference.
///
/// Both radiation species start spatially uniform but unequal
/// (E1 = 1.5, E2 = 0.5).  Uniform fields are exact kernels of the
/// zero-flux diffusion operator, so the predictor and corrector solves
/// converge trivially and the physics is carried entirely by the
/// coupling solve's species-exchange block: per zone the backward-Euler
/// update of the difference Delta = E1 - E2 is exactly
///
///   Delta_{n+1} = Delta_n / (1 + 2 dt c kappa_x)
///
/// while the sum E1 + E2 is conserved.  analytic_error() compares the
/// measured volume-weighted mean difference against that closed-form
/// contraction — the tightest analytic reference in the catalog (exact up
/// to solver tolerance, no truncation error term).

#include <cmath>
#include <memory>

#include "rad/gaussian.hpp"
#include "scenario/problems.hpp"
#include "scenario/scenario_common.hpp"
#include "scenario/state_io.hpp"
#include "support/error.hpp"

namespace v2d::scenario {

namespace {

constexpr double kE1 = 1.5;
constexpr double kE2 = 0.5;

class TwoSpeciesRelaxProblem final : public Problem {
public:
  const char* name() const override { return "two-species-relax"; }

  grid::Grid2D make_grid(const core::RunConfig& cfg) const override {
    return grid::Grid2D(cfg.nx1, cfg.nx2, 0.0, 1.0, 0.0, 1.0);
  }

  void initialize(const ProblemSetup& setup) override {
    const core::RunConfig& cfg = *setup.cfg;
    V2D_REQUIRE(cfg.ns == 2,
                "two-species-relax needs exactly two radiation species");
    V2D_REQUIRE(cfg.exchange_kappa > 0.0,
                "two-species-relax needs --kappa-exchange > 0");

    rad::OpacitySet opac(2);
    for (int s = 0; s < 2; ++s) {
      opac.absorption(s) = rad::OpacityLaw::constant(0.0);
      opac.scattering(s) = rad::OpacityLaw::constant(cfg.kappa_total);
    }
    rad::FldConfig fld_cfg;
    fld_cfg.limiter = cfg.limiter;
    fld_cfg.include_absorption = false;
    fld_cfg.exchange_kappa = cfg.exchange_kappa;
    rad::FldBuilder builder(*setup.grid, *setup.dec, 2, opac, fld_cfg);
    c_light_ = fld_cfg.c_light;
    kx_ = cfg.exchange_kappa;

    stepper_ = make_stepper(setup, std::move(builder));

    e_ = std::make_unique<linalg::DistVector>(*setup.grid, *setup.dec, 2);
    const auto& dec = *setup.dec;
    for (int r = 0; r < dec.nranks(); ++r) {
      const grid::TileExtent& ext = dec.extent(r);
      for (int s = 0; s < 2; ++s) {
        grid::TileView v = e_->field().view(r, s);
        for (int lj = 0; lj < ext.nj; ++lj)
          for (int li = 0; li < ext.ni; ++li)
            v(li, lj) = s == 0 ? kE1 : kE2;
      }
    }
    delta_pred_ = kE1 - kE2;
  }

  rad::StepStats advance(linalg::ExecContext& ctx, double dt) override {
    rad::StepStats stats = stepper_->step(ctx, *e_, dt);
    delta_pred_ /= 1.0 + 2.0 * dt * c_light_ * kx_;
    return stats;
  }

  /// |measured mean (E1 - E2)  -  closed-form prediction| / Delta_0.
  double analytic_error(double t) const override {
    (void)t;
    const grid::DistField& f = e_->field();
    const grid::Grid2D& g = f.grid();
    const auto& dec = f.decomp();
    double diff = 0.0, vol = 0.0;
    for (int r = 0; r < dec.nranks(); ++r) {
      const grid::TileExtent& ext = dec.extent(r);
      const grid::TileView v1 = f.view(r, 0);
      const grid::TileView v2 = f.view(r, 1);
      for (int lj = 0; lj < ext.nj; ++lj) {
        for (int li = 0; li < ext.ni; ++li) {
          const double zv = g.volume(ext.i0 + li, ext.j0 + lj);
          diff += zv * (v1(li, lj) - v2(li, lj));
          vol += zv;
        }
      }
    }
    return std::abs(diff / vol - delta_pred_) / (kE1 - kE2);
  }

  double total_energy() const override {
    return rad::GaussianPulse::total_energy(*e_);
  }

  int state_arrays() const override { return 2; }

  void write_state(io::Group& fields) const override {
    write_field(fields, "radiation_energy", e_->field());
    fields.set_attr("delta_pred", delta_pred_);
  }

  void read_state(const io::Group& fields) override {
    read_field(fields, "radiation_energy", e_->field());
    delta_pred_ = fields.attr_f64("delta_pred");
  }

  rad::RadiationStepper* stepper() override { return stepper_.get(); }
  linalg::DistVector* radiation() override { return e_.get(); }

private:
  std::unique_ptr<rad::RadiationStepper> stepper_;
  std::unique_ptr<linalg::DistVector> e_;
  double c_light_ = 1.0;
  double kx_ = 0.0;
  double delta_pred_ = kE1 - kE2;
};

}  // namespace

std::unique_ptr<Problem> make_two_species_relax() {
  return std::make_unique<TwoSpeciesRelaxProblem>();
}

}  // namespace v2d::scenario
