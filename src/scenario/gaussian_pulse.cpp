/// \file gaussian_pulse.cpp
/// \brief The paper's workload as a registered scenario.
///
/// This is the exact problem the historically hardwired Simulation
/// constructor set up — same domain box, same per-species opacity shading,
/// same initial pulse — ported onto the Problem interface bit-identically:
/// the same priced operations run in the same order, so solver
/// trajectories, recorded counts, ledgers and per-profile simulated clocks
/// are indistinguishable from the pre-scenario driver (pinned by
/// tests/test_scenario.cpp against a hand-wired replica).

#include <algorithm>
#include <memory>

#include "rad/gaussian.hpp"
#include "scenario/problems.hpp"
#include "scenario/scenario_common.hpp"
#include "scenario/state_io.hpp"
#include "support/error.hpp"

namespace v2d::scenario {

namespace {

/// Total kappa split so absorption + scattering = kappa_total; the species
/// differ slightly (multigroup: higher groups more opaque) so the two
/// systems are genuinely distinct.
rad::OpacitySet make_opacities(const core::RunConfig& cfg) {
  rad::OpacitySet opac(cfg.ns);
  for (int s = 0; s < cfg.ns; ++s) {
    const double shade = 1.0 + 0.1 * s;
    const double ka = cfg.kappa_absorb * shade;
    opac.absorption(s) = rad::OpacityLaw::constant(ka);
    opac.scattering(s) =
        rad::OpacityLaw::constant(std::max(0.0, cfg.kappa_total * shade - ka));
  }
  return opac;
}

class GaussianPulseProblem final : public Problem {
public:
  const char* name() const override { return "gaussian-pulse"; }

  grid::Grid2D make_grid(const core::RunConfig& cfg) const override {
    // Aspect-matched domain: 2:1 box so dx1 == dx2 at 200x100.
    return grid::Grid2D(cfg.nx1, cfg.nx2, -1.0, 1.0, -0.5, 0.5);
  }

  void initialize(const ProblemSetup& setup) override {
    const core::RunConfig& cfg = *setup.cfg;
    include_absorption_ = cfg.kappa_absorb > 0.0;

    rad::FldConfig fld_cfg;
    fld_cfg.limiter = cfg.limiter;
    fld_cfg.include_absorption = include_absorption_;
    fld_cfg.exchange_kappa = cfg.exchange_kappa;
    stepper_ = make_stepper(setup, rad::FldBuilder(*setup.grid, *setup.dec,
                                                   cfg.ns, make_opacities(cfg),
                                                   fld_cfg));

    e_ = std::make_unique<linalg::DistVector>(*setup.grid, *setup.dec, cfg.ns);
    // The paper's test problem: 2-D Gaussian pulse of radiation.  D here is
    // the unlimited diffusion coefficient c/(3 kappa_t) of species 0.
    pulse_.d_coeff = fld_cfg.c_light / (3.0 * cfg.kappa_total);
    pulse_.t0 = 1.0;
    pulse_.fill(*e_, 0.0);
  }

  rad::StepStats advance(linalg::ExecContext& ctx, double dt) override {
    return stepper_->step(ctx, *e_, dt);
  }

  double analytic_error(double t) const override {
    return pulse_.rel_l2_error(*e_, t);
  }

  double total_energy() const override {
    return rad::GaussianPulse::total_energy(*e_);
  }

  /// The historical checkpoint payload is the radiation field alone; the
  /// material temperature only evolves (and is only serialized) when
  /// absorption couples radiation to matter, which keeps the default
  /// configuration's Io pricing identical to the pre-scenario driver.
  int state_arrays() const override {
    return e_->ns() + (include_absorption_ ? 1 : 0);
  }

  void write_state(io::Group& fields) const override {
    write_field(fields, "radiation_energy", e_->field());
    if (include_absorption_)
      write_field(fields, "material_temperature",
                  stepper_->builder().temperature());
  }

  void read_state(const io::Group& fields) override {
    read_field(fields, "radiation_energy", e_->field());
    if (include_absorption_)
      read_field(fields, "material_temperature",
                 stepper_->builder().temperature());
  }

  rad::RadiationStepper* stepper() override { return stepper_.get(); }
  linalg::DistVector* radiation() override { return e_.get(); }

private:
  std::unique_ptr<rad::RadiationStepper> stepper_;
  std::unique_ptr<linalg::DistVector> e_;
  rad::GaussianPulse pulse_;
  bool include_absorption_ = false;
};

}  // namespace

std::unique_ptr<Problem> make_gaussian_pulse() {
  return std::make_unique<GaussianPulseProblem>();
}

}  // namespace v2d::scenario
