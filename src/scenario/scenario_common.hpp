#pragma once
/// \file scenario_common.hpp
/// \brief Shared construction helpers for the built-in problems.
///
/// Every catalog entry maps the same solver knobs out of RunConfig and
/// builds the same 3-solve radiation stepper around its FldBuilder; these
/// helpers keep that mapping in one place so a new SolveOptions knob (or
/// a fifth scenario) threads through exactly one site.

#include <memory>
#include <utility>

#include "rad/radstep.hpp"
#include "scenario/problem.hpp"

namespace v2d::scenario {

inline linalg::SolveOptions solve_options(const core::RunConfig& cfg) {
  linalg::SolveOptions opt;
  opt.rel_tol = cfg.rel_tol;
  opt.max_iterations = cfg.max_iterations;
  opt.ganged = cfg.ganged;
  return opt;
}

/// The radiation stepper on the setup's grid, from a prepared builder,
/// with the configured solver/preconditioner knobs.
inline std::unique_ptr<rad::RadiationStepper> make_stepper(
    const ProblemSetup& setup, rad::FldBuilder builder) {
  auto stepper = std::make_unique<rad::RadiationStepper>(
      *setup.grid, *setup.dec, std::move(builder),
      solve_options(*setup.cfg), setup.cfg->preconditioner,
      setup.cfg->mg_options(), setup.workspace_pool);
  stepper->set_fallbacks(setup.cfg->solver_fallbacks);
  return stepper;
}

}  // namespace v2d::scenario
