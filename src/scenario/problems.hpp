#pragma once
/// \file problems.hpp
/// \brief Factories for the built-in workload catalog.
///
/// Each factory lives in its own translation unit under src/scenario/;
/// registry.cpp references them all so static-library linking always
/// pulls the whole catalog in (self-registering static objects would be
/// dropped by the archiver).

#include <memory>

#include "scenario/problem.hpp"

namespace v2d::scenario {

/// The paper's workload: diffusing 2-D Gaussian radiation pulse with the
/// free-space analytic reference.  Bit-identical to the historically
/// hardwired Simulation path.
std::unique_ptr<Problem> make_gaussian_pulse();

/// Operator-split radiation hydrodynamics: Sedov-like blast in a
/// reflecting box, HLL hydro sweeps + 3-solve radiation step + explicit
/// radiation–gas exchange, all priced.  Conservation pin: gas mass.
std::unique_ptr<Problem> make_sedov_radhydro();

/// Radiation diffusion through a nonuniform absorbing blob: power-law
/// absorption opacity kappa_a(rho) over a Gaussian density bump exercises
/// the non-uniform-material branch of FldBuilder.  Analytic reference:
/// discrete backward-Euler absorption bounds on the total energy decay.
std::unique_ptr<Problem> make_hotspot_absorber();

/// Exchange-dominated two-species relaxation on uniform fields: the
/// species difference contracts by exactly 1/(1 + 2 dt c kappa_x) per
/// step, giving a closed-form discrete reference the run is checked
/// against; the species sum is conserved.
std::unique_ptr<Problem> make_two_species_relax();

}  // namespace v2d::scenario
