/// \file sedov_radhydro.cpp
/// \brief Coupled radiation hydrodynamics as a registered scenario.
///
/// Promotes the former examples/sedov_radhydro.cpp wiring into the priced
/// driver stack: every cycle runs a dimensionally split HLL hydro step
/// (charged to the Hydro kernel family), the 3-solve implicit radiation
/// step, and the explicit radiation-gas energy exchange, all through the
/// Simulation's ExecContext so hydro sweeps, solves, halo exchanges and
/// the CFL allreduce land in the same ledgers and simulated clocks as any
/// other workload.
///
/// Correctness pin: the HLL scheme is conservative and the reflecting
/// walls carry exactly zero mass flux (the wall Riemann problem is
/// symmetric), so total gas mass is conserved to round-off —
/// analytic_error() reports the relative mass drift.

#include <algorithm>
#include <memory>

#include "hydro/coupling.hpp"
#include "hydro/euler.hpp"
#include "hydro/setups.hpp"
#include "rad/gaussian.hpp"
#include "scenario/problems.hpp"
#include "scenario/scenario_common.hpp"
#include "scenario/state_io.hpp"
#include "support/error.hpp"

namespace v2d::scenario {

namespace {

constexpr double kBlastEnergy = 1.0;
constexpr double kBlastRadius = 0.08;
constexpr double kInitialTemperature = 0.2;
constexpr double kInitialRadiation = 0.05;
constexpr double kHydroCfl = 0.3;

class SedovRadhydroProblem final : public Problem {
public:
  const char* name() const override { return "sedov-radhydro"; }

  grid::Grid2D make_grid(const core::RunConfig& cfg) const override {
    return grid::Grid2D(cfg.nx1, cfg.nx2, 0.0, 1.0, 0.0, 1.0);
  }

  void initialize(const ProblemSetup& setup) override {
    const core::RunConfig& cfg = *setup.cfg;

    eos_ = hydro::GammaLawEos(5.0 / 3.0);
    gas_ = std::make_unique<hydro::HydroState>(*setup.grid, *setup.dec);
    hydro::setup_sedov(*gas_, eos_, kBlastEnergy, kBlastRadius);
    hydro_ = std::make_unique<hydro::HydroSolver>(
        *setup.grid, *setup.dec, eos_, hydro::HydroBc::Reflecting, kHydroCfl);

    rad::OpacitySet opac(cfg.ns);
    for (int s = 0; s < cfg.ns; ++s) {
      opac.absorption(s) = rad::OpacityLaw::constant(0.3 * cfg.kappa_total);
      opac.scattering(s) = rad::OpacityLaw::constant(0.7 * cfg.kappa_total);
    }
    rad::FldConfig fld_cfg;
    fld_cfg.limiter = cfg.limiter;
    fld_cfg.include_absorption = true;
    fld_cfg.exchange_kappa = cfg.exchange_kappa;
    rad::FldBuilder builder(*setup.grid, *setup.dec, cfg.ns, opac, fld_cfg);
    builder.temperature().fill(kInitialTemperature);
    stepper_ = make_stepper(setup, std::move(builder));

    e_ = std::make_unique<linalg::DistVector>(*setup.grid, *setup.dec, cfg.ns);
    e_->field().fill(kInitialRadiation);

    mass0_ = gas_->total_mass();
  }

  double pick_dt(linalg::ExecContext& ctx,
                 const core::RunConfig& cfg) override {
    return std::min(cfg.dt, hydro_->cfl_dt(ctx, *gas_));
  }

  rad::StepStats advance(linalg::ExecContext& ctx, double dt) override {
    hydro_->step(ctx, *gas_, dt);
    rad::StepStats stats = stepper_->step(ctx, *e_, dt);
    hydro::apply_rad_heating(ctx, *gas_, *e_, stepper_->builder(), eos_, dt);
    return stats;
  }

  /// Relative gas-mass drift — zero up to round-off for the conservative
  /// HLL scheme in a reflecting box.
  double analytic_error(double t) const override {
    (void)t;
    return std::abs(gas_->total_mass() - mass0_) / mass0_;
  }

  /// Gas plus radiation energy (the pair exchanges; each side alone is
  /// not conserved).
  double total_energy() const override {
    return gas_->total_energy() + rad::GaussianPulse::total_energy(*e_);
  }

  int state_arrays() const override {
    return hydro::kNumCons + e_->ns() + 1;  // gas + radiation + temperature
  }

  void write_state(io::Group& fields) const override {
    write_field(fields, "gas_conserved", gas_->field());
    write_field(fields, "radiation_energy", e_->field());
    write_field(fields, "material_temperature",
                stepper_->builder().temperature());
    fields.set_attr("gas_mass0", mass0_);
  }

  void read_state(const io::Group& fields) override {
    read_field(fields, "gas_conserved", gas_->field());
    read_field(fields, "radiation_energy", e_->field());
    read_field(fields, "material_temperature",
               stepper_->builder().temperature());
    mass0_ = fields.attr_f64("gas_mass0");
  }

  rad::RadiationStepper* stepper() override { return stepper_.get(); }
  linalg::DistVector* radiation() override { return e_.get(); }

private:
  hydro::GammaLawEos eos_{5.0 / 3.0};
  std::unique_ptr<hydro::HydroState> gas_;
  std::unique_ptr<hydro::HydroSolver> hydro_;
  std::unique_ptr<rad::RadiationStepper> stepper_;
  std::unique_ptr<linalg::DistVector> e_;
  double mass0_ = 1.0;
};

}  // namespace

std::unique_ptr<Problem> make_sedov_radhydro() {
  return std::make_unique<SedovRadhydroProblem>();
}

}  // namespace v2d::scenario
