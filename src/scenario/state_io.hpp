#pragma once
/// \file state_io.hpp
/// \brief Shared helpers for checkpoint payloads: DistField <-> h5lite.
///
/// Every built-in Problem serializes its grid-shaped state with these two
/// functions so payload layout ({ns, nx2, nx1}, dictionary order) is
/// uniform across the catalog and the restart path can round-trip any
/// field bit-exactly (h5lite stores doubles natively).

#include <cstdint>
#include <span>
#include <string>

#include "grid/dist_field.hpp"
#include "io/h5lite.hpp"
#include "support/error.hpp"

namespace v2d::scenario {

inline void write_field(io::Group& group, const std::string& name,
                        const grid::DistField& field) {
  const auto data = field.gather_global();
  group.write(name, std::span<const double>(data),
              {static_cast<std::uint64_t>(field.ns()),
               static_cast<std::uint64_t>(field.grid().nx2()),
               static_cast<std::uint64_t>(field.grid().nx1())});
}

inline void read_field(const io::Group& group, const std::string& name,
                       grid::DistField& field) {
  V2D_REQUIRE(group.has_dataset(name),
              "checkpoint is missing dataset '" + name + "'");
  const io::Dataset& d = group.dataset(name);
  V2D_REQUIRE(d.type == io::Dataset::Type::F64,
              "checkpoint dataset '" + name + "' is not f64");
  field.scatter_global(std::span<const double>(d.f64));
}

}  // namespace v2d::scenario
