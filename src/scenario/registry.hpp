#pragma once
/// \file registry.hpp
/// \brief Name-keyed catalog of the workloads the driver can run.
///
/// The registry is the single authority on what `--problem <name>` means:
/// RunConfig validation, the Simulation constructor and the `v2d` CLI's
/// `--list-problems` all consult it.  Built-in problems (problems.hpp)
/// are registered on first use; nothing in the driver names a concrete
/// Problem type.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "scenario/problem.hpp"

namespace v2d::scenario {

class ScenarioRegistry {
public:
  using Factory = std::function<std::unique_ptr<Problem>()>;

  /// The process-wide registry, with the built-in catalog registered.
  static ScenarioRegistry& instance();

  /// Register a problem under `name`.  `description` is the one-line
  /// catalog entry shown by `v2d --list-problems`.
  void add(const std::string& name, const std::string& description,
           Factory factory);

  bool has(const std::string& name) const;

  /// Instantiate the problem registered under `name`; throws v2d::Error
  /// listing the known names when `name` is not registered.
  std::unique_ptr<Problem> create(const std::string& name) const;

  const std::string& description(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// "gaussian-pulse, hotspot-absorber, ..." — for error messages.
  std::string known_names() const;

private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace v2d::scenario
