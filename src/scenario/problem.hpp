#pragma once
/// \file problem.hpp
/// \brief The workload interface behind the Simulation driver.
///
/// V2D's study priced exactly one workload — the 2-D Gaussian radiation
/// pulse — but the driver spine (grid + decomposition + multi-profile
/// pricer + profilers + checkpoints) is workload-agnostic.  A Problem
/// packages everything that *is* workload-specific:
///
///   * the domain box and aspect (make_grid),
///   * field allocation and initial conditions (initialize),
///   * the per-step physics (advance — radiation solves, hydro sweeps,
///     coupling, in whatever operator-split order the problem needs),
///   * a scenario-specific correctness number (analytic_error: analytic
///     reference where one exists, conservation violation otherwise),
///   * the conserved diagnostic (total_energy), and
///   * the checkpoint payload (write_state / read_state), so h5lite
///     restart works for any registered workload.
///
/// core::Simulation owns one Problem (looked up by RunConfig.problem in
/// the ScenarioRegistry) and delegates; everything the driver prices —
/// kernels, halo exchanges, allreduces, Io — flows through the same
/// ExecContext regardless of which problem is active.

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "grid/decomp.hpp"
#include "grid/grid2d.hpp"
#include "io/h5lite.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/exec_context.hpp"
#include "rad/radstep.hpp"

namespace v2d::scenario {

/// The driver spine a Problem builds its state on: everything is owned by
/// the Simulation and outlives the Problem's use of it.
struct ProblemSetup {
  const core::RunConfig* cfg = nullptr;
  const grid::Grid2D* grid = nullptr;
  const grid::Decomposition* dec = nullptr;
  linalg::ExecContext* ctx = nullptr;
  /// Shared solver-scratch pool, or null to allocate scratch privately.
  /// The farm points every session at one pool; steppers built through
  /// make_stepper lease from it for the problem's lifetime.
  linalg::WorkspacePool* workspace_pool = nullptr;
};

class Problem {
public:
  virtual ~Problem() = default;

  /// Registry key ("gaussian-pulse", "sedov-radhydro", ...).
  virtual const char* name() const = 0;

  /// Domain box for this problem.  Called before any field exists; the
  /// driver builds the decomposition on the returned grid.
  virtual grid::Grid2D make_grid(const core::RunConfig& cfg) const = 0;

  /// Allocate state and set initial conditions.  Setup is unpriced (the
  /// simulated machine starts its clocks at the first advance()); priced
  /// work must go through setup.ctx only from advance() onwards.
  virtual void initialize(const ProblemSetup& setup) = 0;

  /// Time step the next advance() should take.  The default is the
  /// configured dt; CFL-limited problems override (any pricing they do —
  /// e.g. the hydro dt allreduce — is part of the step's cost).
  virtual double pick_dt(linalg::ExecContext& ctx,
                         const core::RunConfig& cfg) {
    (void)ctx;
    return cfg.dt;
  }

  /// One operator-split timestep of size dt.  The returned StepStats
  /// carries the three radiation solves (every built-in problem runs the
  /// 3-solve radiation cycle; additional physics rides in the same step).
  virtual rad::StepStats advance(linalg::ExecContext& ctx, double dt) = 0;

  /// Scenario-specific correctness number at simulation time t: relative
  /// error against an analytic reference where one exists, relative
  /// conservation violation otherwise.  Smaller is better; 0 is exact.
  virtual double analytic_error(double t) const = 0;

  /// Conserved diagnostic (total energy in the problem's bookkeeping).
  virtual double total_energy() const = 0;

  /// Number of tile-shaped arrays the checkpoint payload serializes —
  /// the Io pricing of a checkpoint charges this many per-zone doubles.
  virtual int state_arrays() const = 0;

  /// Serialize the problem state into the checkpoint's "fields" group.
  virtual void write_state(io::Group& fields) const = 0;
  /// Restore the problem state from a checkpoint's "fields" group.
  virtual void read_state(const io::Group& fields) = 0;

  /// The radiation stack, for drivers/tests that reach through the
  /// Simulation (all built-in problems have one).
  virtual rad::RadiationStepper* stepper() { return nullptr; }
  virtual linalg::DistVector* radiation() { return nullptr; }
};

}  // namespace v2d::scenario
