/// \file hotspot_absorber.cpp
/// \brief Radiation diffusion through a nonuniform absorbing blob.
///
/// A Gaussian density bump sits in the middle of the paper's domain and
/// the absorption opacity follows the power law kappa_a = kappa0 * rho
/// (OpacityLaw with rho_exp = 1), so the material is genuinely
/// nonuniform: FldBuilder takes its per-zone evaluation branch, the
/// assembly exchanges material halos, and the diffusion/coupling matrices
/// carry spatially varying coefficients.  Emission is disabled
/// (radiation_constant = 0), which makes the discrete backward-Euler
/// absorption exact to bracket: with kmin <= kappa_a(z) <= kmax over the
/// zones, summing the kept (third) solve over zones and species gives
///
///   E_tot(n) / (1 + dt c kmax)  <=  E_tot(n+1)  <=  E_tot(n) / (1 + dt c kmin)
///
/// (diffusion telescopes under zero-flux boundaries, species exchange
/// cancels).  analytic_error() reports the relative violation of that
/// bracket — zero up to solver tolerance.

#include <algorithm>
#include <cmath>
#include <memory>

#include "rad/gaussian.hpp"
#include "scenario/problems.hpp"
#include "scenario/scenario_common.hpp"
#include "scenario/state_io.hpp"
#include "support/error.hpp"

namespace v2d::scenario {

namespace {

constexpr double kBlobAmplitude = 4.0;  ///< rho = 1 + A exp(-r^2/w^2)
constexpr double kBlobWidth = 0.25;

class HotspotAbsorberProblem final : public Problem {
public:
  const char* name() const override { return "hotspot-absorber"; }

  grid::Grid2D make_grid(const core::RunConfig& cfg) const override {
    return grid::Grid2D(cfg.nx1, cfg.nx2, -1.0, 1.0, -0.5, 0.5);
  }

  void initialize(const ProblemSetup& setup) override {
    const core::RunConfig& cfg = *setup.cfg;
    const grid::Grid2D& g = *setup.grid;
    const grid::Decomposition& dec = *setup.dec;

    // kappa_a(rho) = kappa0 * rho; the scattering leg stays constant so
    // the transport opacity is nonuniform only through absorption.
    // Absorption IS this scenario, so kappa0 = 0 is never meaningful:
    // --kappa-absorb left at its global default of 0 selects the
    // scenario default of 0.5 (documented in the README catalog).
    V2D_REQUIRE(cfg.kappa_absorb >= 0.0,
                "hotspot-absorber needs --kappa-absorb >= 0");
    const double kappa0 = cfg.kappa_absorb > 0.0 ? cfg.kappa_absorb : 0.5;
    rad::OpacitySet opac(cfg.ns);
    for (int s = 0; s < cfg.ns; ++s) {
      rad::OpacityLaw law;
      law.kappa0 = kappa0;
      law.rho_exp = 1.0;
      opac.absorption(s) = law;
      opac.scattering(s) = rad::OpacityLaw::constant(cfg.kappa_total);
    }
    rad::FldConfig fld_cfg;
    fld_cfg.limiter = cfg.limiter;
    fld_cfg.include_absorption = true;
    fld_cfg.exchange_kappa = cfg.exchange_kappa;
    fld_cfg.radiation_constant = 0.0;  // pure absorption: no emission back
    rad::FldBuilder builder(g, dec, cfg.ns, opac, fld_cfg);
    c_light_ = fld_cfg.c_light;

    // The absorbing blob: nonuniform density, uniform temperature.
    kappa_min_ = 1.0e300;
    kappa_max_ = 0.0;
    grid::DistField& rho = builder.density();
    for (int r = 0; r < dec.nranks(); ++r) {
      const grid::TileExtent& e = dec.extent(r);
      grid::TileView rv = rho.view(r, 0);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const double x = g.x1c(e.i0 + li), y = g.x2c(e.j0 + lj);
          const double r2 = (x * x + y * y) / (kBlobWidth * kBlobWidth);
          rv(li, lj) = 1.0 + kBlobAmplitude * std::exp(-r2);
          const double ka = opac.absorption(0).evaluate(1.0, rv(li, lj));
          kappa_min_ = std::min(kappa_min_, ka);
          kappa_max_ = std::max(kappa_max_, ka);
        }
      }
    }

    stepper_ = make_stepper(setup, std::move(builder));

    e_ = std::make_unique<linalg::DistVector>(g, dec, cfg.ns);
    rad::GaussianPulse pulse;
    pulse.d_coeff = fld_cfg.c_light / (3.0 * (kappa0 + cfg.kappa_total));
    pulse.t0 = 1.0;
    pulse.fill(*e_, 0.0);

    const double e0 = rad::GaussianPulse::total_energy(*e_);
    lower_ = e0;
    upper_ = e0;
  }

  rad::StepStats advance(linalg::ExecContext& ctx, double dt) override {
    rad::StepStats stats = stepper_->step(ctx, *e_, dt);
    // Advance the analytic decay bracket by the same backward-Euler step.
    lower_ /= 1.0 + dt * c_light_ * kappa_max_;
    upper_ /= 1.0 + dt * c_light_ * kappa_min_;
    return stats;
  }

  /// Relative violation of the discrete absorption bracket (0 = inside).
  double analytic_error(double t) const override {
    (void)t;
    const double e = rad::GaussianPulse::total_energy(*e_);
    double err = 0.0;
    if (e < lower_) err = (lower_ - e) / lower_;
    if (e > upper_) err = std::max(err, (e - upper_) / upper_);
    return err;
  }

  double total_energy() const override {
    return rad::GaussianPulse::total_energy(*e_);
  }

  int state_arrays() const override { return e_->ns() + 1; }

  void write_state(io::Group& fields) const override {
    write_field(fields, "radiation_energy", e_->field());
    write_field(fields, "material_temperature",
                stepper_->builder().temperature());
    fields.set_attr("bound_lower", lower_);
    fields.set_attr("bound_upper", upper_);
  }

  void read_state(const io::Group& fields) override {
    read_field(fields, "radiation_energy", e_->field());
    read_field(fields, "material_temperature",
               stepper_->builder().temperature());
    lower_ = fields.attr_f64("bound_lower");
    upper_ = fields.attr_f64("bound_upper");
  }

  rad::RadiationStepper* stepper() override { return stepper_.get(); }
  linalg::DistVector* radiation() override { return e_.get(); }

private:
  std::unique_ptr<rad::RadiationStepper> stepper_;
  std::unique_ptr<linalg::DistVector> e_;
  double c_light_ = 1.0;
  double kappa_min_ = 0.0;
  double kappa_max_ = 0.0;
  double lower_ = 0.0;  ///< analytic decay bracket, advanced per step
  double upper_ = 0.0;
};

}  // namespace

std::unique_ptr<Problem> make_hotspot_absorber() {
  return std::make_unique<HotspotAbsorberProblem>();
}

}  // namespace v2d::scenario
