#include "scenario/registry.hpp"

#include "scenario/problems.hpp"
#include "support/error.hpp"

namespace v2d::scenario {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry reg = [] {
    ScenarioRegistry r;
    r.add("gaussian-pulse",
          "the paper's diffusing 2-D Gaussian radiation pulse "
          "(free-space analytic reference)",
          make_gaussian_pulse);
    r.add("sedov-radhydro",
          "Sedov-like blast with HLL hydro sweeps, 3-solve radiation "
          "step and radiation-gas exchange (mass-conservation pin)",
          make_sedov_radhydro);
    r.add("hotspot-absorber",
          "radiation diffusion through a nonuniform power-law absorbing "
          "blob (discrete absorption decay bounds)",
          make_hotspot_absorber);
    r.add("two-species-relax",
          "exchange-dominated two-species relaxation on uniform fields "
          "(closed-form per-step equilibration reference)",
          make_two_species_relax);
    return r;
  }();
  return reg;
}

void ScenarioRegistry::add(const std::string& name,
                           const std::string& description, Factory factory) {
  V2D_REQUIRE(!name.empty() && factory != nullptr,
              "scenario registration needs a name and a factory");
  // Registering one name twice is always a programming error — the second
  // factory would silently shadow (or race) the first, and `--problem`
  // would stop meaning one thing.  Fail at registration time, before the
  // catalog is ever consulted, and keep the registry unchanged.
  V2D_REQUIRE(entries_.find(name) == entries_.end(),
              "scenario '" + name +
                  "' registered twice (already in the catalog as: " +
                  entries_.find(name)->second.description + ")");
  entries_.emplace(name, Entry{description, std::move(factory)});
}

bool ScenarioRegistry::has(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

std::unique_ptr<Problem> ScenarioRegistry::create(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw Error("unknown problem '" + name + "' (known problems: " +
                known_names() + ")");
  }
  return it->second.factory();
}

const std::string& ScenarioRegistry::description(
    const std::string& name) const {
  const auto it = entries_.find(name);
  V2D_REQUIRE(it != entries_.end(), "unknown problem '" + name + "'");
  return it->second.description;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::string ScenarioRegistry::known_names() const {
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace v2d::scenario
