#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace v2d {

void TableWriter::set_columns(std::vector<std::string> names) {
  V2D_REQUIRE(rows_.empty(), "set_columns must precede add_row");
  columns_ = std::move(names);
}

void TableWriter::add_row(std::vector<std::string> cells) {
  V2D_REQUIRE(cells.size() == columns_.size(),
              "row width does not match column count");
  rows_.push_back(std::move(cells));
}

std::string TableWriter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::integer(long v) { return std::to_string(v); }

std::string TableWriter::str() const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  auto rule = [&] {
    for (size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(width[c])) << cells[c] << ' ';
    }
    os << "|\n";
  };
  rule();
  line(columns_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::string TableWriter::tsv() const {
  std::ostringstream os;
  for (size_t c = 0; c < columns_.size(); ++c)
    os << columns_[c] << (c + 1 < columns_.size() ? '\t' : '\n');
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      os << row[c] << (c + 1 < row.size() ? '\t' : '\n');
  return os.str();
}

void TableWriter::print(std::ostream& os) const { os << str(); }

}  // namespace v2d
