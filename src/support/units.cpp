#include "support/units.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace v2d::units {

namespace {
std::string fmt(double v, const char* suffix) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v << ' ' << suffix;
  return os.str();
}
}  // namespace

std::string bytes(double n) {
  if (n >= GiB) return fmt(n / GiB, "GiB");
  if (n >= MiB) return fmt(n / MiB, "MiB");
  if (n >= KiB) return fmt(n / KiB, "KiB");
  return fmt(n, "B");
}

std::string seconds(double s) {
  const double a = std::fabs(s);
  if (a >= 1.0) return fmt(s, "s");
  if (a >= 1e-3) return fmt(s * 1e3, "ms");
  if (a >= 1e-6) return fmt(s * 1e6, "us");
  return fmt(s * 1e9, "ns");
}

std::string rate(double per_second, const std::string& unit) {
  if (per_second >= giga) return fmt(per_second / giga, ("G" + unit + "/s").c_str());
  if (per_second >= mega) return fmt(per_second / mega, ("M" + unit + "/s").c_str());
  if (per_second >= kilo) return fmt(per_second / kilo, ("k" + unit + "/s").c_str());
  return fmt(per_second, (unit + "/s").c_str());
}

}  // namespace v2d::units
