#include "support/thread_pool.hpp"

namespace v2d {

namespace {

/// True while the current thread is draining a pool job; nested run()
/// calls from such a thread execute inline to avoid deadlocking the pool.
thread_local bool t_in_pool_task = false;

int default_host_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

}  // namespace

ThreadPool::ThreadPool(int threads) : size_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int t = 0; t + 1 < size_; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute(Job& job) {
  t_in_pool_task = true;
  for (;;) {
    const int i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      job.fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last index done: wake the caller blocked in run().
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
  t_in_pool_task = false;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      wake_cv_.wait(lk, [&] {
        return stop_ ||
               (job_ && job_->next.load(std::memory_order_relaxed) < job_->n);
      });
      if (stop_) return;
      job = job_;
    }
    execute(*job);
  }
}

std::shared_ptr<ThreadPool::Job> ThreadPool::post(
    int n, const std::function<void(int)>& fn) {
  if (n <= 0 || workers_.empty()) return nullptr;
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->n = n;
  job->remaining.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
  }
  wake_cv_.notify_all();
  // Wait (workers are idle, so briefly) until every index has been
  // claimed: once job_ can be replaced by a later run()/post(), an
  // unclaimed index would never execute and wait() would hang.
  while (job->next.load(std::memory_order_acquire) < n)
    std::this_thread::yield();
  std::lock_guard<std::mutex> lk(mu_);
  if (job_ == job) job_.reset();
  return job;
}

void ThreadPool::wait(const std::shared_ptr<Job>& job) {
  if (!job) return;
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
  if (job->error) {
    std::exception_ptr e = job->error;
    job->error = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::run(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1 || t_in_pool_task) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->n = n;
  job->remaining.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
  }
  wake_cv_.notify_all();
  execute(*job);  // the calling thread is a pool lane too
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
  if (job_ == job) job_.reset();
  if (job->error) {
    std::exception_ptr e = job->error;
    job->error = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

namespace {

std::mutex g_host_pool_mu;
std::shared_ptr<ThreadPool> g_host_pool;

}  // namespace

std::shared_ptr<ThreadPool> host_pool() {
  std::lock_guard<std::mutex> lk(g_host_pool_mu);
  if (!g_host_pool)
    g_host_pool = std::make_shared<ThreadPool>(default_host_threads());
  return g_host_pool;
}

void set_host_threads(int threads) {
  const int n = threads > 0 ? threads : default_host_threads();
  std::lock_guard<std::mutex> lk(g_host_pool_mu);
  if (g_host_pool && g_host_pool->size() == n) return;
  // Drop our reference only: regions that pinned the old pool via
  // host_pool() finish on it and destroy it when the last one releases.
  g_host_pool = std::make_shared<ThreadPool>(n);
}

int host_threads() { return host_pool()->size(); }

bool in_pool_task() { return t_in_pool_task; }

namespace detail {

thread_local void* t_graph_session = nullptr;
thread_local bool t_in_graph_task = false;
void (*g_session_run)(void*, int, const std::function<void(int)>&) = nullptr;

}  // namespace detail

}  // namespace v2d
