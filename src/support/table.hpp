#pragma once
/// \file table.hpp
/// \brief ASCII table writer used by every bench to print paper-style tables.
///
/// Columns are declared up front; cells are added row by row.  The writer
/// right-aligns numerics, supports blank cells (paper's Table I has holes),
/// and can also dump tab-separated values for downstream plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace v2d {

class TableWriter {
public:
  explicit TableWriter(std::string title = {}) : title_(std::move(title)) {}

  /// Declare the header row.  Must be called before add_row.
  void set_columns(std::vector<std::string> names);

  /// Add a data row; size must match the column count.  Empty strings
  /// render as blank cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision ('' if negative
  /// sentinel used for "no data").
  static std::string num(double v, int precision = 2);
  static std::string integer(long v);

  /// Render as an aligned ASCII table.
  std::string str() const;
  /// Render as TSV (header + rows), for --tsv bench output.
  std::string tsv() const;

  void print(std::ostream& os) const;

  size_t rows() const { return rows_.size(); }
  size_t columns() const { return columns_.size(); }

private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace v2d
