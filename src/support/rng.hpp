#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random numbers for tests and workload setup.
///
/// A small xoshiro256** implementation so every platform and compiler
/// produces identical streams (std::mt19937 would too, but distributions
/// are not portable).  Not cryptographic.

#include <cstdint>

namespace v2d {

class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace v2d
