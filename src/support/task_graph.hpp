#pragma once
/// \file task_graph.hpp
/// \brief Dependency-scheduled task execution on the host pool's workers.
///
/// The barrier-per-kernel model (`par_ranks` → ThreadPool::run) forks and
/// joins the pool once per kernel: every daxpy wakes the workers, runs a
/// few microseconds of work per rank, and puts them back to sleep.  For
/// the small per-rank kernels a simulated-cluster run is made of, the
/// wake/join overhead dominates — the committed baseline measured a
/// *slowdown* at 2–4 host threads.
///
/// A Session replaces that model for the duration of a solver region: the
/// pool's workers become resident scheduler lanes (one work-stealing deque
/// each) draining a graph of tasks with explicit dependency edges and
/// atomic pending counters.  Per-rank kernel tasks of consecutive
/// operations chain rank-to-rank without any global barrier; serial field
/// accessors and halo-exchange pricing drain the graph first — they are
/// join nodes by construction, exactly like the simulated machine's
/// barriers.  Halo-exchange sites additionally split into boundary (ghost
/// copy + BC) and interior (stencil/sweep) tasks so packing overlaps
/// interior compute.
///
/// Wave 2 adds locality and pipelining on top of that graph: chained
/// per-rank tasks are *homed* to a stable lane (hash of chain domain ×
/// rank) so a rank's kernel chain keeps its tile cache-hot, stealing
/// degrades to an idle-lane fallback that takes the oldest task from the
/// deepest queue, and the allreduce-backed dot reductions stop being
/// join-alls — per-rank partial-accumulator tasks feed one rank-ordered
/// compensated combine task (chain_combine/wait) that only the scalar's
/// consumer waits on, while next-stage per-rank tasks submit behind the
/// partials.
///
/// Bit-identity: scheduling carries no numerical meaning here for the same
/// reason the barrier pool is safe — rank tasks own disjoint tiles and
/// disjoint clock/ledger slots, reductions keep the rank-ordered
/// compensated merges on the driving thread, and transfer lists stay
/// rank-ordered.  The graph only changes *when* a rank's task runs, never
/// what it computes or the order of the priced collective stream.
///
/// Opt-in via --host-sched graph (linalg::ExecContext::sched); default
/// barrier keeps today's fork/join behaviour bit-for-bit.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "support/thread_pool.hpp"

namespace v2d::task_graph {

/// Process-wide scheduler counters, surfaced through perfmon.
struct SchedStats {
  std::uint64_t sessions = 0;       ///< GraphRegions that opened a session
  std::uint64_t stages = 0;         ///< synchronous (barrier) stages
  std::uint64_t chained_stages = 0; ///< dependency-chained stages
  std::uint64_t tasks = 0;          ///< graph tasks executed
  std::uint64_t chained_tasks = 0;  ///< tasks that ran without a barrier
  std::uint64_t steals = 0;         ///< tasks popped from another lane
  std::uint64_t syncs = 0;          ///< graph drains (join nodes)
  std::uint64_t affinity_hits = 0;  ///< homed tasks that ran on their lane
  std::uint64_t combines = 0;       ///< pipelined-reduction combine tasks

  /// Fraction of graph tasks that ran dependency-scheduled instead of
  /// inside a fork/join barrier — the overlap the scheduler buys.
  double overlap_ratio() const {
    return tasks ? static_cast<double>(chained_tasks) /
                       static_cast<double>(tasks)
                 : 0.0;
  }

  /// Fraction of homed (chained) tasks that executed on their home lane —
  /// the cache-locality the affinity policy buys.  Steals + hits need not
  /// cover all chained tasks: homes only exist while affinity is enabled.
  double affinity_ratio() const {
    return chained_tasks ? static_cast<double>(affinity_hits) /
                               static_cast<double>(chained_tasks)
                         : 0.0;
  }

  SchedStats since(const SchedStats& earlier) const {
    return {sessions - earlier.sessions,
            stages - earlier.stages,
            chained_stages - earlier.chained_stages,
            tasks - earlier.tasks,
            chained_tasks - earlier.chained_tasks,
            steals - earlier.steals,
            syncs - earlier.syncs,
            affinity_hits - earlier.affinity_hits,
            combines - earlier.combines};
  }
};

/// Snapshot the process-wide counters.
SchedStats stats();

/// Process-wide toggle for the task-affinity placement policy (default
/// on).  When off, chained tasks enqueue on the submitting lane exactly
/// like the original wave-1 scheduler — benches use this to run a
/// `graph` vs `graph+affinity` comparison; sessions read the toggle at
/// each stage, so flip it only between runs.
void set_affinity(bool on);
bool affinity_enabled();

class Session {
public:
  /// One graph node: a closure plus an atomic dependency counter.  The
  /// extra "submitter" reference in `pending` keeps a task from running
  /// while the driving thread is still wiring its edges.
  struct Task {
    std::function<void()> fn;
    std::atomic<int> pending{1};
    std::atomic<bool> done{false};
    std::atomic<bool> waited{false};  ///< a wait() is (or was) parked on us
    std::atomic_flag edge_lock;  ///< guards succs/done (clear-initialized)
    std::vector<Task*> succs;
    bool chained = false;  ///< stats: ran outside a barrier stage
    int home = -1;         ///< preferred lane (-1: submitter's lane)
  };

  /// Captures the pool's workers as resident lanes.  Construct only from
  /// a driving thread (never inside a pool task); prefer GraphRegion.
  explicit Session(std::shared_ptr<ThreadPool> pool);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- graph construction (driving thread only) ---------------------------

  /// Create a task; it cannot run until submit().  The pointer stays valid
  /// until the next sync() drains the graph.
  Task* create(std::function<void()> fn);

  /// succ additionally waits for pred.  Race-safe against pred completing
  /// concurrently; a completed pred adds no edge (its effects are already
  /// visible to the driving thread).
  void add_dep(Task* succ, Task* pred);

  /// Release the submitter reference: the task becomes runnable once its
  /// remaining dependencies finish.
  void submit(Task* t);

  /// Chained per-rank stage: task r waits only for task r of the previous
  /// stage on the same chain domain (no global barrier).  A different
  /// domain or rank count drains the graph first.  Under the affinity
  /// policy task r is homed to home_lane(domain, r) so a rank's whole
  /// chain runs on one lane and its tile stays cache-hot.
  void chain_stage(const void* domain, int n, std::function<void(int)> fn);

  /// Combine node of a pipelined reduction: a single task depending on
  /// every rank's current chain tail for `domain`, submitted WITHOUT
  /// draining the graph and WITHOUT consuming the chain — later
  /// chain_stage() calls on the same domain keep chaining rank-to-rank
  /// behind the partial tasks, not behind the combine, so independent
  /// next-stage work submits speculatively while only the scalar's true
  /// consumer wait()s.  Falls back to sync() + an inline call (returning
  /// null) when the domain has no live chain.
  Task* chain_combine(const void* domain, std::function<void()> fn);

  /// Help-execute until `t` (from chain_combine) completes, leaving the
  /// chain state and arena intact.  Unlike sync() this waits only for
  /// t's transitive predecessors, and defers any task error to the next
  /// sync().  Driving thread only; null is a no-op.
  void wait(Task* t);

  /// The stable home lane the affinity policy assigns to rank `r` of
  /// chain domain `domain` (exposed for tests and diagnostics).
  int home_lane(const void* domain, int r) const;

  /// Drain the graph: execute/steal until nothing is outstanding, then
  /// rethrow the first task exception.  Join node for collectives.
  void sync();

  /// Synchronous stage: sync(), then run fn(0..n-1) across all lanes and
  /// sync again.  The drop-in replacement for ThreadPool::run inside a
  /// session (parallel_for routes here via the detail hook).
  void run_sync(int n, const std::function<void(int)>& fn);

private:
  struct Lane {
    std::mutex mu;
    std::deque<Task*> dq;  ///< owner pushes/pops back; thieves pop front
  };

  void worker_loop(int lane);
  void execute_task(Task* t);
  void enqueue(Task* t);
  Task* try_pop(int lane);
  void finish_one();
  void close();

  friend class GraphRegion;

  std::shared_ptr<ThreadPool> pool_;
  std::shared_ptr<ThreadPool::Job> drain_;  ///< the workers' lane loops
  int nlanes_ = 1;                          ///< workers + the driving thread
  std::vector<std::unique_ptr<Lane>> lanes_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> closed_{false};
  std::atomic<int> queued_{0};       ///< tasks sitting in some deque
  std::atomic<int> outstanding_{0};  ///< submitted, not yet finished
  std::atomic<int> sleepers_{0};     ///< threads blocked on cv_
  std::exception_ptr error_;         ///< first task failure; guarded by mu_

  /// Graph arena: driving-thread push_back only; cleared at sync() when
  /// nothing is outstanding, so Task* handles are stable in between.
  std::deque<Task> arena_;

  /// Chain state: last task submitted per rank for the current domain.
  const void* chain_domain_ = nullptr;
  std::vector<Task*> chain_last_;
};

/// The driving thread's open session (null outside --host-sched graph
/// regions, and always null on worker threads).
Session* current();

/// True while the current thread executes a session task body.
bool in_task();

/// Drain the current session's graph, if any.  Called by collective
/// pricing (ExecContext::allreduce/exchange) and serial field accessors so
/// join points see every chained predecessor; a no-op on worker threads
/// and outside sessions.
void sync_current();

/// RAII scope that opens a Session on the host pool when `enable` is set,
/// making it `current()` for the scope.  No-op when disabled, inside a
/// pool task (a farmed job keeps its inline semantics), or when a session
/// is already open (regions nest by joining the outer session).
class GraphRegion {
public:
  explicit GraphRegion(bool enable);
  ~GraphRegion() noexcept(false);
  GraphRegion(const GraphRegion&) = delete;
  GraphRegion& operator=(const GraphRegion&) = delete;

private:
  std::unique_ptr<Session> session_;
  int uncaught_ = 0;
};

}  // namespace v2d::task_graph
