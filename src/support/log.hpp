#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger.
///
/// Single global sink (stderr by default); levels are filtered at runtime.
/// Benches set the level from --verbose flags.  Not thread-safe by design:
/// the simulator is single-threaded (ranks are simulated, not real).

#include <iosfwd>
#include <sstream>
#include <string>

namespace v2d::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

/// Global minimum level; messages below it are dropped.
Level level();
void set_level(Level lvl);

/// Redirect output (tests use this to capture); nullptr restores stderr.
void set_stream(std::ostream* os);

/// Emit one record.  Prefer the V2D_LOG_* macros.
void write(Level lvl, const std::string& msg);

const char* level_name(Level lvl);

}  // namespace v2d::log

#define V2D_LOG_AT(lvl, expr)                                   \
  do {                                                          \
    if (static_cast<int>(lvl) >= static_cast<int>(::v2d::log::level())) { \
      std::ostringstream v2d_log_os;                            \
      v2d_log_os << expr;                                       \
      ::v2d::log::write(lvl, v2d_log_os.str());                 \
    }                                                           \
  } while (0)

#define V2D_LOG_DEBUG(expr) V2D_LOG_AT(::v2d::log::Level::Debug, expr)
#define V2D_LOG_INFO(expr) V2D_LOG_AT(::v2d::log::Level::Info, expr)
#define V2D_LOG_WARN(expr) V2D_LOG_AT(::v2d::log::Level::Warn, expr)
#define V2D_LOG_ERROR(expr) V2D_LOG_AT(::v2d::log::Level::ErrorLevel, expr)
