#include "support/options.hpp"

#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace v2d {

Options& Options::add(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  V2D_REQUIRE(!specs_.count(name), "duplicate option --" + name);
  specs_[name] = Spec{default_value, help, /*is_flag=*/false, /*set=*/false};
  order_.push_back(name);
  return *this;
}

Options& Options::add_flag(const std::string& name, const std::string& help) {
  V2D_REQUIRE(!specs_.count(name), "duplicate flag --" + name);
  specs_[name] = Spec{"0", help, /*is_flag=*/true, /*set=*/false};
  order_.push_back(name);
  return *this;
}

Options::Spec& Options::require_spec(const std::string& name) {
  auto it = specs_.find(name);
  if (it == specs_.end()) throw Error("unknown option --" + name);
  return it->second;
}

const Options::Spec& Options::require_spec(const std::string& name) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) throw Error("unknown option --" + name);
  return it->second;
}

void Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Spec& spec = require_spec(arg);
    if (spec.is_flag) {
      V2D_REQUIRE(!has_value || value == "0" || value == "1",
                  "flag --" + arg + " takes no value");
      spec.value = has_value ? value : "1";
    } else if (has_value) {
      spec.value = value;
    } else {
      if (i + 1 >= argc) throw Error("option --" + arg + " needs a value");
      spec.value = argv[++i];
    }
    spec.set = true;
  }
}

std::string Options::get(const std::string& name) const {
  return require_spec(name).value;
}

long Options::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  long out = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    throw Error("option --" + name + " expects an integer, got '" + v + "'");
  return out;
}

double Options::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    throw Error("option --" + name + " expects a number, got '" + v + "'");
  return out;
}

bool Options::get_bool(const std::string& name) const {
  return get(name) == "1" || get(name) == "true";
}

bool Options::was_set(const std::string& name) const {
  return require_spec(name).set;
}

std::string Options::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& name : order_) {
    const Spec& s = specs_.at(name);
    os << "  --" << name;
    if (!s.is_flag) os << " <value>  (default: " << s.value << ")";
    os << "\n      " << s.help << "\n";
  }
  return os.str();
}

}  // namespace v2d
