#pragma once
/// \file units.hpp
/// \brief Unit constants and human-readable formatting helpers.

#include <cstdint>
#include <string>

namespace v2d::units {

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * KiB;
inline constexpr double GiB = 1024.0 * MiB;

inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;

inline constexpr double micro = 1e-6;
inline constexpr double nano = 1e-9;

/// "1.50 GiB", "37.2 KiB", ...
std::string bytes(double n);
/// "12.3 us", "4.56 s", ...
std::string seconds(double s);
/// "3.21 Gflop/s"
std::string rate(double per_second, const std::string& unit);

}  // namespace v2d::units
