#include "support/task_graph.hpp"

#include <thread>

namespace v2d::task_graph {

namespace {

/// Process-wide counters (relaxed: stats, not synchronization).
std::atomic<std::uint64_t> g_sessions{0};
std::atomic<std::uint64_t> g_stages{0};
std::atomic<std::uint64_t> g_chained_stages{0};
std::atomic<std::uint64_t> g_tasks{0};
std::atomic<std::uint64_t> g_chained_tasks{0};
std::atomic<std::uint64_t> g_steals{0};
std::atomic<std::uint64_t> g_syncs{0};
std::atomic<std::uint64_t> g_affinity_hits{0};
std::atomic<std::uint64_t> g_combines{0};

/// Affinity placement policy toggle (benches flip it between runs).
std::atomic<bool> g_affinity{true};

/// Lane index of the current thread within its session (-1 = the driving
/// thread, which owns the last lane).
thread_local int t_lane = -1;

/// Tiny spinlock over Task::edge_lock: held for pointer pushes only.
struct EdgeLock {
  explicit EdgeLock(Session::Task* t) : t_(t) {
    while (t_->edge_lock.test_and_set(std::memory_order_acquire))
      std::this_thread::yield();
  }
  ~EdgeLock() { t_->edge_lock.clear(std::memory_order_release); }
  Session::Task* t_;
};

void session_run_hook(void* session, int n,
                      const std::function<void(int)>& fn) {
  static_cast<Session*>(session)->run_sync(n, fn);
}

/// Install the parallel_for hook once, before any thread exists.
const bool g_hook_installed = [] {
  detail::g_session_run = &session_run_hook;
  return true;
}();

}  // namespace

SchedStats stats() {
  return {g_sessions.load(std::memory_order_relaxed),
          g_stages.load(std::memory_order_relaxed),
          g_chained_stages.load(std::memory_order_relaxed),
          g_tasks.load(std::memory_order_relaxed),
          g_chained_tasks.load(std::memory_order_relaxed),
          g_steals.load(std::memory_order_relaxed),
          g_syncs.load(std::memory_order_relaxed),
          g_affinity_hits.load(std::memory_order_relaxed),
          g_combines.load(std::memory_order_relaxed)};
}

void set_affinity(bool on) {
  g_affinity.store(on, std::memory_order_relaxed);
}

bool affinity_enabled() {
  return g_affinity.load(std::memory_order_relaxed);
}

Session* current() {
  return static_cast<Session*>(detail::t_graph_session);
}

bool in_task() { return detail::t_in_graph_task; }

void sync_current() {
  if (detail::t_graph_session != nullptr && !detail::t_in_graph_task)
    static_cast<Session*>(detail::t_graph_session)->sync();
}

Session::Session(std::shared_ptr<ThreadPool> pool) : pool_(std::move(pool)) {
  const int workers = pool_->size() - 1;
  nlanes_ = workers + 1;  // the driving thread owns the last lane
  lanes_.reserve(static_cast<std::size_t>(nlanes_));
  for (int i = 0; i < nlanes_; ++i)
    lanes_.push_back(std::make_unique<Lane>());
  if (workers > 0)
    drain_ = pool_->post(workers, [this](int lane) { worker_loop(lane); });
  g_sessions.fetch_add(1, std::memory_order_relaxed);
}

Session::~Session() {
  if (!closed_.load(std::memory_order_relaxed)) {
    try {
      close();
    } catch (...) {
      // Destructor path: GraphRegion already drained; swallow late errors.
    }
  }
}

void Session::close() {
  sync();
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  if (drain_) pool_->wait(drain_);
}

Session::Task* Session::create(std::function<void()> fn) {
  arena_.emplace_back();
  Task* t = &arena_.back();
  t->fn = std::move(fn);
  return t;
}

void Session::add_dep(Task* succ, Task* pred) {
  if (pred == nullptr || pred == succ) return;
  EdgeLock lk(pred);
  if (!pred->done.load(std::memory_order_relaxed)) {
    succ->pending.fetch_add(1, std::memory_order_relaxed);
    pred->succs.push_back(succ);
  }
}

void Session::submit(Task* t) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  if (t->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) enqueue(t);
}

void Session::enqueue(Task* t) {
  const int lane =
      t->home >= 0 ? t->home : (t_lane >= 0 ? t_lane : nlanes_ - 1);
  {
    std::lock_guard<std::mutex> lk(lanes_[static_cast<std::size_t>(lane)]->mu);
    lanes_[static_cast<std::size_t>(lane)]->dq.push_back(t);
  }
  queued_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Empty critical section: a thread between its predicate check and its
    // wait either holds mu_ (we serialize after it and it re-checks) or is
    // already waiting (notify reaches it).  No lost wakeups.
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_all();
  }
}

Session::Task* Session::try_pop(int lane) {
  Task* t = nullptr;
  {
    Lane& own = *lanes_[static_cast<std::size_t>(lane)];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.dq.empty()) {
      t = own.dq.back();
      own.dq.pop_back();
    }
  }
  if (t == nullptr) {
    // Steal fallback for an idle lane: scan for the deepest victim queue
    // and take its oldest task — the head of the longest backlog, the one
    // whose tile has waited longest and is coldest in its home lane's
    // cache anyway.  A victim emptied between the scan and the pop just
    // returns null; the caller re-polls.
    int best = -1;
    std::size_t best_depth = 0;
    for (int k = 1; k < nlanes_; ++k) {
      const int v = (lane + k) % nlanes_;
      Lane& victim = *lanes_[static_cast<std::size_t>(v)];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (victim.dq.size() > best_depth) {
        best_depth = victim.dq.size();
        best = v;
      }
    }
    if (best >= 0) {
      Lane& victim = *lanes_[static_cast<std::size_t>(best)];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.dq.empty()) {
        t = victim.dq.front();
        victim.dq.pop_front();
        g_steals.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (t != nullptr) queued_.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

void Session::execute_task(Task* t) {
  if (t->home >= 0 && t->home == (t_lane >= 0 ? t_lane : nlanes_ - 1))
    g_affinity_hits.fetch_add(1, std::memory_order_relaxed);
  const bool prev = detail::t_in_graph_task;
  detail::t_in_graph_task = true;
  try {
    t->fn();
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  detail::t_in_graph_task = prev;
  g_tasks.fetch_add(1, std::memory_order_relaxed);
  if (t->chained) g_chained_tasks.fetch_add(1, std::memory_order_relaxed);
  std::vector<Task*> succs;
  {
    EdgeLock lk(t);
    // seq_cst pairs with wait(): its waited-store / done-load against our
    // done-store / waited-load below — at least one side sees the other.
    t->done.store(true, std::memory_order_seq_cst);
    succs.swap(t->succs);
  }
  if (t->waited.load(std::memory_order_seq_cst)) {
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_all();
  }
  for (Task* s : succs)
    if (s->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) enqueue(s);
  finish_one();
}

void Session::finish_one() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_.notify_all();
  }
}

void Session::worker_loop(int lane) {
  t_lane = lane;
  for (;;) {
    if (Task* t = try_pop(lane)) {
      execute_task(t);
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (closed_.load(std::memory_order_relaxed)) break;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lk, [&] {
      return closed_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
  t_lane = -1;
}

void Session::sync() {
  const int lane = nlanes_ - 1;  // the driving thread's lane
  for (;;) {
    if (Task* t = try_pop(lane)) {
      execute_task(t);
      continue;
    }
    if (outstanding_.load(std::memory_order_acquire) == 0) break;
    std::unique_lock<std::mutex> lk(mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lk, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0 ||
             queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
  chain_domain_ = nullptr;
  chain_last_.clear();
  arena_.clear();
  g_syncs.fetch_add(1, std::memory_order_relaxed);
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lk(mu_);
    e = error_;
    error_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

void Session::chain_stage(const void* domain, int n,
                          std::function<void(int)> fn) {
  if (chain_domain_ != domain || static_cast<int>(chain_last_.size()) != n) {
    sync();
    chain_domain_ = domain;
    chain_last_.assign(static_cast<std::size_t>(n), nullptr);
  }
  auto shared = std::make_shared<std::function<void(int)>>(std::move(fn));
  const bool affine = affinity_enabled() && nlanes_ > 1;
  // Wire every edge before releasing any task, so a fast rank can never
  // observe a half-built stage.
  for (int r = 0; r < n; ++r) {
    Task* t = create([shared, r] { (*shared)(r); });
    t->chained = true;
    if (affine) t->home = home_lane(domain, r);
    add_dep(t, chain_last_[static_cast<std::size_t>(r)]);
    chain_last_[static_cast<std::size_t>(r)] = t;
  }
  for (int r = 0; r < n; ++r) submit(chain_last_[static_cast<std::size_t>(r)]);
  g_chained_stages.fetch_add(1, std::memory_order_relaxed);
}

int Session::home_lane(const void* domain, int r) const {
  // FNV-1a over the chain key (decomposition identity × rank): stable for
  // a session's lifetime, spreads consecutive ranks across lanes, and
  // keeps every stage of one rank's chain on the same lane.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(domain)));
  mix(static_cast<std::uint64_t>(r));
  return static_cast<int>(h % static_cast<std::uint64_t>(nlanes_));
}

Session::Task* Session::chain_combine(const void* domain,
                                      std::function<void()> fn) {
  if (chain_domain_ != domain || chain_last_.empty()) {
    // No live chain to hang the combine off: degrade to the join-all the
    // wave-1 scheduler performed here.
    sync();
    fn();
    return nullptr;
  }
  Task* t = create(std::move(fn));
  t->chained = true;
  for (Task* pred : chain_last_) add_dep(t, pred);
  submit(t);
  g_combines.fetch_add(1, std::memory_order_relaxed);
  return t;
}

void Session::wait(Task* t) {
  if (t == nullptr) return;
  const int lane = t_lane >= 0 ? t_lane : nlanes_ - 1;
  for (;;) {
    if (t->done.load(std::memory_order_acquire)) return;
    if (Task* u = try_pop(lane)) {
      execute_task(u);
      continue;
    }
    // Publish interest before the final done check (pairs with the
    // seq_cst done-store / waited-load in execute_task), then park.
    t->waited.store(true, std::memory_order_seq_cst);
    if (t->done.load(std::memory_order_seq_cst)) return;
    std::unique_lock<std::mutex> lk(mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    cv_.wait(lk, [&] {
      return t->done.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Session::run_sync(int n, const std::function<void(int)>& fn) {
  sync();  // a barrier stage observes every chained predecessor
  if (n <= 0) return;
  g_stages.fetch_add(1, std::memory_order_relaxed);
  // Claim-loop stage, like ThreadPool::run but on the resident lanes: one
  // shared index counter, one claim task per helper lane.
  std::atomic<int> next{0};
  auto claim = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
  };
  const int helpers = std::min(nlanes_ - 1, n - 1);
  for (int h = 0; h < helpers; ++h) submit(create(claim));
  const bool prev = detail::t_in_graph_task;
  detail::t_in_graph_task = true;
  try {
    claim();
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  detail::t_in_graph_task = prev;
  sync();  // joins the helpers and rethrows the stage's first error
}

GraphRegion::GraphRegion(bool enable) {
  if (!enable || in_pool_task() || detail::t_graph_session != nullptr) return;
  (void)g_hook_installed;
  session_ = std::make_unique<Session>(host_pool());
  detail::t_graph_session = session_.get();
  uncaught_ = std::uncaught_exceptions();
}

GraphRegion::~GraphRegion() noexcept(false) {
  if (!session_) return;
  detail::t_graph_session = nullptr;
  if (std::uncaught_exceptions() > uncaught_) {
    // Unwinding through the region: drain for safety, swallow task errors
    // (the in-flight exception wins).
    try {
      session_->close();
    } catch (...) {
    }
    session_.reset();
    return;
  }
  try {
    session_->close();
  } catch (...) {
    session_.reset();
    throw;
  }
  session_.reset();
}

}  // namespace v2d::task_graph
