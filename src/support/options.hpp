#pragma once
/// \file options.hpp
/// \brief Tiny declarative command-line parser used by benches and examples.
///
/// Supports `--name value`, `--name=value` and boolean `--flag`.  Unknown
/// options raise v2d::Error so typos in bench sweeps fail loudly.

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace v2d {

class Options {
public:
  /// Register an option with a default; returns *this for chaining.
  Options& add(const std::string& name, const std::string& default_value,
               const std::string& help);
  Options& add_flag(const std::string& name, const std::string& help);

  /// Parse argv; throws v2d::Error on unknown option or missing value.
  void parse(int argc, const char* const* argv);

  /// Typed getters (throw if the option was never registered).
  std::string get(const std::string& name) const;
  long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  bool was_set(const std::string& name) const;

  /// Positional arguments left over after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Render a --help style usage block.
  std::string usage(const std::string& program) const;

private:
  struct Spec {
    std::string value;
    std::string help;
    bool is_flag = false;
    bool set = false;
  };
  Spec& require_spec(const std::string& name);
  const Spec& require_spec(const std::string& name) const;

  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace v2d
