#pragma once
/// \file thread_pool.hpp
/// \brief Host-side worker pool for rank-parallel execution.
///
/// The simulator runs every simulated rank's numerics on the host; until
/// now they ran serially on one thread.  This pool lets the per-rank tasks
/// of one operation execute concurrently on the host cores.  Scheduling
/// carries no numerical meaning: rank tasks own disjoint tiles and
/// disjoint clock/ledger slots, so any interleaving produces bit-identical
/// fields, recordings and simulated clocks — the pool is purely a host
/// wall-clock optimization.  Collectives (ExecModel::exchange/allreduce)
/// are serial barrier points and must stay outside parallel regions.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace v2d {

class ThreadPool {
public:
  /// A pool with `threads` execution lanes in total.  The calling thread
  /// participates in every run(), so `threads - 1` workers are spawned.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Run fn(0) .. fn(n-1), each index exactly once, distributed over the
  /// pool's lanes.  Blocks until every index has completed; the first
  /// exception thrown by any task is rethrown here.  Calls made from
  /// inside a pool task execute inline (no nested parallelism).
  void run(int n, const std::function<void(int)>& fn);

  /// One parallel region.  Workers hold a shared_ptr to the job they are
  /// draining, so a late worker can never touch a caller's stack after
  /// run() returned or mistake a fresh job's indices for an old job's.
  struct Job {
    std::function<void(int)> fn;
    int n = 0;
    std::atomic<int> next{0};
    std::atomic<int> remaining{0};
    std::exception_ptr error;  ///< first failure; guarded by mu_
  };

  /// Hand fn(0) .. fn(n-1) to the *workers only* — the caller does not
  /// participate and does not wait for completion.  Used by the task-graph
  /// layer to turn the pool's workers into resident scheduler lanes for
  /// the duration of a session (each index is one long-running lane loop).
  /// Blocks only until every index has been claimed by a worker, so a
  /// later run()/post() replacing the job slot can never orphan an
  /// unclaimed index.  Returns null when the pool has no workers; pass the
  /// handle to wait() to join.
  std::shared_ptr<Job> post(int n, const std::function<void(int)>& fn);

  /// Block until every index of a post()ed job has finished.
  void wait(const std::shared_ptr<Job>& job);

private:
  void worker_loop();
  void execute(Job& job);

  int size_ = 1;
  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Process-wide pool used by the rank-parallel helpers.  Sized by
/// set_host_threads(); defaults to the hardware concurrency.  Callers pin
/// the pool with the returned shared_ptr for the duration of a region, so
/// a concurrent set_host_threads() can never destroy a pool mid-region —
/// a replaced pool lives until its last in-flight region releases it.
std::shared_ptr<ThreadPool> host_pool();

/// Resize the global pool (`threads <= 0` restores the hardware-concurrency
/// default).  Regions already running keep the old pool alive and finish
/// on it; only subsequent parallel_for calls see the new size.
void set_host_threads(int threads);

/// Current lane count of the global pool.
int host_threads();

/// True while the current thread is draining a pool job (including the
/// resident scheduler lanes a task-graph session posts).
bool in_pool_task();

namespace detail {
/// Task-graph session hook (set by support/task_graph.cpp).  When the
/// driving thread has an open session, parallel_for routes through the
/// session's resident workers instead of fork/joining the pool: the
/// session first drains any chained tasks (so a barrier loop observes all
/// of its inputs) and then runs the loop as one synchronous stage.  The
/// hook keeps this header free of a task_graph dependency.
extern thread_local void* t_graph_session;  ///< driving thread's Session
extern thread_local bool t_in_graph_task;   ///< inside a session task body
extern void (*g_session_run)(void* session, int n,
                             const std::function<void(int)>& fn);
}  // namespace detail

/// parallel_for over the global pool, with a serial fast path when the
/// pool has a single lane or there is at most one index.  Under an open
/// task-graph session (--host-sched graph) the loop becomes a synchronous
/// stage on the session's resident workers instead of a pool fork/join.
template <typename Fn>
void parallel_for(int n, Fn&& fn) {
  if (detail::t_graph_session != nullptr) {
    if (detail::t_in_graph_task) {
      // Nested loop inside a session task: the lanes are busy running the
      // outer stage, so inline is both safe and the fastest option.
      for (int i = 0; i < n; ++i) fn(i);
      return;
    }
    // Route every size through the session (even n <= 1): the session must
    // drain chained predecessor tasks before the body reads their output.
    detail::g_session_run(detail::t_graph_session, n,
                          std::function<void(int)>(std::forward<Fn>(fn)));
    return;
  }
  const std::shared_ptr<ThreadPool> pool = host_pool();  // pins the pool
  if (n <= 1 || pool->size() <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->run(n, std::function<void(int)>(std::forward<Fn>(fn)));
}

/// Rank-parallel loop over a decomposition-like object (anything with
/// nranks()): runs fn(rank) for every simulated rank, concurrently when
/// the host pool has more than one lane.  Only valid when ranks touch
/// disjoint data — which every V2D rank loop guarantees, since ranks own
/// disjoint tiles.  For priced loops that commit kernel calls, use the
/// ExecContext-aware overload in linalg/exec_context.hpp instead.
template <typename Dec, typename Fn>
void par_ranks(const Dec& dec, Fn&& fn) {
  parallel_for(dec.nranks(), std::forward<Fn>(fn));
}

}  // namespace v2d
