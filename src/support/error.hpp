#pragma once
/// \file error.hpp
/// \brief Error handling primitives shared by every v2dsve module.
///
/// All recoverable failures are reported via v2d::Error (derived from
/// std::runtime_error) so callers can catch a single type.  Internal
/// invariant violations use V2D_CHECK / V2D_REQUIRE which throw with
/// file/line context; they stay enabled in release builds because this
/// library's correctness is the product.

#include <sstream>
#include <stdexcept>
#include <string>

namespace v2d {

/// Exception type thrown by all v2dsve libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace v2d

/// Precondition check on public API arguments.
#define V2D_REQUIRE(expr, msg)                                             \
  do {                                                                     \
    if (!(expr))                                                           \
      ::v2d::detail::fail("requirement", #expr, __FILE__, __LINE__, msg);  \
  } while (0)

/// Internal invariant check.
#define V2D_CHECK(expr, msg)                                               \
  do {                                                                     \
    if (!(expr))                                                           \
      ::v2d::detail::fail("invariant", #expr, __FILE__, __LINE__, msg);    \
  } while (0)

/// Unconditional failure with message.
#define V2D_FAIL(msg) \
  ::v2d::detail::fail("assertion", "false", __FILE__, __LINE__, msg)
