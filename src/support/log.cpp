#include "support/log.hpp"

#include <iostream>

namespace v2d::log {

namespace {
Level g_level = Level::Warn;
std::ostream* g_stream = nullptr;
}  // namespace

Level level() { return g_level; }
void set_level(Level lvl) { g_level = lvl; }
void set_stream(std::ostream* os) { g_stream = os; }

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::ErrorLevel: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

void write(Level lvl, const std::string& msg) {
  std::ostream& os = g_stream ? *g_stream : std::cerr;
  os << '[' << level_name(lvl) << "] " << msg << '\n';
}

}  // namespace v2d::log
