#pragma once
/// \file dd.hpp
/// \brief Double-double (compensated) accumulation.
///
/// BiCGSTAB trajectories are exquisitely sensitive to inner-product
/// rounding, and plain summation groups terms differently under every
/// NPRX1×NPRX2 tiling — which would make iteration counts (and therefore
/// Table I timings) depend on the decomposition through noise rather than
/// through communication.  V2D sidesteps this by accumulating global
/// reductions in double-double arithmetic: summing the same addends in
/// any order agrees to ~2⁻¹⁰⁶, so the rounded double result — and hence
/// the entire Krylov trajectory — is tiling-independent.

#include <cmath>

namespace v2d {

/// Error-free transformation accumulator (Knuth two-sum).
class DdAccumulator {
public:
  void add(double x) {
    const double t = hi_ + x;
    const double e = std::fabs(hi_) >= std::fabs(x) ? (hi_ - t) + x
                                                    : (x - t) + hi_;
    lo_ += e;
    hi_ = t;
  }

  /// Merge another accumulator (used for rank partials).
  void add(const DdAccumulator& o) {
    add(o.hi_);
    add(o.lo_);
  }

  double value() const { return hi_ + lo_; }

private:
  double hi_ = 0.0;
  double lo_ = 0.0;
};

}  // namespace v2d
