#pragma once
/// \file exec_context.hpp
/// \brief Bundles the VLA recorder with the execution pricer.
///
/// Every distributed operation takes an ExecContext.  The vla::Context
/// executes and records; commit() flushes the recording as one priced
/// kernel call attributed to a rank.  When `em` is null the numerics run
/// unpriced (unit tests of pure math use this).

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/profile.hpp"
#include "mpisim/exec_model.hpp"
#include "support/task_graph.hpp"
#include "support/thread_pool.hpp"
#include "vla/vla.hpp"

namespace v2d::linalg {

/// Whether the solvers route hot-loop call sites through the fused
/// one-pass composites (MATVEC+DPROD, DAXPY₂, precond+ganged-dot, fused
/// residual/smoother) instead of the kernel-per-pass Table II sequence.
///
///   Off — every call site runs the original kernel sequence; results,
///         recorded counts, ledgers and simulated clocks are bit-identical
///         to a build without the fusion layer.
///   On  — hot loops use the composites: fewer memory passes, fewer kernel
///         calls, reduced bytes_moved in the priced stream.  Numerics are
///         pinned to the unfused path (the composites evaluate the same
///         per-element expressions in the same association order, and
///         reductions keep the rank-ordered compensated merge), so the
///         Krylov trajectory is unchanged — only the price is.
///   Plan — same hot-loop routing as On, but the composites come from the
///          general fusion planner (src/linalg/fusion/): the first solver
///          iteration of each configuration records the kernel DAG
///          (vla/kernel_dag.hpp), and execution runs planner-generated
///          groups in all three representations (interpreter sweep,
///          signature-keyed native stamps, composed analytic counts).
///          The hand-written On composites stay as the differential
///          oracle; Plan is bit-identical to both Off and On.
enum class FuseMode : std::uint8_t {
  Off,
  On,
  Plan,
};

inline const char* fuse_mode_name(FuseMode m) {
  switch (m) {
    case FuseMode::On: return "on";
    case FuseMode::Plan: return "plan";
    case FuseMode::Off: break;
  }
  return "off";
}

inline FuseMode fuse_mode_from_name(const std::string& name) {
  if (name == "on") return FuseMode::On;
  if (name == "off") return FuseMode::Off;
  if (name == "plan") return FuseMode::Plan;
  throw Error("unknown fuse mode '" + name + "' (expected off|on|plan)");
}

/// Host execution scheduler for rank-parallel regions (--host-sched).
///
///   Barrier — every par_ranks site forks and joins the pool (the original
///             model).  Default.
///   Graph   — solver regions open a task_graph::Session: per-rank kernel
///             tasks chain across consecutive operations with dependency
///             edges instead of global barriers, and halo-exchange sites
///             overlap ghost packing with interior compute.  Purely a host
///             wall-clock knob — fields, recordings, ledgers and simulated
///             clocks are bit-identical to Barrier (and to serial) — but
///             it is pinned in checkpoints like --fuse so a restarted run
///             records the same configuration it was priced under.
enum class HostSched : std::uint8_t {
  Barrier,
  Graph,
};

inline const char* host_sched_name(HostSched s) {
  return s == HostSched::Graph ? "graph" : "barrier";
}

inline HostSched host_sched_from_name(const std::string& name) {
  if (name == "barrier") return HostSched::Barrier;
  if (name == "graph") return HostSched::Graph;
  throw Error("unknown host scheduler '" + name +
              "' (expected barrier|graph)");
}

struct ExecContext {
  vla::Context vctx;
  mpisim::ExecModel* em = nullptr;
  FuseMode fuse = FuseMode::Off;
  HostSched sched = HostSched::Barrier;
  /// When non-null, call sites record their primitive kernel launches
  /// here (the fusion planner's iteration-DAG capture, armed by
  /// linalg::DagCapture for the first solver iteration of a new
  /// configuration under FuseMode::Plan).  Never set on fork()ed rank
  /// contexts: recording stays on the driving thread so the captured
  /// node order is independent of the host-thread count.
  vla::DagRecorder* dag = nullptr;

  ExecContext() = default;
  explicit ExecContext(vla::VectorArch arch, mpisim::ExecModel* model = nullptr,
                       vla::VlaExecMode mode = vla::VlaExecMode::Interpret,
                       FuseMode fuse_mode = FuseMode::Off)
      : vctx(arch, mode), em(model), fuse(fuse_mode) {}
  ExecContext(vla::Context v, mpisim::ExecModel* model,
              FuseMode fuse_mode = FuseMode::Off)
      : vctx(std::move(v)), em(model), fuse(fuse_mode) {}

  /// True when call sites should take a fused-composite path (hand-written
  /// under On, planner-generated under Plan — same call-site routing).
  bool fused() const { return fuse != FuseMode::Off; }

  /// True when fused call sites should run the planner-generated groups
  /// instead of the hand-written oracle composites.
  bool planned() const { return fuse == FuseMode::Plan; }

  /// Rank-local child context for par_ranks: shares the pricer and the
  /// analytic count cache, with a private recording accumulator so
  /// concurrent rank tasks keep their instruction streams separate.
  /// Allocation-free beyond a shared_ptr bump — runs once per rank task.
  /// The DAG recorder is deliberately not propagated (capture stays on the
  /// driving thread); the scheduler choice is.
  ExecContext fork() const {
    ExecContext out(vctx.fork(), em, fuse);
    out.sched = sched;
    return out;
  }

  /// Flush the recording accumulated since the last commit as one kernel
  /// call by `rank` touching a `working_set_bytes` footprint.
  void commit(int rank, compiler::KernelFamily family,
              const std::string& region, std::uint64_t elements,
              std::uint64_t working_set_bytes) {
    sim::KernelCounts counts = vctx.take_counts();
    counts.calls = 1;
    counts.elements = elements;
    if (em != nullptr) em->kernel(rank, family, region, counts, working_set_bytes);
  }

  /// Discard any recording (used around setup code that should not be
  /// attributed to the solver).
  void discard() { (void)vctx.take_counts(); }

  /// Price scalar-heavy host code (coefficient assembly, small dense
  /// solves) from analytic per-element flop/traffic estimates instead of a
  /// VLA recording.  FMA-dominated mix is assumed; loop control is charged
  /// per element.
  void commit_synthetic(int rank, compiler::KernelFamily family,
                        const std::string& region, std::uint64_t elements,
                        std::uint64_t flops_per_elem,
                        std::uint64_t bytes_read_per_elem,
                        std::uint64_t bytes_written_per_elem,
                        std::uint64_t working_set_bytes) {
    if (em == nullptr) return;
    sim::KernelCounts c;
    const unsigned vl = vctx.lanes();
    const std::uint64_t fma = elements * flops_per_elem / 2;
    const std::uint64_t ld = elements * bytes_read_per_elem / 8;
    const std::uint64_t st = elements * bytes_written_per_elem / 8;
    auto rec = [&](sim::OpClass cls, std::uint64_t lanes) {
      const auto i = static_cast<std::size_t>(cls);
      c.lanes[i] = lanes;
      c.instr[i] = (lanes + vl - 1) / vl;
    };
    rec(sim::OpClass::FlopFma, fma);
    rec(sim::OpClass::LoadContig, ld);
    rec(sim::OpClass::StoreContig, st);
    c.lanes[static_cast<std::size_t>(sim::OpClass::Branch)] = elements;
    c.instr[static_cast<std::size_t>(sim::OpClass::Branch)] = elements;
    c.bytes_read = elements * bytes_read_per_elem;
    c.bytes_written = elements * bytes_written_per_elem;
    c.elements = elements;
    c.calls = 1;
    em->kernel(rank, family, region, c, working_set_bytes);
  }

  /// Collective pricing is a join node: any chained rank tasks must have
  /// committed their kernels before the barrier walks the rank clocks, so
  /// both collectives drain the current task-graph session first (a no-op
  /// under Barrier scheduling and on worker threads).
  void allreduce(std::uint64_t bytes,
                 const std::string& region = "mpi_allreduce") {
    task_graph::sync_current();
    allreduce_nosync(bytes, region);
  }

  /// Pipelined-reduction variant: prices the same collective stream but
  /// skips the host-side drain.  Only valid when the caller has already
  /// waited on a combine task that transitively covers every per-rank
  /// kernel commit logically preceding this collective (dot_ganged's
  /// partial tasks) — the priced ledgers are then identical to the
  /// synced path while the chain state survives for speculative
  /// next-stage submission.
  void allreduce_nosync(std::uint64_t bytes,
                        const std::string& region = "mpi_allreduce") {
    if (dag != nullptr) dag->barrier("allreduce");
    if (em != nullptr) em->allreduce(bytes, region);
  }

  void exchange(const std::vector<mpisim::Transfer>& transfers,
                const std::string& region = "mpi_halo") {
    task_graph::sync_current();
    if (dag != nullptr) dag->barrier("halo");
    if (em != nullptr) em->exchange(transfers, region);
  }
};

/// Run `fn(rank, rank_ctx)` for every simulated rank of `dec` (anything
/// with nranks()), concurrently on the host pool when it has more than one
/// lane.  Each task gets a fork()ed ExecContext — private recording,
/// shared count cache — so per-rank commits stay correctly attributed.
/// Safe whenever ranks touch disjoint tiles, which every V2D rank loop
/// guarantees; ExecModel::kernel writes only the committing rank's clock
/// and ledger slots.  Collective pricing (exchange/allreduce) must stay
/// outside — those are serial barrier points.  Results are bit-identical
/// to the serial loop: tasks share no mutable state, and the forked-
/// context path is taken even at one host thread so only execution order
/// varies with the thread count.
template <typename Dec, typename Fn>
void par_ranks(ExecContext& ctx, const Dec& dec, Fn&& fn) {
  parallel_for(dec.nranks(), [&](int r) {
    ExecContext rctx = ctx.fork();
    fn(r, rctx);
  });
}

/// Chain-domain key: stages on the same decomposition chain rank-to-rank;
/// a DistField/DistVector-like `dec` is keyed by its underlying
/// Decomposition so every vector of one solver shares a single chain.
template <typename Dec>
const void* chain_domain(const Dec& dec) {
  if constexpr (requires { dec.decomp(); }) {
    return static_cast<const void*>(&dec.decomp());
  } else {
    return static_cast<const void*>(&dec);
  }
}

/// Chained variant of par_ranks for audited elementwise call sites: under
/// an open task-graph session the per-rank tasks are *deferred* — task r
/// of this stage waits only for task r of the previous stage on the same
/// chain domain, not for a global barrier.  Outside a session (or from
/// inside a session task) it degrades to the synchronous par_ranks.
///
/// Deferred execution is the one place lambda-capture lifetimes matter:
/// `fn` is taken by value and must own everything it touches beyond
/// objects that outlive the session's next join (the vectors themselves
/// do; stack scalars and strings must be captured by value).  Collectives
/// and any plain par_ranks drain the chain before running, so unaudited
/// sites never observe a half-finished stage.
template <typename Dec, typename Fn>
void par_ranks_chain(ExecContext& ctx, const Dec& dec, Fn fn) {
  task_graph::Session* ses = task_graph::current();
  if (ses == nullptr || task_graph::in_task()) {
    par_ranks(ctx, dec, std::move(fn));
    return;
  }
  ExecContext* ctxp = &ctx;
  ses->chain_stage(chain_domain(dec), dec.nranks(),
                   [ctxp, fn = std::move(fn)](int r) {
                     ExecContext rctx = ctxp->fork();
                     fn(r, rctx);
                   });
}

}  // namespace v2d::linalg
