#include "linalg/cg.hpp"

#include <cmath>

#include "linalg/dag_capture.hpp"
#include "support/error.hpp"

namespace v2d::linalg {

CgSolver::CgSolver(const grid::Grid2D& g, const grid::Decomposition& d, int ns)
    : owned_(std::make_unique<SolverWorkspace>(g, d, ns)), ws_(owned_.get()) {}

SolveStats CgSolver::solve(ExecContext& ctx, const LinearOperator& A,
                           Preconditioner& M, DistVector& x,
                           const DistVector& b, const SolveOptions& opt) {
  V2D_REQUIRE(opt.rel_tol > 0.0, "tolerance must be positive");
  SolveStats stats;
  DistVector& r = ws_->vec(0);
  DistVector& z = ws_->vec(1);
  DistVector& p = ws_->vec(2);
  DistVector& q = ws_->vec(3);
  DagCapture dag(ctx,
                 dag_key("cg", M.name(),
                         static_cast<std::uint64_t>(x.global_size()),
                         ctx.vctx));
  // Under --host-sched graph the whole solve runs in one task-graph
  // session: vector updates chain rank-to-rank, matvecs overlap halo
  // packing with interior rows, and the dots' allreduce pricing forms the
  // join nodes.  A no-op under barrier scheduling.
  task_graph::GraphRegion graph(ctx.sched == HostSched::Graph);

  if (ctx.fused()) {
    A.apply_residual(ctx, x, b, r);
  } else {
    A.apply(ctx, x, r);
    r.assign_sub(ctx, b, r);
  }
  M.apply(ctx, r, z);
  p.copy_from(ctx, z);

  double bnorm, rz, rnorm2;
  {
    const DistVector::DotPair pairs[] = {{&b, &b}, {&r, &z}, {&r, &r}};
    const auto vals = DistVector::dot_ganged(ctx, pairs);
    ++stats.global_reductions;
    bnorm = std::sqrt(vals[0]);
    rz = vals[1];
    rnorm2 = vals[2];
  }
  if (bnorm == 0.0) {
    x.fill(ctx, 0.0);
    stats.converged = true;
    stats.stop_reason = "zero rhs";
    return stats;
  }

  for (int it = 1; it <= opt.max_iterations; ++it) {
    dag.begin_iteration(it);
    stats.iterations = it;
    double pq;
    if (ctx.fused()) {
      // Fused MATVEC+DPROD: p·Ap rides the stencil sweep.
      pq = A.apply_dot(ctx, p, q);
    } else {
      A.apply(ctx, p, q);
      pq = DistVector::dot(ctx, p, q);
    }
    ++stats.global_reductions;
    // On an SPD operator p·Ap > 0 for p ≠ 0.  A negative (or NaN) value
    // means the operator is not positive definite — a distinct failure
    // from the exact-breakdown p·Ap == 0, and worth reporting as such
    // because it indicates a badly assembled system, not bad luck.
    if (!(pq > 0.0)) {
      stats.stop_reason = pq == 0.0 ? "p.Ap breakdown" : "indefinite operator";
      break;
    }
    const double alpha = rz / pq;
    double rz_new;
    double fused_vals[2];
    // The CG tail composite: r ← r − α·q, z ← M·r and the {r·z, r·r}
    // gang in ONE sweep (still one ganged reduction); x's half of the
    // twin update keeps its own pass.  Preconditioners without a fused
    // form fall back to DAXPY₂ + apply + dot_ganged.
    if (ctx.fused() && M.apply_dot2(ctx, r, z, fused_vals, -alpha, &q)) {
      x.daxpy(ctx, alpha, p);
      ++stats.global_reductions;
      rz_new = fused_vals[0];
      rnorm2 = fused_vals[1];
    } else {
      if (ctx.fused()) {
        // Twin update DAXPY₂: both vectors in one pass.
        DistVector::daxpy2(ctx, x, alpha, p, r, -alpha, q);
      } else {
        x.daxpy(ctx, alpha, p);
        r.daxpy(ctx, -alpha, q);
      }
      M.apply(ctx, r, z);
      const DistVector::DotPair pairs[] = {{&r, &z}, {&r, &r}};
      const auto vals = DistVector::dot_ganged(ctx, pairs);
      ++stats.global_reductions;
      rz_new = vals[0];
      rnorm2 = vals[1];
    }
    stats.final_relative_residual = std::sqrt(std::max(0.0, rnorm2)) / bnorm;
    if (stats.final_relative_residual <= opt.rel_tol) {
      stats.converged = true;
      stats.stop_reason = "tolerance reached";
      break;
    }
    const double beta = rz_new / rz;
    rz = rz_new;
    p.xpby(ctx, z, beta);
  }
  if (!stats.stop_reason_set()) stats.stop_reason = "max iterations";
  return stats;
}

}  // namespace v2d::linalg
