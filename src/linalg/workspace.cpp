#include "linalg/workspace.hpp"

namespace v2d::linalg {

SolverWorkspace::SolverWorkspace(const grid::Grid2D& g,
                                 const grid::Decomposition& d, int ns)
    : g_(&g), d_(&d), ns_(ns) {}

DistVector& SolverWorkspace::vec(std::size_t slot) {
  std::lock_guard<std::mutex> lk(mu_);
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  if (!slots_[slot])
    slots_[slot] = std::make_unique<DistVector>(*g_, *d_, ns_);
  return *slots_[slot];
}

std::size_t SolverWorkspace::allocated() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (s) ++n;
  return n;
}

}  // namespace v2d::linalg
