#include "linalg/workspace.hpp"

namespace v2d::linalg {

SolverWorkspace::SolverWorkspace(const grid::Grid2D& g,
                                 const grid::Decomposition& d, int ns)
    : g_(&g), d_(&d), ns_(ns) {}

DistVector& SolverWorkspace::vec(std::size_t slot) {
  std::lock_guard<std::mutex> lk(mu_);
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  if (!slots_[slot])
    slots_[slot] = std::make_unique<DistVector>(*g_, *d_, ns_);
  return *slots_[slot];
}

std::size_t SolverWorkspace::allocated() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (s) ++n;
  return n;
}

void SolverWorkspace::scrub() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& s : slots_)
    if (s) s->field().fill(0.0);
}

bool WorkspacePool::shape_equal(const Entry& e, const grid::Grid2D& g,
                                const grid::Decomposition& d, int ns) {
  if (e.ns != ns) return false;
  // Grid2D is defined by its zone counts, box and coordinate system.
  if (e.g.nx1() != g.nx1() || e.g.nx2() != g.nx2()) return false;
  if (e.g.coord() != g.coord()) return false;
  if (e.g.x1f(0) != g.x1f(0) || e.g.x1f(g.nx1()) != g.x1f(g.nx1()))
    return false;
  if (e.g.x2f(0) != g.x2f(0) || e.g.x2f(g.nx2()) != g.x2f(g.nx2()))
    return false;
  // Decomposition: same topology and identical per-rank tile extents.
  if (e.d.nranks() != d.nranks()) return false;
  if (e.d.topology().nprx1() != d.topology().nprx1() ||
      e.d.topology().nprx2() != d.topology().nprx2())
    return false;
  for (int r = 0; r < d.nranks(); ++r) {
    const auto &a = e.d.extent(r), &b = d.extent(r);
    if (a.i0 != b.i0 || a.j0 != b.j0 || a.ni != b.ni || a.nj != b.nj)
      return false;
  }
  return true;
}

WorkspacePool::Lease WorkspacePool::acquire(const grid::Grid2D& g,
                                            const grid::Decomposition& d,
                                            int ns) {
  Entry* hit = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& e : entries_) {
      if (!e->busy && shape_equal(*e, g, d, ns)) {
        e->busy = true;
        ++reused_;
        hit = e.get();
        break;
      }
    }
    if (hit == nullptr) {
      entries_.push_back(std::make_unique<Entry>(g, d, ns));
      entries_.back()->busy = true;
      hit = entries_.back().get();
    }
  }
  // Scrub outside the pool lock: zeroing a large reused workspace must
  // not serialize unrelated acquires.
  hit->ws.scrub();
  return Lease(this, &hit->ws);
}

void WorkspacePool::Lease::release() {
  if (pool_ == nullptr || ws_ == nullptr) return;
  std::lock_guard<std::mutex> lk(pool_->mu_);
  for (auto& e : pool_->entries_) {
    if (&e->ws == ws_) {
      e->busy = false;
      break;
    }
  }
  pool_ = nullptr;
  ws_ = nullptr;
}

std::size_t WorkspacePool::created() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::uint64_t WorkspacePool::reused() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reused_;
}

std::size_t WorkspacePool::leased() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e->busy) ++n;
  return n;
}

}  // namespace v2d::linalg
