#include "linalg/stencil_op.hpp"

#include <memory>
#include <vector>

#include "linalg/kernels.hpp"
#include "support/dd.hpp"
#include "support/error.hpp"
#include "support/task_graph.hpp"

namespace v2d::linalg {

using compiler::KernelFamily;

namespace {

/// Graph-mode stencil application: per rank, a four-task subgraph that
/// overlaps halo packing with interior compute —
///
///   A_r: W/E ghost-column copies + x1 boundary conditions
///   C_r: S/N ghost-row copies + x2 boundary conditions   (after A_r: the
///        x2 BC pass sources domain-edge corners from the x1 ghosts)
///   B_r: interior stencil rows 1..nj-2                   (after A_r: rows
///        read the W/E ghost columns, but not the S/N ghost rows)
///   D_r: boundary rows 0 and nj-1 + the rank's commit    (after B_r, C_r)
///
/// so a rank's interior compute starts as soon as its own ghost columns
/// land, while other ranks are still packing.  B_r and D_r share one
/// fork()ed per-rank context (D_r runs strictly after B_r), keeping the
/// recording/commit stream identical to the single-task sweep.  The
/// subgraph drains before returning: overlap is within the operator
/// application, so callers never see a half-applied product.
template <typename Rows, typename Finish>
void build_overlap_graph(ExecContext& ctx, task_graph::Session& ses,
                         const grid::Decomposition& dec, grid::DistField& xf,
                         Rows rows, Finish finish) {
  grid::DistField* xfp = &xf;
  for (int r = 0; r < dec.nranks(); ++r) {
    const int nj = dec.extent(r).nj;
    auto rctx = std::make_shared<ExecContext>(ctx.fork());
    auto* a = ses.create([xfp, r] {
      xfp->copy_halo(r, /*x1_dirs=*/true);
      xfp->apply_bc_dir(grid::BcKind::Dirichlet0, r, /*x1_dirs=*/true);
    });
    auto* c = ses.create([xfp, r] {
      xfp->copy_halo(r, /*x1_dirs=*/false);
      xfp->apply_bc_dir(grid::BcKind::Dirichlet0, r, /*x1_dirs=*/false);
    });
    ses.add_dep(c, a);
    task_graph::Session::Task* b = nullptr;
    if (nj > 2) {
      b = ses.create([rows, rctx, r, nj] { rows(*rctx, r, 1, nj - 1); });
      ses.add_dep(b, a);
    }
    auto* d = ses.create([rows, finish, rctx, r, nj] {
      rows(*rctx, r, 0, 1);
      if (nj > 1) rows(*rctx, r, nj - 1, nj);
      finish(*rctx, r);
    });
    ses.add_dep(d, c);
    ses.add_dep(d, b != nullptr ? b : a);
    ses.submit(a);
    ses.submit(c);
    if (b != nullptr) ses.submit(b);
    ses.submit(d);
  }
  ses.sync();
}

}  // namespace

StencilOperator::StencilOperator(const grid::Grid2D& g,
                                 const grid::Decomposition& d, int ns)
    : grid_(&g),
      dec_(&d),
      ns_(ns),
      cc_(g, d, ns, 1),
      cw_(g, d, ns, 1),
      ce_(g, d, ns, 1),
      cs_(g, d, ns, 1),
      cn_(g, d, ns, 1) {}

void StencilOperator::enable_coupling() {
  V2D_REQUIRE(ns_ == 2, "species coupling is defined for ns == 2");
  if (!csp_) csp_ = std::make_unique<grid::DistField>(*grid_, *dec_, ns_, 1);
}

grid::DistField& StencilOperator::csp() {
  V2D_REQUIRE(csp_, "coupling not enabled");
  return *csp_;
}

const grid::DistField& StencilOperator::csp() const {
  V2D_REQUIRE(csp_, "coupling not enabled");
  return *csp_;
}

void StencilOperator::zero_boundary_coefficients() {
  const int gnx1 = grid_->nx1();
  const int gnx2 = grid_->nx2();
  parallel_for(dec_->nranks(), [&](int r) {
    const grid::TileExtent& e = dec_->extent(r);
    for (int s = 0; s < ns_; ++s) {
      grid::TileView w = cw_.view(r, s), ev = ce_.view(r, s);
      grid::TileView sv = cs_.view(r, s), nv = cn_.view(r, s);
      if (e.i0 == 0)
        for (int lj = 0; lj < e.nj; ++lj) w(0, lj) = 0.0;
      if (e.i0 + e.ni == gnx1)
        for (int lj = 0; lj < e.nj; ++lj) ev(e.ni - 1, lj) = 0.0;
      if (e.j0 == 0)
        for (int li = 0; li < e.ni; ++li) sv(li, 0) = 0.0;
      if (e.j0 + e.nj == gnx2)
        for (int li = 0; li < e.ni; ++li) nv(li, e.nj - 1) = 0.0;
    }
  });
}

void StencilOperator::apply(ExecContext& ctx, DistVector& x,
                            DistVector& y) const {
  apply_as(ctx, x, y, KernelFamily::Matvec, "matvec");
}

void StencilOperator::apply_as(ExecContext& ctx, DistVector& x, DistVector& y,
                               KernelFamily family,
                               const std::string& region) const {
  V2D_REQUIRE(x.ns() == ns_ && y.ns() == ns_, "species count mismatch");

  // The halo exchange is part of the matrix-free product.
  grid::DistField& xf = x.field();
  task_graph::Session* ses = task_graph::current();
  const bool overlap = ses != nullptr && !task_graph::in_task();
  if (overlap) {
    // Graph mode: price the exchange up front — the Transfer list is
    // analytically identical to the one the copies below imply, and the
    // collective is a join node that drains any chained predecessors.  The
    // strip copies themselves become per-rank overlap tasks.
    ctx.exchange(xf.ghost_transfer_plan());
  } else {
    const auto transfers = xf.exchange_ghosts();
    xf.apply_bc(grid::BcKind::Dirichlet0);  // BCs are folded into coefficients
    ctx.exchange(transfers);
  }
  if (ctx.dag != nullptr) {
    const auto gn = static_cast<std::uint64_t>(x.global_size());
    ctx.dag->op("matvec", gn, {&x, this}, {&y});
    if (csp_) ctx.dag->op("coupling", gn, {&x, this}, {&y});
  }

  auto* self = const_cast<StencilOperator*>(this);
  grid::DistField* xfp = &xf;
  DistVector* yp = &y;
  // Stencil rows [lo, hi) of rank r.  Per-zone results depend only on x,
  // the ghosts and the coefficients — never on row grouping — and the VLA
  // recording is a commutative sum, so any split over rows commits the
  // same values and the same counts as the single full sweep.
  auto rows = [self, xfp, yp](ExecContext& rctx, int r, int lo, int hi) {
    const grid::TileExtent& e = self->dec_->extent(r);
    const auto n = static_cast<std::size_t>(e.ni);
    for (int s = 0; s < self->ns_; ++s) {
      grid::TileView xv = xfp->view(r, s);
      grid::TileView yv = yp->field().view(r, s);
      grid::TileView vcc = self->cc_.view(r, s);
      grid::TileView vcw = self->cw_.view(r, s);
      grid::TileView vce = self->ce_.view(r, s);
      grid::TileView vcs = self->cs_.view(r, s);
      grid::TileView vcn = self->cn_.view(r, s);
      for (int lj = lo; lj < hi; ++lj) {
        stencil_row(rctx.vctx, std::span<const double>(vcc.row(lj), n),
                    std::span<const double>(vcw.row(lj), n),
                    std::span<const double>(vce.row(lj), n),
                    std::span<const double>(vcs.row(lj), n),
                    std::span<const double>(vcn.row(lj), n), xv.row(lj),
                    xv.row(lj - 1), xv.row(lj + 1),
                    std::span<double>(yv.row(lj), n));
      }
      if (self->csp_) {
        grid::TileView vsp = self->csp_->view(r, s);
        grid::TileView xo = xfp->view(r, 1 - s);
        for (int lj = lo; lj < hi; ++lj) {
          coupling_row(rctx.vctx, std::span<const double>(vsp.row(lj), n),
                       xo.row(lj), std::span<double>(yv.row(lj), n));
        }
      }
    }
  };
  auto finish = [self, yp, family, region](ExecContext& rctx, int r) {
    const grid::TileExtent& e = self->dec_->extent(r);
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * self->ns_;
    if (self->eval_doubles_read_ > 0 || self->eval_flops_ > 0) {
      // On-the-fly coefficient evaluation: mostly state/table reads plus
      // a little arithmetic, per element (see kMatvecEval* docs).
      rctx.vctx.record_external(
          sim::OpClass::LoadContig, elements * self->eval_doubles_read_,
          elements * self->eval_doubles_read_ * sizeof(double), 0);
      rctx.vctx.record_external(sim::OpClass::FlopFma,
                                elements * self->eval_flops_ / 2, 0, 0);
    }
    // Working set: x (with ghosts), y, five coefficient arrays (+coupling).
    // The on-the-fly evaluation's table/state reads revisit the same zones
    // every sweep, so they add traffic (bytes_moved) but not footprint.
    const int arrays = 7 + (self->csp_ ? 1 : 0);
    rctx.commit(r, family, region, elements, yp->working_set(r, arrays));
  };

  if (overlap) {
    build_overlap_graph(ctx, *ses, *dec_, xf, rows, finish);
    return;
  }
  par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
    rows(rctx, r, 0, dec_->extent(r).nj);
    finish(rctx, r);
  });
}

double StencilOperator::apply_dot(ExecContext& ctx, DistVector& x,
                                  DistVector& y, const DistVector* w) const {
  V2D_REQUIRE(x.ns() == ns_ && y.ns() == ns_, "species count mismatch");
  grid::DistField& xf = x.field();
  const auto transfers = xf.exchange_ghosts();
  xf.apply_bc(grid::BcKind::Dirichlet0);
  ctx.exchange(transfers);
  if (ctx.dag != nullptr) {
    const auto gn = static_cast<std::uint64_t>(x.global_size());
    ctx.dag->op("matvec", gn, {&x, this}, {&y});
    ctx.dag->op("dot", gn, {&y, w != nullptr ? static_cast<const void*>(w)
                                             : static_cast<const void*>(&x)},
                {});
  }

  auto* self = const_cast<StencilOperator*>(this);
  auto* wv = const_cast<DistVector*>(w);
  const int nranks = dec_->nranks();
  // Per-rank compensated partials merged in rank order below — the same
  // accumulation dot_ganged performs, so the result is bit-identical to
  // the unfused apply() + dot() and independent of the host-thread count.
  std::vector<DdAccumulator> partial(static_cast<std::size_t>(nranks));
  par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec_->extent(r);
    const auto n = static_cast<std::size_t>(e.ni);
    DdAccumulator& acc = partial[static_cast<std::size_t>(r)];
    for (int s = 0; s < ns_; ++s) {
      grid::TileView xv = xf.view(r, s);
      grid::TileView yv = y.field().view(r, s);
      grid::TileView vcc = self->cc_.view(r, s);
      grid::TileView vcw = self->cw_.view(r, s);
      grid::TileView vce = self->ce_.view(r, s);
      grid::TileView vcs = self->cs_.view(r, s);
      grid::TileView vcn = self->cn_.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        const double* csp_row = nullptr;
        const double* xo_row = nullptr;
        if (csp_) {
          csp_row = self->csp_->view(r, s).row(lj);
          xo_row = xf.view(r, 1 - s).row(lj);
        }
        const double* wrow =
            wv != nullptr ? wv->field().view(r, s).row(lj) : xv.row(lj);
        stencil_row_fused(rctx.vctx, std::span<const double>(vcc.row(lj), n),
                          std::span<const double>(vcw.row(lj), n),
                          std::span<const double>(vce.row(lj), n),
                          std::span<const double>(vcs.row(lj), n),
                          std::span<const double>(vcn.row(lj), n), xv.row(lj),
                          xv.row(lj - 1), xv.row(lj + 1), csp_row, xo_row,
                          /*bsub=*/nullptr, wrow, &acc,
                          std::span<double>(yv.row(lj), n));
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * ns_;
    if (eval_doubles_read_ > 0 || eval_flops_ > 0) {
      rctx.vctx.record_external(sim::OpClass::LoadContig,
                                elements * eval_doubles_read_,
                                elements * eval_doubles_read_ * sizeof(double),
                                0);
      rctx.vctx.record_external(sim::OpClass::FlopFma,
                                elements * eval_flops_ / 2, 0, 0);
    }
    // Working set: the matvec's arrays plus w when it is a distinct
    // vector; the dot itself streams nothing extra.
    const int arrays = 7 + (csp_ ? 1 : 0) + (wv != nullptr ? 1 : 0);
    rctx.commit(r, compiler::KernelFamily::Matvec, "matvec-dot", elements,
                y.working_set(r, arrays));
  });
  // The folded dot still pays its single global reduction.
  ctx.allreduce(sizeof(double));
  DdAccumulator total;
  for (int r = 0; r < nranks; ++r)
    total.add(partial[static_cast<std::size_t>(r)]);
  return total.value();
}

void StencilOperator::apply_residual(ExecContext& ctx, DistVector& x,
                                     const DistVector& b, DistVector& r) const {
  apply_residual_as(ctx, x, b, r, KernelFamily::Matvec, "matvec-residual");
}

void StencilOperator::apply_residual_as(ExecContext& ctx, DistVector& x,
                                        const DistVector& b, DistVector& r,
                                        KernelFamily family,
                                        const std::string& region) const {
  V2D_REQUIRE(x.ns() == ns_ && b.ns() == ns_ && r.ns() == ns_,
              "species count mismatch");
  grid::DistField& xf = x.field();
  task_graph::Session* ses = task_graph::current();
  const bool overlap = ses != nullptr && !task_graph::in_task();
  if (overlap) {
    ctx.exchange(xf.ghost_transfer_plan());
  } else {
    const auto transfers = xf.exchange_ghosts();
    xf.apply_bc(grid::BcKind::Dirichlet0);
    ctx.exchange(transfers);
  }
  if (ctx.dag != nullptr) {
    const auto gn = static_cast<std::uint64_t>(x.global_size());
    ctx.dag->op("matvec", gn, {&x, this}, {&r});
    ctx.dag->op("sub", gn, {&b, &r}, {&r});
  }

  auto* self = const_cast<StencilOperator*>(this);
  grid::DistField* xfp = &xf;
  grid::DistField* bfp = &const_cast<DistVector&>(b).field();
  DistVector* rp = &r;
  auto rows = [self, xfp, bfp, rp](ExecContext& rctx, int rank, int lo,
                                   int hi) {
    const grid::TileExtent& e = self->dec_->extent(rank);
    const auto n = static_cast<std::size_t>(e.ni);
    for (int s = 0; s < self->ns_; ++s) {
      grid::TileView xv = xfp->view(rank, s);
      grid::TileView bv = bfp->view(rank, s);
      grid::TileView rv = rp->field().view(rank, s);
      grid::TileView vcc = self->cc_.view(rank, s);
      grid::TileView vcw = self->cw_.view(rank, s);
      grid::TileView vce = self->ce_.view(rank, s);
      grid::TileView vcs = self->cs_.view(rank, s);
      grid::TileView vcn = self->cn_.view(rank, s);
      for (int lj = lo; lj < hi; ++lj) {
        const double* csp_row = nullptr;
        const double* xo_row = nullptr;
        if (self->csp_) {
          csp_row = self->csp_->view(rank, s).row(lj);
          xo_row = xfp->view(rank, 1 - s).row(lj);
        }
        stencil_row_fused(rctx.vctx, std::span<const double>(vcc.row(lj), n),
                          std::span<const double>(vcw.row(lj), n),
                          std::span<const double>(vce.row(lj), n),
                          std::span<const double>(vcs.row(lj), n),
                          std::span<const double>(vcn.row(lj), n), xv.row(lj),
                          xv.row(lj - 1), xv.row(lj + 1), csp_row, xo_row,
                          /*bsub=*/bv.row(lj), /*wdot=*/nullptr,
                          /*dot=*/nullptr, std::span<double>(rv.row(lj), n));
      }
    }
  };
  auto finish = [self, rp, family, region](ExecContext& rctx, int rank) {
    const grid::TileExtent& e = self->dec_->extent(rank);
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * self->ns_;
    if (self->eval_doubles_read_ > 0 || self->eval_flops_ > 0) {
      rctx.vctx.record_external(
          sim::OpClass::LoadContig, elements * self->eval_doubles_read_,
          elements * self->eval_doubles_read_ * sizeof(double), 0);
      rctx.vctx.record_external(sim::OpClass::FlopFma,
                                elements * self->eval_flops_ / 2, 0, 0);
    }
    // Working set: x (with ghosts), b, r, five coefficient arrays
    // (+coupling) — one array more than the plain product, two passes
    // fewer than the unfused apply + assign_sub.
    const int arrays = 8 + (self->csp_ ? 1 : 0);
    rctx.commit(rank, family, region, elements,
                rp->working_set(rank, arrays));
  };

  if (overlap) {
    build_overlap_graph(ctx, *ses, *dec_, xf, rows, finish);
    return;
  }
  par_ranks(ctx, *dec_, [&](int rank, ExecContext& rctx) {
    rows(rctx, rank, 0, dec_->extent(rank).nj);
    finish(rctx, rank);
  });
}

BandedMatrix StencilOperator::assemble() const {
  const std::int64_t nx1 = grid_->nx1();
  const std::int64_t plane = nx1 * grid_->nx2();
  std::vector<std::int64_t> offsets = {0, -1, 1, -nx1, nx1};
  if (csp_) {
    offsets.push_back(-plane);
    offsets.push_back(plane);
  }
  BandedMatrix A(size(), std::move(offsets));

  auto* self = const_cast<StencilOperator*>(this);
  for (int r = 0; r < dec_->nranks(); ++r) {
    const grid::TileExtent& e = dec_->extent(r);
    for (int s = 0; s < ns_; ++s) {
      grid::TileView vcc = self->cc_.view(r, s);
      grid::TileView vcw = self->cw_.view(r, s);
      grid::TileView vce = self->ce_.view(r, s);
      grid::TileView vcs = self->cs_.view(r, s);
      grid::TileView vcn = self->cn_.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const int gi = e.i0 + li, gj = e.j0 + lj;
          const std::int64_t row = grid_->linear_index(s, gi, gj);
          A.at(row, 0) = vcc(li, lj);
          if (gi > 0) A.at(row, -1) = vcw(li, lj);
          if (gi + 1 < nx1) A.at(row, 1) = vce(li, lj);
          if (gj > 0) A.at(row, -nx1) = vcs(li, lj);
          if (gj + 1 < grid_->nx2()) A.at(row, nx1) = vcn(li, lj);
          if (csp_) {
            grid::TileView vsp = self->csp_->view(r, s);
            A.at(row, s == 0 ? plane : -plane) = vsp(li, lj);
          }
        }
      }
    }
  }
  return A;
}

}  // namespace v2d::linalg
