#pragma once
/// \file stencil_op.hpp
/// \brief Matrix-free five-point (plus optional species-coupling) operator.
///
/// The operator arising from the second-order finite-difference
/// discretization of the multigroup diffusion equation:
///
///   (A x)(s,i,j) = cc·x(s,i,j) + cw·x(s,i−1,j) + ce·x(s,i+1,j)
///                + cs·x(s,i,j−1) + cn·x(s,i,j+1)  [+ csp·x(ŝ,i,j)]
///
/// Coefficients are zone- and species-dependent DistFields.  Physical
/// boundary conditions are *folded into the coefficients* by the problem
/// builder (the boundary-facing coefficient is zeroed / merged into cc),
/// so apply() always uses zero ghosts at the domain edge — this keeps the
/// matrix-free product bit-identical to the assembled BandedMatrix.
///
/// With dictionary ordering (i fastest, then j, then species) the
/// assembled matrix has bands {0, ±1, ±nx1} per species and ±nx1·nx2 for
/// the coupling — exactly the Fig. 1 pattern.

#include <cstdint>
#include <memory>

#include "grid/dist_field.hpp"
#include "linalg/banded.hpp"
#include "linalg/operator.hpp"

namespace v2d::linalg {

/// V2D never stores its matrix: every operator application re-evaluates
/// the finite-difference coefficients from the material state, opacity
/// tables and limiter fields.  These constants describe that per-element
/// evaluation cost (dominated by table/state reads, hence memory-heavy):
/// the FLD builder attaches them to the diffusion operator, and the
/// Table II kernel driver uses the same values ("the actual V2D
/// routines").  The SPAI operator stores its coefficients and carries no
/// overhead.
inline constexpr std::uint64_t kMatvecEvalDoublesRead = 35;
inline constexpr std::uint64_t kMatvecEvalFlops = 30;

class StencilOperator final : public LinearOperator {
public:
  StencilOperator(const grid::Grid2D& g, const grid::Decomposition& d, int ns);

  int ns() const { return ns_; }
  const grid::Grid2D& grid() const { return *grid_; }
  const grid::Decomposition& decomp() const { return *dec_; }

  grid::DistField& cc() { return cc_; }
  grid::DistField& cw() { return cw_; }
  grid::DistField& ce() { return ce_; }
  grid::DistField& cs() { return cs_; }
  grid::DistField& cn() { return cn_; }
  const grid::DistField& cc() const { return cc_; }
  const grid::DistField& cw() const { return cw_; }
  const grid::DistField& ce() const { return ce_; }
  const grid::DistField& cs() const { return cs_; }
  const grid::DistField& cn() const { return cn_; }

  /// Enable the species-coupling band (requires ns == 2: species s couples
  /// to 1−s with coefficient csp).
  void enable_coupling();
  bool coupled() const { return static_cast<bool>(csp_); }
  grid::DistField& csp();
  const grid::DistField& csp() const;

  /// Zero the boundary-facing coefficients after assembly-time folding —
  /// call after the problem builder fills the coefficients.  (Provided as
  /// a checked helper; builders may also do it themselves.)
  void zero_boundary_coefficients();

  /// Declare that each application re-evaluates coefficients on the fly
  /// at `doubles_read` state/table reads and `flops` arithmetic per
  /// element (see kMatvecEval* above).  Affects pricing only; the stored
  /// coefficients remain the source of truth for the numerics (they are
  /// constant within a solve).
  void set_evaluation_overhead(std::uint64_t doubles_read,
                               std::uint64_t flops) {
    eval_doubles_read_ = doubles_read;
    eval_flops_ = flops;
  }
  std::uint64_t evaluation_doubles_read() const { return eval_doubles_read_; }

  void apply(ExecContext& ctx, DistVector& x, DistVector& y) const override;

  /// Same product but attributed to a different kernel family/region —
  /// the SPAI preconditioner application reuses the stencil sweep.
  void apply_as(ExecContext& ctx, DistVector& x, DistVector& y,
                compiler::KernelFamily family, const std::string& region) const;

  /// Fused MATVEC+DPROD: y ← A·x and w·y (w null ⇒ x·y) in one sweep —
  /// the dot rides the stencil rows as one extra FMA (plus a load when w
  /// is a distinct vector), so neither w nor y is re-streamed.  Priced as
  /// one kernel call per rank plus one allreduce, same reduction count as
  /// apply() + dot.  Bit-identical to the unfused pair: the global value
  /// is the same rank-ordered compensated sum dot_ganged computes.
  double apply_dot(ExecContext& ctx, DistVector& x, DistVector& y,
                   const DistVector* w = nullptr) const override;

  /// Fused residual r ← b − A·x in one sweep (the b load and subtraction
  /// replace the separate A·x write-back + SUB pass).
  void apply_residual(ExecContext& ctx, DistVector& x, const DistVector& b,
                      DistVector& r) const override;

  /// Fused residual with explicit attribution (the multigrid smoother and
  /// V-cycle price their residuals under KernelFamily::Precond).
  void apply_residual_as(ExecContext& ctx, DistVector& x, const DistVector& b,
                         DistVector& r, compiler::KernelFamily family,
                         const std::string& region) const;

  std::int64_t size() const override {
    return grid_->zones() * static_cast<std::int64_t>(ns_);
  }

  /// Assemble the global banded matrix (validation and Fig. 1).
  BandedMatrix assemble() const;

private:
  const grid::Grid2D* grid_;
  const grid::Decomposition* dec_;
  int ns_;
  grid::DistField cc_, cw_, ce_, cs_, cn_;
  std::unique_ptr<grid::DistField> csp_;
  std::uint64_t eval_doubles_read_ = 0;
  std::uint64_t eval_flops_ = 0;
};

}  // namespace v2d::linalg
