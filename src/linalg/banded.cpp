#include "linalg/banded.hpp"

#include <algorithm>
#include <ostream>

namespace v2d::linalg {

BandedMatrix::BandedMatrix(std::int64_t n, std::vector<std::int64_t> offsets)
    : n_(n), offsets_(std::move(offsets)) {
  V2D_REQUIRE(n >= 1, "matrix must be non-empty");
  std::sort(offsets_.begin(), offsets_.end());
  V2D_REQUIRE(std::adjacent_find(offsets_.begin(), offsets_.end()) ==
                  offsets_.end(),
              "duplicate band offsets");
  bands_.assign(offsets_.size(),
                std::vector<double>(static_cast<std::size_t>(n), 0.0));
}

std::size_t BandedMatrix::band_index(std::int64_t offset) const {
  auto it = std::lower_bound(offsets_.begin(), offsets_.end(), offset);
  V2D_REQUIRE(it != offsets_.end() && *it == offset,
              "offset is not a band of this matrix");
  return static_cast<std::size_t>(it - offsets_.begin());
}

double& BandedMatrix::at(std::int64_t row, std::int64_t offset) {
  V2D_REQUIRE(row >= 0 && row < n_, "row out of range");
  const std::int64_t col = row + offset;
  V2D_REQUIRE(col >= 0 && col < n_, "column out of range");
  return bands_[band_index(offset)][static_cast<std::size_t>(row)];
}

double BandedMatrix::get(std::int64_t row, std::int64_t offset) const {
  V2D_REQUIRE(row >= 0 && row < n_, "row out of range");
  const std::int64_t col = row + offset;
  if (col < 0 || col >= n_) return 0.0;
  return bands_[band_index(offset)][static_cast<std::size_t>(row)];
}

void BandedMatrix::multiply(std::span<const double> x,
                            std::span<double> y) const {
  V2D_REQUIRE(static_cast<std::int64_t>(x.size()) == n_ &&
                  static_cast<std::int64_t>(y.size()) == n_,
              "vector length mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t k = 0; k < offsets_.size(); ++k) {
    const std::int64_t off = offsets_[k];
    const std::int64_t lo = std::max<std::int64_t>(0, -off);
    const std::int64_t hi = std::min<std::int64_t>(n_, n_ - off);
    const auto& band = bands_[k];
    for (std::int64_t row = lo; row < hi; ++row) {
      y[static_cast<std::size_t>(row)] +=
          band[static_cast<std::size_t>(row)] *
          x[static_cast<std::size_t>(row + off)];
    }
  }
}

std::int64_t BandedMatrix::nnz() const {
  std::int64_t count = 0;
  for (std::size_t k = 0; k < offsets_.size(); ++k) {
    const std::int64_t off = offsets_[k];
    const std::int64_t lo = std::max<std::int64_t>(0, -off);
    const std::int64_t hi = std::min<std::int64_t>(n_, n_ - off);
    for (std::int64_t row = lo; row < hi; ++row) {
      if (bands_[k][static_cast<std::size_t>(row)] != 0.0) ++count;
    }
  }
  return count;
}

std::string BandedMatrix::render_block(std::int64_t rows,
                                       std::int64_t cols) const {
  rows = std::min(rows, n_);
  cols = std::min(cols, n_);
  std::string out;
  out.reserve(static_cast<std::size_t>(rows * (cols + 1)));
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      bool nz = false;
      for (std::size_t k = 0; k < offsets_.size() && !nz; ++k) {
        if (offsets_[k] == c - r)
          nz = bands_[k][static_cast<std::size_t>(r)] != 0.0;
      }
      out.push_back(nz ? '*' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

void BandedMatrix::write_pbm(std::ostream& os, std::int64_t rows,
                             std::int64_t cols) const {
  rows = std::min(rows, n_);
  cols = std::min(cols, n_);
  os << "P1\n" << cols << ' ' << rows << '\n';
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      bool nz = false;
      for (std::size_t k = 0; k < offsets_.size() && !nz; ++k) {
        if (offsets_[k] == c - r)
          nz = bands_[k][static_cast<std::size_t>(r)] != 0.0;
      }
      os << (nz ? '1' : '0') << (c + 1 < cols ? ' ' : '\n');
    }
  }
}

// --- BandedLU -------------------------------------------------------------------

double& BandedLU::lu(std::int64_t row, std::int64_t col) {
  return data_[static_cast<std::size_t>(row * (kl_ + ku_ + 1) +
                                        (col - row + kl_))];
}

double BandedLU::lu(std::int64_t row, std::int64_t col) const {
  return const_cast<BandedLU*>(this)->lu(row, col);
}

BandedLU::BandedLU(const BandedMatrix& A) : n_(A.size()), kl_(0), ku_(0) {
  for (const auto off : A.offsets()) {
    if (off < 0) kl_ = std::max(kl_, -off);
    if (off > 0) ku_ = std::max(ku_, off);
  }
  data_.assign(static_cast<std::size_t>(n_ * (kl_ + ku_ + 1)), 0.0);
  for (std::int64_t row = 0; row < n_; ++row) {
    for (const auto off : A.offsets()) {
      const std::int64_t col = row + off;
      if (col >= 0 && col < n_) lu(row, col) = A.get(row, off);
    }
  }
  // Doolittle elimination inside the band envelope.
  for (std::int64_t k = 0; k < n_; ++k) {
    const double pivot = lu(k, k);
    V2D_REQUIRE(pivot != 0.0, "banded LU: zero pivot (matrix not factorable "
                              "without pivoting)");
    const std::int64_t imax = std::min(n_ - 1, k + kl_);
    const std::int64_t jmax = std::min(n_ - 1, k + ku_);
    for (std::int64_t i = k + 1; i <= imax; ++i) {
      const double l = lu(i, k) / pivot;
      lu(i, k) = l;
      for (std::int64_t j = k + 1; j <= jmax; ++j) lu(i, j) -= l * lu(k, j);
      factor_flops_ += 1 + 2 * static_cast<std::uint64_t>(jmax - k);
    }
  }
}

void BandedLU::solve(std::span<double> rhs) const {
  V2D_REQUIRE(static_cast<std::int64_t>(rhs.size()) == n_,
              "rhs length mismatch");
  // Forward: L·z = rhs (unit lower triangle).
  for (std::int64_t i = 0; i < n_; ++i) {
    double v = rhs[static_cast<std::size_t>(i)];
    const std::int64_t jmin = std::max<std::int64_t>(0, i - kl_);
    for (std::int64_t j = jmin; j < i; ++j)
      v -= lu(i, j) * rhs[static_cast<std::size_t>(j)];
    rhs[static_cast<std::size_t>(i)] = v;
  }
  // Backward: U·x = z.
  for (std::int64_t i = n_ - 1; i >= 0; --i) {
    double v = rhs[static_cast<std::size_t>(i)];
    const std::int64_t jmax = std::min(n_ - 1, i + ku_);
    for (std::int64_t j = i + 1; j <= jmax; ++j)
      v -= lu(i, j) * rhs[static_cast<std::size_t>(j)];
    rhs[static_cast<std::size_t>(i)] = v / lu(i, i);
  }
}

}  // namespace v2d::linalg
