#include "linalg/precond.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "linalg/fusion/fused_exec.hpp"
#include "linalg/kernels.hpp"
#include "linalg/mg/mg_precond.hpp"
#include "support/dd.hpp"
#include "support/error.hpp"

namespace v2d::linalg {

using compiler::KernelFamily;

namespace {

/// Shared fused apply+2-dot sweep for the diagonal preconditioners:
/// y ← m ⊙ x with {x·y, x·x} folded in — and, when `update_q` is given,
/// the residual DAXPY x ← x + update_a·q leading the sweep (the CG tail
/// composite).  Per-rank compensated partials merged in rank order
/// (identical accumulation to dot_ganged), one ganged allreduce for the
/// pair.
void diagonal_apply_dot2(ExecContext& ctx, grid::DistField& m, DistVector& x,
                         DistVector& y, double out[2], double update_a,
                         const DistVector* update_q) {
  const auto& dec = x.field().decomp();
  const int nranks = dec.nranks();
  auto* qv_vec = const_cast<DistVector*>(update_q);
  if (ctx.dag != nullptr) {
    const auto gn = static_cast<std::uint64_t>(x.global_size());
    if (update_q != nullptr)
      ctx.dag->op("daxpy", gn, {update_q, &x}, {&x});
    ctx.dag->op("hadamard", gn, {&m, &x}, {&y});
    ctx.dag->op("dot", gn, {&y, &x}, {});
    ctx.dag->op("dot", gn, {&x, &x}, {});
  }
  std::vector<std::array<DdAccumulator, 2>> partial(
      static_cast<std::size_t>(nranks));
  par_ranks(ctx, dec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec.extent(r);
    const auto n = static_cast<std::size_t>(e.ni);
    auto& acc = partial[static_cast<std::size_t>(r)];
    for (int s = 0; s < x.ns(); ++s) {
      grid::TileView xv = x.field().view(r, s);
      grid::TileView yv = y.field().view(r, s);
      grid::TileView mv = m.view(r, s);
      grid::TileView qv =
          qv_vec != nullptr ? qv_vec->field().view(r, s) : mv;
      for (int lj = 0; lj < e.nj; ++lj) {
        if (qv_vec != nullptr) {
          if (rctx.planned()) {
            fusion::hadamard_update_dot2(
                rctx.vctx, std::span<const double>(mv.row(lj), n), update_a,
                std::span<const double>(qv.row(lj), n),
                std::span<double>(xv.row(lj), n),
                std::span<double>(yv.row(lj), n), acc[0], acc[1]);
          } else {
            hadamard_update_dot2(
                rctx.vctx, std::span<const double>(mv.row(lj), n), update_a,
                std::span<const double>(qv.row(lj), n),
                std::span<double>(xv.row(lj), n),
                std::span<double>(yv.row(lj), n), acc[0], acc[1]);
          }
        } else {
          if (rctx.planned()) {
            fusion::hadamard_dot2(rctx.vctx,
                                  std::span<const double>(mv.row(lj), n),
                                  std::span<const double>(xv.row(lj), n),
                                  std::span<double>(yv.row(lj), n), acc[0],
                                  acc[1]);
          } else {
            hadamard_dot2(rctx.vctx, std::span<const double>(mv.row(lj), n),
                          std::span<const double>(xv.row(lj), n),
                          std::span<double>(yv.row(lj), n), acc[0], acc[1]);
          }
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * x.ns();
    rctx.commit(r, KernelFamily::Precond, "precond-dot", elements,
                x.working_set(r, qv_vec != nullptr ? 4 : 3));
  });
  // One ganged allreduce for the {x·y, x·x} pair, as in dot_ganged.
  ctx.allreduce(2 * sizeof(double));
  DdAccumulator xy, xx;
  for (int r = 0; r < nranks; ++r) {
    xy.add(partial[static_cast<std::size_t>(r)][0]);
    xx.add(partial[static_cast<std::size_t>(r)][1]);
  }
  out[0] = xy.value();
  out[1] = xx.value();
}

}  // namespace

// --- identity -----------------------------------------------------------------

void IdentityPrecond::apply(ExecContext& ctx, DistVector& x, DistVector& y) {
  y.copy_from(ctx, x);
}

// --- Jacobi --------------------------------------------------------------------

JacobiPrecond::JacobiPrecond(ExecContext& ctx, const StencilOperator& A)
    : dinv_(A.grid(), A.decomp(), A.ns(), 1) {
  auto& cc = const_cast<StencilOperator&>(A).cc();
  par_ranks(ctx, A.decomp(), [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = A.decomp().extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      grid::TileView c = cc.view(r, s);
      grid::TileView d = dinv_.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        const vla::VReg ones = rctx.vctx.dup(1.0);
        vla::strip_mine(rctx.vctx, static_cast<std::uint64_t>(e.ni),
                        [&](std::uint64_t i, const vla::Predicate& p) {
                          const vla::VReg vc = rctx.vctx.ld1(p, c.row(lj) + i);
                          rctx.vctx.st1(p, d.row(lj) + i,
                                        rctx.vctx.div(p, ones, vc));
                        });
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * A.ns();
    rctx.commit(r, KernelFamily::PrecondBuild, "precond-build", elements,
                2 * elements * sizeof(double));
  });
}

void JacobiPrecond::apply(ExecContext& ctx, DistVector& x, DistVector& y) {
  const auto& dec = x.field().decomp();
  if (ctx.dag != nullptr)
    ctx.dag->op("hadamard", static_cast<std::uint64_t>(x.global_size()),
                {&dinv_, &x}, {&y});
  par_ranks(ctx, dec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec.extent(r);
    const auto n = static_cast<std::size_t>(e.ni);
    for (int s = 0; s < x.ns(); ++s) {
      grid::TileView xv = x.field().view(r, s);
      grid::TileView yv = y.field().view(r, s);
      grid::TileView dv = dinv_.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        hadamard(rctx.vctx, std::span<const double>(dv.row(lj), n),
                 std::span<const double>(xv.row(lj), n),
                 std::span<double>(yv.row(lj), n));
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * x.ns();
    rctx.commit(r, KernelFamily::Precond, "precond", elements,
                x.working_set(r, 3));
  });
}

bool JacobiPrecond::apply_dot2(ExecContext& ctx, DistVector& x, DistVector& y,
                               double out[2], double update_a,
                               const DistVector* update_q) {
  diagonal_apply_dot2(ctx, dinv_, x, y, out, update_a, update_q);
  return true;
}

// --- SPAI(0) --------------------------------------------------------------------

Spai0Precond::Spai0Precond(ExecContext& ctx, const StencilOperator& A)
    : m_(A.grid(), A.decomp(), A.ns(), 1) {
  auto& mutableA = const_cast<StencilOperator&>(A);
  // Column k of A needs the neighbours' coefficients pointing back at k.
  std::vector<mpisim::Transfer> transfers;
  for (grid::DistField* f : {&mutableA.cc(), &mutableA.cw(), &mutableA.ce(),
                             &mutableA.cs(), &mutableA.cn()}) {
    auto t = f->exchange_ghosts();
    f->apply_bc(grid::BcKind::Dirichlet0);
    transfers.insert(transfers.end(), t.begin(), t.end());
  }
  ctx.exchange(transfers, "mpi_halo");

  const auto& dec = A.decomp();
  par_ranks(ctx, dec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      grid::TileView cc = mutableA.cc().view(r, s);
      grid::TileView cw = mutableA.cw().view(r, s);
      grid::TileView ce = mutableA.ce().view(r, s);
      grid::TileView cs = mutableA.cs().view(r, s);
      grid::TileView cn = mutableA.cn().view(r, s);
      grid::TileView mv = m_.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          // Column k entries: diagonal plus each neighbour's coefficient
          // toward k (ghost coefficients at the domain edge are zero).
          const double d = cc(li, lj);
          const double col[5] = {d, ce(li - 1, lj), cw(li + 1, lj),
                                 cn(li, lj - 1), cs(li, lj + 1)};
          double norm2 = 0.0;
          for (double v : col) norm2 += v * v;
          mv(li, lj) = norm2 > 0.0 ? d / norm2 : 1.0;
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * A.ns();
    // ~12 flops/zone, 5 coefficient reads, 1 write.
    rctx.commit_synthetic(r, KernelFamily::PrecondBuild, "precond-build",
                          elements, 12, 40, 8, elements * 48);
  });
}

void Spai0Precond::apply(ExecContext& ctx, DistVector& x, DistVector& y) {
  const auto& dec = x.field().decomp();
  if (ctx.dag != nullptr)
    ctx.dag->op("hadamard", static_cast<std::uint64_t>(x.global_size()),
                {&m_, &x}, {&y});
  par_ranks(ctx, dec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec.extent(r);
    const auto n = static_cast<std::size_t>(e.ni);
    for (int s = 0; s < x.ns(); ++s) {
      grid::TileView xv = x.field().view(r, s);
      grid::TileView yv = y.field().view(r, s);
      grid::TileView mv = m_.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        hadamard(rctx.vctx, std::span<const double>(mv.row(lj), n),
                 std::span<const double>(xv.row(lj), n),
                 std::span<double>(yv.row(lj), n));
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * x.ns();
    rctx.commit(r, KernelFamily::Precond, "precond", elements,
                x.working_set(r, 3));
  });
}

bool Spai0Precond::apply_dot2(ExecContext& ctx, DistVector& x, DistVector& y,
                              double out[2], double update_a,
                              const DistVector* update_q) {
  diagonal_apply_dot2(ctx, m_, x, y, out, update_a, update_q);
  return true;
}

// --- SPAI(1) --------------------------------------------------------------------

namespace {

/// Solve the n×n SPD system G·m = rhs in place by Cholesky; returns false
/// if G is not positive definite.
bool cholesky_solve(std::array<std::array<double, 5>, 5>& G,
                    std::array<double, 5>& rhs, int n) {
  // Factor G = L·Lᵀ.
  for (int k = 0; k < n; ++k) {
    double d = G[k][k];
    for (int p = 0; p < k; ++p) d -= G[k][p] * G[k][p];
    if (!(d > 0.0)) return false;
    const double l = std::sqrt(d);
    G[k][k] = l;
    for (int i = k + 1; i < n; ++i) {
      double v = G[i][k];
      for (int p = 0; p < k; ++p) v -= G[i][p] * G[k][p];
      G[i][k] = v / l;
    }
  }
  // Forward solve L·z = rhs.
  for (int i = 0; i < n; ++i) {
    double v = rhs[i];
    for (int p = 0; p < i; ++p) v -= G[i][p] * rhs[p];
    rhs[i] = v / G[i][i];
  }
  // Back solve Lᵀ·m = z.
  for (int i = n - 1; i >= 0; --i) {
    double v = rhs[i];
    for (int p = i + 1; p < n; ++p) v -= G[p][i] * rhs[p];
    rhs[i] = v / G[i][i];
  }
  return true;
}

}  // namespace

SpaiPrecond::SpaiPrecond(ExecContext& ctx, const StencilOperator& A)
    : m_(A.grid(), A.decomp(), A.ns()) {
  auto& mutableA = const_cast<StencilOperator&>(A);
  // Neighbour coefficients are needed across tile interfaces.
  std::vector<mpisim::Transfer> transfers;
  for (grid::DistField* f : {&mutableA.cc(), &mutableA.cw(), &mutableA.ce(),
                             &mutableA.cs(), &mutableA.cn()}) {
    auto t = f->exchange_ghosts();
    f->apply_bc(grid::BcKind::Dirichlet0);
    transfers.insert(transfers.end(), t.begin(), t.end());
  }
  ctx.exchange(transfers, "mpi_halo");

  const grid::Grid2D& g = A.grid();
  const auto& dec = A.decomp();
  // Pattern slots: 0 = C, 1 = W, 2 = E, 3 = S, 4 = N.
  const int di[5] = {0, -1, 1, 0, 0};
  const int dj[5] = {0, 0, 0, -1, 1};

  // Deliberately serial: the column scatter below writes M entries into
  // *neighbour* tiles via gset (a zone adjacent to a tile boundary owns
  // column entries that live in the next rank's rows), so rank tasks are
  // not disjoint and par_ranks would race.  The build runs once per solve;
  // the hot path is apply(), which is a rank-parallel stencil sweep.
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      grid::TileView cc = mutableA.cc().view(r, s);
      grid::TileView cw = mutableA.cw().view(r, s);
      grid::TileView ce = mutableA.ce().view(r, s);
      grid::TileView cs = mutableA.cs().view(r, s);
      grid::TileView cn = mutableA.cn().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const int gi = e.i0 + li, gj = e.j0 + lj;
          // Active pattern slots (drop neighbours outside the domain).
          int slots[5];
          int np = 0;
          for (int q = 0; q < 5; ++q) {
            const int qi = gi + di[q], qj = gj + dj[q];
            if (qi >= 0 && qi < g.nx1() && qj >= 0 && qj < g.nx2())
              slots[np++] = q;
          }
          // B[p][q] = A(zone_p, zone_q) over the active pattern.  Both
          // indices are pattern slots; zone_p's coefficient toward zone_q
          // depends on their relative offset.
          auto coeff = [&](int p, int q) -> double {
            const int pi = li + di[p], pj = lj + dj[p];
            const int ddi = di[q] - di[p], ddj = dj[q] - dj[p];
            if (ddi == 0 && ddj == 0) return cc(pi, pj);
            if (ddi == -1 && ddj == 0) return cw(pi, pj);
            if (ddi == 1 && ddj == 0) return ce(pi, pj);
            if (ddi == 0 && ddj == -1) return cs(pi, pj);
            if (ddi == 0 && ddj == 1) return cn(pi, pj);
            return 0.0;  // not adjacent
          };
          std::array<std::array<double, 5>, 5> B{};
          for (int p = 0; p < np; ++p)
            for (int q = 0; q < np; ++q) B[p][q] = coeff(slots[p], slots[q]);
          // Normal equations G = BᵀB, rhs = Bᵀ·e_C (center is slot 0 and,
          // because slot 0 always lies inside the domain, pattern index 0).
          std::array<std::array<double, 5>, 5> G{};
          std::array<double, 5> rhs{};
          for (int p = 0; p < np; ++p) {
            for (int q = 0; q < np; ++q) {
              double acc = 0.0;
              for (int t = 0; t < np; ++t) acc += B[t][p] * B[t][q];
              G[p][q] = acc;
            }
            rhs[p] = B[0][p];  // e_C picks row 0 of B
          }
          std::array<double, 5> m = rhs;
          if (!cholesky_solve(G, m, np)) {
            // Degenerate local block: fall back to Jacobi for this column.
            m.fill(0.0);
            const double d = cc(li, lj);
            m[0] = d != 0.0 ? 1.0 / d : 1.0;
          }
          // Scatter column entries M[zone_p, zone_k] into row-major
          // stencil storage of M: entry at row zone_p pointing toward the
          // center zone_k sits in the band opposite to slot p.
          for (int p = 0; p < np; ++p) {
            const int q = slots[p];
            const int pgi = gi + di[q], pgj = gj + dj[q];
            switch (q) {
              case 0: m_.cc().gset(s, pgi, pgj, m[p]); break;
              case 1: m_.ce().gset(s, pgi, pgj, m[p]); break;  // row W → E
              case 2: m_.cw().gset(s, pgi, pgj, m[p]); break;  // row E → W
              case 3: m_.cn().gset(s, pgi, pgj, m[p]); break;  // row S → N
              case 4: m_.cs().gset(s, pgi, pgj, m[p]); break;  // row N → S
            }
          }
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * A.ns();
    // ~350 flops/zone (B, BᵀB, 5×5 Cholesky, two solves), ~15 doubles read,
    // 5 written.
    ctx.commit_synthetic(r, KernelFamily::PrecondBuild, "precond-build",
                         elements, 350, 120, 40, elements * 160);
  }
}

void SpaiPrecond::apply(ExecContext& ctx, DistVector& x, DistVector& y) {
  m_.apply_as(ctx, x, y, KernelFamily::Precond, "precond");
}

bool is_preconditioner_kind(const std::string& kind) {
  return kind == "identity" || kind == "jacobi" || kind == "spai0" ||
         kind == "spai" || kind == "mg";
}

std::unique_ptr<Preconditioner> make_preconditioner(const std::string& kind,
                                                    ExecContext& ctx,
                                                    const StencilOperator& A) {
  return make_preconditioner(kind, ctx, A, mg::MgOptions{});
}

std::unique_ptr<Preconditioner> make_preconditioner(
    const std::string& kind, ExecContext& ctx, const StencilOperator& A,
    const mg::MgOptions& mg_options) {
  if (kind == "identity") return std::make_unique<IdentityPrecond>();
  if (kind == "jacobi") return std::make_unique<JacobiPrecond>(ctx, A);
  if (kind == "spai0") return std::make_unique<Spai0Precond>(ctx, A);
  if (kind == "spai") return std::make_unique<SpaiPrecond>(ctx, A);
  if (kind == "mg") return std::make_unique<mg::MgPrecond>(ctx, A, mg_options);
  throw Error("unknown preconditioner '" + kind +
              "' (expected identity|jacobi|spai0|spai|mg)");
}

}  // namespace v2d::linalg
