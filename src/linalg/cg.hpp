#pragma once
/// \file cg.hpp
/// \brief Preconditioned Conjugate Gradient baseline.
///
/// The paper introduces BiCGSTAB as "an extension of the Conjugate
/// Gradient (CG) method ... to those cases where the system matrix A is
/// non-symmetric".  CG is provided as the symmetric baseline: the
/// diffusion-only test systems are symmetric, so the benches can compare
/// the two solvers on identical systems.

#include "linalg/bicgstab.hpp"
#include "linalg/operator.hpp"
#include "linalg/precond.hpp"

namespace v2d::linalg {

class CgSolver {
public:
  /// Private workspace, allocated lazily on first solve.
  CgSolver(const grid::Grid2D& g, const grid::Decomposition& d, int ns);
  /// Borrow a shared workspace (slots 0..3; compatible with sharing the
  /// same workspace with a BicgstabSolver, which uses slots 0..7).
  explicit CgSolver(SolverWorkspace& ws) : ws_(&ws) {}

  /// Solve A·x = b (A must be symmetric positive definite; M symmetric).
  SolveStats solve(ExecContext& ctx, const LinearOperator& A,
                   Preconditioner& M, DistVector& x, const DistVector& b,
                   const SolveOptions& opt = {});

private:
  std::unique_ptr<SolverWorkspace> owned_;
  SolverWorkspace* ws_;
};

}  // namespace v2d::linalg
