#pragma once
/// \file banded.hpp
/// \brief Explicitly assembled banded matrix.
///
/// V2D never stores its matrix; this class exists for everything the paper
/// does *about* the matrix rather than with it: rendering the Fig. 1
/// sparsity pattern, and cross-validating the matrix-free stencil operator
/// against a ground-truth dense-band multiply in the tests.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace v2d::linalg {

class BandedMatrix {
public:
  /// `offsets` are the band offsets (e.g. {0, ±1, ±nx1, ±nx1·nx2}),
  /// any order, deduplicated by the caller.
  BandedMatrix(std::int64_t n, std::vector<std::int64_t> offsets);

  std::int64_t size() const { return n_; }
  const std::vector<std::int64_t>& offsets() const { return offsets_; }

  /// Entry A(row, row + offset); the offset must be one of the bands and
  /// the column must be in range.
  double& at(std::int64_t row, std::int64_t offset);
  double get(std::int64_t row, std::int64_t offset) const;

  /// Dense banded multiply y ← A·x (ground truth for tests).
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Count of structurally stored, in-range entries that are non-zero.
  std::int64_t nnz() const;

  /// ASCII sparsity rendering of the upper-left `rows`×`cols` block
  /// ('*' = non-zero), one text row per matrix row — Fig. 1 as text.
  std::string render_block(std::int64_t rows, std::int64_t cols) const;

  /// PBM (portable bitmap) rendering of the same block — Fig. 1 as image.
  void write_pbm(std::ostream& os, std::int64_t rows, std::int64_t cols) const;

private:
  std::size_t band_index(std::int64_t offset) const;

  std::int64_t n_;
  std::vector<std::int64_t> offsets_;
  std::vector<std::vector<double>> bands_;  // bands_[k][row]
};

/// Banded LU factorization (no pivoting) with dense-within-bandwidth
/// storage: everything between the outermost sub- and super-diagonal of
/// the source matrix is kept, since elimination fills that envelope in.
/// No pivoting is safe for the diagonally dominant operators this class
/// serves — the multigrid coarse-level solve.  Factor once, solve many.
class BandedLU {
public:
  explicit BandedLU(const BandedMatrix& A);

  std::int64_t size() const { return n_; }
  std::int64_t lower_bandwidth() const { return kl_; }
  std::int64_t upper_bandwidth() const { return ku_; }

  /// In-place solve A·x = rhs (rhs overwritten with x).
  void solve(std::span<double> rhs) const;

  /// Flop counts for cost-model pricing of the factorization / one solve.
  std::uint64_t factor_flops() const { return factor_flops_; }
  std::uint64_t solve_flops() const {
    return 2ull * static_cast<std::uint64_t>(n_) *
           static_cast<std::uint64_t>(kl_ + ku_);
  }

private:
  double& lu(std::int64_t row, std::int64_t col);
  double lu(std::int64_t row, std::int64_t col) const;

  std::int64_t n_;
  std::int64_t kl_, ku_;
  std::uint64_t factor_flops_ = 0;
  std::vector<double> data_;  // row-major, width kl_ + ku_ + 1
};

}  // namespace v2d::linalg
