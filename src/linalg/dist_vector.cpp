#include "linalg/dist_vector.hpp"

#include <cmath>

#include "linalg/fusion/fused_exec.hpp"
#include "linalg/kernels.hpp"
#include "support/dd.hpp"
#include "support/error.hpp"

namespace v2d::linalg {

using compiler::KernelFamily;

namespace {
void require_same_shape(const DistVector& a, const DistVector& b) {
  V2D_REQUIRE(a.ns() == b.ns() && a.nranks() == b.nranks() &&
                  a.global_size() == b.global_size(),
              "distributed vectors have different shapes");
}

/// DAG-capture hook: record one primitive launch of `name` over the whole
/// vector when the driving context is capturing (see linalg/dag_capture.hpp).
void dag_op(ExecContext& ctx, const char* name, const DistVector& shape,
            std::initializer_list<const void*> reads,
            std::initializer_list<const void*> writes) {
  if (ctx.dag != nullptr)
    ctx.dag->op(name, static_cast<std::uint64_t>(shape.global_size()), reads,
                writes);
}
}  // namespace

std::uint64_t DistVector::working_set(int rank, int arrays) const {
  const grid::TileExtent& e = field_.decomp().extent(rank);
  return static_cast<std::uint64_t>(arrays) * field_.ns() *
         static_cast<std::uint64_t>(e.ni) * e.nj * sizeof(double);
}

/// Elementwise rank loops chain under --host-sched graph: the per-rank
/// tasks of consecutive vector ops run back-to-back on one lane without a
/// global barrier (see par_ranks_chain).  Deferred tasks own their state:
/// `op` and `region` are captured by value, and the row lambdas below
/// capture pointers/scalars explicitly — never stack references.
template <typename RowOp>
void DistVector::for_each_row(ExecContext& ctx, KernelFamily family,
                              const std::string& region, int arrays,
                              RowOp&& op) {
  par_ranks_chain(
      ctx, field_,
      [this, family, region, arrays,
       op = std::forward<RowOp>(op)](int r, ExecContext& rctx) {
        const grid::TileExtent& e = field_.decomp().extent(r);
        for (int s = 0; s < ns(); ++s) {
          for (int lj = 0; lj < e.nj; ++lj) {
            op(rctx, r, s, lj, static_cast<std::size_t>(e.ni));
          }
        }
        const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * ns();
        rctx.commit(r, family, region, elements, working_set(r, arrays));
      });
}

void DistVector::daxpy(ExecContext& ctx, double a, const DistVector& x) {
  require_same_shape(*this, x);
  dag_op(ctx, "daxpy", *this, {&x, this}, {this});
  for_each_row(ctx, KernelFamily::Daxpy, "daxpy", 2,
               [this, a, xp = &x](ExecContext& rctx, int r, int s, int lj,
                                  std::size_t n) {
                 grid::TileView xv =
                     const_cast<DistVector*>(xp)->field().view(r, s);
                 grid::TileView yv = field_.view(r, s);
                 linalg::daxpy(rctx.vctx, a,
                               std::span<const double>(xv.row(lj), n),
                               std::span<double>(yv.row(lj), n));
               });
}

void DistVector::dscal(ExecContext& ctx, double c, double d) {
  dag_op(ctx, "dscal", *this, {this}, {this});
  for_each_row(ctx, KernelFamily::Dscal, "dscal", 1,
               [this, c, d](ExecContext& rctx, int r, int s, int lj,
                            std::size_t n) {
                 grid::TileView yv = field_.view(r, s);
                 linalg::dscal(rctx.vctx, c, d,
                               std::span<double>(yv.row(lj), n));
               });
}

void DistVector::ddaxpy(ExecContext& ctx, double a, const DistVector& x,
                        double b, const DistVector& y) {
  require_same_shape(*this, x);
  require_same_shape(*this, y);
  dag_op(ctx, "ddaxpy", *this, {&x, &y, this}, {this});
  for_each_row(ctx, KernelFamily::Ddaxpy, "ddaxpy", 3,
               [this, a, b, xp = &x, yp = &y](ExecContext& rctx, int r, int s,
                                              int lj, std::size_t n) {
                 grid::TileView xv =
                     const_cast<DistVector*>(xp)->field().view(r, s);
                 grid::TileView yv =
                     const_cast<DistVector*>(yp)->field().view(r, s);
                 grid::TileView zv = field_.view(r, s);
                 linalg::ddaxpy(rctx.vctx, a,
                                std::span<const double>(xv.row(lj), n), b,
                                std::span<const double>(yv.row(lj), n),
                                std::span<double>(zv.row(lj), n));
               });
}

void DistVector::xpby(ExecContext& ctx, const DistVector& x, double b) {
  require_same_shape(*this, x);
  dag_op(ctx, "xpby", *this, {&x, this}, {this});
  for_each_row(ctx, KernelFamily::VecMisc, "xpby", 2,
               [this, b, xp = &x](ExecContext& rctx, int r, int s, int lj,
                                  std::size_t n) {
                 grid::TileView xv =
                     const_cast<DistVector*>(xp)->field().view(r, s);
                 grid::TileView yv = field_.view(r, s);
                 linalg::xpby(rctx.vctx,
                              std::span<const double>(xv.row(lj), n), b,
                              std::span<double>(yv.row(lj), n));
               });
}

void DistVector::copy_from(ExecContext& ctx, const DistVector& x) {
  require_same_shape(*this, x);
  dag_op(ctx, "copy", *this, {&x}, {this});
  for_each_row(ctx, KernelFamily::VecMisc, "copy", 2,
               [this, xp = &x](ExecContext& rctx, int r, int s, int lj,
                               std::size_t n) {
                 grid::TileView xv =
                     const_cast<DistVector*>(xp)->field().view(r, s);
                 grid::TileView yv = field_.view(r, s);
                 linalg::copy(rctx.vctx,
                              std::span<const double>(xv.row(lj), n),
                              std::span<double>(yv.row(lj), n));
               });
}

void DistVector::fill(ExecContext& ctx, double a) {
  dag_op(ctx, "fill", *this, {}, {this});
  for_each_row(ctx, KernelFamily::VecMisc, "fill", 1,
               [this, a](ExecContext& rctx, int r, int s, int lj,
                         std::size_t n) {
                 grid::TileView yv = field_.view(r, s);
                 linalg::fill(rctx.vctx, a, std::span<double>(yv.row(lj), n));
               });
}

void DistVector::assign_sub(ExecContext& ctx, const DistVector& x,
                            const DistVector& y) {
  require_same_shape(*this, x);
  require_same_shape(*this, y);
  dag_op(ctx, "sub", *this, {&x, &y}, {this});
  for_each_row(ctx, KernelFamily::VecMisc, "sub", 3,
               [this, xp = &x, yp = &y](ExecContext& rctx, int r, int s,
                                        int lj, std::size_t n) {
                 grid::TileView xv =
                     const_cast<DistVector*>(xp)->field().view(r, s);
                 grid::TileView yv =
                     const_cast<DistVector*>(yp)->field().view(r, s);
                 grid::TileView zv = field_.view(r, s);
                 linalg::sub(rctx.vctx,
                             std::span<const double>(xv.row(lj), n),
                             std::span<const double>(yv.row(lj), n),
                             std::span<double>(zv.row(lj), n));
               });
}

void DistVector::daxpy2(ExecContext& ctx, DistVector& x, double a,
                        const DistVector& p, DistVector& r, double b,
                        const DistVector& q) {
  require_same_shape(x, p);
  require_same_shape(x, r);
  require_same_shape(x, q);
  dag_op(ctx, "daxpy", x, {&p, &x}, {&x});
  dag_op(ctx, "daxpy", x, {&q, &r}, {&r});
  x.for_each_row(ctx, KernelFamily::Daxpy, "daxpy2", 4,
                 [a, b, xp = &x, pp = &p, rp = &r, qp = &q](
                     ExecContext& rctx, int rk, int s, int lj, std::size_t n) {
                   grid::TileView pv =
                       const_cast<DistVector*>(pp)->field().view(rk, s);
                   grid::TileView qv =
                       const_cast<DistVector*>(qp)->field().view(rk, s);
                   grid::TileView xv = xp->field().view(rk, s);
                   grid::TileView rv = rp->field().view(rk, s);
                   linalg::daxpy2(rctx.vctx, a,
                                  std::span<const double>(pv.row(lj), n),
                                  std::span<double>(xv.row(lj), n), b,
                                  std::span<const double>(qv.row(lj), n),
                                  std::span<double>(rv.row(lj), n));
                 });
}

void DistVector::assign_axpy(ExecContext& ctx, const DistVector& x, double a,
                             const DistVector& z) {
  require_same_shape(*this, x);
  require_same_shape(*this, z);
  dag_op(ctx, "copy", *this, {&x}, {this});
  dag_op(ctx, "daxpy", *this, {&z, this}, {this});
  for_each_row(ctx, KernelFamily::VecMisc, "axpy", 3,
               [this, a, xp = &x, zp = &z](ExecContext& rctx, int r, int s,
                                           int lj, std::size_t n) {
                 grid::TileView xv =
                     const_cast<DistVector*>(xp)->field().view(r, s);
                 grid::TileView zv =
                     const_cast<DistVector*>(zp)->field().view(r, s);
                 grid::TileView yv = field_.view(r, s);
                 if (rctx.planned()) {
                   fusion::axpy_out(rctx.vctx,
                                    std::span<const double>(xv.row(lj), n), a,
                                    std::span<const double>(zv.row(lj), n),
                                    std::span<double>(yv.row(lj), n));
                 } else {
                   linalg::axpy_out(rctx.vctx,
                                    std::span<const double>(xv.row(lj), n), a,
                                    std::span<const double>(zv.row(lj), n),
                                    std::span<double>(yv.row(lj), n));
                 }
               });
}

void DistVector::fused_p_update(ExecContext& ctx, const DistVector& x,
                                double b, double w, const DistVector& v) {
  require_same_shape(*this, x);
  require_same_shape(*this, v);
  dag_op(ctx, "daxpy", *this, {&v, this}, {this});
  dag_op(ctx, "xpby", *this, {&x, this}, {this});
  for_each_row(ctx, KernelFamily::VecMisc, "p-update", 3,
               [this, b, w, xp = &x, vp = &v](ExecContext& rctx, int r, int s,
                                              int lj, std::size_t n) {
                 grid::TileView xv =
                     const_cast<DistVector*>(xp)->field().view(r, s);
                 grid::TileView vv =
                     const_cast<DistVector*>(vp)->field().view(r, s);
                 grid::TileView pv = field_.view(r, s);
                 if (rctx.planned()) {
                   fusion::p_update(rctx.vctx,
                                    std::span<const double>(xv.row(lj), n), b,
                                    w, std::span<const double>(vv.row(lj), n),
                                    std::span<double>(pv.row(lj), n));
                 } else {
                   linalg::p_update(rctx.vctx,
                                    std::span<const double>(xv.row(lj), n), b,
                                    w, std::span<const double>(vv.row(lj), n),
                                    std::span<double>(pv.row(lj), n));
                 }
               });
}

double DistVector::dot(ExecContext& ctx, const DistVector& x,
                       const DistVector& y) {
  const DotPair pair{&x, &y};
  return dot_ganged(ctx, std::span<const DotPair>(&pair, 1))[0];
}

std::vector<double> DistVector::dot_ganged(ExecContext& ctx,
                                           std::span<const DotPair> pairs) {
  V2D_REQUIRE(!pairs.empty(), "dot_ganged: no pairs");
  const DistVector& first = *pairs[0].x;
  for (const DotPair& pr : pairs) {
    require_same_shape(*pr.x, *pr.y);
    require_same_shape(*pr.x, first);
  }
  // Compensated accumulation makes the result independent of the tiling
  // (see support/dd.hpp); the VLA recording below still prices the
  // ordinary strip-mined DPROD the hardware would run.  The compensated
  // sum is the result in both exec modes, so on the fast path the
  // interpreted DPROD is skipped entirely and only its analytic recording
  // is kept — execution and recording fully decoupled.  Ranks accumulate
  // into private partials merged in rank order afterwards, so the result
  // is also independent of the host-thread count.
  for (const DotPair& pr : pairs) dag_op(ctx, "dot", first, {pr.x, pr.y}, {});
  const bool fast = ctx.vctx.native();
  const int nranks = first.nranks();
  std::vector<std::vector<DdAccumulator>> partial(
      static_cast<std::size_t>(nranks),
      std::vector<DdAccumulator>(pairs.size()));
  // Per-rank partial body, shared by the barrier and pipelined paths.
  // Every capture outlives the pipelined tasks: wait(combine) below
  // returns only after all partial tasks (the combine's predecessors)
  // have executed, so the caller's frame is still live.
  auto partial_body = [&partial, &first, pairs, fast](int r,
                                                      ExecContext& rctx) {
    const grid::TileExtent& e = first.field().decomp().extent(r);
    auto& acc = partial[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      for (int s = 0; s < first.ns(); ++s) {
        grid::TileView xv =
            const_cast<DistVector*>(pairs[k].x)->field().view(r, s);
        grid::TileView yv =
            const_cast<DistVector*>(pairs[k].y)->field().view(r, s);
        for (int lj = 0; lj < e.nj; ++lj) {
          if (fast) {
            linalg::dprod_record_only(rctx.vctx,
                                      static_cast<std::uint64_t>(e.ni));
          } else {
            (void)linalg::dprod(
                rctx.vctx,
                std::span<const double>(xv.row(lj),
                                        static_cast<std::size_t>(e.ni)),
                std::span<const double>(yv.row(lj),
                                        static_cast<std::size_t>(e.ni)));
          }
          const double* xr = xv.row(lj);
          const double* yr = yv.row(lj);
          for (int li = 0; li < e.ni; ++li) acc[k].add(xr[li] * yr[li]);
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj *
                          first.ns() * pairs.size();
    rctx.commit(r, KernelFamily::Dprod, "dprod", elements,
                first.working_set(r, 2 * static_cast<int>(pairs.size())));
  };
  // Rank-ordered compensated merge — identical arithmetic on both paths.
  std::vector<double> out(pairs.size());
  auto merge = [&partial, &out, pairs, nranks] {
    std::vector<DdAccumulator> totals(pairs.size());
    for (int r = 0; r < nranks; ++r)
      for (std::size_t k = 0; k < pairs.size(); ++k)
        totals[k].add(partial[static_cast<std::size_t>(r)][k]);
    for (std::size_t k = 0; k < pairs.size(); ++k) out[k] = totals[k].value();
  };
  task_graph::Session* ses = task_graph::current();
  if (ses != nullptr && !task_graph::in_task()) {
    // Pipelined reduction: rank r's partial task chains behind rank r's
    // previous stage only — no join-all stalling every lane before the
    // dot.  The single combine task merges the partials in rank order;
    // only this frame (the scalar's true consumer) waits on it, and the
    // chain state survives so the caller's next per-rank stages submit
    // behind the partial tasks.  Waiting on the combine also guarantees
    // every rank's Dprod commit above is priced before the allreduce, so
    // the collective stream matches the barrier path exactly.
    linalg::ExecContext* ctxp = &ctx;
    ses->chain_stage(chain_domain(first), nranks,
                     [ctxp, partial_body](int r) {
                       ExecContext rctx = ctxp->fork();
                       partial_body(r, rctx);
                     });
    ses->wait(ses->chain_combine(chain_domain(first), merge));
    ctx.allreduce_nosync(pairs.size() * sizeof(double));
    return out;
  }
  par_ranks(ctx, first, partial_body);
  // One ganged allreduce for all inner products in the gang.
  ctx.allreduce(pairs.size() * sizeof(double));
  merge();
  return out;
}

double DistVector::norm2(ExecContext& ctx, const DistVector& x) {
  return std::sqrt(dot(ctx, x, x));
}

}  // namespace v2d::linalg
