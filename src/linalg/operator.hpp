#pragma once
/// \file operator.hpp
/// \brief Abstract linear operator applied matrix-free.
///
/// "Because of its prohibitive size, the sparse linear system matrix is
/// never stored and the Krylov subspace methods are implemented in
/// matrix-free form by application of a finite-difference operator to
/// column vectors."  LinearOperator is that abstraction; StencilOperator
/// is the concrete finite-difference form.

#include <cstdint>

#include "linalg/dist_vector.hpp"
#include "linalg/exec_context.hpp"

namespace v2d::linalg {

class LinearOperator {
public:
  virtual ~LinearOperator() = default;

  /// y ← A·x.  `x` is taken mutable because the operator refreshes its
  /// ghost zones (the halo exchange is part of the matrix-free product).
  virtual void apply(ExecContext& ctx, DistVector& x, DistVector& y) const = 0;

  /// Number of unknowns (ns · nx1 · nx2).
  virtual std::int64_t size() const = 0;
};

}  // namespace v2d::linalg
