#pragma once
/// \file operator.hpp
/// \brief Abstract linear operator applied matrix-free.
///
/// "Because of its prohibitive size, the sparse linear system matrix is
/// never stored and the Krylov subspace methods are implemented in
/// matrix-free form by application of a finite-difference operator to
/// column vectors."  LinearOperator is that abstraction; StencilOperator
/// is the concrete finite-difference form.

#include <cstdint>

#include "linalg/dist_vector.hpp"
#include "linalg/exec_context.hpp"

namespace v2d::linalg {

class LinearOperator {
public:
  virtual ~LinearOperator() = default;

  /// y ← A·x.  `x` is taken mutable because the operator refreshes its
  /// ghost zones (the halo exchange is part of the matrix-free product).
  virtual void apply(ExecContext& ctx, DistVector& x, DistVector& y) const = 0;

  /// y ← A·x returning w·y (w null ⇒ x·y, the CG p·Ap case), with the
  /// reduction priced as one allreduce — the fused MATVEC+DPROD entry
  /// point.  This default runs apply() followed by DistVector::dot, so it
  /// prices identically to the unfused call sequence and any operator
  /// supports it; StencilOperator overrides it to fold the dot into the
  /// stencil sweep.  The result is bit-identical either way (compensated
  /// rank-ordered accumulation in both).
  virtual double apply_dot(ExecContext& ctx, DistVector& x, DistVector& y,
                           const DistVector* w = nullptr) const {
    apply(ctx, x, y);
    return DistVector::dot(ctx, w != nullptr ? *w : x, y);
  }

  /// r ← b − A·x — the fused-residual entry point.  Default is apply() +
  /// assign_sub (unfused pricing); StencilOperator folds the subtraction
  /// into the sweep.
  virtual void apply_residual(ExecContext& ctx, DistVector& x,
                              const DistVector& b, DistVector& r) const {
    apply(ctx, x, r);
    r.assign_sub(ctx, b, r);
  }

  /// Number of unknowns (ns · nx1 · nx2).
  virtual std::int64_t size() const = 0;
};

}  // namespace v2d::linalg
