#pragma once
/// \file dag_capture.hpp
/// \brief RAII capture of one solver iteration's kernel DAG.
///
/// Under FuseMode::Plan, the solvers construct a DagCapture keyed by their
/// (solver, preconditioner, shape, VL, exec-mode) configuration and call
/// begin_iteration(it) at the top of every hot-loop iteration.  The first
/// time a configuration runs, the capture attaches a DagRecorder to the
/// driving ExecContext for iteration 1 only; at the top of iteration 2 (or
/// at scope exit, whichever comes first) the recording is annotated by the
/// fusion planner and memoized in the Context's DagStore.  Subsequent
/// solves of the same configuration find the key present and record
/// nothing — the capture is as cheap as one map probe, exactly like the
/// analytic KernelCounts memo.
///
/// Capture never touches the priced stream: the recorder only appends
/// (name, operands) tuples on the driving thread, so fields, counts,
/// ledgers and clocks are bit-identical with and without it.

#include <string>
#include <utility>

#include "linalg/exec_context.hpp"
#include "linalg/fusion/planner.hpp"
#include "vla/kernel_dag.hpp"

namespace v2d::linalg {

class DagCapture {
public:
  DagCapture(ExecContext& ctx, std::string key)
      : ctx_(ctx), key_(std::move(key)) {
    // Arm only for the first Plan-mode solve of this configuration, and
    // never nested (an outer capture — e.g. a solver driving MG smoother
    // solves — owns the recording).
    armed_ = ctx_.planned() && ctx_.dag == nullptr &&
             !ctx_.vctx.dag_store().contains(key_);
  }

  DagCapture(const DagCapture&) = delete;
  DagCapture& operator=(const DagCapture&) = delete;

  ~DagCapture() { finish(); }

  /// Call at the top of hot-loop iteration `it` (1-based): recording spans
  /// exactly iteration 1.
  void begin_iteration(int it) {
    if (!armed_) return;
    if (it == 1) {
      ctx_.dag = &recorder_;
    } else if (it == 2) {
      finish();
    }
  }

private:
  void finish() {
    if (!armed_) return;
    armed_ = false;
    if (ctx_.dag != &recorder_) return;  // iteration 1 never started
    ctx_.dag = nullptr;
    vla::KernelDag dag = recorder_.take(key_);
    if (dag.nodes.empty()) return;
    fusion::annotate_dag(dag);
    ctx_.vctx.dag_store().put(std::move(dag));
  }

  ExecContext& ctx_;
  std::string key_;
  vla::DagRecorder recorder_;
  bool armed_ = false;
};

/// The store key for a solver configuration — one capture per distinct
/// (solver, preconditioner, global shape, VL, exec mode).
inline std::string dag_key(const char* solver, const std::string& precond,
                           std::uint64_t global_size, const vla::Context& v) {
  return std::string(solver) + "|" + precond + "|n=" +
         std::to_string(global_size) + "|vl=" + std::to_string(v.arch().bits()) +
         "|" + vla::vla_exec_mode_name(v.exec_mode());
}

}  // namespace v2d::linalg
