#pragma once
/// \file kernel_counts.hpp
/// \brief Closed-form KernelCounts formulas for the fast execution path.
///
/// In VlaExecMode::Native the kernels do not record op-by-op; the
/// instruction stream a whilelt strip-mined kernel would issue is a pure
/// function of (kernel shape, n, VL, tail), so it is computed once from
/// the formulas here and memoized in the Context's count cache.  The
/// equivalence suite (tests/test_vla_fastpath.cpp) pins every formula to
/// the interpreter's recording across the full VL range and all tail
/// predicates (empty, partial, full).

#include <cstdint>

#include "sim/isa.hpp"
#include "vla/vla.hpp"

namespace v2d::linalg {

/// Kernel shapes with analytic recordings.  Values are stable cache-key
/// tags (packed with n into the Context memo key).
enum class KernelShape : std::uint8_t {
  Dprod,
  Daxpy,
  Dscal,
  Ddaxpy,
  Xpby,
  Copy,
  Fill,
  Sub,
  Hadamard,
  StencilRow,
  CouplingRow,
  DiagCorrectRow,
  DiagScaleRow,
  RestrictRow,
  ProlongRow,
  // --- fused composites (FuseMode::On call sites) ---
  //
  // The stencil composites and DAXPY₂ are planner-generated now: their
  // analytic counts are composed per fused group by fusion::group_counts
  // and memoized under signature-disjoint keys (bit 63 set), so they no
  // longer appear here.
  AxpyOut,               ///< z ← x + a·y (fused COPY+DAXPY)
  PUpdate,               ///< p ← r + b·(p − w·v) (fused DAXPY+XPBY)
  HadamardDot2,          ///< z ← m⊙r with the {r·z, r·r} gang folded in
  HadamardUpdateDot2,    ///< r ← r+a·q, then z ← m⊙r with the gang folded in
};

/// The exact KernelCounts the interpreter backend records for one call of
/// `shape` over n elements at vector length `vl` lanes.  `calls` and
/// `elements` are left zero (ExecContext::commit owns those).
sim::KernelCounts analytic_counts(KernelShape shape, std::uint64_t n,
                                  unsigned vl);

/// Fold the analytic recording for one `shape`(n) call into `ctx`,
/// memoized per (shape, n) in the context's count cache.
inline void record_analytic(vla::Context& ctx, KernelShape shape,
                            std::uint64_t n) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(shape) << 56) | (n & 0x00ff'ffff'ffff'ffffULL);
  ctx.add_counts(ctx.memo_counts(
      key, [&] { return analytic_counts(shape, n, ctx.lanes()); }));
}

}  // namespace v2d::linalg
