#include "linalg/mg/mg_kernels.hpp"

#include "linalg/kernel_counts.hpp"
#include "linalg/kernels_native.hpp"
#include "vla/loops.hpp"

namespace v2d::linalg::mg {

using vla::Predicate;
using vla::VReg;

void diag_correct_row(vla::Context& ctx, double omega,
                      std::span<const double> d, std::span<const double> r,
                      std::span<double> x) {
  const std::uint64_t n = x.size();
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::DiagCorrectRow, n);
    native::diag_correct_row(omega, d.data(), r.data(), x.data(), n);
    return;
  }
  const VReg w = ctx.dup(omega);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg t = ctx.mul(p, ctx.ld1(p, &d[i]), ctx.ld1(p, &r[i]));
    ctx.st1(p, &x[i], ctx.fma(p, w, t, ctx.ld1(p, &x[i])));
  });
}

void diag_scale_row(vla::Context& ctx, double omega, std::span<const double> d,
                    std::span<const double> r, std::span<double> z) {
  const std::uint64_t n = z.size();
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::DiagScaleRow, n);
    native::diag_scale_row(omega, d.data(), r.data(), z.data(), n);
    return;
  }
  const VReg w = ctx.dup(omega);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg t = ctx.mul(p, ctx.ld1(p, &d[i]), ctx.ld1(p, &r[i]));
    ctx.st1(p, &z[i], ctx.mul(p, w, t));
  });
}

void restrict_row(vla::Context& ctx, const double* const fine[4],
                  const TransferTables& tab, std::span<double> coarse) {
  const std::uint64_t n = coarse.size();
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::RestrictRow, n);
    native::restrict_row(fine, tab.fm1.data(), tab.f0.data(), tab.f1.data(),
                         tab.f2.data(), coarse.data(), n);
    return;
  }
  // Separable full-weighting factors: (1/4)·w_i·w_j with w = (1/4, 3/4).
  const double wj[4] = {0.25, 0.75, 0.75, 0.25};
  const VReg vq = ctx.dup(0.25);
  const VReg vt = ctx.dup(0.75);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    VReg acc = ctx.dup(0.0);
    for (int dj = 0; dj < 4; ++dj) {
      const double* frow = fine[dj];
      const VReg a = ctx.ld1_gather(p, frow, tab.fm1.subspan(i));
      const VReg b = ctx.ld1_gather(p, frow, tab.f0.subspan(i));
      const VReg c = ctx.ld1_gather(p, frow, tab.f1.subspan(i));
      const VReg d = ctx.ld1_gather(p, frow, tab.f2.subspan(i));
      // Row value: 1/4·a + 3/4·b + 3/4·c + 1/4·d.
      VReg row = ctx.mul(p, vq, a);
      row = ctx.fma(p, vt, b, row);
      row = ctx.fma(p, vt, c, row);
      row = ctx.fma(p, vq, d, row);
      const VReg w = ctx.dup(0.25 * wj[dj]);
      acc = ctx.fma_merge(p, w, row, acc);
    }
    ctx.st1(p, &coarse[i], acc);
  });
}

void prolong_row_add(vla::Context& ctx, const double* cnear,
                     const double* cfar, const TransferTables& tab,
                     std::span<double> fine) {
  const std::uint64_t n = fine.size();
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::ProlongRow, n);
    native::prolong_row_add(cnear, cfar, tab.near.data(), tab.far.data(),
                            fine.data(), n);
    return;
  }
  const VReg vq = ctx.dup(0.25);
  const VReg vt = ctx.dup(0.75);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const auto near = tab.near.subspan(i);
    const auto far = tab.far.subspan(i);
    // 1-D interpolation on each of the two coarse rows …
    VReg rn = ctx.mul(p, vt, ctx.ld1_gather(p, cnear, near));
    rn = ctx.fma(p, vq, ctx.ld1_gather(p, cnear, far), rn);
    VReg rf = ctx.mul(p, vt, ctx.ld1_gather(p, cfar, near));
    rf = ctx.fma(p, vq, ctx.ld1_gather(p, cfar, far), rf);
    // … then in j, and accumulate into the fine row.
    VReg y = ctx.ld1(p, &fine[i]);
    y = ctx.fma(p, vt, rn, y);
    y = ctx.fma(p, vq, rf, y);
    ctx.st1(p, &fine[i], y);
  });
}

}  // namespace v2d::linalg::mg
