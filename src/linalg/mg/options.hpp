#pragma once
/// \file options.hpp
/// \brief Multigrid preconditioner knobs (a plain options struct).
///
/// Kept free of linalg/grid includes so configuration layers
/// (core/config, rad/radstep) can carry MgOptions by value without
/// pulling in the solver stack; the machinery lives in hierarchy.hpp.

#include <cstdint>
#include <string>

namespace v2d::linalg::mg {

struct MgOptions {
  int coarse_size = 8;    ///< stop when min(nx1, nx2) <= coarse_size
  int max_levels = 12;    ///< hard cap on hierarchy depth
  int nu_pre = 2;         ///< pre-smoothing steps per V-cycle level
  int nu_post = 2;        ///< post-smoothing steps per V-cycle level
  std::string smoother = "jacobi";  ///< "jacobi" | "chebyshev"
  double jacobi_omega = 0.8;        ///< weighted-Jacobi damping
  double cheb_boost = 4.0;  ///< smooth [lambda_max/boost, lambda_max]
  /// Guard against degenerate hierarchies: if coarsening stalls (odd tile
  /// boundaries) while the coarsest level still exceeds this zone count,
  /// construction throws instead of silently factoring a huge banded
  /// system on every preconditioner build.
  std::int64_t max_direct_zones = 16384;
};

}  // namespace v2d::linalg::mg
