#pragma once
/// \file hierarchy.hpp
/// \brief Geometric multigrid level hierarchy over the V2D grid stack.
///
/// MgHierarchy coarsens a fine StencilOperator's Grid2D/Decomposition by
/// factor 2 per direction until a configurable coarse size, keeping every
/// coarse tile *parent-aligned*: rank r's coarse tile is exactly the set
/// of parents of rank r's fine zones, so all transfer and coarsening
/// reads stay within one ghost layer.  Coarsening stops as soon as any
/// tile extent turns odd (alignment would break), the grid reaches
/// `coarse_size`, or `max_levels` is hit.
///
/// Coarse operators are built by Galerkin coarsening A_c = R·A_f·P with
/// piecewise-constant transfers (R = (1/4)·Pᵀ), which keeps the
/// five-point sparsity exactly — each coarse coefficient is a weighted
/// sum of its 2×2 children's coefficients — and preserves symmetry of
/// symmetric fine operators.  The V-cycle itself uses the higher-order
/// full-weighting/bilinear pair from transfer.hpp; both choices preserve
/// constants, so the pairing is the standard cell-centred mixed scheme.
/// PWC Galerkin represents mass-like (diagonal-shift) terms exactly and
/// makes the diffusion part up to 2× stiff, i.e. the coarse correction
/// conservatively under-corrects: V-cycle contraction is ~0.3–0.45 per
/// cycle instead of exact-Galerkin's ~0.1, in exchange for a cycle that
/// cannot over-shoot on the mass-dominated FLD systems of small-Δt steps.
///
/// The fine level's species-coupling band (when present) is deliberately
/// *not* coarsened: the hierarchy preconditions the diffusion part, which
/// dominates the spectrum; the weak exchange coupling is left to the
/// Krylov iteration.

#include <memory>
#include <vector>

#include "linalg/banded.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/mg/options.hpp"
#include "linalg/stencil_op.hpp"

namespace v2d::linalg::mg {

/// One level of the hierarchy.  Level 0 borrows the caller's grid and
/// decomposition but smooths through a cached coefficient copy of the
/// fine operator (no per-sweep evaluation overhead — see MgHierarchy);
/// coarser levels own grid, decomposition and operator outright.
struct MgLevel {
  MgLevel(const grid::Grid2D& g, const grid::Decomposition& d,
          const StencilOperator& a, bool with_solution);

  const grid::Grid2D* grid = nullptr;
  const grid::Decomposition* decomp = nullptr;
  const StencilOperator* op = nullptr;

  // Owned storage for levels > 0 (kept alive behind the pointers above).
  std::unique_ptr<grid::Grid2D> owned_grid;
  std::unique_ptr<grid::Decomposition> owned_decomp;
  std::unique_ptr<StencilOperator> owned_op;

  grid::DistField dinv;    ///< 1 / diag(A) for the smoothers
  double lambda_max = 2.0; ///< Gershgorin bound on the spectrum of D⁻¹A

  // V-cycle workspace.  x/b exist on coarse levels only (level 0 uses the
  // caller's vectors); r/z/p are the residual and smoother temporaries.
  std::unique_ptr<DistVector> x, b;
  DistVector r, z, p;
};

class MgHierarchy {
public:
  /// Build the full hierarchy from the fine operator.  `ctx` prices the
  /// setup (Galerkin coarsening, diagonal inversion, coarse factorization)
  /// as PrecondBuild work.  `A` must outlive the hierarchy.
  MgHierarchy(ExecContext& ctx, const StencilOperator& A, MgOptions opt = {});

  int nlevels() const { return static_cast<int>(levels_.size()); }
  MgLevel& level(int l) { return *levels_.at(static_cast<std::size_t>(l)); }
  const MgLevel& level(int l) const {
    return *levels_.at(static_cast<std::size_t>(l));
  }
  const MgOptions& options() const { return opt_; }

  /// Direct solver for the coarsest level's assembled operator.
  const BandedLU& coarse_lu() const { return *coarse_lu_; }

private:
  /// True when the level can be coarsened while keeping parent alignment.
  static bool can_coarsen(const grid::Grid2D& g, const grid::Decomposition& d,
                          const MgOptions& opt);

  MgOptions opt_;
  std::vector<std::unique_ptr<MgLevel>> levels_;
  std::unique_ptr<BandedLU> coarse_lu_;
};

}  // namespace v2d::linalg::mg
