#include "linalg/mg/smoother.hpp"

#include "linalg/mg/mg_kernels.hpp"
#include "support/error.hpp"

namespace v2d::linalg::mg {

using compiler::KernelFamily;

namespace {

/// x ← x + ω·dinv ⊙ r   (the weighted-Jacobi correction, fused).
/// Elementwise over own-tile data only, so under --host-sched graph the
/// per-rank tasks chain behind the previous stage on the level's chain
/// domain instead of forking a barrier (captures are by value: chained
/// tasks are deferred).
void diag_correct(ExecContext& ctx, grid::DistField& dinv, DistVector& r,
                  DistVector& x, double omega) {
  const auto& dec = x.field().decomp();
  const grid::Decomposition* decp = &dec;
  grid::DistField* dp = &dinv;
  DistVector* rp = &r;
  DistVector* xp = &x;
  par_ranks_chain(ctx, dec,
                  [decp, dp, rp, xp, omega](int rank, ExecContext& rctx) {
    const grid::TileExtent& e = decp->extent(rank);
    const auto n = static_cast<std::size_t>(e.ni);
    for (int s = 0; s < xp->ns(); ++s) {
      grid::TileView dv = dp->view(rank, s);
      grid::TileView rv = rp->field().view(rank, s);
      grid::TileView xv = xp->field().view(rank, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        diag_correct_row(rctx.vctx, omega,
                         std::span<const double>(dv.row(lj), n),
                         std::span<const double>(rv.row(lj), n),
                         std::span<double>(xv.row(lj), n));
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * xp->ns();
    rctx.commit(rank, KernelFamily::Precond, "mg-smooth", elements,
                xp->working_set(rank, 3));
  });
}

/// z ← ω·dinv ⊙ r   (scaled diagonal application); chained like
/// diag_correct.
void diag_scale(ExecContext& ctx, grid::DistField& dinv, DistVector& r,
                DistVector& z, double omega) {
  const auto& dec = z.field().decomp();
  const grid::Decomposition* decp = &dec;
  grid::DistField* dp = &dinv;
  DistVector* rp = &r;
  DistVector* zp = &z;
  par_ranks_chain(ctx, dec,
                  [decp, dp, rp, zp, omega](int rank, ExecContext& rctx) {
    const grid::TileExtent& e = decp->extent(rank);
    const auto n = static_cast<std::size_t>(e.ni);
    for (int s = 0; s < zp->ns(); ++s) {
      grid::TileView dv = dp->view(rank, s);
      grid::TileView rv = rp->field().view(rank, s);
      grid::TileView zv = zp->field().view(rank, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        diag_scale_row(rctx.vctx, omega,
                       std::span<const double>(dv.row(lj), n),
                       std::span<const double>(rv.row(lj), n),
                       std::span<double>(zv.row(lj), n));
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj * zp->ns();
    rctx.commit(rank, KernelFamily::Precond, "mg-smooth", elements,
                zp->working_set(rank, 3));
  });
}

/// r ← b − A·x, attributed to the smoother.  Under FuseMode::On the
/// subtraction rides the stencil sweep (the fused weighted-Jacobi step:
/// the residual half of every smoothing iteration becomes one pass, and
/// the correction half is already the single fused diag_correct kernel).
void residual(ExecContext& ctx, MgLevel& lvl, DistVector& x, DistVector& b,
              DistVector& r) {
  if (ctx.fused()) {
    lvl.op->apply_residual_as(ctx, x, b, r, KernelFamily::Precond,
                              "mg-smooth");
  } else {
    lvl.op->apply_as(ctx, x, r, KernelFamily::Precond, "mg-smooth");
    r.assign_sub(ctx, b, r);
  }
}

}  // namespace

void WeightedJacobiSmoother::smooth(ExecContext& ctx, MgLevel& lvl,
                                    DistVector& x, DistVector& b, int steps,
                                    bool zero_guess) const {
  // The zero_guess contract holds even for zero steps: x must leave this
  // call zero-initialized or the V-cycle becomes stateful across
  // applications (fatal inside a Krylov method).
  if (zero_guess && steps < 1) {
    x.fill(ctx, 0.0);
    return;
  }
  for (int step = 0; step < steps; ++step) {
    if (step == 0 && zero_guess) {
      // x₀ = 0 makes the first step a pure diagonal sweep.
      diag_scale(ctx, lvl.dinv, b, x, omega_);
      continue;
    }
    residual(ctx, lvl, x, b, lvl.r);
    diag_correct(ctx, lvl.dinv, lvl.r, x, omega_);
  }
}

void ChebyshevSmoother::smooth(ExecContext& ctx, MgLevel& lvl, DistVector& x,
                               DistVector& b, int steps,
                               bool zero_guess) const {
  if (steps < 1) {
    // Same zero_guess contract as the Jacobi smoother.
    if (zero_guess) x.fill(ctx, 0.0);
    return;
  }
  const double lmax = lvl.lambda_max;
  const double lmin = lmax / boost_;
  const double theta = 0.5 * (lmax + lmin);
  const double delta = 0.5 * (lmax - lmin);
  const double sigma = theta / delta;
  double rho = 1.0 / sigma;

  // First step: p = D⁻¹r/θ, x += p.
  if (zero_guess) {
    diag_scale(ctx, lvl.dinv, b, lvl.p, 1.0 / theta);
    x.copy_from(ctx, lvl.p);
  } else {
    residual(ctx, lvl, x, b, lvl.r);
    diag_scale(ctx, lvl.dinv, lvl.r, lvl.p, 1.0 / theta);
    x.daxpy(ctx, 1.0, lvl.p);
  }
  // Chebyshev recurrence on the direction vector p.
  for (int step = 1; step < steps; ++step) {
    residual(ctx, lvl, x, b, lvl.r);
    diag_scale(ctx, lvl.dinv, lvl.r, lvl.z, 1.0);
    const double rho_new = 1.0 / (2.0 * sigma - rho);
    lvl.p.dscal(ctx, 0.0, -(rho_new * rho));      // p ← ρ'·ρ·p
    lvl.p.daxpy(ctx, 2.0 * rho_new / delta, lvl.z);
    x.daxpy(ctx, 1.0, lvl.p);
    rho = rho_new;
  }
}

std::unique_ptr<Smoother> make_smoother(const MgOptions& opt) {
  if (opt.smoother == "jacobi")
    return std::make_unique<WeightedJacobiSmoother>(opt.jacobi_omega);
  if (opt.smoother == "chebyshev")
    return std::make_unique<ChebyshevSmoother>(opt.cheb_boost);
  throw Error("unknown multigrid smoother '" + opt.smoother +
              "' (expected jacobi|chebyshev)");
}

}  // namespace v2d::linalg::mg
