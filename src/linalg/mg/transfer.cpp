#include "linalg/mg/transfer.hpp"

#include <algorithm>
#include <vector>

#include "linalg/mg/mg_kernels.hpp"
#include "support/error.hpp"

namespace v2d::linalg::mg {

using compiler::KernelFamily;

namespace {

/// Gather-index tables shared by every row sweep of one transfer call.
/// Indices are tile-local (relative to a row's li = 0 pointer); negative
/// entries and one-past-the-end read the exchanged ghost column.
struct IndexTables {
  std::vector<std::int64_t> fm1, f0, f1, f2;  // restriction: 2c−1 … 2c+2
  std::vector<std::int64_t> near, far;        // prolongation: parent / parity

  TransferTables spans() const {
    return TransferTables{fm1, f0, f1, f2, near, far};
  }
};

IndexTables build_tables(int coarse_ni, int fine_ni) {
  IndexTables t;
  t.fm1.resize(static_cast<std::size_t>(coarse_ni));
  t.f0.resize(static_cast<std::size_t>(coarse_ni));
  t.f1.resize(static_cast<std::size_t>(coarse_ni));
  t.f2.resize(static_cast<std::size_t>(coarse_ni));
  for (int c = 0; c < coarse_ni; ++c) {
    t.fm1[static_cast<std::size_t>(c)] = 2 * c - 1;
    t.f0[static_cast<std::size_t>(c)] = 2 * c;
    t.f1[static_cast<std::size_t>(c)] = 2 * c + 1;
    t.f2[static_cast<std::size_t>(c)] = 2 * c + 2;
  }
  t.near.resize(static_cast<std::size_t>(fine_ni));
  t.far.resize(static_cast<std::size_t>(fine_ni));
  for (int f = 0; f < fine_ni; ++f) {
    const int parent = f / 2;
    t.near[static_cast<std::size_t>(f)] = parent;
    t.far[static_cast<std::size_t>(f)] = parent + ((f & 1) ? 1 : -1);
  }
  return t;
}

void check_pair(const DistVector& fine, const DistVector& coarse) {
  V2D_REQUIRE(fine.ns() == coarse.ns(), "species count mismatch");
  V2D_REQUIRE(fine.field().grid().nx1() == 2 * coarse.field().grid().nx1() &&
                  fine.field().grid().nx2() == 2 * coarse.field().grid().nx2(),
              "transfer levels must differ by a factor of 2");
  V2D_REQUIRE(fine.nranks() == coarse.nranks(),
              "transfer levels must share the rank layout");
}

}  // namespace

void restrict_full_weighting(ExecContext& ctx, DistVector& fine,
                             DistVector& coarse) {
  check_pair(fine, coarse);
  grid::DistField& ff = fine.field();
  const auto transfers = ff.exchange_ghosts_full();
  ff.apply_bc(grid::BcKind::Dirichlet0);  // zero extension, matching P
  ctx.exchange(transfers, "mpi_halo");

  const auto& cdec = coarse.field().decomp();
  const auto& fdec = ff.decomp();
  int max_cni = 0, max_fni = 0;
  for (int r = 0; r < cdec.nranks(); ++r) {
    max_cni = std::max(max_cni, cdec.extent(r).ni);
    max_fni = std::max(max_fni, fdec.extent(r).ni);
  }
  const IndexTables tab = build_tables(max_cni, max_fni);

  par_ranks(ctx, cdec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& ce = cdec.extent(r);
    const grid::TileExtent& fe = fdec.extent(r);
    V2D_REQUIRE(fe.i0 == 2 * ce.i0 && fe.j0 == 2 * ce.j0 &&
                    fe.ni == 2 * ce.ni && fe.nj == 2 * ce.nj,
                "coarse tiles must be parent-aligned");
    const auto n = static_cast<std::size_t>(ce.ni);
    for (int s = 0; s < fine.ns(); ++s) {
      grid::TileView fv = ff.view(r, s);
      grid::TileView cv = coarse.field().view(r, s);
      for (int lcj = 0; lcj < ce.nj; ++lcj) {
        const double* frows[4] = {fv.row(2 * lcj - 1), fv.row(2 * lcj),
                                  fv.row(2 * lcj + 1), fv.row(2 * lcj + 2)};
        restrict_row(rctx.vctx, frows, tab.spans(),
                     std::span<double>(cv.row(lcj), n));
      }
    }
    const auto elements = static_cast<std::uint64_t>(ce.ni) * ce.nj * fine.ns();
    rctx.commit(r, KernelFamily::Precond, "mg-restrict", elements,
                fine.working_set(r, 1) + coarse.working_set(r, 1));
  });
}

void prolong_bilinear_add(ExecContext& ctx, DistVector& coarse,
                          DistVector& fine) {
  check_pair(fine, coarse);
  grid::DistField& cf = coarse.field();
  // Bilinear interpolation reaches diagonally: corner ghosts required.
  const auto transfers = cf.exchange_ghosts_full();
  cf.apply_bc(grid::BcKind::Dirichlet0);  // zero extension, matching R
  ctx.exchange(transfers, "mpi_halo");

  const auto& cdec = cf.decomp();
  const auto& fdec = fine.field().decomp();
  int max_cni = 0, max_fni = 0;
  for (int r = 0; r < cdec.nranks(); ++r) {
    max_cni = std::max(max_cni, cdec.extent(r).ni);
    max_fni = std::max(max_fni, fdec.extent(r).ni);
  }
  const IndexTables tab = build_tables(max_cni, max_fni);

  par_ranks(ctx, fdec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& fe = fdec.extent(r);
    const grid::TileExtent& ce = cdec.extent(r);
    V2D_REQUIRE(fe.i0 == 2 * ce.i0 && fe.j0 == 2 * ce.j0 &&
                    fe.ni == 2 * ce.ni && fe.nj == 2 * ce.nj,
                "coarse tiles must be parent-aligned");
    const auto n = static_cast<std::size_t>(fe.ni);
    for (int s = 0; s < fine.ns(); ++s) {
      grid::TileView cv = cf.view(r, s);
      grid::TileView fv = fine.field().view(r, s);
      for (int lfj = 0; lfj < fe.nj; ++lfj) {
        const int cj_near = lfj / 2;
        const int cj_far = cj_near + ((lfj & 1) ? 1 : -1);
        prolong_row_add(rctx.vctx, cv.row(cj_near), cv.row(cj_far),
                        tab.spans(), std::span<double>(fv.row(lfj), n));
      }
    }
    const auto elements = static_cast<std::uint64_t>(fe.ni) * fe.nj * fine.ns();
    rctx.commit(r, KernelFamily::Precond, "mg-prolong", elements,
                fine.working_set(r, 2) + coarse.working_set(r, 1));
  });
}

}  // namespace v2d::linalg::mg
