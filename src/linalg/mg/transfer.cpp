#include "linalg/mg/transfer.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "linalg/mg/mg_kernels.hpp"
#include "support/error.hpp"
#include "support/task_graph.hpp"

namespace v2d::linalg::mg {

using compiler::KernelFamily;

namespace {

/// Gather-index tables shared by every row sweep of one transfer call.
/// Indices are tile-local (relative to a row's li = 0 pointer); negative
/// entries and one-past-the-end read the exchanged ghost column.
struct IndexTables {
  std::vector<std::int64_t> fm1, f0, f1, f2;  // restriction: 2c−1 … 2c+2
  std::vector<std::int64_t> near, far;        // prolongation: parent / parity

  TransferTables spans() const {
    return TransferTables{fm1, f0, f1, f2, near, far};
  }
};

IndexTables build_tables(int coarse_ni, int fine_ni) {
  IndexTables t;
  t.fm1.resize(static_cast<std::size_t>(coarse_ni));
  t.f0.resize(static_cast<std::size_t>(coarse_ni));
  t.f1.resize(static_cast<std::size_t>(coarse_ni));
  t.f2.resize(static_cast<std::size_t>(coarse_ni));
  for (int c = 0; c < coarse_ni; ++c) {
    t.fm1[static_cast<std::size_t>(c)] = 2 * c - 1;
    t.f0[static_cast<std::size_t>(c)] = 2 * c;
    t.f1[static_cast<std::size_t>(c)] = 2 * c + 1;
    t.f2[static_cast<std::size_t>(c)] = 2 * c + 2;
  }
  t.near.resize(static_cast<std::size_t>(fine_ni));
  t.far.resize(static_cast<std::size_t>(fine_ni));
  for (int f = 0; f < fine_ni; ++f) {
    const int parent = f / 2;
    t.near[static_cast<std::size_t>(f)] = parent;
    t.far[static_cast<std::size_t>(f)] = parent + ((f & 1) ? 1 : -1);
  }
  return t;
}

void check_pair(const DistVector& fine, const DistVector& coarse) {
  V2D_REQUIRE(fine.ns() == coarse.ns(), "species count mismatch");
  V2D_REQUIRE(fine.field().grid().nx1() == 2 * coarse.field().grid().nx1() &&
                  fine.field().grid().nx2() == 2 * coarse.field().grid().nx2(),
              "transfer levels must differ by a factor of 2");
  V2D_REQUIRE(fine.nranks() == coarse.nranks(),
              "transfer levels must share the rank layout");
}

void check_parent_aligned(const grid::Decomposition& cdec,
                          const grid::Decomposition& fdec) {
  for (int r = 0; r < cdec.nranks(); ++r) {
    const grid::TileExtent& ce = cdec.extent(r);
    const grid::TileExtent& fe = fdec.extent(r);
    V2D_REQUIRE(fe.i0 == 2 * ce.i0 && fe.j0 == 2 * ce.j0 &&
                    fe.ni == 2 * ce.ni && fe.nj == 2 * ce.nj,
                "coarse tiles must be parent-aligned");
  }
}

/// Graph-mode transfer: per rank, a four-task subgraph overlapping the
/// full (corner-filling) ghost exchange of `src` with the row sweep over
/// the target decomposition `tdec` —
///
///   A_r: x1 ghost-column copy + x1 BC on src
///   C_r: padded x2 ghost-row copy + x2 BC       (after A_r, A_S, A_N:
///        the padded strips read the S/N neighbours' ghost columns — the
///        cross-rank edges the two-phase barrier provided serially)
///   B_r: interior target rows 1..nj-2           (after A_r: interior
///        rows read ghost columns, never ghost rows)
///   D_r: target rows 0, nj-1 + the commit       (after B_r, C_r)
///
/// Corner values are order-robust here because the BC is Dirichlet0
/// (data-independent zeros): any corner the serial phase2/BC order and
/// the per-rank A→C order disagree on transiently is rewritten by the
/// same final writer in both schedules.  B_r/D_r share one fork()ed
/// context so the rank's recording commits exactly as the single sweep.
template <typename Rows, typename Finish>
void build_transfer_graph(ExecContext& ctx, task_graph::Session& ses,
                          grid::DistField& src,
                          const grid::Decomposition& tdec, Rows rows,
                          Finish finish) {
  grid::DistField* sp = &src;
  const auto& topo = src.decomp().topology();
  const int nr = tdec.nranks();
  std::vector<task_graph::Session::Task*> a(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) {
    a[static_cast<std::size_t>(r)] = ses.create([sp, r] {
      sp->copy_halo(r, /*x1_dirs=*/true);
      sp->apply_bc_dir(grid::BcKind::Dirichlet0, r, /*x1_dirs=*/true);
    });
  }
  for (int r = 0; r < nr; ++r) {
    const int nj = tdec.extent(r).nj;
    auto rctx = std::make_shared<ExecContext>(ctx.fork());
    auto* c = ses.create([sp, r] {
      sp->copy_halo_full_x2(r);
      sp->apply_bc_dir(grid::BcKind::Dirichlet0, r, /*x1_dirs=*/false);
    });
    ses.add_dep(c, a[static_cast<std::size_t>(r)]);
    for (const auto dir : {mpisim::Dir::South, mpisim::Dir::North}) {
      const auto nb = topo.neighbor(r, dir);
      if (nb) ses.add_dep(c, a[static_cast<std::size_t>(*nb)]);
    }
    task_graph::Session::Task* b = nullptr;
    if (nj > 2) {
      b = ses.create([rows, rctx, r, nj] { rows(*rctx, r, 1, nj - 1); });
      ses.add_dep(b, a[static_cast<std::size_t>(r)]);
    }
    auto* d = ses.create([rows, finish, rctx, r, nj] {
      rows(*rctx, r, 0, 1);
      if (nj > 1) rows(*rctx, r, nj - 1, nj);
      finish(*rctx, r);
    });
    ses.add_dep(d, c);
    ses.add_dep(d, b != nullptr ? b : a[static_cast<std::size_t>(r)]);
    ses.submit(c);
    if (b != nullptr) ses.submit(b);
    ses.submit(d);
  }
  // A tasks last: every cross-rank C_q → A_r edge is wired before any A
  // can run (and thus before any C can read a neighbour's ghost column).
  for (int r = 0; r < nr; ++r) ses.submit(a[static_cast<std::size_t>(r)]);
  ses.sync();
}

}  // namespace

void restrict_full_weighting(ExecContext& ctx, DistVector& fine,
                             DistVector& coarse) {
  check_pair(fine, coarse);
  grid::DistField& ff = fine.field();
  task_graph::Session* ses = task_graph::current();
  const bool overlap = ses != nullptr && !task_graph::in_task();
  if (overlap) {
    // Graph mode: price the full exchange up front (analytically identical
    // Transfer list; the collective drains chained predecessors) and run
    // the copies + BCs as overlap tasks below.
    ctx.exchange(ff.ghost_transfer_plan_full(), "mpi_halo");
  } else {
    const auto transfers = ff.exchange_ghosts_full();
    ff.apply_bc(grid::BcKind::Dirichlet0);  // zero extension, matching P
    ctx.exchange(transfers, "mpi_halo");
  }

  const auto& cdec = coarse.field().decomp();
  const auto& fdec = ff.decomp();
  check_parent_aligned(cdec, fdec);
  int max_cni = 0, max_fni = 0;
  for (int r = 0; r < cdec.nranks(); ++r) {
    max_cni = std::max(max_cni, cdec.extent(r).ni);
    max_fni = std::max(max_fni, fdec.extent(r).ni);
  }
  const IndexTables tab = build_tables(max_cni, max_fni);

  // Both schedules run below via these two callbacks; rows over [lo, hi)
  // of rank r's coarse tile.  Row results are independent of the grouping
  // and the recording is a commutative sum, so any split commits the same
  // values and counts as the single sweep.  (Stack captures are safe: the
  // graph path syncs before returning.)
  grid::DistField* ffp = &ff;
  grid::DistField* cfp = &coarse.field();
  const grid::Decomposition* cdecp = &cdec;
  const IndexTables* tabp = &tab;
  const int ns = fine.ns();
  DistVector* finep = &fine;
  DistVector* coarsep = &coarse;
  auto rows = [ffp, cfp, cdecp, tabp, ns](ExecContext& rctx, int r, int lo,
                                          int hi) {
    const grid::TileExtent& ce = cdecp->extent(r);
    const auto n = static_cast<std::size_t>(ce.ni);
    for (int s = 0; s < ns; ++s) {
      grid::TileView fv = ffp->view(r, s);
      grid::TileView cv = cfp->view(r, s);
      for (int lcj = lo; lcj < hi; ++lcj) {
        const double* frows[4] = {fv.row(2 * lcj - 1), fv.row(2 * lcj),
                                  fv.row(2 * lcj + 1), fv.row(2 * lcj + 2)};
        restrict_row(rctx.vctx, frows, tabp->spans(),
                     std::span<double>(cv.row(lcj), n));
      }
    }
  };
  auto finish = [cdecp, ns, finep, coarsep](ExecContext& rctx, int r) {
    const grid::TileExtent& ce = cdecp->extent(r);
    const auto elements = static_cast<std::uint64_t>(ce.ni) * ce.nj * ns;
    rctx.commit(r, KernelFamily::Precond, "mg-restrict", elements,
                finep->working_set(r, 1) + coarsep->working_set(r, 1));
  };

  if (overlap) {
    build_transfer_graph(ctx, *ses, ff, cdec, rows, finish);
    return;
  }
  par_ranks(ctx, cdec, [&](int r, ExecContext& rctx) {
    rows(rctx, r, 0, cdec.extent(r).nj);
    finish(rctx, r);
  });
}

void prolong_bilinear_add(ExecContext& ctx, DistVector& coarse,
                          DistVector& fine) {
  check_pair(fine, coarse);
  grid::DistField& cf = coarse.field();
  // Bilinear interpolation reaches diagonally: corner ghosts required.
  task_graph::Session* ses = task_graph::current();
  const bool overlap = ses != nullptr && !task_graph::in_task();
  if (overlap) {
    ctx.exchange(cf.ghost_transfer_plan_full(), "mpi_halo");
  } else {
    const auto transfers = cf.exchange_ghosts_full();
    cf.apply_bc(grid::BcKind::Dirichlet0);  // zero extension, matching R
    ctx.exchange(transfers, "mpi_halo");
  }

  const auto& cdec = cf.decomp();
  const auto& fdec = fine.field().decomp();
  check_parent_aligned(cdec, fdec);
  int max_cni = 0, max_fni = 0;
  for (int r = 0; r < cdec.nranks(); ++r) {
    max_cni = std::max(max_cni, cdec.extent(r).ni);
    max_fni = std::max(max_fni, fdec.extent(r).ni);
  }
  const IndexTables tab = build_tables(max_cni, max_fni);

  // Rows over [lo, hi) of rank r's *fine* tile; each fine row is written
  // by exactly one call, so the interior/boundary split of the graph path
  // is race-free and value-identical to the single sweep.
  grid::DistField* cfp = &cf;
  grid::DistField* ffp = &fine.field();
  const grid::Decomposition* fdecp = &fdec;
  const IndexTables* tabp = &tab;
  const int ns = fine.ns();
  DistVector* finep = &fine;
  DistVector* coarsep = &coarse;
  auto rows = [cfp, ffp, fdecp, tabp, ns](ExecContext& rctx, int r, int lo,
                                          int hi) {
    const grid::TileExtent& fe = fdecp->extent(r);
    const auto n = static_cast<std::size_t>(fe.ni);
    for (int s = 0; s < ns; ++s) {
      grid::TileView cv = cfp->view(r, s);
      grid::TileView fv = ffp->view(r, s);
      for (int lfj = lo; lfj < hi; ++lfj) {
        const int cj_near = lfj / 2;
        const int cj_far = cj_near + ((lfj & 1) ? 1 : -1);
        prolong_row_add(rctx.vctx, cv.row(cj_near), cv.row(cj_far),
                        tabp->spans(), std::span<double>(fv.row(lfj), n));
      }
    }
  };
  auto finish = [fdecp, ns, finep, coarsep](ExecContext& rctx, int r) {
    const grid::TileExtent& fe = fdecp->extent(r);
    const auto elements = static_cast<std::uint64_t>(fe.ni) * fe.nj * ns;
    rctx.commit(r, KernelFamily::Precond, "mg-prolong", elements,
                finep->working_set(r, 2) + coarsep->working_set(r, 1));
  };

  if (overlap) {
    build_transfer_graph(ctx, *ses, cf, fdec, rows, finish);
    return;
  }
  par_ranks(ctx, fdec, [&](int r, ExecContext& rctx) {
    rows(rctx, r, 0, fdec.extent(r).nj);
    finish(rctx, r);
  });
}

}  // namespace v2d::linalg::mg
