#include "linalg/mg/transfer.hpp"

#include <algorithm>
#include <vector>

#include "support/error.hpp"
#include "vla/loops.hpp"

namespace v2d::linalg::mg {

using compiler::KernelFamily;

namespace {

/// Gather-index tables shared by every row sweep of one transfer call.
/// Indices are tile-local (relative to a row's li = 0 pointer); negative
/// entries and one-past-the-end read the exchanged ghost column.
struct IndexTables {
  std::vector<std::int64_t> fm1, f0, f1, f2;  // restriction: 2c−1 … 2c+2
  std::vector<std::int64_t> near, far;        // prolongation: parent / parity
};

IndexTables build_tables(int coarse_ni, int fine_ni) {
  IndexTables t;
  t.fm1.resize(static_cast<std::size_t>(coarse_ni));
  t.f0.resize(static_cast<std::size_t>(coarse_ni));
  t.f1.resize(static_cast<std::size_t>(coarse_ni));
  t.f2.resize(static_cast<std::size_t>(coarse_ni));
  for (int c = 0; c < coarse_ni; ++c) {
    t.fm1[static_cast<std::size_t>(c)] = 2 * c - 1;
    t.f0[static_cast<std::size_t>(c)] = 2 * c;
    t.f1[static_cast<std::size_t>(c)] = 2 * c + 1;
    t.f2[static_cast<std::size_t>(c)] = 2 * c + 2;
  }
  t.near.resize(static_cast<std::size_t>(fine_ni));
  t.far.resize(static_cast<std::size_t>(fine_ni));
  for (int f = 0; f < fine_ni; ++f) {
    const int parent = f / 2;
    t.near[static_cast<std::size_t>(f)] = parent;
    t.far[static_cast<std::size_t>(f)] = parent + ((f & 1) ? 1 : -1);
  }
  return t;
}

void check_pair(const DistVector& fine, const DistVector& coarse) {
  V2D_REQUIRE(fine.ns() == coarse.ns(), "species count mismatch");
  V2D_REQUIRE(fine.field().grid().nx1() == 2 * coarse.field().grid().nx1() &&
                  fine.field().grid().nx2() == 2 * coarse.field().grid().nx2(),
              "transfer levels must differ by a factor of 2");
  V2D_REQUIRE(fine.nranks() == coarse.nranks(),
              "transfer levels must share the rank layout");
}

}  // namespace

void restrict_full_weighting(ExecContext& ctx, DistVector& fine,
                             DistVector& coarse) {
  check_pair(fine, coarse);
  grid::DistField& ff = fine.field();
  const auto transfers = ff.exchange_ghosts_full();
  ff.apply_bc(grid::BcKind::Dirichlet0);  // zero extension, matching P
  ctx.exchange(transfers, "mpi_halo");

  const auto& cdec = coarse.field().decomp();
  const auto& fdec = ff.decomp();
  int max_cni = 0, max_fni = 0;
  for (int r = 0; r < cdec.nranks(); ++r) {
    max_cni = std::max(max_cni, cdec.extent(r).ni);
    max_fni = std::max(max_fni, fdec.extent(r).ni);
  }
  const IndexTables tab = build_tables(max_cni, max_fni);

  // Separable full-weighting factors: (1/4)·w_i·w_j with w = (1/4, 3/4).
  const double wj[4] = {0.25, 0.75, 0.75, 0.25};
  for (int r = 0; r < cdec.nranks(); ++r) {
    const grid::TileExtent& ce = cdec.extent(r);
    const grid::TileExtent& fe = fdec.extent(r);
    V2D_REQUIRE(fe.i0 == 2 * ce.i0 && fe.j0 == 2 * ce.j0 &&
                    fe.ni == 2 * ce.ni && fe.nj == 2 * ce.nj,
                "coarse tiles must be parent-aligned");
    const auto n = static_cast<std::uint64_t>(ce.ni);
    for (int s = 0; s < fine.ns(); ++s) {
      grid::TileView fv = ff.view(r, s);
      grid::TileView cv = coarse.field().view(r, s);
      const vla::VReg vq = ctx.vctx.dup(0.25);
      const vla::VReg vt = ctx.vctx.dup(0.75);
      for (int lcj = 0; lcj < ce.nj; ++lcj) {
        double* crow = cv.row(lcj);
        vla::strip_mine(ctx.vctx, n, [&](std::uint64_t i,
                                         const vla::Predicate& p) {
          vla::VReg acc = ctx.vctx.dup(0.0);
          for (int dj = 0; dj < 4; ++dj) {
            const double* frow = fv.row(2 * lcj - 1 + dj);
            const vla::VReg a = ctx.vctx.ld1_gather(
                p, frow, std::span<const std::int64_t>(tab.fm1).subspan(i));
            const vla::VReg b = ctx.vctx.ld1_gather(
                p, frow, std::span<const std::int64_t>(tab.f0).subspan(i));
            const vla::VReg c = ctx.vctx.ld1_gather(
                p, frow, std::span<const std::int64_t>(tab.f1).subspan(i));
            const vla::VReg d = ctx.vctx.ld1_gather(
                p, frow, std::span<const std::int64_t>(tab.f2).subspan(i));
            // Row value: 1/4·a + 3/4·b + 3/4·c + 1/4·d.
            vla::VReg row = ctx.vctx.mul(p, vq, a);
            row = ctx.vctx.fma(p, vt, b, row);
            row = ctx.vctx.fma(p, vt, c, row);
            row = ctx.vctx.fma(p, vq, d, row);
            const vla::VReg w = ctx.vctx.dup(0.25 * wj[dj]);
            acc = ctx.vctx.fma_merge(p, w, row, acc);
          }
          ctx.vctx.st1(p, crow + i, acc);
        });
      }
    }
    const auto elements = static_cast<std::uint64_t>(ce.ni) * ce.nj * fine.ns();
    ctx.commit(r, KernelFamily::Precond, "mg-restrict", elements,
               fine.working_set(r, 1) + coarse.working_set(r, 1));
  }
}

void prolong_bilinear_add(ExecContext& ctx, DistVector& coarse,
                          DistVector& fine) {
  check_pair(fine, coarse);
  grid::DistField& cf = coarse.field();
  // Bilinear interpolation reaches diagonally: corner ghosts required.
  const auto transfers = cf.exchange_ghosts_full();
  cf.apply_bc(grid::BcKind::Dirichlet0);  // zero extension, matching R
  ctx.exchange(transfers, "mpi_halo");

  const auto& cdec = cf.decomp();
  const auto& fdec = fine.field().decomp();
  int max_cni = 0, max_fni = 0;
  for (int r = 0; r < cdec.nranks(); ++r) {
    max_cni = std::max(max_cni, cdec.extent(r).ni);
    max_fni = std::max(max_fni, fdec.extent(r).ni);
  }
  const IndexTables tab = build_tables(max_cni, max_fni);

  for (int r = 0; r < fdec.nranks(); ++r) {
    const grid::TileExtent& fe = fdec.extent(r);
    const grid::TileExtent& ce = cdec.extent(r);
    V2D_REQUIRE(fe.i0 == 2 * ce.i0 && fe.j0 == 2 * ce.j0 &&
                    fe.ni == 2 * ce.ni && fe.nj == 2 * ce.nj,
                "coarse tiles must be parent-aligned");
    const auto n = static_cast<std::uint64_t>(fe.ni);
    for (int s = 0; s < fine.ns(); ++s) {
      grid::TileView cv = cf.view(r, s);
      grid::TileView fv = fine.field().view(r, s);
      const vla::VReg vq = ctx.vctx.dup(0.25);
      const vla::VReg vt = ctx.vctx.dup(0.75);
      for (int lfj = 0; lfj < fe.nj; ++lfj) {
        const int cj_near = lfj / 2;
        const int cj_far = cj_near + ((lfj & 1) ? 1 : -1);
        const double* cn = cv.row(cj_near);
        const double* cfar = cv.row(cj_far);
        double* frow = fv.row(lfj);
        vla::strip_mine(ctx.vctx, n, [&](std::uint64_t i,
                                         const vla::Predicate& p) {
          const auto near =
              std::span<const std::int64_t>(tab.near).subspan(i);
          const auto far = std::span<const std::int64_t>(tab.far).subspan(i);
          // 1-D interpolation on each of the two coarse rows …
          vla::VReg rn = ctx.vctx.mul(p, vt, ctx.vctx.ld1_gather(p, cn, near));
          rn = ctx.vctx.fma(p, vq, ctx.vctx.ld1_gather(p, cn, far), rn);
          vla::VReg rf =
              ctx.vctx.mul(p, vt, ctx.vctx.ld1_gather(p, cfar, near));
          rf = ctx.vctx.fma(p, vq, ctx.vctx.ld1_gather(p, cfar, far), rf);
          // … then in j, and accumulate into the fine row.
          vla::VReg y = ctx.vctx.ld1(p, frow + i);
          y = ctx.vctx.fma(p, vt, rn, y);
          y = ctx.vctx.fma(p, vq, rf, y);
          ctx.vctx.st1(p, frow + i, y);
        });
      }
    }
    const auto elements = static_cast<std::uint64_t>(fe.ni) * fe.nj * fine.ns();
    ctx.commit(r, KernelFamily::Precond, "mg-prolong", elements,
               fine.working_set(r, 2) + coarse.working_set(r, 1));
  }
}

}  // namespace v2d::linalg::mg
