#pragma once
/// \file mg_kernels.hpp
/// \brief Row-level multigrid kernels with interpreter and native paths.
///
/// The smoother's diagonal sweeps and the inter-grid transfer rows are hot
/// enough inside a V-cycle to need the same dual-mode treatment as the
/// Table II kernels: in VlaExecMode::Interpret they run as predicated
/// whilelt strips through the vla::Context; in VlaExecMode::Native they run
/// as raw-pointer loops (kernels_native.hpp) and their recording comes from
/// the closed-form formulas in kernel_counts.hpp.

#include <cstdint>
#include <span>

#include "vla/vla.hpp"

namespace v2d::linalg::mg {

/// x ← x + ω·(d ⊙ r) over one tile row (the weighted-Jacobi correction).
void diag_correct_row(vla::Context& ctx, double omega,
                      std::span<const double> d, std::span<const double> r,
                      std::span<double> x);

/// z ← ω·(d ⊙ r) over one tile row (scaled diagonal application).
void diag_scale_row(vla::Context& ctx, double omega, std::span<const double> d,
                    std::span<const double> r, std::span<double> z);

/// Tile-local gather-index tables shared by every row of one transfer call.
/// Negative entries and one-past-the-end read the exchanged ghost column.
struct TransferTables {
  std::span<const std::int64_t> fm1, f0, f1, f2;  ///< restriction: 2c−1 … 2c+2
  std::span<const std::int64_t> near, far;  ///< prolongation: parent / parity
};

/// One coarse row of full-weighting restriction.  `fine[dj]` are the four
/// fine rows 2·cj−1 … 2·cj+2; separable weights (1/4, 3/4, 3/4, 1/4)/4.
void restrict_row(vla::Context& ctx, const double* const fine[4],
                  const TransferTables& tab, std::span<double> coarse);

/// One fine row of bilinear prolongation, accumulated into `fine`.
/// `cnear`/`cfar` are the parent and parity-adjacent coarse rows.
void prolong_row_add(vla::Context& ctx, const double* cnear,
                     const double* cfar, const TransferTables& tab,
                     std::span<double> fine);

}  // namespace v2d::linalg::mg
