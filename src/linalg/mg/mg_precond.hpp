#pragma once
/// \file mg_precond.hpp
/// \brief Geometric multigrid V-cycle preconditioner.
///
/// One symmetric V(ν₁,ν₂) cycle per application: pre-smooth from a zero
/// guess, restrict the residual (full weighting), recurse, correct with
/// the bilinear prolongation, post-smooth.  The coarsest level is solved
/// exactly: the coarse residual is gathered to every rank (priced as one
/// allreduce — the shrinking-grid collective that makes multigrid's
/// communication profile latency- rather than bandwidth-bound) and each
/// rank runs the same banded LU solve redundantly.
///
/// Where the SPAI family trades per-iteration cost against iteration
/// count within a fixed sparsity budget, the V-cycle's iteration count is
/// h-independent: on large grids it wins on modelled wall-time even
/// though one application costs several stencil sweeps — the trade
/// bench_mg.cpp measures.
///
/// With matching pre/post smoothing the cycle is symmetric positive
/// definite for symmetric operators (transfers are exact transposes, the
/// smoothers are D-symmetric), so it is safe inside CG as well as
/// BiCGSTAB.  A species-coupled fine operator is handled by smoothing
/// with the full operator while the coarse hierarchy preconditions the
/// diffusion part only.

#include <memory>
#include <string>

#include "linalg/mg/hierarchy.hpp"
#include "linalg/mg/smoother.hpp"
#include "linalg/precond.hpp"

namespace v2d::linalg::mg {

class MgPrecond final : public Preconditioner {
public:
  /// Build hierarchy + smoother from `A`; `ctx` prices the setup.
  MgPrecond(ExecContext& ctx, const StencilOperator& A, MgOptions opt = {});

  /// y ← (one V-cycle on A·y = x starting from y = 0).
  void apply(ExecContext& ctx, DistVector& x, DistVector& y) override;

  std::string name() const override { return "mg"; }

  const MgHierarchy& hierarchy() const { return hierarchy_; }

private:
  void vcycle(ExecContext& ctx, int l, DistVector& x, DistVector& b);
  void coarse_solve(ExecContext& ctx, DistVector& x, DistVector& b);

  MgHierarchy hierarchy_;
  std::unique_ptr<Smoother> smoother_;
};

}  // namespace v2d::linalg::mg
