#pragma once
/// \file smoother.hpp
/// \brief Multigrid smoothers: weighted Jacobi and Chebyshev.
///
/// Both smoothers are pointwise (no triangular solves), matching the V2D
/// philosophy that every solver component must vectorize as a stencil or
/// streaming sweep — the same property the paper's SPAI preconditioner
/// was chosen for.  Both are symmetric in the D-inner product, so a
/// V-cycle with equal pre-/post-smoothing remains a valid CG
/// preconditioner:
///
///   jacobi     x ← x + ω·D⁻¹·(b − A·x), ω default 0.8
///   chebyshev  degree-k Chebyshev polynomial of D⁻¹A targeted at the
///              upper spectrum [λ_max/boost, λ_max], λ_max from the
///              Gershgorin bound computed during hierarchy setup.
///
/// The matvec inside each step is the level operator's stencil sweep,
/// priced under KernelFamily::Precond so preconditioning cost stays
/// separable from the Krylov matvec in the ledgers.

#include <memory>
#include <string>

#include "linalg/mg/hierarchy.hpp"

namespace v2d::linalg::mg {

class Smoother {
public:
  virtual ~Smoother() = default;

  /// Run `steps` smoothing iterations on A·x = b at level `lvl`.  When
  /// `zero_guess` is set, x is treated as all-zero (its contents are
  /// overwritten; the first half-step saves one operator application).
  virtual void smooth(ExecContext& ctx, MgLevel& lvl, DistVector& x,
                      DistVector& b, int steps, bool zero_guess) const = 0;

  virtual std::string name() const = 0;
};

class WeightedJacobiSmoother final : public Smoother {
public:
  explicit WeightedJacobiSmoother(double omega) : omega_(omega) {}
  void smooth(ExecContext& ctx, MgLevel& lvl, DistVector& x, DistVector& b,
              int steps, bool zero_guess) const override;
  std::string name() const override { return "jacobi"; }

private:
  double omega_;
};

class ChebyshevSmoother final : public Smoother {
public:
  /// `steps` in smooth() is the polynomial degree (one operator
  /// application per degree, like one per Jacobi step).
  explicit ChebyshevSmoother(double boost) : boost_(boost) {}
  void smooth(ExecContext& ctx, MgLevel& lvl, DistVector& x, DistVector& b,
              int steps, bool zero_guess) const override;
  std::string name() const override { return "chebyshev"; }

private:
  double boost_;
};

/// Factory from the hierarchy options ("jacobi" | "chebyshev").
std::unique_ptr<Smoother> make_smoother(const MgOptions& opt);

}  // namespace v2d::linalg::mg
