#include "linalg/mg/mg_precond.hpp"

#include <algorithm>
#include <vector>

#include "linalg/mg/transfer.hpp"
#include "support/error.hpp"
#include "support/task_graph.hpp"

namespace v2d::linalg::mg {

using compiler::KernelFamily;

MgPrecond::MgPrecond(ExecContext& ctx, const StencilOperator& A, MgOptions opt)
    : hierarchy_(ctx, A, std::move(opt)),
      smoother_(make_smoother(hierarchy_.options())) {}

void MgPrecond::apply(ExecContext& ctx, DistVector& x, DistVector& y) {
  // Standalone applications (tests, smoothing studies) get their own
  // task-graph session; inside a Krylov solver's region this joins the
  // outer session instead of opening a nested one.
  task_graph::GraphRegion graph(ctx.sched == HostSched::Graph);
  vcycle(ctx, 0, y, x);
}

void MgPrecond::vcycle(ExecContext& ctx, int l, DistVector& x, DistVector& b) {
  MgLevel& lvl = hierarchy_.level(l);
  if (l == hierarchy_.nlevels() - 1) {
    coarse_solve(ctx, x, b);
    return;
  }
  const MgOptions& opt = hierarchy_.options();
  // Every V-cycle level starts from a zero correction.
  smoother_->smooth(ctx, lvl, x, b, opt.nu_pre, /*zero_guess=*/true);
  if (ctx.fused()) {
    lvl.op->apply_residual_as(ctx, x, b, lvl.r, KernelFamily::Precond,
                              "mg-residual");
  } else {
    lvl.op->apply_as(ctx, x, lvl.r, KernelFamily::Precond, "mg-residual");
    lvl.r.assign_sub(ctx, b, lvl.r);
  }

  MgLevel& next = hierarchy_.level(l + 1);
  restrict_full_weighting(ctx, lvl.r, *next.b);
  vcycle(ctx, l + 1, *next.x, *next.b);
  prolong_bilinear_add(ctx, *next.x, x);

  smoother_->smooth(ctx, lvl, x, b, opt.nu_post, /*zero_guess=*/false);
}

void MgPrecond::coarse_solve(ExecContext& ctx, DistVector& x, DistVector& b) {
  const BandedLU& lu = hierarchy_.coarse_lu();
  // Gather the coarse rhs to every rank (modelled as one allreduce of the
  // full coarse vector), solve redundantly, keep the owned tile.
  std::vector<double> rhs = b.field().gather_global();
  ctx.allreduce(rhs.size() * sizeof(double), "mg-coarse-gather");
  lu.solve(rhs);

  const auto& dec = x.field().decomp();
  const grid::Grid2D& g = x.field().grid();
  const auto n = static_cast<std::uint64_t>(lu.size());
  par_ranks(ctx, dec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < x.ns(); ++s) {
      grid::TileView xv = x.field().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj)
        for (int li = 0; li < e.ni; ++li)
          xv(li, lj) = rhs[static_cast<std::size_t>(
              g.linear_index(s, e.i0 + li, e.j0 + lj))];
    }
    // Each rank runs the identical banded solve: ~2·(kl+ku) flops per row
    // over a (kl+ku+1)-wide band working set.
    rctx.commit_synthetic(
        r, KernelFamily::Precond, "mg-coarse-solve", n,
        lu.solve_flops() / std::max<std::uint64_t>(1, n), 32, 8,
        n * 8 *
            static_cast<std::uint64_t>(lu.lower_bandwidth() +
                                       lu.upper_bandwidth() + 1));
  });
}

}  // namespace v2d::linalg::mg
