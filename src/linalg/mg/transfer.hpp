#pragma once
/// \file transfer.hpp
/// \brief Inter-grid transfer kernels of the geometric multigrid hierarchy.
///
/// Cell-centred transfers between a fine level and its factor-2 coarse
/// level (parent-aligned tiles, see hierarchy.hpp):
///
///   Prolongation P — bilinear interpolation.  A fine zone reads its
///   parent coarse zone with weight 3/4 per direction and the
///   parity-adjacent neighbour with weight 1/4, tensor-product in 2-D
///   (9/16, 3/16, 3/16, 1/16).  Reaches diagonally, so the coarse field's
///   corner ghosts must be valid: the kernel runs exchange_ghosts_full().
///
///   Restriction R — full weighting, constructed as the exact transpose
///   R = (1/4)·Pᵀ (the 1/4 keeps row sums at one, so constants restrict
///   to constants).  Separable 1-D weights (1/4, 3/4, 3/4, 1/4) over the
///   four fine zones 2c−1 … 2c+2 per direction.
///
/// Both operators use zero extension at the physical boundary (Dirichlet0
/// ghosts), consistently on both sides, which preserves the transpose
/// pairing exactly — the property the symmetric V-cycle needs to stay a
/// valid CG preconditioner.  Kernels are VLA-recorded (gather loads for
/// the stride-2 / stride-1/2 access) and priced per rank through
/// ExecContext like every other kernel.

#include "linalg/dist_vector.hpp"

namespace v2d::linalg::mg {

/// coarse ← R·fine (full weighting).  Refreshes the fine field's ghosts
/// (corner-filled, Dirichlet0) and prices the halo exchange.
void restrict_full_weighting(ExecContext& ctx, DistVector& fine,
                             DistVector& coarse);

/// fine ← fine + P·coarse (bilinear, additive — the coarse-grid
/// correction).  Refreshes the coarse field's ghosts (corner-filled,
/// Dirichlet0) and prices the halo exchange.
void prolong_bilinear_add(ExecContext& ctx, DistVector& coarse,
                          DistVector& fine);

}  // namespace v2d::linalg::mg
