#include "linalg/mg/hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace v2d::linalg::mg {

using compiler::KernelFamily;

MgLevel::MgLevel(const grid::Grid2D& g, const grid::Decomposition& d,
                 const StencilOperator& a, bool with_solution)
    : grid(&g),
      decomp(&d),
      op(&a),
      dinv(g, d, a.ns(), 1),
      r(g, d, a.ns()),
      z(g, d, a.ns()),
      p(g, d, a.ns()) {
  if (with_solution) {
    x = std::make_unique<DistVector>(g, d, a.ns());
    b = std::make_unique<DistVector>(g, d, a.ns());
  }
}

bool MgHierarchy::can_coarsen(const grid::Grid2D& g,
                              const grid::Decomposition& d,
                              const MgOptions& opt) {
  if (std::min(g.nx1(), g.nx2()) <= opt.coarse_size) return false;
  if (g.nx1() % 2 != 0 || g.nx2() % 2 != 0) return false;
  // Parent alignment needs every tile boundary on an even zone index.
  for (int r = 0; r < d.nranks(); ++r) {
    const grid::TileExtent& e = d.extent(r);
    if (e.i0 % 2 != 0 || e.j0 % 2 != 0 || e.ni % 2 != 0 || e.nj % 2 != 0)
      return false;
  }
  return true;
}

namespace {

/// Galerkin coarsening with piecewise-constant transfers: every coarse
/// five-point coefficient is (1/4)·Σ of the matching children entries.
/// All reads are in-tile (children of an aligned coarse tile are exactly
/// the rank's fine zones), so no ghost exchange is needed.
void galerkin_coarsen(ExecContext& ctx, const StencilOperator& fineA,
                      StencilOperator& coarseA) {
  auto& ff = const_cast<StencilOperator&>(fineA);
  const auto& cdec = coarseA.decomp();
  const auto& fdec = fineA.decomp();
  par_ranks(ctx, cdec, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& ce = cdec.extent(r);
    const grid::TileExtent& fe = fdec.extent(r);
    V2D_REQUIRE(fe.ni == 2 * ce.ni && fe.nj == 2 * ce.nj,
                "coarse tiles must be parent-aligned");
    for (int s = 0; s < fineA.ns(); ++s) {
      grid::TileView fcc = ff.cc().view(r, s), fcw = ff.cw().view(r, s),
                     fce = ff.ce().view(r, s), fcs = ff.cs().view(r, s),
                     fcn = ff.cn().view(r, s);
      grid::TileView ccc = coarseA.cc().view(r, s),
                     ccw = coarseA.cw().view(r, s),
                     cce = coarseA.ce().view(r, s),
                     ccs = coarseA.cs().view(r, s),
                     ccn = coarseA.cn().view(r, s);
      for (int cj = 0; cj < ce.nj; ++cj) {
        for (int ci = 0; ci < ce.ni; ++ci) {
          const int fi = 2 * ci, fj = 2 * cj;
          ccw(ci, cj) = 0.25 * (fcw(fi, fj) + fcw(fi, fj + 1));
          cce(ci, cj) = 0.25 * (fce(fi + 1, fj) + fce(fi + 1, fj + 1));
          ccs(ci, cj) = 0.25 * (fcs(fi, fj) + fcs(fi + 1, fj));
          ccn(ci, cj) = 0.25 * (fcn(fi, fj + 1) + fcn(fi + 1, fj + 1));
          // Diagonal: the children's diagonals plus the couplings that
          // become internal to the 2×2 aggregate.
          ccc(ci, cj) =
              0.25 * (fcc(fi, fj) + fcc(fi + 1, fj) + fcc(fi, fj + 1) +
                      fcc(fi + 1, fj + 1) + fce(fi, fj) + fce(fi, fj + 1) +
                      fcw(fi + 1, fj) + fcw(fi + 1, fj + 1) + fcn(fi, fj) +
                      fcn(fi + 1, fj) + fcs(fi, fj + 1) + fcs(fi + 1, fj + 1));
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(ce.ni) * ce.nj *
                          static_cast<std::uint64_t>(fineA.ns());
    // ~16 flops/zone over 20 reads, 5 writes.
    rctx.commit_synthetic(r, KernelFamily::PrecondBuild, "mg-build", elements,
                          16, 160, 40, elements * 200);
  });
}

/// Fill dinv = 1/diag(A) and return the Gershgorin bound on λ(D⁻¹A).
double invert_diagonal(ExecContext& ctx, const StencilOperator& A,
                       grid::DistField& dinv) {
  auto& a = const_cast<StencilOperator&>(A);
  const auto& dec = A.decomp();
  // Per-rank Gershgorin partials, max-merged after the parallel region
  // (max is order-independent, so the bound is thread-count-invariant).
  std::vector<double> lam_rank(static_cast<std::size_t>(dec.nranks()), 0.0);
  par_ranks(ctx, dec, [&](int r, ExecContext& rctx) {
    double lam = 0.0;
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      grid::TileView cc = a.cc().view(r, s), cw = a.cw().view(r, s),
                     ce = a.ce().view(r, s), cs = a.cs().view(r, s),
                     cn = a.cn().view(r, s);
      // The level-0 smoother applies the full operator including the
      // species-coupling band, so the spectrum bound must count it too.
      const grid::TileView* sp = nullptr;
      grid::TileView sp_view;
      if (A.coupled()) {
        sp_view = a.csp().view(r, s);
        sp = &sp_view;
      }
      grid::TileView dv = dinv.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const double d = cc(li, lj);
          V2D_REQUIRE(d != 0.0, "multigrid needs a nonzero diagonal");
          dv(li, lj) = 1.0 / d;
          const double row = std::fabs(cc(li, lj)) + std::fabs(cw(li, lj)) +
                             std::fabs(ce(li, lj)) + std::fabs(cs(li, lj)) +
                             std::fabs(cn(li, lj)) +
                             (sp ? std::fabs((*sp)(li, lj)) : 0.0);
          lam = std::max(lam, row / std::fabs(d));
        }
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj *
                          static_cast<std::uint64_t>(A.ns());
    rctx.commit_synthetic(r, KernelFamily::PrecondBuild, "mg-build", elements,
                          8, 48, 8, elements * 56);
    lam_rank[static_cast<std::size_t>(r)] = lam;
  });
  double lam = 0.0;
  for (const double l : lam_rank) lam = std::max(lam, l);
  return lam;
}

}  // namespace

MgHierarchy::MgHierarchy(ExecContext& ctx, const StencilOperator& A,
                         MgOptions opt)
    : opt_(std::move(opt)) {
  V2D_REQUIRE(opt_.coarse_size >= 1 && opt_.max_levels >= 1,
              "bad multigrid options");
  V2D_REQUIRE(opt_.nu_pre >= 0 && opt_.nu_post >= 0 &&
                  opt_.nu_pre + opt_.nu_post >= 1,
              "multigrid needs at least one smoothing step per cycle "
              "(nu_pre + nu_post >= 1) — an unsmoothed coarse correction "
              "is singular");
  V2D_REQUIRE(opt_.jacobi_omega > 0.0, "weighted-Jacobi damping must be > 0");
  V2D_REQUIRE(opt_.cheb_boost > 1.0, "Chebyshev boost must exceed 1");
  // Level 0 smooths with a cached copy of the fine coefficients: they are
  // frozen for the lifetime of one preconditioner, so the cycle's many
  // sweeps skip V2D's per-application on-the-fly coefficient evaluation —
  // the same storage-for-evaluation trade the SPAI operator makes.
  auto cached = std::make_unique<StencilOperator>(A.grid(), A.decomp(),
                                                  A.ns());
  cached->cc() = A.cc();
  cached->cw() = A.cw();
  cached->ce() = A.ce();
  cached->cs() = A.cs();
  cached->cn() = A.cn();
  if (A.coupled()) {
    cached->enable_coupling();
    cached->csp() = A.csp();
  }
  par_ranks(ctx, A.decomp(), [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = A.decomp().extent(r);
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj *
                          static_cast<std::uint64_t>(A.ns());
    // Evaluate-once: the stored-coefficient fill costs one evaluation
    // sweep (the same per-element price a single matvec would pay).
    rctx.commit_synthetic(r, KernelFamily::PrecondBuild, "mg-build", elements,
                          kMatvecEvalFlops, kMatvecEvalDoublesRead * 8, 40,
                          elements * 48);
  });
  levels_.push_back(std::make_unique<MgLevel>(A.grid(), A.decomp(), *cached,
                                              /*with_solution=*/false));
  levels_.back()->owned_op = std::move(cached);
  levels_.back()->lambda_max =
      invert_diagonal(ctx, *levels_.back()->op, levels_.back()->dinv);

  while (nlevels() < opt_.max_levels &&
         can_coarsen(*levels_.back()->grid, *levels_.back()->decomp, opt_)) {
    const MgLevel& fine = *levels_.back();
    const grid::Grid2D& fg = *fine.grid;
    auto cg = std::make_unique<grid::Grid2D>(
        fg.nx1() / 2, fg.nx2() / 2, fg.x1f(0), fg.x1f(fg.nx1()), fg.x2f(0),
        fg.x2f(fg.nx2()), fg.coord());

    std::vector<grid::TileExtent> extents;
    extents.reserve(static_cast<std::size_t>(fine.decomp->nranks()));
    for (int r = 0; r < fine.decomp->nranks(); ++r) {
      const grid::TileExtent& e = fine.decomp->extent(r);
      extents.push_back(grid::TileExtent{e.i0 / 2, e.j0 / 2, e.ni / 2,
                                         e.nj / 2});
    }
    auto cd = std::make_unique<grid::Decomposition>(
        *cg, fine.decomp->topology(), std::move(extents));
    auto ca = std::make_unique<StencilOperator>(*cg, *cd, A.ns());
    galerkin_coarsen(ctx, *fine.op, *ca);

    auto lvl = std::make_unique<MgLevel>(*cg, *cd, *ca,
                                         /*with_solution=*/true);
    lvl->owned_grid = std::move(cg);
    lvl->owned_decomp = std::move(cd);
    lvl->owned_op = std::move(ca);
    lvl->lambda_max = invert_diagonal(ctx, *lvl->op, lvl->dinv);
    levels_.push_back(std::move(lvl));
  }

  // Coarsest level: assemble and factor once; every rank solves the small
  // system redundantly after a gather, so the factorization is priced on
  // each rank.
  const MgLevel& coarsest = *levels_.back();
  if (coarsest.grid->zones() > opt_.max_direct_zones) {
    std::string cause;
    if (nlevels() >= opt_.max_levels) {
      cause = "the max_levels cap (" + std::to_string(opt_.max_levels) +
              ") was reached — raise mg-levels";
    } else if (std::min(coarsest.grid->nx1(), coarsest.grid->nx2()) <=
               opt_.coarse_size) {
      cause = "coarse_size (" + std::to_string(opt_.coarse_size) +
              ") was reached — lower mg-coarse-size";
    } else {
      cause =
          "a tile boundary sits on an odd zone index, which would break "
          "parent alignment — choose NPRX1/NPRX2 that split the grid "
          "into even tiles (powers of two work best)";
    }
    throw Error("multigrid coarsening stalled at " +
                std::to_string(coarsest.grid->nx1()) + "x" +
                std::to_string(coarsest.grid->nx2()) +
                " zones (> max_direct_zones = " +
                std::to_string(opt_.max_direct_zones) + "): " + cause +
                ", or raise max_direct_zones if a large direct solve is "
                "intended");
  }
  coarse_lu_ = std::make_unique<BandedLU>(coarsest.op->assemble());
  const auto n = static_cast<std::uint64_t>(coarsest.op->size());
  par_ranks(ctx, *coarsest.decomp, [&](int r, ExecContext& rctx) {
    rctx.commit_synthetic(r, KernelFamily::PrecondBuild, "mg-coarse-factor", n,
                          coarse_lu_->factor_flops() / std::max<std::uint64_t>(
                                                           1, n),
                          16, 16, n * 8 *
                              static_cast<std::uint64_t>(
                                  coarse_lu_->lower_bandwidth() +
                                  coarse_lu_->upper_bandwidth() + 1));
  });
}

}  // namespace v2d::linalg::mg
