#pragma once
/// \file kernels_native.hpp
/// \brief Native raw-pointer fast paths for the Table II kernels.
///
/// These are the VlaExecMode::Native implementations behind the dispatch in
/// kernels.cpp (and the multigrid row kernels behind mg/smoother.cpp and
/// mg/transfer.cpp).  Each routine is a plain strided loop written so the
/// host compiler can auto-vectorize it, and each reproduces the interpreter
/// backend bit-for-bit:
///
///   - elementwise kernels evaluate the same per-element expression in the
///     same association order the vla::Context ops use;
///   - reductions keep the interpreter's strip-wise lane accumulators (VL
///     partial sums, lane l accumulating elements i ≡ l mod VL) and perform
///     the single final horizontal reduce in lane order.
///
/// No vla::Context is touched here — recording for the fast path is
/// produced analytically by kernel_counts.hpp.

#include <cstddef>
#include <cstdint>

#include "support/dd.hpp"

namespace v2d::linalg::native {

/// DPROD with the interpreter's strip-wise accumulation order: `vl` partial
/// accumulators carried across strips, one horizontal reduce at the end.
double dprod(const double* x, const double* y, std::size_t n, unsigned vl);

/// y ← a·x + y
void daxpy(double a, const double* x, double* y, std::size_t n);

/// y ← c − d·y  (computed as c + (−d)·y, matching the interpreter)
void dscal(double c, double d, double* y, std::size_t n);

/// z ← a·x + b·y + z  (two chained FMAs: t = a·x + z; z = b·y + t)
void ddaxpy(double a, const double* x, double b, const double* y, double* z,
            std::size_t n);

/// y ← x + b·y
void xpby(const double* x, double b, double* y, std::size_t n);

/// y ← x
void copy(const double* x, double* y, std::size_t n);

/// y ← a
void fill(double a, double* y, std::size_t n);

/// z ← x − y
void sub(const double* x, const double* y, double* z, std::size_t n);

/// z ← x ⊙ y
void hadamard(const double* x, const double* y, double* z, std::size_t n);

/// Five-point stencil row:
///   y_i ← cc_i·xc_i + cw_i·xc_{i−1} + ce_i·xc_{i+1} + cs_i·xs_i + cn_i·xn_i
/// accumulated in exactly that order.
void stencil_row(const double* cc, const double* cw, const double* ce,
                 const double* cs, const double* cn, const double* xc,
                 const double* xs, const double* xn, double* y, std::size_t n);

/// y ← y + csp ⊙ xo
void coupling_row(const double* csp, const double* xo, double* y,
                  std::size_t n);

/// x ← x + ω·(d ⊙ r)   (weighted-Jacobi correction row)
void diag_correct_row(double omega, const double* d, const double* r,
                      double* x, std::size_t n);

/// z ← ω·(d ⊙ r)   (scaled diagonal application row)
void diag_scale_row(double omega, const double* d, const double* r, double* z,
                    std::size_t n);

/// One coarse row of full-weighting restriction.  `fine[dj]` are the four
/// fine rows 2·cj−1 … 2·cj+2 (each with a readable ghost on both sides);
/// `fm1`/`f0`/`f1`/`f2` are the same gather-index tables the interpreter
/// uses (2c−1 … 2c+2); separable weights (1/4, 3/4, 3/4, 1/4)/4, summed in
/// the interpreter's dj-major order.
void restrict_row(const double* const fine[4], const std::int64_t* fm1,
                  const std::int64_t* f0, const std::int64_t* f1,
                  const std::int64_t* f2, double* coarse, std::size_t n);

/// One fine row of bilinear prolongation (additive).  `cnear`/`cfar` are
/// the parent and parity-adjacent coarse rows, indexed through the
/// interpreter's `near`/`far` gather tables (parent / parity-adjacent;
/// ghosts readable at the ends).
void prolong_row_add(const double* cnear, const double* cfar,
                     const std::int64_t* near, const std::int64_t* far,
                     double* fine, std::size_t n);

// --- fused composites (FuseMode::On) ----------------------------------------
//
// Each fused kernel keeps the unfused per-element expressions and
// association order, so FuseMode::On reproduces the unfused trajectory
// bit-for-bit; reductions accumulate through the caller's DdAccumulator
// (compensated, order-fixed) exactly like DistVector::dot_ganged, so the
// result stays tiling- and thread-count-independent.  The elementwise part
// of every kernel is a plain loop the compiler can auto-vectorize; the
// compensated dot tail is a separate serial loop over the (cache-hot) row.

// The fused stencil rows and DAXPY₂ are planner-generated now — their
// native kernels are stamped from the fusion template set
// (src/linalg/fusion/fused_exec.cpp) instead of being hand-written here.

/// Fused COPY+DAXPY: z ← x + a·y.
void axpy_out(const double* x, double a, const double* y, double* z,
              std::size_t n);

/// Fused BiCGSTAB p-update: p ← r + b·(p − w·v), computed as the unfused
/// chain t = v·(−w) + p; p = t·b + r.
void p_update(const double* r, double b, double w, const double* v, double* p,
              std::size_t n);

/// Fused precond apply + 2-dot gang: z ← m ⊙ r, then rz += Σ z_i·r_i and
/// rr += Σ r_i·r_i compensated in element order.
void hadamard_dot2(const double* m, const double* r, double* z, std::size_t n,
                   DdAccumulator& rz, DdAccumulator& rr);

/// The CG tail composite: r ← r + a·q folded into the precond+gang sweep
/// (hadamard_dot2 over the updated residual).
void hadamard_update_dot2(const double* m, double a, const double* q,
                          double* r, double* z, std::size_t n,
                          DdAccumulator& rz, DdAccumulator& rr);

}  // namespace v2d::linalg::native
