#include "linalg/kernels.hpp"

#include "linalg/fusion/fused_exec.hpp"
#include "linalg/kernel_counts.hpp"
#include "linalg/kernels_native.hpp"
#include "support/error.hpp"

namespace v2d::linalg {

using vla::Context;
using vla::Predicate;
using vla::VReg;

double dprod(Context& ctx, std::span<const double> x,
             std::span<const double> y) {
  V2D_REQUIRE(x.size() == y.size(), "dprod: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Dprod, x.size());
    return native::dprod(x.data(), y.data(), x.size(), ctx.lanes());
  }
  return vla::strip_reduce(ctx, x.size(),
                           [&](std::uint64_t i, const Predicate& p, VReg acc) {
                             const VReg vx = ctx.ld1(p, &x[i]);
                             const VReg vy = ctx.ld1(p, &y[i]);
                             // Merging form: a zeroing tail strip would
                             // clobber the accumulator's inactive lanes.
                             return ctx.fma_merge(p, vx, vy, acc);
                           });
}

void dprod_record_only(Context& ctx, std::uint64_t n) {
  record_analytic(ctx, KernelShape::Dprod, n);
}

void daxpy(Context& ctx, double a, std::span<const double> x,
           std::span<double> y) {
  V2D_REQUIRE(x.size() == y.size(), "daxpy: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Daxpy, x.size());
    native::daxpy(a, x.data(), y.data(), x.size());
    return;
  }
  const VReg va = ctx.dup(a);
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vx, va, vy));
  });
}

void dscal(Context& ctx, double c, double d, std::span<double> y) {
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Dscal, y.size());
    native::dscal(c, d, y.data(), y.size());
    return;
  }
  const VReg vc = ctx.dup(c);
  const VReg vd = ctx.dup(-d);
  vla::strip_mine(ctx, y.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vy, vd, vc));  // c + (−d)·y
  });
}

void ddaxpy(Context& ctx, double a, std::span<const double> x, double b,
            std::span<const double> y, std::span<double> z) {
  V2D_REQUIRE(x.size() == y.size() && y.size() == z.size(),
              "ddaxpy: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Ddaxpy, x.size());
    native::ddaxpy(a, x.data(), b, y.data(), z.data(), x.size());
    return;
  }
  const VReg va = ctx.dup(a);
  const VReg vb = ctx.dup(b);
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    const VReg vz = ctx.ld1(p, &z[i]);
    const VReg t = ctx.fma(p, vx, va, vz);
    ctx.st1(p, &z[i], ctx.fma(p, vy, vb, t));
  });
}

void xpby(Context& ctx, std::span<const double> x, double b,
          std::span<double> y) {
  V2D_REQUIRE(x.size() == y.size(), "xpby: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Xpby, x.size());
    native::xpby(x.data(), b, y.data(), x.size());
    return;
  }
  const VReg vb = ctx.dup(b);
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vy, vb, vx));
  });
}

void copy(Context& ctx, std::span<const double> x, std::span<double> y) {
  V2D_REQUIRE(x.size() == y.size(), "copy: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Copy, x.size());
    native::copy(x.data(), y.data(), x.size());
    return;
  }
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    ctx.st1(p, &y[i], ctx.ld1(p, &x[i]));
  });
}

void fill(Context& ctx, double a, std::span<double> y) {
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Fill, y.size());
    native::fill(a, y.data(), y.size());
    return;
  }
  const VReg va = ctx.dup(a);
  vla::strip_mine(ctx, y.size(), [&](std::uint64_t i, const Predicate& p) {
    ctx.st1(p, &y[i], va);
  });
}

void sub(Context& ctx, std::span<const double> x, std::span<const double> y,
         std::span<double> z) {
  V2D_REQUIRE(x.size() == y.size() && y.size() == z.size(),
              "sub: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Sub, x.size());
    native::sub(x.data(), y.data(), z.data(), x.size());
    return;
  }
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &z[i], ctx.sub(p, vx, vy));
  });
}

void hadamard(Context& ctx, std::span<const double> x,
              std::span<const double> y, std::span<double> z) {
  V2D_REQUIRE(x.size() == y.size() && y.size() == z.size(),
              "hadamard: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Hadamard, x.size());
    native::hadamard(x.data(), y.data(), z.data(), x.size());
    return;
  }
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &z[i], ctx.mul(p, vx, vy));
  });
}

void stencil_row(Context& ctx, std::span<const double> cc,
                 std::span<const double> cw, std::span<const double> ce,
                 std::span<const double> cs, std::span<const double> cn,
                 const double* xc, const double* xs, const double* xn,
                 std::span<double> y) {
  const std::size_t n = y.size();
  V2D_REQUIRE(cc.size() == n && cw.size() == n && ce.size() == n &&
                  cs.size() == n && cn.size() == n,
              "stencil_row: coefficient length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::StencilRow, n);
    native::stencil_row(cc.data(), cw.data(), ce.data(), cs.data(), cn.data(),
                        xc, xs, xn, y.data(), n);
    return;
  }
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vcc = ctx.ld1(p, &cc[i]);
    const VReg vxc = ctx.ld1(p, xc + i);
    VReg acc = ctx.mul(p, vcc, vxc);
    const VReg vcw = ctx.ld1(p, &cw[i]);
    const VReg vxw = ctx.ld1(p, xc + i - 1);  // unaligned shifted load
    acc = ctx.fma(p, vcw, vxw, acc);
    const VReg vce = ctx.ld1(p, &ce[i]);
    const VReg vxe = ctx.ld1(p, xc + i + 1);
    acc = ctx.fma(p, vce, vxe, acc);
    const VReg vcs = ctx.ld1(p, &cs[i]);
    const VReg vxs = ctx.ld1(p, xs + i);
    acc = ctx.fma(p, vcs, vxs, acc);
    const VReg vcn = ctx.ld1(p, &cn[i]);
    const VReg vxn = ctx.ld1(p, xn + i);
    acc = ctx.fma(p, vcn, vxn, acc);
    ctx.st1(p, &y[i], acc);
  });
}

// stencil_row_fused and daxpy2 are planner-generated: the bespoke
// interpreter/native/counts triples were replaced by the fusion layer's
// compile-time plans (src/linalg/fusion/), which reproduce the identical
// recordings and bit-identical numerics.  The entry points stay so call
// sites (and the equivalence suite) are unchanged.

void stencil_row_fused(Context& ctx, std::span<const double> cc,
                       std::span<const double> cw, std::span<const double> ce,
                       std::span<const double> cs, std::span<const double> cn,
                       const double* xc, const double* xs, const double* xn,
                       const double* csp, const double* xo, const double* bsub,
                       const double* wdot, DdAccumulator* dot,
                       std::span<double> y) {
  fusion::stencil_row_fused(ctx, cc, cw, ce, cs, cn, xc, xs, xn, csp, xo,
                            bsub, wdot, dot, y);
}

void daxpy2(Context& ctx, double a, std::span<const double> p,
            std::span<double> x, double b, std::span<const double> q,
            std::span<double> r) {
  fusion::daxpy2(ctx, a, p, x, b, q, r);
}

void axpy_out(Context& ctx, std::span<const double> x, double a,
              std::span<const double> y, std::span<double> z) {
  const std::size_t n = z.size();
  V2D_REQUIRE(x.size() == n && y.size() == n, "axpy_out: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::AxpyOut, n);
    native::axpy_out(x.data(), a, y.data(), z.data(), n);
    return;
  }
  const VReg va = ctx.dup(a);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vy = ctx.ld1(p, &y[i]);
    const VReg vx = ctx.ld1(p, &x[i]);
    ctx.st1(p, &z[i], ctx.fma(p, vy, va, vx));
  });
}

void p_update(Context& ctx, std::span<const double> r, double b, double w,
              std::span<const double> v, std::span<double> p) {
  const std::size_t n = p.size();
  V2D_REQUIRE(r.size() == n && v.size() == n, "p_update: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::PUpdate, n);
    native::p_update(r.data(), b, w, v.data(), p.data(), n);
    return;
  }
  const VReg vmw = ctx.dup(-w);
  const VReg vb = ctx.dup(b);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& pr) {
    const VReg vv = ctx.ld1(pr, &v[i]);
    const VReg vp = ctx.ld1(pr, &p[i]);
    const VReg t = ctx.fma(pr, vv, vmw, vp);
    const VReg vr = ctx.ld1(pr, &r[i]);
    ctx.st1(pr, &p[i], ctx.fma(pr, t, vb, vr));
  });
}

void hadamard_dot2(Context& ctx, std::span<const double> m,
                   std::span<const double> r, std::span<double> z,
                   DdAccumulator& rz, DdAccumulator& rr) {
  const std::size_t n = z.size();
  V2D_REQUIRE(m.size() == n && r.size() == n, "hadamard_dot2: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::HadamardDot2, n);
    native::hadamard_dot2(m.data(), r.data(), z.data(), n, rz, rr);
    return;
  }
  VReg acc1 = ctx.dup(0.0);
  VReg acc2 = ctx.dup(0.0);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vm = ctx.ld1(p, &m[i]);
    const VReg vr = ctx.ld1(p, &r[i]);
    const VReg vz = ctx.mul(p, vm, vr);
    ctx.st1(p, &z[i], vz);
    acc1 = ctx.fma_merge(p, vz, vr, acc1);
    acc2 = ctx.fma_merge(p, vr, vr, acc2);
  });
  const Predicate full = ctx.ptrue();
  (void)ctx.reduce_add(full, acc1);
  (void)ctx.reduce_add(full, acc2);
  DdAccumulator a0 = rz, a1 = rr;
  for (std::size_t i = 0; i < n; ++i) {
    a0.add(z[i] * r[i]);
    a1.add(r[i] * r[i]);
  }
  rz = a0;
  rr = a1;
}

void hadamard_update_dot2(Context& ctx, std::span<const double> m, double a,
                          std::span<const double> q, std::span<double> r,
                          std::span<double> z, DdAccumulator& rz,
                          DdAccumulator& rr) {
  const std::size_t n = z.size();
  V2D_REQUIRE(m.size() == n && q.size() == n && r.size() == n,
              "hadamard_update_dot2: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::HadamardUpdateDot2, n);
    native::hadamard_update_dot2(m.data(), a, q.data(), r.data(), z.data(), n,
                                 rz, rr);
    return;
  }
  const VReg va = ctx.dup(a);
  VReg acc1 = ctx.dup(0.0);
  VReg acc2 = ctx.dup(0.0);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vq = ctx.ld1(p, &q[i]);
    const VReg vr0 = ctx.ld1(p, &r[i]);
    const VReg vr = ctx.fma(p, vq, va, vr0);
    ctx.st1(p, &r[i], vr);
    const VReg vm = ctx.ld1(p, &m[i]);
    const VReg vz = ctx.mul(p, vm, vr);
    ctx.st1(p, &z[i], vz);
    acc1 = ctx.fma_merge(p, vz, vr, acc1);
    acc2 = ctx.fma_merge(p, vr, vr, acc2);
  });
  const Predicate full = ctx.ptrue();
  (void)ctx.reduce_add(full, acc1);
  (void)ctx.reduce_add(full, acc2);
  DdAccumulator a0 = rz, a1 = rr;
  for (std::size_t i = 0; i < n; ++i) {
    a0.add(z[i] * r[i]);
    a1.add(r[i] * r[i]);
  }
  rz = a0;
  rr = a1;
}

void coupling_row(Context& ctx, std::span<const double> csp, const double* xo,
                  std::span<double> y) {
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::CouplingRow, y.size());
    native::coupling_row(csp.data(), xo, y.data(), y.size());
    return;
  }
  vla::strip_mine(ctx, y.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vc = ctx.ld1(p, &csp[i]);
    const VReg vx = ctx.ld1(p, xo + i);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vc, vx, vy));
  });
}

}  // namespace v2d::linalg
