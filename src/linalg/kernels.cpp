#include "linalg/kernels.hpp"

#include "linalg/kernel_counts.hpp"
#include "linalg/kernels_native.hpp"
#include "support/error.hpp"

namespace v2d::linalg {

using vla::Context;
using vla::Predicate;
using vla::VReg;

double dprod(Context& ctx, std::span<const double> x,
             std::span<const double> y) {
  V2D_REQUIRE(x.size() == y.size(), "dprod: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Dprod, x.size());
    return native::dprod(x.data(), y.data(), x.size(), ctx.lanes());
  }
  return vla::strip_reduce(ctx, x.size(),
                           [&](std::uint64_t i, const Predicate& p, VReg acc) {
                             const VReg vx = ctx.ld1(p, &x[i]);
                             const VReg vy = ctx.ld1(p, &y[i]);
                             // Merging form: a zeroing tail strip would
                             // clobber the accumulator's inactive lanes.
                             return ctx.fma_merge(p, vx, vy, acc);
                           });
}

void dprod_record_only(Context& ctx, std::uint64_t n) {
  record_analytic(ctx, KernelShape::Dprod, n);
}

void daxpy(Context& ctx, double a, std::span<const double> x,
           std::span<double> y) {
  V2D_REQUIRE(x.size() == y.size(), "daxpy: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Daxpy, x.size());
    native::daxpy(a, x.data(), y.data(), x.size());
    return;
  }
  const VReg va = ctx.dup(a);
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vx, va, vy));
  });
}

void dscal(Context& ctx, double c, double d, std::span<double> y) {
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Dscal, y.size());
    native::dscal(c, d, y.data(), y.size());
    return;
  }
  const VReg vc = ctx.dup(c);
  const VReg vd = ctx.dup(-d);
  vla::strip_mine(ctx, y.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vy, vd, vc));  // c + (−d)·y
  });
}

void ddaxpy(Context& ctx, double a, std::span<const double> x, double b,
            std::span<const double> y, std::span<double> z) {
  V2D_REQUIRE(x.size() == y.size() && y.size() == z.size(),
              "ddaxpy: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Ddaxpy, x.size());
    native::ddaxpy(a, x.data(), b, y.data(), z.data(), x.size());
    return;
  }
  const VReg va = ctx.dup(a);
  const VReg vb = ctx.dup(b);
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    const VReg vz = ctx.ld1(p, &z[i]);
    const VReg t = ctx.fma(p, vx, va, vz);
    ctx.st1(p, &z[i], ctx.fma(p, vy, vb, t));
  });
}

void xpby(Context& ctx, std::span<const double> x, double b,
          std::span<double> y) {
  V2D_REQUIRE(x.size() == y.size(), "xpby: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Xpby, x.size());
    native::xpby(x.data(), b, y.data(), x.size());
    return;
  }
  const VReg vb = ctx.dup(b);
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vy, vb, vx));
  });
}

void copy(Context& ctx, std::span<const double> x, std::span<double> y) {
  V2D_REQUIRE(x.size() == y.size(), "copy: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Copy, x.size());
    native::copy(x.data(), y.data(), x.size());
    return;
  }
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    ctx.st1(p, &y[i], ctx.ld1(p, &x[i]));
  });
}

void fill(Context& ctx, double a, std::span<double> y) {
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Fill, y.size());
    native::fill(a, y.data(), y.size());
    return;
  }
  const VReg va = ctx.dup(a);
  vla::strip_mine(ctx, y.size(), [&](std::uint64_t i, const Predicate& p) {
    ctx.st1(p, &y[i], va);
  });
}

void sub(Context& ctx, std::span<const double> x, std::span<const double> y,
         std::span<double> z) {
  V2D_REQUIRE(x.size() == y.size() && y.size() == z.size(),
              "sub: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Sub, x.size());
    native::sub(x.data(), y.data(), z.data(), x.size());
    return;
  }
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &z[i], ctx.sub(p, vx, vy));
  });
}

void hadamard(Context& ctx, std::span<const double> x,
              std::span<const double> y, std::span<double> z) {
  V2D_REQUIRE(x.size() == y.size() && y.size() == z.size(),
              "hadamard: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Hadamard, x.size());
    native::hadamard(x.data(), y.data(), z.data(), x.size());
    return;
  }
  vla::strip_mine(ctx, x.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &z[i], ctx.mul(p, vx, vy));
  });
}

void stencil_row(Context& ctx, std::span<const double> cc,
                 std::span<const double> cw, std::span<const double> ce,
                 std::span<const double> cs, std::span<const double> cn,
                 const double* xc, const double* xs, const double* xn,
                 std::span<double> y) {
  const std::size_t n = y.size();
  V2D_REQUIRE(cc.size() == n && cw.size() == n && ce.size() == n &&
                  cs.size() == n && cn.size() == n,
              "stencil_row: coefficient length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::StencilRow, n);
    native::stencil_row(cc.data(), cw.data(), ce.data(), cs.data(), cn.data(),
                        xc, xs, xn, y.data(), n);
    return;
  }
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vcc = ctx.ld1(p, &cc[i]);
    const VReg vxc = ctx.ld1(p, xc + i);
    VReg acc = ctx.mul(p, vcc, vxc);
    const VReg vcw = ctx.ld1(p, &cw[i]);
    const VReg vxw = ctx.ld1(p, xc + i - 1);  // unaligned shifted load
    acc = ctx.fma(p, vcw, vxw, acc);
    const VReg vce = ctx.ld1(p, &ce[i]);
    const VReg vxe = ctx.ld1(p, xc + i + 1);
    acc = ctx.fma(p, vce, vxe, acc);
    const VReg vcs = ctx.ld1(p, &cs[i]);
    const VReg vxs = ctx.ld1(p, xs + i);
    acc = ctx.fma(p, vcs, vxs, acc);
    const VReg vcn = ctx.ld1(p, &cn[i]);
    const VReg vxn = ctx.ld1(p, xn + i);
    acc = ctx.fma(p, vcn, vxn, acc);
    ctx.st1(p, &y[i], acc);
  });
}

void stencil_row_fused(Context& ctx, std::span<const double> cc,
                       std::span<const double> cw, std::span<const double> ce,
                       std::span<const double> cs, std::span<const double> cn,
                       const double* xc, const double* xs, const double* xn,
                       const double* csp, const double* xo, const double* bsub,
                       const double* wdot, DdAccumulator* dot,
                       std::span<double> y) {
  const std::size_t n = y.size();
  V2D_REQUIRE(cc.size() == n && cw.size() == n && ce.size() == n &&
                  cs.size() == n && cn.size() == n,
              "stencil_row_fused: coefficient length mismatch");
  V2D_REQUIRE((csp == nullptr) == (xo == nullptr),
              "stencil_row_fused: coupling needs both csp and xo");
  V2D_REQUIRE(bsub == nullptr || wdot == nullptr,
              "stencil_row_fused: residual and dot forms are exclusive");
  V2D_REQUIRE((wdot == nullptr) == (dot == nullptr),
              "stencil_row_fused: dot needs both w and an accumulator");
  V2D_REQUIRE(bsub != nullptr || wdot != nullptr,
              "stencil_row_fused: need a residual or dot operand "
              "(use stencil_row/coupling_row otherwise)");
  const bool coupled = csp != nullptr;
  if (ctx.native()) {
    if (wdot != nullptr) {
      const bool self = wdot == xc;
      record_analytic(ctx,
                      coupled ? (self ? KernelShape::CoupledStencilDotRow
                                      : KernelShape::CoupledStencilDotWRow)
                              : (self ? KernelShape::StencilDotRow
                                      : KernelShape::StencilDotWRow),
                      n);
      native::stencil_dot_row(cc.data(), cw.data(), ce.data(), cs.data(),
                              cn.data(), csp, xc, xs, xn, xo, wdot, y.data(),
                              n, *dot);
    } else if (bsub != nullptr) {
      record_analytic(ctx,
                      coupled ? KernelShape::CoupledStencilSubRow
                              : KernelShape::StencilSubRow,
                      n);
      if (coupled)
        native::coupled_stencil_sub_row(cc.data(), cw.data(), ce.data(),
                                        cs.data(), cn.data(), csp, xc, xs, xn,
                                        xo, bsub, y.data(), n);
      else
        native::stencil_sub_row(cc.data(), cw.data(), ce.data(), cs.data(),
                                cn.data(), xc, xs, xn, bsub, y.data(), n);
    }
    return;
  }

  VReg dacc{};
  if (dot != nullptr) dacc = ctx.dup(0.0);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vcc = ctx.ld1(p, &cc[i]);
    const VReg vxc = ctx.ld1(p, xc + i);
    VReg acc = ctx.mul(p, vcc, vxc);
    const VReg vcw = ctx.ld1(p, &cw[i]);
    const VReg vxw = ctx.ld1(p, xc + i - 1);
    acc = ctx.fma(p, vcw, vxw, acc);
    const VReg vce = ctx.ld1(p, &ce[i]);
    const VReg vxe = ctx.ld1(p, xc + i + 1);
    acc = ctx.fma(p, vce, vxe, acc);
    const VReg vcs = ctx.ld1(p, &cs[i]);
    const VReg vxs = ctx.ld1(p, xs + i);
    acc = ctx.fma(p, vcs, vxs, acc);
    const VReg vcn = ctx.ld1(p, &cn[i]);
    const VReg vxn = ctx.ld1(p, xn + i);
    acc = ctx.fma(p, vcn, vxn, acc);
    if (coupled) {
      const VReg vsp = ctx.ld1(p, csp + i);
      const VReg vxo = ctx.ld1(p, xo + i);
      acc = ctx.fma(p, vsp, vxo, acc);
    }
    if (bsub != nullptr) {
      const VReg vb = ctx.ld1(p, bsub + i);
      ctx.st1(p, &y[i], ctx.sub(p, vb, acc));
    } else {
      ctx.st1(p, &y[i], acc);
    }
    if (dot != nullptr) {
      const VReg vw = wdot == xc ? vxc : ctx.ld1(p, wdot + i);
      dacc = ctx.fma_merge(p, vw, acc, dacc);
    }
  });
  if (dot != nullptr) {
    // The lane-accumulated value is the hardware's; the returned result is
    // the compensated sum below, identical in both exec modes (and to the
    // unfused dot_ganged).
    const Predicate full = ctx.ptrue();
    (void)ctx.reduce_add(full, dacc);
    DdAccumulator a = *dot;
    for (std::size_t i = 0; i < n; ++i) a.add(wdot[i] * y[i]);
    *dot = a;
  }
}

void daxpy2(Context& ctx, double a, std::span<const double> p,
            std::span<double> x, double b, std::span<const double> q,
            std::span<double> r) {
  const std::size_t n = x.size();
  V2D_REQUIRE(p.size() == n && q.size() == n && r.size() == n,
              "daxpy2: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::Daxpy2, n);
    native::daxpy2(a, p.data(), x.data(), b, q.data(), r.data(), n);
    return;
  }
  const VReg va = ctx.dup(a);
  const VReg vb = ctx.dup(b);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& pr) {
    const VReg vp = ctx.ld1(pr, &p[i]);
    const VReg vx = ctx.ld1(pr, &x[i]);
    ctx.st1(pr, &x[i], ctx.fma(pr, vp, va, vx));
    const VReg vq = ctx.ld1(pr, &q[i]);
    const VReg vr = ctx.ld1(pr, &r[i]);
    ctx.st1(pr, &r[i], ctx.fma(pr, vq, vb, vr));
  });
}

void axpy_out(Context& ctx, std::span<const double> x, double a,
              std::span<const double> y, std::span<double> z) {
  const std::size_t n = z.size();
  V2D_REQUIRE(x.size() == n && y.size() == n, "axpy_out: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::AxpyOut, n);
    native::axpy_out(x.data(), a, y.data(), z.data(), n);
    return;
  }
  const VReg va = ctx.dup(a);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vy = ctx.ld1(p, &y[i]);
    const VReg vx = ctx.ld1(p, &x[i]);
    ctx.st1(p, &z[i], ctx.fma(p, vy, va, vx));
  });
}

void p_update(Context& ctx, std::span<const double> r, double b, double w,
              std::span<const double> v, std::span<double> p) {
  const std::size_t n = p.size();
  V2D_REQUIRE(r.size() == n && v.size() == n, "p_update: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::PUpdate, n);
    native::p_update(r.data(), b, w, v.data(), p.data(), n);
    return;
  }
  const VReg vmw = ctx.dup(-w);
  const VReg vb = ctx.dup(b);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& pr) {
    const VReg vv = ctx.ld1(pr, &v[i]);
    const VReg vp = ctx.ld1(pr, &p[i]);
    const VReg t = ctx.fma(pr, vv, vmw, vp);
    const VReg vr = ctx.ld1(pr, &r[i]);
    ctx.st1(pr, &p[i], ctx.fma(pr, t, vb, vr));
  });
}

void hadamard_dot2(Context& ctx, std::span<const double> m,
                   std::span<const double> r, std::span<double> z,
                   DdAccumulator& rz, DdAccumulator& rr) {
  const std::size_t n = z.size();
  V2D_REQUIRE(m.size() == n && r.size() == n, "hadamard_dot2: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::HadamardDot2, n);
    native::hadamard_dot2(m.data(), r.data(), z.data(), n, rz, rr);
    return;
  }
  VReg acc1 = ctx.dup(0.0);
  VReg acc2 = ctx.dup(0.0);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vm = ctx.ld1(p, &m[i]);
    const VReg vr = ctx.ld1(p, &r[i]);
    const VReg vz = ctx.mul(p, vm, vr);
    ctx.st1(p, &z[i], vz);
    acc1 = ctx.fma_merge(p, vz, vr, acc1);
    acc2 = ctx.fma_merge(p, vr, vr, acc2);
  });
  const Predicate full = ctx.ptrue();
  (void)ctx.reduce_add(full, acc1);
  (void)ctx.reduce_add(full, acc2);
  DdAccumulator a0 = rz, a1 = rr;
  for (std::size_t i = 0; i < n; ++i) {
    a0.add(z[i] * r[i]);
    a1.add(r[i] * r[i]);
  }
  rz = a0;
  rr = a1;
}

void hadamard_update_dot2(Context& ctx, std::span<const double> m, double a,
                          std::span<const double> q, std::span<double> r,
                          std::span<double> z, DdAccumulator& rz,
                          DdAccumulator& rr) {
  const std::size_t n = z.size();
  V2D_REQUIRE(m.size() == n && q.size() == n && r.size() == n,
              "hadamard_update_dot2: length mismatch");
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::HadamardUpdateDot2, n);
    native::hadamard_update_dot2(m.data(), a, q.data(), r.data(), z.data(), n,
                                 rz, rr);
    return;
  }
  const VReg va = ctx.dup(a);
  VReg acc1 = ctx.dup(0.0);
  VReg acc2 = ctx.dup(0.0);
  vla::strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vq = ctx.ld1(p, &q[i]);
    const VReg vr0 = ctx.ld1(p, &r[i]);
    const VReg vr = ctx.fma(p, vq, va, vr0);
    ctx.st1(p, &r[i], vr);
    const VReg vm = ctx.ld1(p, &m[i]);
    const VReg vz = ctx.mul(p, vm, vr);
    ctx.st1(p, &z[i], vz);
    acc1 = ctx.fma_merge(p, vz, vr, acc1);
    acc2 = ctx.fma_merge(p, vr, vr, acc2);
  });
  const Predicate full = ctx.ptrue();
  (void)ctx.reduce_add(full, acc1);
  (void)ctx.reduce_add(full, acc2);
  DdAccumulator a0 = rz, a1 = rr;
  for (std::size_t i = 0; i < n; ++i) {
    a0.add(z[i] * r[i]);
    a1.add(r[i] * r[i]);
  }
  rz = a0;
  rr = a1;
}

void coupling_row(Context& ctx, std::span<const double> csp, const double* xo,
                  std::span<double> y) {
  if (ctx.native()) {
    record_analytic(ctx, KernelShape::CouplingRow, y.size());
    native::coupling_row(csp.data(), xo, y.data(), y.size());
    return;
  }
  vla::strip_mine(ctx, y.size(), [&](std::uint64_t i, const Predicate& p) {
    const VReg vc = ctx.ld1(p, &csp[i]);
    const VReg vx = ctx.ld1(p, xo + i);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vc, vx, vy));
  });
}

}  // namespace v2d::linalg
