#include "linalg/bicgstab.hpp"

#include <cmath>

#include "linalg/dag_capture.hpp"
#include "support/error.hpp"

namespace v2d::linalg {

namespace {
constexpr double kBreakdownEps = 1.0e-300;
}

BicgstabSolver::BicgstabSolver(const grid::Grid2D& g,
                               const grid::Decomposition& d, int ns)
    : owned_(std::make_unique<SolverWorkspace>(g, d, ns)), ws_(owned_.get()) {}

SolveStats BicgstabSolver::solve(ExecContext& ctx, const LinearOperator& A,
                                 Preconditioner& M, DistVector& x,
                                 const DistVector& b,
                                 const SolveOptions& opt) {
  V2D_REQUIRE(opt.rel_tol > 0.0, "tolerance must be positive");
  V2D_REQUIRE(opt.max_iterations >= 1, "need at least one iteration");
  return opt.ganged ? solve_ganged(ctx, A, M, x, b, opt)
                    : solve_classic(ctx, A, M, x, b, opt);
}

SolveStats BicgstabSolver::solve_classic(ExecContext& ctx,
                                         const LinearOperator& A,
                                         Preconditioner& M, DistVector& x,
                                         const DistVector& b,
                                         const SolveOptions& opt) {
  SolveStats stats;
  DistVector& r = ws_->vec(0);
  DistVector& rhat = ws_->vec(1);
  DistVector& p = ws_->vec(2);
  DistVector& v = ws_->vec(3);
  DistVector& s = ws_->vec(4);
  DistVector& t = ws_->vec(5);
  DistVector& phat = ws_->vec(6);
  DistVector& shat = ws_->vec(7);
  DagCapture dag(ctx,
                 dag_key("bicgstab", M.name(),
                         static_cast<std::uint64_t>(x.global_size()),
                         ctx.vctx));
  // One task-graph session for the whole solve under --host-sched graph
  // (see CgSolver::solve); no-op under barrier scheduling.
  task_graph::GraphRegion graph(ctx.sched == HostSched::Graph);
  // r0 = b − A·x0, r̂ = r0, p = r0.
  if (ctx.fused()) {
    A.apply_residual(ctx, x, b, r);
  } else {
    A.apply(ctx, x, r);
    r.assign_sub(ctx, b, r);
  }
  rhat.copy_from(ctx, r);
  p.copy_from(ctx, r);

  const double bnorm = DistVector::norm2(ctx, b);
  ++stats.global_reductions;
  if (bnorm == 0.0) {
    x.fill(ctx, 0.0);
    stats.converged = true;
    stats.stop_reason = "zero rhs";
    return stats;
  }

  double rho = DistVector::dot(ctx, rhat, r);
  ++stats.global_reductions;
  double rnorm = DistVector::norm2(ctx, r);
  ++stats.global_reductions;

  for (int it = 1; it <= opt.max_iterations; ++it) {
    dag.begin_iteration(it);
    stats.iterations = it;
    if (std::fabs(rho) < kBreakdownEps) {
      stats.stop_reason = "rho breakdown";
      break;
    }
    // p̂ = M·p ; v = A·p̂ with r̂·v folded into the sweep when fused.
    M.apply(ctx, p, phat);
    double rhat_v;
    if (ctx.fused()) {
      rhat_v = A.apply_dot(ctx, phat, v, &rhat);
    } else {
      A.apply(ctx, phat, v);
      rhat_v = DistVector::dot(ctx, rhat, v);
    }
    ++stats.global_reductions;
    if (std::fabs(rhat_v) < kBreakdownEps) {
      stats.stop_reason = "rhat.v breakdown";
      break;
    }
    const double alpha = rho / rhat_v;
    // s = r − α·v (fused: the COPY disappears into the DAXPY).
    if (ctx.fused()) {
      s.assign_axpy(ctx, r, -alpha, v);
    } else {
      s.copy_from(ctx, r);
      s.daxpy(ctx, -alpha, v);
    }
    // ŝ = M·s ; t = A·ŝ with t·s folded into the sweep when fused.
    M.apply(ctx, s, shat);
    double ts;
    if (ctx.fused()) {
      ts = A.apply_dot(ctx, shat, t, &s);
    } else {
      A.apply(ctx, shat, t);
      ts = DistVector::dot(ctx, t, s);
    }
    ++stats.global_reductions;
    const double tt = DistVector::dot(ctx, t, t);
    ++stats.global_reductions;
    if (tt < kBreakdownEps) {
      // t vanished: x += α·p̂ finishes the step exactly.
      x.daxpy(ctx, alpha, phat);
      r.copy_from(ctx, s);
      rnorm = DistVector::norm2(ctx, r);
      ++stats.global_reductions;
      stats.final_relative_residual = rnorm / bnorm;
      stats.converged = stats.final_relative_residual <= opt.rel_tol;
      stats.stop_reason = "t breakdown";
      break;
    }
    const double omega = ts / tt;
    // x += α·p̂ + ω·ŝ ;  r = s − ω·t.
    x.ddaxpy(ctx, alpha, phat, omega, shat);
    if (ctx.fused()) {
      r.assign_axpy(ctx, s, -omega, t);
    } else {
      r.copy_from(ctx, s);
      r.daxpy(ctx, -omega, t);
    }
    rnorm = DistVector::norm2(ctx, r);
    ++stats.global_reductions;
    stats.final_relative_residual = rnorm / bnorm;
    if (stats.final_relative_residual <= opt.rel_tol) {
      stats.converged = true;
      stats.stop_reason = "tolerance reached";
      break;
    }
    if (std::fabs(omega) < kBreakdownEps) {
      stats.stop_reason = "omega breakdown";
      break;
    }
    const double rho_new = DistVector::dot(ctx, rhat, r);
    ++stats.global_reductions;
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    // p = r + β·(p − ω·v), one pass when fused.
    if (ctx.fused()) {
      p.fused_p_update(ctx, r, beta, omega, v);
    } else {
      p.daxpy(ctx, -omega, v);
      p.xpby(ctx, r, beta);
    }
  }
  if (!stats.stop_reason_set()) stats.stop_reason = "max iterations";
  return stats;
}

SolveStats BicgstabSolver::solve_ganged(ExecContext& ctx,
                                        const LinearOperator& A,
                                        Preconditioner& M, DistVector& x,
                                        const DistVector& b,
                                        const SolveOptions& opt) {
  SolveStats stats;
  DistVector& r = ws_->vec(0);
  DistVector& rhat = ws_->vec(1);
  DistVector& p = ws_->vec(2);
  DistVector& v = ws_->vec(3);
  DistVector& s = ws_->vec(4);
  DistVector& t = ws_->vec(5);
  DistVector& phat = ws_->vec(6);
  DistVector& shat = ws_->vec(7);
  DagCapture dag(ctx,
                 dag_key("bicgstab-ganged", M.name(),
                         static_cast<std::uint64_t>(x.global_size()),
                         ctx.vctx));
  // One task-graph session for the whole solve under --host-sched graph
  // (see CgSolver::solve); no-op under barrier scheduling.
  task_graph::GraphRegion graph(ctx.sched == HostSched::Graph);
  if (ctx.fused()) {
    A.apply_residual(ctx, x, b, r);
  } else {
    A.apply(ctx, x, r);
    r.assign_sub(ctx, b, r);
  }
  rhat.copy_from(ctx, r);
  p.copy_from(ctx, r);

  // Setup gang: {‖b‖², ρ0 = r̂ᵀr} in a single reduction.
  double rho, bnorm;
  {
    const DistVector::DotPair pairs[] = {{&b, &b}, {&rhat, &r}};
    const auto vals = DistVector::dot_ganged(ctx, pairs);
    ++stats.global_reductions;
    bnorm = std::sqrt(vals[0]);
    rho = vals[1];
  }
  if (bnorm == 0.0) {
    x.fill(ctx, 0.0);
    stats.converged = true;
    stats.stop_reason = "zero rhs";
    return stats;
  }
  double rnorm2 = rho;  // r0 = r̂ ⇒ ρ0 = ‖r0‖²

  for (int it = 1; it <= opt.max_iterations; ++it) {
    dag.begin_iteration(it);
    stats.iterations = it;
    if (std::fabs(rho) < kBreakdownEps) {
      stats.stop_reason = "rho breakdown";
      break;
    }
    M.apply(ctx, p, phat);
    double rhat_v;
    if (ctx.fused()) {
      rhat_v = A.apply_dot(ctx, phat, v, &rhat);
    } else {
      A.apply(ctx, phat, v);
      rhat_v = DistVector::dot(ctx, rhat, v);
    }
    ++stats.global_reductions;
    if (std::fabs(rhat_v) < kBreakdownEps) {
      stats.stop_reason = "rhat.v breakdown";
      break;
    }
    const double alpha = rho / rhat_v;
    if (ctx.fused()) {
      s.assign_axpy(ctx, r, -alpha, v);
    } else {
      s.copy_from(ctx, r);
      s.daxpy(ctx, -alpha, v);
    }
    M.apply(ctx, s, shat);
    // The 3-dot gang below shares ONE reduction; folding tᵀs into the
    // matvec would split it into two, so the product stays unfused here.
    A.apply(ctx, shat, t);
    // Gang: {tᵀs, tᵀt, sᵀs} in one reduction.
    double ts, tt, ss;
    {
      const DistVector::DotPair pairs[] = {{&t, &s}, {&t, &t}, {&s, &s}};
      const auto vals = DistVector::dot_ganged(ctx, pairs);
      ++stats.global_reductions;
      ts = vals[0];
      tt = vals[1];
      ss = vals[2];
    }
    if (tt < kBreakdownEps) {
      x.daxpy(ctx, alpha, phat);
      r.copy_from(ctx, s);
      stats.final_relative_residual = std::sqrt(std::max(0.0, ss)) / bnorm;
      stats.converged = stats.final_relative_residual <= opt.rel_tol;
      stats.stop_reason = "t breakdown";
      break;
    }
    const double omega = ts / tt;
    x.ddaxpy(ctx, alpha, phat, omega, shat);
    if (ctx.fused()) {
      r.assign_axpy(ctx, s, -omega, t);
    } else {
      r.copy_from(ctx, s);
      r.daxpy(ctx, -omega, t);
    }
    // ‖r‖² reconstructed from the gang — no extra reduction.
    rnorm2 = std::max(0.0, ss - 2.0 * omega * ts + omega * omega * tt);
    stats.final_relative_residual = std::sqrt(rnorm2) / bnorm;
    if (stats.final_relative_residual <= opt.rel_tol) {
      stats.converged = true;
      stats.stop_reason = "tolerance reached";
      break;
    }
    if (std::fabs(omega) < kBreakdownEps) {
      stats.stop_reason = "omega breakdown";
      break;
    }
    const double rho_new = DistVector::dot(ctx, rhat, r);
    ++stats.global_reductions;
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    if (ctx.fused()) {
      p.fused_p_update(ctx, r, beta, omega, v);
    } else {
      p.daxpy(ctx, -omega, v);
      p.xpby(ctx, r, beta);
    }
  }
  if (!stats.stop_reason_set()) stats.stop_reason = "max iterations";
  return stats;
}

}  // namespace v2d::linalg
