#include "linalg/kernels_native.hpp"

#include "vla/vla.hpp"

namespace v2d::linalg::native {

double dprod(const double* x, const double* y, std::size_t n, unsigned vl) {
  // Strip-wise accumulation: lane l of the accumulator register sums the
  // elements with index ≡ l (mod VL), exactly like the interpreter's
  // fma_merge chain, so the final lane-order reduce rounds identically.
  double acc[vla::kMaxLanes] = {};
  std::size_t i = 0;
  for (; i + vl <= n; i += vl)
    for (unsigned l = 0; l < vl; ++l) acc[l] = x[i + l] * y[i + l] + acc[l];
  for (unsigned l = 0; i + l < n; ++l) acc[l] = x[i + l] * y[i + l] + acc[l];
  double s = 0.0;
  for (unsigned l = 0; l < vl; ++l) s += acc[l];
  return s;
}

void daxpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] * a + y[i];
}

void dscal(double c, double d, double* y, std::size_t n) {
  const double md = -d;
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] * md + c;
}

void ddaxpy(double a, const double* x, double b, const double* y, double* z,
            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double t = x[i] * a + z[i];
    z[i] = y[i] * b + t;
  }
}

void xpby(const double* x, double b, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] * b + x[i];
}

void copy(const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i];
}

void fill(double a, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a;
}

void sub(const double* x, const double* y, double* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] - y[i];
}

void hadamard(const double* x, const double* y, double* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

void stencil_row(const double* cc, const double* cw, const double* ce,
                 const double* cs, const double* cn, const double* xc,
                 const double* xs, const double* xn, double* y,
                 std::size_t n) {
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    double acc = cc[i] * xc[i];
    acc = cw[i] * xc[i - 1] + acc;
    acc = ce[i] * xc[i + 1] + acc;
    acc = cs[i] * xs[i] + acc;
    acc = cn[i] * xn[i] + acc;
    y[i] = acc;
  }
}

void coupling_row(const double* csp, const double* xo, double* y,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = csp[i] * xo[i] + y[i];
}

void diag_correct_row(double omega, const double* d, const double* r,
                      double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double t = d[i] * r[i];
    x[i] = omega * t + x[i];
  }
}

void diag_scale_row(double omega, const double* d, const double* r, double* z,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = omega * (d[i] * r[i]);
}

void restrict_row(const double* const fine[4], const std::int64_t* fm1,
                  const std::int64_t* f0, const std::int64_t* f1,
                  const std::int64_t* f2, double* coarse, std::size_t n) {
  constexpr double kQ = 0.25, kT = 0.75;
  constexpr double wj[4] = {0.25, 0.75, 0.75, 0.25};
  for (std::size_t c = 0; c < n; ++c) {
    double acc = 0.0;
    for (int dj = 0; dj < 4; ++dj) {
      const double* frow = fine[dj];
      // Row value 1/4·a + 3/4·b + 3/4·c + 1/4·d in the interpreter's
      // association order (mul, then three chained FMAs).
      double row = kQ * frow[fm1[c]];
      row = kT * frow[f0[c]] + row;
      row = kT * frow[f1[c]] + row;
      row = kQ * frow[f2[c]] + row;
      acc = (0.25 * wj[dj]) * row + acc;
    }
    coarse[c] = acc;
  }
}

void axpy_out(const double* x, double a, const double* y, double* z,
              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = y[i] * a + x[i];
}

void p_update(const double* r, double b, double w, const double* v, double* p,
              std::size_t n) {
  const double mw = -w;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = v[i] * mw + p[i];
    p[i] = t * b + r[i];
  }
}

void hadamard_dot2(const double* m, const double* r, double* z, std::size_t n,
                   DdAccumulator& rz, DdAccumulator& rr) {
  // One mixed loop with register-resident accumulators (see
  // stencil_dot_row): the two compensated chains are independent, so they
  // interleave with each other and with the streaming loads/stores.
  DdAccumulator a0 = rz, a1 = rr;
  for (std::size_t i = 0; i < n; ++i) {
    const double zi = m[i] * r[i];
    z[i] = zi;
    a0.add(zi * r[i]);
    a1.add(r[i] * r[i]);
  }
  rz = a0;
  rr = a1;
}

void hadamard_update_dot2(const double* m, double a, const double* q,
                          double* r, double* z, std::size_t n,
                          DdAccumulator& rz, DdAccumulator& rr) {
  DdAccumulator a0 = rz, a1 = rr;
  for (std::size_t i = 0; i < n; ++i) {
    const double ri = q[i] * a + r[i];
    r[i] = ri;
    const double zi = m[i] * ri;
    z[i] = zi;
    a0.add(zi * ri);
    a1.add(ri * ri);
  }
  rz = a0;
  rr = a1;
}

void prolong_row_add(const double* cnear, const double* cfar,
                     const std::int64_t* near, const std::int64_t* far,
                     double* fine, std::size_t n) {
  constexpr double kQ = 0.25, kT = 0.75;
  for (std::size_t f = 0; f < n; ++f) {
    double rn = kT * cnear[near[f]];
    rn = kQ * cnear[far[f]] + rn;
    double rf = kT * cfar[near[f]];
    rf = kQ * cfar[far[f]] + rf;
    double y = fine[f];
    y = kT * rn + y;
    y = kQ * rf + y;
    fine[f] = y;
  }
}

}  // namespace v2d::linalg::native
