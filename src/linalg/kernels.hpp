#pragma once
/// \file kernels.hpp
/// \brief The V2D sparse-linear-algebra kernels of the paper's Table II.
///
/// These are the exact routines the authors' driver program exercises:
///   MATVEC  — matrix-vector product (stencil form; see stencil_op.hpp)
///   DPROD   — dot product
///   DAXPY   — y ← a·x + y
///   DSCAL   — y ← c − d·y
///   DDAXPY  — z ← a·x + b·y + z
/// plus the small helpers the BiCGSTAB restructuring needs (XPBY, COPY).
///
/// Every kernel is written once against the VLA layer in the canonical
/// whilelt strip-mined form; the vla::Context both computes the result and
/// records the instruction stream for pricing.  Spans must not alias
/// except where a parameter is explicitly an in/out vector.

#include <span>

#include "support/dd.hpp"
#include "vla/loops.hpp"
#include "vla/vla.hpp"

namespace v2d::linalg {

/// DPROD: returns Σ x_i · y_i.
double dprod(vla::Context& ctx, std::span<const double> x,
             std::span<const double> y);

/// Record the instruction stream of one DPROD(n) call without executing it
/// (analytic fast path).  Used where the numerical result is produced by a
/// separate host-side accumulation (DistVector::dot_ganged's compensated
/// sum) but the priced stream must still be the strip-mined DPROD.
void dprod_record_only(vla::Context& ctx, std::uint64_t n);

/// DAXPY: y ← a·x + y.
void daxpy(vla::Context& ctx, double a, std::span<const double> x,
           std::span<double> y);

/// DSCAL (V2D's flavour): y ← c − d·y.
void dscal(vla::Context& ctx, double c, double d, std::span<double> y);

/// DDAXPY: z ← a·x + b·y + z.
void ddaxpy(vla::Context& ctx, double a, std::span<const double> x, double b,
            std::span<const double> y, std::span<double> z);

/// XPBY: y ← x + b·y (used by the p-update in BiCGSTAB).
void xpby(vla::Context& ctx, std::span<const double> x, double b,
          std::span<double> y);

/// COPY: y ← x.
void copy(vla::Context& ctx, std::span<const double> x, std::span<double> y);

/// FILL: y ← a.
void fill(vla::Context& ctx, double a, std::span<double> y);

/// SUB: z ← x − y.
void sub(vla::Context& ctx, std::span<const double> x,
         std::span<const double> y, std::span<double> z);

/// Pointwise multiply: z ← x ⊙ y (Jacobi preconditioner application).
void hadamard(vla::Context& ctx, std::span<const double> x,
              std::span<const double> y, std::span<double> z);

/// One row of the five-point stencil MATVEC:
///   y_i ← cc_i·xc_i + cw_i·xc_{i-1} + ce_i·xc_{i+1} + cs_i·xs_i + cn_i·xn_i
/// `xc` must have one ghost element on each side (xc[-1] and xc[n] are
/// readable); `xs`/`xn` are the rows below/above (same indexing, no shift).
void stencil_row(vla::Context& ctx, std::span<const double> cc,
                 std::span<const double> cw, std::span<const double> ce,
                 std::span<const double> cs, std::span<const double> cn,
                 const double* xc, const double* xs, const double* xn,
                 std::span<double> y);

/// Species-coupling rank-one add: y ← y + csp ⊙ xo (other species' vector).
void coupling_row(vla::Context& ctx, std::span<const double> csp,
                  const double* xo, std::span<double> y);

// --- fused composites (FuseMode::On / FuseMode::Plan) ------------------------
//
// One-pass versions of the kernel chains the solver hot loops issue.  Each
// evaluates the same per-element expressions in the same association order
// as the unfused sequence, so switching FuseMode changes the instruction
// stream and the priced traffic but not one bit of the numerics.  Fused
// reductions feed the caller's DdAccumulator (compensated, element order)
// exactly like DistVector::dot_ganged, so the recorded stream is the
// hardware composite (dot folded in as predicated FMAs + one horizontal
// reduce) while the returned value stays tiling-independent.
//
// stencil_row_fused and daxpy2 are thin wrappers over planner-generated
// groups (src/linalg/fusion/); the remaining composites keep hand-written
// triples as the differential-testing oracle for `--fuse plan`.

/// Fused stencil-row composite.  Always computes the five-point row into
/// `y`; the optional operands select the composite:
///   csp/xo  non-null — species coupling folded into the sweep
///   bsub    non-null — residual form, y ← bsub − (A·x) row
///   wdot/dot non-null — MATVEC+DPROD, dot->add(w_i·y_i) per element
///     (`wdot == xc` is the CG p·Ap case: the center operand is reused in
///      registers, no extra load)
/// `bsub` and `wdot` are mutually exclusive.
void stencil_row_fused(vla::Context& ctx, std::span<const double> cc,
                       std::span<const double> cw, std::span<const double> ce,
                       std::span<const double> cs, std::span<const double> cn,
                       const double* xc, const double* xs, const double* xn,
                       const double* csp, const double* xo, const double* bsub,
                       const double* wdot, DdAccumulator* dot,
                       std::span<double> y);

/// Fused CG twin update (DAXPY₂): x ← x + a·p and r ← r + b·q in one pass.
void daxpy2(vla::Context& ctx, double a, std::span<const double> p,
            std::span<double> x, double b, std::span<const double> q,
            std::span<double> r);

/// Fused COPY+DAXPY: z ← x + a·y.
void axpy_out(vla::Context& ctx, std::span<const double> x, double a,
              std::span<const double> y, std::span<double> z);

/// Fused DAXPY+XPBY (BiCGSTAB p-update): p ← r + b·(p − w·v).
void p_update(vla::Context& ctx, std::span<const double> r, double b, double w,
              std::span<const double> v, std::span<double> p);

/// Fused precond apply + ganged 2-dot: z ← m ⊙ r with rz += Σ z·r and
/// rr += Σ r·r folded into the sweep.
void hadamard_dot2(vla::Context& ctx, std::span<const double> m,
                   std::span<const double> r, std::span<double> z,
                   DdAccumulator& rz, DdAccumulator& rr);

/// The CG tail composite: the residual update r ← r + a·q folded into the
/// precond+gang sweep (hadamard_dot2 over the updated residual).
void hadamard_update_dot2(vla::Context& ctx, std::span<const double> m,
                          double a, std::span<const double> q,
                          std::span<double> r, std::span<double> z,
                          DdAccumulator& rz, DdAccumulator& rr);

}  // namespace v2d::linalg
