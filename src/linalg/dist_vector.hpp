#pragma once
/// \file dist_vector.hpp
/// \brief Distributed Krylov vector with V2D's grid shape.
///
/// A DistVector is an ns-species grid-shaped vector (one DistField) plus
/// the instrumented BLAS-level operations of the paper's Table II.  Every
/// operation runs one task per simulated rank (concurrently on the host
/// pool — see par_ranks) over that rank's tile rows, runs the VLA kernel,
/// and commits one priced call per rank, so per-rank clocks advance
/// exactly with the work each simulated processor does.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "grid/dist_field.hpp"
#include "linalg/exec_context.hpp"

namespace v2d::linalg {

class DistVector {
public:
  DistVector(const grid::Grid2D& g, const grid::Decomposition& d, int ns)
      : field_(g, d, ns, /*ng=*/1) {}

  grid::DistField& field() { return field_; }
  const grid::DistField& field() const { return field_; }
  int ns() const { return field_.ns(); }
  int nranks() const { return field_.nranks(); }
  std::int64_t global_size() const {
    return field_.grid().zones() * field_.ns();
  }

  /// y ← a·x + y   (DAXPY)
  void daxpy(ExecContext& ctx, double a, const DistVector& x);
  /// y ← c − d·y   (DSCAL, V2D flavour)
  void dscal(ExecContext& ctx, double c, double d);
  /// z ← a·x + b·y + z   (DDAXPY)
  void ddaxpy(ExecContext& ctx, double a, const DistVector& x, double b,
              const DistVector& y);
  /// y ← x + b·y   (XPBY)
  void xpby(ExecContext& ctx, const DistVector& x, double b);
  /// y ← x
  void copy_from(ExecContext& ctx, const DistVector& x);
  /// y ← a
  void fill(ExecContext& ctx, double a);
  /// z ← x − y
  void assign_sub(ExecContext& ctx, const DistVector& x, const DistVector& y);

  // --- fused composites (FuseMode::On call sites) ----------------------------
  // One-pass versions of the kernel chains the solver hot loops issue;
  // results are bit-identical to the unfused sequences (same per-element
  // association order), only the instruction stream and priced traffic
  // shrink.

  /// Fused CG twin update (DAXPY₂): x ← x + a·p and r ← r + b·q in one
  /// pass — one priced kernel call instead of two DAXPYs.
  static void daxpy2(ExecContext& ctx, DistVector& x, double a,
                     const DistVector& p, DistVector& r, double b,
                     const DistVector& q);

  /// y ← x + a·z (fused COPY+DAXPY: replaces copy_from + daxpy).
  void assign_axpy(ExecContext& ctx, const DistVector& x, double a,
                   const DistVector& z);

  /// y ← x + b·(y − w·v) (fused DAXPY+XPBY: the BiCGSTAB p-update).
  void fused_p_update(ExecContext& ctx, const DistVector& x, double b,
                      double w, const DistVector& v);

  /// DPROD with the global reduction priced as one allreduce.
  static double dot(ExecContext& ctx, const DistVector& x,
                    const DistVector& y);

  /// Ganged inner products: all pairs share a single allreduce — the
  /// paper's "gangs inner products to reduce the number of parallel global
  /// reduction operations" restructuring.
  struct DotPair {
    const DistVector* x;
    const DistVector* y;
  };
  static std::vector<double> dot_ganged(ExecContext& ctx,
                                        std::span<const DotPair> pairs);

  /// 2-norm (one DPROD + host sqrt).
  static double norm2(ExecContext& ctx, const DistVector& x);

  /// Bytes one rank touches when an op reads/writes `arrays` tile-shaped
  /// arrays (for working-set classification).
  std::uint64_t working_set(int rank, int arrays) const;

private:
  template <typename RowOp>
  void for_each_row(ExecContext& ctx, compiler::KernelFamily family,
                    const std::string& region, int arrays, RowOp&& op);

  grid::DistField field_;
};

}  // namespace v2d::linalg
