#pragma once
/// \file bicgstab.hpp
/// \brief Preconditioned BiCGSTAB with V2D's ganged-reduction restructuring.
///
/// V2D "uses a restructured version of the BiCGSTAB algorithm, which gangs
/// inner products to reduce the number of parallel global reduction
/// operations required per iteration."  Both variants are provided:
///
///   Classic — textbook van der Vorst (1992): five separate global
///   reductions per iteration (ρ, r̂ᵀv, tᵀs, tᵀt, ‖r‖²).
///
///   Ganged  — three reductions per iteration: {ρ} · {r̂ᵀv} ·
///   {tᵀs, tᵀt, sᵀs}; the residual norm is reconstructed algebraically
///   from the last gang via ‖r‖² = sᵀs − 2ω·tᵀs + ω²·tᵀt.
///
/// The solver draws its eight grid-shaped temporaries from a
/// SolverWorkspace — either a shared one passed in (so CG, BiCGSTAB and
/// repeated solver constructions on the same shape reuse the same
/// buffers) or a private one it creates lazily — so the 300-solve Table I
/// workload reuses allocations.

#include <cstdint>
#include <memory>

#include "linalg/operator.hpp"
#include "linalg/precond.hpp"
#include "linalg/workspace.hpp"

namespace v2d::linalg {

struct SolveOptions {
  double rel_tol = 1.0e-8;
  int max_iterations = 1000;
  bool ganged = true;  ///< use the restructured (ganged) reduction scheme
};

struct SolveStats {
  bool converged = false;
  int iterations = 0;
  double final_relative_residual = 0.0;
  std::int64_t global_reductions = 0;  ///< allreduce count issued

  /// Why the solver stopped.  Starts as the empty "unset" sentinel; every
  /// solver exit path assigns a definitive reason, so after solve() this
  /// is never null or empty (pinned by the solver tests).  Use
  /// stop_reason_set() rather than poking the C string.
  const char* stop_reason = "";

  /// True once a solver has assigned a definitive stop reason.
  bool stop_reason_set() const {
    return stop_reason != nullptr && stop_reason[0] != '\0';
  }
};

class BicgstabSolver {
public:
  /// Private workspace, allocated lazily on first solve.
  BicgstabSolver(const grid::Grid2D& g, const grid::Decomposition& d, int ns);
  /// Borrow a shared workspace (slots 0..7).  The workspace must outlive
  /// the solver; solves must not nest with another borrower's.
  explicit BicgstabSolver(SolverWorkspace& ws) : ws_(&ws) {}

  /// Solve A·x = b starting from the provided x (initial guess).
  SolveStats solve(ExecContext& ctx, const LinearOperator& A,
                   Preconditioner& M, DistVector& x, const DistVector& b,
                   const SolveOptions& opt = {});

private:
  SolveStats solve_classic(ExecContext& ctx, const LinearOperator& A,
                           Preconditioner& M, DistVector& x,
                           const DistVector& b, const SolveOptions& opt);
  SolveStats solve_ganged(ExecContext& ctx, const LinearOperator& A,
                          Preconditioner& M, DistVector& x,
                          const DistVector& b, const SolveOptions& opt);

  std::unique_ptr<SolverWorkspace> owned_;
  SolverWorkspace* ws_;
};

}  // namespace v2d::linalg
