#pragma once
/// \file precond.hpp
/// \brief Preconditioners for the V2D Krylov solvers.
///
/// The production preconditioner is the sparse approximate inverse of
/// Swesty, Smolarski & Saylor (ApJS 153:369, 2004): M ≈ A⁻¹ with the same
/// five-point stencil sparsity as A, each column obtained from a small
/// least-squares problem solved independently per zone — embarrassingly
/// parallel, no triangular solves, and its application is just another
/// stencil sweep (which is why the paper sees SVE speedup in it).
/// Jacobi and identity are included as baselines for the ablation bench.

#include <memory>
#include <string>

#include "linalg/stencil_op.hpp"

namespace v2d::linalg {

class Preconditioner {
public:
  virtual ~Preconditioner() = default;

  /// y ← M·x.  `x` mutable for ghost refresh (stencil-shaped M).
  virtual void apply(ExecContext& ctx, DistVector& x, DistVector& y) = 0;

  /// Fused apply + ganged 2-dot: y ← M·x and out = {x·y, x·x}, the pair
  /// priced as ONE ganged allreduce — exactly the reduction the CG hot
  /// loop issues as dot_ganged({r·z, r·r}) after the precond apply, folded
  /// into the apply sweep so x and y are not re-streamed.  When
  /// `update_q` is non-null the sweep first applies the residual DAXPY
  /// x ← x + update_a·q element-by-element (the CG tail composite: the
  /// r-update, precond apply and gang become one pass).  Returns false
  /// *without doing any work* when this preconditioner has no fused form
  /// (stencil-shaped or multilevel M); callers then fall back to the
  /// unfused kernel chain.  The diagonal preconditioners (Jacobi,
  /// SPAI(0)) override it; results are bit-identical to the unfused
  /// sequence.
  virtual bool apply_dot2(ExecContext& /*ctx*/, DistVector& /*x*/,
                          DistVector& /*y*/, double /*out*/[2],
                          double /*update_a*/ = 0.0,
                          const DistVector* /*update_q*/ = nullptr) {
    return false;
  }

  virtual std::string name() const = 0;
};

/// M = I (no preconditioning).
class IdentityPrecond final : public Preconditioner {
public:
  void apply(ExecContext& ctx, DistVector& x, DistVector& y) override;
  std::string name() const override { return "identity"; }
};

/// M = diag(A)⁻¹.
class JacobiPrecond final : public Preconditioner {
public:
  /// Build from the operator's diagonal; `ctx` prices the build.
  JacobiPrecond(ExecContext& ctx, const StencilOperator& A);

  void apply(ExecContext& ctx, DistVector& x, DistVector& y) override;
  bool apply_dot2(ExecContext& ctx, DistVector& x, DistVector& y,
                  double out[2], double update_a = 0.0,
                  const DistVector* update_q = nullptr) override;
  std::string name() const override { return "jacobi"; }

private:
  grid::DistField dinv_;
};

/// Diagonal-pattern sparse approximate inverse — SPAI(0).  Column k is
/// the scalar m_k minimizing ‖A·m_k·e_k − e_k‖₂, i.e.
/// m_k = a_kk / Σ_i a_ik², computed from the operator's column entries
/// (which requires the neighbours' coefficients, ghost-exchanged).  This
/// is V2D's production preconditioner profile: its application is a
/// pointwise multiply, an order of magnitude cheaper than the matvec,
/// matching the paper's 14 s preconditioning vs 141 s matvec split.
class Spai0Precond final : public Preconditioner {
public:
  Spai0Precond(ExecContext& ctx, const StencilOperator& A);

  void apply(ExecContext& ctx, DistVector& x, DistVector& y) override;
  bool apply_dot2(ExecContext& ctx, DistVector& x, DistVector& y,
                  double out[2], double update_a = 0.0,
                  const DistVector* update_q = nullptr) override;
  std::string name() const override { return "spai0"; }

  const grid::DistField& diagonal() const { return m_; }

private:
  grid::DistField m_;
};

/// Stencil-pattern sparse approximate inverse — SPAI(1): column m_k
/// minimizes ‖A[J,J]·m − e_k‖₂ over the five-point pattern J(k), via 5×5
/// normal equations solved by Cholesky, independently per zone.  Stronger
/// than SPAI(0) per iteration but its application costs a full stencil
/// sweep; the preconditioner ablation bench compares the two.
class SpaiPrecond final : public Preconditioner {
public:
  /// Build M from A; `ctx` prices the construction (PrecondBuild family).
  SpaiPrecond(ExecContext& ctx, const StencilOperator& A);

  void apply(ExecContext& ctx, DistVector& x, DistVector& y) override;
  std::string name() const override { return "spai"; }

  /// The approximate inverse as a stencil operator (tests inspect it).
  const StencilOperator& stencil() const { return m_; }

private:
  StencilOperator m_;
};

namespace mg {
struct MgOptions;
}  // namespace mg

/// True when `kind` names a preconditioner the factory can build — lets
/// config validation (e.g. --solver-fallbacks) fail at parse time instead
/// of mid-run when a fallback first engages.
bool is_preconditioner_kind(const std::string& kind);

/// Factory by short name: "identity" | "jacobi" | "spai0" | "spai" | "mg".
/// "mg" builds a geometric multigrid V-cycle with default options (see
/// linalg/mg/mg_precond.hpp).
std::unique_ptr<Preconditioner> make_preconditioner(const std::string& kind,
                                                    ExecContext& ctx,
                                                    const StencilOperator& A);

/// Same, with explicit multigrid options (ignored unless kind == "mg").
std::unique_ptr<Preconditioner> make_preconditioner(
    const std::string& kind, ExecContext& ctx, const StencilOperator& A,
    const mg::MgOptions& mg_options);

}  // namespace v2d::linalg
