#pragma once
/// \file workspace.hpp
/// \brief Reusable scratch-vector workspace for the Krylov solvers.
///
/// Every solver iteration needs a handful of grid-shaped temporaries.
/// Allocating them per solver instance (let alone per solve) churns the
/// allocator across the paper's 300-solve workload and the MG smoother's
/// repeated sweeps, so the scratch vectors live here instead: one
/// workspace per (grid, decomposition, species) shape, slots allocated
/// lazily on first use and reused for the lifetime of the workspace.
/// CgSolver and BicgstabSolver can share one workspace — their solves
/// never nest (a preconditioner owns its own level vectors), and slot k
/// is the same buffer in both, so a CG solve followed by a BiCGSTAB solve
/// on the same shape costs zero additional allocations.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/dist_vector.hpp"
#include "support/error.hpp"

namespace v2d::linalg {

class SolverWorkspace {
public:
  SolverWorkspace(const grid::Grid2D& g, const grid::Decomposition& d, int ns);

  /// The scratch vector in `slot`, allocating it on first access.
  /// Contents persist between calls; callers must not assume zeros.
  /// Slot materialization is mutex-guarded so concurrent par_ranks tasks
  /// can safely reach for scratch; the *contents* of one slot are still a
  /// single buffer whose per-rank tiles are disjoint, matching the rank
  /// ownership of every other distributed vector.
  DistVector& vec(std::size_t slot);

  /// Number of slots materialized so far (observability for tests).
  std::size_t allocated() const;

  /// Zero-fill every materialized slot (host-side, unpriced).  A scrubbed
  /// workspace is indistinguishable from a freshly constructed one — the
  /// WorkspacePool scrubs on acquire so pooled reuse cannot leak one
  /// session's scratch contents into another's trajectory.
  void scrub();

  const grid::Grid2D& grid() const { return *g_; }
  const grid::Decomposition& decomp() const { return *d_; }
  int ns() const { return ns_; }

private:
  const grid::Grid2D* g_;
  const grid::Decomposition* d_;
  int ns_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<DistVector>> slots_;
};

/// Cross-session pool of SolverWorkspaces keyed by shape.
///
/// A farm session's stepper needs grid-shaped scratch for the lifetime of
/// a job; jobs churn, shapes repeat.  The pool keeps one entry per
/// distinct (grid, decomposition, ns) shape ever acquired and leases free
/// entries to new steppers, so a farm running many same-shape jobs
/// allocates each scratch slot once per *concurrent* job instead of once
/// per job.  Each entry owns canonical copies of its Grid2D and
/// Decomposition (value types), so leased workspaces never dangle into a
/// finished session's spine.
///
/// Determinism: a leased workspace is scrubbed to zeros on acquire,
/// making it bit-indistinguishable from the fresh workspace a solo run
/// would have constructed.  Thread-safe; Lease release is lock-cheap.
class WorkspacePool {
public:
  /// Move-only handle on a pooled workspace; returns it on destruction.
  /// A default-constructed Lease is empty (ws() must not be called).
  class Lease {
  public:
    Lease() = default;
    Lease(Lease&& o) noexcept : pool_(o.pool_), ws_(o.ws_) {
      o.pool_ = nullptr;
      o.ws_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        ws_ = o.ws_;
        o.pool_ = nullptr;
        o.ws_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    bool valid() const { return ws_ != nullptr; }
    SolverWorkspace& ws() const {
      V2D_REQUIRE(ws_ != nullptr, "empty workspace lease");
      return *ws_;
    }

  private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, SolverWorkspace* ws) : pool_(pool), ws_(ws) {}
    void release();

    WorkspacePool* pool_ = nullptr;
    SolverWorkspace* ws_ = nullptr;
  };

  /// Lease a workspace matching (g, d, ns): a scrubbed free entry of that
  /// shape if one exists, a freshly created entry otherwise.
  Lease acquire(const grid::Grid2D& g, const grid::Decomposition& d, int ns);

  /// Entries ever created (== high-water mark of concurrent same-shape
  /// leases, summed over shapes).
  std::size_t created() const;
  /// Acquisitions served by reusing an existing entry.
  std::uint64_t reused() const;
  /// Entries currently leased out.
  std::size_t leased() const;

private:
  struct Entry {
    Entry(const grid::Grid2D& g_in, const grid::Decomposition& d_in, int ns_in)
        : g(g_in), d(d_in), ns(ns_in), ws(g, d, ns) {}
    grid::Grid2D g;          // canonical copies: leased workspaces
    grid::Decomposition d;   // never reference a session's spine
    int ns;
    SolverWorkspace ws;
    bool busy = false;
  };

  static bool shape_equal(const Entry& e, const grid::Grid2D& g,
                          const grid::Decomposition& d, int ns);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::uint64_t reused_ = 0;
};

}  // namespace v2d::linalg
