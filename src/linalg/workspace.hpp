#pragma once
/// \file workspace.hpp
/// \brief Reusable scratch-vector workspace for the Krylov solvers.
///
/// Every solver iteration needs a handful of grid-shaped temporaries.
/// Allocating them per solver instance (let alone per solve) churns the
/// allocator across the paper's 300-solve workload and the MG smoother's
/// repeated sweeps, so the scratch vectors live here instead: one
/// workspace per (grid, decomposition, species) shape, slots allocated
/// lazily on first use and reused for the lifetime of the workspace.
/// CgSolver and BicgstabSolver can share one workspace — their solves
/// never nest (a preconditioner owns its own level vectors), and slot k
/// is the same buffer in both, so a CG solve followed by a BiCGSTAB solve
/// on the same shape costs zero additional allocations.

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/dist_vector.hpp"

namespace v2d::linalg {

class SolverWorkspace {
public:
  SolverWorkspace(const grid::Grid2D& g, const grid::Decomposition& d, int ns);

  /// The scratch vector in `slot`, allocating it on first access.
  /// Contents persist between calls; callers must not assume zeros.
  /// Slot materialization is mutex-guarded so concurrent par_ranks tasks
  /// can safely reach for scratch; the *contents* of one slot are still a
  /// single buffer whose per-rank tiles are disjoint, matching the rank
  /// ownership of every other distributed vector.
  DistVector& vec(std::size_t slot);

  /// Number of slots materialized so far (observability for tests).
  std::size_t allocated() const;

  const grid::Grid2D& grid() const { return *g_; }
  const grid::Decomposition& decomp() const { return *d_; }
  int ns() const { return ns_; }

private:
  const grid::Grid2D* g_;
  const grid::Decomposition* d_;
  int ns_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<DistVector>> slots_;
};

}  // namespace v2d::linalg
