#include "linalg/kernel_counts.hpp"

namespace v2d::linalg {

namespace {

using sim::KernelCounts;
using sim::OpClass;

/// Builder mirroring the recording a strip-mined interpreter pass makes.
/// S = ceil(n/VL) strips; per strip the loop helper books one whilelt
/// (Predicate over all VL lanes) and one loop_iter (IntOp + Branch over the
/// strip's active lanes, which sum to n across strips).
struct Formula {
  std::uint64_t n;
  unsigned vl;
  std::uint64_t strips;
  KernelCounts c;

  Formula(std::uint64_t n_, unsigned vl_)
      : n(n_), vl(vl_), strips((n_ + vl_ - 1) / vl_) {}

  void op(OpClass cls, std::uint64_t instr, std::uint64_t lanes) {
    const auto i = static_cast<std::size_t>(cls);
    c.instr[i] += instr;
    c.lanes[i] += lanes;
  }

  /// Loop control of strip_mine / the loop part of strip_reduce.
  void loop() {
    op(OpClass::Predicate, strips, strips * vl);
    op(OpClass::IntOp, strips, n);
    op(OpClass::Branch, strips, n);
  }

  /// `k` predicated ops of `cls` per strip (k·S instructions, k·n lanes).
  void per_strip(OpClass cls, std::uint64_t k) {
    op(cls, k * strips, k * n);
  }

  /// `k` contiguous vector loads per strip.
  void loads(std::uint64_t k) {
    per_strip(OpClass::LoadContig, k);
    c.bytes_read += 8 * k * n;
  }

  /// `k` gather loads per strip.
  void gathers(std::uint64_t k) {
    per_strip(OpClass::LoadGather, k);
    c.bytes_read += 8 * k * n;
  }

  /// `k` contiguous vector stores per strip.
  void stores(std::uint64_t k) {
    per_strip(OpClass::StoreContig, k);
    c.bytes_written += 8 * k * n;
  }

  /// `k` dup() broadcasts per kernel call (1 instruction, 1 lane each).
  void dups(std::uint64_t k) { op(OpClass::Select, k, k); }

  /// strip_reduce epilogue: one ptrue + one full-width horizontal reduce.
  void reduce_epilogue() {
    op(OpClass::Predicate, 1, vl);
    op(OpClass::Reduce, 1, vl);
  }
};

}  // namespace

KernelCounts analytic_counts(KernelShape shape, std::uint64_t n, unsigned vl) {
  Formula f(n, vl);
  switch (shape) {
    case KernelShape::Dprod:
      // strip_reduce: dup(0) + per strip {2 ld1, fma_merge} + ptrue/faddv.
      f.dups(1);
      f.loop();
      f.loads(2);
      f.per_strip(OpClass::FlopFma, 1);
      f.reduce_epilogue();
      break;
    case KernelShape::Daxpy:
      f.dups(1);
      f.loop();
      f.loads(2);
      f.per_strip(OpClass::FlopFma, 1);
      f.stores(1);
      break;
    case KernelShape::Dscal:
      f.dups(2);
      f.loop();
      f.loads(1);
      f.per_strip(OpClass::FlopFma, 1);
      f.stores(1);
      break;
    case KernelShape::Ddaxpy:
      f.dups(2);
      f.loop();
      f.loads(3);
      f.per_strip(OpClass::FlopFma, 2);
      f.stores(1);
      break;
    case KernelShape::Xpby:
      f.dups(1);
      f.loop();
      f.loads(2);
      f.per_strip(OpClass::FlopFma, 1);
      f.stores(1);
      break;
    case KernelShape::Copy:
      f.loop();
      f.loads(1);
      f.stores(1);
      break;
    case KernelShape::Fill:
      f.dups(1);
      f.loop();
      f.stores(1);
      break;
    case KernelShape::Sub:
      f.loop();
      f.loads(2);
      f.per_strip(OpClass::FlopAdd, 1);
      f.stores(1);
      break;
    case KernelShape::Hadamard:
      f.loop();
      f.loads(2);
      f.per_strip(OpClass::FlopMul, 1);
      f.stores(1);
      break;
    case KernelShape::StencilRow:
      // 5 coefficient + 5 solution loads, mul + 4 FMAs, one store.
      f.loop();
      f.loads(10);
      f.per_strip(OpClass::FlopMul, 1);
      f.per_strip(OpClass::FlopFma, 4);
      f.stores(1);
      break;
    case KernelShape::AxpyOut:
      // z ← x + a·y: the COPY disappears into the DAXPY's third operand.
      f.dups(1);
      f.loop();
      f.loads(2);
      f.per_strip(OpClass::FlopFma, 1);
      f.stores(1);
      break;
    case KernelShape::PUpdate:
      // p ← r + b·(p − w·v): two chained FMAs, p streamed once.
      f.dups(2);
      f.loop();
      f.loads(3);
      f.per_strip(OpClass::FlopFma, 2);
      f.stores(1);
      break;
    case KernelShape::HadamardDot2:
      // Precond apply + {r·z, r·r} gang: two accumulators, two fma_merge
      // per strip on in-register values, one ptrue + two reduces per row.
      f.dups(2);
      f.loop();
      f.loads(2);
      f.per_strip(OpClass::FlopMul, 1);
      f.per_strip(OpClass::FlopFma, 2);
      f.stores(1);
      f.op(OpClass::Predicate, 1, vl);
      f.op(OpClass::Reduce, 2, 2 * static_cast<std::uint64_t>(vl));
      break;
    case KernelShape::HadamardUpdateDot2:
      // The CG tail composite: the residual DAXPY rides the precond+gang
      // sweep (one extra load, FMA and store over HadamardDot2).
      f.dups(3);
      f.loop();
      f.loads(3);
      f.per_strip(OpClass::FlopMul, 1);
      f.per_strip(OpClass::FlopFma, 3);
      f.stores(2);
      f.op(OpClass::Predicate, 1, vl);
      f.op(OpClass::Reduce, 2, 2 * static_cast<std::uint64_t>(vl));
      break;
    case KernelShape::CouplingRow:
      f.loop();
      f.loads(3);
      f.per_strip(OpClass::FlopFma, 1);
      f.stores(1);
      break;
    case KernelShape::DiagCorrectRow:
      // dup(ω) + per strip {ld d, ld r, mul, ld x, fma, st}.
      f.dups(1);
      f.loop();
      f.loads(3);
      f.per_strip(OpClass::FlopMul, 1);
      f.per_strip(OpClass::FlopFma, 1);
      f.stores(1);
      break;
    case KernelShape::DiagScaleRow:
      // dup(ω) + per strip {ld d, ld r, mul, mul, st}.
      f.dups(1);
      f.loop();
      f.loads(2);
      f.per_strip(OpClass::FlopMul, 2);
      f.stores(1);
      break;
    case KernelShape::RestrictRow:
      // dup(1/4), dup(3/4) per call; per strip one dup(0) accumulator plus,
      // for each of the 4 fine rows, {4 gathers, mul, 3 fma, dup(w),
      // fma_merge}; then one store.
      f.dups(2);
      f.loop();
      f.op(OpClass::Select, 5 * f.strips, 5 * f.strips);
      f.gathers(16);
      f.per_strip(OpClass::FlopMul, 4);
      f.per_strip(OpClass::FlopFma, 16);
      f.stores(1);
      break;
    case KernelShape::ProlongRow:
      // dup(1/4), dup(3/4) per call; per strip {4 gathers, 2 mul, ld fine,
      // 4 fma, st}.
      f.dups(2);
      f.loop();
      f.gathers(4);
      f.per_strip(OpClass::FlopMul, 2);
      f.loads(1);
      f.per_strip(OpClass::FlopFma, 4);
      f.stores(1);
      break;
  }
  return f.c;
}

}  // namespace v2d::linalg
