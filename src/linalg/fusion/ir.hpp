#pragma once
/// \file ir.hpp
/// \brief Primitive-chain IR for the fusion planner.
///
/// A Chain is the planner's input: a short straight-line sequence of
/// primitive kernel launches (the body of one solver-iteration hot spot)
/// over a small set of operand slots.  Slots are indices into a caller-
/// provided binding table (fused_exec.hpp's Bind); the IR itself carries no
/// pointers, so chains are constexpr values and the planner can run at
/// compile time for the built-in template set.
///
/// Node semantics (all elementwise over i, except Dot):
///   Axpy     dst ← src0·scal + src1
///   Mul      dst ← src0·src1
///   MulAdd   dst ← src0·src1 + src2          (species-coupling add)
///   SubFrom  dst ← src0 − src1
///   Copy     dst ← src0                      (store-only when src0 is
///                                             already register-resident —
///                                             this is the copy-elision rule)
///   Stencil  dst ← five-point row over the 8 consecutive slots starting at
///            src0, laid out [cc, cw, ce, cs, cn, xc, xs, xn]; xc must have
///            a readable ghost on each side
///   Dot      acc += Σ src0·src1              (reduction tail; accumulates
///                                             through the caller's
///                                             compensated DdAccumulator in
///                                             element order)
///
/// The chain lists which slots are live-out (must reach memory).  Writes to
/// other slots are temporaries the planner keeps in registers.

#include <cstdint>

#include "support/error.hpp"

namespace v2d::linalg::fusion {

inline constexpr std::uint8_t kNone = 0xff;
inline constexpr std::size_t kMaxNodes = 8;
inline constexpr std::size_t kMaxSlots = 16;
inline constexpr std::size_t kMaxScalars = 4;
inline constexpr std::size_t kMaxAccs = 2;
inline constexpr std::size_t kNameLen = 24;

enum class Prim : std::uint8_t {
  Axpy,
  Mul,
  MulAdd,
  SubFrom,
  Copy,
  Stencil,
  Dot,
};

constexpr const char* prim_name(Prim p) {
  switch (p) {
    case Prim::Axpy: return "axpy";
    case Prim::Mul: return "mul";
    case Prim::MulAdd: return "muladd";
    case Prim::SubFrom: return "sub";
    case Prim::Copy: return "copy";
    case Prim::Stencil: return "stencil";
    case Prim::Dot: return "dot";
  }
  return "?";
}

struct PrimNode {
  Prim op = Prim::Copy;
  std::uint8_t dst = kNone;   ///< slot written (kNone for Dot)
  std::uint8_t src0 = kNone;
  std::uint8_t src1 = kNone;
  std::uint8_t src2 = kNone;
  std::uint8_t scal = kNone;  ///< scalar index (Axpy)
  std::uint8_t acc = kNone;   ///< accumulator index (Dot)
};

struct Chain {
  char name[kNameLen] = {};
  std::uint8_t nnodes = 0;
  std::uint8_t nslots = 0;
  std::uint8_t nscal = 0;
  std::uint8_t naccs = 0;
  PrimNode node[kMaxNodes] = {};
  bool live_out[kMaxSlots] = {};
};

/// Failure path shared by compile-time and runtime planning: reaching it
/// during constant evaluation is a compile error (the built-in template set
/// can never ship an illegal chain); at runtime it throws.
[[noreturn]] inline void plan_fail(const char* msg) {
  throw Error(std::string("fusion planner: ") + msg);
}

namespace detail {

constexpr void set_name(Chain& c, const char* name) {
  std::size_t i = 0;
  for (; name[i] != '\0' && i + 1 < kNameLen; ++i) c.name[i] = name[i];
  c.name[i] = '\0';
}

constexpr void push(Chain& c, PrimNode n) {
  if (c.nnodes >= kMaxNodes) plan_fail("chain node overflow");
  c.node[c.nnodes++] = n;
}

}  // namespace detail

// --- built-in chains (the solver hot-loop composites) ------------------------

/// CG twin update: x ← x + s0·p and r ← r + s1·q (slots p=0 x=1 q=2 r=3).
constexpr Chain make_daxpy2_chain() {
  Chain c{};
  detail::set_name(c, "daxpy2");
  c.nslots = 4;
  c.nscal = 2;
  c.live_out[1] = true;
  c.live_out[3] = true;
  detail::push(c, {Prim::Axpy, 1, 0, 1, kNone, 0, kNone});
  detail::push(c, {Prim::Axpy, 3, 2, 3, kNone, 1, kNone});
  return c;
}

/// Fused COPY+DAXPY: z ← x + s0·y (slots x=0 y=1 z=2; the copy of x into z
/// is elided into the FMA's addend).
constexpr Chain make_axpy_out_chain() {
  Chain c{};
  detail::set_name(c, "axpy_out");
  c.nslots = 3;
  c.nscal = 1;
  c.live_out[2] = true;
  detail::push(c, {Prim::Axpy, 2, 1, 0, kNone, 0, kNone});
  return c;
}

/// BiCGSTAB p-update: p ← r + s1·(p + s0·v) with s0 = −ω, s1 = β
/// (slots r=0 v=1 p=2, temp t=3).
constexpr Chain make_p_update_chain() {
  Chain c{};
  detail::set_name(c, "p_update");
  c.nslots = 4;
  c.nscal = 2;
  c.live_out[2] = true;
  detail::push(c, {Prim::Axpy, 3, 1, 2, kNone, 0, kNone});
  detail::push(c, {Prim::Axpy, 2, 3, 0, kNone, 1, kNone});
  return c;
}

/// Precond apply + ganged 2-dot: z ← m ⊙ r, acc0 += Σ z·r, acc1 += Σ r·r
/// (slots m=0 r=1 z=2).
constexpr Chain make_hadamard_dot2_chain() {
  Chain c{};
  detail::set_name(c, "hadamard_dot2");
  c.nslots = 3;
  c.naccs = 2;
  c.live_out[2] = true;
  detail::push(c, {Prim::Mul, 2, 0, 1, kNone, kNone, kNone});
  detail::push(c, {Prim::Dot, kNone, 2, 1, kNone, kNone, 0});
  detail::push(c, {Prim::Dot, kNone, 1, 1, kNone, kNone, 1});
  return c;
}

/// CG tail composite: r ← r + s0·q, then the precond+gang sweep over the
/// updated residual (slots m=0 q=1 r=2 z=3).
constexpr Chain make_hadamard_update_dot2_chain() {
  Chain c{};
  detail::set_name(c, "hadamard_update_dot2");
  c.nslots = 4;
  c.nscal = 1;
  c.naccs = 2;
  c.live_out[2] = true;
  c.live_out[3] = true;
  detail::push(c, {Prim::Axpy, 2, 1, 2, kNone, 0, kNone});
  detail::push(c, {Prim::Mul, 3, 0, 2, kNone, kNone, kNone});
  detail::push(c, {Prim::Dot, kNone, 3, 2, kNone, kNone, 0});
  detail::push(c, {Prim::Dot, kNone, 2, 2, kNone, kNone, 1});
  return c;
}

/// Fused stencil-row composites.  Slots 0..7 are the stencil pack
/// [cc cw ce cs cn xc xs xn]; then optionally csp/xo (coupling), the
/// stencil temp, the residual operand b (sub form) or the distinct dot
/// operand w (dot form), and finally y.
///
///   bsub=true            y ← b − (A·x) row          (fused residual)
///   bsub=false,self=true y ← (A·x) row, acc0 += Σ xc·y   (CG p·Ap)
///   bsub=false,self=false y ← (A·x) row, acc0 += Σ w·y
constexpr Chain make_stencil_chain(bool coupled, bool bsub, bool self_w) {
  Chain c{};
  detail::set_name(c, bsub ? (coupled ? "stencil_sub_coupled" : "stencil_sub")
                           : (self_w ? (coupled ? "stencil_dot_coupled"
                                                : "stencil_dot")
                                     : (coupled ? "stencil_dotw_coupled"
                                                : "stencil_dotw")));
  std::uint8_t s = 8;  // slots 0..7 = stencil pack
  const std::uint8_t csp = coupled ? s++ : kNone;
  const std::uint8_t xo = coupled ? s++ : kNone;
  const std::uint8_t t = s++;
  const std::uint8_t b = bsub ? s++ : kNone;
  const std::uint8_t w = (!bsub && !self_w) ? s++ : kNone;
  const std::uint8_t y = s++;
  c.nslots = s;
  c.naccs = bsub ? 0 : 1;
  c.live_out[y] = true;
  detail::push(c, {Prim::Stencil, t, 0, kNone, kNone, kNone, kNone});
  if (coupled) detail::push(c, {Prim::MulAdd, t, csp, xo, t, kNone, kNone});
  if (bsub) {
    detail::push(c, {Prim::SubFrom, y, b, t, kNone, kNone, kNone});
  } else {
    detail::push(c, {Prim::Copy, y, t, kNone, kNone, kNone, kNone});
    const std::uint8_t wslot = self_w ? std::uint8_t{5} : w;
    detail::push(c, {Prim::Dot, kNone, wslot, y, kNone, kNone, 0});
  }
  return c;
}

}  // namespace v2d::linalg::fusion
