#pragma once
/// \file planner.hpp
/// \brief Greedy fusion planner: Chain IR → executable FusionPlan.
///
/// The planner walks a Chain front-to-back and greedily appends nodes to
/// the current fused group while that stays legal:
///
///   - elementwise → elementwise: always fuses (producer values stay in
///     registers; temporaries never touch memory);
///   - elementwise → reduction tail: a Dot joins the sweep as a predicated
///     FMA chain plus one horizontal reduce in the group epilogue, and the
///     numerical result is produced by the compensated (DdAccumulator)
///     element-order tail over the operands' memory images — bit-identical
///     to the unfused DPROD/dot_ganged path;
///   - copy-elision: a Copy whose source is register-resident lowers to a
///     bare store (or to nothing when the destination is not live-out);
///   - a Stencil node only ever *heads* a group (its 10-load sweep is the
///     group's backbone);
///   - ILLEGAL: a node that writes a slot some Dot already in the group
///     reads (write-after-read across a reduction would change which values
///     the reduction sees) — the group is cut and the writer starts a new
///     one.  Likewise a Dot whose operand is an unstored temporary, or a
///     temporary read across a group boundary, is rejected outright.
///
/// Each group lowers to a GroupProgram: a register-allocated straight-line
/// step sequence (prologue broadcasts, a strip-body, reduction tails) that
/// all three execution representations consume — the generic interpreter
/// sweep, the natively stamped template (fused_exec.cpp), and the composed
/// closed-form KernelCounts (group_counts).  Everything here is constexpr
/// so the built-in template set is planned at compile time; the same code
/// runs at runtime for ad-hoc chains (tests, the DAG annotator).

#include <cstdint>
#include <string>

#include "linalg/fusion/ir.hpp"
#include "sim/isa.hpp"
#include "vla/kernel_dag.hpp"

namespace v2d::linalg::fusion {

inline constexpr std::size_t kMaxRegs = 32;
inline constexpr std::size_t kMaxSteps = 40;
inline constexpr std::size_t kMaxPre = kMaxScalars + kMaxAccs;
inline constexpr std::size_t kMaxGroups = kMaxNodes;

enum class StepKind : std::uint8_t {
  DupScal,  ///< pre:  reg[dst] ← broadcast scal[a]
  DupAcc,   ///< pre:  accreg[dst] ← broadcast 0
  Load,     ///< body: reg[dst] ← slot[a][i]
  Stencil,  ///< body: reg[dst] ← 5-pt row over slots a..a+7; reg[b] ← xc tap
  Fma,      ///< body: reg[dst] ← reg[a]·reg[b] + reg[c]
  Mul,      ///< body: reg[dst] ← reg[a]·reg[b]
  Sub,      ///< body: reg[dst] ← reg[a] − reg[b]
  Store,    ///< body: slot[dst][i] ← reg[a]
  DotAcc,   ///< body: accreg[dst] ← fma_merge(reg[a], reg[b], accreg[dst])
};

struct Step {
  StepKind k = StepKind::Load;
  std::uint8_t dst = 0;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;
};

/// Compensated element-order tail of one fused dot: after the sweep,
/// acc[acc] += Σ slot[slot_a][i] · slot[slot_b][i] through a DdAccumulator.
struct DotTail {
  std::uint8_t acc = 0;
  std::uint8_t slot_a = 0;
  std::uint8_t slot_b = 0;
};

/// One fused group, fully lowered.  `sig` is the fused-op signature: a hash
/// of the exact step encoding, keying both the native-stamp registry and
/// the analytic-count memo.
struct GroupProgram {
  std::uint8_t first_node = 0;
  std::uint8_t nnodes = 0;
  std::uint8_t npre = 0;
  std::uint8_t nsteps = 0;
  std::uint8_t ntails = 0;
  std::uint8_t nregs = 0;
  std::uint8_t naccs = 0;
  std::uint64_t sig = 0;
  Step pre[kMaxPre] = {};
  Step step[kMaxSteps] = {};
  DotTail tail[kMaxAccs] = {};
};

struct FusionPlan {
  char name[kNameLen] = {};
  std::uint8_t ngroups = 0;
  GroupProgram group[kMaxGroups] = {};
};

constexpr std::uint64_t group_signature(const GroupProgram& g) {
  std::uint64_t h = 1469598103934665603ull;
  const auto byte = [&h](std::uint8_t x) {
    h = (h ^ x) * 1099511628211ull;
  };
  const auto step = [&byte](const Step& s) {
    byte(static_cast<std::uint8_t>(s.k));
    byte(s.dst);
    byte(s.a);
    byte(s.b);
    byte(s.c);
  };
  byte(g.npre);
  for (std::uint8_t i = 0; i < g.npre; ++i) step(g.pre[i]);
  byte(g.nsteps);
  for (std::uint8_t i = 0; i < g.nsteps; ++i) step(g.step[i]);
  byte(g.ntails);
  for (std::uint8_t i = 0; i < g.ntails; ++i) {
    byte(g.tail[i].acc);
    byte(g.tail[i].slot_a);
    byte(g.tail[i].slot_b);
  }
  byte(g.naccs);
  byte(g.nregs);
  return h;
}

namespace detail {

/// May node `first+count` join the group [first, first+count)?
constexpr bool can_append(const Chain& c, std::uint8_t first,
                          std::uint8_t count) {
  if (first + count >= c.nnodes) return false;
  if (count >= kMaxNodes) return false;
  const PrimNode& cand = c.node[first + count];
  if (cand.op == Prim::Stencil) return false;  // stencil only heads a group
  if (cand.dst != kNone) {
    for (std::uint8_t k = first; k < first + count; ++k) {
      const PrimNode& nd = c.node[k];
      if (nd.op == Prim::Dot &&
          (nd.src0 == cand.dst || nd.src1 == cand.dst))
        return false;  // write-after-read across a reduction
    }
  }
  return true;
}

}  // namespace detail

/// Register-allocate and lower one group of chain nodes.
constexpr GroupProgram lower_group(const Chain& c, std::uint8_t first,
                                   std::uint8_t nnodes) {
  GroupProgram g{};
  g.first_node = first;
  g.nnodes = nnodes;

  std::uint8_t slot_reg[kMaxSlots] = {};
  std::uint8_t scal_reg[kMaxScalars] = {};
  bool written[kMaxSlots] = {};
  bool acc_used[kMaxAccs] = {};
  for (auto& r : slot_reg) r = kNone;
  for (auto& r : scal_reg) r = kNone;
  Step pre_scal[kMaxScalars] = {};
  std::uint8_t npre_scal = 0;

  const auto emit = [&g](Step s) {
    if (g.nsteps >= kMaxSteps) plan_fail("fused group exceeds step budget");
    g.step[g.nsteps++] = s;
  };
  const auto fresh = [&g]() -> std::uint8_t {
    if (g.nregs >= kMaxRegs) plan_fail("fused group exceeds register budget");
    return g.nregs++;
  };
  const auto fetch = [&](std::uint8_t slot) -> std::uint8_t {
    if (slot >= c.nslots) plan_fail("operand slot out of range");
    if (slot_reg[slot] != kNone) return slot_reg[slot];
    const std::uint8_t r = fresh();
    emit({StepKind::Load, r, slot, 0, 0});
    slot_reg[slot] = r;
    return r;
  };
  const auto scalar = [&](std::uint8_t sidx) -> std::uint8_t {
    if (sidx >= c.nscal) plan_fail("scalar index out of range");
    if (scal_reg[sidx] != kNone) return scal_reg[sidx];
    const std::uint8_t r = fresh();
    pre_scal[npre_scal++] = {StepKind::DupScal, r, sidx, 0, 0};
    scal_reg[sidx] = r;
    return r;
  };
  const auto write = [&](std::uint8_t slot, std::uint8_t r) {
    if (slot >= c.nslots) plan_fail("destination slot out of range");
    slot_reg[slot] = r;
    written[slot] = true;
    if (c.live_out[slot]) emit({StepKind::Store, slot, r, 0, 0});
  };

  for (std::uint8_t k = first; k < first + nnodes; ++k) {
    const PrimNode& nd = c.node[k];
    switch (nd.op) {
      case Prim::Axpy: {
        const std::uint8_t ra = fetch(nd.src0);
        const std::uint8_t rs = scalar(nd.scal);
        const std::uint8_t rc = fetch(nd.src1);
        const std::uint8_t rd = fresh();
        emit({StepKind::Fma, rd, ra, rs, rc});
        write(nd.dst, rd);
        break;
      }
      case Prim::Mul: {
        const std::uint8_t ra = fetch(nd.src0);
        const std::uint8_t rb = fetch(nd.src1);
        const std::uint8_t rd = fresh();
        emit({StepKind::Mul, rd, ra, rb, 0});
        write(nd.dst, rd);
        break;
      }
      case Prim::MulAdd: {
        const std::uint8_t ra = fetch(nd.src0);
        const std::uint8_t rb = fetch(nd.src1);
        const std::uint8_t rc = fetch(nd.src2);
        const std::uint8_t rd = fresh();
        emit({StepKind::Fma, rd, ra, rb, rc});
        write(nd.dst, rd);
        break;
      }
      case Prim::SubFrom: {
        const std::uint8_t ra = fetch(nd.src0);
        const std::uint8_t rb = fetch(nd.src1);
        const std::uint8_t rd = fresh();
        emit({StepKind::Sub, rd, ra, rb, 0});
        write(nd.dst, rd);
        break;
      }
      case Prim::Copy: {
        // Copy-elision: the destination inherits the source register; only
        // a live-out destination costs a store.
        const std::uint8_t ra = fetch(nd.src0);
        write(nd.dst, ra);
        break;
      }
      case Prim::Stencil: {
        if (k != first) plan_fail("stencil must head its group");
        if (nd.src0 + 8 > c.nslots) plan_fail("stencil slot pack out of range");
        const std::uint8_t rd = fresh();
        const std::uint8_t rt = fresh();
        emit({StepKind::Stencil, rd, nd.src0, rt, 0});
        // The center operand is now register-resident: a following self-dot
        // (w == xc) reuses the tap instead of reloading.
        slot_reg[nd.src0 + 5] = rt;
        write(nd.dst, rd);
        break;
      }
      case Prim::Dot: {
        // The compensated tail reads the operands' memory images after the
        // sweep, so both must be pure inputs or live-out stores.
        if (written[nd.src0] && !c.live_out[nd.src0])
          plan_fail("reduction reads an unstored temporary");
        if (written[nd.src1] && !c.live_out[nd.src1])
          plan_fail("reduction reads an unstored temporary");
        if (nd.acc >= c.naccs || nd.acc >= kMaxAccs)
          plan_fail("accumulator index out of range");
        const std::uint8_t ra = fetch(nd.src0);
        const std::uint8_t rb = fetch(nd.src1);
        acc_used[nd.acc] = true;
        emit({StepKind::DotAcc, nd.acc, ra, rb, 0});
        if (g.ntails >= kMaxAccs) plan_fail("reduction tail overflow");
        g.tail[g.ntails++] = {nd.acc, nd.src0, nd.src1};
        break;
      }
    }
  }

  for (std::uint8_t i = 0; i < npre_scal; ++i) g.pre[g.npre++] = pre_scal[i];
  for (std::uint8_t a = 0; a < kMaxAccs; ++a) {
    if (!acc_used[a]) continue;
    g.pre[g.npre++] = {StepKind::DupAcc, a, 0, 0, 0};
    ++g.naccs;
  }
  g.sig = group_signature(g);
  return g;
}

/// Plan a chain: greedy grouping + lowering + cross-group legality.
constexpr FusionPlan plan_chain(const Chain& c) {
  FusionPlan p{};
  for (std::size_t i = 0; i < kNameLen; ++i) p.name[i] = c.name[i];

  std::uint8_t start = 0;
  while (start < c.nnodes) {
    std::uint8_t count = 1;
    while (detail::can_append(c, start, count)) ++count;
    if (p.ngroups >= kMaxGroups) plan_fail("group overflow");
    p.group[p.ngroups++] = lower_group(c, start, count);
    start = static_cast<std::uint8_t>(start + count);
  }

  // A temporary (written, not live-out) exists only in registers; reading
  // it from a later group would read garbage.
  std::int16_t writer_group[kMaxSlots];
  for (auto& w : writer_group) w = -1;
  for (std::uint8_t gi = 0; gi < p.ngroups; ++gi) {
    const GroupProgram& g = p.group[gi];
    for (std::uint8_t k = g.first_node; k < g.first_node + g.nnodes; ++k) {
      const PrimNode& nd = c.node[k];
      const std::uint8_t reads[3] = {nd.src0, nd.src1, nd.src2};
      for (const std::uint8_t s : reads) {
        if (s == kNone) continue;
        if (writer_group[s] >= 0 && writer_group[s] < gi && !c.live_out[s])
          plan_fail("temporary value crosses a group boundary");
      }
    }
    for (std::uint8_t k = g.first_node; k < g.first_node + g.nnodes; ++k) {
      const PrimNode& nd = c.node[k];
      if (nd.dst != kNone) writer_group[nd.dst] = gi;
    }
  }
  return p;
}

/// Composed closed-form KernelCounts for one fused group over n elements at
/// `vl` lanes — exactly the recording run_interpret would make.
sim::KernelCounts group_counts(const GroupProgram& g, std::uint64_t n,
                               unsigned vl);

/// Deterministic human-readable dump of a plan (golden-tested: byte
/// identical across runs and thread counts).
std::string dump_plan(const Chain& c, const FusionPlan& p);

/// Annotate a captured solver-iteration DAG (vla/kernel_dag.hpp) with the
/// producer→consumer groups the planner's legality rules admit: greedy
/// elementwise→elementwise and elementwise→reduction-tail chaining over
/// dataflow-adjacent launches, cut at collectives ("barrier" rule), at
/// stencil launches past the group head, and at writes to an operand some
/// reduction already in the group reads ("war-across-reduction" rule).
/// Sets DagNode::group and DagNode::rule in place; node order is
/// untouched, so the annotated dump stays deterministic.
void annotate_dag(vla::KernelDag& dag);

}  // namespace v2d::linalg::fusion
