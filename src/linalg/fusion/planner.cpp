#include "linalg/fusion/planner.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

namespace v2d::linalg::fusion {

namespace {

using sim::KernelCounts;
using sim::OpClass;

void op(KernelCounts& c, OpClass cls, std::uint64_t instr,
        std::uint64_t lanes) {
  const auto i = static_cast<std::size_t>(cls);
  c.instr[i] += instr;
  c.lanes[i] += lanes;
}

}  // namespace

KernelCounts group_counts(const GroupProgram& g, std::uint64_t n,
                          unsigned vl) {
  KernelCounts c;
  const std::uint64_t strips = (n + vl - 1) / vl;

  // Prologue broadcasts (ctx.dup: one Select instruction, one lane each).
  op(c, OpClass::Select, g.npre, g.npre);

  // strip_mine loop control: one whilelt per strip, IntOp+Branch per element.
  op(c, OpClass::Predicate, strips, strips * vl);
  op(c, OpClass::IntOp, strips, n);
  op(c, OpClass::Branch, strips, n);

  const auto per_strip = [&](OpClass cls, std::uint64_t k) {
    op(c, cls, k * strips, k * n);
  };
  for (std::uint8_t i = 0; i < g.nsteps; ++i) {
    switch (g.step[i].k) {
      case StepKind::Load:
        per_strip(OpClass::LoadContig, 1);
        c.bytes_read += 8 * n;
        break;
      case StepKind::Stencil:
        // 5 coefficient + 5 solution loads, one mul, four chained FMAs.
        per_strip(OpClass::LoadContig, 10);
        c.bytes_read += 80 * n;
        per_strip(OpClass::FlopMul, 1);
        per_strip(OpClass::FlopFma, 4);
        break;
      case StepKind::Fma:
      case StepKind::DotAcc:
        per_strip(OpClass::FlopFma, 1);
        break;
      case StepKind::Mul:
        per_strip(OpClass::FlopMul, 1);
        break;
      case StepKind::Sub:
        per_strip(OpClass::FlopAdd, 1);
        break;
      case StepKind::Store:
        per_strip(OpClass::StoreContig, 1);
        c.bytes_written += 8 * n;
        break;
      case StepKind::DupScal:
      case StepKind::DupAcc:
        break;  // prologue-only kinds never appear in the strip body
    }
  }

  // Reduction epilogue: one ptrue, one horizontal reduce per accumulator.
  if (g.naccs > 0) {
    op(c, OpClass::Predicate, 1, vl);
    op(c, OpClass::Reduce, g.naccs,
       static_cast<std::uint64_t>(g.naccs) * vl);
  }
  return c;
}

namespace {

const char* step_kind_name(StepKind k) {
  switch (k) {
    case StepKind::DupScal: return "dup_scal";
    case StepKind::DupAcc: return "dup_acc";
    case StepKind::Load: return "ld";
    case StepKind::Stencil: return "stencil";
    case StepKind::Fma: return "fma";
    case StepKind::Mul: return "mul";
    case StepKind::Sub: return "sub";
    case StepKind::Store: return "st";
    case StepKind::DotAcc: return "dot_acc";
  }
  return "?";
}

void print_step(std::ostringstream& os, const Step& s) {
  os << step_kind_name(s.k);
  switch (s.k) {
    case StepKind::DupScal:
      os << " r" << int(s.dst) << " <- s" << int(s.a);
      break;
    case StepKind::DupAcc:
      os << " a" << int(s.dst) << " <- 0";
      break;
    case StepKind::Load:
      os << " r" << int(s.dst) << " <- v" << int(s.a);
      break;
    case StepKind::Stencil:
      os << " r" << int(s.dst) << " <- v" << int(s.a) << "..v"
         << int(s.a) + 7 << " (tap r" << int(s.b) << ")";
      break;
    case StepKind::Fma:
      os << " r" << int(s.dst) << " <- r" << int(s.a) << "*r" << int(s.b)
         << "+r" << int(s.c);
      break;
    case StepKind::Mul:
      os << " r" << int(s.dst) << " <- r" << int(s.a) << "*r" << int(s.b);
      break;
    case StepKind::Sub:
      os << " r" << int(s.dst) << " <- r" << int(s.a) << "-r" << int(s.b);
      break;
    case StepKind::Store:
      os << " v" << int(s.dst) << " <- r" << int(s.a);
      break;
    case StepKind::DotAcc:
      os << " a" << int(s.dst) << " += r" << int(s.a) << "*r" << int(s.b);
      break;
  }
}

}  // namespace

namespace {

bool is_barrier_op(const std::string& op) {
  return op.rfind("barrier:", 0) == 0;
}
bool is_stencil_op(const std::string& op) { return op == "matvec"; }
bool is_reduction_op(const std::string& op) { return op == "dot"; }

bool contains_name(const std::vector<std::string>& v, const std::string& s) {
  for (const auto& x : v)
    if (x == s) return true;
  return false;
}

}  // namespace

void annotate_dag(vla::KernelDag& dag) {
  int group = -1;
  std::uint64_t group_n = 0;
  std::size_t group_size = 0;
  bool open = false;
  // Operands read by reductions already in the open group: a later write
  // to any of them is the write-after-read-across-a-reduction cut.
  std::vector<std::string> dot_reads;

  for (auto& nd : dag.nodes) {
    if (is_barrier_op(nd.op)) {
      nd.group = -1;
      nd.rule = "barrier";
      open = false;
      continue;
    }
    const bool stencil = is_stencil_op(nd.op);
    const bool reduction = is_reduction_op(nd.op);
    bool war = false;
    if (open) {
      for (const auto& w : nd.writes)
        if (contains_name(dot_reads, w)) war = true;
    }
    const bool join = open && !stencil && !war && nd.n == group_n &&
                      group_size < kMaxNodes;
    if (join) {
      nd.group = group;
      ++group_size;
      nd.rule = reduction ? "reduction-tail" : "elementwise";
    } else {
      ++group;
      nd.group = group;
      nd.rule = stencil ? "stencil-head" : (war ? "war-cut" : "head");
      group_size = 1;
      group_n = nd.n;
      open = true;
      dot_reads.clear();
    }
    if (reduction)
      for (const auto& r : nd.reads) dot_reads.push_back(r);
  }
}

std::string dump_plan(const Chain& c, const FusionPlan& p) {
  std::ostringstream os;
  os << "chain " << c.name << ": nodes=" << int(c.nnodes)
     << " slots=" << int(c.nslots) << " scalars=" << int(c.nscal)
     << " accs=" << int(c.naccs) << "\n";
  for (std::uint8_t k = 0; k < c.nnodes; ++k) {
    const PrimNode& nd = c.node[k];
    os << "  n" << int(k) << " " << prim_name(nd.op);
    if (nd.dst != kNone) os << " v" << int(nd.dst);
    if (nd.acc != kNone) os << " a" << int(nd.acc);
    os << " <-";
    if (nd.src0 != kNone) os << " v" << int(nd.src0);
    if (nd.scal != kNone) os << " s" << int(nd.scal);
    if (nd.src1 != kNone) os << " v" << int(nd.src1);
    if (nd.src2 != kNone) os << " v" << int(nd.src2);
    os << "\n";
  }
  os << "plan " << p.name << ": groups=" << int(p.ngroups) << "\n";
  char sigbuf[19];
  for (std::uint8_t gi = 0; gi < p.ngroups; ++gi) {
    const GroupProgram& g = p.group[gi];
    std::snprintf(sigbuf, sizeof sigbuf, "%016llx",
                  static_cast<unsigned long long>(g.sig));
    os << "  group " << int(gi) << " nodes=[" << int(g.first_node) << ".."
       << int(g.first_node) + int(g.nnodes) - 1 << "] sig=" << sigbuf
       << " regs=" << int(g.nregs) << " accs=" << int(g.naccs) << "\n";
    for (std::uint8_t i = 0; i < g.npre; ++i) {
      os << "    pre  ";
      print_step(os, g.pre[i]);
      os << "\n";
    }
    for (std::uint8_t i = 0; i < g.nsteps; ++i) {
      os << "    body ";
      print_step(os, g.step[i]);
      os << "\n";
    }
    for (std::uint8_t i = 0; i < g.ntails; ++i) {
      const DotTail& t = g.tail[i];
      os << "    tail a" << int(t.acc) << " += dd(v" << int(t.slot_a)
         << "*v" << int(t.slot_b) << ")\n";
    }
  }
  return os.str();
}

}  // namespace v2d::linalg::fusion
