#pragma once
/// \file fused_exec.hpp
/// \brief Execute FusionPlans in all three execution representations.
///
/// A planned group runs as:
///   - Interpret: a generic multi-op sweep that walks the GroupProgram's
///     steps per strip through vla::Context ops (recording op-by-op exactly
///     like a hand-written composite kernel would);
///   - Native: a stamped-out template from a fixed set keyed by the
///     fused-op signature (GroupProgram::sig), with the recording composed
///     analytically by group_counts and memoized in the Context's count
///     cache under a signature-disjoint key space;
///   - both paths produce bit-identical results: elementwise steps evaluate
///     the same per-element expressions in the same association order, and
///     fused dots accumulate through the caller's DdAccumulator in element
///     order (rank partials stay rank-ordered at the call sites).
///
/// The convenience entry points below are the planner-generated composites:
/// each plans its built-in chain at compile time and binds the operands.
/// They are drop-in equivalents of the hand-written linalg:: composites and
/// back both the FuseMode::On wrappers (where the bespoke triple was
/// deleted) and the FuseMode::Plan call sites.

#include <span>
#include <string>

#include "linalg/fusion/planner.hpp"
#include "support/dd.hpp"
#include "vla/vla.hpp"

namespace v2d::linalg::fusion {

/// Operand binding for one plan execution: slot index → base pointer,
/// scalar index → value, accumulator index → caller's compensated dot.
/// Temporary slots need no binding (they live in registers).
struct Bind {
  double* slot[kMaxSlots] = {};
  double scal[kMaxScalars] = {};
  DdAccumulator* acc[kMaxAccs] = {};
  std::size_t n = 0;
};

/// Execute every group of `plan` over the binding, dispatching on the
/// context's exec mode.  Native groups must have a registered stamp.
void run(vla::Context& ctx, const FusionPlan& plan, const Bind& bind);

/// The generic interpreter sweep for one group (also the reference backend
/// the stamps are differentially tested against).
void run_interpret(vla::Context& ctx, const GroupProgram& g, const Bind& bind);

/// True when the fixed template set contains a native stamp for `sig`.
bool has_native_stamp(std::uint64_t sig);

/// Deterministic dump of every built-in chain, its plan, and its native
/// stamp ids (the `--dump-fusion-plan` payload).
std::string describe_builtin_plans();

// --- planner-generated composites -------------------------------------------

/// CG twin update: x ← x + a·p and r ← r + b·q in one fused sweep.
void daxpy2(vla::Context& ctx, double a, std::span<const double> p,
            std::span<double> x, double b, std::span<const double> q,
            std::span<double> r);

/// z ← x + a·y (the COPY is elided into the FMA addend).
void axpy_out(vla::Context& ctx, std::span<const double> x, double a,
              std::span<const double> y, std::span<double> z);

/// BiCGSTAB p-update: p ← r + b·(p − w·v).
void p_update(vla::Context& ctx, std::span<const double> r, double b, double w,
              std::span<const double> v, std::span<double> p);

/// z ← m ⊙ r with rz += Σ z·r and rr += Σ r·r folded into the sweep.
void hadamard_dot2(vla::Context& ctx, std::span<const double> m,
                   std::span<const double> r, std::span<double> z,
                   DdAccumulator& rz, DdAccumulator& rr);

/// r ← r + a·q folded into the precond+gang sweep.
void hadamard_update_dot2(vla::Context& ctx, std::span<const double> m,
                          double a, std::span<const double> q,
                          std::span<double> r, std::span<double> z,
                          DdAccumulator& rz, DdAccumulator& rr);

/// Fused stencil-row composites (residual / matvec+dot, optionally
/// species-coupled) — same operand contract as linalg::stencil_row_fused.
void stencil_row_fused(vla::Context& ctx, std::span<const double> cc,
                       std::span<const double> cw, std::span<const double> ce,
                       std::span<const double> cs, std::span<const double> cn,
                       const double* xc, const double* xs, const double* xn,
                       const double* csp, const double* xo, const double* bsub,
                       const double* wdot, DdAccumulator* dot,
                       std::span<double> y);

}  // namespace v2d::linalg::fusion
