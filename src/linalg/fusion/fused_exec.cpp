#include "linalg/fusion/fused_exec.hpp"

#include <sstream>
#include <unordered_map>
#include <utility>

#include "support/error.hpp"
#include "vla/loops.hpp"

namespace v2d::linalg::fusion {

// --- interpreter backend ------------------------------------------------------

void run_interpret(vla::Context& ctx, const GroupProgram& g, const Bind& b) {
  using vla::Predicate;
  using vla::VReg;

  VReg reg[kMaxRegs];
  VReg acc[kMaxAccs];
  for (std::uint8_t i = 0; i < g.npre; ++i) {
    const Step& s = g.pre[i];
    if (s.k == StepKind::DupScal)
      reg[s.dst] = ctx.dup(b.scal[s.a]);
    else
      acc[s.dst] = ctx.dup(0.0);
  }

  vla::strip_mine(ctx, b.n, [&](std::uint64_t i, const Predicate& p) {
    for (std::uint8_t k = 0; k < g.nsteps; ++k) {
      const Step& s = g.step[k];
      switch (s.k) {
        case StepKind::Load:
          reg[s.dst] = ctx.ld1(p, b.slot[s.a] + i);
          break;
        case StepKind::Stencil: {
          // The canonical five-point sweep: mul then four chained FMAs,
          // coefficient load before the matching solution load.
          const VReg vcc = ctx.ld1(p, b.slot[s.a + 0] + i);
          const VReg vxc = ctx.ld1(p, b.slot[s.a + 5] + i);
          VReg a2 = ctx.mul(p, vcc, vxc);
          const VReg vcw = ctx.ld1(p, b.slot[s.a + 1] + i);
          const VReg vxw = ctx.ld1(p, b.slot[s.a + 5] + i - 1);
          a2 = ctx.fma(p, vcw, vxw, a2);
          const VReg vce = ctx.ld1(p, b.slot[s.a + 2] + i);
          const VReg vxe = ctx.ld1(p, b.slot[s.a + 5] + i + 1);
          a2 = ctx.fma(p, vce, vxe, a2);
          const VReg vcs = ctx.ld1(p, b.slot[s.a + 3] + i);
          const VReg vxs = ctx.ld1(p, b.slot[s.a + 6] + i);
          a2 = ctx.fma(p, vcs, vxs, a2);
          const VReg vcn = ctx.ld1(p, b.slot[s.a + 4] + i);
          const VReg vxn = ctx.ld1(p, b.slot[s.a + 7] + i);
          a2 = ctx.fma(p, vcn, vxn, a2);
          reg[s.dst] = a2;
          reg[s.b] = vxc;
          break;
        }
        case StepKind::Fma:
          reg[s.dst] = ctx.fma(p, reg[s.a], reg[s.b], reg[s.c]);
          break;
        case StepKind::Mul:
          reg[s.dst] = ctx.mul(p, reg[s.a], reg[s.b]);
          break;
        case StepKind::Sub:
          reg[s.dst] = ctx.sub(p, reg[s.a], reg[s.b]);
          break;
        case StepKind::Store:
          ctx.st1(p, b.slot[s.dst] + i, reg[s.a]);
          break;
        case StepKind::DotAcc:
          // Merging form: a zeroing tail strip would clobber the lanes
          // accumulated so far.
          acc[s.dst] = ctx.fma_merge(p, reg[s.a], reg[s.b], acc[s.dst]);
          break;
        case StepKind::DupScal:
        case StepKind::DupAcc:
          break;  // prologue-only kinds
      }
    }
  });

  if (g.naccs > 0) {
    // The lane-accumulated values are the hardware's; the returned results
    // are the compensated element-order tails below, identical in both exec
    // modes (and to the unfused dot path).
    const Predicate full = ctx.ptrue();
    for (std::uint8_t i = 0; i < g.npre; ++i)
      if (g.pre[i].k == StepKind::DupAcc)
        (void)ctx.reduce_add(full, acc[g.pre[i].dst]);
    for (std::uint8_t t = 0; t < g.ntails; ++t) {
      const DotTail& tl = g.tail[t];
      DdAccumulator a = *b.acc[tl.acc];
      const double* pa = b.slot[tl.slot_a];
      const double* pb = b.slot[tl.slot_b];
      for (std::size_t i = 0; i < b.n; ++i) a.add(pa[i] * pb[i]);
      *b.acc[tl.acc] = a;
    }
  }
}

// --- native stamps ------------------------------------------------------------

namespace {

template <GroupProgram G, std::size_t I>
inline void stamp_pre(const double* sc, double* r) {
  constexpr Step S = G.pre[I];
  if constexpr (S.k == StepKind::DupScal) r[S.dst] = sc[S.a];
}

template <GroupProgram G, std::size_t I>
inline void stamp_step(double* const* p, double* r, DdAccumulator* dd,
                       std::ptrdiff_t i) {
  constexpr Step S = G.step[I];
  if constexpr (S.k == StepKind::Load) {
    r[S.dst] = p[S.a][i];
  } else if constexpr (S.k == StepKind::Stencil) {
    double acc = p[S.a + 0][i] * p[S.a + 5][i];
    acc = p[S.a + 1][i] * p[S.a + 5][i - 1] + acc;
    acc = p[S.a + 2][i] * p[S.a + 5][i + 1] + acc;
    acc = p[S.a + 3][i] * p[S.a + 6][i] + acc;
    acc = p[S.a + 4][i] * p[S.a + 7][i] + acc;
    r[S.dst] = acc;
    r[S.b] = p[S.a + 5][i];
  } else if constexpr (S.k == StepKind::Fma) {
    r[S.dst] = r[S.a] * r[S.b] + r[S.c];
  } else if constexpr (S.k == StepKind::Mul) {
    r[S.dst] = r[S.a] * r[S.b];
  } else if constexpr (S.k == StepKind::Sub) {
    r[S.dst] = r[S.a] - r[S.b];
  } else if constexpr (S.k == StepKind::Store) {
    p[S.dst][i] = r[S.a];
  } else if constexpr (S.k == StepKind::DotAcc) {
    // The compensated chains accumulate through register-resident locals in
    // step (= element) order; see native::hadamard_dot2 for the rationale.
    dd[S.dst].add(r[S.a] * r[S.b]);
  }
}

/// One stamped-out native kernel: the GroupProgram unrolled at compile time
/// into a flat per-element loop.  Elementwise programs reduce to exactly
/// the raw-pointer loops the hand-written native kernels used, so the host
/// compiler auto-vectorizes them; dot programs interleave the compensated
/// chains with the streaming sweep the same way the bespoke mixed loops
/// did.  Register slots with compile-time-constant indices are scalarized
/// by the compiler.
template <GroupProgram G>
void stamp_exec(const Bind& b) {
  double* p[kMaxSlots];
  for (std::size_t s = 0; s < kMaxSlots; ++s) p[s] = b.slot[s];
  double sc[kMaxScalars];
  for (std::size_t s = 0; s < kMaxScalars; ++s) sc[s] = b.scal[s];
  DdAccumulator dd[kMaxAccs];
  for (std::size_t k = 0; k < G.naccs; ++k) dd[k] = *b.acc[k];
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(b.n);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double r[kMaxRegs];
    [&]<std::size_t... Pi>(std::index_sequence<Pi...>) {
      (stamp_pre<G, Pi>(sc, r), ...);
    }(std::make_index_sequence<std::size_t{G.npre}>{});
    [&]<std::size_t... Si>(std::index_sequence<Si...>) {
      (stamp_step<G, Si>(p, r, dd, i), ...);
    }(std::make_index_sequence<std::size_t{G.nsteps}>{});
  }
  for (std::size_t k = 0; k < G.naccs; ++k) *b.acc[k] = dd[k];
}

using StampFn = void (*)(const Bind&);

struct StampEntry {
  StampFn fn = nullptr;
  std::uint8_t id = 0;  ///< small sequential id, part of the memo key
};

std::unordered_map<std::uint64_t, StampEntry>& registry() {
  static std::unordered_map<std::uint64_t, StampEntry> r;
  return r;
}

void register_group(std::uint64_t sig, StampFn fn) {
  auto& r = registry();
  if (r.find(sig) != r.end()) return;  // identical program already stamped
  V2D_REQUIRE(r.size() < 127, "fused-stamp id space exhausted");
  const auto id = static_cast<std::uint8_t>(r.size());
  r.emplace(sig, StampEntry{fn, id});
}

template <Chain C>
void register_chain() {
  static constexpr FusionPlan P = plan_chain(C);
  [&]<std::size_t... Gi>(std::index_sequence<Gi...>) {
    (register_group(P.group[Gi].sig, &stamp_exec<P.group[Gi]>), ...);
  }(std::make_index_sequence<std::size_t{P.ngroups}>{});
}

/// Register the fixed template set once, in a fixed order so stamp ids (and
/// therefore memo keys and plan dumps) are deterministic.
void ensure_registered() {
  static const bool once = [] {
    register_chain<make_daxpy2_chain()>();
    register_chain<make_axpy_out_chain()>();
    register_chain<make_p_update_chain()>();
    register_chain<make_hadamard_dot2_chain()>();
    register_chain<make_hadamard_update_dot2_chain()>();
    register_chain<make_stencil_chain(false, true, false)>();
    register_chain<make_stencil_chain(true, true, false)>();
    register_chain<make_stencil_chain(false, false, true)>();
    register_chain<make_stencil_chain(false, false, false)>();
    register_chain<make_stencil_chain(true, false, true)>();
    register_chain<make_stencil_chain(true, false, false)>();
    return true;
  }();
  (void)once;
}

}  // namespace

bool has_native_stamp(std::uint64_t sig) {
  ensure_registered();
  return registry().find(sig) != registry().end();
}

void run(vla::Context& ctx, const FusionPlan& plan, const Bind& bind) {
  for (std::uint8_t gi = 0; gi < plan.ngroups; ++gi) {
    const GroupProgram& g = plan.group[gi];
    if (ctx.native()) {
      ensure_registered();
      const auto& reg = registry();
      const auto it = reg.find(g.sig);
      V2D_REQUIRE(it != reg.end(),
                  "no native stamp registered for fused-op signature");
      // Fused-group memo keys live in a signature-keyed space disjoint from
      // the primitive KernelShape keys (bit 63 set, stamp id in 56..62), so
      // mixed fuse modes never cross-contaminate the count cache.
      const std::uint64_t key =
          (1ull << 63) | (static_cast<std::uint64_t>(it->second.id) << 56) |
          (bind.n & 0x00ff'ffff'ffff'ffffULL);
      ctx.add_counts(ctx.memo_counts(
          key, [&] { return group_counts(g, bind.n, ctx.lanes()); }));
      it->second.fn(bind);
    } else {
      run_interpret(ctx, g, bind);
    }
  }
}

std::string describe_builtin_plans() {
  ensure_registered();
  std::ostringstream os;
  const auto one = [&](const Chain& c) {
    const FusionPlan p = plan_chain(c);
    os << dump_plan(c, p);
    for (std::uint8_t gi = 0; gi < p.ngroups; ++gi) {
      const auto it = registry().find(p.group[gi].sig);
      os << "  stamp group " << int(gi) << " id="
         << (it == registry().end() ? -1 : int(it->second.id)) << "\n";
    }
  };
  one(make_daxpy2_chain());
  one(make_axpy_out_chain());
  one(make_p_update_chain());
  one(make_hadamard_dot2_chain());
  one(make_hadamard_update_dot2_chain());
  one(make_stencil_chain(false, true, false));
  one(make_stencil_chain(true, true, false));
  one(make_stencil_chain(false, false, true));
  one(make_stencil_chain(false, false, false));
  one(make_stencil_chain(true, false, true));
  one(make_stencil_chain(true, false, false));
  return os.str();
}

// --- planner-generated composites ---------------------------------------------

void daxpy2(vla::Context& ctx, double a, std::span<const double> p,
            std::span<double> x, double b, std::span<const double> q,
            std::span<double> r) {
  const std::size_t n = x.size();
  V2D_REQUIRE(p.size() == n && q.size() == n && r.size() == n,
              "daxpy2: length mismatch");
  static constexpr Chain kChain = make_daxpy2_chain();
  static constexpr FusionPlan kPlan = plan_chain(kChain);
  Bind bd{};
  bd.n = n;
  bd.slot[0] = const_cast<double*>(p.data());
  bd.slot[1] = x.data();
  bd.slot[2] = const_cast<double*>(q.data());
  bd.slot[3] = r.data();
  bd.scal[0] = a;
  bd.scal[1] = b;
  run(ctx, kPlan, bd);
}

void axpy_out(vla::Context& ctx, std::span<const double> x, double a,
              std::span<const double> y, std::span<double> z) {
  const std::size_t n = z.size();
  V2D_REQUIRE(x.size() == n && y.size() == n, "axpy_out: length mismatch");
  static constexpr Chain kChain = make_axpy_out_chain();
  static constexpr FusionPlan kPlan = plan_chain(kChain);
  Bind bd{};
  bd.n = n;
  bd.slot[0] = const_cast<double*>(x.data());
  bd.slot[1] = const_cast<double*>(y.data());
  bd.slot[2] = z.data();
  bd.scal[0] = a;
  run(ctx, kPlan, bd);
}

void p_update(vla::Context& ctx, std::span<const double> r, double b, double w,
              std::span<const double> v, std::span<double> p) {
  const std::size_t n = p.size();
  V2D_REQUIRE(r.size() == n && v.size() == n, "p_update: length mismatch");
  static constexpr Chain kChain = make_p_update_chain();
  static constexpr FusionPlan kPlan = plan_chain(kChain);
  Bind bd{};
  bd.n = n;
  bd.slot[0] = const_cast<double*>(r.data());
  bd.slot[1] = const_cast<double*>(v.data());
  bd.slot[2] = p.data();
  bd.scal[0] = -w;
  bd.scal[1] = b;
  run(ctx, kPlan, bd);
}

void hadamard_dot2(vla::Context& ctx, std::span<const double> m,
                   std::span<const double> r, std::span<double> z,
                   DdAccumulator& rz, DdAccumulator& rr) {
  const std::size_t n = z.size();
  V2D_REQUIRE(m.size() == n && r.size() == n, "hadamard_dot2: length mismatch");
  static constexpr Chain kChain = make_hadamard_dot2_chain();
  static constexpr FusionPlan kPlan = plan_chain(kChain);
  Bind bd{};
  bd.n = n;
  bd.slot[0] = const_cast<double*>(m.data());
  bd.slot[1] = const_cast<double*>(r.data());
  bd.slot[2] = z.data();
  bd.acc[0] = &rz;
  bd.acc[1] = &rr;
  run(ctx, kPlan, bd);
}

void hadamard_update_dot2(vla::Context& ctx, std::span<const double> m,
                          double a, std::span<const double> q,
                          std::span<double> r, std::span<double> z,
                          DdAccumulator& rz, DdAccumulator& rr) {
  const std::size_t n = z.size();
  V2D_REQUIRE(m.size() == n && q.size() == n && r.size() == n,
              "hadamard_update_dot2: length mismatch");
  static constexpr Chain kChain = make_hadamard_update_dot2_chain();
  static constexpr FusionPlan kPlan = plan_chain(kChain);
  Bind bd{};
  bd.n = n;
  bd.slot[0] = const_cast<double*>(m.data());
  bd.slot[1] = const_cast<double*>(q.data());
  bd.slot[2] = r.data();
  bd.slot[3] = z.data();
  bd.scal[0] = a;
  bd.acc[0] = &rz;
  bd.acc[1] = &rr;
  run(ctx, kPlan, bd);
}

namespace {

template <bool Coupled, bool Bsub, bool Self>
void run_stencil_variant(vla::Context& ctx, const Bind& bd) {
  static constexpr Chain kChain = make_stencil_chain(Coupled, Bsub, Self);
  static constexpr FusionPlan kPlan = plan_chain(kChain);
  run(ctx, kPlan, bd);
}

}  // namespace

void stencil_row_fused(vla::Context& ctx, std::span<const double> cc,
                       std::span<const double> cw, std::span<const double> ce,
                       std::span<const double> cs, std::span<const double> cn,
                       const double* xc, const double* xs, const double* xn,
                       const double* csp, const double* xo, const double* bsub,
                       const double* wdot, DdAccumulator* dot,
                       std::span<double> y) {
  const std::size_t n = y.size();
  V2D_REQUIRE(cc.size() == n && cw.size() == n && ce.size() == n &&
                  cs.size() == n && cn.size() == n,
              "stencil_row_fused: coefficient length mismatch");
  V2D_REQUIRE((csp == nullptr) == (xo == nullptr),
              "stencil_row_fused: coupling needs both csp and xo");
  V2D_REQUIRE(bsub == nullptr || wdot == nullptr,
              "stencil_row_fused: residual and dot forms are exclusive");
  V2D_REQUIRE((wdot == nullptr) == (dot == nullptr),
              "stencil_row_fused: dot needs both w and an accumulator");
  V2D_REQUIRE(bsub != nullptr || wdot != nullptr,
              "stencil_row_fused: need a residual or dot operand "
              "(use stencil_row/coupling_row otherwise)");
  const bool coupled = csp != nullptr;
  const bool sub = bsub != nullptr;
  const bool self = wdot == xc;

  // Binding mirrors make_stencil_chain's slot layout.
  Bind bd{};
  bd.n = n;
  bd.slot[0] = const_cast<double*>(cc.data());
  bd.slot[1] = const_cast<double*>(cw.data());
  bd.slot[2] = const_cast<double*>(ce.data());
  bd.slot[3] = const_cast<double*>(cs.data());
  bd.slot[4] = const_cast<double*>(cn.data());
  bd.slot[5] = const_cast<double*>(xc);
  bd.slot[6] = const_cast<double*>(xs);
  bd.slot[7] = const_cast<double*>(xn);
  std::uint8_t s = 8;
  if (coupled) {
    bd.slot[s++] = const_cast<double*>(csp);
    bd.slot[s++] = const_cast<double*>(xo);
  }
  ++s;  // the stencil temp slot lives in registers only
  if (sub)
    bd.slot[s++] = const_cast<double*>(bsub);
  else if (!self)
    bd.slot[s++] = const_cast<double*>(wdot);
  bd.slot[s++] = y.data();
  if (dot != nullptr) bd.acc[0] = dot;

  if (sub) {
    if (coupled)
      run_stencil_variant<true, true, false>(ctx, bd);
    else
      run_stencil_variant<false, true, false>(ctx, bd);
  } else if (self) {
    if (coupled)
      run_stencil_variant<true, false, true>(ctx, bd);
    else
      run_stencil_variant<false, false, true>(ctx, bd);
  } else {
    if (coupled)
      run_stencil_variant<true, false, false>(ctx, bd);
    else
      run_stencil_variant<false, false, false>(ctx, bd);
  }
}

}  // namespace v2d::linalg::fusion
