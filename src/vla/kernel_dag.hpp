#pragma once
/// \file kernel_dag.hpp
/// \brief Lightweight kernel-DAG recorder for the fusion planner.
///
/// During the first solver iteration of a (solver, precond, shape, VL)
/// configuration under FuseMode::Plan, the call sites record every
/// primitive kernel launch — with its operand read/write sets — into a
/// DagRecorder.  The captured KernelDag is a small IR: nodes in program
/// order, operands normalized to stable names (v0, v1, …) in first-seen
/// order, collectives recorded as barrier nodes.  The fusion planner then
/// annotates it (fusion::annotate_dag) with the producer→consumer groups
/// its legality rules admit, and the result is memoized per configuration
/// in the Context's DagStore exactly like the analytic KernelCounts memo:
/// captured once, shared across fork()ed rank contexts and farm sessions.
///
/// Recording happens only on the driving thread (ExecContext::fork clears
/// the recorder pointer), so the captured node order — and therefore the
/// plan dump — is independent of the host-thread count.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace v2d::vla {

/// One recorded primitive kernel launch (or collective barrier).
struct DagNode {
  std::string op;        ///< primitive name ("daxpy", "dot", "barrier:…")
  std::uint64_t n = 0;   ///< global elements the launch covers
  std::vector<std::string> reads;   ///< normalized operand names
  std::vector<std::string> writes;  ///< normalized operand names
  int group = -1;        ///< fusion group index (-1 = not fusable/barrier)
  std::string rule;      ///< legality rule that formed or cut the group
};

/// The captured (and, after annotation, planned) DAG of one solver
/// iteration for one configuration key.
struct KernelDag {
  std::string key;
  std::vector<DagNode> nodes;

  /// Deterministic text form (the --dump-fusion-plan payload): one line
  /// per node with operands, group assignment and rule.
  std::string dump() const;
};

/// Records primitive launches with operand read/write sets.  Operands are
/// identified by address and normalized to v0, v1, … in first-seen order,
/// so the dump is byte-identical across runs regardless of where the
/// vectors happen to be allocated.
class DagRecorder {
public:
  void op(const char* name, std::uint64_t n,
          std::initializer_list<const void*> reads,
          std::initializer_list<const void*> writes);
  void barrier(const char* kind);

  bool empty() const { return nodes_.empty(); }

  /// Move the recording out as a KernelDag labeled `key`; the recorder
  /// resets for reuse.
  KernelDag take(std::string key);

private:
  std::string slot(const void* p);

  std::vector<DagNode> nodes_;
  std::map<const void*, std::string> names_;
};

/// Per-Context memo of captured+annotated iteration DAGs, shared across
/// the fork family (and farm sessions sharing a Context prototype) like
/// the analytic-count cache.  Keys carry the full configuration —
/// solver, preconditioner, problem shape, VL and exec mode — so sessions
/// with different configurations never collide, and only FuseMode::Plan
/// runs ever record (mixed-fuse farms cannot cross-contaminate).
class DagStore {
public:
  bool contains(const std::string& key) const {
    std::lock_guard<std::mutex> lk(mu_);
    return dags_.count(key) != 0;
  }

  void put(KernelDag dag) {
    std::lock_guard<std::mutex> lk(mu_);
    dags_.emplace(dag.key, std::move(dag));
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return dags_.size();
  }

  /// Every stored DAG, key-sorted (std::map order), each via dump().
  std::string dump_all() const;

private:
  mutable std::mutex mu_;
  std::map<std::string, KernelDag> dags_;
};

}  // namespace v2d::vla
