#pragma once
/// \file loops.hpp
/// \brief Strip-mining helpers over vla::Context.
///
/// Every V2D kernel is a predicated strip-mined loop; this helper removes
/// the boilerplate and guarantees the loop-control bookkeeping (whilelt +
/// back-edge) is recorded consistently everywhere.

#include <cstdint>

#include "vla/vla.hpp"

namespace v2d::vla {

/// Run `body(i, pred)` for i = 0, VL, 2·VL, ... < n with the whilelt
/// predicate for that strip.  Also books the loop-control ops.
template <typename Body>
inline void strip_mine(Context& ctx, std::uint64_t n, Body&& body) {
  const unsigned vl = ctx.lanes();
  for (std::uint64_t i = 0; i < n; i += vl) {
    const Predicate p = ctx.whilelt(i, n);
    body(i, p);
    ctx.loop_iter(p.active);
  }
}

/// Strip-mined reduction: accumulates into a VReg carried across strips and
/// horizontally reduced once at the end — the canonical SVE dot-product
/// shape (one faddv per kernel call, not per iteration).
template <typename StripOp>
inline double strip_reduce(Context& ctx, std::uint64_t n, StripOp&& strip) {
  VReg acc = ctx.dup(0.0);
  const unsigned vl = ctx.lanes();
  std::uint64_t i = 0;
  for (; i < n; i += vl) {
    const Predicate p = ctx.whilelt(i, n);
    acc = strip(i, p, acc);
    ctx.loop_iter(p.active);
  }
  const Predicate full = ctx.ptrue();
  return ctx.reduce_add(full, acc);
}

}  // namespace v2d::vla
