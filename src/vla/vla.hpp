#pragma once
/// \file vla.hpp
/// \brief Vector-length-agnostic SVE-like execution layer.
///
/// This is the repo's stand-in for ACLE SVE intrinsics.  Kernels are
/// written once against vla::Context in the canonical SVE idiom —
/// `whilelt` predicated strip-mined loops — and every operation both
/// *computes* the double-precision result on the host and *records* an
/// instruction into a sim::KernelCounts.  The recorded stream is later
/// priced by sim::CostModel under any ExecMode/compiler profile, so
/// "SVE on/off" and "which compiler" are pricing decisions, not re-runs.
///
/// Supported vector lengths are the architectural SVE range, 128–2048 bits
/// in multiples of 128 (2–32 double lanes).  Predicates are prefix
/// predicates (the only kind `whilelt` produces); that covers every V2D
/// kernel, which are all strip-mined streaming loops.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "sim/isa.hpp"
#include "support/error.hpp"
#include "vla/kernel_dag.hpp"

namespace v2d::vla {

/// How the VLA layer runs a kernel.
///
///   Interpret — the reference backend: every ld1/fma/st1 loops lane-by-lane
///               over a VReg and records its instruction op-by-op.
///   Native    — the fast path: kernels run as raw-pointer loops the host
///               compiler can auto-vectorize, and the recording is produced
///               analytically from closed-form KernelCounts formulas
///               (memoized per Context).  Results and counts are
///               bit-identical to the interpreter by construction; the
///               equivalence suite (tests/test_vla_fastpath.cpp) proves it.
enum class VlaExecMode : std::uint8_t {
  Interpret,
  Native,
};

inline const char* vla_exec_mode_name(VlaExecMode m) {
  return m == VlaExecMode::Native ? "native" : "interpret";
}

inline VlaExecMode vla_exec_mode_from_name(const std::string& name) {
  if (name == "native") return VlaExecMode::Native;
  if (name == "interpret") return VlaExecMode::Interpret;
  throw Error("unknown VLA exec mode '" + name +
              "' (expected interpret|native)");
}

namespace detail {
inline std::atomic<std::uint64_t>& process_hits() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}
inline std::atomic<std::uint64_t>& process_misses() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}
}  // namespace detail

/// Process-wide analytic-count memo statistics, accumulated across *every*
/// Context family in the process — fork()ed rank contexts and farm-shared
/// session contexts alike.  Per-family counters (Context::memo_hits /
/// memo_misses) only see their own fork family, which made the totals a
/// per-run report; long-lived multi-session processes (the farm) want the
/// process-wide view, so every memo probe bumps these as well.
inline std::uint64_t process_memo_hits() {
  return detail::process_hits().load(std::memory_order_relaxed);
}
inline std::uint64_t process_memo_misses() {
  return detail::process_misses().load(std::memory_order_relaxed);
}

/// Architectural bounds for SVE vector lengths.
inline constexpr unsigned kMinVectorBits = 128;
inline constexpr unsigned kMaxVectorBits = 2048;
inline constexpr unsigned kMaxLanes = kMaxVectorBits / 64;

/// A configured vector length (the "hardware" VL the kernel runs at).
class VectorArch {
public:
  explicit VectorArch(unsigned bits = 512) : bits_(bits) {
    V2D_REQUIRE(bits >= kMinVectorBits && bits <= kMaxVectorBits &&
                    bits % kMinVectorBits == 0,
                "SVE vector length must be 128..2048 bits in steps of 128");
  }
  unsigned bits() const { return bits_; }
  unsigned lanes() const { return bits_ / 64; }

private:
  unsigned bits_;
};

/// Prefix predicate: lanes [0, active) enabled out of [0, width).
struct Predicate {
  std::uint32_t active = 0;
  std::uint32_t width = 0;

  bool any() const { return active > 0; }
  bool full() const { return active == width; }
};

/// A vector register of f64 lanes.  Only the first Context::lanes() entries
/// are meaningful.
struct VReg {
  std::array<double, kMaxLanes> lane{};

  double operator[](unsigned i) const { return lane[i]; }
  double& operator[](unsigned i) { return lane[i]; }
};

/// Execution + recording context.  One per simulated rank (cheap to
/// construct).  All operations are predicated; inactive lanes of the
/// result are zero (SVE zeroing predication).
class Context {
public:
  explicit Context(VectorArch arch = VectorArch{},
                   VlaExecMode mode = VlaExecMode::Interpret)
      : arch_(arch), mode_(mode),
        count_cache_(std::make_shared<CountCache>()),
        dag_store_(std::make_shared<DagStore>()) {}

  unsigned lanes() const { return arch_.lanes(); }
  const VectorArch& arch() const { return arch_; }

  /// Child context for rank-parallel host execution: same VL and exec
  /// mode, sharing this context's (read-mostly, lock-guarded) analytic
  /// count cache, but with a private recording accumulator so concurrent
  /// rank tasks never interleave their instruction streams.  Allocation-
  /// free beyond the shared_ptr bump — fork() runs once per rank task.
  Context fork() const { return Context(arch_, mode_, count_cache_, dag_store_); }

  /// The fork-family memo of captured solver-iteration kernel DAGs (see
  /// vla/kernel_dag.hpp).  Like the analytic-count cache it is shared
  /// across fork()ed contexts and farm sessions built from one prototype;
  /// keys carry the full (solver, precond, shape, VL, exec-mode)
  /// configuration, so concurrent sessions never collide.
  DagStore& dag_store() const { return *dag_store_; }

  VlaExecMode exec_mode() const { return mode_; }
  void set_exec_mode(VlaExecMode m) { mode_ = m; }
  /// True when kernels should take the native raw-pointer fast path.
  bool native() const { return mode_ == VlaExecMode::Native; }

  /// Fold a pre-computed recording (an analytic fast-path formula) into the
  /// accumulated counts.  Entries must carry calls == elements == 0; those
  /// fields belong to ExecContext::commit.
  void add_counts(const sim::KernelCounts& c) { counts_ += c; }

  /// Memoized analytic-count lookup.  `key` identifies (kernel shape, n);
  /// the factory runs once per distinct key and its result is cached for
  /// the lifetime of this Context *and all its forks*, so steady-state
  /// solver iterations pay a single hash probe per kernel call instead of
  /// per-op recording.  The cache is read-mostly and shared across the
  /// fork family; a shared_mutex makes concurrent rank tasks safe.  A
  /// duplicate concurrent miss just recomputes the same deterministic
  /// value, and returned references stay valid because unordered_map
  /// never relocates elements.
  ///
  /// The key space is partitioned by producer so a Context shared across
  /// farm jobs running different --fuse modes can never read a count
  /// cached under another mode's kernel: primitive/bespoke shapes key as
  /// (KernelShape << 56) | n with bit 63 clear, while planner-generated
  /// fused groups key as (1 << 63) | (stamp id << 56) | n, where the
  /// stamp id is assigned from the fused-op signature registry
  /// (fusion::GroupProgram::sig) in fixed registration order.
  template <typename Factory>
  const sim::KernelCounts& memo_counts(std::uint64_t key, Factory&& make) {
    CountCache& cache = *count_cache_;
    {
      std::shared_lock<std::shared_mutex> lk(cache.mu);
      auto it = cache.map.find(key);
      if (it != cache.map.end()) {
        cache.hits.fetch_add(1, std::memory_order_relaxed);
        detail::process_hits().fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    cache.misses.fetch_add(1, std::memory_order_relaxed);
    detail::process_misses().fetch_add(1, std::memory_order_relaxed);
    sim::KernelCounts made = make();
    std::unique_lock<std::shared_mutex> lk(cache.mu);
    return cache.map.try_emplace(key, made).first->second;
  }

  /// Analytic-count memo cache statistics, accumulated across this context
  /// and all its forks for the lifetime of the fork family.  A steady-state
  /// native-mode run should be almost all hits; the miss count bounds how
  /// many distinct (shape, n) formulas were ever evaluated.  Exposed so
  /// perfmon can report fast-path recording overhead (see
  /// perfmon::MemoCacheStats).
  std::uint64_t memo_hits() const {
    return count_cache_->hits.load(std::memory_order_relaxed);
  }
  std::uint64_t memo_misses() const {
    return count_cache_->misses.load(std::memory_order_relaxed);
  }

  /// Fold an externally-estimated instruction stream into the recording
  /// (used for work the kernel does that is not expressed through VLA
  /// calls, e.g. V2D's on-the-fly coefficient evaluation).  `lanes` is the
  /// scalar-equivalent op count; vector instructions are derived at the
  /// configured VL.
  void record_external(sim::OpClass c, std::uint64_t scalar_ops,
                       std::uint64_t bytes_read, std::uint64_t bytes_written) {
    const auto i = static_cast<std::size_t>(c);
    counts_.lanes[i] += scalar_ops;
    counts_.instr[i] += (scalar_ops + lanes() - 1) / lanes();
    counts_.bytes_read += bytes_read;
    counts_.bytes_written += bytes_written;
  }

  /// Take and reset the accumulated recording.
  sim::KernelCounts take_counts() {
    sim::KernelCounts out = counts_;
    counts_ = sim::KernelCounts{};
    return out;
  }
  const sim::KernelCounts& counts() const { return counts_; }

  // --- predicate construction -------------------------------------------
  Predicate ptrue() {
    record(sim::OpClass::Predicate, lanes());
    return Predicate{lanes(), lanes()};
  }

  /// whilelt i, n — enable lanes for indices [i, min(i+VL, n)).
  Predicate whilelt(std::uint64_t i, std::uint64_t n) {
    record(sim::OpClass::Predicate, lanes());
    const std::uint64_t remaining = i < n ? n - i : 0;
    const std::uint32_t active =
        remaining < lanes() ? static_cast<std::uint32_t>(remaining) : lanes();
    return Predicate{active, lanes()};
  }

  /// Book the per-iteration loop control (index increment + back-edge).
  /// `elems` is the number of elements this iteration advanced by, so the
  /// scalar-equivalent pricing sees one branch per element.
  void loop_iter(std::uint32_t elems) {
    record(sim::OpClass::IntOp, elems);
    record(sim::OpClass::Branch, elems);
  }

  // --- moves --------------------------------------------------------------
  VReg dup(double x) {
    record(sim::OpClass::Select, 1);
    VReg r;
    for (unsigned l = 0; l < lanes(); ++l) r[l] = x;
    return r;
  }

  // --- memory -------------------------------------------------------------
  VReg ld1(const Predicate& p, const double* base) {
    check(p);
    record(sim::OpClass::LoadContig, p.active);
    counts_.bytes_read += p.active * sizeof(double);
    VReg r;
    for (unsigned l = 0; l < p.active; ++l) r[l] = base[l];
    return r;
  }

  void st1(const Predicate& p, double* base, const VReg& v) {
    check(p);
    record(sim::OpClass::StoreContig, p.active);
    counts_.bytes_written += p.active * sizeof(double);
    for (unsigned l = 0; l < p.active; ++l) base[l] = v[l];
  }

  /// Gather load: r[l] = base[idx[l]].
  VReg ld1_gather(const Predicate& p, const double* base,
                  std::span<const std::int64_t> idx) {
    check(p);
    V2D_REQUIRE(idx.size() >= p.active, "gather index vector too short");
    record(sim::OpClass::LoadGather, p.active);
    counts_.bytes_read += p.active * sizeof(double);
    VReg r;
    for (unsigned l = 0; l < p.active; ++l) r[l] = base[idx[l]];
    return r;
  }

  /// Scatter store: base[idx[l]] = v[l].
  void st1_scatter(const Predicate& p, double* base,
                   std::span<const std::int64_t> idx, const VReg& v) {
    check(p);
    V2D_REQUIRE(idx.size() >= p.active, "scatter index vector too short");
    record(sim::OpClass::StoreScatter, p.active);
    counts_.bytes_written += p.active * sizeof(double);
    for (unsigned l = 0; l < p.active; ++l) base[idx[l]] = v[l];
  }

  // --- arithmetic ----------------------------------------------------------
  VReg add(const Predicate& p, const VReg& a, const VReg& b) {
    return binary(p, a, b, sim::OpClass::FlopAdd,
                  [](double x, double y) { return x + y; });
  }
  VReg sub(const Predicate& p, const VReg& a, const VReg& b) {
    return binary(p, a, b, sim::OpClass::FlopAdd,
                  [](double x, double y) { return x - y; });
  }
  VReg mul(const Predicate& p, const VReg& a, const VReg& b) {
    return binary(p, a, b, sim::OpClass::FlopMul,
                  [](double x, double y) { return x * y; });
  }
  VReg div(const Predicate& p, const VReg& a, const VReg& b) {
    return binary(p, a, b, sim::OpClass::FlopDiv,
                  [](double x, double y) { return x / y; });
  }
  VReg vmin(const Predicate& p, const VReg& a, const VReg& b) {
    return binary(p, a, b, sim::OpClass::FlopCmp,
                  [](double x, double y) { return x < y ? x : y; });
  }
  VReg vmax(const Predicate& p, const VReg& a, const VReg& b) {
    return binary(p, a, b, sim::OpClass::FlopCmp,
                  [](double x, double y) { return x > y ? x : y; });
  }

  /// Fused multiply-add: a*b + c (SVE fmla, zeroing predication).
  VReg fma(const Predicate& p, const VReg& a, const VReg& b, const VReg& c) {
    check(p);
    record(sim::OpClass::FlopFma, p.active);
    VReg r;
    for (unsigned l = 0; l < p.active; ++l) r[l] = a[l] * b[l] + c[l];
    return r;
  }

  /// Fused multiply-add with *merging* predication: inactive lanes keep
  /// c's value (SVE fmla/m).  This is what reduction accumulators need —
  /// a zeroing tail strip would wipe the lanes accumulated so far.
  VReg fma_merge(const Predicate& p, const VReg& a, const VReg& b,
                 const VReg& c) {
    check(p);
    record(sim::OpClass::FlopFma, p.active);
    VReg r = c;
    for (unsigned l = 0; l < p.active; ++l) r[l] = a[l] * b[l] + c[l];
    return r;
  }

  VReg sqrt(const Predicate& p, const VReg& a) {
    check(p);
    record(sim::OpClass::FlopSqrt, p.active);
    VReg r;
    for (unsigned l = 0; l < p.active; ++l) r[l] = __builtin_sqrt(a[l]);
    return r;
  }

  VReg abs(const Predicate& p, const VReg& a) {
    check(p);
    record(sim::OpClass::FlopCmp, p.active);
    VReg r;
    for (unsigned l = 0; l < p.active; ++l)
      r[l] = a[l] < 0.0 ? -a[l] : a[l];
    return r;
  }

  /// Lane select: p ? a : b.  With prefix predicates this implements SVE
  /// `sel` where the predicate came from a comparison collapsed to a prefix;
  /// used for boundary handling.
  VReg sel(const Predicate& p, const VReg& a, const VReg& b) {
    record(sim::OpClass::Select, p.width);
    VReg r;
    for (unsigned l = 0; l < p.width && l < lanes(); ++l)
      r[l] = l < p.active ? a[l] : b[l];
    return r;
  }

  // --- reductions -----------------------------------------------------------
  /// Horizontal sum of active lanes (SVE faddv).
  double reduce_add(const Predicate& p, const VReg& a) {
    check(p);
    record(sim::OpClass::Reduce, p.active);
    double s = 0.0;
    for (unsigned l = 0; l < p.active; ++l) s += a[l];
    return s;
  }

  double reduce_max(const Predicate& p, const VReg& a) {
    check(p);
    record(sim::OpClass::Reduce, p.active);
    double s = p.any() ? a[0] : 0.0;
    for (unsigned l = 1; l < p.active; ++l) s = a[l] > s ? a[l] : s;
    return s;
  }

private:
  void check(const Predicate& p) const {
    V2D_CHECK(p.width == lanes(), "predicate built for a different VL");
    V2D_CHECK(p.active <= p.width, "corrupt predicate");
  }

  template <typename F>
  VReg binary(const Predicate& p, const VReg& a, const VReg& b,
              sim::OpClass c, F f) {
    check(p);
    record(c, p.active);
    VReg r;
    for (unsigned l = 0; l < p.active; ++l) r[l] = f(a[l], b[l]);
    return r;
  }

  void record(sim::OpClass c, std::uint64_t active) {
    counts_.record(c, active);
  }

  // Fast-path memo: (kernel shape, n) -> analytic counts.  Shared across
  // fork()ed contexts; read-mostly, guarded for rank-parallel execution.
  struct CountCache {
    std::shared_mutex mu;
    std::unordered_map<std::uint64_t, sim::KernelCounts> map;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
  };

  Context(VectorArch arch, VlaExecMode mode, std::shared_ptr<CountCache> cache,
          std::shared_ptr<DagStore> dags)
      : arch_(arch), mode_(mode), count_cache_(std::move(cache)),
        dag_store_(std::move(dags)) {}

  VectorArch arch_;
  VlaExecMode mode_ = VlaExecMode::Interpret;
  sim::KernelCounts counts_;
  std::shared_ptr<CountCache> count_cache_;
  std::shared_ptr<DagStore> dag_store_;
};

}  // namespace v2d::vla
