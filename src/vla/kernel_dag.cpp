#include "vla/kernel_dag.hpp"

#include <sstream>

namespace v2d::vla {

void DagRecorder::op(const char* name, std::uint64_t n,
                     std::initializer_list<const void*> reads,
                     std::initializer_list<const void*> writes) {
  DagNode node;
  node.op = name;
  node.n = n;
  for (const void* p : reads) node.reads.push_back(slot(p));
  for (const void* p : writes) node.writes.push_back(slot(p));
  nodes_.push_back(std::move(node));
}

void DagRecorder::barrier(const char* kind) {
  DagNode node;
  node.op = std::string("barrier:") + kind;
  nodes_.push_back(std::move(node));
}

KernelDag DagRecorder::take(std::string key) {
  KernelDag out;
  out.key = std::move(key);
  out.nodes = std::move(nodes_);
  nodes_.clear();
  names_.clear();
  return out;
}

std::string DagRecorder::slot(const void* p) {
  auto it = names_.find(p);
  if (it != names_.end()) return it->second;
  const std::string name = "v" + std::to_string(names_.size());
  names_.emplace(p, name);
  return name;
}

namespace {

void join(std::ostringstream& os, const std::vector<std::string>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ',';
    os << items[i];
  }
}

}  // namespace

std::string KernelDag::dump() const {
  std::ostringstream os;
  os << "dag " << key << ": nodes=" << nodes.size() << "\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const DagNode& nd = nodes[i];
    os << "  n" << i << " " << nd.op;
    if (nd.n > 0) os << " n=" << nd.n;
    if (!nd.reads.empty()) {
      os << " r=[";
      join(os, nd.reads);
      os << "]";
    }
    if (!nd.writes.empty()) {
      os << " w=[";
      join(os, nd.writes);
      os << "]";
    }
    if (nd.group >= 0) os << " group=" << nd.group;
    if (!nd.rule.empty()) os << " rule=" << nd.rule;
    os << "\n";
  }
  return os.str();
}

std::string DagStore::dump_all() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& [key, dag] : dags_) out += dag.dump();
  return out;
}

}  // namespace v2d::vla
