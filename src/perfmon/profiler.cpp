#include "perfmon/profiler.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace v2d::perfmon {

Profiler::Profiler() : root_(std::make_unique<ProfileNode>()) {
  root_->name = "";
  current_ = root_.get();
}

void Profiler::enter(const std::string& name) {
  V2D_REQUIRE(!name.empty(), "region name cannot be empty");
  auto& slot = current_->children[name];
  if (!slot) {
    slot = std::make_unique<ProfileNode>();
    slot->name = name;
    slot->parent = current_;
  }
  current_ = slot.get();
}

void Profiler::exit(double elapsed_s) {
  V2D_REQUIRE(current_ != root_.get(), "exit() without matching enter()");
  V2D_REQUIRE(elapsed_s >= 0.0, "elapsed time cannot be negative");
  current_->calls += 1;
  current_->inclusive_s += elapsed_s;
  current_ = current_->parent;
}

namespace {
void collect(const ProfileNode& node, std::vector<Profiler::FlatEntry>& out,
             double total) {
  for (const auto& [_, child] : node.children) {
    out.push_back(Profiler::FlatEntry{
        child->path(), child->calls, child->exclusive_s(), child->inclusive_s,
        total > 0.0 ? 100.0 * child->exclusive_s() / total : 0.0});
    collect(*child, out, total);
  }
}
}  // namespace

std::vector<Profiler::FlatEntry> Profiler::flat() const {
  double total = 0.0;
  for (const auto& [_, c] : root_->children) total += c->inclusive_s;
  std::vector<FlatEntry> out;
  collect(*root_, out, total);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.exclusive_s != b.exclusive_s) return a.exclusive_s > b.exclusive_s;
    return a.path < b.path;
  });
  return out;
}

std::string Profiler::report() const {
  std::ostringstream os;
  os << "%Time  Exclusive(s)  Inclusive(s)       Calls  Name\n";
  for (const auto& e : flat()) {
    os << std::fixed << std::setprecision(1) << std::setw(5) << e.exclusive_pct
       << "  " << std::setprecision(3) << std::setw(12) << e.exclusive_s
       << "  " << std::setw(12) << e.inclusive_s << "  " << std::setw(10)
       << e.calls << "  " << e.path << '\n';
  }
  return os.str();
}

void Profiler::clear() {
  root_ = std::make_unique<ProfileNode>();
  root_->name = "";
  current_ = root_.get();
}

}  // namespace v2d::perfmon
