#include "perfmon/perf_stat.hpp"

#include <iomanip>
#include <sstream>

namespace v2d::perfmon {

namespace {
/// Group digits like perf does: 1,234,567,890.
std::string grouped(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}
}  // namespace

std::string format_perf_stat(const PerfStatResult& r) {
  std::ostringstream os;
  os << " Performance counter stats for '" << r.command << "':\n\n";
  const auto ns = static_cast<std::uint64_t>(r.duration_seconds * 1e9);
  os << std::setw(20) << grouped(ns) << " ns   duration_time\n";
  os << std::setw(20) << grouped(r.cpu_cycles) << "      cpu-cycles\n";
  if (r.instructions) {
    os << std::setw(20) << grouped(r.instructions) << "      instructions\n";
  }
  os << '\n'
     << std::fixed << std::setprecision(9) << std::setw(18)
     << r.duration_seconds << " seconds time elapsed\n";
  return os.str();
}

std::string format_memo_cache(const MemoCacheStats& s) {
  std::ostringstream os;
  os << "memo cache: " << grouped(s.hits) << " hits, " << grouped(s.misses)
     << " misses (" << std::fixed << std::setprecision(1)
     << 100.0 * s.hit_rate() << "% hit rate)";
  return os.str();
}

std::string format_host_sched(const HostSchedStats& s) {
  std::ostringstream os;
  os << "host sched: " << grouped(s.sessions) << " sessions, "
     << grouped(s.tasks) << " tasks (" << std::fixed << std::setprecision(1)
     << 100.0 * s.overlap << "% chained, " << 100.0 * s.affinity
     << "% home-lane), " << grouped(s.steals) << " steals, "
     << grouped(s.combines) << " combines, " << grouped(s.syncs) << " joins";
  return os.str();
}

}  // namespace v2d::perfmon
