#pragma once
/// \file perf_stat.hpp
/// \brief `perf stat`-style report formatting.
///
/// The paper times every Table I run with
///   perf stat -e duration_time -e cpu-cycles <v2d ...>
/// This formatter renders simulated results the same way, so the bench
/// output reads like the raw measurements the authors collected.

#include <cstdint>
#include <string>

namespace v2d::perfmon {

struct PerfStatResult {
  std::string command;        ///< the (simulated) command line
  double duration_seconds = 0.0;
  std::uint64_t cpu_cycles = 0;
  std::uint64_t instructions = 0;  ///< optional; 0 = omit line
};

/// Render in the style of `perf stat` output.
std::string format_perf_stat(const PerfStatResult& r);

/// Analytic-count memo cache statistics of a vla::Context fork family (the
/// fast path's recording overhead): every native-mode kernel call is one
/// probe; misses are the distinct (shape, n) formulas evaluated.  Snapshot
/// with `MemoCacheStats::of(ctx.vctx)`; bench runs report it so recording
/// overhead regressions are visible next to the timing numbers.
struct MemoCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t probes() const { return hits + misses; }
  double hit_rate() const {
    return probes() ? static_cast<double>(hits) / static_cast<double>(probes())
                    : 0.0;
  }

  /// Snapshot the counters of a context (and all its forks).  Templated so
  /// perfmon needs no dependency on the VLA layer.
  template <typename Context>
  static MemoCacheStats of(const Context& ctx) {
    return {ctx.memo_hits(), ctx.memo_misses()};
  }

  /// Counters accrued since an earlier snapshot.
  MemoCacheStats since(const MemoCacheStats& earlier) const {
    return {hits - earlier.hits, misses - earlier.misses};
  }
};

/// One-line report: "memo cache: 12,345 hits, 17 misses (99.9% hit rate)".
std::string format_memo_cache(const MemoCacheStats& s);

/// Host task-graph scheduler counters (--host-sched graph), shaped like
/// task_graph::SchedStats.  Templated so perfmon needs no dependency on
/// the support layer; snapshot with `of(task_graph::stats())`.
struct HostSchedStats {
  std::uint64_t sessions = 0;
  std::uint64_t tasks = 0;
  std::uint64_t chained_tasks = 0;
  std::uint64_t steals = 0;
  std::uint64_t syncs = 0;
  std::uint64_t affinity_hits = 0;
  std::uint64_t combines = 0;
  double overlap = 0.0;   ///< chained_tasks / tasks
  double affinity = 0.0;  ///< affinity_hits / chained_tasks

  template <typename Stats>
  static HostSchedStats of(const Stats& s) {
    return {s.sessions,       s.tasks,    s.chained_tasks,
            s.steals,         s.syncs,    s.affinity_hits,
            s.combines,       s.overlap_ratio(),
            s.affinity_ratio()};
  }
};

/// One-line report: "host sched: 12 sessions, 3,456 tasks (78.2% chained,
/// 94.1% home-lane), 123 steals, 45 combines, 89 joins".
std::string format_host_sched(const HostSchedStats& s);

}  // namespace v2d::perfmon
