#pragma once
/// \file perf_stat.hpp
/// \brief `perf stat`-style report formatting.
///
/// The paper times every Table I run with
///   perf stat -e duration_time -e cpu-cycles <v2d ...>
/// This formatter renders simulated results the same way, so the bench
/// output reads like the raw measurements the authors collected.

#include <cstdint>
#include <string>

namespace v2d::perfmon {

struct PerfStatResult {
  std::string command;        ///< the (simulated) command line
  double duration_seconds = 0.0;
  std::uint64_t cpu_cycles = 0;
  std::uint64_t instructions = 0;  ///< optional; 0 = omit line
};

/// Render in the style of `perf stat` output.
std::string format_perf_stat(const PerfStatResult& r);

}  // namespace v2d::perfmon
