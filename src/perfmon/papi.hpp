#pragma once
/// \file papi.hpp
/// \brief PAPI-like hardware-counter interface over simulated ledgers.
///
/// The paper reads kernel times "both from checking the hardware clock and
/// by using PAPI software timers".  This module reproduces that interface:
/// an EventSet is started against a sim::CostLedger, accumulates while the
/// instrumented code runs, and stop() returns the counter deltas.  Counter
/// values come from the cost model's accounting rather than real PMUs.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/ledger.hpp"

namespace v2d::perfmon {

/// The subset of PAPI preset events the study used, plus SVE-specific ones.
enum class Event : std::uint8_t {
  TotalCycles = 0,   ///< PAPI_TOT_CYC
  FpOps,             ///< PAPI_DP_OPS (double-precision flops, FMA = 2)
  LoadStoreInstr,    ///< PAPI_LST_INS (memory instructions issued)
  VectorInstr,       ///< SVE arithmetic+memory instructions
  BytesRead,         ///< derived: bytes loaded
  BytesWritten,      ///< derived: bytes stored
  kCount
};

inline constexpr std::size_t kNumEvents = static_cast<std::size_t>(Event::kCount);

const char* event_name(Event e);

/// Counter snapshot (one value per Event).
using EventValues = std::array<std::uint64_t, kNumEvents>;

/// Extract the current counter values from a ledger.
EventValues read_counters(const sim::CostLedger& ledger);

/// PAPI-style start/stop against a live ledger.
class EventSet {
public:
  /// Begin counting: snapshot the ledger.
  void start(const sim::CostLedger& ledger);

  /// Stop counting: return deltas since start().
  EventValues stop(const sim::CostLedger& ledger);

  bool running() const { return running_; }

private:
  EventValues start_{};
  bool running_ = false;
};

/// Seconds implied by a cycle delta at `freq_hz` — the "PAPI software
/// timer" the paper compares against the hardware clock.
double cycles_to_seconds(std::uint64_t cycles, double freq_hz);

}  // namespace v2d::perfmon
