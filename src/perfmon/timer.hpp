#pragma once
/// \file timer.hpp
/// \brief Host wall-clock timer (for the native microbenches) and a
/// stopwatch over simulated clocks.

#include <chrono>

#include "support/error.hpp"

namespace v2d::perfmon {

/// Real host time — used only where the repo measures *this machine*
/// (bench_kernels_native), never for reproducing paper numbers.
class WallTimer {
public:
  void start() { t0_ = clock::now(); running_ = true; }
  double stop() {
    V2D_REQUIRE(running_, "WallTimer was not started");
    running_ = false;
    return std::chrono::duration<double>(clock::now() - t0_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_{};
  bool running_ = false;
};

/// Stopwatch over an externally-advancing simulated clock (an ExecModel
/// rank clock): mark() then elapsed(now).
class SimStopwatch {
public:
  void mark(double now_s) { t0_ = now_s; armed_ = true; }
  double elapsed(double now_s) const {
    V2D_REQUIRE(armed_, "SimStopwatch was not marked");
    V2D_REQUIRE(now_s >= t0_, "simulated clock ran backwards");
    return now_s - t0_;
  }

private:
  double t0_ = 0.0;
  bool armed_ = false;
};

}  // namespace v2d::perfmon
