#pragma once
/// \file profiler.hpp
/// \brief TAU/ParaProf-style call-path region profiler.
///
/// The study used TAU's ParaProf "to see which routines contributed most
/// to the total time without the need to add additional routine calls".
/// This profiler builds the same artifact: a call-path tree of named
/// regions with call counts and inclusive/exclusive simulated time, plus a
/// flat ParaProf-like text report sorted by exclusive time.
///
/// The driver reports elapsed simulated seconds explicitly on exit()
/// because time advances in the ExecModel's clocks, not on the host.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace v2d::perfmon {

struct ProfileNode {
  std::string name;
  std::uint64_t calls = 0;
  double inclusive_s = 0.0;
  ProfileNode* parent = nullptr;
  std::map<std::string, std::unique_ptr<ProfileNode>> children;

  double exclusive_s() const {
    double kids = 0.0;
    for (const auto& [_, c] : children) kids += c->inclusive_s;
    // Clamp tiny negative values from floating-point cancellation when
    // children account for effectively all of the inclusive time.
    return inclusive_s - kids > 0.0 ? inclusive_s - kids : 0.0;
  }
  std::string path() const {
    if (!parent || parent->name.empty()) return name;
    return parent->path() + " => " + name;
  }
};

class Profiler {
public:
  Profiler();

  /// Open a region (child of the currently open region).
  void enter(const std::string& name);

  /// Close the innermost region, attributing `elapsed_s` inclusive seconds
  /// to this instance.
  void exit(double elapsed_s);

  /// RAII helper when the caller can compute elapsed time at scope end.
  class Scope {
  public:
    Scope(Profiler& p, const std::string& name) : p_(p) { p_.enter(name); }
    ~Scope() { p_.exit(elapsed_); }
    void set_elapsed(double s) { elapsed_ = s; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    Profiler& p_;
    double elapsed_ = 0.0;
  };

  bool open() const { return current_ != root_.get(); }
  const ProfileNode& root() const { return *root_; }

  /// Flat profile over all call paths, sorted by exclusive time descending
  /// — the ParaProf default view.
  struct FlatEntry {
    std::string path;
    std::uint64_t calls;
    double exclusive_s;
    double inclusive_s;
    double exclusive_pct;  // of root inclusive
  };
  std::vector<FlatEntry> flat() const;

  /// ParaProf-style text rendering of flat().
  std::string report() const;

  void clear();

private:
  std::unique_ptr<ProfileNode> root_;
  ProfileNode* current_;
};

}  // namespace v2d::perfmon
