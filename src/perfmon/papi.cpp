#include "perfmon/papi.hpp"

#include <cmath>

#include "support/error.hpp"

namespace v2d::perfmon {

const char* event_name(Event e) {
  switch (e) {
    case Event::TotalCycles: return "PAPI_TOT_CYC";
    case Event::FpOps: return "PAPI_DP_OPS";
    case Event::LoadStoreInstr: return "PAPI_LST_INS";
    case Event::VectorInstr: return "SVE_INST_RETIRED";
    case Event::BytesRead: return "BYTES_READ";
    case Event::BytesWritten: return "BYTES_WRITTEN";
    case Event::kCount: break;
  }
  return "?";
}

EventValues read_counters(const sim::CostLedger& ledger) {
  EventValues v{};
  std::uint64_t lst = 0;
  std::uint64_t vec = 0;
  for (const auto& [_, r] : ledger.regions()) {
    using sim::OpClass;
    auto instr = [&](OpClass c) {
      return r.counts.instr[static_cast<std::size_t>(c)];
    };
    lst += instr(OpClass::LoadContig) + instr(OpClass::StoreContig) +
           instr(OpClass::LoadGather) + instr(OpClass::StoreScatter);
    for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
      const auto c = static_cast<OpClass>(i);
      if (c != OpClass::IntOp && c != OpClass::Branch &&
          c != OpClass::Predicate) {
        vec += r.counts.instr[i];
      }
    }
  }
  const auto set = [&v](Event e, std::uint64_t x) {
    v[static_cast<std::size_t>(e)] = x;
  };
  set(Event::TotalCycles,
      static_cast<std::uint64_t>(std::llround(ledger.total_cycles())));
  set(Event::FpOps, ledger.total_flops());
  set(Event::LoadStoreInstr, lst);
  set(Event::VectorInstr, vec);
  std::uint64_t br = 0, bw = 0;
  for (const auto& [_, r] : ledger.regions()) {
    br += r.counts.bytes_read;
    bw += r.counts.bytes_written;
  }
  set(Event::BytesRead, br);
  set(Event::BytesWritten, bw);
  return v;
}

void EventSet::start(const sim::CostLedger& ledger) {
  V2D_REQUIRE(!running_, "EventSet already running");
  start_ = read_counters(ledger);
  running_ = true;
}

EventValues EventSet::stop(const sim::CostLedger& ledger) {
  V2D_REQUIRE(running_, "EventSet was not started");
  running_ = false;
  EventValues now = read_counters(ledger);
  for (std::size_t i = 0; i < kNumEvents; ++i) now[i] -= start_[i];
  return now;
}

double cycles_to_seconds(std::uint64_t cycles, double freq_hz) {
  V2D_REQUIRE(freq_hz > 0.0, "frequency must be positive");
  return static_cast<double>(cycles) / freq_hz;
}

}  // namespace v2d::perfmon
