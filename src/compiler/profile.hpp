#pragma once
/// \file profile.hpp
/// \brief Compiler codegen profiles — the "which compiler, which flags" axis.
///
/// The paper's Table I varies GNU 11.1 / Fujitsu 4.5 / Cray 21.03 with and
/// without -O3+SVE.  On Ookami those differ in (a) how well each compiler
/// schedules SVE and scalar code per kernel family and (b) which MPI stack
/// it is paired with.  A CodegenProfile captures exactly that: per-family
/// sim::CodegenFactors plus an MPI stack cost model.  Profiles are *pricing*
/// inputs — the numerics never change across profiles.

#include <map>
#include <string>
#include <vector>

#include "sim/isa.hpp"

namespace v2d::compiler {

/// The kernel families V2D distinguishes when instrumenting (matches the
/// paper's Table II rows plus the non-linear-algebra remainder).
enum class KernelFamily : std::uint8_t {
  Matvec = 0,    ///< finite-difference operator application
  Dprod,         ///< dot product
  Daxpy,         ///< a·x + y
  Dscal,         ///< c − d·y
  Ddaxpy,        ///< a·x + b·y + z
  VecMisc,       ///< other vector updates (copies, norms, waxpby)
  Precond,       ///< SPAI application
  PrecondBuild,  ///< SPAI construction
  Physics,       ///< opacities, limiters, coefficient assembly
  Hydro,         ///< hydrodynamics sweeps
  Io,            ///< checkpoint serialization
  Other,
  kCount
};

inline constexpr std::size_t kNumKernelFamilies =
    static_cast<std::size_t>(KernelFamily::kCount);

const char* kernel_family_name(KernelFamily f);

/// Cost parameters of the MPI implementation a compiler was paired with.
struct MpiStackModel {
  std::string name;
  double latency_intra_node_s = 1.0e-6;   ///< pt2pt latency, same node
  double latency_inter_node_s = 1.8e-6;   ///< pt2pt latency, across HDR100
  double bandwidth_Bps = 12.5e9;          ///< HDR100 ≈ 100 Gbit/s per port
  double allreduce_stage_overhead_s = 0;  ///< software cost per tree stage
  /// Software overhead that grows with communicator size (progress-engine
  /// polling, unexpected-message queues).  Charged per collective as
  /// per_rank_overhead_s · P.
  double per_rank_overhead_s = 0.0;
};

/// A complete compiler configuration.
class CodegenProfile {
public:
  CodegenProfile(std::string name, sim::ExecMode mode,
                 sim::CodegenFactors defaults, MpiStackModel mpi)
      : name_(std::move(name)),
        mode_(mode),
        defaults_(defaults),
        mpi_(std::move(mpi)) {}

  const std::string& name() const { return name_; }
  sim::ExecMode mode() const { return mode_; }
  const MpiStackModel& mpi() const { return mpi_; }

  /// Factors for a family (override if present, else defaults).
  const sim::CodegenFactors& factors(KernelFamily f) const;

  void set_family(KernelFamily f, sim::CodegenFactors factors) {
    overrides_[f] = factors;
  }
  sim::CodegenFactors& family(KernelFamily f) {
    auto it = overrides_.find(f);
    if (it == overrides_.end()) it = overrides_.emplace(f, defaults_).first;
    return it->second;
  }

  /// A copy of this profile with SVE disabled (scalar pricing), as produced
  /// by dropping the vectorization flags.  Scalar codegen quality is kept.
  CodegenProfile without_sve() const;

  /// A copy of this profile paired with a different MPI implementation
  /// (the paper tested compiler x MPI-stack combinations).
  CodegenProfile with_mpi(MpiStackModel stack, std::string new_name) const;

private:
  std::string name_;
  sim::ExecMode mode_;
  sim::CodegenFactors defaults_;
  MpiStackModel mpi_;
  std::map<KernelFamily, sim::CodegenFactors> overrides_;
};

/// Vendor presets (constants calibrated against the paper's own single-
/// processor Cray column and Table II ratios; see DESIGN.md §2).
CodegenProfile gnu_11();
/// GNU paired with MVAPICH instead of OpenMPI — "some compilers allowed
/// the use of either MVAPICH or OpenMPI" (paper §II-B).  Identical
/// codegen, different MPI stack.
CodegenProfile gnu_11_mvapich();
CodegenProfile fujitsu_45();
CodegenProfile cray_2103();
CodegenProfile cray_2103_noopt();
/// The paper's future-work compiler; modeled on LLVM's SVE maturity ca. 2022.
CodegenProfile clang_future();

/// All presets, in Table I column order (GNU, Fujitsu, Cray, Cray no-opt)
/// followed by extensions.
std::vector<CodegenProfile> all_profiles();

/// Lookup by short name: "gnu", "gnu-mvapich", "fujitsu", "cray",
/// "cray-noopt", "clang".
CodegenProfile find_profile(const std::string& short_name);

}  // namespace v2d::compiler
