#include "compiler/profile.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace v2d::compiler {

const char* kernel_family_name(KernelFamily f) {
  switch (f) {
    case KernelFamily::Matvec: return "MATVEC";
    case KernelFamily::Dprod: return "DPROD";
    case KernelFamily::Daxpy: return "DAXPY";
    case KernelFamily::Dscal: return "DSCAL";
    case KernelFamily::Ddaxpy: return "DDAXPY";
    case KernelFamily::VecMisc: return "VECMISC";
    case KernelFamily::Precond: return "PRECOND";
    case KernelFamily::PrecondBuild: return "PRECOND-BUILD";
    case KernelFamily::Physics: return "PHYSICS";
    case KernelFamily::Hydro: return "HYDRO";
    case KernelFamily::Io: return "IO";
    case KernelFamily::Other: return "OTHER";
    case KernelFamily::kCount: break;
  }
  return "?";
}

const sim::CodegenFactors& CodegenProfile::factors(KernelFamily f) const {
  auto it = overrides_.find(f);
  return it == overrides_.end() ? defaults_ : it->second;
}

CodegenProfile CodegenProfile::without_sve() const {
  CodegenProfile out = *this;
  out.name_ += " (no-SVE)";
  out.mode_ = sim::ExecMode::Scalar;
  return out;
}

CodegenProfile CodegenProfile::with_mpi(MpiStackModel stack,
                                        std::string new_name) const {
  CodegenProfile out = *this;
  out.mpi_ = std::move(stack);
  out.name_ = std::move(new_name);
  return out;
}

namespace {

using sim::CodegenFactors;
using sim::ExecMode;
using sim::OpClass;

// ---------------------------------------------------------------------------
// Calibration constants.
//
// Policy (DESIGN.md §2): machine capability lives in sim::MachineSpec;
// everything below encodes *compiler quality* and is calibrated so that
//   (a) the Cray(-O3+SVE) single-processor Table I entry lands near 181 s,
//   (b) Table II per-kernel SVE/no-SVE ratios land in 0.16–0.31,
//   (c) column ratios GNU:Fujitsu:Cray ≈ 2.0 : 1.39 : 1.0 at P = 1,
//   (d) the MPI stacks reproduce the Table I scaling shape (Cray best at
//       small P, Fujitsu's stack keeps scaling through P = 50, Cray and
//       GNU saturate/regress past P ≈ 25–40).
// Everything else in the reproduction is prediction, not calibration.
// ---------------------------------------------------------------------------

// Ganged-kernel vector-side scheduling quality per family for the Cray
// compiler; chosen to land the Table II ratio bands.  Streaming kernels
// with stores (DAXPY/DSCAL) vectorize a bit less profitably than pure
// reads (the store port is narrower), which the paper's ratios reflect.
struct FamilyTuning {
  KernelFamily family;
  double vec_scale;       // multiplies vector CPIs
  double scalar_scale;    // multiplies scalar CPIs
  double vec_fraction;    // fraction of work actually vectorized
};

void apply(CodegenProfile& p, const FamilyTuning& t) {
  CodegenFactors f = p.factors(t.family);
  f.scale_all(t.vec_scale);
  f.scalar_cpi_scale *= t.scalar_scale;
  f.vectorized_fraction = t.vec_fraction;
  p.set_family(t.family, f);
}

MpiStackModel cray_mpich() {
  // Cray's MPICH on Ookami: excellent latency at small rank counts, but
  // its progress engine cost grows with communicator size — the paper
  // observes Cray regressing beyond ~25 ranks while Fujitsu keeps scaling.
  return MpiStackModel{
      .name = "Cray MPICH",
      .latency_intra_node_s = 0.8e-6,
      .latency_inter_node_s = 1.8e-6,
      .bandwidth_Bps = 12.5e9,
      .allreduce_stage_overhead_s = 0.1e-6,
      .per_rank_overhead_s = 0.44e-6,
  };
}

MpiStackModel fujitsu_mpi() {
  return MpiStackModel{
      .name = "Fujitsu MPI",
      .latency_intra_node_s = 1.0e-6,
      .latency_inter_node_s = 1.2e-6,
      .bandwidth_Bps = 12.5e9,
      .allreduce_stage_overhead_s = 0.05e-6,
      .per_rank_overhead_s = 0.02e-6,
  };
}

MpiStackModel mvapich() {
  // MVAPICH on InfiniBand: lower small-message latency than OpenMPI but a
  // similar progress-engine growth.
  return MpiStackModel{
      .name = "MVAPICH",
      .latency_intra_node_s = 1.0e-6,
      .latency_inter_node_s = 2.0e-6,
      .bandwidth_Bps = 12.5e9,
      .allreduce_stage_overhead_s = 0.2e-6,
      .per_rank_overhead_s = 0.3e-6,
  };
}

MpiStackModel openmpi() {
  return MpiStackModel{
      .name = "OpenMPI",
      .latency_intra_node_s = 1.2e-6,
      .latency_inter_node_s = 2.4e-6,
      .bandwidth_Bps = 12.5e9,
      .allreduce_stage_overhead_s = 0.3e-6,
      .per_rank_overhead_s = 0.2e-6,
  };
}

}  // namespace

CodegenProfile cray_2103() {
  CodegenFactors base;
  base.scalar_cpi_scale = 1.0;
  base.loop_overhead_cycles = 8.0;
  base.vectorized_fraction = 1.0;
  base.bandwidth_efficiency = 0.85;
  CodegenProfile p("Cray 21.03 -O3 +SVE", ExecMode::SVE, base, cray_mpich());

  // Table II calibration (see FamilyTuning comment).
  apply(p, {KernelFamily::Matvec, 1.02, 1.00, 1.00});
  {
    // The stencil sweep is a pure streaming kernel; Cray's software
    // prefetch reaches full L1 bandwidth on it.
    CodegenFactors f = p.factors(KernelFamily::Matvec);
    f.bandwidth_efficiency = 1.0;
    p.set_family(KernelFamily::Matvec, f);
  }
  apply(p, {KernelFamily::Dprod, 1.05, 1.00, 1.00});
  apply(p, {KernelFamily::Daxpy, 1.60, 1.00, 1.00});
  apply(p, {KernelFamily::Dscal, 1.80, 1.00, 1.00});
  apply(p, {KernelFamily::Ddaxpy, 1.38, 1.00, 1.00});
  apply(p, {KernelFamily::VecMisc, 1.60, 1.00, 1.00});
  apply(p, {KernelFamily::Precond, 1.30, 1.00, 0.95});
  apply(p, {KernelFamily::PrecondBuild, 2.00, 1.00, 0.50});
  // Multi-physics remainder: interspersed calls, short loops, branchy
  // coefficient assembly — the compiler vectorizes only part of it.  This
  // is the paper's headline effect (whole-code speedup ≪ kernel speedup).
  apply(p, {KernelFamily::Physics, 2.20, 1.00, 0.35});
  apply(p, {KernelFamily::Hydro, 1.60, 1.00, 0.60});
  apply(p, {KernelFamily::Io, 3.00, 1.00, 0.10});
  apply(p, {KernelFamily::Other, 2.50, 1.00, 0.25});
  return p;
}

CodegenProfile cray_2103_noopt() {
  // No -O3, no SVE: scalar pricing with mediocre scalar scheduling.
  CodegenFactors base;
  base.scalar_cpi_scale = 0.66;
  base.loop_overhead_cycles = 12.0;
  base.vectorized_fraction = 0.0;
  base.bandwidth_efficiency = 0.85;
  return CodegenProfile("Cray 21.03 (no -O3, no SVE)", ExecMode::Scalar, base,
                        cray_mpich());
}

CodegenProfile fujitsu_45() {
  CodegenFactors base;
  base.scalar_cpi_scale = 1.05;
  base.loop_overhead_cycles = 10.0;
  base.vectorized_fraction = 1.0;
  base.bandwidth_efficiency = 0.70;
  CodegenProfile p("Fujitsu 4.5 -Kfast +SVE", ExecMode::SVE, base,
                   fujitsu_mpi());
  // Fujitsu's SVE codegen on its own silicon is good but its software
  // pipelining of short strip-mined loops trails Cray's at small rank
  // counts (Table I: Cray faster below ~25 ranks).
  apply(p, {KernelFamily::Matvec, 1.95, 1.05, 1.00});
  apply(p, {KernelFamily::Dprod, 2.25, 1.05, 1.00});
  apply(p, {KernelFamily::Daxpy, 3.25, 1.05, 1.00});
  apply(p, {KernelFamily::Dscal, 3.75, 1.05, 1.00});
  apply(p, {KernelFamily::Ddaxpy, 2.80, 1.05, 1.00});
  apply(p, {KernelFamily::VecMisc, 2.60, 1.05, 1.00});
  apply(p, {KernelFamily::Precond, 2.10, 1.05, 0.95});
  apply(p, {KernelFamily::PrecondBuild, 2.40, 1.05, 0.50});
  apply(p, {KernelFamily::Physics, 2.60, 1.05, 0.35});
  apply(p, {KernelFamily::Hydro, 2.00, 1.05, 0.60});
  apply(p, {KernelFamily::Io, 3.20, 1.05, 0.10});
  apply(p, {KernelFamily::Other, 2.80, 1.05, 0.25});
  return p;
}

CodegenProfile gnu_11() {
  // GCC 11 on A64FX: SVE auto-vectorization existed but left much on the
  // table (cost model tuned for Neon, no gather/reduction idioms), and its
  // scalar scheduling for the in-order-ish A64FX FP pipes was weak.
  CodegenFactors base;
  base.scalar_cpi_scale = 1.9;
  base.loop_overhead_cycles = 14.0;
  base.vectorized_fraction = 0.55;
  base.bandwidth_efficiency = 0.52;
  CodegenProfile p("GNU 11.1 -O3 +SVE", ExecMode::SVE, base, openmpi());
  apply(p, {KernelFamily::Matvec, 2.30, 1.00, 0.70});
  apply(p, {KernelFamily::Dprod, 2.60, 1.00, 0.60});
  apply(p, {KernelFamily::Daxpy, 3.10, 1.00, 0.80});
  apply(p, {KernelFamily::Dscal, 3.40, 1.00, 0.80});
  apply(p, {KernelFamily::Ddaxpy, 2.90, 1.00, 0.75});
  apply(p, {KernelFamily::VecMisc, 2.80, 1.00, 0.70});
  apply(p, {KernelFamily::Precond, 2.50, 1.00, 0.60});
  apply(p, {KernelFamily::PrecondBuild, 3.00, 1.00, 0.30});
  apply(p, {KernelFamily::Physics, 3.20, 1.00, 0.20});
  apply(p, {KernelFamily::Hydro, 2.60, 1.00, 0.40});
  apply(p, {KernelFamily::Io, 3.40, 1.00, 0.05});
  apply(p, {KernelFamily::Other, 3.20, 1.00, 0.15});
  return p;
}

CodegenProfile clang_future() {
  // The paper's future-work item.  LLVM's SVE support ca. 2022: better
  // than GCC at vector idioms, behind Cray on loop scheduling.
  CodegenFactors base;
  base.scalar_cpi_scale = 1.3;
  base.loop_overhead_cycles = 10.0;
  base.vectorized_fraction = 0.85;
  base.bandwidth_efficiency = 0.75;
  CodegenProfile p("Clang 14 -O3 +SVE (projected)", ExecMode::SVE, base,
                   openmpi());
  apply(p, {KernelFamily::Matvec, 1.60, 1.00, 0.95});
  apply(p, {KernelFamily::Dprod, 1.90, 1.00, 0.90});
  apply(p, {KernelFamily::Daxpy, 2.40, 1.00, 0.95});
  apply(p, {KernelFamily::Dscal, 2.80, 1.00, 0.95});
  apply(p, {KernelFamily::Ddaxpy, 2.10, 1.00, 0.95});
  apply(p, {KernelFamily::VecMisc, 2.00, 1.00, 0.90});
  apply(p, {KernelFamily::Precond, 1.80, 1.00, 0.85});
  apply(p, {KernelFamily::PrecondBuild, 2.40, 1.00, 0.40});
  apply(p, {KernelFamily::Physics, 2.60, 1.00, 0.30});
  apply(p, {KernelFamily::Hydro, 2.10, 1.00, 0.50});
  apply(p, {KernelFamily::Io, 3.20, 1.00, 0.05});
  apply(p, {KernelFamily::Other, 2.90, 1.00, 0.20});
  return p;
}

CodegenProfile gnu_11_mvapich() {
  return gnu_11().with_mpi(mvapich(), "GNU 11.1 -O3 +SVE / MVAPICH");
}

std::vector<CodegenProfile> all_profiles() {
  return {gnu_11(), fujitsu_45(), cray_2103(), cray_2103_noopt(),
          clang_future(), gnu_11_mvapich()};
}

CodegenProfile find_profile(const std::string& short_name) {
  if (short_name == "gnu") return gnu_11();
  if (short_name == "gnu-mvapich") return gnu_11_mvapich();
  if (short_name == "fujitsu") return fujitsu_45();
  if (short_name == "cray") return cray_2103();
  if (short_name == "cray-noopt") return cray_2103_noopt();
  if (short_name == "clang") return clang_future();
  throw Error("unknown compiler profile '" + short_name +
              "' (expected gnu|gnu-mvapich|fujitsu|cray|cray-noopt|clang)");
}

}  // namespace v2d::compiler
