#include "grid/dist_field.hpp"

#include <algorithm>
#include <array>

#include "support/task_graph.hpp"
#include "support/thread_pool.hpp"

namespace v2d::grid {

namespace {

/// Concatenate per-rank transfer lists in rank order, so the returned
/// (priceable) list is identical to the one a serial rank loop builds.
std::vector<mpisim::Transfer> concat(
    const std::vector<std::vector<mpisim::Transfer>>& per_rank) {
  std::vector<mpisim::Transfer> out;
  std::size_t total = 0;
  for (const auto& t : per_rank) total += t.size();
  out.reserve(total);
  for (const auto& t : per_rank) out.insert(out.end(), t.begin(), t.end());
  return out;
}

}  // namespace

using mpisim::Dir;

DistField::DistField(const Grid2D& grid, const Decomposition& dec, int ns,
                     int ng)
    : grid_(&grid), dec_(&dec), ns_(ns), ng_(ng) {
  V2D_REQUIRE(ns >= 1, "need at least one species");
  V2D_REQUIRE(ng >= 1, "need at least one ghost layer");
  data_.resize(static_cast<std::size_t>(dec.nranks()));
  for (int r = 0; r < dec.nranks(); ++r) {
    const TileExtent& e = dec.extent(r);
    const std::size_t n = static_cast<std::size_t>(ns) * (e.ni + 2 * ng) *
                          (e.nj + 2 * ng);
    data_[static_cast<std::size_t>(r)].assign(n, 0.0);
  }
}

std::ptrdiff_t DistField::stride(int rank) const {
  return dec_->extent(rank).ni + 2 * ng_;
}

double* DistField::tile_origin(int rank, int s) {
  const TileExtent& e = dec_->extent(rank);
  const std::ptrdiff_t per_species =
      static_cast<std::ptrdiff_t>(e.ni + 2 * ng_) * (e.nj + 2 * ng_);
  // origin points at (li=0, lj=0): skip ghost rows and columns.
  return data_[static_cast<std::size_t>(rank)].data() + per_species * s +
         stride(rank) * ng_ + ng_;
}

const double* DistField::tile_origin(int rank, int s) const {
  return const_cast<DistField*>(this)->tile_origin(rank, s);
}

TileView DistField::view(int rank, int s) {
  V2D_REQUIRE(s >= 0 && s < ns_, "species index out of range");
  const TileExtent& e = dec_->extent(rank);
  return TileView{tile_origin(rank, s), e.ni, e.nj, ng_, stride(rank)};
}

const TileView DistField::view(int rank, int s) const {
  return const_cast<DistField*>(this)->view(rank, s);
}

double DistField::gget(int s, int gi, int gj) const {
  task_graph::sync_current();  // direct reads join any chained writers
  const int r = dec_->owner(gi, gj);
  const TileExtent& e = dec_->extent(r);
  return view(r, s)(gi - e.i0, gj - e.j0);
}

void DistField::gset(int s, int gi, int gj, double v) {
  task_graph::sync_current();
  const int r = dec_->owner(gi, gj);
  const TileExtent& e = dec_->extent(r);
  view(r, s)(gi - e.i0, gj - e.j0) = v;
}

void DistField::fill(double v) {
  task_graph::sync_current();
  for (auto& buf : data_) std::fill(buf.begin(), buf.end(), v);
}

std::uint64_t DistField::tile_bytes(int rank) const {
  return data_[static_cast<std::size_t>(rank)].size() * sizeof(double);
}

std::uint64_t DistField::copy_halo_strip(int rank, int nb, Dir dir, int lo,
                                         int hi) {
  const TileExtent& e = dec_->extent(rank);
  const TileExtent& en = dec_->extent(nb);
  for (int s = 0; s < ns_; ++s) {
    TileView mine = view(rank, s);
    TileView theirs = view(nb, s);
    for (int g = 0; g < ng_; ++g) {
      switch (dir) {
        case Dir::West:
          for (int lj = lo; lj < hi; ++lj)
            mine(-1 - g, lj) = theirs(en.ni - 1 - g, lj);
          break;
        case Dir::East:
          for (int lj = lo; lj < hi; ++lj)
            mine(e.ni + g, lj) = theirs(g, lj);
          break;
        case Dir::South:
          for (int li = lo; li < hi; ++li)
            mine(li, -1 - g) = theirs(li, en.nj - 1 - g);
          break;
        case Dir::North:
          for (int li = lo; li < hi; ++li)
            mine(li, e.nj + g) = theirs(li, g);
          break;
      }
    }
  }
  return static_cast<std::uint64_t>(hi - lo) * ns_ * ng_ * sizeof(double);
}

std::vector<mpisim::Transfer> DistField::exchange_ghosts() {
  const auto& topo = dec_->topology();
  // Rank-parallel: each rank writes only its own ghost strips and reads
  // neighbours' interior strips, which no concurrent task writes.
  std::vector<std::vector<mpisim::Transfer>> per_rank(
      static_cast<std::size_t>(dec_->nranks()));
  par_ranks(*dec_, [&](int r) {
    const TileExtent& e = dec_->extent(r);
    // Pull model: each rank copies its neighbours' interface strips into
    // its own ghosts; the transfer is neighbour → r.
    for (int d = 0; d < mpisim::kNumDirs; ++d) {
      const auto dir = static_cast<Dir>(d);
      const auto nb = topo.neighbor(r, dir);
      if (!nb) continue;
      const bool x1_dir = dir == Dir::West || dir == Dir::East;
      const std::uint64_t bytes =
          copy_halo_strip(r, *nb, dir, 0, x1_dir ? e.nj : e.ni);
      // West/East halos are grid columns (stride = row length); they pay a
      // pack/unpack penalty in the cost model.
      per_rank[static_cast<std::size_t>(r)].push_back(
          mpisim::Transfer{*nb, r, bytes, x1_dir});
    }
  });
  return concat(per_rank);
}

std::vector<mpisim::Transfer> DistField::ghost_transfer_plan() const {
  const auto& topo = dec_->topology();
  std::vector<mpisim::Transfer> out;
  for (int r = 0; r < dec_->nranks(); ++r) {
    const TileExtent& e = dec_->extent(r);
    for (int d = 0; d < mpisim::kNumDirs; ++d) {
      const auto dir = static_cast<Dir>(d);
      const auto nb = topo.neighbor(r, dir);
      if (!nb) continue;
      const bool x1_dir = dir == Dir::West || dir == Dir::East;
      const auto strip = static_cast<std::uint64_t>(x1_dir ? e.nj : e.ni);
      out.push_back(
          mpisim::Transfer{*nb, r, strip * ns_ * ng_ * sizeof(double), x1_dir});
    }
  }
  return out;
}

void DistField::copy_halo(int rank, bool x1_dirs) {
  const auto& topo = dec_->topology();
  const TileExtent& e = dec_->extent(rank);
  const std::array<Dir, 2> dirs =
      x1_dirs ? std::array<Dir, 2>{Dir::West, Dir::East}
              : std::array<Dir, 2>{Dir::South, Dir::North};
  for (const auto dir : dirs) {
    const auto nb = topo.neighbor(rank, dir);
    if (!nb) continue;
    (void)copy_halo_strip(rank, *nb, dir, 0, x1_dirs ? e.nj : e.ni);
  }
}

std::vector<mpisim::Transfer> DistField::exchange_ghosts_full() {
  const auto& topo = dec_->topology();
  std::vector<std::vector<mpisim::Transfer>> phase1(
      static_cast<std::size_t>(dec_->nranks()));
  std::vector<std::vector<mpisim::Transfer>> phase2(
      static_cast<std::size_t>(dec_->nranks()));
  // Phase 1: x1-direction columns (interior rows only), all ranks.  Each
  // par_ranks call is a barrier, so phase 2 (which reads the ghost columns
  // phase 1 wrote) never overlaps it.
  par_ranks(*dec_, [&](int r) {
    const TileExtent& e = dec_->extent(r);
    for (const auto dir : {Dir::West, Dir::East}) {
      const auto nb = topo.neighbor(r, dir);
      if (!nb) continue;
      const std::uint64_t bytes = copy_halo_strip(r, *nb, dir, 0, e.nj);
      phase1[static_cast<std::size_t>(r)].push_back(
          mpisim::Transfer{*nb, r, bytes, /*strided=*/true});
    }
  });
  // Phase 2: x2-direction rows over the *padded* width.  The neighbour's
  // interface rows already carry their x1 ghosts from phase 1, so the
  // corner values ride along.  (At the domain edge the padded strip copies
  // whatever the neighbour's physical-boundary ghosts hold; apply_bc()
  // overwrites those corners afterwards.)
  par_ranks(*dec_, [&](int r) {
    const TileExtent& e = dec_->extent(r);
    for (const auto dir : {Dir::South, Dir::North}) {
      const auto nb = topo.neighbor(r, dir);
      if (!nb) continue;
      const std::uint64_t bytes =
          copy_halo_strip(r, *nb, dir, -ng_, e.ni + ng_);
      phase2[static_cast<std::size_t>(r)].push_back(
          mpisim::Transfer{*nb, r, bytes, /*strided=*/false});
    }
  });
  std::vector<mpisim::Transfer> transfers = concat(phase1);
  const std::vector<mpisim::Transfer> tail = concat(phase2);
  transfers.insert(transfers.end(), tail.begin(), tail.end());
  return transfers;
}

std::vector<mpisim::Transfer> DistField::ghost_transfer_plan_full() const {
  const auto& topo = dec_->topology();
  std::vector<mpisim::Transfer> out;
  // Phase 1: x1-direction columns over the interior rows.
  for (int r = 0; r < dec_->nranks(); ++r) {
    const TileExtent& e = dec_->extent(r);
    for (const auto dir : {Dir::West, Dir::East}) {
      const auto nb = topo.neighbor(r, dir);
      if (!nb) continue;
      out.push_back(mpisim::Transfer{
          *nb, r,
          static_cast<std::uint64_t>(e.nj) * ns_ * ng_ * sizeof(double),
          /*strided=*/true});
    }
  }
  // Phase 2: x2-direction rows over the padded width (corners ride along).
  for (int r = 0; r < dec_->nranks(); ++r) {
    const TileExtent& e = dec_->extent(r);
    for (const auto dir : {Dir::South, Dir::North}) {
      const auto nb = topo.neighbor(r, dir);
      if (!nb) continue;
      out.push_back(mpisim::Transfer{
          *nb, r,
          static_cast<std::uint64_t>(e.ni + 2 * ng_) * ns_ * ng_ *
              sizeof(double),
          /*strided=*/false});
    }
  }
  return out;
}

void DistField::copy_halo_full_x2(int rank) {
  const auto& topo = dec_->topology();
  const TileExtent& e = dec_->extent(rank);
  for (const auto dir : {Dir::South, Dir::North}) {
    const auto nb = topo.neighbor(rank, dir);
    if (!nb) continue;
    (void)copy_halo_strip(rank, *nb, dir, -ng_, e.ni + ng_);
  }
}

void DistField::apply_bc(BcKind bc) {
  // Rank-parallel: each rank writes only its own boundary ghosts; the
  // periodic wrap-around reads other tiles' interiors, which stay
  // untouched during the sweep.  The x1 pass runs before the x2 pass so
  // domain-edge corner ghosts source from already-filled x1 ghosts —
  // exactly the order the overlap tasks reproduce per rank.
  par_ranks(*dec_, [&](int r) {
    apply_bc_dir(bc, r, /*x1_dirs=*/true);
    apply_bc_dir(bc, r, /*x1_dirs=*/false);
  });
}

void DistField::apply_bc_dir(BcKind bc, int r, bool x1_dirs) {
  const int gnx1 = grid_->nx1();
  const int gnx2 = grid_->nx2();
  const TileExtent& e = dec_->extent(r);
  const bool at_w = x1_dirs && e.i0 == 0;
  const bool at_e = x1_dirs && e.i0 + e.ni == gnx1;
  const bool at_s = !x1_dirs && e.j0 == 0;
  const bool at_n = !x1_dirs && e.j0 + e.nj == gnx2;
  // Dirichlet/Neumann fills cover the padded range so domain-edge corner
  // ghosts get defined values.  Periodic keeps the interior range: its
  // wrap-around lookup is only defined for in-domain rows/columns.
  const int pad = bc == BcKind::Periodic ? 0 : ng_;
  for (int s = 0; s < ns_; ++s) {
    TileView v = view(r, s);
    for (int g = 0; g < ng_; ++g) {
      if (at_w) {
        for (int lj = -pad; lj < e.nj + pad; ++lj) {
          switch (bc) {
            case BcKind::Dirichlet0: v(-1 - g, lj) = 0.0; break;
            case BcKind::Neumann0: v(-1 - g, lj) = v(g, lj); break;
            case BcKind::Periodic:
              v(-1 - g, lj) = gget(s, gnx1 - 1 - g, e.j0 + lj);
              break;
          }
        }
      }
      if (at_e) {
        for (int lj = -pad; lj < e.nj + pad; ++lj) {
          switch (bc) {
            case BcKind::Dirichlet0: v(e.ni + g, lj) = 0.0; break;
            case BcKind::Neumann0: v(e.ni + g, lj) = v(e.ni - 1 - g, lj); break;
            case BcKind::Periodic:
              v(e.ni + g, lj) = gget(s, g, e.j0 + lj);
              break;
          }
        }
      }
      if (at_s) {
        for (int li = -pad; li < e.ni + pad; ++li) {
          switch (bc) {
            case BcKind::Dirichlet0: v(li, -1 - g) = 0.0; break;
            case BcKind::Neumann0: v(li, -1 - g) = v(li, g); break;
            case BcKind::Periodic:
              v(li, -1 - g) = gget(s, e.i0 + li, gnx2 - 1 - g);
              break;
          }
        }
      }
      if (at_n) {
        for (int li = -pad; li < e.ni + pad; ++li) {
          switch (bc) {
            case BcKind::Dirichlet0: v(li, e.nj + g) = 0.0; break;
            case BcKind::Neumann0: v(li, e.nj + g) = v(li, e.nj - 1 - g); break;
            case BcKind::Periodic:
              v(li, e.nj + g) = gget(s, e.i0 + li, g);
              break;
          }
        }
      }
    }
  }
}

std::vector<double> DistField::gather_global() const {
  std::vector<double> out(static_cast<std::size_t>(ns_) * grid_->nx1() *
                          grid_->nx2());
  par_ranks(*dec_, [&](int r) {
    const TileExtent& e = dec_->extent(r);
    for (int s = 0; s < ns_; ++s) {
      const TileView v = view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          out[static_cast<std::size_t>(
              grid_->linear_index(s, e.i0 + li, e.j0 + lj))] = v(li, lj);
        }
      }
    }
  });
  return out;
}

void DistField::scatter_global(std::span<const double> data) {
  V2D_REQUIRE(data.size() == static_cast<std::size_t>(ns_) * grid_->nx1() *
                                 grid_->nx2(),
              "scatter_global: payload size does not match the field");
  par_ranks(*dec_, [&](int r) {
    const TileExtent& e = dec_->extent(r);
    for (int s = 0; s < ns_; ++s) {
      TileView v = view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          v(li, lj) = data[static_cast<std::size_t>(
              grid_->linear_index(s, e.i0 + li, e.j0 + lj))];
        }
      }
    }
  });
}

}  // namespace v2d::grid
