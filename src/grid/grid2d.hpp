#pragma once
/// \file grid2d.hpp
/// \brief Global 2-D orthogonal grid description.
///
/// V2D "has been generically written to allow various coordinate systems
/// and the x1 and x2 spatial directions are always considered to be
/// orthogonal".  Grid2D carries the zone counts, physical extents and the
/// geometric factors (face areas, zone volumes) the finite-difference
/// diffusion operator needs, for Cartesian and cylindrical coordinates.
/// Zone centers are at i+1/2 spacings; faces at integer indices.

#include <cstdint>

#include "support/error.hpp"

namespace v2d::grid {

enum class Coord : std::uint8_t {
  Cartesian = 0,   ///< x1 = x, x2 = y
  Cylindrical,     ///< x1 = r, x2 = z (axisymmetric)
};

class Grid2D {
public:
  Grid2D(int nx1, int nx2, double x1min, double x1max, double x2min,
         double x2max, Coord coord = Coord::Cartesian)
      : nx1_(nx1),
        nx2_(nx2),
        x1min_(x1min),
        x1max_(x1max),
        x2min_(x2min),
        x2max_(x2max),
        coord_(coord) {
    V2D_REQUIRE(nx1 >= 1 && nx2 >= 1, "grid extents must be >= 1");
    V2D_REQUIRE(x1max > x1min && x2max > x2min, "grid box must be non-empty");
    if (coord == Coord::Cylindrical)
      V2D_REQUIRE(x1min >= 0.0, "cylindrical radius cannot be negative");
    dx1_ = (x1max - x1min) / nx1;
    dx2_ = (x2max - x2min) / nx2;
  }

  int nx1() const { return nx1_; }
  int nx2() const { return nx2_; }
  std::int64_t zones() const { return static_cast<std::int64_t>(nx1_) * nx2_; }
  double dx1() const { return dx1_; }
  double dx2() const { return dx2_; }
  Coord coord() const { return coord_; }

  /// Zone-center coordinates.
  double x1c(int i) const { return x1min_ + (i + 0.5) * dx1_; }
  double x2c(int j) const { return x2min_ + (j + 0.5) * dx2_; }
  /// Face coordinates (face i sits between zones i-1 and i).
  double x1f(int i) const { return x1min_ + i * dx1_; }
  double x2f(int j) const { return x2min_ + j * dx2_; }

  /// Area of the x1-face at (face index i, zone j), per unit depth.
  double area1(int i, int j) const {
    (void)j;
    switch (coord_) {
      case Coord::Cartesian: return dx2_;
      case Coord::Cylindrical: return x1f(i) * dx2_;
    }
    V2D_FAIL("bad coordinate system");
  }

  /// Area of the x2-face at (zone i, face index j).
  double area2(int i, int j) const {
    (void)j;
    switch (coord_) {
      case Coord::Cartesian: return dx1_;
      case Coord::Cylindrical: return x1c(i) * dx1_;
    }
    V2D_FAIL("bad coordinate system");
  }

  /// Zone volume, per unit depth.
  double volume(int i, int j) const {
    (void)j;
    switch (coord_) {
      case Coord::Cartesian: return dx1_ * dx2_;
      case Coord::Cylindrical: return x1c(i) * dx1_ * dx2_;
    }
    V2D_FAIL("bad coordinate system");
  }

  /// Dictionary-order linear index of unknown (s, i, j) in the assembled
  /// system: i fastest, then j, then species — the ordering behind the
  /// paper's Fig. 1 sparsity pattern (bands at 0, ±1, ±nx1, ±nx1·nx2).
  std::int64_t linear_index(int s, int i, int j) const {
    V2D_REQUIRE(i >= 0 && i < nx1_ && j >= 0 && j < nx2_ && s >= 0,
                "index out of range");
    return static_cast<std::int64_t>(i) +
           static_cast<std::int64_t>(nx1_) * j +
           static_cast<std::int64_t>(nx1_) * nx2_ * s;
  }

private:
  int nx1_;
  int nx2_;
  double x1min_, x1max_, x2min_, x2max_;
  double dx1_ = 0.0, dx2_ = 0.0;
  Coord coord_;
};

}  // namespace v2d::grid
