#pragma once
/// \file dist_field.hpp
/// \brief Distributed grid-shaped field: the storage behind V2D's vectors.
///
/// V2D never stores its sparse matrix; Krylov vectors are "Fortran arrays
/// defined with the same spatial shape as the 2D grid".  DistField is that
/// object: for each rank, an (ns × nx2_local × nx1_local) tile padded with
/// `ng` ghost zones, stored species-major with x1 fastest so the stencil
/// kernels stream contiguously.
///
/// Ghost filling is split in two: exchange_ghosts() copies tile-interface
/// strips between neighbouring tiles and returns the Transfer list so the
/// caller can price the communication; apply_bc() fills the physical
/// domain-boundary ghosts.

#include <cstdint>
#include <span>
#include <vector>

#include "grid/decomp.hpp"
#include "grid/grid2d.hpp"
#include "mpisim/exec_model.hpp"

namespace v2d::grid {

/// Physical boundary condition applied at the global domain edge.
enum class BcKind : std::uint8_t {
  Dirichlet0,  ///< ghost = 0 (absorbing)
  Neumann0,    ///< ghost = adjacent interior (zero-flux / reflecting)
  Periodic,    ///< ghost = wrap-around interior
};

/// Lightweight view of one species' tile including ghosts; (li, lj) are
/// tile-local zone indices, ghosts at -1 and ni/nj when ng = 1.
struct TileView {
  double* base = nullptr;  ///< address of (li=0, lj=0)
  int ni = 0;
  int nj = 0;
  int ng = 0;
  std::ptrdiff_t row_stride = 0;  ///< elements from (li,lj) to (li,lj+1)

  double& operator()(int li, int lj) {
    return base[li + row_stride * lj];
  }
  double operator()(int li, int lj) const {
    return base[li + row_stride * lj];
  }
  /// Pointer to the start (li = 0) of row lj — kernels stream from here.
  double* row(int lj) { return base + row_stride * lj; }
  const double* row(int lj) const { return base + row_stride * lj; }
};

class DistField {
public:
  DistField(const Grid2D& grid, const Decomposition& dec, int ns, int ng = 1);

  int ns() const { return ns_; }
  int ng() const { return ng_; }
  const Grid2D& grid() const { return *grid_; }
  const Decomposition& decomp() const { return *dec_; }
  int nranks() const { return dec_->nranks(); }

  TileView view(int rank, int s);
  const TileView view(int rank, int s) const;

  /// Global-index accessors (setup, gather, tests; not used by kernels).
  double gget(int s, int gi, int gj) const;
  void gset(int s, int gi, int gj, double v);

  void fill(double v);

  /// Bytes of one rank's tile payload including ghosts (working-set input).
  std::uint64_t tile_bytes(int rank) const;

  /// Copy interface strips between adjacent tiles (all species) and return
  /// the implied point-to-point transfers for pricing.  Pass the result to
  /// ExecModel::exchange().
  std::vector<mpisim::Transfer> exchange_ghosts();

  /// The Transfer list exchange_ghosts() would return, computed
  /// analytically without copying any data.  Lets a task-graph caller
  /// price the exchange up front (the collective is a join node) while the
  /// actual strip copies run as overlap tasks (copy_halo / apply_bc_dir).
  /// Identical element order and byte counts to exchange_ghosts().
  std::vector<mpisim::Transfer> ghost_transfer_plan() const;

  /// Copy `rank`'s ghost strips for the x1 (West+East) or x2 (South+North)
  /// direction pair from its face neighbours — the data movement of
  /// exchange_ghosts() restricted to one rank and one axis, for overlap
  /// scheduling.  Writes only `rank`'s own ghosts.
  void copy_halo(int rank, bool x1_dirs);

  /// Ghost exchange that also fills the diagonal (corner) ghosts, via the
  /// standard two-phase trick: first all x1-direction columns, then the
  /// x2-direction rows *including* the already-filled ghost columns, so
  /// corner values arrive through the face neighbours without any diagonal
  /// messages.  Needed by operators whose stencil reaches diagonally — the
  /// multigrid bilinear prolongation — while the five-point kernels keep
  /// using the cheaper exchange_ghosts().  Domain-boundary corners are
  /// left to apply_bc().
  std::vector<mpisim::Transfer> exchange_ghosts_full();

  /// The Transfer list exchange_ghosts_full() would return, computed
  /// analytically — the full-exchange counterpart of
  /// ghost_transfer_plan(), for task-graph callers that price the
  /// corner-filling exchange up front and run the copies as overlap
  /// tasks.  Identical order and byte counts to exchange_ghosts_full().
  std::vector<mpisim::Transfer> ghost_transfer_plan_full() const;

  /// One rank's share of exchange_ghosts_full()'s second phase: copy the
  /// S/N ghost rows over the *padded* width so corner values arrive
  /// through the face neighbours' already-filled ghost columns.  Writes
  /// only `rank`'s own ghosts but reads the neighbours' interface rows
  /// including their x1 ghosts — an overlap schedule must order this
  /// after those ranks' x1-direction fills (copy_halo + apply_bc_dir).
  void copy_halo_full_x2(int rank);

  /// Fill physical-boundary ghosts.
  void apply_bc(BcKind bc);

  /// One rank's share of apply_bc(), restricted to the x1 (West/East) or
  /// x2 (South/North) domain edges.  apply_bc() is exactly the x1 pass
  /// followed by the x2 pass for every rank, so overlap schedules that
  /// split the passes into tasks compute bit-identical ghosts.
  void apply_bc_dir(BcKind bc, int rank, bool x1_dirs);

  /// Gather the whole field (no ghosts) into a dense global array in
  /// dictionary order — used by checkpoints and validation.
  std::vector<double> gather_global() const;

  /// Inverse of gather_global(): distribute a dense global array
  /// (dictionary order, no ghosts) into the per-rank tiles.  Ghosts are
  /// left untouched — callers refill them through the usual exchange/BC
  /// path.  Used by checkpoint restart.
  void scatter_global(std::span<const double> data);

private:
  double* tile_origin(int rank, int s);
  const double* tile_origin(int rank, int s) const;
  std::ptrdiff_t stride(int rank) const;

  /// Copy `rank`'s ghost strip facing `dir` from neighbour `nb`, covering
  /// transverse local indices [lo, hi), all species and ghost layers;
  /// returns the bytes copied (the transfer payload).
  std::uint64_t copy_halo_strip(int rank, int nb, mpisim::Dir dir, int lo,
                                int hi);

  const Grid2D* grid_;
  const Decomposition* dec_;
  int ns_;
  int ng_;
  std::vector<std::vector<double>> data_;  // one buffer per rank
};

}  // namespace v2d::grid
