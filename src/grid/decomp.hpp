#pragma once
/// \file decomp.hpp
/// \brief Cartesian 2-D tile decomposition of a global grid.
///
/// V2D decomposes the domain into NPRX1 × NPRX2 tiles controlled by
/// run-time parameters; rank r owns tile (r % NPRX1, r / NPRX1).  Uneven
/// divisions are supported block-wise (the first `remainder` tiles in a
/// direction get one extra zone), although every Table I configuration
/// divides evenly.

#include <vector>

#include "grid/grid2d.hpp"
#include "mpisim/topology.hpp"

namespace v2d::grid {

/// Global zone range owned by one tile.
struct TileExtent {
  int i0 = 0;  ///< first global zone index in x1
  int j0 = 0;  ///< first global zone index in x2
  int ni = 0;  ///< zones in x1
  int nj = 0;  ///< zones in x2

  bool contains(int gi, int gj) const {
    return gi >= i0 && gi < i0 + ni && gj >= j0 && gj < j0 + nj;
  }
};

class Decomposition {
public:
  Decomposition(const Grid2D& grid, mpisim::CartTopology topo)
      : topo_(topo), nx1_(grid.nx1()), nx2_(grid.nx2()) {
    V2D_REQUIRE(topo.nprx1() <= grid.nx1() && topo.nprx2() <= grid.nx2(),
                "more tiles than zones in a direction");
    extents_.reserve(static_cast<std::size_t>(topo.size()));
    for (int r = 0; r < topo.size(); ++r) {
      const int px1 = topo.px1_of(r), px2 = topo.px2_of(r);
      TileExtent e;
      split(nx1_, topo.nprx1(), px1, e.i0, e.ni);
      split(nx2_, topo.nprx2(), px2, e.j0, e.nj);
      extents_.push_back(e);
    }
  }

  /// Explicit-extent decomposition: the caller supplies one tile per rank.
  /// Used by the multigrid hierarchy, whose coarse tiles must stay aligned
  /// with the parents of the fine tiles (the default `split` would shift
  /// tile boundaries on uneven coarse grids).  The extents must tile the
  /// grid exactly.
  Decomposition(const Grid2D& grid, mpisim::CartTopology topo,
                std::vector<TileExtent> extents)
      : topo_(topo),
        nx1_(grid.nx1()),
        nx2_(grid.nx2()),
        extents_(std::move(extents)) {
    V2D_REQUIRE(static_cast<int>(extents_.size()) == topo.size(),
                "need exactly one tile extent per rank");
    std::int64_t zones = 0;
    for (const auto& e : extents_) {
      V2D_REQUIRE(e.ni >= 1 && e.nj >= 1, "tile extents must be >= 1");
      V2D_REQUIRE(e.i0 >= 0 && e.j0 >= 0 && e.i0 + e.ni <= nx1_ &&
                      e.j0 + e.nj <= nx2_,
                  "tile extent out of grid range");
      zones += static_cast<std::int64_t>(e.ni) * e.nj;
    }
    V2D_REQUIRE(zones == grid.zones(), "tile extents must tile the grid");
  }

  const mpisim::CartTopology& topology() const { return topo_; }
  int nranks() const { return topo_.size(); }
  const TileExtent& extent(int rank) const {
    return extents_.at(static_cast<std::size_t>(rank));
  }

  /// Rank owning global zone (gi, gj).
  int owner(int gi, int gj) const {
    V2D_REQUIRE(gi >= 0 && gi < nx1_ && gj >= 0 && gj < nx2_,
                "global zone out of range");
    for (int r = 0; r < nranks(); ++r)
      if (extents_[static_cast<std::size_t>(r)].contains(gi, gj)) return r;
    V2D_FAIL("no owner found (corrupt decomposition)");
  }

  /// Largest tile volume (load-balance metric).
  std::int64_t max_tile_zones() const {
    std::int64_t m = 0;
    for (const auto& e : extents_) {
      const auto z = static_cast<std::int64_t>(e.ni) * e.nj;
      if (z > m) m = z;
    }
    return m;
  }

private:
  static void split(int n, int parts, int index, int& start, int& count) {
    const int base = n / parts;
    const int extra = n % parts;
    count = base + (index < extra ? 1 : 0);
    start = index * base + (index < extra ? index : extra);
  }

  mpisim::CartTopology topo_;
  int nx1_;
  int nx2_;
  std::vector<TileExtent> extents_;
};

}  // namespace v2d::grid
