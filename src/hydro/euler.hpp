#pragma once
/// \file euler.hpp
/// \brief 2-D Eulerian hydrodynamics: dimensionally split HLL solver.
///
/// Conserved variables (ρ, ρu₁, ρu₂, E_gas) live in one 4-component
/// DistField, so the hydro state is domain-decomposed exactly like the
/// radiation vectors.  Each step does an x1 sweep then an x2 sweep of
/// piecewise-constant Godunov updates with the HLL approximate Riemann
/// solver, Davis wavespeed bounds, and zero-gradient (outflow) or
/// reflecting boundaries.  Work is charged to the Hydro kernel family.

#include <cstdint>

#include "grid/dist_field.hpp"
#include "hydro/eos.hpp"
#include "linalg/exec_context.hpp"

namespace v2d::hydro {

/// Component indices in the conserved-state field.
enum Cons : int { kRho = 0, kMom1 = 1, kMom2 = 2, kEner = 3, kNumCons = 4 };

enum class HydroBc : std::uint8_t { Outflow, Reflecting };

class HydroState {
public:
  HydroState(const grid::Grid2D& g, const grid::Decomposition& d)
      : field_(g, d, kNumCons, 1) {}

  grid::DistField& field() { return field_; }
  const grid::DistField& field() const { return field_; }

  /// Set one zone's primitive state (ρ, u₁, u₂, p).
  void set_primitive(const GammaLawEos& eos, int gi, int gj, double rho,
                     double u1, double u2, double p);

  /// Total gas energy Σ E·V (conservation diagnostics).
  double total_energy() const;
  /// Total mass Σ ρ·V.
  double total_mass() const;

private:
  grid::DistField field_;
};

class HydroSolver {
public:
  HydroSolver(const grid::Grid2D& g, const grid::Decomposition& d,
              GammaLawEos eos, HydroBc bc = HydroBc::Outflow,
              double cfl = 0.4);

  const GammaLawEos& eos() const { return eos_; }

  /// Largest stable dt for the current state (global reduction priced as
  /// one allreduce).
  double cfl_dt(linalg::ExecContext& ctx, const HydroState& state) const;

  /// Advance by dt (dimensionally split x1 then x2 sweeps).
  void step(linalg::ExecContext& ctx, HydroState& state, double dt);

private:
  void sweep(linalg::ExecContext& ctx, HydroState& state, double dt,
             int direction);
  void fill_ghosts(linalg::ExecContext& ctx, HydroState& state);
  /// One rank's share of fill_ghosts (halo copies, BCs, reflecting
  /// fixup): the ghost task of the graph-mode overlap subgraph.
  void fill_ghosts_rank(grid::DistField& f, int r) const;
  /// Reflecting walls: flip the wall-normal momentum in rank r's
  /// physical ghosts (own-tile reads and writes only).
  void reflect_rank(grid::DistField& f, int r) const;

  const grid::Grid2D* grid_;
  const grid::Decomposition* dec_;
  GammaLawEos eos_;
  HydroBc bc_;
  double cfl_;
};

}  // namespace v2d::hydro
