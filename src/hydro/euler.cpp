#include "hydro/euler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/task_graph.hpp"

namespace v2d::hydro {

using compiler::KernelFamily;
using linalg::ExecContext;

void HydroState::set_primitive(const GammaLawEos& eos, int gi, int gj,
                               double rho, double u1, double u2, double p) {
  V2D_REQUIRE(rho > 0.0 && p > 0.0, "primitive state must be positive");
  field_.gset(kRho, gi, gj, rho);
  field_.gset(kMom1, gi, gj, rho * u1);
  field_.gset(kMom2, gi, gj, rho * u2);
  const double kinetic = 0.5 * rho * (u1 * u1 + u2 * u2);
  field_.gset(kEner, gi, gj, rho * eos.eint(rho, p) + kinetic);
}

namespace {
double field_total(const grid::DistField& f, int component) {
  const grid::Grid2D& g = f.grid();
  const auto& dec = f.decomp();
  double total = 0.0;
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    const grid::TileView v = f.view(r, component);
    for (int lj = 0; lj < e.nj; ++lj)
      for (int li = 0; li < e.ni; ++li)
        total += v(li, lj) * g.volume(e.i0 + li, e.j0 + lj);
  }
  return total;
}
}  // namespace

double HydroState::total_energy() const { return field_total(field_, kEner); }
double HydroState::total_mass() const { return field_total(field_, kRho); }

HydroSolver::HydroSolver(const grid::Grid2D& g, const grid::Decomposition& d,
                         GammaLawEos eos, HydroBc bc, double cfl)
    : grid_(&g), dec_(&d), eos_(eos), bc_(bc), cfl_(cfl) {
  V2D_REQUIRE(g.coord() == grid::Coord::Cartesian,
              "the hydro solver supports Cartesian coordinates");
  V2D_REQUIRE(cfl > 0.0 && cfl < 1.0, "CFL number must be in (0, 1)");
}

void HydroSolver::fill_ghosts(ExecContext& ctx, HydroState& state) {
  grid::DistField& f = state.field();
  const auto transfers = f.exchange_ghosts();
  f.apply_bc(grid::BcKind::Neumann0);
  ctx.exchange(transfers);
  if (bc_ != HydroBc::Reflecting) return;
  // Reflecting walls: flip the wall-normal momentum in the physical ghosts.
  const int gnx1 = grid_->nx1(), gnx2 = grid_->nx2();
  for (int r = 0; r < dec_->nranks(); ++r) {
    const grid::TileExtent& e = dec_->extent(r);
    grid::TileView m1 = f.view(r, kMom1);
    grid::TileView m2 = f.view(r, kMom2);
    if (e.i0 == 0)
      for (int lj = -1; lj <= e.nj; ++lj) m1(-1, lj) = -m1(0, lj);
    if (e.i0 + e.ni == gnx1)
      for (int lj = -1; lj <= e.nj; ++lj) m1(e.ni, lj) = -m1(e.ni - 1, lj);
    if (e.j0 == 0)
      for (int li = -1; li <= e.ni; ++li) m2(li, -1) = -m2(li, 0);
    if (e.j0 + e.nj == gnx2)
      for (int li = -1; li <= e.ni; ++li) m2(li, e.nj) = -m2(li, e.nj - 1);
  }
}

double HydroSolver::cfl_dt(ExecContext& ctx, const HydroState& state) const {
  const grid::DistField& f = state.field();
  // Per-rank minima reduced in rank order: dt does not depend on the
  // host-thread count.
  std::vector<double> dt_r(static_cast<std::size_t>(dec_->nranks()),
                           std::numeric_limits<double>::max());
  linalg::par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec_->extent(r);
    const grid::TileView rho = f.view(r, kRho);
    const grid::TileView m1 = f.view(r, kMom1);
    const grid::TileView m2 = f.view(r, kMom2);
    const grid::TileView en = f.view(r, kEner);
    double dt = std::numeric_limits<double>::max();
    for (int lj = 0; lj < e.nj; ++lj) {
      for (int li = 0; li < e.ni; ++li) {
        const double d = rho(li, lj);
        V2D_CHECK(d > 0.0, "negative density in cfl_dt");
        const double u1 = m1(li, lj) / d, u2 = m2(li, lj) / d;
        const double eint =
            (en(li, lj) - 0.5 * d * (u1 * u1 + u2 * u2)) / d;
        const double p = std::max(1.0e-30, eos_.pressure(d, eint));
        const double c = eos_.sound_speed(d, p);
        dt = std::min(dt, grid_->dx1() / (std::fabs(u1) + c));
        dt = std::min(dt, grid_->dx2() / (std::fabs(u2) + c));
      }
    }
    dt_r[static_cast<std::size_t>(r)] = dt;
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj;
    rctx.commit_synthetic(r, KernelFamily::Hydro, "hydro-cfl", elements, 20,
                          32, 0, elements * 32);
  });
  double dt = std::numeric_limits<double>::max();
  for (const double v : dt_r) dt = std::min(dt, v);
  ctx.allreduce(sizeof(double));
  return cfl_ * dt;
}

namespace {

struct Prim {
  double rho, un, ut, p, e;  // normal/transverse split, total energy
};

struct Flux {
  double rho, mn, mt, e;
};

Flux physical_flux(const Prim& w) {
  return Flux{w.rho * w.un, w.rho * w.un * w.un + w.p, w.rho * w.un * w.ut,
              (w.e + w.p) * w.un};
}

/// HLL flux with Davis wavespeed estimates.
Flux hll_flux(const GammaLawEos& eos, const Prim& l, const Prim& r) {
  const double cl = eos.sound_speed(l.rho, l.p);
  const double cr = eos.sound_speed(r.rho, r.p);
  const double sl = std::min(l.un - cl, r.un - cr);
  const double sr = std::max(l.un + cl, r.un + cr);
  const Flux fl = physical_flux(l);
  const Flux fr = physical_flux(r);
  if (sl >= 0.0) return fl;
  if (sr <= 0.0) return fr;
  const double inv = 1.0 / (sr - sl);
  auto blend = [&](double f_l, double f_r, double u_l, double u_r) {
    return (sr * f_l - sl * f_r + sl * sr * (u_r - u_l)) * inv;
  };
  return Flux{
      blend(fl.rho, fr.rho, l.rho, r.rho),
      blend(fl.mn, fr.mn, l.rho * l.un, r.rho * r.un),
      blend(fl.mt, fr.mt, l.rho * l.ut, r.rho * r.ut),
      blend(fl.e, fr.e, l.e, r.e),
  };
}

}  // namespace

void HydroSolver::sweep(ExecContext& ctx, HydroState& state, double dt,
                        int direction) {
  fill_ghosts(ctx, state);
  grid::DistField& f = state.field();
  const double dx = direction == 0 ? grid_->dx1() : grid_->dx2();
  const double lambda = dt / dx;

  // Rank tiles are disjoint and ghosts were filled above, so the sweeps of
  // all simulated ranks run concurrently on the host pool.
  linalg::par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec_->extent(r);
    grid::TileView rho = f.view(r, kRho);
    grid::TileView m1 = f.view(r, kMom1);
    grid::TileView m2 = f.view(r, kMom2);
    grid::TileView en = f.view(r, kEner);

    auto prim_at = [&](int li, int lj) {
      const double d = rho(li, lj);
      const double mm1 = m1(li, lj), mm2 = m2(li, lj);
      const double u1 = mm1 / d, u2 = mm2 / d;
      const double eint = std::max(
          1.0e-30, (en(li, lj) - 0.5 * d * (u1 * u1 + u2 * u2)) / d);
      const double p = eos_.pressure(d, eint);
      Prim w;
      w.rho = d;
      w.un = direction == 0 ? u1 : u2;
      w.ut = direction == 0 ? u2 : u1;
      w.p = p;
      w.e = en(li, lj);
      return w;
    };

    // Fluxes are computed per pencil (row for x1, column for x2) and
    // applied immediately; a one-face flux buffer carries the left face.
    const int npencil = direction == 0 ? e.nj : e.ni;
    const int nzone = direction == 0 ? e.ni : e.nj;
    for (int pencil = 0; pencil < npencil; ++pencil) {
      auto zone = [&](int k) {
        return direction == 0 ? std::pair{k, pencil} : std::pair{pencil, k};
      };
      auto [i0, j0] = zone(0);
      Flux left = hll_flux(eos_, prim_at(direction == 0 ? i0 - 1 : i0,
                                         direction == 0 ? j0 : j0 - 1),
                           prim_at(i0, j0));
      for (int k = 0; k < nzone; ++k) {
        auto [li, lj] = zone(k);
        auto [ri, rj] = zone(k + 1);
        // zone(k+1) may be a ghost when k is the last zone.
        const Prim wl = prim_at(li, lj);
        const Prim wr = (k + 1 < nzone)
                            ? prim_at(ri, rj)
                            : prim_at(direction == 0 ? li + 1 : li,
                                      direction == 0 ? lj : lj + 1);
        const Flux right = hll_flux(eos_, wl, wr);
        rho(li, lj) -= lambda * (right.rho - left.rho);
        if (direction == 0) {
          m1(li, lj) -= lambda * (right.mn - left.mn);
          m2(li, lj) -= lambda * (right.mt - left.mt);
        } else {
          m2(li, lj) -= lambda * (right.mn - left.mn);
          m1(li, lj) -= lambda * (right.mt - left.mt);
        }
        en(li, lj) -= lambda * (right.e - left.e);
        left = right;
      }
    }
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj;
    // ~90 flops/zone (one HLL flux per face + update), ~14 doubles read,
    // 4 written.
    rctx.commit_synthetic(r, KernelFamily::Hydro, "hydro-sweep", elements, 90,
                          112, 32, elements * 144);
  });
}

void HydroSolver::step(ExecContext& ctx, HydroState& state, double dt) {
  V2D_REQUIRE(dt > 0.0, "time step must be positive");
  // Keep the pool's workers resident across both directional sweeps under
  // --host-sched graph: each sweep's ghost fill and zone update run as
  // scheduler stages without re-waking the pool per kernel.  The sweeps
  // themselves stay ordered (x2 reads x1's output through the exchange
  // join), so this is a residency win, not a reordering.
  task_graph::GraphRegion graph(ctx.sched == linalg::HostSched::Graph);
  sweep(ctx, state, dt, 0);
  sweep(ctx, state, dt, 1);
}

}  // namespace v2d::hydro
