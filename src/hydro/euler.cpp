#include "hydro/euler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/task_graph.hpp"

namespace v2d::hydro {

using compiler::KernelFamily;
using linalg::ExecContext;

void HydroState::set_primitive(const GammaLawEos& eos, int gi, int gj,
                               double rho, double u1, double u2, double p) {
  V2D_REQUIRE(rho > 0.0 && p > 0.0, "primitive state must be positive");
  field_.gset(kRho, gi, gj, rho);
  field_.gset(kMom1, gi, gj, rho * u1);
  field_.gset(kMom2, gi, gj, rho * u2);
  const double kinetic = 0.5 * rho * (u1 * u1 + u2 * u2);
  field_.gset(kEner, gi, gj, rho * eos.eint(rho, p) + kinetic);
}

namespace {
double field_total(const grid::DistField& f, int component) {
  const grid::Grid2D& g = f.grid();
  const auto& dec = f.decomp();
  double total = 0.0;
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    const grid::TileView v = f.view(r, component);
    for (int lj = 0; lj < e.nj; ++lj)
      for (int li = 0; li < e.ni; ++li)
        total += v(li, lj) * g.volume(e.i0 + li, e.j0 + lj);
  }
  return total;
}
}  // namespace

double HydroState::total_energy() const { return field_total(field_, kEner); }
double HydroState::total_mass() const { return field_total(field_, kRho); }

HydroSolver::HydroSolver(const grid::Grid2D& g, const grid::Decomposition& d,
                         GammaLawEos eos, HydroBc bc, double cfl)
    : grid_(&g), dec_(&d), eos_(eos), bc_(bc), cfl_(cfl) {
  V2D_REQUIRE(g.coord() == grid::Coord::Cartesian,
              "the hydro solver supports Cartesian coordinates");
  V2D_REQUIRE(cfl > 0.0 && cfl < 1.0, "CFL number must be in (0, 1)");
}

void HydroSolver::fill_ghosts(ExecContext& ctx, HydroState& state) {
  grid::DistField& f = state.field();
  const auto transfers = f.exchange_ghosts();
  f.apply_bc(grid::BcKind::Neumann0);
  ctx.exchange(transfers);
  if (bc_ != HydroBc::Reflecting) return;
  for (int r = 0; r < dec_->nranks(); ++r) reflect_rank(f, r);
}

void HydroSolver::reflect_rank(grid::DistField& f, int r) const {
  const grid::TileExtent& e = dec_->extent(r);
  grid::TileView m1 = f.view(r, kMom1);
  grid::TileView m2 = f.view(r, kMom2);
  if (e.i0 == 0)
    for (int lj = -1; lj <= e.nj; ++lj) m1(-1, lj) = -m1(0, lj);
  if (e.i0 + e.ni == grid_->nx1())
    for (int lj = -1; lj <= e.nj; ++lj) m1(e.ni, lj) = -m1(e.ni - 1, lj);
  if (e.j0 == 0)
    for (int li = -1; li <= e.ni; ++li) m2(li, -1) = -m2(li, 0);
  if (e.j0 + e.nj == grid_->nx2())
    for (int li = -1; li <= e.ni; ++li) m2(li, e.nj) = -m2(li, e.nj - 1);
}

void HydroSolver::fill_ghosts_rank(grid::DistField& f, int r) const {
  // Per-rank serialization of fill_ghosts: copies read only neighbour
  // interiors (pristine before any update task runs) and the Neumann
  // BC / reflecting fixup read and write only this rank's own tile, so
  // the per-rank interleaving writes exactly the ghost values the
  // all-ranks phases do.  The x1 passes precede the x2 passes so the
  // domain-edge corner ghosts source from already-filled x1 ghosts.
  f.copy_halo(r, /*x1_dirs=*/true);
  f.copy_halo(r, /*x1_dirs=*/false);
  f.apply_bc_dir(grid::BcKind::Neumann0, r, /*x1_dirs=*/true);
  f.apply_bc_dir(grid::BcKind::Neumann0, r, /*x1_dirs=*/false);
  if (bc_ == HydroBc::Reflecting) reflect_rank(f, r);
}

double HydroSolver::cfl_dt(ExecContext& ctx, const HydroState& state) const {
  const grid::DistField& f = state.field();
  // Per-rank minima reduced in rank order: dt does not depend on the
  // host-thread count.
  std::vector<double> dt_r(static_cast<std::size_t>(dec_->nranks()),
                           std::numeric_limits<double>::max());
  linalg::par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
    const grid::TileExtent& e = dec_->extent(r);
    const grid::TileView rho = f.view(r, kRho);
    const grid::TileView m1 = f.view(r, kMom1);
    const grid::TileView m2 = f.view(r, kMom2);
    const grid::TileView en = f.view(r, kEner);
    double dt = std::numeric_limits<double>::max();
    for (int lj = 0; lj < e.nj; ++lj) {
      for (int li = 0; li < e.ni; ++li) {
        const double d = rho(li, lj);
        V2D_CHECK(d > 0.0, "negative density in cfl_dt");
        const double u1 = m1(li, lj) / d, u2 = m2(li, lj) / d;
        const double eint =
            (en(li, lj) - 0.5 * d * (u1 * u1 + u2 * u2)) / d;
        const double p = std::max(1.0e-30, eos_.pressure(d, eint));
        const double c = eos_.sound_speed(d, p);
        dt = std::min(dt, grid_->dx1() / (std::fabs(u1) + c));
        dt = std::min(dt, grid_->dx2() / (std::fabs(u2) + c));
      }
    }
    dt_r[static_cast<std::size_t>(r)] = dt;
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj;
    rctx.commit_synthetic(r, KernelFamily::Hydro, "hydro-cfl", elements, 20,
                          32, 0, elements * 32);
  });
  double dt = std::numeric_limits<double>::max();
  for (const double v : dt_r) dt = std::min(dt, v);
  ctx.allreduce(sizeof(double));
  return cfl_ * dt;
}

namespace {

struct Prim {
  double rho, un, ut, p, e;  // normal/transverse split, total energy
};

struct Flux {
  double rho, mn, mt, e;
};

Flux physical_flux(const Prim& w) {
  return Flux{w.rho * w.un, w.rho * w.un * w.un + w.p, w.rho * w.un * w.ut,
              (w.e + w.p) * w.un};
}

/// HLL flux with Davis wavespeed estimates.
Flux hll_flux(const GammaLawEos& eos, const Prim& l, const Prim& r) {
  const double cl = eos.sound_speed(l.rho, l.p);
  const double cr = eos.sound_speed(r.rho, r.p);
  const double sl = std::min(l.un - cl, r.un - cr);
  const double sr = std::max(l.un + cl, r.un + cr);
  const Flux fl = physical_flux(l);
  const Flux fr = physical_flux(r);
  if (sl >= 0.0) return fl;
  if (sr <= 0.0) return fr;
  const double inv = 1.0 / (sr - sl);
  auto blend = [&](double f_l, double f_r, double u_l, double u_r) {
    return (sr * f_l - sl * f_r + sl * sr * (u_r - u_l)) * inv;
  };
  return Flux{
      blend(fl.rho, fr.rho, l.rho, r.rho),
      blend(fl.mn, fr.mn, l.rho * l.un, r.rho * r.un),
      blend(fl.mt, fr.mt, l.rho * l.ut, r.rho * r.ut),
      blend(fl.e, fr.e, l.e, r.e),
  };
}

}  // namespace

void HydroSolver::sweep(ExecContext& ctx, HydroState& state, double dt,
                        int direction) {
  grid::DistField& f = state.field();
  task_graph::Session* ses = task_graph::current();
  const bool overlap = ses != nullptr && !task_graph::in_task();
  if (overlap) {
    // Graph mode: price the exchange up front — the Transfer list is
    // analytically identical to the one fill_ghosts' copies imply, and
    // the collective is a join node draining any chained predecessors —
    // then run the ghost fill as per-rank overlap tasks below.
    ctx.exchange(f.ghost_transfer_plan());
  } else {
    fill_ghosts(ctx, state);
  }
  const double dx = direction == 0 ? grid_->dx1() : grid_->dx2();
  const double lambda = dt / dx;

  // Update pencils [plo, phi) of rank r (row pencils for x1, column
  // pencils for x2).  A pencil reads only its own cells plus the two
  // sweep-direction ghosts and carries the left-face flux in a register,
  // so any split over pencils computes exactly the zone values of the
  // full sweep.
  grid::DistField* fp = &f;
  auto pencils = [this, fp, direction, lambda](int r, int plo, int phi) {
    const grid::TileExtent& e = dec_->extent(r);
    grid::TileView rho = fp->view(r, kRho);
    grid::TileView m1 = fp->view(r, kMom1);
    grid::TileView m2 = fp->view(r, kMom2);
    grid::TileView en = fp->view(r, kEner);

    auto prim_at = [&](int li, int lj) {
      const double d = rho(li, lj);
      const double mm1 = m1(li, lj), mm2 = m2(li, lj);
      const double u1 = mm1 / d, u2 = mm2 / d;
      const double eint = std::max(
          1.0e-30, (en(li, lj) - 0.5 * d * (u1 * u1 + u2 * u2)) / d);
      const double p = eos_.pressure(d, eint);
      Prim w;
      w.rho = d;
      w.un = direction == 0 ? u1 : u2;
      w.ut = direction == 0 ? u2 : u1;
      w.p = p;
      w.e = en(li, lj);
      return w;
    };

    // Fluxes are computed per pencil and applied immediately; a one-face
    // flux buffer carries the left face.
    const int nzone = direction == 0 ? e.ni : e.nj;
    for (int pencil = plo; pencil < phi; ++pencil) {
      auto zone = [&](int k) {
        return direction == 0 ? std::pair{k, pencil} : std::pair{pencil, k};
      };
      auto [i0, j0] = zone(0);
      Flux left = hll_flux(eos_, prim_at(direction == 0 ? i0 - 1 : i0,
                                         direction == 0 ? j0 : j0 - 1),
                           prim_at(i0, j0));
      for (int k = 0; k < nzone; ++k) {
        auto [li, lj] = zone(k);
        auto [ri, rj] = zone(k + 1);
        // zone(k+1) may be a ghost when k is the last zone.
        const Prim wl = prim_at(li, lj);
        const Prim wr = (k + 1 < nzone)
                            ? prim_at(ri, rj)
                            : prim_at(direction == 0 ? li + 1 : li,
                                      direction == 0 ? lj : lj + 1);
        const Flux right = hll_flux(eos_, wl, wr);
        rho(li, lj) -= lambda * (right.rho - left.rho);
        if (direction == 0) {
          m1(li, lj) -= lambda * (right.mn - left.mn);
          m2(li, lj) -= lambda * (right.mt - left.mt);
        } else {
          m2(li, lj) -= lambda * (right.mn - left.mn);
          m1(li, lj) -= lambda * (right.mt - left.mt);
        }
        en(li, lj) -= lambda * (right.e - left.e);
        left = right;
      }
    }
  };
  auto finish = [this](ExecContext& rctx, int r) {
    const grid::TileExtent& e = dec_->extent(r);
    const auto elements = static_cast<std::uint64_t>(e.ni) * e.nj;
    // ~90 flops/zone (one HLL flux per face + update), ~14 doubles read,
    // 4 written.
    rctx.commit_synthetic(r, KernelFamily::Hydro, "hydro-sweep", elements, 90,
                          112, 32, elements * 144);
  };

  if (!overlap) {
    // Rank tiles are disjoint and ghosts were filled above, so the sweeps
    // of all simulated ranks run concurrently on the host pool.
    linalg::par_ranks(ctx, *dec_, [&](int r, ExecContext& rctx) {
      pencils(r, 0, direction == 0 ? dec_->extent(r).nj : dec_->extent(r).ni);
      finish(rctx, r);
    });
    return;
  }

  // Graph mode: per rank, ghost fill G_r overlaps the interior pencils of
  // other ranks.  The sweep updates the field *in place*, and G_q pulls
  // rank r's interface strips (W/E neighbours read r's edge columns, S/N
  // neighbours read r's edge rows), so an update task may not touch a
  // strip until every neighbour that reads it has copied:
  //
  //   G_r: halo copies + BC + reflecting fixup (reads only pristine
  //        neighbour interiors and own cells — no task dependencies)
  //   B_r: interior pencils 1..np-2, which write every column (x1 sweep)
  //        or every row (x2 sweep) of their pencils
  //        — after G_r (own ghosts) and the two sweep-normal-edge readers
  //          (W/E neighbours' G for the x1 sweep, S/N for the x2 sweep)
  //   D_r: boundary pencils 0 and np-1 + the rank's commit
  //        — after B_r (covers B's deps) and the remaining two readers
  //
  // so a rank's interior sweep starts as soon as its own ghosts land and
  // its strip readers are done, while other ranks are still packing.
  const auto& topo = f.decomp().topology();
  const int nranks = dec_->nranks();
  std::vector<task_graph::Session::Task*> ghost(
      static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    ghost[static_cast<std::size_t>(r)] =
        ses->create([this, fp, r] { fill_ghosts_rank(*fp, r); });
  auto ghost_of = [&](int r, mpisim::Dir dir) -> task_graph::Session::Task* {
    const auto nb = topo.neighbor(r, dir);
    return nb ? ghost[static_cast<std::size_t>(*nb)] : nullptr;
  };
  for (int r = 0; r < nranks; ++r) {
    const grid::TileExtent& e = dec_->extent(r);
    const int np = direction == 0 ? e.nj : e.ni;
    auto rctx = std::make_shared<ExecContext>(ctx.fork());
    task_graph::Session::Task* b = nullptr;
    if (np > 2) {
      b = ses->create([pencils, r, np] { pencils(r, 1, np - 1); });
      ses->add_dep(b, ghost[static_cast<std::size_t>(r)]);
      ses->add_dep(b, ghost_of(r, direction == 0 ? mpisim::Dir::West
                                                 : mpisim::Dir::South));
      ses->add_dep(b, ghost_of(r, direction == 0 ? mpisim::Dir::East
                                                 : mpisim::Dir::North));
    }
    auto* d = ses->create([pencils, finish, rctx, r, np] {
      pencils(r, 0, 1);
      if (np > 1) pencils(r, np - 1, np);
      finish(*rctx, r);
    });
    if (b != nullptr) {
      ses->add_dep(d, b);
    } else {
      ses->add_dep(d, ghost[static_cast<std::size_t>(r)]);
      ses->add_dep(d, ghost_of(r, direction == 0 ? mpisim::Dir::West
                                                 : mpisim::Dir::South));
      ses->add_dep(d, ghost_of(r, direction == 0 ? mpisim::Dir::East
                                                 : mpisim::Dir::North));
    }
    ses->add_dep(d, ghost_of(r, direction == 0 ? mpisim::Dir::South
                                               : mpisim::Dir::West));
    ses->add_dep(d, ghost_of(r, direction == 0 ? mpisim::Dir::North
                                               : mpisim::Dir::East));
    if (b != nullptr) ses->submit(b);
    ses->submit(d);
  }
  for (int r = 0; r < nranks; ++r)
    ses->submit(ghost[static_cast<std::size_t>(r)]);
  // The overlap is within one directional sweep: drain before returning
  // so the next sweep (and the caller) sees a fully updated field.
  ses->sync();
}

void HydroSolver::step(ExecContext& ctx, HydroState& state, double dt) {
  V2D_REQUIRE(dt > 0.0, "time step must be positive");
  // Keep the pool's workers resident across both directional sweeps under
  // --host-sched graph: each sweep's ghost fill and zone update run as
  // scheduler stages without re-waking the pool per kernel.  The sweeps
  // themselves stay ordered (x2 reads x1's output through the exchange
  // join), so this is a residency win, not a reordering.
  task_graph::GraphRegion graph(ctx.sched == linalg::HostSched::Graph);
  sweep(ctx, state, dt, 0);
  sweep(ctx, state, dt, 1);
}

}  // namespace v2d::hydro
