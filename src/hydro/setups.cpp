#include "hydro/setups.hpp"

#include <cmath>

namespace v2d::hydro {

namespace {
template <typename F>
void for_each_zone(HydroState& state, F&& f) {
  const grid::Grid2D& g = state.field().grid();
  const auto& dec = state.field().decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int lj = 0; lj < e.nj; ++lj)
      for (int li = 0; li < e.ni; ++li)
        f(e.i0 + li, e.j0 + lj, g.x1c(e.i0 + li), g.x2c(e.j0 + lj));
  }
}
}  // namespace

void setup_sod(HydroState& state, const GammaLawEos& eos,
               double x_diaphragm) {
  for_each_zone(state, [&](int gi, int gj, double x, double) {
    if (x < x_diaphragm) {
      state.set_primitive(eos, gi, gj, 1.0, 0.0, 0.0, 1.0);
    } else {
      state.set_primitive(eos, gi, gj, 0.125, 0.0, 0.0, 0.1);
    }
  });
}

void setup_sedov(HydroState& state, const GammaLawEos& eos, double e_blast,
                 double radius) {
  const grid::Grid2D& g = state.field().grid();
  const double xc = 0.5 * (g.x1f(0) + g.x1f(g.nx1()));
  const double yc = 0.5 * (g.x2f(0) + g.x2f(g.nx2()));
  // Count the deposit zones first so the blast energy is exact.
  int deposit_zones = 0;
  for_each_zone(state, [&](int, int, double x, double y) {
    if (std::hypot(x - xc, y - yc) <= radius) ++deposit_zones;
  });
  const double volume_per_zone = g.dx1() * g.dx2();
  for_each_zone(state, [&](int gi, int gj, double x, double y) {
    const bool hot = deposit_zones > 0 &&
                     std::hypot(x - xc, y - yc) <= radius;
    const double eint_density =
        hot ? e_blast / (deposit_zones * volume_per_zone) : 1.0e-5;
    const double p = (eos.gamma() - 1.0) * eint_density;
    state.set_primitive(eos, gi, gj, 1.0, 0.0, 0.0, std::max(p, 1.0e-12));
  });
}

void setup_uniform(HydroState& state, const GammaLawEos& eos, double rho,
                   double p) {
  for_each_zone(state, [&](int gi, int gj, double, double) {
    state.set_primitive(eos, gi, gj, rho, 0.0, 0.0, p);
  });
}

}  // namespace v2d::hydro
