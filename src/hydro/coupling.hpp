#pragma once
/// \file coupling.hpp
/// \brief Operator-split radiation–hydro coupling.
///
/// V2D is a radiation *hydrodynamics* code: each full step advances the
/// gas (hydro sweep), then the radiation (three implicit solves), then
/// exchanges energy between them.  This header provides the exchange leg:
/// the gas absorbs c·κ_a·(E_rad − aT⁴) per unit time and the radiation
/// loses it, applied explicitly after the radiation solves (the implicit
/// part of the exchange lives in the coupling solve of radstep.hpp).

#include "hydro/euler.hpp"
#include "linalg/dist_vector.hpp"
#include "rad/fld.hpp"

namespace v2d::hydro {

struct CouplingResult {
  double energy_to_gas = 0.0;  ///< net energy moved into the gas this step
};

/// Deposit radiation heating into the gas energy and remove it from the
/// radiation field, zone by zone.  Priced as Physics work.
CouplingResult apply_rad_heating(linalg::ExecContext& ctx, HydroState& gas,
                                 linalg::DistVector& e_rad,
                                 const rad::FldBuilder& rad_builder,
                                 const GammaLawEos& eos, double dt);

}  // namespace v2d::hydro
