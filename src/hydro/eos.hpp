#pragma once
/// \file eos.hpp
/// \brief Gamma-law equation of state.
///
/// V2D solves Eulerian hydrodynamics alongside the radiation transport;
/// the SVE study's test problem freezes the hydro, but the module is part
/// of the code under study, so it is implemented fully.  The EOS is the
/// ideal gamma-law closure p = (γ − 1)·ρ·ε used by the hydro tests.

#include <cmath>

#include "support/error.hpp"

namespace v2d::hydro {

class GammaLawEos {
public:
  explicit GammaLawEos(double gamma = 5.0 / 3.0) : gamma_(gamma) {
    V2D_REQUIRE(gamma > 1.0, "gamma must exceed 1");
  }

  double gamma() const { return gamma_; }

  /// Pressure from density and specific internal energy.
  double pressure(double rho, double eint) const {
    return (gamma_ - 1.0) * rho * eint;
  }

  /// Specific internal energy from density and pressure.
  double eint(double rho, double p) const {
    return p / ((gamma_ - 1.0) * rho);
  }

  /// Adiabatic sound speed.
  double sound_speed(double rho, double p) const {
    V2D_CHECK(rho > 0.0 && p >= 0.0, "unphysical state");
    return std::sqrt(gamma_ * p / rho);
  }

private:
  double gamma_;
};

}  // namespace v2d::hydro
