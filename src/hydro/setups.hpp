#pragma once
/// \file setups.hpp
/// \brief Canonical hydro test problem initializers.

#include "hydro/euler.hpp"

namespace v2d::hydro {

/// Sod shock tube along x1 (uniform in x2): left state (ρ=1, p=1), right
/// state (ρ=0.125, p=0.1), diaphragm at x1 = x_diaphragm.
void setup_sod(HydroState& state, const GammaLawEos& eos,
               double x_diaphragm = 0.5);

/// Sedov-like point blast: ambient (ρ=1, p=1e-5) with energy E_blast
/// deposited in the zones within `radius` of the domain center.
void setup_sedov(HydroState& state, const GammaLawEos& eos,
                 double e_blast = 1.0, double radius = 0.05);

/// Uniform quiescent state.
void setup_uniform(HydroState& state, const GammaLawEos& eos, double rho,
                   double p);

}  // namespace v2d::hydro
