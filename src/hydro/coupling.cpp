#include "hydro/coupling.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace v2d::hydro {

using compiler::KernelFamily;

CouplingResult apply_rad_heating(linalg::ExecContext& ctx, HydroState& gas,
                                 linalg::DistVector& e_rad,
                                 const rad::FldBuilder& rad_builder,
                                 const GammaLawEos& eos, double dt) {
  (void)eos;
  const auto& cfg = rad_builder.config();
  const auto& opac = rad_builder.opacities();
  const grid::Grid2D& g = gas.field().grid();
  const auto& dec = gas.field().decomp();
  CouplingResult result;

  auto& temp =
      const_cast<rad::FldBuilder&>(rad_builder).temperature();
  auto& rho = const_cast<rad::FldBuilder&>(rad_builder).density();
  const bool uniform = opac.uniform();
  // Per-rank energy partials merged in rank order below, so the result is
  // independent of the host-thread count.
  std::vector<double> to_gas(static_cast<std::size_t>(dec.nranks()), 0.0);
  linalg::par_ranks(ctx, dec, [&](int r, linalg::ExecContext& rctx) {
    const grid::TileExtent& e = dec.extent(r);
    grid::TileView en = gas.field().view(r, kEner);
    grid::TileView tv = temp.view(r, 0);
    grid::TileView rv = rho.view(r, 0);
    double partial = 0.0;
    for (int s = 0; s < e_rad.ns(); ++s) {
      grid::TileView ev = e_rad.field().view(r, s);
      const double ka_u = opac.absorption(s).evaluate(1.0, 1.0);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const double T = tv(li, lj);
          const double ka =
              uniform ? ka_u : opac.absorption(s).evaluate(T, rv(li, lj));
          const double emission =
              0.5 * cfg.radiation_constant * T * T * T * T;
          // Limit the transfer so neither side goes negative.
          double dq = dt * cfg.c_light * ka * (ev(li, lj) - emission);
          dq = std::min(dq, ev(li, lj));
          dq = std::max(dq, -std::max(0.0, en(li, lj)));
          ev(li, lj) -= dq;
          en(li, lj) += dq;
          partial += dq * g.volume(e.i0 + li, e.j0 + lj);
        }
      }
    }
    to_gas[static_cast<std::size_t>(r)] = partial;
    const auto elements =
        static_cast<std::uint64_t>(e.ni) * e.nj * e_rad.ns();
    rctx.commit_synthetic(r, KernelFamily::Physics, "rad-gas-exchange",
                          elements, 14, 32, 16, elements * 48);
  });
  for (const double v : to_gas) result.energy_to_gas += v;
  return result;
}

}  // namespace v2d::hydro
