#include "mpisim/netcost.hpp"

#include <cmath>

namespace v2d::mpisim {

double NetCost::pt2pt(int src, int dst, std::uint64_t bytes) const {
  const bool inter = !placement_.same_node(src, dst);
  double t = latency(inter) + static_cast<double>(bytes) / stack_.bandwidth_Bps;
  if (bytes > kEagerLimit) t += latency(inter);  // rendezvous handshake
  return t;
}

double NetCost::allreduce(std::uint64_t bytes) const {
  const int p = placement_.nranks();
  if (p <= 1) return 0.0;
  const int stages = static_cast<int>(std::ceil(std::log2(p)));
  const bool inter = placement_.nodes_used() > 1;
  const double per_stage = latency(inter) +
                           static_cast<double>(bytes) / stack_.bandwidth_Bps +
                           stack_.allreduce_stage_overhead_s;
  // Progress-engine / unexpected-message-queue cost: grows quadratically
  // with communicator size (normalized so the coefficient is the per-rank
  // cost at one full node).  This is what makes the Cray and GNU stacks
  // regress beyond ~25–40 ranks in Table I while Fujitsu keeps scaling.
  const double progress = stack_.per_rank_overhead_s *
                          static_cast<double>(p) * p /
                          placement_.cores_per_node();
  return stages * per_stage + progress;
}

}  // namespace v2d::mpisim
