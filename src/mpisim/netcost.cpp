#include "mpisim/netcost.hpp"

#include <cmath>

namespace v2d::mpisim {

double NetCost::pt2pt(int src, int dst, std::uint64_t bytes) const {
  const bool inter = !placement_.same_node(src, dst);
  double t = latency(inter) + static_cast<double>(bytes) / stack_.bandwidth_Bps;
  if (bytes > kEagerLimit) t += latency(inter);  // rendezvous handshake
  return t;
}

double NetCost::allreduce(std::uint64_t bytes) const {
  const int p = placement_.nranks();
  if (p <= 1) return 0.0;
  const int stages = static_cast<int>(std::ceil(std::log2(p)));
  // Under block placement rank r sits on node r / cores_per_node, so the
  // recursive-doubling partner at stage s is 2^s ranks away: the first
  // floor(log2(cores_per_node)) stages stay inside a node and pay
  // intra-node latency; only the later stages cross the fabric (charging
  // inter-node latency for every stage overpriced multi-node jobs).
  const int intra_stages =
      placement_.nodes_used() > 1
          ? std::min(stages,
                     static_cast<int>(std::floor(
                         std::log2(placement_.cores_per_node()))))
          : stages;
  const double per_stage = static_cast<double>(bytes) / stack_.bandwidth_Bps +
                           stack_.allreduce_stage_overhead_s;
  // Progress-engine / unexpected-message-queue cost: grows quadratically
  // with communicator size (normalized so the coefficient is the per-rank
  // cost at one full node).  This is what makes the Cray and GNU stacks
  // regress beyond ~25–40 ranks in Table I while Fujitsu keeps scaling.
  const double progress = stack_.per_rank_overhead_s *
                          static_cast<double>(p) * p /
                          placement_.cores_per_node();
  return stages * per_stage + intra_stages * latency(false) +
         (stages - intra_stages) * latency(true) + progress;
}

}  // namespace v2d::mpisim
