#pragma once
/// \file exec_model.hpp
/// \brief Multi-profile execution pricer — the heart of the simulation.
///
/// The V2D numerics run exactly once; every instrumented kernel call and
/// communication event is priced *simultaneously* under every registered
/// compiler profile (pricing is cheap; re-running physics is not).  Each
/// profile maintains its own per-rank clock and per-rank cost ledger, so
/// after a run you can ask "what did this execution cost under Cray with
/// SVE?" and "under GNU?" from the same trajectory.
///
/// Synchronization model: an allreduce synchronizes all rank clocks to
/// their max plus the collective cost; a halo exchange synchronizes each
/// rank with its touched neighbours (one round of neighbour-max), which is
/// exact for the balanced tilings V2D uses.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/profile.hpp"
#include "mpisim/netcost.hpp"
#include "mpisim/placement.hpp"
#include "mpisim/price_memo.hpp"
#include "sim/cost_model.hpp"
#include "sim/ledger.hpp"

namespace v2d::mpisim {

/// One point-to-point transfer inside an exchange phase.
struct Transfer {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  /// True when the payload is non-contiguous in memory (x1-direction halos
  /// are grid columns): both ends pay a pack/unpack penalty.  This is what
  /// makes V2D's compact tilings beat strip tilings at equal surface.
  bool strided = false;
};

class ExecModel {
public:
  ExecModel(sim::MachineSpec machine,
            std::vector<compiler::CodegenProfile> profiles, int nranks);

  int nranks() const { return placement_.nranks(); }
  std::size_t nprofiles() const { return profiles_.size(); }
  const compiler::CodegenProfile& profile(std::size_t p) const {
    return profiles_[p];
  }
  const sim::CostModel& cost_model() const { return cost_; }
  const Placement& placement() const { return placement_; }

  /// Price a kernel call executed by `rank`.  Thread-safe for distinct
  /// ranks: only `rank`'s clock and ledger slots are written (pricing
  /// itself is const), so rank-parallel host execution may call this
  /// concurrently from par_ranks tasks.
  void kernel(int rank, compiler::KernelFamily family,
              const std::string& region, const sim::KernelCounts& counts,
              std::uint64_t working_set_bytes);

  /// Price a halo-exchange phase (all transfers logically concurrent).
  /// A serial barrier point: must not run concurrently with kernel().
  void exchange(const std::vector<Transfer>& transfers,
                const std::string& region);

  /// Price a ganged allreduce of `bytes` payload; synchronizes all ranks.
  /// A serial barrier point: must not run concurrently with kernel().
  void allreduce(std::uint64_t bytes, const std::string& region);

  /// Simulated wall-clock of profile p = slowest rank's clock.
  double elapsed(std::size_t p) const;
  double rank_time(std::size_t p, int rank) const;

  const sim::CostLedger& ledger(std::size_t p, int rank) const;
  /// All ranks' ledgers merged (totals across the job).
  sim::CostLedger merged_ledger(std::size_t p) const;

  /// Reset clocks and ledgers (keep machine/profiles/placement).
  void reset();

  /// Overwrite one rank's clock and ledger under profile p — checkpoint
  /// restart uses this to resume the simulated machine bit-exactly where
  /// a previous run persisted it.
  void restore_rank(std::size_t p, int rank, double clock,
                    sim::CostLedger ledger);

  /// Route kernel pricing through a shared same-shape memo (the farm hands
  /// every session's ExecModel one memo so identical (counts, profile,
  /// working-set, sharers) shapes across sessions are priced once per
  /// process).  Null (the default) prices directly.  The memo's results are
  /// bit-identical to direct pricing, so clocks and ledgers are unaffected
  /// — see price_memo.hpp for the sharing preconditions (same MachineSpec,
  /// catalog profiles).
  void set_price_memo(std::shared_ptr<PriceMemo> memo) {
    price_memo_ = std::move(memo);
  }
  const std::shared_ptr<PriceMemo>& price_memo() const { return price_memo_; }

private:
  struct PerProfile {
    NetCost net;
    std::vector<double> clock;            // seconds, one per rank
    std::vector<sim::CostLedger> ledger;  // one per rank
  };

  sim::CostModel cost_;
  std::vector<compiler::CodegenProfile> profiles_;
  Placement placement_;
  std::vector<PerProfile> state_;
  std::shared_ptr<PriceMemo> price_memo_;
};

}  // namespace v2d::mpisim
