#include "mpisim/exec_model.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"

namespace v2d::mpisim {

namespace {
/// Halo pack/unpack bandwidth: contiguous rows stream near memcpy speed;
/// column (strided) halos gather one element per cache line and run an
/// order of magnitude slower.  Charged to both endpoints of a transfer.
constexpr double kPackBwContig = 6.0e9;   // bytes/s
constexpr double kPackBwStrided = 1.5e9;  // bytes/s

double pack_seconds(const Transfer& t) {
  return static_cast<double>(t.bytes) /
         (t.strided ? kPackBwStrided : kPackBwContig);
}
}  // namespace

ExecModel::ExecModel(sim::MachineSpec machine,
                     std::vector<compiler::CodegenProfile> profiles,
                     int nranks)
    : cost_(std::move(machine)),
      profiles_(std::move(profiles)),
      placement_(nranks, static_cast<int>(cost_.machine().cores_per_cmg),
                 static_cast<int>(cost_.machine().cmgs_per_node)) {
  V2D_REQUIRE(!profiles_.empty(), "need at least one compiler profile");
  state_.reserve(profiles_.size());
  for (const auto& p : profiles_) {
    state_.push_back(PerProfile{
        NetCost(p.mpi(), placement_),
        std::vector<double>(static_cast<std::size_t>(nranks), 0.0),
        std::vector<sim::CostLedger>(static_cast<std::size_t>(nranks)),
    });
  }
}

void ExecModel::kernel(int rank, compiler::KernelFamily family,
                       const std::string& region,
                       const sim::KernelCounts& counts,
                       std::uint64_t working_set_bytes) {
  const auto sharers =
      static_cast<std::uint32_t>(placement_.ranks_on_cmg(rank));
  for (std::size_t p = 0; p < profiles_.size(); ++p) {
    const auto& prof = profiles_[p];
    const sim::CostBreakdown cost =
        price_memo_
            ? price_memo_->price(cost_, prof, family, counts,
                                 working_set_bytes, sharers)
            : cost_.price(counts, prof.mode(), prof.factors(family),
                          working_set_bytes, sharers);
    auto& st = state_[p];
    st.clock[static_cast<std::size_t>(rank)] +=
        cost_.seconds(cost.total_cycles());
    st.ledger[static_cast<std::size_t>(rank)].add_kernel(region, counts, cost);
  }
}

void ExecModel::exchange(const std::vector<Transfer>& transfers,
                         const std::string& region) {
  for (auto& st : state_) {
    // Phase start per rank: one round of neighbour-max over the transfer
    // graph (nonblocking sends/recvs cannot complete before both ends
    // have entered the exchange).
    const std::vector<double> snapshot = st.clock;
    std::vector<double> start = snapshot;
    std::vector<double> busy(snapshot.size(), 0.0);
    std::vector<std::uint64_t> msgs(snapshot.size(), 0);
    std::vector<std::uint64_t> bytes(snapshot.size(), 0);
    for (const Transfer& t : transfers) {
      V2D_REQUIRE(t.src != t.dst, "self-transfer in exchange");
      start[static_cast<std::size_t>(t.src)] =
          std::max(start[static_cast<std::size_t>(t.src)],
                   snapshot[static_cast<std::size_t>(t.dst)]);
      start[static_cast<std::size_t>(t.dst)] =
          std::max(start[static_cast<std::size_t>(t.dst)],
                   snapshot[static_cast<std::size_t>(t.src)]);
      const double wire = st.net.pt2pt(t.src, t.dst, t.bytes);
      const double pack = pack_seconds(t);
      // Nonblocking exchange: a rank's sends and receives overlap; the
      // receiver pays the wire time plus unpack, the sender pays pack and
      // half the wire (injection).
      busy[static_cast<std::size_t>(t.dst)] =
          std::max(busy[static_cast<std::size_t>(t.dst)], wire + pack);
      busy[static_cast<std::size_t>(t.src)] += 0.5 * wire + pack;
      // Both endpoints participate in the message: the sender's ledger
      // counts the bytes it injected, the receiver's the bytes that landed
      // in its halo.  (Counting only the sender undercounted every rank's
      // received volume.)
      msgs[static_cast<std::size_t>(t.src)] += 1;
      bytes[static_cast<std::size_t>(t.src)] += t.bytes;
      msgs[static_cast<std::size_t>(t.dst)] += 1;
      bytes[static_cast<std::size_t>(t.dst)] += t.bytes;
    }
    for (std::size_t r = 0; r < st.clock.size(); ++r) {
      const double wait = start[r] - snapshot[r];
      const double total = wait + busy[r];
      if (total > 0.0 || msgs[r] > 0) {
        st.clock[r] = start[r] + busy[r];
        st.ledger[r].add_comm(region, total, msgs[r], bytes[r]);
      }
    }
  }
}

void ExecModel::allreduce(std::uint64_t bytes, const std::string& region) {
  // A 1-rank "allreduce" is a no-op (NetCost prices it at zero): recording
  // a ledger entry carrying the payload bytes would put phantom
  // communication volume into single-rank breakdowns.
  if (placement_.nranks() <= 1) return;
  for (auto& st : state_) {
    const double t_max = *std::max_element(st.clock.begin(), st.clock.end());
    const double done = t_max + st.net.allreduce(bytes);
    for (std::size_t r = 0; r < st.clock.size(); ++r) {
      const double delta = done - st.clock[r];
      st.ledger[r].add_comm(region, delta, 1u, bytes);
      st.clock[r] = done;
    }
  }
}

double ExecModel::elapsed(std::size_t p) const {
  const auto& clock = state_.at(p).clock;
  return *std::max_element(clock.begin(), clock.end());
}

double ExecModel::rank_time(std::size_t p, int rank) const {
  return state_.at(p).clock.at(static_cast<std::size_t>(rank));
}

const sim::CostLedger& ExecModel::ledger(std::size_t p, int rank) const {
  return state_.at(p).ledger.at(static_cast<std::size_t>(rank));
}

sim::CostLedger ExecModel::merged_ledger(std::size_t p) const {
  sim::CostLedger out;
  for (const auto& l : state_.at(p).ledger) out.merge(l);
  return out;
}

void ExecModel::restore_rank(std::size_t p, int rank, double clock,
                             sim::CostLedger ledger) {
  auto& st = state_.at(p);
  st.clock.at(static_cast<std::size_t>(rank)) = clock;
  st.ledger.at(static_cast<std::size_t>(rank)) = std::move(ledger);
}

void ExecModel::reset() {
  for (auto& st : state_) {
    std::fill(st.clock.begin(), st.clock.end(), 0.0);
    for (auto& l : st.ledger) l.clear();
  }
}

}  // namespace v2d::mpisim
