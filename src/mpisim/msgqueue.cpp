#include "mpisim/msgqueue.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace v2d::mpisim {

MsgQueueSim::MsgQueueSim(NetCost net, int nranks)
    : net_(std::move(net)), clock_(static_cast<std::size_t>(nranks), 0.0) {
  V2D_REQUIRE(nranks >= 1, "need at least one rank");
}

void MsgQueueSim::compute(int rank, double seconds) {
  V2D_REQUIRE(seconds >= 0.0, "compute time cannot be negative");
  clock_.at(static_cast<std::size_t>(rank)) += seconds;
}

int MsgQueueSim::isend(int src, int dst, int tag, std::uint64_t bytes) {
  V2D_REQUIRE(src != dst, "self-messages are not modeled");
  const int id = static_cast<int>(reqs_.size());
  reqs_.push_back(Req{src, dst, tag, /*is_send=*/true, bytes,
                      clock_.at(static_cast<std::size_t>(src)), false, -1,
                      false});
  ++pending_;
  try_match(id);
  return id;
}

int MsgQueueSim::irecv(int dst, int src, int tag) {
  V2D_REQUIRE(src != dst, "self-messages are not modeled");
  const int id = static_cast<int>(reqs_.size());
  reqs_.push_back(Req{dst, src, tag, /*is_send=*/false, 0,
                      clock_.at(static_cast<std::size_t>(dst)), false, -1,
                      false});
  ++pending_;
  try_match(id);
  return id;
}

void MsgQueueSim::try_match(int id) {
  Req& r = reqs_[static_cast<std::size_t>(id)];
  const Key key = r.is_send ? Key{r.owner, r.peer, r.tag}
                            : Key{r.peer, r.owner, r.tag};
  auto& own_queue = r.is_send ? unmatched_sends_[key] : unmatched_recvs_[key];
  auto& other_queue = r.is_send ? unmatched_recvs_[key] : unmatched_sends_[key];
  if (!other_queue.empty()) {
    const int other = other_queue.front();
    other_queue.pop_front();
    Req& o = reqs_[static_cast<std::size_t>(other)];
    r.matched = o.matched = true;
    r.match = other;
    o.match = id;
    if (!r.is_send) r.bytes = o.bytes;
    if (r.is_send) o.bytes = r.bytes;
  } else {
    own_queue.push_back(id);
  }
}

double MsgQueueSim::completion_time(const Req& r) const {
  V2D_REQUIRE(r.matched, "wait on an unmatched request (deadlock)");
  const Req& o = reqs_[static_cast<std::size_t>(r.match)];
  const Req& send = r.is_send ? r : o;
  const Req& recv = r.is_send ? o : r;
  const double wire = net_.pt2pt(send.owner, recv.owner, send.bytes);
  const bool eager = send.bytes <= NetCost::kEagerLimit;
  if (eager) {
    // Eager: the payload leaves as soon as the send is posted; the sender
    // only pays injection (half the wire time); the receiver completes
    // when the data has both arrived and been claimed.
    const double arrival = send.post_time + wire;
    if (r.is_send) return send.post_time + 0.5 * wire;
    return std::max(recv.post_time, arrival);
  }
  // Rendezvous: transfer starts once both sides are ready; both complete
  // together.  `wire` already includes the handshake latency.
  const double start = std::max(send.post_time, recv.post_time);
  return start + wire;
}

double MsgQueueSim::wait(int request) {
  Req& r = reqs_.at(static_cast<std::size_t>(request));
  if (r.complete) return clock_.at(static_cast<std::size_t>(r.owner));
  const double done = completion_time(r);
  r.complete = true;
  --pending_;
  auto& clk = clock_.at(static_cast<std::size_t>(r.owner));
  clk = std::max(clk, done);
  return clk;
}

void MsgQueueSim::wait_all() {
  for (int id = 0; id < static_cast<int>(reqs_.size()); ++id) {
    if (!reqs_[static_cast<std::size_t>(id)].complete) wait(id);
  }
}

double MsgQueueSim::clock(int rank) const {
  return clock_.at(static_cast<std::size_t>(rank));
}

}  // namespace v2d::mpisim
