#pragma once
/// \file topology.hpp
/// \brief Cartesian 2-D process topology (V2D's NPRX1 × NPRX2 decomposition).
///
/// Ranks are laid out in dictionary order, x1 fastest — the same ordering
/// V2D uses for its tiles, so rank r owns tile (r % nprx1, r / nprx1).

#include <cstdint>
#include <optional>

#include "support/error.hpp"

namespace v2d::mpisim {

/// Neighbour directions on the 2-D grid.
enum class Dir : std::uint8_t { West = 0, East, South, North };

inline constexpr int kNumDirs = 4;

inline Dir opposite(Dir d) {
  switch (d) {
    case Dir::West: return Dir::East;
    case Dir::East: return Dir::West;
    case Dir::South: return Dir::North;
    case Dir::North: return Dir::South;
  }
  V2D_FAIL("bad direction");
}

class CartTopology {
public:
  CartTopology(int nprx1, int nprx2) : nprx1_(nprx1), nprx2_(nprx2) {
    V2D_REQUIRE(nprx1 >= 1 && nprx2 >= 1, "topology extents must be >= 1");
  }

  int nprx1() const { return nprx1_; }
  int nprx2() const { return nprx2_; }
  int size() const { return nprx1_ * nprx2_; }

  int rank_of(int px1, int px2) const {
    V2D_REQUIRE(px1 >= 0 && px1 < nprx1_ && px2 >= 0 && px2 < nprx2_,
                "tile coordinates out of range");
    return px1 + nprx1_ * px2;
  }

  int px1_of(int rank) const { return check_rank(rank) % nprx1_; }
  int px2_of(int rank) const { return check_rank(rank) / nprx1_; }

  /// Neighbour rank in direction d, or nullopt at the domain boundary
  /// (V2D's radiation test problem uses non-periodic boundaries).
  std::optional<int> neighbor(int rank, Dir d) const {
    int i = px1_of(rank), j = px2_of(rank);
    switch (d) {
      case Dir::West: i -= 1; break;
      case Dir::East: i += 1; break;
      case Dir::South: j -= 1; break;
      case Dir::North: j += 1; break;
    }
    if (i < 0 || i >= nprx1_ || j < 0 || j >= nprx2_) return std::nullopt;
    return rank_of(i, j);
  }

  /// Number of off-boundary neighbours (2, 3 or 4).
  int degree(int rank) const {
    int n = 0;
    for (int d = 0; d < kNumDirs; ++d)
      if (neighbor(rank, static_cast<Dir>(d))) ++n;
    return n;
  }

private:
  int check_rank(int rank) const {
    V2D_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
    return rank;
  }
  int nprx1_;
  int nprx2_;
};

}  // namespace v2d::mpisim
