#pragma once
/// \file msgqueue.hpp
/// \brief Event-level simulator of nonblocking point-to-point messaging.
///
/// Where ExecModel uses closed-form phase costs, MsgQueueSim plays out
/// individual isend/irecv/wait sequences with eager vs rendezvous protocol
/// semantics and per-rank clocks.  It exists to validate the analytic
/// exchange model (tests cross-check the two on halo patterns) and to let
/// examples demonstrate protocol effects (eager limit crossover).
///
/// Usage is deterministic and sequential: post the sends/recvs of all
/// involved ranks, then wait on the requests.  Waiting on a receive whose
/// matching send was never posted is an error (a real deadlock).

#include <cstdint>
#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "mpisim/netcost.hpp"

namespace v2d::mpisim {

class MsgQueueSim {
public:
  MsgQueueSim(NetCost net, int nranks);

  /// Advance a rank's local clock by `seconds` of compute.
  void compute(int rank, double seconds);

  /// Nonblocking send/recv; returns a request handle.
  int isend(int src, int dst, int tag, std::uint64_t bytes);
  int irecv(int dst, int src, int tag);

  /// Complete a request; advances the owning rank's clock to the
  /// completion time and returns it.
  double wait(int request);

  /// Complete every outstanding request (order-independent result).
  void wait_all();

  double clock(int rank) const;
  int pending() const { return pending_; }

private:
  struct Req {
    int owner = 0;       // rank whose clock this request belongs to
    int peer = 0;
    int tag = 0;
    bool is_send = false;
    std::uint64_t bytes = 0;
    double post_time = 0.0;
    bool matched = false;
    int match = -1;      // request id of the counterpart
    bool complete = false;
  };

  using Key = std::tuple<int, int, int>;  // src, dst, tag

  void try_match(int id);
  double completion_time(const Req& r) const;

  NetCost net_;
  std::vector<double> clock_;
  std::vector<Req> reqs_;
  std::map<Key, std::deque<int>> unmatched_sends_;
  std::map<Key, std::deque<int>> unmatched_recvs_;
  int pending_ = 0;
};

}  // namespace v2d::mpisim
