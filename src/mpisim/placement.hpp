#pragma once
/// \file placement.hpp
/// \brief Mapping of simulated ranks onto A64FX cores / CMGs / nodes.
///
/// Ookami schedules MPI ranks block-wise onto cores: rank r lands on core
/// r % 48 of node r / 48, and core c belongs to CMG c / 12.  The placement
/// determines (a) how many ranks share a CMG's L2 and HBM bandwidth and
/// (b) whether a message crosses the HDR100 fabric.

#include <algorithm>
#include <cstdint>

#include "support/error.hpp"

namespace v2d::mpisim {

class Placement {
public:
  Placement(int nranks, int cores_per_cmg = 12, int cmgs_per_node = 4)
      : nranks_(nranks),
        cores_per_cmg_(cores_per_cmg),
        cmgs_per_node_(cmgs_per_node) {
    V2D_REQUIRE(nranks >= 1, "need at least one rank");
    V2D_REQUIRE(cores_per_cmg >= 1 && cmgs_per_node >= 1, "bad node shape");
  }

  int nranks() const { return nranks_; }
  int cores_per_node() const { return cores_per_cmg_ * cmgs_per_node_; }

  int node_of(int rank) const { return check(rank) / cores_per_node(); }

  /// Within a node, ranks are scattered cyclically across the four CMGs
  /// (Ookami's recommended binding for memory-bound codes, which the
  /// study's near-linear small-P scaling implies): local rank l sits on
  /// CMG l % 4 of its node.
  int cmg_of(int rank) const {
    const int local = check(rank) % cores_per_node();
    return node_of(rank) * cmgs_per_node_ + local % cmgs_per_node_;
  }

  /// Ranks co-resident on `rank`'s CMG (including itself) — the number of
  /// cores contending for that CMG's L2 capacity and HBM bandwidth.
  int ranks_on_cmg(int rank) const {
    const int node = node_of(rank);
    const int node_first = node * cores_per_node();
    const int node_ranks =
        std::min(nranks_ - node_first, cores_per_node());
    const int my_cmg_local = (rank - node_first) % cmgs_per_node_;
    // Cyclic scatter: CMG c of this node holds ceil/floor share.
    const int base = node_ranks / cmgs_per_node_;
    const int extra = node_ranks % cmgs_per_node_;
    return base + (my_cmg_local < extra ? 1 : 0);
  }

  int nodes_used() const { return (nranks_ - 1) / cores_per_node() + 1; }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

private:
  int check(int rank) const {
    V2D_REQUIRE(rank >= 0 && rank < nranks_, "rank out of range");
    return rank;
  }
  int nranks_;
  int cores_per_cmg_;
  int cmgs_per_node_;
};

}  // namespace v2d::mpisim
