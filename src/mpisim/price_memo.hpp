#pragma once
/// \file price_memo.hpp
/// \brief Same-shape price cache shared across execution sessions.
///
/// Pricing a recorded kernel stream is a pure function of (recording,
/// profile, working set, CMG sharing) on a fixed machine, and a farm of
/// sessions running the same problems keeps presenting the *same* shapes:
/// every session's MATVEC over an n-zone tile at one VL records identical
/// KernelCounts and therefore prices to identical CostBreakdowns.  The
/// memo computes each distinct shape once and lets every session of the
/// farm reuse the result, so a wave of same-shape kernel calls from N
/// sessions pays one pricing pass instead of N.
///
/// Correctness: the key stores the *full* pricing inputs (the entire
/// KernelCounts plus family, working set, sharer count and the profile's
/// name) and compares them exactly on probe — never just a digest — so a
/// memo hit returns bit-identical cycles to an uncached price() call and
/// farm sessions stay bit-identical to solo runs.  Profiles are compared
/// by name, which is sound for the canonical find_profile() catalog (the
/// farm resolves profiles from RunConfig names); callers that mutate
/// profile factors by hand must not share a memo.  One memo must only be
/// shared between ExecModels built on the same MachineSpec — the farm
/// guarantees this by pricing every session on one machine.
///
/// Thread-safe: sessions of one wave price concurrently; the map is
/// read-mostly behind a shared_mutex and entries never relocate.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "compiler/profile.hpp"
#include "sim/cost_model.hpp"
#include "sim/isa.hpp"

namespace v2d::mpisim {

class PriceMemo {
public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// The price of `counts` under (`profile`, `family`, working set,
  /// sharers) on `cost`'s machine: probes the memo and computes-and-caches
  /// on a miss.  Bit-identical to cost.price(...) by construction.
  sim::CostBreakdown price(const sim::CostModel& cost,
                           const compiler::CodegenProfile& profile,
                           compiler::KernelFamily family,
                           const sim::KernelCounts& counts,
                           std::uint64_t working_set_bytes,
                           std::uint32_t sharers) {
    const Key key{counts, profile.name(), static_cast<std::uint32_t>(family),
                  working_set_bytes, sharers};
    {
      std::shared_lock<std::shared_mutex> lk(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    const sim::CostBreakdown made =
        cost.price(counts, profile.mode(), profile.factors(family),
                   working_set_bytes, sharers);
    std::unique_lock<std::shared_mutex> lk(mu_);
    misses_.fetch_add(1, std::memory_order_relaxed);
    map_.emplace(key, made);
    return made;
  }

  Stats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

  /// Distinct shapes priced so far.
  std::size_t size() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return map_.size();
  }

private:
  struct Key {
    sim::KernelCounts counts;
    std::string profile;
    std::uint32_t family = 0;
    std::uint64_t working_set = 0;
    std::uint32_t sharers = 1;

    bool operator==(const Key&) const = default;
  };

  static std::size_t hash(const Key& k) {
    // FNV-1a over the numeric fields plus the profile-name hash.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
      mix(k.counts.instr[i]);
      mix(k.counts.lanes[i]);
    }
    mix(k.counts.bytes_read);
    mix(k.counts.bytes_written);
    mix(k.counts.elements);
    mix(k.counts.calls);
    mix(k.family);
    mix(k.working_set);
    mix(k.sharers);
    mix(std::hash<std::string>{}(k.profile));
    return static_cast<std::size_t>(h);
  }

  struct KeyHash {
    std::size_t operator()(const Key& k) const { return hash(k); }
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<Key, sim::CostBreakdown, KeyHash> map_;
  mutable std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace v2d::mpisim
