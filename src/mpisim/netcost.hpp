#pragma once
/// \file netcost.hpp
/// \brief Analytic communication cost model for one MPI stack.
///
/// Hockney-style pt2pt (α + n/β with eager/rendezvous split) and a
/// recursive-doubling allreduce with a per-stage software overhead plus a
/// communicator-size-dependent progress cost.  Constants come from the
/// compiler profile's MpiStackModel (each compiler on Ookami was paired
/// with a particular MPI implementation).

#include <cstdint>

#include "compiler/profile.hpp"
#include "mpisim/placement.hpp"

namespace v2d::mpisim {

class NetCost {
public:
  NetCost(compiler::MpiStackModel stack, const Placement& placement)
      : stack_(std::move(stack)), placement_(placement) {}

  const compiler::MpiStackModel& stack() const { return stack_; }

  /// Rendezvous protocol threshold (bytes) — above it an extra handshake
  /// round-trip is charged, as in MPICH/OpenMPI defaults.
  static constexpr std::uint64_t kEagerLimit = 16 * 1024;

  /// Point-to-point message time between two ranks.
  double pt2pt(int src, int dst, std::uint64_t bytes) const;

  /// Allreduce across all placed ranks of `count` doubles (V2D gangs its
  /// inner products, so count is often 2 or 4).
  double allreduce(std::uint64_t bytes) const;

  /// Barrier: allreduce of zero payload.
  double barrier() const { return allreduce(0); }

private:
  double latency(bool inter_node) const {
    return inter_node ? stack_.latency_inter_node_s
                      : stack_.latency_intra_node_s;
  }

  compiler::MpiStackModel stack_;
  Placement placement_;
};

}  // namespace v2d::mpisim
