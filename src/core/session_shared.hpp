#pragma once
/// \file session_shared.hpp
/// \brief The read-mostly runtime a farm shares across Simulation sessions.
///
/// A solo run builds its whole runtime from scratch: a fresh vla::Context
/// (empty analytic-count memo), direct pricing, private solver scratch.
/// A farm serving many jobs from one process wants the warm parts of that
/// runtime to persist and be shared:
///
///   * one vla::Context memo cache per vector length, so the closed-form
///     KernelCounts for a (kernel, n, VL) shape are derived once per
///     process, not once per session — `context_for` hands each new
///     session a fork of the matching per-VL prototype;
///   * one PriceMemo, so identical recorded shapes price once per process
///     across all sessions (see mpisim/price_memo.hpp);
///   * one WorkspacePool, so same-shape jobs reuse solver scratch instead
///     of re-allocating it per session.
///
/// Everything here is either a cache of pure functions of its key or
/// scrubbed-on-lease scratch, so sharing is invisible to any session's
/// trajectory, recorded counts, ledgers and simulated clocks — the farm
/// determinism suite pins that.  All members are safe to use from
/// concurrently-running sessions.
///
/// VL prototypes are deliberately keyed by vector_bits: the count-memo key
/// is (shape, n) and the cached counts depend on the VL they were derived
/// at, so contexts of different VLs must never share one cache.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "linalg/workspace.hpp"
#include "mpisim/price_memo.hpp"
#include "vla/vla.hpp"

namespace v2d::core {

class SessionShared {
public:
  SessionShared() : price_memo_(std::make_shared<mpisim::PriceMemo>()) {}

  SessionShared(const SessionShared&) = delete;
  SessionShared& operator=(const SessionShared&) = delete;

  /// A vla::Context for `bits`-bit vectors in `mode`, forked from the
  /// shared per-VL prototype (created on demand) so every session at one
  /// VL shares one analytic-count memo cache.
  vla::Context context_for(unsigned bits, vla::VlaExecMode mode) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = protos_.find(bits);
    if (it == protos_.end())
      it = protos_.emplace(bits, vla::Context(vla::VectorArch(bits))).first;
    vla::Context ctx = it->second.fork();
    ctx.set_exec_mode(mode);
    return ctx;
  }

  const std::shared_ptr<mpisim::PriceMemo>& price_memo() const {
    return price_memo_;
  }
  linalg::WorkspacePool& workspace_pool() { return pool_; }

  /// Count-memo totals summed over every shared prototype family (each
  /// prototype's counters cover all sessions forked from it).
  std::pair<std::uint64_t, std::uint64_t> memo_totals() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t hits = 0, misses = 0;
    for (const auto& [bits, proto] : protos_) {
      hits += proto.memo_hits();
      misses += proto.memo_misses();
    }
    return {hits, misses};
  }

private:
  mutable std::mutex mu_;
  std::unordered_map<unsigned, vla::Context> protos_;
  std::shared_ptr<mpisim::PriceMemo> price_memo_;
  linalg::WorkspacePool pool_;
};

}  // namespace v2d::core
