#pragma once
/// \file config.hpp
/// \brief Run-time configuration of a V2D simulation (the paper's knobs).

#include <string>
#include <vector>

#include "rad/limiter.hpp"
#include "support/options.hpp"

namespace v2d::core {

struct RunConfig {
  // --- problem ---
  std::string problem = "gaussian-pulse";
  int nx1 = 200;  ///< paper's x1
  int nx2 = 100;  ///< paper's x2
  int ns = 2;     ///< radiation species
  int steps = 100;
  double dt = 0.03;
  double kappa_total = 10.0;   ///< transport opacity (uniform)
  double kappa_absorb = 0.0;   ///< absorption opacity (0 = pure diffusion)
  double exchange_kappa = 0.05;  ///< species exchange in the coupling solve
  rad::LimiterKind limiter = rad::LimiterKind::LevermorePomraning;

  // --- decomposition (the paper's NPRX1 / NPRX2) ---
  int nprx1 = 1;
  int nprx2 = 1;

  // --- solver ---
  double rel_tol = 1.0e-8;
  int max_iterations = 1000;
  bool ganged = true;
  std::string preconditioner = "spai0";

  // --- simulated platform ---
  std::vector<std::string> compilers = {"cray"};  ///< profile short names
  unsigned vector_bits = 512;

  // --- output ---
  std::string checkpoint_path;  ///< empty = no checkpoint
  int checkpoint_every = 0;     ///< steps between checkpoints (0 = end only)

  int nranks() const { return nprx1 * nprx2; }

  /// Register every knob on an Options parser (shared by benches/examples).
  static void register_options(Options& opt);
  /// Build from parsed options.
  static RunConfig from_options(const Options& opt);
};

}  // namespace v2d::core
