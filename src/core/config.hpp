#pragma once
/// \file config.hpp
/// \brief Run-time configuration of a V2D simulation (the paper's knobs).

#include <string>
#include <vector>

#include "linalg/mg/options.hpp"
#include "rad/limiter.hpp"
#include "support/options.hpp"

namespace v2d::core {

struct RunConfig {
  // --- problem (a ScenarioRegistry name; see src/scenario/) ---
  std::string problem = "gaussian-pulse";
  int nx1 = 200;  ///< paper's x1
  int nx2 = 100;  ///< paper's x2
  int ns = 2;     ///< radiation species
  int steps = 100;
  double dt = 0.03;
  double kappa_total = 10.0;   ///< transport opacity (uniform)
  double kappa_absorb = 0.0;   ///< absorption opacity (0 = pure diffusion)
  double exchange_kappa = 0.05;  ///< species exchange in the coupling solve
  rad::LimiterKind limiter = rad::LimiterKind::LevermorePomraning;

  // --- decomposition (the paper's NPRX1 / NPRX2) ---
  int nprx1 = 1;
  int nprx2 = 1;

  // --- solver ---
  double rel_tol = 1.0e-8;
  int max_iterations = 1000;
  bool ganged = true;
  std::string preconditioner = "spai0";
  /// Deterministic solver fallback chain: when a solve breaks down or hits
  /// max iterations, re-attempt from the same initial guess with each of
  /// these preconditioners in order (recorded in the recovery ledger).
  /// Empty (default) = fail as before.  Pinned in checkpoints: the chain
  /// shapes the priced trajectory when it engages.
  std::vector<std::string> solver_fallbacks;

  // --- multigrid preconditioner (used when preconditioner == "mg") ---
  int mg_coarse_size = 8;
  int mg_levels = 12;
  int mg_nu_pre = 2;
  int mg_nu_post = 2;
  std::string mg_smoother = "jacobi";
  double mg_omega = 0.8;
  double mg_cheb_boost = 4.0;
  long mg_max_direct_zones = 16384;

  // --- simulated platform ---
  std::vector<std::string> compilers = {"cray"};  ///< profile short names
  unsigned vector_bits = 512;
  /// Host threads for rank-parallel execution (0 = hardware concurrency).
  /// Purely a host wall-clock knob: results, recordings and simulated
  /// clocks are bit-identical at any value.  Applied to the process-wide
  /// pool when a Simulation is constructed.
  int host_threads = 0;
  /// VLA execution backend: "native" (raw-pointer fast path + analytic
  /// recording) or "interpret" (op-by-op reference).  Results and recorded
  /// counts are identical; native is the default because it is the one you
  /// want for anything larger than a unit test.
  std::string vla_exec = "native";
  /// Fused-kernel execution: "off" (default) keeps the kernel-per-pass
  /// Table II sequence bit-identically — results, counts, ledgers and
  /// clocks.  "on" routes solver hot loops through hand-written one-pass
  /// composites (MATVEC+DPROD, DAXPY₂, precond+ganged-dot, fused
  /// residual).  "plan" routes them through planner-generated fused
  /// groups instead (src/linalg/fusion/) and records each solver
  /// configuration's first-iteration kernel DAG; "on" is kept as the
  /// differential oracle for "plan".  All three modes produce identical
  /// numerics; on/plan move fewer bytes, so host time and simulated
  /// cycles drop.
  std::string fuse = "off";
  /// Host execution scheduler for rank-parallel regions: "barrier"
  /// (default) forks and joins the pool at every kernel; "graph" runs
  /// solver regions as a dependency-scheduled task graph on resident
  /// workers — per-rank kernel chains, halo packing overlapped with
  /// interior compute (see src/support/task_graph.hpp).  Purely a host
  /// wall-clock knob: results, recordings, ledgers and simulated clocks
  /// are bit-identical in both modes.  Pinned in checkpoints like --fuse
  /// so a restarted run records the configuration it was priced under.
  std::string host_sched = "barrier";
  /// Print the built-in fusion plans and every captured kernel DAG after
  /// the run.  Host-only debug output — prices nothing, so not pinned in
  /// checkpoints.
  bool dump_fusion_plan = false;

  // --- numeric guards (host-only; see src/resilience/guards.hpp) ---
  /// Validate every step's results: finite scan of the radiation field
  /// plus a finiteness check on the conserved total.  Unpriced — enabling
  /// it moves no simulated cycles — so it is not pinned in checkpoints.
  bool guard = false;
  /// Conservation-drift tolerance per step (relative); 0 disables the
  /// drift sentinel (finite checks still run when guard is on).
  double guard_drift = 0.0;

  // --- output ---
  std::string checkpoint_path;  ///< empty = no checkpoint
  int checkpoint_every = 0;     ///< steps between checkpoints (0 = end only)
  std::string restart_path;     ///< resume from this checkpoint (empty = fresh)

  int nranks() const { return nprx1 * nprx2; }

  /// The multigrid knobs bundled for make_preconditioner / RadiationStepper.
  linalg::mg::MgOptions mg_options() const {
    linalg::mg::MgOptions o;
    o.coarse_size = mg_coarse_size;
    o.max_levels = mg_levels;
    o.nu_pre = mg_nu_pre;
    o.nu_post = mg_nu_post;
    o.smoother = mg_smoother;
    o.jacobi_omega = mg_omega;
    o.cheb_boost = mg_cheb_boost;
    o.max_direct_zones = mg_max_direct_zones;
    return o;
  }

  /// Register every knob on an Options parser (shared by benches/examples).
  static void register_options(Options& opt);
  /// Build from parsed options.
  static RunConfig from_options(const Options& opt);
};

}  // namespace v2d::core
