#include "core/v2d.hpp"

#include "io/h5lite.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace v2d::core {

namespace {

std::vector<compiler::CodegenProfile> resolve_profiles(
    const std::vector<std::string>& names) {
  std::vector<compiler::CodegenProfile> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(compiler::find_profile(n));
  return out;
}

rad::OpacitySet make_opacities(const RunConfig& cfg) {
  rad::OpacitySet opac(cfg.ns);
  for (int s = 0; s < cfg.ns; ++s) {
    // Total κ is split so absorption + scattering = kappa_total; the
    // species differ slightly (multigroup: higher groups more opaque) so
    // the two systems are genuinely distinct.
    const double shade = 1.0 + 0.1 * s;
    const double ka = cfg.kappa_absorb * shade;
    opac.absorption(s) = rad::OpacityLaw::constant(ka);
    opac.scattering(s) =
        rad::OpacityLaw::constant(std::max(0.0, cfg.kappa_total * shade - ka));
  }
  return opac;
}

}  // namespace

Simulation::Simulation(const RunConfig& cfg, sim::MachineSpec machine)
    : cfg_(cfg),
      // Aspect-matched domain: 2:1 box so dx1 == dx2 at 200×100.
      grid_(cfg.nx1, cfg.nx2, -1.0, 1.0, -0.5, 0.5),
      dec_(grid_, mpisim::CartTopology(cfg.nprx1, cfg.nprx2)) {
  set_host_threads(cfg.host_threads);
  em_ = std::make_unique<mpisim::ExecModel>(
      std::move(machine), resolve_profiles(cfg.compilers), cfg.nranks());
  ctx_ = linalg::ExecContext(vla::VectorArch(cfg.vector_bits), em_.get(),
                             vla::vla_exec_mode_from_name(cfg.vla_exec),
                             linalg::fuse_mode_from_name(cfg.fuse));

  rad::FldConfig fld_cfg;
  fld_cfg.limiter = cfg.limiter;
  fld_cfg.include_absorption = cfg.kappa_absorb > 0.0;
  fld_cfg.exchange_kappa = cfg.exchange_kappa;
  rad::FldBuilder builder(grid_, dec_, cfg.ns, make_opacities(cfg), fld_cfg);

  linalg::SolveOptions opt;
  opt.rel_tol = cfg.rel_tol;
  opt.max_iterations = cfg.max_iterations;
  opt.ganged = cfg.ganged;
  stepper_ = std::make_unique<rad::RadiationStepper>(
      grid_, dec_, std::move(builder), opt, cfg.preconditioner,
      cfg.mg_options());

  e_ = std::make_unique<linalg::DistVector>(grid_, dec_, cfg.ns);
  // The paper's test problem: 2-D Gaussian pulse of radiation.  D here is
  // the unlimited diffusion coefficient c/(3κ_t) of species 0.
  pulse_.d_coeff = fld_cfg.c_light / (3.0 * cfg.kappa_total);
  pulse_.t0 = 1.0;
  pulse_.fill(*e_, 0.0);

  profilers_.resize(em_->nprofiles());
}

rad::StepStats Simulation::advance() {
  std::vector<double> before(em_->nprofiles());
  for (std::size_t p = 0; p < em_->nprofiles(); ++p)
    before[p] = em_->elapsed(p);

  rad::StepStats stats = stepper_->step(ctx_, *e_, cfg_.dt);
  t_ += cfg_.dt;
  ++step_count_;

  for (std::size_t p = 0; p < em_->nprofiles(); ++p) {
    perfmon::Profiler& prof = profilers_[p];
    prof.enter("timestep");
    for (int site = 0; site < 3; ++site) {
      prof.enter("bicgstab-site-" + std::to_string(site + 1));
      const auto& elapsed = stats.site_elapsed[static_cast<std::size_t>(site)];
      prof.exit(elapsed.empty() ? 0.0 : elapsed[p]);
    }
    prof.exit(em_->elapsed(p) - before[p]);
  }
  return stats;
}

void Simulation::run() {
  for (int s = 0; s < cfg_.steps; ++s) {
    const auto stats = advance();
    V2D_CHECK(stats.all_converged(),
              "BiCGSTAB failed to converge at step " +
                  std::to_string(step_count_));
    if (!cfg_.checkpoint_path.empty() && cfg_.checkpoint_every > 0 &&
        step_count_ % cfg_.checkpoint_every == 0) {
      checkpoint(cfg_.checkpoint_path);
    }
  }
  if (!cfg_.checkpoint_path.empty()) checkpoint(cfg_.checkpoint_path);
}

double Simulation::analytic_error() const {
  return pulse_.rel_l2_error(*e_, t_);
}

double Simulation::total_energy() const {
  return rad::GaussianPulse::total_energy(*e_);
}

void Simulation::checkpoint(const std::string& path) {
  io::H5File file;
  io::Group& root = file.root();
  root.set_attr("code", std::string("v2dsve"));
  root.set_attr("time", t_);
  root.set_attr("step", static_cast<std::int64_t>(step_count_));

  io::Group& mesh = root.create_group("mesh");
  mesh.set_attr("nx1", static_cast<std::int64_t>(cfg_.nx1));
  mesh.set_attr("nx2", static_cast<std::int64_t>(cfg_.nx2));
  mesh.set_attr("ns", static_cast<std::int64_t>(cfg_.ns));
  mesh.set_attr("nprx1", static_cast<std::int64_t>(cfg_.nprx1));
  mesh.set_attr("nprx2", static_cast<std::int64_t>(cfg_.nprx2));

  io::Group& fields = root.create_group("fields");
  const auto data = e_->field().gather_global();
  fields.write("radiation_energy", std::span<const double>(data),
               {static_cast<std::uint64_t>(cfg_.ns),
                static_cast<std::uint64_t>(cfg_.nx2),
                static_cast<std::uint64_t>(cfg_.nx1)});
  file.save(path);

  // Price the serialization: every rank writes its tile through the
  // (simulated) parallel filesystem path.
  for (int r = 0; r < dec_.nranks(); ++r) {
    const grid::TileExtent& ext = dec_.extent(r);
    const auto elements =
        static_cast<std::uint64_t>(ext.ni) * ext.nj * cfg_.ns;
    ctx_.commit_synthetic(r, compiler::KernelFamily::Io, "checkpoint",
                          elements, 2, 8, 8, elements * 16);
  }
}

}  // namespace v2d::core
