#include "core/v2d.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <utility>

#include "io/h5lite.hpp"
#include "resilience/guards.hpp"
#include "scenario/registry.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace v2d::core {

namespace {

std::vector<compiler::CodegenProfile> resolve_profiles(
    const std::vector<std::string>& names) {
  std::vector<compiler::CodegenProfile> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(compiler::find_profile(n));
  return out;
}

/// Serialize one rank's cost ledger: per region, one i64 dataset with the
/// recorded instruction stream + communication tallies and one f64
/// dataset with the priced cycles/seconds.  Everything round-trips
/// bit-exactly (h5lite stores the native representations).
///
/// The layout is field-by-field; the static_asserts trip when a field is
/// added to KernelCounts or RegionCost so this writer/reader pair cannot
/// silently drop it (which would break restart bit-identity unnoticed).
static_assert(sizeof(sim::KernelCounts) ==
                  (2 * sim::kNumOpClasses + 4) * sizeof(std::uint64_t),
              "KernelCounts changed shape: update the checkpoint ledger "
              "serialization in core/v2d.cpp");
static_assert(sizeof(sim::RegionCost) ==
                  sizeof(sim::KernelCounts) + 5 * sizeof(double) +
                      2 * sizeof(std::uint64_t),
              "RegionCost changed shape: update the checkpoint ledger "
              "serialization in core/v2d.cpp");

void write_ledger(io::Group& group, const sim::CostLedger& ledger) {
  for (const auto& [name, rc] : ledger.regions()) {
    io::Group& rg = group.create_group(name);
    std::vector<std::int64_t> u;
    u.reserve(2 * sim::kNumOpClasses + 6);
    for (std::size_t i = 0; i < sim::kNumOpClasses; ++i)
      u.push_back(static_cast<std::int64_t>(rc.counts.instr[i]));
    for (std::size_t i = 0; i < sim::kNumOpClasses; ++i)
      u.push_back(static_cast<std::int64_t>(rc.counts.lanes[i]));
    u.push_back(static_cast<std::int64_t>(rc.counts.bytes_read));
    u.push_back(static_cast<std::int64_t>(rc.counts.bytes_written));
    u.push_back(static_cast<std::int64_t>(rc.counts.elements));
    u.push_back(static_cast<std::int64_t>(rc.counts.calls));
    u.push_back(static_cast<std::int64_t>(rc.comm_messages));
    u.push_back(static_cast<std::int64_t>(rc.comm_bytes));
    rg.write("u", std::span<const std::int64_t>(u),
             {static_cast<std::uint64_t>(u.size())});
    const std::vector<double> f = {rc.compute_cycles, rc.memory_cycles,
                                   rc.overhead_cycles, rc.total_cycles,
                                   rc.comm_seconds};
    rg.write("f", std::span<const double>(f),
             {static_cast<std::uint64_t>(f.size())});
  }
}

sim::CostLedger read_ledger(const io::Group& group) {
  sim::CostLedger out;
  for (const auto& [name, rg] : group.groups()) {
    const io::Dataset& ud = rg->dataset("u");
    const io::Dataset& fd = rg->dataset("f");
    V2D_REQUIRE(ud.i64.size() == 2 * sim::kNumOpClasses + 6 &&
                    fd.f64.size() == 5,
                "checkpoint ledger region '" + name + "' has a bad shape");
    sim::RegionCost rc;
    std::size_t k = 0;
    for (std::size_t i = 0; i < sim::kNumOpClasses; ++i)
      rc.counts.instr[i] = static_cast<std::uint64_t>(ud.i64[k++]);
    for (std::size_t i = 0; i < sim::kNumOpClasses; ++i)
      rc.counts.lanes[i] = static_cast<std::uint64_t>(ud.i64[k++]);
    rc.counts.bytes_read = static_cast<std::uint64_t>(ud.i64[k++]);
    rc.counts.bytes_written = static_cast<std::uint64_t>(ud.i64[k++]);
    rc.counts.elements = static_cast<std::uint64_t>(ud.i64[k++]);
    rc.counts.calls = static_cast<std::uint64_t>(ud.i64[k++]);
    rc.comm_messages = static_cast<std::uint64_t>(ud.i64[k++]);
    rc.comm_bytes = static_cast<std::uint64_t>(ud.i64[k++]);
    rc.compute_cycles = fd.f64[0];
    rc.memory_cycles = fd.f64[1];
    rc.overhead_cycles = fd.f64[2];
    rc.total_cycles = fd.f64[3];
    rc.comm_seconds = fd.f64[4];
    out.set_region(name, rc);
  }
  return out;
}

/// The knobs that shape the trajectory and its pricing.  A restart is only
/// bit-identical to an uninterrupted run when these match, so they are
/// stored in the checkpoint and checked on resume.  Run-control knobs
/// (steps, checkpoint cadence, restart path) and host-only knobs
/// (host_threads, vla_exec — both provably bit-identical across settings)
/// are deliberately not pinned.
/// The stop reason of the first failed solve, for the non-convergence
/// error message (the fallback chain has already given up by then).
std::string worst_stop_reason(const rad::StepStats& stats) {
  for (std::size_t site = 0; site < stats.solves.size(); ++site)
    if (!stats.solves[site].converged)
      return "site " + std::to_string(site) + ": " +
             stats.solves[site].stop_reason;
  return "converged";
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& s : items) {
    if (!out.empty()) out += ',';
    out += s;
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> pinned_knobs(
    const RunConfig& cfg) {
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  return {
      {"dt", num(cfg.dt)},
      {"kappa_total", num(cfg.kappa_total)},
      {"kappa_absorb", num(cfg.kappa_absorb)},
      {"exchange_kappa", num(cfg.exchange_kappa)},
      {"limiter", std::to_string(static_cast<int>(cfg.limiter))},
      {"rel_tol", num(cfg.rel_tol)},
      {"max_iterations", std::to_string(cfg.max_iterations)},
      {"ganged", std::to_string(cfg.ganged ? 1 : 0)},
      {"preconditioner", cfg.preconditioner},
      {"mg_coarse_size", std::to_string(cfg.mg_coarse_size)},
      {"mg_levels", std::to_string(cfg.mg_levels)},
      {"mg_nu_pre", std::to_string(cfg.mg_nu_pre)},
      {"mg_nu_post", std::to_string(cfg.mg_nu_post)},
      {"mg_smoother", cfg.mg_smoother},
      {"mg_omega", num(cfg.mg_omega)},
      {"mg_cheb_boost", num(cfg.mg_cheb_boost)},
      {"mg_max_direct_zones", std::to_string(cfg.mg_max_direct_zones)},
      {"vector_bits", std::to_string(cfg.vector_bits)},
      {"fuse", cfg.fuse},
      {"host_sched", cfg.host_sched},
      {"solver_fallbacks", join(cfg.solver_fallbacks)},
  };
}

}  // namespace

Simulation::Simulation(const RunConfig& cfg, sim::MachineSpec machine,
                       SessionShared* shared)
    : cfg_(cfg),
      problem_(scenario::ScenarioRegistry::instance().create(cfg.problem)),
      grid_(problem_->make_grid(cfg_)),
      dec_(grid_, mpisim::CartTopology(cfg.nprx1, cfg.nprx2)) {
  // A farm session must not resize the process-global host pool per job;
  // the farm configures it once for the whole batch.
  if (shared == nullptr) set_host_threads(cfg.host_threads);
  em_ = std::make_unique<mpisim::ExecModel>(
      std::move(machine), resolve_profiles(cfg.compilers), cfg.nranks());
  const auto exec_mode = vla::vla_exec_mode_from_name(cfg.vla_exec);
  const auto fuse_mode = linalg::fuse_mode_from_name(cfg.fuse);
  if (shared != nullptr) {
    em_->set_price_memo(shared->price_memo());
    ctx_ = linalg::ExecContext(
        shared->context_for(cfg.vector_bits, exec_mode), em_.get(),
        fuse_mode);
  } else {
    ctx_ = linalg::ExecContext(vla::VectorArch(cfg.vector_bits), em_.get(),
                               exec_mode, fuse_mode);
  }
  ctx_.sched = linalg::host_sched_from_name(cfg.host_sched);

  scenario::ProblemSetup setup;
  setup.cfg = &cfg_;
  setup.grid = &grid_;
  setup.dec = &dec_;
  setup.ctx = &ctx_;
  setup.workspace_pool =
      shared != nullptr ? &shared->workspace_pool() : nullptr;
  problem_->initialize(setup);

  profilers_.resize(em_->nprofiles());
}

Simulation::~Simulation() = default;

rad::RadiationStepper& Simulation::stepper() {
  rad::RadiationStepper* s = problem_->stepper();
  V2D_REQUIRE(s != nullptr, "the active problem has no radiation stepper");
  return *s;
}

linalg::DistVector& Simulation::radiation() {
  linalg::DistVector* e = problem_->radiation();
  V2D_REQUIRE(e != nullptr, "the active problem has no radiation field");
  return *e;
}

rad::StepStats Simulation::advance() {
  std::vector<double> before(em_->nprofiles());
  for (std::size_t p = 0; p < em_->nprofiles(); ++p)
    before[p] = em_->elapsed(p);

  // Re-arm the stepper's resilience context every step: the step number
  // changes, and a stale injector pointer must never outlive its owner.
  if (rad::RadiationStepper* s = problem_->stepper(); s != nullptr)
    s->set_resilience(injector_, &recovery_, step_count_ + 1);

  const double dt = problem_->pick_dt(ctx_, cfg_);
  rad::StepStats stats = problem_->advance(ctx_, dt);
  t_ += dt;
  ++step_count_;

  for (std::size_t p = 0; p < em_->nprofiles(); ++p) {
    perfmon::Profiler& prof = profilers_[p];
    prof.enter("timestep");
    for (int site = 0; site < 3; ++site) {
      prof.enter("bicgstab-site-" + std::to_string(site + 1));
      const auto& elapsed = stats.site_elapsed[static_cast<std::size_t>(site)];
      prof.exit(elapsed.empty() ? 0.0 : elapsed[p]);
    }
    prof.exit(em_->elapsed(p) - before[p]);
  }
  return stats;
}

rad::StepStats Simulation::drive_step() {
  const auto stats = advance();
  // Injected NaN contamination lands after the step's physics — exactly
  // the silent corruption the guards exist to catch.  With guards off it
  // propagates into the next step's solves, as it would in production.
  if (injector_ != nullptr &&
      injector_->take(resilience::FaultKind::NanContaminate, step_count_)) {
    if (linalg::DistVector* e = problem_->radiation(); e != nullptr) {
      e->field().gset(0, 0, 0, std::numeric_limits<double>::quiet_NaN());
      recovery_.record(step_count_, "injected-nan",
                       "poisoned radiation field at zone (0, 0), species 0");
    }
  }
  if (injector_ != nullptr &&
      injector_->take(resilience::FaultKind::StepException, step_count_)) {
    recovery_.record(step_count_, "injected-exception",
                     "session step raised");
    throw Error("injected session-step exception at step " +
                std::to_string(step_count_));
  }
  if (cfg_.guard) run_guards();
  V2D_CHECK(stats.all_converged(),
            "solver failed to converge at step " + std::to_string(step_count_) +
                " (" + worst_stop_reason(stats) + ")");
  if (!cfg_.checkpoint_path.empty() && cfg_.checkpoint_every > 0 &&
      step_count_ % cfg_.checkpoint_every == 0) {
    checkpoint(cfg_.checkpoint_path);
  }
  return stats;
}

void Simulation::run_guards() {
  if (linalg::DistVector* e = problem_->radiation(); e != nullptr)
    resilience::check_field_finite(e->field(), "radiation_energy",
                                   step_count_);
  const double energy = problem_->total_energy();
  resilience::check_scalar_finite(energy, "total_energy", step_count_);
  if (cfg_.guard_drift > 0.0) {
    if (guard_has_prev_)
      resilience::check_drift(energy, guard_prev_energy_, cfg_.guard_drift,
                              "total_energy", step_count_);
    guard_prev_energy_ = energy;
    guard_has_prev_ = true;
  }
}

void Simulation::finalize_checkpoints() {
  // Skipped when the periodic cadence already wrote one for the last step
  // (the duplicate would double-price the Io).
  if (!cfg_.checkpoint_path.empty() && last_checkpoint_step_ != step_count_)
    checkpoint(cfg_.checkpoint_path);
}

void Simulation::run(
    const std::function<void(const rad::StepStats&)>& on_step) {
  while (!finished()) {
    const auto stats = drive_step();
    if (on_step) on_step(stats);
  }
  finalize_checkpoints();
}

double Simulation::analytic_error() const {
  return problem_->analytic_error(t_);
}

double Simulation::total_energy() const { return problem_->total_energy(); }

void Simulation::checkpoint(const std::string& path) {
  // Price the serialization first: every rank writes its slice of the
  // problem payload through the (simulated) parallel filesystem path.
  // Pricing precedes the execution-state capture below so the stored
  // clocks/ledgers already include this very write — a restarted run
  // resumes exactly where the continuing run stands.
  const auto arrays = static_cast<std::uint64_t>(problem_->state_arrays());
  for (int r = 0; r < dec_.nranks(); ++r) {
    const grid::TileExtent& ext = dec_.extent(r);
    const auto elements =
        static_cast<std::uint64_t>(ext.ni) * ext.nj * arrays;
    ctx_.commit_synthetic(r, compiler::KernelFamily::Io, "checkpoint",
                          elements, 2, 8, 8, elements * 16);
  }

  io::H5File file;
  io::Group& root = file.root();
  root.set_attr("code", std::string("v2dsve"));
  root.set_attr("problem", std::string(problem_->name()));
  root.set_attr("time", t_);
  root.set_attr("step", static_cast<std::int64_t>(step_count_));

  io::Group& mesh = root.create_group("mesh");
  mesh.set_attr("nx1", static_cast<std::int64_t>(cfg_.nx1));
  mesh.set_attr("nx2", static_cast<std::int64_t>(cfg_.nx2));
  mesh.set_attr("ns", static_cast<std::int64_t>(cfg_.ns));
  mesh.set_attr("nprx1", static_cast<std::int64_t>(cfg_.nprx1));
  mesh.set_attr("nprx2", static_cast<std::int64_t>(cfg_.nprx2));

  io::Group& knobs = root.create_group("config");
  for (const auto& [name, value] : pinned_knobs(cfg_))
    knobs.set_attr(name, value);

  io::Group& fields = root.create_group("fields");
  problem_->write_state(fields);

  io::Group& exec = root.create_group("exec");
  exec.set_attr("nprofiles", static_cast<std::int64_t>(em_->nprofiles()));
  for (std::size_t p = 0; p < em_->nprofiles(); ++p) {
    io::Group& pg = exec.create_group("profile-" + std::to_string(p));
    pg.set_attr("name", std::string(em_->profile(p).name()));
    std::vector<double> clock;
    clock.reserve(static_cast<std::size_t>(dec_.nranks()));
    for (int r = 0; r < dec_.nranks(); ++r)
      clock.push_back(em_->rank_time(p, r));
    pg.write("clock", std::span<const double>(clock),
             {static_cast<std::uint64_t>(clock.size())});
    for (int r = 0; r < dec_.nranks(); ++r)
      write_ledger(pg.create_group("ledger-" + std::to_string(r)),
                   em_->ledger(p, r));
  }

  if (injector_ != nullptr &&
      injector_->take(resilience::FaultKind::CheckpointIo, step_count_)) {
    // Model a crash mid-write: whatever bytes made it out land in the
    // atomic writer's side file, never the real path — an existing
    // finalized checkpoint stays valid for the retry.  The Io pricing
    // above stands (the attempt did the work); the farm's restart wipes
    // it along with the rest of the failed attempt.
    const auto bytes = file.serialize();
    std::ofstream torn(path + ".tmp", std::ios::binary | std::ios::trunc);
    torn.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size() / 2));
    recovery_.record(step_count_, "injected-io",
                     "checkpoint write to '" + path + "' torn mid-stream");
    throw Error("injected checkpoint I/O failure writing '" + path +
                "' at step " + std::to_string(step_count_));
  }
  file.save(path);
  // The duplicate-final-write suppression in run() only cares about the
  // configured path; a manual checkpoint elsewhere must not mask it.
  if (path == cfg_.checkpoint_path) last_checkpoint_step_ = step_count_;
}

void Simulation::restart(const std::string& path) {
  const io::H5File file = io::H5File::load(path);
  const io::Group& root = file.root();
  V2D_REQUIRE(root.attr_str("code") == "v2dsve",
              "not a v2dsve checkpoint: " + path);
  V2D_REQUIRE(root.attr_str("problem") == cfg_.problem,
              "checkpoint holds problem '" + root.attr_str("problem") +
                  "' but the run is configured for '" + cfg_.problem + "'");
  const io::Group& mesh = root.group("mesh");
  V2D_REQUIRE(mesh.attr_i64("nx1") == cfg_.nx1 &&
                  mesh.attr_i64("nx2") == cfg_.nx2 &&
                  mesh.attr_i64("ns") == cfg_.ns &&
                  mesh.attr_i64("nprx1") == cfg_.nprx1 &&
                  mesh.attr_i64("nprx2") == cfg_.nprx2,
              "checkpoint mesh does not match the configured run");
  const io::Group& knobs = root.group("config");
  for (const auto& [name, value] : pinned_knobs(cfg_)) {
    V2D_REQUIRE(knobs.has_attr(name) && knobs.attr_str(name) == value,
                "checkpoint knob '" + name + "' is " +
                    (knobs.has_attr(name) ? knobs.attr_str(name)
                                          : std::string("<missing>")) +
                    " but the run is configured with " + value +
                    "; a restart is only bit-identical under the same "
                    "physics/solver/pricing knobs");
  }

  t_ = root.attr_f64("time");
  step_count_ = static_cast<int>(root.attr_i64("step"));
  // The drift sentinel has no baseline across a restart boundary.
  guard_has_prev_ = false;
  // Resuming from the run's own configured checkpoint counts as that file
  // being up to date; resuming from any other file must not suppress the
  // configured path's final write.
  last_checkpoint_step_ = path == cfg_.checkpoint_path ? step_count_ : -1;

  problem_->read_state(root.group("fields"));

  const io::Group& exec = root.group("exec");
  V2D_REQUIRE(static_cast<std::size_t>(exec.attr_i64("nprofiles")) ==
                  em_->nprofiles(),
              "checkpoint profile count does not match the configured run");
  for (std::size_t p = 0; p < em_->nprofiles(); ++p) {
    const io::Group& pg = exec.group("profile-" + std::to_string(p));
    V2D_REQUIRE(pg.attr_str("name") == em_->profile(p).name(),
                "checkpoint profile order does not match --compilers");
    const io::Dataset& clock = pg.dataset("clock");
    V2D_REQUIRE(clock.f64.size() == static_cast<std::size_t>(dec_.nranks()),
                "checkpoint clock vector does not match the rank count");
    for (int r = 0; r < dec_.nranks(); ++r) {
      em_->restore_rank(
          p, r, clock.f64[static_cast<std::size_t>(r)],
          read_ledger(pg.group("ledger-" + std::to_string(r))));
    }
  }
}

}  // namespace v2d::core
