#pragma once
/// \file v2d.hpp
/// \brief The V2D simulation driver: the paper's code under study.
///
/// Wires the whole stack together for the radiation test problem: grid +
/// NPRX1×NPRX2 decomposition, the multi-profile execution pricer, the FLD
/// builder, the 3-solve radiation stepper, TAU-style per-call-site
/// profilers (one per compiler profile), and h5lite checkpoints.  Running
/// `steps` timesteps of the default configuration reproduces the paper's
/// 300-linear-system workload.

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "grid/decomp.hpp"
#include "grid/grid2d.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/exec_context.hpp"
#include "mpisim/exec_model.hpp"
#include "perfmon/profiler.hpp"
#include "rad/gaussian.hpp"
#include "rad/radstep.hpp"
#include "sim/machine.hpp"

namespace v2d::core {

class Simulation {
public:
  explicit Simulation(const RunConfig& cfg,
                      sim::MachineSpec machine = sim::MachineSpec::a64fx());

  const RunConfig& config() const { return cfg_; }
  const grid::Grid2D& grid() const { return grid_; }
  const grid::Decomposition& decomp() const { return dec_; }
  mpisim::ExecModel& exec() { return *em_; }
  const mpisim::ExecModel& exec() const { return *em_; }
  linalg::ExecContext& context() { return ctx_; }
  rad::RadiationStepper& stepper() { return *stepper_; }
  linalg::DistVector& radiation() { return *e_; }
  const rad::GaussianPulse& pulse() const { return pulse_; }

  double time() const { return t_; }
  int steps_taken() const { return step_count_; }

  /// One timestep (3 solves); updates profilers and simulated clocks.
  rad::StepStats advance();

  /// Run cfg.steps timesteps; returns per-step stats of the last step.
  void run();

  /// Simulated wall-clock under compiler profile p (the Table I number).
  double elapsed(std::size_t p) const { return em_->elapsed(p); }

  /// TAU-style profiler for compiler profile p.
  const perfmon::Profiler& profiler(std::size_t p) const {
    return profilers_.at(p);
  }

  /// Relative L2 error against the analytic pulse (meaningful only in the
  /// unlimited, absorption-free configuration).
  double analytic_error() const;

  /// Total radiation energy (conserved by the zero-flux discretization,
  /// up to exchange with matter).
  double total_energy() const;

  /// Write an h5lite checkpoint (priced as Io work).
  void checkpoint(const std::string& path);

private:
  RunConfig cfg_;
  grid::Grid2D grid_;
  grid::Decomposition dec_;
  std::unique_ptr<mpisim::ExecModel> em_;
  linalg::ExecContext ctx_;
  std::unique_ptr<rad::RadiationStepper> stepper_;
  std::unique_ptr<linalg::DistVector> e_;
  rad::GaussianPulse pulse_;
  std::vector<perfmon::Profiler> profilers_;
  double t_ = 0.0;
  int step_count_ = 0;
};

}  // namespace v2d::core
