#pragma once
/// \file v2d.hpp
/// \brief The V2D simulation driver: the paper's code under study.
///
/// Wires the workload-agnostic spine together: grid + NPRX1×NPRX2
/// decomposition, the multi-profile execution pricer, TAU-style
/// per-call-site profilers (one per compiler profile), and h5lite
/// checkpoint/restart.  Everything workload-specific — field setup,
/// per-step physics, analytic references, checkpoint payloads — lives in
/// the active scenario::Problem, looked up by RunConfig.problem in the
/// ScenarioRegistry.  Running `steps` timesteps of the default
/// configuration (problem = "gaussian-pulse") reproduces the paper's
/// 300-linear-system workload.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/session_shared.hpp"
#include "grid/decomp.hpp"
#include "grid/grid2d.hpp"
#include "linalg/dist_vector.hpp"
#include "linalg/exec_context.hpp"
#include "mpisim/exec_model.hpp"
#include "perfmon/profiler.hpp"
#include "rad/radstep.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/recovery.hpp"
#include "scenario/problem.hpp"
#include "sim/machine.hpp"

namespace v2d::core {

class Simulation {
public:
  /// `shared`, when non-null, injects a farm's shared runtime: the
  /// session's vla::Context forks from the shared per-VL prototype (warm
  /// analytic-count memo), its ExecModel routes pricing through the shared
  /// PriceMemo, its stepper leases scratch from the shared WorkspacePool,
  /// and the global host pool is left alone (the farm sizes it once).
  /// Everything shared is a pure-function cache or scrubbed scratch, so a
  /// shared session's trajectory/ledgers/clocks are bit-identical to a
  /// solo one's.  `shared` must outlive the Simulation.
  explicit Simulation(const RunConfig& cfg,
                      sim::MachineSpec machine = sim::MachineSpec::a64fx(),
                      SessionShared* shared = nullptr);
  ~Simulation();

  const RunConfig& config() const { return cfg_; }
  const grid::Grid2D& grid() const { return grid_; }
  const grid::Decomposition& decomp() const { return dec_; }
  mpisim::ExecModel& exec() { return *em_; }
  const mpisim::ExecModel& exec() const { return *em_; }
  linalg::ExecContext& context() { return ctx_; }

  /// The active workload.
  scenario::Problem& problem() { return *problem_; }
  const scenario::Problem& problem() const { return *problem_; }

  /// The problem's radiation stack (every built-in problem has one).
  rad::RadiationStepper& stepper();
  linalg::DistVector& radiation();

  double time() const { return t_; }
  int steps_taken() const { return step_count_; }

  /// One timestep (the problem's operator-split cycle); updates profilers
  /// and simulated clocks.
  rad::StepStats advance();

  /// True when cfg.steps timesteps have been taken.
  bool finished() const { return step_count_ >= cfg_.steps; }

  /// One run()-loop iteration: advance, check convergence, write the
  /// cadence checkpoint if the step lands on it.  The farm drives
  /// sessions step-by-step through this so interleaved jobs keep exactly
  /// the semantics (and checkpoint pricing) of a solo run() loop.
  rad::StepStats drive_step();

  /// The final checkpoint run() writes after the last step — skipped when
  /// the periodic cadence already covered it (the duplicate would
  /// double-price the Io).  Idempotent once written.
  void finalize_checkpoints();

  /// Run until cfg.steps timesteps have been taken (continuing from a
  /// restart point, if any), writing checkpoints on the configured
  /// cadence.  `on_step` (optional) observes each step's stats.
  void run(const std::function<void(const rad::StepStats&)>& on_step = {});

  /// Simulated wall-clock under compiler profile p (the Table I number).
  double elapsed(std::size_t p) const { return em_->elapsed(p); }

  /// TAU-style profiler for compiler profile p.
  const perfmon::Profiler& profiler(std::size_t p) const {
    return profilers_.at(p);
  }

  /// Borrow a fault injector (see resilience/fault_plan.hpp): drive_step()
  /// consults it for scheduled NaN/exception/checkpoint faults and the
  /// stepper for solver breakdowns.  The injector outlives the session —
  /// the farm keeps it across retry attempts so a consumed (transient)
  /// fault stays consumed.  Null (default) = no injection.
  void set_fault_injector(resilience::FaultInjector* injector) {
    injector_ = injector;
  }

  /// This session's recovery ledger: injected faults and solver fallbacks
  /// recorded step by step.  The farm copies it out before retiring or
  /// retrying the session.
  const resilience::RecoveryLedger& recovery() const { return recovery_; }

  /// The problem's correctness number at the current time: analytic error
  /// where a reference exists, relative conservation violation otherwise.
  double analytic_error() const;

  /// The problem's conserved diagnostic (total energy).
  double total_energy() const;

  /// Write an h5lite checkpoint: the Io work is priced first, then the
  /// problem payload plus the full execution state (per-profile per-rank
  /// clocks and ledgers) is serialized, so a restarted run resumes the
  /// simulated machine exactly where the checkpoint left it.
  void checkpoint(const std::string& path);

  /// Resume from a checkpoint written by the same configuration: restores
  /// the problem state, step count, simulated time, and every profile's
  /// per-rank clocks and ledgers bit-exactly.  The restart read itself is
  /// not priced — the simulated machine persisted its state and continues
  /// as if it never stopped.  (Host-side TAU profilers restart empty;
  /// they profile the host session, not the simulated execution.)
  void restart(const std::string& path);

private:
  /// The --guard checks for the step just taken (no-op unless cfg.guard).
  void run_guards();

  RunConfig cfg_;
  std::unique_ptr<scenario::Problem> problem_;
  grid::Grid2D grid_;
  grid::Decomposition dec_;
  std::unique_ptr<mpisim::ExecModel> em_;
  linalg::ExecContext ctx_;
  std::vector<perfmon::Profiler> profilers_;
  double t_ = 0.0;
  int step_count_ = 0;
  int last_checkpoint_step_ = -1;
  resilience::FaultInjector* injector_ = nullptr;
  resilience::RecoveryLedger recovery_;
  /// Drift-sentinel baseline; invalid until the first guarded step after
  /// construction or restart (the first step has nothing to drift from).
  double guard_prev_energy_ = 0.0;
  bool guard_has_prev_ = false;
};

}  // namespace v2d::core
