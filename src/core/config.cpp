#include "core/config.hpp"

#include <sstream>

#include "linalg/exec_context.hpp"
#include "linalg/precond.hpp"
#include "scenario/registry.hpp"
#include "support/error.hpp"
#include "vla/vla.hpp"

namespace v2d::core {

void RunConfig::register_options(Options& opt) {
  opt.add("problem", "gaussian-pulse",
          "problem name (see --list-problems / the ScenarioRegistry)");
  opt.add("nx1", "200", "zones in x1");
  opt.add("nx2", "100", "zones in x2");
  opt.add("ns", "2", "radiation species");
  opt.add("steps", "100", "time steps");
  opt.add("dt", "0.03", "time step size");
  opt.add("kappa", "10.0", "total (transport) opacity");
  opt.add("kappa-absorb", "0.0", "absorption opacity");
  opt.add("kappa-exchange", "0.05", "species exchange opacity");
  opt.add("limiter", "lp", "flux limiter: none|lp|larsen2|wilson");
  opt.add("nprx1", "1", "tiles in x1 (NPRX1)");
  opt.add("nprx2", "1", "tiles in x2 (NPRX2)");
  opt.add("tol", "1e-8", "solver relative tolerance");
  opt.add("max-iter", "1000", "solver iteration cap");
  opt.add("ganged", "1", "use ganged reductions (0|1)");
  opt.add("precond", "spai0",
          "preconditioner: identity|jacobi|spai0|spai|mg");
  opt.add("solver-fallbacks", "",
          "comma list of fallback preconditioners tried (in order) when a "
          "solve breaks down or hits max iterations; empty = fail");
  opt.add("guard", "off",
          "per-step numeric guards: on (finite-field scan + conserved-total "
          "check, host-only and unpriced) | off");
  opt.add("guard-drift", "0",
          "conservation-drift tolerance per step (relative; 0 = drift "
          "sentinel off, finite checks still run under --guard on)");
  opt.add("mg-coarse-size", "8", "mg: stop coarsening at this grid size");
  opt.add("mg-levels", "12", "mg: maximum hierarchy depth");
  opt.add("mg-nu-pre", "2", "mg: pre-smoothing steps");
  opt.add("mg-nu-post", "2", "mg: post-smoothing steps");
  opt.add("mg-smoother", "jacobi", "mg smoother: jacobi|chebyshev");
  opt.add("mg-omega", "0.8", "mg: weighted-Jacobi damping");
  opt.add("mg-cheb-boost", "4.0",
          "mg: Chebyshev smoothing range [lambda_max/boost, lambda_max]");
  opt.add("mg-max-direct-zones", "16384",
          "mg: error out if the coarsest level exceeds this zone count");
  opt.add("compilers", "cray",
          "comma list of profiles: gnu,fujitsu,cray,cray-noopt,clang");
  opt.add("vector-bits", "512", "SVE vector length (128..2048)");
  opt.add("host-threads", "0",
          "host threads for rank-parallel execution (0 = hardware "
          "concurrency); results are identical at any value");
  opt.add("vla-exec", "native",
          "VLA execution backend: native (fast path) | interpret (reference)");
  opt.add("fuse", "off",
          "fused-kernel execution: off (reference kernel-per-pass sequence) "
          "| on (hand-written one-pass composites) | plan (planner-generated "
          "fused groups; see src/linalg/fusion/)");
  opt.add("host-sched", "barrier",
          "host execution scheduler: barrier (fork/join pool per kernel) | "
          "graph (dependency-scheduled task graph with halo/compute "
          "overlap); results are bit-identical in both modes");
  opt.add_flag("dump-fusion-plan",
               "print the built-in fusion plans and every captured "
               "solver-iteration kernel DAG after the run (host-only debug)");
  opt.add("checkpoint", "", "h5lite checkpoint path (empty = none)");
  opt.add("checkpoint-every", "0", "steps between checkpoints (0 = end only)");
  opt.add("restart", "", "resume from this h5lite checkpoint (empty = fresh)");
}

RunConfig RunConfig::from_options(const Options& opt) {
  RunConfig c;
  c.problem = opt.get("problem");
  // Fail at config build time, not at Simulation construction: an unknown
  // problem name is a usage error and create() lists the catalog in its
  // message (instantiating a Problem is cheap — it allocates no fields).
  (void)scenario::ScenarioRegistry::instance().create(c.problem);
  c.nx1 = static_cast<int>(opt.get_int("nx1"));
  c.nx2 = static_cast<int>(opt.get_int("nx2"));
  c.ns = static_cast<int>(opt.get_int("ns"));
  c.steps = static_cast<int>(opt.get_int("steps"));
  c.dt = opt.get_double("dt");
  c.kappa_total = opt.get_double("kappa");
  c.kappa_absorb = opt.get_double("kappa-absorb");
  c.exchange_kappa = opt.get_double("kappa-exchange");
  c.limiter = rad::limiter_from_name(opt.get("limiter"));
  c.nprx1 = static_cast<int>(opt.get_int("nprx1"));
  c.nprx2 = static_cast<int>(opt.get_int("nprx2"));
  c.rel_tol = opt.get_double("tol");
  c.max_iterations = static_cast<int>(opt.get_int("max-iter"));
  c.ganged = opt.get_bool("ganged");
  c.preconditioner = opt.get("precond");
  c.solver_fallbacks.clear();
  {
    std::stringstream fb(opt.get("solver-fallbacks"));
    std::string kind;
    while (std::getline(fb, kind, ',')) {
      if (kind.empty()) continue;
      V2D_REQUIRE(linalg::is_preconditioner_kind(kind),
                  "unknown fallback preconditioner '" + kind + "'");
      c.solver_fallbacks.push_back(kind);
    }
  }
  {
    const std::string g = opt.get("guard");
    V2D_REQUIRE(g == "on" || g == "off",
                "guard must be 'on' or 'off', got '" + g + "'");
    c.guard = g == "on";
  }
  c.guard_drift = opt.get_double("guard-drift");
  V2D_REQUIRE(c.guard_drift >= 0.0, "guard-drift must be >= 0");
  c.mg_coarse_size = static_cast<int>(opt.get_int("mg-coarse-size"));
  c.mg_levels = static_cast<int>(opt.get_int("mg-levels"));
  c.mg_nu_pre = static_cast<int>(opt.get_int("mg-nu-pre"));
  c.mg_nu_post = static_cast<int>(opt.get_int("mg-nu-post"));
  c.mg_smoother = opt.get("mg-smoother");
  c.mg_omega = opt.get_double("mg-omega");
  c.mg_cheb_boost = opt.get_double("mg-cheb-boost");
  c.mg_max_direct_zones = opt.get_int("mg-max-direct-zones");
  c.compilers.clear();
  std::stringstream ss(opt.get("compilers"));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) c.compilers.push_back(item);
  }
  V2D_REQUIRE(!c.compilers.empty(), "need at least one compiler profile");
  c.vector_bits = static_cast<unsigned>(opt.get_int("vector-bits"));
  c.host_threads = static_cast<int>(opt.get_int("host-threads"));
  c.vla_exec = opt.get("vla-exec");
  (void)vla::vla_exec_mode_from_name(c.vla_exec);  // validate early
  c.fuse = opt.get("fuse");
  (void)linalg::fuse_mode_from_name(c.fuse);  // validate early
  c.host_sched = opt.get("host-sched");
  (void)linalg::host_sched_from_name(c.host_sched);  // validate early
  c.dump_fusion_plan = opt.get_bool("dump-fusion-plan");
  c.checkpoint_path = opt.get("checkpoint");
  c.checkpoint_every = static_cast<int>(opt.get_int("checkpoint-every"));
  c.restart_path = opt.get("restart");
  return c;
}

}  // namespace v2d::core
