#pragma once
/// \file h5lite.hpp
/// \brief Minimal hierarchical data container (HDF5 substitute).
///
/// V2D writes checkpoints through parallel HDF5; for this reproduction the
/// I/O path is exercised by a small self-contained format with the same
/// shape: a tree of named groups, each holding typed n-dimensional
/// datasets and scalar attributes.  The on-disk encoding is a flat
/// little-endian stream with a magic header and explicit lengths — enough
/// to round-trip grids and fields, deliberately nothing more.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace v2d::io {

/// Attribute value: the three scalar types V2D writes.
using Attr = std::variant<std::int64_t, double, std::string>;

/// A typed n-dimensional dataset.  Data is stored row-major.
struct Dataset {
  enum class Type : std::uint8_t { F64 = 0, I64 = 1 };
  Type type = Type::F64;
  std::vector<std::uint64_t> dims;
  std::vector<double> f64;
  std::vector<std::int64_t> i64;

  std::uint64_t element_count() const {
    std::uint64_t n = 1;
    for (auto d : dims) n *= d;
    return n;
  }
};

class Group {
public:
  Group& create_group(const std::string& name);
  bool has_group(const std::string& name) const;
  Group& group(const std::string& name);
  const Group& group(const std::string& name) const;

  void write(const std::string& name, std::span<const double> data,
             std::vector<std::uint64_t> dims);
  void write(const std::string& name, std::span<const std::int64_t> data,
             std::vector<std::uint64_t> dims);
  bool has_dataset(const std::string& name) const;
  const Dataset& dataset(const std::string& name) const;

  void set_attr(const std::string& name, Attr value);
  bool has_attr(const std::string& name) const;
  const Attr& attr(const std::string& name) const;
  double attr_f64(const std::string& name) const;
  std::int64_t attr_i64(const std::string& name) const;
  std::string attr_str(const std::string& name) const;

  const std::map<std::string, std::unique_ptr<Group>>& groups() const {
    return groups_;
  }
  const std::map<std::string, Dataset>& datasets() const { return datasets_; }
  const std::map<std::string, Attr>& attrs() const { return attrs_; }

private:
  friend class H5File;
  std::map<std::string, std::unique_ptr<Group>> groups_;
  std::map<std::string, Dataset> datasets_;
  std::map<std::string, Attr> attrs_;
};

class H5File {
public:
  H5File() : root_(std::make_unique<Group>()) {}

  Group& root() { return *root_; }
  const Group& root() const { return *root_; }

  /// Serialize to / parse from a byte buffer (tests exercise this without
  /// touching the filesystem).
  std::vector<std::uint8_t> serialize() const;
  static H5File deserialize(std::span<const std::uint8_t> bytes);

  void save(const std::string& path) const;
  static H5File load(const std::string& path);

private:
  std::unique_ptr<Group> root_;
};

}  // namespace v2d::io
