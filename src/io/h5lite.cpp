#include "io/h5lite.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/error.hpp"

namespace v2d::io {

namespace {

constexpr std::uint32_t kMagic = 0x48354C54;  // "H5LT"
constexpr std::uint32_t kVersion = 1;

// --- byte stream helpers ----------------------------------------------------

void put_u8(std::vector<std::uint8_t>& b, std::uint8_t v) { b.push_back(v); }

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& b, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(b, bits);
}

void put_str(std::vector<std::uint8_t>& b, const std::string& s) {
  put_u32(b, static_cast<std::uint32_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

class Reader {
public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() {
    auto p = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    auto p = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    auto p = take(n);
    return {reinterpret_cast<const char*>(p.data()), n};
  }
  bool exhausted() const { return pos_ == bytes_.size(); }

private:
  std::span<const std::uint8_t> take(std::size_t n) {
    V2D_REQUIRE(pos_ + n <= bytes_.size(), "truncated h5lite stream");
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// --- tree encoding -----------------------------------------------------------

void put_attr(std::vector<std::uint8_t>& b, const std::string& name,
              const Attr& a) {
  put_str(b, name);
  put_u8(b, static_cast<std::uint8_t>(a.index()));
  if (const auto* i = std::get_if<std::int64_t>(&a)) {
    put_u64(b, static_cast<std::uint64_t>(*i));
  } else if (const auto* d = std::get_if<double>(&a)) {
    put_f64(b, *d);
  } else {
    put_str(b, std::get<std::string>(a));
  }
}

std::pair<std::string, Attr> get_attr(Reader& r) {
  std::string name = r.str();
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case 0: return {name, Attr{static_cast<std::int64_t>(r.u64())}};
    case 1: return {name, Attr{r.f64()}};
    case 2: return {name, Attr{r.str()}};
    default: throw Error("h5lite: bad attribute kind");
  }
}

void put_dataset(std::vector<std::uint8_t>& b, const std::string& name,
                 const Dataset& d) {
  put_str(b, name);
  put_u8(b, static_cast<std::uint8_t>(d.type));
  put_u32(b, static_cast<std::uint32_t>(d.dims.size()));
  for (auto dim : d.dims) put_u64(b, dim);
  if (d.type == Dataset::Type::F64) {
    for (double v : d.f64) put_f64(b, v);
  } else {
    for (std::int64_t v : d.i64) put_u64(b, static_cast<std::uint64_t>(v));
  }
}

std::pair<std::string, Dataset> get_dataset(Reader& r) {
  std::string name = r.str();
  Dataset d;
  const std::uint8_t t = r.u8();
  V2D_REQUIRE(t <= 1, "h5lite: bad dataset type");
  d.type = static_cast<Dataset::Type>(t);
  const std::uint32_t ndims = r.u32();
  d.dims.resize(ndims);
  for (auto& dim : d.dims) dim = r.u64();
  const std::uint64_t n = d.element_count();
  if (d.type == Dataset::Type::F64) {
    d.f64.resize(n);
    for (auto& v : d.f64) v = r.f64();
  } else {
    d.i64.resize(n);
    for (auto& v : d.i64) v = static_cast<std::int64_t>(r.u64());
  }
  return {std::move(name), std::move(d)};
}

void put_group(std::vector<std::uint8_t>& b, const Group& g) {
  put_u32(b, static_cast<std::uint32_t>(g.attrs().size()));
  for (const auto& [name, a] : g.attrs()) put_attr(b, name, a);
  put_u32(b, static_cast<std::uint32_t>(g.datasets().size()));
  for (const auto& [name, d] : g.datasets()) put_dataset(b, name, d);
  put_u32(b, static_cast<std::uint32_t>(g.groups().size()));
  for (const auto& [name, child] : g.groups()) {
    put_str(b, name);
    put_group(b, *child);
  }
}

void get_group(Reader& r, Group& g) {
  const std::uint32_t nattrs = r.u32();
  for (std::uint32_t i = 0; i < nattrs; ++i) {
    auto [name, a] = get_attr(r);
    g.set_attr(name, std::move(a));
  }
  const std::uint32_t ndatasets = r.u32();
  for (std::uint32_t i = 0; i < ndatasets; ++i) {
    auto [name, d] = get_dataset(r);
    if (d.type == Dataset::Type::F64) {
      g.write(name, std::span<const double>(d.f64), d.dims);
    } else {
      g.write(name, std::span<const std::int64_t>(d.i64), d.dims);
    }
  }
  const std::uint32_t ngroups = r.u32();
  for (std::uint32_t i = 0; i < ngroups; ++i) {
    std::string name = r.str();
    get_group(r, g.create_group(name));
  }
}

}  // namespace

// --- Group -------------------------------------------------------------------

Group& Group::create_group(const std::string& name) {
  auto& slot = groups_[name];
  if (!slot) slot = std::make_unique<Group>();
  return *slot;
}

bool Group::has_group(const std::string& name) const {
  return groups_.count(name) != 0;
}

Group& Group::group(const std::string& name) {
  auto it = groups_.find(name);
  V2D_REQUIRE(it != groups_.end(), "h5lite: no such group: " + name);
  return *it->second;
}

const Group& Group::group(const std::string& name) const {
  auto it = groups_.find(name);
  V2D_REQUIRE(it != groups_.end(), "h5lite: no such group: " + name);
  return *it->second;
}

void Group::write(const std::string& name, std::span<const double> data,
                  std::vector<std::uint64_t> dims) {
  Dataset d;
  d.type = Dataset::Type::F64;
  d.dims = std::move(dims);
  V2D_REQUIRE(d.element_count() == data.size(),
              "h5lite: dims do not match data size for " + name);
  d.f64.assign(data.begin(), data.end());
  datasets_[name] = std::move(d);
}

void Group::write(const std::string& name, std::span<const std::int64_t> data,
                  std::vector<std::uint64_t> dims) {
  Dataset d;
  d.type = Dataset::Type::I64;
  d.dims = std::move(dims);
  V2D_REQUIRE(d.element_count() == data.size(),
              "h5lite: dims do not match data size for " + name);
  d.i64.assign(data.begin(), data.end());
  datasets_[name] = std::move(d);
}

bool Group::has_dataset(const std::string& name) const {
  return datasets_.count(name) != 0;
}

const Dataset& Group::dataset(const std::string& name) const {
  auto it = datasets_.find(name);
  V2D_REQUIRE(it != datasets_.end(), "h5lite: no such dataset: " + name);
  return it->second;
}

void Group::set_attr(const std::string& name, Attr value) {
  attrs_[name] = std::move(value);
}

bool Group::has_attr(const std::string& name) const {
  return attrs_.count(name) != 0;
}

const Attr& Group::attr(const std::string& name) const {
  auto it = attrs_.find(name);
  V2D_REQUIRE(it != attrs_.end(), "h5lite: no such attribute: " + name);
  return it->second;
}

double Group::attr_f64(const std::string& name) const {
  return std::get<double>(attr(name));
}

std::int64_t Group::attr_i64(const std::string& name) const {
  return std::get<std::int64_t>(attr(name));
}

std::string Group::attr_str(const std::string& name) const {
  return std::get<std::string>(attr(name));
}

// --- H5File -------------------------------------------------------------------

std::vector<std::uint8_t> H5File::serialize() const {
  std::vector<std::uint8_t> b;
  put_u32(b, kMagic);
  put_u32(b, kVersion);
  put_group(b, *root_);
  return b;
}

H5File H5File::deserialize(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  V2D_REQUIRE(r.u32() == kMagic, "h5lite: bad magic");
  V2D_REQUIRE(r.u32() == kVersion, "h5lite: unsupported version");
  H5File f;
  get_group(r, f.root());
  V2D_REQUIRE(r.exhausted(), "h5lite: trailing bytes");
  return f;
}

void H5File::save(const std::string& path) const {
  // Atomic replace: serialize into a side file, then rename over the
  // target.  A crash mid-write leaves at worst a torn `.tmp` beside an
  // intact previous checkpoint — a truncated file can never land on the
  // real path and poison a later --restart.
  const auto bytes = serialize();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    V2D_REQUIRE(os.good(), "h5lite: cannot open for writing: " + tmp);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    V2D_REQUIRE(os.good(), "h5lite: write failed: " + tmp);
  }
  V2D_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "h5lite: cannot replace '" + path + "' with '" + tmp + "'");
}

H5File H5File::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  V2D_REQUIRE(is.good(), "h5lite: cannot open for reading: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

}  // namespace v2d::io
