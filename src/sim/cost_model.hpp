#pragma once
/// \file cost_model.hpp
/// \brief Roofline-style cycle pricing of recorded kernel instruction streams.
///
/// A kernel is executed once through the VLA layer, which records a
/// KernelCounts.  The cost model then *prices* that recording under any
/// (ExecMode, CodegenFactors, sharing) combination — pricing is separate
/// from execution, so "compile with GNU, no SVE" is a pricing decision,
/// not a re-run.  Cycles are
///
///   total = overhead + max(compute_cycles, memory_cycles)
///
/// compute side:  Σ_c instr[c]·cpi_vec(c)·scale(c)      (SVE)
///                Σ_c lanes[c]·cpi_scalar(c)·scale(c)   (Scalar; each active
///                                                      lane = 1 scalar op)
/// partial vectorization blends the two by CodegenFactors::vectorized_fraction.
/// memory side:   bytes_moved / (bytes_per_cycle(level, sharers)·bw_eff)
/// where `level` comes from the working-set classifier.

#include <cstdint>

#include "sim/cache.hpp"
#include "sim/isa.hpp"
#include "sim/machine.hpp"

namespace v2d::sim {

/// Result of pricing one kernel invocation (or an accumulated stream).
struct CostBreakdown {
  double compute_cycles = 0.0;
  double memory_cycles = 0.0;
  double overhead_cycles = 0.0;
  MemLevel level = MemLevel::L1;

  double total_cycles() const {
    const double body = compute_cycles > memory_cycles ? compute_cycles
                                                       : memory_cycles;
    return overhead_cycles + body;
  }
  bool memory_bound() const { return memory_cycles > compute_cycles; }
};

class CostModel {
public:
  explicit CostModel(MachineSpec spec) : spec_(std::move(spec)) {}

  const MachineSpec& machine() const { return spec_; }

  /// Price a recorded stream.
  /// \param counts            recorded instruction stream (vector granularity)
  /// \param mode              Scalar or SVE pricing
  /// \param factors           compiler codegen quality
  /// \param working_set_bytes bytes the kernel touches per call (for level
  ///                          classification); pass 0 to force L1
  /// \param ranks_on_cmg      simulated ranks sharing this rank's CMG
  CostBreakdown price(const KernelCounts& counts, ExecMode mode,
                      const CodegenFactors& factors,
                      std::uint64_t working_set_bytes,
                      std::uint32_t ranks_on_cmg = 1) const;

  /// Pure compute-side pricing (used by tests and by price()).
  double compute_cycles(const KernelCounts& counts, ExecMode mode,
                        const CodegenFactors& factors) const;

  /// Seconds for a cycle count on this machine.
  double seconds(double cycles) const { return cycles / spec_.freq_hz; }

private:
  MachineSpec spec_;
};

}  // namespace v2d::sim
