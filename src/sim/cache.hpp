#pragma once
/// \file cache.hpp
/// \brief Trace-driven set-associative cache model and working-set classifier.
///
/// Two levels of fidelity coexist:
///  * SetAssocCache / CacheHierarchy — a faithful LRU cache simulator used
///    by tests and by the detailed-analysis examples to validate the cheap
///    classifier below against actual access streams.
///  * classify_working_set — the O(1) classifier the cost model uses on
///    every kernel call: given the bytes a kernel touches per invocation
///    and the sharing situation, decide which memory level feeds it.

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace v2d::sim {

/// One set-associative, write-allocate, write-back cache with LRU
/// replacement.  Addresses are byte addresses.
class SetAssocCache {
public:
  SetAssocCache(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
                std::uint32_t associativity);

  /// Access one byte address; returns true on hit.  `is_write` marks the
  /// line dirty.  On miss the victim line (if dirty) increments
  /// writebacks().
  bool access(std::uint64_t addr, bool is_write);

  /// Touch a [addr, addr+len) range, line by line; returns number of hits.
  std::uint64_t access_range(std::uint64_t addr, std::uint64_t len,
                             bool is_write);

  void reset();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double hit_rate() const {
    return accesses() ? static_cast<double>(hits_) / accesses() : 0.0;
  }

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t sets() const { return num_sets_; }
  std::uint32_t ways() const { return assoc_; }

private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
    bool dirty = false;
  };

  std::uint32_t line_bytes_;
  std::uint32_t assoc_;
  std::uint32_t num_sets_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
  std::vector<Line> lines_;  // num_sets_ * assoc_, row-major by set
};

/// L1 → L2 → memory hierarchy; accesses filter downward on miss.
class CacheHierarchy {
public:
  explicit CacheHierarchy(const MachineSpec& spec);

  /// Access a byte range through the hierarchy.
  void access_range(std::uint64_t addr, std::uint64_t len, bool is_write);

  const SetAssocCache& l1() const { return l1_; }
  const SetAssocCache& l2() const { return l2_; }
  /// Bytes that went all the way to memory (miss traffic + writebacks).
  std::uint64_t memory_bytes() const { return memory_bytes_; }

  void reset();

private:
  SetAssocCache l1_;
  SetAssocCache l2_;
  std::uint64_t memory_bytes_ = 0;
};

/// Cheap classifier used by the cost model: which level serves a kernel
/// whose per-call working set is `bytes`, when `ranks_on_cmg` simulated
/// ranks share a CMG?  The L2 share seen by one rank shrinks accordingly.
MemLevel classify_working_set(std::uint64_t bytes, const MachineSpec& spec,
                              std::uint32_t ranks_on_cmg);

}  // namespace v2d::sim
