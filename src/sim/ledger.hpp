#pragma once
/// \file ledger.hpp
/// \brief Per-region cost accounting for a simulated rank.
///
/// Every priced kernel call and every communication event lands in a
/// ledger under a region name ("matvec", "dprod", "halo", ...).  The
/// perfmon layer reads ledgers to produce PAPI/TAU/perf-stat style
/// reports; the MPI simulator keeps one ledger per rank.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/isa.hpp"

namespace v2d::sim {

/// Accumulated cost of one named region.
struct RegionCost {
  KernelCounts counts;
  double compute_cycles = 0.0;
  double memory_cycles = 0.0;
  double overhead_cycles = 0.0;
  double total_cycles = 0.0;
  double comm_seconds = 0.0;
  std::uint64_t comm_messages = 0;
  std::uint64_t comm_bytes = 0;

  RegionCost& operator+=(const RegionCost& o);
};

class CostLedger {
public:
  /// Record a priced kernel call.
  void add_kernel(const std::string& region, const KernelCounts& counts,
                  const CostBreakdown& cost);

  /// Record communication time (already in seconds — the network model
  /// prices messages directly).
  void add_comm(const std::string& region, double seconds,
                std::uint64_t messages, std::uint64_t bytes);

  /// Merge another ledger into this one (region-wise).
  void merge(const CostLedger& o);

  /// Insert or overwrite one region wholesale (checkpoint-restart
  /// deserialization; normal accounting goes through add_kernel/add_comm).
  void set_region(const std::string& region, RegionCost cost) {
    regions_[region] = cost;
  }

  void clear();

  bool has(const std::string& region) const;
  const RegionCost& at(const std::string& region) const;
  const std::map<std::string, RegionCost>& regions() const { return regions_; }

  double total_cycles() const;
  double total_comm_seconds() const;
  std::uint64_t total_flops() const;
  std::uint64_t total_bytes() const;

  /// Simulated wall time at frequency `freq_hz`: compute + communication.
  double total_seconds(double freq_hz) const {
    return total_cycles() / freq_hz + total_comm_seconds();
  }

  /// Region names sorted by descending total cycles (for reports).
  std::vector<std::string> by_cost() const;

private:
  std::map<std::string, RegionCost> regions_;
};

}  // namespace v2d::sim
