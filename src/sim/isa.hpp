#pragma once
/// \file isa.hpp
/// \brief Abstract instruction-stream description consumed by the cost model.
///
/// The VLA layer (src/vla) executes kernels for real and records how many
/// instructions of each class it issued.  The cost model (cost_model.hpp)
/// prices that stream on a MachineSpec under a CodegenFactors profile.
/// This is the boundary between "what the kernel does" and "what it costs".

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace v2d::sim {

/// Instruction classes the cost model distinguishes.  They mirror the op
/// groups that matter on the A64FX: FP arithmetic by kind, contiguous vs
/// gather memory ops, horizontal reductions, and predicate manipulation.
enum class OpClass : std::uint8_t {
  FlopAdd = 0,   ///< fadd / fsub
  FlopMul,       ///< fmul
  FlopFma,       ///< fmla / fmad (counts as 2 flops)
  FlopDiv,       ///< fdiv (long latency, unpipelined on A64FX)
  FlopSqrt,      ///< fsqrt
  FlopCmp,       ///< fcmp / fmax / fmin / fabs
  LoadContig,    ///< ld1 contiguous
  StoreContig,   ///< st1 contiguous
  LoadGather,    ///< ld1 gather (index vector)
  StoreScatter,  ///< st1 scatter
  Reduce,        ///< faddv-style horizontal reduction
  Select,        ///< sel / blend
  Predicate,     ///< whilelt / ptest and friends
  IntOp,         ///< index arithmetic not hidden by addressing modes
  Branch,        ///< loop back-edges
  kCount
};

inline constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::kCount);

const char* op_class_name(OpClass c);

/// How a kernel was compiled/executed.
enum class ExecMode : std::uint8_t {
  Scalar,  ///< no SVE: one lane per instruction
  SVE,     ///< vector-length-agnostic SVE
};

const char* exec_mode_name(ExecMode m);

/// Tally of one kernel invocation (or many, accumulated).
///
/// `instr[c]` counts *instructions* (vector granularity); `lanes[c]` counts
/// the total active lanes across those instructions, so
/// `lanes[c] / instr[c]` is the average predicate density.  Memory traffic
/// is tracked in bytes so the roofline side needs no ISA knowledge.
struct KernelCounts {
  std::array<std::uint64_t, kNumOpClasses> instr{};
  std::array<std::uint64_t, kNumOpClasses> lanes{};
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t elements = 0;  ///< problem elements processed (for reporting)
  std::uint64_t calls = 0;     ///< kernel invocations accumulated

  void record(OpClass c, std::uint64_t active_lanes, std::uint64_t n = 1) {
    const auto i = static_cast<std::size_t>(c);
    instr[i] += n;
    lanes[i] += active_lanes * n;
  }

  std::uint64_t total_instr() const {
    std::uint64_t t = 0;
    for (auto v : instr) t += v;
    return t;
  }

  /// Double-precision flops implied by the recorded stream (FMA = 2).
  std::uint64_t flops() const {
    using enum OpClass;
    auto lane = [&](OpClass c) {
      return lanes[static_cast<std::size_t>(c)];
    };
    return lane(FlopAdd) + lane(FlopMul) + 2 * lane(FlopFma) + lane(FlopDiv) +
           lane(FlopSqrt) + lane(FlopCmp);
  }

  std::uint64_t bytes_moved() const { return bytes_read + bytes_written; }

  KernelCounts& operator+=(const KernelCounts& o) {
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
      instr[i] += o.instr[i];
      lanes[i] += o.lanes[i];
    }
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    elements += o.elements;
    calls += o.calls;
    return *this;
  }

  /// Exact equality — two recordings priced identically iff all fields
  /// match (the same-shape price memo keys on this).
  bool operator==(const KernelCounts&) const = default;
};

/// Codegen quality knobs supplied by the compiler model (src/compiler).
///
/// Defined here (not in src/compiler) so the cost model has no dependency
/// on vendor profiles.  `cpi_scale[c]` multiplies the machine's base CPI
/// for class `c` — 1.0 is perfect scheduling, 2.0 means the compiler left
/// half the issue slots empty.  `loop_overhead_cycles` is charged per
/// kernel call (prologue/epilogue, pointer checks).
struct CodegenFactors {
  /// Per-class multiplier on the machine's *vector* CPI (SVE pricing side).
  std::array<double, kNumOpClasses> cpi_scale;
  /// Uniform multiplier on scalar CPI (quality of the compiler's scalar
  /// loop code; applies to the no-SVE pricing side).
  double scalar_cpi_scale = 1.0;
  double loop_overhead_cycles = 8.0;
  /// Fraction of eligible work the compiler actually vectorized (0..1);
  /// the rest is priced at scalar CPI even in ExecMode::SVE.
  double vectorized_fraction = 1.0;
  /// Multiplier on achievable memory bandwidth (prefetch quality etc.).
  double bandwidth_efficiency = 1.0;

  CodegenFactors() { cpi_scale.fill(1.0); }

  double scale(OpClass c) const {
    return cpi_scale[static_cast<std::size_t>(c)];
  }
  void set_scale(OpClass c, double v) {
    cpi_scale[static_cast<std::size_t>(c)] = v;
  }
  void scale_all(double v) {
    for (auto& s : cpi_scale) s *= v;
  }
};

}  // namespace v2d::sim
