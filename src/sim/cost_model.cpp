#include "sim/cost_model.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace v2d::sim {

namespace {

/// Issue-port groups: a superscalar core overlaps work across its memory
/// pipes, FP pipes and control/ALU pipes, so the compute-side cost is the
/// busiest port group, not the sum of all instruction latencies.
enum class Port : std::uint8_t { Mem = 0, Fp, Ctl, kCount };

Port port_of(OpClass c) {
  switch (c) {
    case OpClass::LoadContig:
    case OpClass::StoreContig:
    case OpClass::LoadGather:
    case OpClass::StoreScatter:
      return Port::Mem;
    case OpClass::FlopAdd:
    case OpClass::FlopMul:
    case OpClass::FlopFma:
    case OpClass::FlopDiv:
    case OpClass::FlopSqrt:
    case OpClass::FlopCmp:
    case OpClass::Reduce:
    case OpClass::Select:
      return Port::Fp;
    case OpClass::Predicate:
    case OpClass::IntOp:
    case OpClass::Branch:
      return Port::Ctl;
    case OpClass::kCount:
      break;
  }
  return Port::Ctl;
}

}  // namespace

double CostModel::compute_cycles(const KernelCounts& counts, ExecMode mode,
                                 const CodegenFactors& factors) const {
  // Per-port busy cycles for the vector (SVE) and scalar pricings.
  double vec_port[3] = {0.0, 0.0, 0.0};
  double scl_port[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    const auto c = static_cast<OpClass>(i);
    const auto p = static_cast<std::size_t>(port_of(c));
    vec_port[p] += static_cast<double>(counts.instr[i]) *
                   spec_.cpi(c, ExecMode::SVE) * factors.scale(c);
    // lanes[] always holds the scalar-equivalent op count: for FP/memory
    // classes that is the number of active lanes; for loop-control classes
    // (predicate/branch/int) the recorder also logs active lanes, because a
    // scalar loop executes one back-edge per element.
    scl_port[p] += static_cast<double>(counts.lanes[i]) *
                   spec_.cpi(c, ExecMode::Scalar) * factors.scalar_cpi_scale;
  }
  const double vec = std::max({vec_port[0], vec_port[1], vec_port[2]});
  const double scalar = std::max({scl_port[0], scl_port[1], scl_port[2]});
  if (mode == ExecMode::Scalar) return scalar;
  const double f = std::clamp(factors.vectorized_fraction, 0.0, 1.0);
  return f * vec + (1.0 - f) * scalar;
}

CostBreakdown CostModel::price(const KernelCounts& counts, ExecMode mode,
                               const CodegenFactors& factors,
                               std::uint64_t working_set_bytes,
                               std::uint32_t ranks_on_cmg) const {
  V2D_REQUIRE(factors.bandwidth_efficiency > 0.0,
              "bandwidth efficiency must be positive");
  CostBreakdown out;
  out.level = working_set_bytes == 0
                  ? MemLevel::L1
                  : classify_working_set(working_set_bytes, spec_, ranks_on_cmg);
  out.compute_cycles = compute_cycles(counts, mode, factors);

  const double bpc = spec_.bytes_per_cycle(out.level, ranks_on_cmg) *
                     factors.bandwidth_efficiency;
  out.memory_cycles = static_cast<double>(counts.bytes_moved()) / bpc;

  // Per-call fixed costs: loop prologue/epilogue plus one load-to-use
  // latency at the serving level (captures the small-N latency floor that
  // the paper's N=1000 kernel driver sits near).
  double latency = spec_.l1.latency_cycles;
  if (out.level == MemLevel::L2) latency = spec_.l2.latency_cycles;
  if (out.level == MemLevel::HBM) latency = spec_.hbm_latency_cycles;
  out.overhead_cycles =
      static_cast<double>(counts.calls ? counts.calls : 1) *
          factors.loop_overhead_cycles +
      latency;
  return out;
}

}  // namespace v2d::sim
