#include "sim/machine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace v2d::sim {

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::FlopAdd: return "fadd";
    case OpClass::FlopMul: return "fmul";
    case OpClass::FlopFma: return "fma";
    case OpClass::FlopDiv: return "fdiv";
    case OpClass::FlopSqrt: return "fsqrt";
    case OpClass::FlopCmp: return "fcmp";
    case OpClass::LoadContig: return "ld1";
    case OpClass::StoreContig: return "st1";
    case OpClass::LoadGather: return "ld1-gather";
    case OpClass::StoreScatter: return "st1-scatter";
    case OpClass::Reduce: return "reduce";
    case OpClass::Select: return "sel";
    case OpClass::Predicate: return "pred";
    case OpClass::IntOp: return "int";
    case OpClass::Branch: return "branch";
    case OpClass::kCount: break;
  }
  return "?";
}

const char* exec_mode_name(ExecMode m) {
  return m == ExecMode::SVE ? "SVE" : "Scalar";
}

const char* mem_level_name(MemLevel l) {
  switch (l) {
    case MemLevel::L1: return "L1";
    case MemLevel::L2: return "L2";
    case MemLevel::HBM: return "HBM";
    case MemLevel::kCount: break;
  }
  return "?";
}

double MachineSpec::bytes_per_cycle(MemLevel level, std::uint32_t sharers) const {
  V2D_REQUIRE(sharers >= 1, "at least one core must be streaming");
  switch (level) {
    case MemLevel::L1:
      // Private: no sharing penalty.
      return l1.bytes_per_cycle_per_core;
    case MemLevel::L2: {
      // L2 is banked per CMG; a single core cannot saturate it, but the
      // aggregate is capped.  Model: per-core rate limited by the CMG
      // aggregate divided among streaming sharers.
      const double aggregate = l2.bytes_per_cycle_per_core * 4.0;  // bank cap
      return std::min(l2.bytes_per_cycle_per_core,
                      aggregate / static_cast<double>(sharers));
    }
    case MemLevel::HBM: {
      const double aggregate_bpc = hbm_bw_per_cmg / freq_hz;
      // One A64FX core can draw at most ~1/5 of the CMG's HBM bandwidth
      // (below the per-core L2 bandwidth — a single core streams faster
      // from L2 than from memory).
      const double single_core_cap = aggregate_bpc / 5.0;
      return std::min(single_core_cap,
                      aggregate_bpc / static_cast<double>(sharers));
    }
    case MemLevel::kCount: break;
  }
  V2D_FAIL("unknown memory level");
}

MachineSpec MachineSpec::a64fx() {
  MachineSpec m;
  m.name = "A64FX (Ookami FX700)";
  m.freq_hz = 1.8e9;
  m.sve_bits = 512;
  m.fp_pipes_vector = 2;
  m.fp_pipes_scalar = 2;
  m.cores_per_cmg = 12;
  m.cmgs_per_node = 4;

  m.l1 = CacheLevelSpec{
      .capacity_bytes = 64 * 1024,
      .line_bytes = 256,
      .associativity = 4,
      // 2×64-byte load ports at full SVE width minus store port sharing.
      .bytes_per_cycle_per_core = 96.0,
      .latency_cycles = 5.0,
  };
  m.l2 = CacheLevelSpec{
      .capacity_bytes = 8ull * 1024 * 1024,
      .line_bytes = 256,
      .associativity = 16,
      .bytes_per_cycle_per_core = 32.0,
      .latency_cycles = 40.0,
  };
  m.hbm_bw_per_cmg = 256e9;
  m.hbm_latency_cycles = 260.0;

  // Scalar CPIs: A64FX's out-of-order scalar core is modest (2-wide FP).
  auto& s = m.cpi_scalar;
  s.fill(1.0);
  auto set = [](auto& arr, OpClass c, double v) {
    arr[static_cast<std::size_t>(c)] = v;
  };
  set(s, OpClass::FlopAdd, 0.5);
  set(s, OpClass::FlopMul, 0.5);
  set(s, OpClass::FlopFma, 0.5);
  set(s, OpClass::FlopDiv, 12.0);
  set(s, OpClass::FlopSqrt, 14.0);
  set(s, OpClass::FlopCmp, 0.5);
  set(s, OpClass::LoadContig, 0.5);
  set(s, OpClass::StoreContig, 1.0);
  set(s, OpClass::LoadGather, 1.0);
  set(s, OpClass::StoreScatter, 1.5);
  set(s, OpClass::Reduce, 1.0);
  set(s, OpClass::Select, 0.5);
  set(s, OpClass::Predicate, 0.5);
  set(s, OpClass::IntOp, 0.25);
  set(s, OpClass::Branch, 1.0);

  // Vector CPIs: two 512-bit FLA pipes → 0.5 CPI for pipelined FP vector
  // ops; gathers crack into per-element micro-ops (8 lanes ≈ 4 cycles);
  // horizontal reductions serialize across lanes.
  auto& v = m.cpi_vector;
  v.fill(1.0);
  set(v, OpClass::FlopAdd, 0.5);
  set(v, OpClass::FlopMul, 0.5);
  set(v, OpClass::FlopFma, 0.5);
  set(v, OpClass::FlopDiv, 32.0);
  set(v, OpClass::FlopSqrt, 36.0);
  set(v, OpClass::FlopCmp, 0.5);
  set(v, OpClass::LoadContig, 0.5);
  set(v, OpClass::StoreContig, 1.0);
  set(v, OpClass::LoadGather, 4.0);
  set(v, OpClass::StoreScatter, 6.0);
  set(v, OpClass::Reduce, 6.0);
  set(v, OpClass::Select, 0.5);
  set(v, OpClass::Predicate, 0.5);
  set(v, OpClass::IntOp, 0.5);
  set(v, OpClass::Branch, 1.0);
  return m;
}

MachineSpec MachineSpec::generic_x86() {
  MachineSpec m = a64fx();
  m.name = "generic x86-64 (reference)";
  m.freq_hz = 3.0e9;
  m.sve_bits = 256;  // AVX2-class
  m.cores_per_cmg = 8;
  m.cmgs_per_node = 1;
  m.l1.capacity_bytes = 32 * 1024;
  m.l1.line_bytes = 64;
  m.l1.associativity = 8;
  m.l1.bytes_per_cycle_per_core = 64.0;
  m.l1.latency_cycles = 4.0;
  m.l2.capacity_bytes = 1ull * 1024 * 1024;
  m.l2.line_bytes = 64;
  m.l2.associativity = 16;
  m.l2.bytes_per_cycle_per_core = 24.0;
  m.l2.latency_cycles = 14.0;
  m.hbm_bw_per_cmg = 40e9;  // DDR4 dual channel
  m.hbm_latency_cycles = 300.0;
  return m;
}

}  // namespace v2d::sim
