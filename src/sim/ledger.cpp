#include "sim/ledger.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace v2d::sim {

RegionCost& RegionCost::operator+=(const RegionCost& o) {
  counts += o.counts;
  compute_cycles += o.compute_cycles;
  memory_cycles += o.memory_cycles;
  overhead_cycles += o.overhead_cycles;
  total_cycles += o.total_cycles;
  comm_seconds += o.comm_seconds;
  comm_messages += o.comm_messages;
  comm_bytes += o.comm_bytes;
  return *this;
}

void CostLedger::add_kernel(const std::string& region,
                            const KernelCounts& counts,
                            const CostBreakdown& cost) {
  RegionCost& r = regions_[region];
  r.counts += counts;
  r.compute_cycles += cost.compute_cycles;
  r.memory_cycles += cost.memory_cycles;
  r.overhead_cycles += cost.overhead_cycles;
  r.total_cycles += cost.total_cycles();
}

void CostLedger::add_comm(const std::string& region, double seconds,
                          std::uint64_t messages, std::uint64_t bytes) {
  V2D_REQUIRE(seconds >= 0.0, "communication time cannot be negative");
  RegionCost& r = regions_[region];
  r.comm_seconds += seconds;
  r.comm_messages += messages;
  r.comm_bytes += bytes;
}

void CostLedger::merge(const CostLedger& o) {
  for (const auto& [name, cost] : o.regions_) regions_[name] += cost;
}

void CostLedger::clear() { regions_.clear(); }

bool CostLedger::has(const std::string& region) const {
  return regions_.count(region) != 0;
}

const RegionCost& CostLedger::at(const std::string& region) const {
  auto it = regions_.find(region);
  V2D_REQUIRE(it != regions_.end(), "no such ledger region: " + region);
  return it->second;
}

double CostLedger::total_cycles() const {
  double t = 0.0;
  for (const auto& [_, r] : regions_) t += r.total_cycles;
  return t;
}

double CostLedger::total_comm_seconds() const {
  double t = 0.0;
  for (const auto& [_, r] : regions_) t += r.comm_seconds;
  return t;
}

std::uint64_t CostLedger::total_flops() const {
  std::uint64_t t = 0;
  for (const auto& [_, r] : regions_) t += r.counts.flops();
  return t;
}

std::uint64_t CostLedger::total_bytes() const {
  std::uint64_t t = 0;
  for (const auto& [_, r] : regions_) t += r.counts.bytes_moved();
  return t;
}

std::vector<std::string> CostLedger::by_cost() const {
  std::vector<std::string> names;
  names.reserve(regions_.size());
  for (const auto& [name, _] : regions_) names.push_back(name);
  std::sort(names.begin(), names.end(), [&](const auto& a, const auto& b) {
    const double ca = regions_.at(a).total_cycles + 1e9 * regions_.at(a).comm_seconds;
    const double cb = regions_.at(b).total_cycles + 1e9 * regions_.at(b).comm_seconds;
    if (ca != cb) return ca > cb;
    return a < b;
  });
  return names;
}

}  // namespace v2d::sim
