#pragma once
/// \file machine.hpp
/// \brief Hardware description of the simulated platform.
///
/// The default is the Fujitsu A64FX as deployed in Ookami's HPE Apollo 80:
/// 4 core-memory-groups (CMGs) of 12 cores at 1.8 GHz, 64 KiB L1 per core,
/// 8 MiB L2 per CMG, HBM2 at ~256 GB/s per CMG, 512-bit SVE.  All numbers
/// come from public A64FX documentation; they are machine capability, not
/// calibration — compiler quality lives in CodegenFactors.

#include <array>
#include <cstdint>
#include <string>

#include "sim/isa.hpp"

namespace v2d::sim {

/// Cache / memory level reached by a kernel's working set.
enum class MemLevel : std::uint8_t { L1 = 0, L2, HBM, kCount };

const char* mem_level_name(MemLevel l);

struct CacheLevelSpec {
  std::uint64_t capacity_bytes = 0;
  std::uint32_t line_bytes = 256;
  std::uint32_t associativity = 4;
  /// Achievable bandwidth per core in bytes/cycle when this level serves
  /// the stream (load+store combined, stream-triad style).
  double bytes_per_cycle_per_core = 0.0;
  /// Load-to-use latency in cycles (used by the latency-bound correction).
  double latency_cycles = 0.0;
};

struct MachineSpec {
  std::string name;
  double freq_hz = 1.8e9;

  // --- SIMD ---
  std::uint32_t sve_bits = 512;       ///< hardware vector width
  std::uint32_t fp_pipes_vector = 2;  ///< FLA pipes usable by SVE
  std::uint32_t fp_pipes_scalar = 2;  ///< scalar FP issue per cycle

  // --- topology ---
  std::uint32_t cores_per_cmg = 12;
  std::uint32_t cmgs_per_node = 4;

  // --- memory hierarchy ---
  CacheLevelSpec l1;   ///< per core
  CacheLevelSpec l2;   ///< per CMG (shared by its cores)
  /// HBM bandwidth per CMG in bytes/second (shared by its cores).
  double hbm_bw_per_cmg = 256e9;
  double hbm_latency_cycles = 260.0;

  /// Base cycles-per-instruction for each op class, by execution mode.
  /// Vector CPIs are per *instruction* (so an 8-lane FMA still costs
  /// cpi_vector[FlopFma] cycles when pipelined).
  std::array<double, kNumOpClasses> cpi_scalar{};
  std::array<double, kNumOpClasses> cpi_vector{};

  std::uint32_t cores_per_node() const { return cores_per_cmg * cmgs_per_node; }
  std::uint32_t lanes_f64() const { return sve_bits / 64; }

  double cpi(OpClass c, ExecMode m) const {
    const auto i = static_cast<std::size_t>(c);
    return m == ExecMode::SVE ? cpi_vector[i] : cpi_scalar[i];
  }

  /// Bytes/cycle one core can move when its working set resides at `level`
  /// and `sharers` cores of the same CMG are streaming simultaneously.
  double bytes_per_cycle(MemLevel level, std::uint32_t sharers) const;

  /// The Ookami node: Fujitsu A64FX FX700 at 1.8 GHz.
  static MachineSpec a64fx();

  /// A generic x86 reference machine (used by tests to check that the
  /// model responds to machine parameters, and by the native microbench
  /// docs for context).
  static MachineSpec generic_x86();
};

}  // namespace v2d::sim
