#include "sim/cache.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace v2d::sim {

namespace {
bool is_pow2(std::uint64_t v) { return v && (v & (v - 1)) == 0; }
}  // namespace

SetAssocCache::SetAssocCache(std::uint64_t capacity_bytes,
                             std::uint32_t line_bytes,
                             std::uint32_t associativity)
    : line_bytes_(line_bytes), assoc_(associativity) {
  V2D_REQUIRE(is_pow2(line_bytes), "cache line size must be a power of two");
  V2D_REQUIRE(associativity >= 1, "associativity must be >= 1");
  const std::uint64_t lines = capacity_bytes / line_bytes;
  V2D_REQUIRE(lines % associativity == 0,
              "capacity must be divisible by line size * associativity");
  num_sets_ = static_cast<std::uint32_t>(lines / associativity);
  V2D_REQUIRE(is_pow2(num_sets_), "number of sets must be a power of two");
  lines_.resize(static_cast<std::size_t>(num_sets_) * assoc_);
}

bool SetAssocCache::access(std::uint64_t addr, bool is_write) {
  const std::uint64_t line_addr = addr / line_bytes_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr & (num_sets_ - 1));
  const std::uint64_t tag = line_addr >> __builtin_ctz(num_sets_);
  Line* base = &lines_[static_cast<std::size_t>(set) * assoc_];
  ++tick_;

  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == tag) {
      ln.lru = tick_;
      ln.dirty = ln.dirty || is_write;
      ++hits_;
      return true;
    }
  }
  // Miss: pick invalid way or LRU victim.
  Line* victim = base;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Line& ln = base[w];
    if (!ln.valid) {
      victim = &ln;
      break;
    }
    if (ln.lru < victim->lru) victim = &ln;
  }
  if (victim->valid && victim->dirty) ++writebacks_;
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru = tick_;
  ++misses_;
  return false;
}

std::uint64_t SetAssocCache::access_range(std::uint64_t addr, std::uint64_t len,
                                          bool is_write) {
  std::uint64_t hit_count = 0;
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + (len ? len - 1 : 0)) / line_bytes_;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (access(line * line_bytes_, is_write)) ++hit_count;
  }
  return hit_count;
}

void SetAssocCache::reset() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  tick_ = hits_ = misses_ = writebacks_ = 0;
}

CacheHierarchy::CacheHierarchy(const MachineSpec& spec)
    : l1_(spec.l1.capacity_bytes, spec.l1.line_bytes, spec.l1.associativity),
      l2_(spec.l2.capacity_bytes, spec.l2.line_bytes, spec.l2.associativity) {}

void CacheHierarchy::access_range(std::uint64_t addr, std::uint64_t len,
                                  bool is_write) {
  const std::uint32_t line = l1_.line_bytes();
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + (len ? len - 1 : 0)) / line;
  for (std::uint64_t ln = first; ln <= last; ++ln) {
    const std::uint64_t a = ln * line;
    if (!l1_.access(a, is_write)) {
      if (!l2_.access(a, is_write)) {
        memory_bytes_ += line;
      }
    }
  }
}

void CacheHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  memory_bytes_ = 0;
}

MemLevel classify_working_set(std::uint64_t bytes, const MachineSpec& spec,
                              std::uint32_t ranks_on_cmg) {
  V2D_REQUIRE(ranks_on_cmg >= 1, "ranks_on_cmg must be >= 1");
  if (bytes <= spec.l1.capacity_bytes) return MemLevel::L1;
  const std::uint64_t l2_share =
      spec.l2.capacity_bytes / std::max<std::uint32_t>(1, ranks_on_cmg);
  if (bytes <= l2_share) return MemLevel::L2;
  return MemLevel::HBM;
}

}  // namespace v2d::sim
