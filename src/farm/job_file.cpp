#include "farm/job_file.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "support/error.hpp"
#include "support/options.hpp"

namespace v2d::farm {

namespace {

std::string strip(const std::string& s) {
  const auto a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return {};
  const auto b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

}  // namespace

FarmJob parse_job_line(const std::string& line,
                       const std::string& default_name) {
  std::string body = line;
  std::string name = default_name;

  // Optional `name:` label — a first token that ends in ':' and is not an
  // option.
  const std::string head = strip(body);
  if (!head.empty() && head[0] != '-') {
    const auto colon = head.find(':');
    const auto space = head.find_first_of(" \t");
    if (colon != std::string::npos && (space == std::string::npos ||
                                       colon < space)) {
      name = strip(head.substr(0, colon));
      V2D_REQUIRE(!name.empty(), "empty job name before ':'");
      body = head.substr(colon + 1);
    }
  }

  std::vector<std::string> tokens;
  std::istringstream is(body);
  for (std::string tok; is >> tok;) tokens.push_back(tok);
  V2D_REQUIRE(!tokens.empty(), "job line has no options");

  std::vector<const char*> argv;
  argv.reserve(tokens.size() + 1);
  argv.push_back("v2d-farm");
  for (const auto& t : tokens) argv.push_back(t.c_str());

  Options opt;
  core::RunConfig::register_options(opt);
  opt.parse(static_cast<int>(argv.size()), argv.data());
  V2D_REQUIRE(opt.positional().empty(),
              "unexpected positional argument '" + opt.positional().front() +
                  "' in job line");

  FarmJob job;
  job.name = std::move(name);
  job.cfg = core::RunConfig::from_options(opt);
  return job;
}

std::vector<FarmJob> parse_job_file(const std::string& path) {
  std::ifstream in(path);
  V2D_REQUIRE(in.good(), "cannot open job file '" + path + "'");

  std::vector<FarmJob> jobs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (strip(line).empty()) continue;
    try {
      jobs.push_back(parse_job_line(
          line, "job-" + std::to_string(jobs.size() + 1)));
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
    for (std::size_t i = 0; i + 1 < jobs.size(); ++i)
      V2D_REQUIRE(jobs[i].name != jobs.back().name,
                  path + ":" + std::to_string(lineno) +
                      ": duplicate job name '" + jobs.back().name + "'");
  }
  V2D_REQUIRE(!jobs.empty(), "job file '" + path +
                  "' defines no jobs (empty or comment-only)");
  return jobs;
}

}  // namespace v2d::farm
