#pragma once
/// \file job_file.hpp
/// \brief The `v2d --farm` job-list format.
///
/// One job per line, using exactly the v2d driver's command-line options:
///
///   # comments and blank lines are skipped
///   pulse-hi: --problem gaussian-pulse --steps 10 --nx1 64 --nx2 32
///   sedov:    --problem sedov-radhydro --steps 5 --compilers cray,gnu
///   --problem hotspot-absorber --steps 5        # unnamed -> "job-3"
///
/// An optional `name:` prefix labels the job (names must be unique;
/// unnamed jobs get "job-<line-order>").  The rest of the line is split
/// on whitespace (no quoting) and parsed through the same
/// Options/RunConfig pipeline as the v2d command line, so every solo-run
/// knob — grid, decomposition, solver, VL, profiles, fuse, checkpoints —
/// works per job, and an unknown option fails with the offending line
/// number.
///
/// `--fuse off|on|plan` is a per-job knob: jobs with different fuse modes
/// can share one farm safely, because primitive and fused-group memo
/// entries live in disjoint key spaces of the shared per-VL count cache
/// (see vla::Context::memo_counts).

#include <string>
#include <vector>

#include "farm/farm.hpp"

namespace v2d::farm {

/// Parse a job list from `path`.  Throws v2d::Error (with line numbers)
/// on unreadable files, malformed lines, or duplicate job names.
std::vector<FarmJob> parse_job_file(const std::string& path);

/// Parse one job line (exposed for tests).  `default_name` is used when
/// the line carries no `name:` prefix.
FarmJob parse_job_line(const std::string& line,
                       const std::string& default_name);

}  // namespace v2d::farm
