#include "farm/farm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace v2d::farm {

namespace {

/// One resident session.
struct Active {
  std::size_t index = 0;  ///< position in jobs_ / FarmSummary::jobs
  std::unique_ptr<core::Simulation> sim;
  int admitted_at_step = 0;  ///< steps_taken() when admitted (restart base)
  std::string error;
};

JobResult make_result(const FarmJob& job, const Active& a) {
  JobResult r;
  r.name = job.name;
  r.problem = job.cfg.problem;
  r.error = a.error;
  const core::Simulation& sim = *a.sim;
  r.steps = sim.steps_taken();
  r.farmed_steps = sim.steps_taken() - a.admitted_at_step;
  r.sim_time = sim.time();
  if (a.error.empty()) {
    r.analytic_error = sim.analytic_error();
    r.total_energy = sim.total_energy();
  }
  for (std::size_t p = 0; p < sim.exec().nprofiles(); ++p)
    r.profile_elapsed.emplace_back(sim.exec().profile(p).name(),
                                   sim.elapsed(p));
  return r;
}

}  // namespace

FarmScheduler::FarmScheduler(FarmOptions opt) : opt_(opt) {}

std::size_t FarmScheduler::add(FarmJob job) {
  V2D_REQUIRE(!job.name.empty(), "farm job needs a name");
  for (const auto& j : jobs_) {
    V2D_REQUIRE(j.name != job.name,
                "duplicate farm job name '" + job.name + "'");
    V2D_REQUIRE(job.cfg.checkpoint_path.empty() ||
                    j.cfg.checkpoint_path != job.cfg.checkpoint_path,
                "farm jobs '" + j.name + "' and '" + job.name +
                    "' share checkpoint path '" + job.cfg.checkpoint_path +
                    "'");
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

FarmSummary FarmScheduler::run() {
  FarmSummary out;
  out.jobs.resize(jobs_.size());

  // The farm owns the host pool for the duration of the batch; sessions
  // constructed with a SessionShared leave it alone.
  set_host_threads(opt_.host_threads);

  const std::size_t cap = opt_.max_concurrent > 0
                              ? static_cast<std::size_t>(opt_.max_concurrent)
                              : std::max<std::size_t>(jobs_.size(), 1);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Active> active;
  std::size_t next = 0;
  while (!active.empty() || next < jobs_.size()) {
    // Admit queued jobs up to the residency cap.  Construction and
    // restart run on the scheduler thread — setup is unpriced and cheap
    // relative to stepping, and it keeps registry/IO access serial.
    while (active.size() < cap && next < jobs_.size()) {
      Active a;
      a.index = next;
      const FarmJob& job = jobs_[next];
      try {
        a.sim = std::make_unique<core::Simulation>(job.cfg, opt_.machine,
                                                   &shared_);
        if (!job.cfg.restart_path.empty())
          a.sim->restart(job.cfg.restart_path);
        a.admitted_at_step = a.sim->steps_taken();
      } catch (const std::exception& e) {
        a.error = e.what();
      }
      active.push_back(std::move(a));
      ++next;
    }

    // One wave: every resident session takes one step, concurrently on
    // the host pool.  Each step's own par_ranks executes inline inside
    // its wave task, so cross-session and intra-step parallelism share
    // the same lanes without oversubscription.
    parallel_for(static_cast<int>(active.size()), [&](int i) {
      Active& a = active[static_cast<std::size_t>(i)];
      if (!a.error.empty() || a.sim->finished()) return;
      try {
        a.sim->drive_step();
      } catch (const std::exception& e) {
        a.error = e.what();
      }
    });

    // Retire finished and failed sessions: final checkpoint, result row,
    // then destroy the session (releasing its workspace lease for the
    // next admission).
    for (auto it = active.begin(); it != active.end();) {
      const bool failed = !it->error.empty();
      if (!failed && !it->sim->finished()) {
        ++it;
        continue;
      }
      if (it->sim != nullptr) {
        if (!failed) {
          try {
            it->sim->finalize_checkpoints();
          } catch (const std::exception& e) {
            it->error = e.what();
          }
        }
        out.jobs[it->index] = make_result(jobs_[it->index], *it);
        if (it->error.empty() && opt_.on_job_complete)
          opt_.on_job_complete(it->index, *it->sim);
      } else {
        out.jobs[it->index].name = jobs_[it->index].name;
        out.jobs[it->index].problem = jobs_[it->index].cfg.problem;
        out.jobs[it->index].error = it->error;
      }
      it = active.erase(it);
    }
  }

  out.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& r : out.jobs) {
    if (!r.error.empty()) ++out.failed;
    out.scenario_steps += static_cast<std::uint64_t>(
        std::max(r.farmed_steps, 0));
  }
  if (out.host_seconds > 0.0) {
    out.jobs_per_sec =
        static_cast<double>(jobs_.size() - out.failed) / out.host_seconds;
    out.steps_per_sec =
        static_cast<double>(out.scenario_steps) / out.host_seconds;
  }
  const auto [mh, mm] = shared_.memo_totals();
  out.memo_hits = mh;
  out.memo_misses = mm;
  const auto ps = shared_.price_memo()->stats();
  out.price_hits = ps.hits;
  out.price_misses = ps.misses;
  out.workspaces_created = shared_.workspace_pool().created();
  out.workspaces_reused = shared_.workspace_pool().reused();
  return out;
}

}  // namespace v2d::farm
