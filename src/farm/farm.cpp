#include "farm/farm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <fstream>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace v2d::farm {

namespace {

/// One resident session.
struct Active {
  std::size_t index = 0;  ///< position in jobs_ / FarmSummary::jobs
  std::unique_ptr<core::Simulation> sim;
  int admitted_at_step = 0;  ///< steps_taken() when admitted (restart base)
  std::string error;
};

/// Per-job state that outlives individual attempts: the consumable fault
/// schedule (a transient that fired stays fired across retries), the
/// accumulated recovery ledger, and the attempt/step counters the retry
/// policy and budgets run on.
struct JobState {
  int attempts = 0;
  long steps_driven = 0;  ///< farm-driven steps summed over all attempts
  std::unique_ptr<resilience::FaultInjector> injector;
  std::vector<resilience::RecoveryEvent> recovery;
};

/// A job waiting out its backoff.
struct Waiting {
  std::size_t index = 0;
  std::uint64_t resume_wave = 0;
};

bool file_exists(const std::string& path) {
  return !path.empty() && std::ifstream(path).good();
}

/// Failure classification for the result table's cause column.
std::string classify(const std::string& error) {
  if (error.find("numeric guard") != std::string::npos) return "guard";
  if (error.find("injected checkpoint I/O") != std::string::npos ||
      error.find("h5lite") != std::string::npos)
    return "io";
  if (error.find("injected session-step") != std::string::npos)
    return "injected";
  if (error.find("converge") != std::string::npos) return "solver";
  return "error";
}

JobResult make_result(const FarmJob& job, const Active& a,
                      const JobState& st, const std::string& cause) {
  JobResult r;
  r.name = job.name;
  r.problem = job.cfg.problem;
  r.error = a.error;
  r.cause = cause;
  r.attempts = std::max(st.attempts, 1);
  r.driven_steps = st.steps_driven;
  r.recovery = st.recovery;
  if (a.sim != nullptr) {
    const core::Simulation& sim = *a.sim;
    r.steps = sim.steps_taken();
    r.farmed_steps = sim.steps_taken() - a.admitted_at_step;
    r.sim_time = sim.time();
    if (a.error.empty()) {
      r.analytic_error = sim.analytic_error();
      r.total_energy = sim.total_energy();
    }
    for (std::size_t p = 0; p < sim.exec().nprofiles(); ++p)
      r.profile_elapsed.emplace_back(sim.exec().profile(p).name(),
                                     sim.elapsed(p));
  }
  return r;
}

}  // namespace

FarmScheduler::FarmScheduler(FarmOptions opt) : opt_(std::move(opt)) {}

std::size_t FarmScheduler::add(FarmJob job) {
  V2D_REQUIRE(!job.name.empty(), "farm job needs a name");
  for (const auto& j : jobs_) {
    V2D_REQUIRE(j.name != job.name,
                "duplicate farm job name '" + job.name + "'");
    V2D_REQUIRE(job.cfg.checkpoint_path.empty() ||
                    j.cfg.checkpoint_path != job.cfg.checkpoint_path,
                "farm jobs '" + j.name + "' and '" + job.name +
                    "' share checkpoint path '" + job.cfg.checkpoint_path +
                    "'");
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

FarmSummary FarmScheduler::run() {
  V2D_REQUIRE(!jobs_.empty(),
              "farm has no jobs to run (empty or comment-only job file?)");
  FarmSummary out;
  out.jobs.resize(jobs_.size());

  // The farm owns the host pool for the duration of the batch; sessions
  // constructed with a SessionShared leave it alone.
  set_host_threads(opt_.host_threads);

  const std::size_t cap = opt_.max_concurrent > 0
                              ? static_cast<std::size_t>(opt_.max_concurrent)
                              : std::max<std::size_t>(jobs_.size(), 1);

  std::vector<JobState> state(jobs_.size());
  if (opt_.fault_plan.active()) {
    for (std::size_t i = 0; i < jobs_.size(); ++i)
      state[i].injector = std::make_unique<resilience::FaultInjector>(
          opt_.fault_plan.schedule(jobs_[i].name, 0, jobs_[i].cfg.steps));
  }

  // Construction and restart run on the scheduler thread — setup is
  // unpriced and cheap relative to stepping, and it keeps registry/IO
  // access serial.  A retry resumes from the job's own latest finalized
  // checkpoint when one exists (atomic writes guarantee any file on the
  // real path is complete); an unreadable checkpoint demotes the retry to
  // the job's original starting point rather than killing it.
  auto admit = [&](std::size_t idx) {
    Active a;
    a.index = idx;
    const FarmJob& job = jobs_[idx];
    JobState& st = state[idx];
    ++st.attempts;
    const bool is_retry = st.attempts > 1;
    try {
      a.sim = std::make_unique<core::Simulation>(job.cfg, opt_.machine,
                                                 &shared_);
      a.sim->set_fault_injector(st.injector.get());
      std::string resume = job.cfg.restart_path;
      if (is_retry && file_exists(job.cfg.checkpoint_path)) {
        try {
          a.sim->restart(job.cfg.checkpoint_path);
          st.recovery.push_back(
              {a.sim->steps_taken(), "retry",
               "attempt " + std::to_string(st.attempts) + " resuming from '" +
                   job.cfg.checkpoint_path + "' at step " +
                   std::to_string(a.sim->steps_taken()),
               st.attempts});
          resume.clear();
        } catch (const std::exception& e) {
          // Rebuild: a failed restart may have half-restored the session.
          st.recovery.push_back({0, "retry",
                                 "checkpoint '" + job.cfg.checkpoint_path +
                                     "' unreadable (" + e.what() +
                                     "); attempt " +
                                     std::to_string(st.attempts) +
                                     " restarting from scratch",
                                 st.attempts});
          a.sim = std::make_unique<core::Simulation>(job.cfg, opt_.machine,
                                                     &shared_);
          a.sim->set_fault_injector(st.injector.get());
        }
      } else if (is_retry) {
        st.recovery.push_back({0, "retry",
                               "attempt " + std::to_string(st.attempts) +
                                   " restarting from scratch (no finalized "
                                   "checkpoint)",
                               st.attempts});
      }
      if (!resume.empty()) a.sim->restart(resume);
      a.admitted_at_step = a.sim->steps_taken();
    } catch (const std::exception& e) {
      a.error = e.what();
    }
    return a;
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Active> active;
  std::vector<Waiting> waiting;
  std::size_t next = 0;
  std::uint64_t wave = 0;
  while (!active.empty() || next < jobs_.size() || !waiting.empty()) {
    // Re-admit backed-off jobs whose wave has come (in job order, for a
    // deterministic admission sequence), then fresh jobs, up to the cap.
    std::vector<std::size_t> due;
    for (auto it = waiting.begin(); it != waiting.end();) {
      if (it->resume_wave <= wave) {
        due.push_back(it->index);
        it = waiting.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(due.begin(), due.end());
    for (const std::size_t idx : due) active.push_back(admit(idx));
    while (active.size() < cap && next < jobs_.size()) {
      active.push_back(admit(next));
      ++next;
    }

    // One wave: every resident session takes one step, concurrently on
    // the host pool.  Each step's own par_ranks executes inline inside
    // its wave task, so cross-session and intra-step parallelism share
    // the same lanes without oversubscription.
    parallel_for(static_cast<int>(active.size()), [&](int i) {
      Active& a = active[static_cast<std::size_t>(i)];
      if (!a.error.empty() || a.sim->finished()) return;
      try {
        a.sim->drive_step();
      } catch (const std::exception& e) {
        a.error = e.what();
      }
    });

    // Retire finished sessions, quarantine or back off failed ones.
    for (auto it = active.begin(); it != active.end();) {
      JobState& st = state[it->index];
      bool failed = !it->error.empty();
      std::string cause = failed ? classify(it->error) : "";

      // Budgets: a job still running past its step or sim-clock budget
      // becomes a deadline failure (no retry — more attempts only burn
      // more budget).
      if (!failed && it->sim != nullptr && !it->sim->finished()) {
        const long driven =
            st.steps_driven + (it->sim->steps_taken() - it->admitted_at_step);
        if (opt_.job_step_budget > 0 && driven >= opt_.job_step_budget) {
          it->error = "job step budget (" +
                      std::to_string(opt_.job_step_budget) +
                      " driven steps) exhausted at step " +
                      std::to_string(it->sim->steps_taken());
          failed = true;
          cause = "deadline";
        } else if (opt_.job_sim_budget > 0.0 &&
                   it->sim->elapsed(0) > opt_.job_sim_budget) {
          it->error = "job simulated-time budget exceeded at step " +
                      std::to_string(it->sim->steps_taken());
          failed = true;
          cause = "deadline";
        }
      }

      if (!failed && !it->sim->finished()) {
        ++it;
        continue;
      }

      // The final checkpoint is part of the job: a write failure here
      // (injected or real) fails the attempt and goes through the same
      // retry path as a mid-run failure.
      if (!failed && it->sim != nullptr) {
        try {
          it->sim->finalize_checkpoints();
        } catch (const std::exception& e) {
          it->error = e.what();
          failed = true;
          cause = classify(it->error);
        }
      }

      // Fold the attempt's session-level recovery events and step count
      // into the job's persistent state before the session goes away.
      if (it->sim != nullptr) {
        const auto& session_events = it->sim->recovery().events;
        st.recovery.insert(st.recovery.end(), session_events.begin(),
                           session_events.end());
        st.steps_driven += it->sim->steps_taken() - it->admitted_at_step;
      }

      if (failed && cause != "deadline" && st.attempts <= opt_.max_retries) {
        // Back off, then retry: the k-th retry waits min(base << (k-1),
        // cap) waves.  The failed session is destroyed now; re-admission
        // constructs a fresh one from the latest finalized checkpoint.
        const int k = st.attempts;
        const long base = std::max<long>(opt_.backoff_base_waves, 1);
        const int shift = std::min(k - 1, 30);
        const long backoff =
            std::min(base << shift,
                     std::max<long>(opt_.backoff_cap_waves, 1));
        st.recovery.push_back(
            {it->sim != nullptr ? it->sim->steps_taken() : 0, "backoff",
             "attempt " + std::to_string(k) + " failed (" + cause + ": " +
                 it->error + "); backing off " + std::to_string(backoff) +
                 " wave(s)",
             backoff});
        waiting.push_back({it->index, wave + static_cast<std::uint64_t>(
                                                 backoff)});
        ++out.retries;
        it = active.erase(it);
        continue;
      }

      if (failed && st.attempts > opt_.max_retries && opt_.max_retries > 0) {
        cause = "quarantined: " + cause;
        st.recovery.push_back({0, "quarantine",
                               "retries exhausted after " +
                                   std::to_string(st.attempts) +
                                   " attempt(s): " + it->error,
                               st.attempts});
        ++out.quarantined;
      }

      out.jobs[it->index] = make_result(jobs_[it->index], *it, st, cause);
      if (it->error.empty() && opt_.on_job_complete)
        opt_.on_job_complete(it->index, *it->sim);
      it = active.erase(it);
    }
    ++wave;
  }
  out.waves = wave;

  out.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& r : out.jobs) {
    if (!r.error.empty()) ++out.failed;
    out.scenario_steps +=
        static_cast<std::uint64_t>(std::max(r.driven_steps, 0L));
  }
  // Throughput rates only when the timer resolved — a sub-microsecond
  // batch (trivial jobs on a coarse clock) must not divide by ~0 and
  // report absurd rates.
  if (out.host_seconds > 1e-9) {
    out.jobs_per_sec =
        static_cast<double>(jobs_.size() - out.failed) / out.host_seconds;
    out.steps_per_sec =
        static_cast<double>(out.scenario_steps) / out.host_seconds;
  }
  const auto [mh, mm] = shared_.memo_totals();
  out.memo_hits = mh;
  out.memo_misses = mm;
  const auto ps = shared_.price_memo()->stats();
  out.price_hits = ps.hits;
  out.price_misses = ps.misses;
  out.workspaces_created = shared_.workspace_pool().created();
  out.workspaces_reused = shared_.workspace_pool().reused();
  return out;
}

}  // namespace v2d::farm
