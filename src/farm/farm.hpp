#pragma once
/// \file farm.hpp
/// \brief Batched multi-scenario pricing service ("pricing as a service").
///
/// A FarmScheduler owns a queue of jobs — heterogeneous RunConfigs:
/// different problems, grids, vector lengths, compiler profiles — and
/// drives them through one long-lived process.  Per wave it steps every
/// active session once, concurrently on the process host pool (each step
/// still runs its own par_ranks inside, which executes inline on the
/// pool's lanes), and admits queued jobs as running ones finish.  All
/// sessions share one SessionShared runtime: the per-VL analytic-count
/// memo, the same-shape PriceMemo, and the SolverWorkspace pool — so a
/// batch of same-shape jobs derives each closed-form KernelCounts shape
/// and each price once per process instead of once per job.
///
/// Isolation contract: jobs share *only* pure-function caches and
/// scrubbed scratch.  Each job keeps its own ExecModel (clocks, ledgers),
/// fields and checkpoints, and its trajectory, recorded counts and
/// simulated clocks are bit-identical to running the job alone — the farm
/// is purely a host-throughput optimization, pinned by the farm
/// determinism suite.  Wave interleaving carries no numerical meaning.
///
/// A job that throws (non-convergence, injected fault, bad restart file)
/// is retried with capped exponential backoff — measured in waves —
/// resuming from its own latest finalized checkpoint when it has one,
/// until FarmOptions::max_retries is exhausted; then it is quarantined
/// with its cause and full recovery ledger in its JobResult, and the
/// remaining jobs keep running.  Recovery is deterministic: retry resumes
/// restore clocks/ledgers bit-exactly, so a job that faults and retries
/// finishes bit-identical to the same job never faulted (pinned by
/// tests/test_resilience.cpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/session_shared.hpp"
#include "core/v2d.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/recovery.hpp"

namespace v2d::farm {

/// One queued run: a name (unique within the farm, used for reporting)
/// plus the full RunConfig a solo run would use.  `host_threads` inside
/// the config is ignored — the farm sizes the host pool once for the
/// whole batch (FarmOptions::host_threads).
struct FarmJob {
  std::string name;
  core::RunConfig cfg;
};

struct FarmOptions {
  /// Host pool lanes for the whole batch (0 = hardware concurrency).
  int host_threads = 0;
  /// Sessions resident at once (0 = all jobs).  Bounds peak memory: a
  /// session's fields/scratch live only while it is active.
  int max_concurrent = 0;
  /// Simulated machine every job is priced on.  One farm prices on one
  /// machine — the shared PriceMemo requires it.
  sim::MachineSpec machine = sim::MachineSpec::a64fx();
  /// Observer called on the scheduler thread for each *successful* job,
  /// after its final checkpoint and just before its session is destroyed
  /// — the determinism suite and benches capture fields/ledgers/clocks
  /// here for exact comparison against solo runs.
  std::function<void(std::size_t job_index, core::Simulation&)>
      on_job_complete;

  /// Seeded fault injection (inactive by default): every job gets a
  /// deterministic schedule derived from (seed, job name).
  resilience::FaultPlan fault_plan;
  /// Failed jobs are re-admitted up to this many times (0 = the pre-retry
  /// behavior: one strike and out).  Each retry resumes from the job's
  /// latest finalized checkpoint when its config writes one, from its
  /// original restart point otherwise.
  int max_retries = 0;
  /// Exponential backoff before re-admission, measured in scheduler
  /// waves: the k-th retry waits min(base << (k-1), cap) waves.
  int backoff_base_waves = 1;
  int backoff_cap_waves = 8;
  /// Per-job budgets (0 = unlimited): farm-driven steps summed across all
  /// attempts, and simulated seconds on profile 0.  A job exceeding
  /// either is quarantined as a deadline failure — the fate of runaway
  /// retry loops and jobs that can never finish.
  long job_step_budget = 0;
  double job_sim_budget = 0.0;
};

/// Outcome of one job.  `error` is empty on success; on failure the other
/// result fields hold whatever the job had reached when it threw.
struct JobResult {
  std::string name;
  std::string problem;
  std::string error;
  int steps = 0;             ///< total steps taken (includes restart base)
  int farmed_steps = 0;      ///< steps the farm drove in the final attempt
  double sim_time = 0.0;     ///< simulated physics time reached
  double analytic_error = 0.0;
  double total_energy = 0.0;
  /// Simulated wall-clock per compiler profile: (profile name, seconds) —
  /// the Table I numbers, bit-identical to a solo run's.
  std::vector<std::pair<std::string, double>> profile_elapsed;
  /// Sessions admitted for this job (1 = finished first try).
  int attempts = 1;
  /// Farm-driven steps summed over every attempt (re-driven steps after a
  /// retry count again — the cost of recovery).
  long driven_steps = 0;
  /// Failure classification for the result table ("" on success):
  /// "guard", "solver", "io", "injected", "setup", "deadline", or
  /// "error"; prefixed with "quarantined: " once retries are exhausted.
  std::string cause;
  /// Full recovery ledger accumulated across attempts: injected faults,
  /// solver fallbacks, retries, backoffs, quarantine.
  std::vector<resilience::RecoveryEvent> recovery;
};

/// Aggregate throughput + shared-runtime statistics for one run().
struct FarmSummary {
  std::vector<JobResult> jobs;
  std::size_t failed = 0;
  /// Retry attempts across all jobs (admissions beyond each job's first).
  std::uint64_t retries = 0;
  /// Jobs that failed with retries exhausted (subset of `failed`).
  std::uint64_t quarantined = 0;
  /// Scheduler waves the batch took (backoff is measured in these).
  std::uint64_t waves = 0;
  double host_seconds = 0.0;
  std::uint64_t scenario_steps = 0;  ///< farm-driven steps, all jobs
  double jobs_per_sec = 0.0;
  double steps_per_sec = 0.0;
  /// Analytic count-memo totals across the shared per-VL families.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// Same-shape price-memo totals.
  std::uint64_t price_hits = 0;
  std::uint64_t price_misses = 0;
  /// Workspace pool: entries ever created vs acquisitions served by reuse.
  std::size_t workspaces_created = 0;
  std::uint64_t workspaces_reused = 0;
};

class FarmScheduler {
public:
  explicit FarmScheduler(FarmOptions opt = {});

  /// Queue a job; returns its index (JobResults come back in add order).
  /// Job names must be unique; non-empty checkpoint paths must be unique
  /// across jobs (two jobs writing one file would corrupt both).
  std::size_t add(FarmJob job);
  std::size_t job_count() const { return jobs_.size(); }

  /// Run every queued job to completion and report.  Call once.
  FarmSummary run();

  /// The runtime shared across this farm's sessions (tests inspect it).
  core::SessionShared& shared() { return shared_; }

private:
  FarmOptions opt_;
  std::vector<FarmJob> jobs_;
  core::SessionShared shared_;
};

}  // namespace v2d::farm
