#pragma once
/// \file farm.hpp
/// \brief Batched multi-scenario pricing service ("pricing as a service").
///
/// A FarmScheduler owns a queue of jobs — heterogeneous RunConfigs:
/// different problems, grids, vector lengths, compiler profiles — and
/// drives them through one long-lived process.  Per wave it steps every
/// active session once, concurrently on the process host pool (each step
/// still runs its own par_ranks inside, which executes inline on the
/// pool's lanes), and admits queued jobs as running ones finish.  All
/// sessions share one SessionShared runtime: the per-VL analytic-count
/// memo, the same-shape PriceMemo, and the SolverWorkspace pool — so a
/// batch of same-shape jobs derives each closed-form KernelCounts shape
/// and each price once per process instead of once per job.
///
/// Isolation contract: jobs share *only* pure-function caches and
/// scrubbed scratch.  Each job keeps its own ExecModel (clocks, ledgers),
/// fields and checkpoints, and its trajectory, recorded counts and
/// simulated clocks are bit-identical to running the job alone — the farm
/// is purely a host-throughput optimization, pinned by the farm
/// determinism suite.  Wave interleaving carries no numerical meaning.
///
/// A job that throws (non-convergence, bad restart file) is retired with
/// its error recorded in its JobResult; the remaining jobs keep running.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/session_shared.hpp"
#include "core/v2d.hpp"

namespace v2d::farm {

/// One queued run: a name (unique within the farm, used for reporting)
/// plus the full RunConfig a solo run would use.  `host_threads` inside
/// the config is ignored — the farm sizes the host pool once for the
/// whole batch (FarmOptions::host_threads).
struct FarmJob {
  std::string name;
  core::RunConfig cfg;
};

struct FarmOptions {
  /// Host pool lanes for the whole batch (0 = hardware concurrency).
  int host_threads = 0;
  /// Sessions resident at once (0 = all jobs).  Bounds peak memory: a
  /// session's fields/scratch live only while it is active.
  int max_concurrent = 0;
  /// Simulated machine every job is priced on.  One farm prices on one
  /// machine — the shared PriceMemo requires it.
  sim::MachineSpec machine = sim::MachineSpec::a64fx();
  /// Observer called on the scheduler thread for each *successful* job,
  /// after its final checkpoint and just before its session is destroyed
  /// — the determinism suite and benches capture fields/ledgers/clocks
  /// here for exact comparison against solo runs.
  std::function<void(std::size_t job_index, core::Simulation&)>
      on_job_complete;
};

/// Outcome of one job.  `error` is empty on success; on failure the other
/// result fields hold whatever the job had reached when it threw.
struct JobResult {
  std::string name;
  std::string problem;
  std::string error;
  int steps = 0;             ///< total steps taken (includes restart base)
  int farmed_steps = 0;      ///< steps the farm itself drove
  double sim_time = 0.0;     ///< simulated physics time reached
  double analytic_error = 0.0;
  double total_energy = 0.0;
  /// Simulated wall-clock per compiler profile: (profile name, seconds) —
  /// the Table I numbers, bit-identical to a solo run's.
  std::vector<std::pair<std::string, double>> profile_elapsed;
};

/// Aggregate throughput + shared-runtime statistics for one run().
struct FarmSummary {
  std::vector<JobResult> jobs;
  std::size_t failed = 0;
  double host_seconds = 0.0;
  std::uint64_t scenario_steps = 0;  ///< farm-driven steps, all jobs
  double jobs_per_sec = 0.0;
  double steps_per_sec = 0.0;
  /// Analytic count-memo totals across the shared per-VL families.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// Same-shape price-memo totals.
  std::uint64_t price_hits = 0;
  std::uint64_t price_misses = 0;
  /// Workspace pool: entries ever created vs acquisitions served by reuse.
  std::size_t workspaces_created = 0;
  std::uint64_t workspaces_reused = 0;
};

class FarmScheduler {
public:
  explicit FarmScheduler(FarmOptions opt = {});

  /// Queue a job; returns its index (JobResults come back in add order).
  /// Job names must be unique; non-empty checkpoint paths must be unique
  /// across jobs (two jobs writing one file would corrupt both).
  std::size_t add(FarmJob job);
  std::size_t job_count() const { return jobs_.size(); }

  /// Run every queued job to completion and report.  Call once.
  FarmSummary run();

  /// The runtime shared across this farm's sessions (tests inspect it).
  core::SessionShared& shared() { return shared_; }

private:
  FarmOptions opt_;
  std::vector<FarmJob> jobs_;
  core::SessionShared shared_;
};

}  // namespace v2d::farm
