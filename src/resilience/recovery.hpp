#pragma once
/// \file recovery.hpp
/// \brief The per-job recovery ledger: what went wrong and what was done.
///
/// Every recovery action — an injected fault firing, a solver fallback
/// engaging, a retry resuming from a checkpoint, a backoff wait, a
/// quarantine — appends one RecoveryEvent.  The farm accumulates a job's
/// events across all its attempts (session-level events are copied out
/// before a failed session is destroyed) and surfaces the full ledger in
/// the JobResult, so a post-mortem never depends on scraping logs.

#include <string>
#include <vector>

namespace v2d::resilience {

struct RecoveryEvent {
  int step = 0;         ///< session step the event is tied to (0 = farm-level)
  std::string action;   ///< short tag: "injected-nan", "solver-fallback",
                        ///< "retry", "backoff", "quarantine", ...
  std::string detail;   ///< human-readable specifics
  /// Action-dependent magnitude: backoff waves for "backoff", attempt
  /// number for "retry", call site for solver events.  Structured so tests
  /// can assert ordering without parsing `detail`.
  long value = 0;
};

struct RecoveryLedger {
  std::vector<RecoveryEvent> events;

  void record(int step, std::string action, std::string detail,
              long value = 0) {
    events.push_back({step, std::move(action), std::move(detail), value});
  }
  bool empty() const { return events.empty(); }
};

inline std::string format_event(const RecoveryEvent& ev) {
  std::string out;
  if (ev.step > 0) out += "step " + std::to_string(ev.step) + ": ";
  out += ev.action;
  if (!ev.detail.empty()) out += " — " + ev.detail;
  return out;
}

}  // namespace v2d::resilience
