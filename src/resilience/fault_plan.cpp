#include "resilience/fault_plan.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace v2d::resilience {

namespace {

/// FNV-1a, so the per-job stream depends on the name, not the add order.
std::uint64_t hash_name(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

FaultKind kind_from_name(const std::string& name) {
  if (name == "breakdown") return FaultKind::SolverBreakdown;
  if (name == "nan") return FaultKind::NanContaminate;
  if (name == "io") return FaultKind::CheckpointIo;
  if (name == "throw") return FaultKind::StepException;
  throw Error("fault spec: unknown fault kind '" + name +
              "' (expected breakdown|nan|io|throw)");
}

int parse_positive(const std::string& text, const char* what) {
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  V2D_REQUIRE(pos == text.size() && v > 0,
              std::string("fault spec: bad ") + what + " '" + text + "'");
  return v;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::SolverBreakdown: return "breakdown";
    case FaultKind::NanContaminate: return "nan";
    case FaultKind::CheckpointIo: return "io";
    case FaultKind::StepException: return "throw";
  }
  return "?";
}

FaultPlan::FaultPlan(std::uint64_t seed, const std::string& spec)
    : seed_(seed) {
  std::string clause;
  auto flush = [&]() {
    const std::string text = trim(clause);
    clause.clear();
    if (text.empty()) return;
    Clause c;
    std::string kind = text;
    if (const auto at = text.find('@'); at != std::string::npos) {
      kind = trim(text.substr(0, at));
      c.pinned_step = parse_positive(trim(text.substr(at + 1)), "step");
    } else if (const auto colon = text.find(':'); colon != std::string::npos) {
      kind = trim(text.substr(0, colon));
      c.count = parse_positive(trim(text.substr(colon + 1)), "count");
    }
    c.kind = kind_from_name(kind);
    clauses_.push_back(c);
  };
  for (const char ch : spec) {
    if (ch == ',' || ch == ';') {
      flush();
    } else {
      clause.push_back(ch);
    }
  }
  flush();
  V2D_REQUIRE(!active() || !clauses_.empty(),
              "fault spec '" + spec + "' defines no faults");
}

std::vector<FaultEvent> FaultPlan::schedule(const std::string& job,
                                            int first_step,
                                            int last_step) const {
  std::vector<FaultEvent> out;
  if (!active() || last_step <= first_step) return out;

  // One stream per (seed, job name): independent of add order, wave
  // interleaving and every other job in the batch.
  Rng rng(seed_ ^ hash_name(job));
  const auto range = static_cast<std::uint64_t>(last_step - first_step);
  std::set<std::pair<int, int>> taken;  // (kind, step) dedupe

  for (const Clause& c : clauses_) {
    const int want = c.pinned_step > 0 ? 1 : c.count;
    for (int k = 0; k < want; ++k) {
      FaultEvent ev;
      ev.kind = c.kind;
      if (c.pinned_step > 0) {
        ev.step = c.pinned_step;
      } else {
        // Bounded redraw on collision; a spec asking for more faults of a
        // kind than there are steps simply saturates.
        for (int tries = 0; tries < 64; ++tries) {
          ev.step = first_step + 1 + static_cast<int>(rng.below(range));
          if (taken.find({static_cast<int>(c.kind), ev.step}) == taken.end())
            break;
        }
      }
      if (c.kind == FaultKind::SolverBreakdown)
        ev.site = static_cast<int>(rng.below(3));
      if (ev.step <= first_step || ev.step > last_step) continue;
      if (!taken.insert({static_cast<int>(c.kind), ev.step}).second) continue;
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(), [](const FaultEvent& a,
                                       const FaultEvent& b) {
    if (a.step != b.step) return a.step < b.step;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  return out;
}

bool FaultInjector::take(FaultKind kind, int step) {
  for (FaultEvent& ev : events_) {
    if (!ev.consumed && ev.kind == kind && ev.step == step) {
      ev.consumed = true;
      return true;
    }
  }
  return false;
}

bool FaultInjector::take_breakdown(int step, int site) {
  for (FaultEvent& ev : events_) {
    if (!ev.consumed && ev.kind == FaultKind::SolverBreakdown &&
        ev.step == step && ev.site == site) {
      ev.consumed = true;
      return true;
    }
  }
  return false;
}

std::size_t FaultInjector::pending() const {
  std::size_t n = 0;
  for (const FaultEvent& ev : events_)
    if (!ev.consumed) ++n;
  return n;
}

}  // namespace v2d::resilience
