#include "resilience/guards.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "grid/dist_field.hpp"

namespace v2d::resilience {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return std::string(buf);
}

}  // namespace

void check_field_finite(const grid::DistField& f, const std::string& name,
                        int step) {
  const grid::Decomposition& dec = f.decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& ext = dec.extent(r);
    for (int s = 0; s < f.ns(); ++s) {
      const grid::TileView v = f.view(r, s);
      for (int lj = 0; lj < ext.nj; ++lj) {
        const double* row = v.row(lj);
        for (int li = 0; li < ext.ni; ++li) {
          if (!std::isfinite(row[li])) {
            throw GuardError(
                step, name,
                "non-finite value " + num(row[li]) + " at zone (" +
                    std::to_string(ext.i0 + li) + ", " +
                    std::to_string(ext.j0 + lj) + "), species " +
                    std::to_string(s) + ", rank " + std::to_string(r));
          }
        }
      }
    }
  }
}

void check_scalar_finite(double v, const std::string& name, int step) {
  if (!std::isfinite(v))
    throw GuardError(step, name, "non-finite value " + num(v));
}

void check_drift(double now, double prev, double tol, const std::string& name,
                 int step) {
  const double scale = std::max(std::fabs(prev), 1e-300);
  const double drift = std::fabs(now - prev) / scale;
  if (!(drift <= tol)) {
    throw GuardError(step, name,
                     "conservation drift " + num(drift) + " exceeds " +
                         num(tol) + " (" + num(prev) + " -> " + num(now) +
                         ")");
  }
}

}  // namespace v2d::resilience
