#pragma once
/// \file fault_plan.hpp
/// \brief Deterministic seeded fault injection (the chaos layer).
///
/// In the spirit of mpisim — model the failure, don't suffer it — faults
/// are *scheduled*, not random at run time: a FaultPlan maps (seed, spec,
/// job name) to a fixed list of FaultEvents at (step, kind) coordinates.
/// The schedule depends only on those inputs, never on wave interleaving,
/// thread count or wall clock, so the same seed always reproduces the
/// same failures — which is what lets the recovery pins demand
/// bit-identical results.
///
/// Spec grammar (comma- or semicolon-separated clauses):
///
///   kind          one fault of `kind` at a seeded step
///   kind:count    `count` faults of `kind` at seeded distinct steps
///   kind@step     one fault of `kind` pinned to `step` (same for all jobs)
///
/// with kind one of
///
///   breakdown     force a solver breakdown at one of the three call sites
///   nan           poison the radiation field with a NaN after the step
///   io            fail the checkpoint write (torn .tmp, real path intact)
///   throw         raise a plain exception out of the session step
///
/// Each scheduled event fires exactly once per job — it models a
/// transient; a retry re-executing the same step does not re-fault.

#include <cstdint>
#include <string>
#include <vector>

namespace v2d::resilience {

enum class FaultKind : std::uint8_t {
  SolverBreakdown,  ///< synthetic non-convergence at a solve call site
  NanContaminate,   ///< NaN written into the radiation field
  CheckpointIo,     ///< checkpoint write dies mid-stream
  StepException,    ///< plain exception out of drive_step()
};

const char* fault_kind_name(FaultKind k);

/// One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::StepException;
  int step = 0;          ///< 1-based step the fault fires at
  int site = 0;          ///< solve call site 0..2 (SolverBreakdown only)
  bool consumed = false; ///< set once the fault has fired
};

/// Seed + parsed spec; stateless schedule generator.  A default-constructed
/// plan (seed 0) is inactive: schedule() returns nothing, so every consumer
/// can hold one unconditionally.
class FaultPlan {
public:
  FaultPlan() = default;
  /// Throws v2d::Error on an unparseable spec.  seed 0 = injection off.
  FaultPlan(std::uint64_t seed, const std::string& spec);

  bool active() const { return seed_ != 0; }
  std::uint64_t seed() const { return seed_; }

  /// The deterministic fault schedule for job `job` over steps
  /// (first_step, last_step].  Pinned `kind@step` clauses outside that
  /// range are dropped (the job never reaches them).  Sorted by step.
  std::vector<FaultEvent> schedule(const std::string& job, int first_step,
                                   int last_step) const;

private:
  struct Clause {
    FaultKind kind = FaultKind::StepException;
    int count = 1;  ///< seeded events to schedule (pinned_step == 0)
    int pinned_step = 0;  ///< explicit step from kind@step (0 = seeded)
  };

  std::uint64_t seed_ = 0;
  std::vector<Clause> clauses_;
};

/// A job's consumable copy of its schedule.  Owned by whoever drives the
/// job (the farm keeps it alive across retry attempts so a fault that
/// already fired stays fired); the Simulation only borrows it.
class FaultInjector {
public:
  FaultInjector() = default;
  explicit FaultInjector(std::vector<FaultEvent> events)
      : events_(std::move(events)) {}

  /// Consume the pending event of `kind` at `step`, if any.
  bool take(FaultKind kind, int step);

  /// Consume a pending SolverBreakdown at (step, site), if any.
  bool take_breakdown(int step, int site);

  const std::vector<FaultEvent>& events() const { return events_; }

  /// Events that have not fired (yet, or ever — e.g. an io fault on a job
  /// that writes no checkpoints).
  std::size_t pending() const;

private:
  std::vector<FaultEvent> events_;
};

}  // namespace v2d::resilience
