#pragma once
/// \file guards.hpp
/// \brief Numeric guards: turn silent NaN propagation into structured errors.
///
/// With `--guard on` the driver validates every step's results on the host
/// — a full finite scan of the radiation field plus a finiteness (and,
/// optionally, drift) check on the conserved total — and throws a
/// GuardError naming the step, field and zone the moment contamination
/// appears, instead of letting NaN silently poison the next hundred
/// steps' solves.
///
/// Guards are *host-only* and deliberately unpriced: they model the
/// development/chaos harness, not the production code under study, so
/// enabling them must not move a single simulated cycle.

#include <string>

#include "support/error.hpp"

namespace v2d::grid {
class DistField;
}

namespace v2d::resilience {

/// A guard trip: the error message names the step and field; the typed
/// accessors let recovery policy branch without string matching.
class GuardError : public Error {
public:
  GuardError(int step, std::string field, const std::string& detail)
      : Error("numeric guard tripped at step " + std::to_string(step) +
              ", field '" + field + "': " + detail),
        step_(step),
        field_(std::move(field)) {}

  int step() const { return step_; }
  const std::string& field() const { return field_; }

private:
  int step_;
  std::string field_;
};

/// Scan every interior zone of every rank/species for NaN/Inf; throws
/// GuardError locating the first offender (global zone, species, rank).
void check_field_finite(const grid::DistField& f, const std::string& name,
                        int step);

/// Throw GuardError when a scalar diagnostic is NaN/Inf.
void check_scalar_finite(double v, const std::string& name, int step);

/// Conservation-drift sentinel: throw GuardError when |now - prev|
/// exceeds `tol` relative to prev.  Callers keep `prev` across steps and
/// reset it after a restart (the first post-restart step has no baseline).
void check_drift(double now, double prev, double tol, const std::string& name,
                 int step);

}  // namespace v2d::resilience
