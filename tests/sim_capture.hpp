#pragma once
/// \file sim_capture.hpp
/// \brief Exact-state capture of a Simulation for bit-identity tests.
///
/// The engine's core contract — rank-parallel execution, fused kernels,
/// and now farm scheduling are *pure host optimizations* — is pinned by
/// comparing everything observable exactly (==, not near): gathered
/// fields, per-profile per-rank simulated clocks, and full per-region
/// cost ledgers.  This header holds the capture/compare helpers shared by
/// the suites that pin that contract (test_farm and friends).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/v2d.hpp"
#include "sim/ledger.hpp"

namespace v2d::testutil {

struct SimCapture {
  std::vector<double> field;
  double time = 0.0;
  int steps = 0;
  // Per profile, per rank.
  std::vector<std::vector<double>> clocks;
  std::vector<std::vector<sim::CostLedger>> ledgers;
};

inline SimCapture capture(core::Simulation& sim) {
  SimCapture out;
  out.field = sim.radiation().field().gather_global();
  out.time = sim.time();
  out.steps = sim.steps_taken();
  const auto& em = sim.exec();
  out.clocks.resize(em.nprofiles());
  out.ledgers.resize(em.nprofiles());
  for (std::size_t p = 0; p < em.nprofiles(); ++p) {
    for (int r = 0; r < em.nranks(); ++r) {
      out.clocks[p].push_back(em.rank_time(p, r));
      out.ledgers[p].push_back(em.ledger(p, r));
    }
  }
  return out;
}

inline void expect_counts_equal(const sim::KernelCounts& a,
                                const sim::KernelCounts& b,
                                const std::string& where) {
  for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
    EXPECT_EQ(a.instr[i], b.instr[i]) << where << " instr[" << i << "]";
    EXPECT_EQ(a.lanes[i], b.lanes[i]) << where << " lanes[" << i << "]";
  }
  EXPECT_EQ(a.bytes_read, b.bytes_read) << where;
  EXPECT_EQ(a.bytes_written, b.bytes_written) << where;
  EXPECT_EQ(a.elements, b.elements) << where;
  EXPECT_EQ(a.calls, b.calls) << where;
}

inline void expect_ledgers_equal(const sim::CostLedger& a,
                                 const sim::CostLedger& b,
                                 const std::string& where) {
  ASSERT_EQ(a.regions().size(), b.regions().size()) << where;
  auto ia = a.regions().begin();
  auto ib = b.regions().begin();
  for (; ia != a.regions().end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first) << where;
    const std::string at = where + "/" + ia->first;
    const sim::RegionCost& ra = ia->second;
    const sim::RegionCost& rb = ib->second;
    EXPECT_EQ(ra.compute_cycles, rb.compute_cycles) << at;
    EXPECT_EQ(ra.memory_cycles, rb.memory_cycles) << at;
    EXPECT_EQ(ra.overhead_cycles, rb.overhead_cycles) << at;
    EXPECT_EQ(ra.total_cycles, rb.total_cycles) << at;
    EXPECT_EQ(ra.comm_seconds, rb.comm_seconds) << at;
    EXPECT_EQ(ra.comm_messages, rb.comm_messages) << at;
    EXPECT_EQ(ra.comm_bytes, rb.comm_bytes) << at;
    expect_counts_equal(ra.counts, rb.counts, at);
  }
}

inline void expect_captures_identical(const SimCapture& a, const SimCapture& b,
                                      const std::string& label) {
  EXPECT_EQ(a.time, b.time) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  ASSERT_EQ(a.field.size(), b.field.size()) << label;
  for (std::size_t i = 0; i < a.field.size(); ++i)
    ASSERT_EQ(a.field[i], b.field[i]) << label << " field zone " << i;
  ASSERT_EQ(a.clocks.size(), b.clocks.size()) << label;
  for (std::size_t p = 0; p < a.clocks.size(); ++p) {
    ASSERT_EQ(a.clocks[p].size(), b.clocks[p].size()) << label;
    for (std::size_t r = 0; r < a.clocks[p].size(); ++r) {
      EXPECT_EQ(a.clocks[p][r], b.clocks[p][r])
          << label << " profile " << p << " rank " << r;
      expect_ledgers_equal(a.ledgers[p][r], b.ledgers[p][r],
                           label + " p" + std::to_string(p) + " r" +
                               std::to_string(r));
    }
  }
}

}  // namespace v2d::testutil
