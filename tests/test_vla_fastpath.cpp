/// \file test_vla_fastpath.cpp
/// \brief Fast-path vs interpreter equivalence suite.
///
/// The native execution engine must be indistinguishable from the
/// interpreter backend: bit-identical numerical results AND identical
/// KernelCounts recordings, for every kernel, every architectural vector
/// length, and every tail-predicate case (empty, partial, full).  These
/// tests are what licenses the analytic-recording fast path to stand in
/// for op-by-op recording everywhere.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/v2d.hpp"
#include "linalg/kernel_counts.hpp"
#include "linalg/kernels.hpp"
#include "linalg/mg/mg_kernels.hpp"
#include "support/rng.hpp"

namespace v2d::linalg {
namespace {

using vla::Context;
using vla::VectorArch;
using vla::VlaExecMode;

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_counts_equal(const sim::KernelCounts& interp,
                         const sim::KernelCounts& fast) {
  for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
    const auto c = static_cast<sim::OpClass>(i);
    EXPECT_EQ(interp.instr[i], fast.instr[i])
        << "instr mismatch for " << sim::op_class_name(c);
    EXPECT_EQ(interp.lanes[i], fast.lanes[i])
        << "lanes mismatch for " << sim::op_class_name(c);
  }
  EXPECT_EQ(interp.bytes_read, fast.bytes_read);
  EXPECT_EQ(interp.bytes_written, fast.bytes_written);
}

void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  if (!a.empty())
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

/// Parameterized over (vector bits, length): all five architectural VL
/// octaves crossed with lengths hitting empty (0), sub-strip, exact-strip,
/// one-past, multi-strip, and ragged-tail predicates.
class FastPathSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
protected:
  unsigned bits() const { return std::get<0>(GetParam()); }
  unsigned lanes() const { return bits() / 64; }
  std::size_t n() const {
    // Lengths are scaled in units of the VL so each entry keeps its
    // tail-shape meaning at every vector length.
    const std::size_t vl = lanes();
    switch (std::get<1>(GetParam())) {
      case 0: return 0;            // empty: loop never runs
      case 1: return 1;            // single partial strip
      case 2: return vl - 1;       // partial strip, all-but-one lane
      case 3: return vl;           // one full strip, no tail
      case 4: return vl + 1;       // full strip + 1-lane tail
      case 5: return 3 * vl;       // multi-strip, no tail
      case 6: return 3 * vl + vl / 2;  // multi-strip, half tail
      default: return 257;         // fixed ragged length
    }
  }

  Context interp_ctx() const {
    return Context(VectorArch(bits()), VlaExecMode::Interpret);
  }
  Context native_ctx() const {
    return Context(VectorArch(bits()), VlaExecMode::Native);
  }
};

TEST_P(FastPathSweep, Dprod) {
  Rng rng(11);
  const auto x = random_vec(n(), rng), y = random_vec(n(), rng);
  Context ci = interp_ctx(), cn = native_ctx();
  const double a = dprod(ci, x, y);
  const double b = dprod(cn, x, y);
  EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
      << "dprod not bit-identical: " << a << " vs " << b;
  expect_counts_equal(ci.take_counts(), cn.take_counts());
}

TEST_P(FastPathSweep, Daxpy) {
  Rng rng(12);
  const auto x = random_vec(n(), rng);
  auto yi = random_vec(n(), rng), yn = yi;
  Context ci = interp_ctx(), cn = native_ctx();
  daxpy(ci, 1.7, x, yi);
  daxpy(cn, 1.7, x, yn);
  expect_bits_equal(yi, yn);
  expect_counts_equal(ci.take_counts(), cn.take_counts());
}

TEST_P(FastPathSweep, Dscal) {
  Rng rng(13);
  auto yi = random_vec(n(), rng), yn = yi;
  Context ci = interp_ctx(), cn = native_ctx();
  dscal(ci, 0.75, 2.0, yi);
  dscal(cn, 0.75, 2.0, yn);
  expect_bits_equal(yi, yn);
  expect_counts_equal(ci.take_counts(), cn.take_counts());
}

TEST_P(FastPathSweep, Ddaxpy) {
  Rng rng(14);
  const auto x = random_vec(n(), rng), y = random_vec(n(), rng);
  auto zi = random_vec(n(), rng), zn = zi;
  Context ci = interp_ctx(), cn = native_ctx();
  ddaxpy(ci, 1.25, x, -0.5, y, zi);
  ddaxpy(cn, 1.25, x, -0.5, y, zn);
  expect_bits_equal(zi, zn);
  expect_counts_equal(ci.take_counts(), cn.take_counts());
}

TEST_P(FastPathSweep, Xpby) {
  Rng rng(15);
  const auto x = random_vec(n(), rng);
  auto yi = random_vec(n(), rng), yn = yi;
  Context ci = interp_ctx(), cn = native_ctx();
  xpby(ci, x, 0.3, yi);
  xpby(cn, x, 0.3, yn);
  expect_bits_equal(yi, yn);
  expect_counts_equal(ci.take_counts(), cn.take_counts());
}

TEST_P(FastPathSweep, CopyFillSubHadamard) {
  Rng rng(16);
  const auto x = random_vec(n(), rng), y = random_vec(n(), rng);
  std::vector<double> zi(n()), zn(n());
  Context ci = interp_ctx(), cn = native_ctx();

  copy(ci, x, zi);
  copy(cn, x, zn);
  expect_bits_equal(zi, zn);
  expect_counts_equal(ci.take_counts(), cn.take_counts());

  fill(ci, -2.5, zi);
  fill(cn, -2.5, zn);
  expect_bits_equal(zi, zn);
  expect_counts_equal(ci.take_counts(), cn.take_counts());

  sub(ci, x, y, zi);
  sub(cn, x, y, zn);
  expect_bits_equal(zi, zn);
  expect_counts_equal(ci.take_counts(), cn.take_counts());

  hadamard(ci, x, y, zi);
  hadamard(cn, x, y, zn);
  expect_bits_equal(zi, zn);
  expect_counts_equal(ci.take_counts(), cn.take_counts());
}

TEST_P(FastPathSweep, StencilRow) {
  Rng rng(17);
  const auto cc = random_vec(n(), rng), cw = random_vec(n(), rng),
             ce = random_vec(n(), rng), cs = random_vec(n(), rng),
             cn_ = random_vec(n(), rng);
  const auto xc = random_vec(n() + 2, rng), xs = random_vec(n(), rng),
             xn = random_vec(n(), rng);
  std::vector<double> yi(n()), yn(n());
  Context ci = interp_ctx(), cx = native_ctx();
  stencil_row(ci, cc, cw, ce, cs, cn_, xc.data() + 1, xs.data(), xn.data(),
              yi);
  stencil_row(cx, cc, cw, ce, cs, cn_, xc.data() + 1, xs.data(), xn.data(),
              yn);
  expect_bits_equal(yi, yn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

TEST_P(FastPathSweep, CouplingRow) {
  Rng rng(18);
  const auto csp = random_vec(n(), rng), xo = random_vec(n(), rng);
  auto yi = random_vec(n(), rng), yn = yi;
  Context ci = interp_ctx(), cx = native_ctx();
  coupling_row(ci, csp, xo.data(), yi);
  coupling_row(cx, csp, xo.data(), yn);
  expect_bits_equal(yi, yn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

TEST_P(FastPathSweep, DiagRows) {
  Rng rng(19);
  const auto d = random_vec(n(), rng), r = random_vec(n(), rng);
  auto xi = random_vec(n(), rng), xn = xi;
  Context ci = interp_ctx(), cx = native_ctx();
  mg::diag_correct_row(ci, 0.8, d, r, xi);
  mg::diag_correct_row(cx, 0.8, d, r, xn);
  expect_bits_equal(xi, xn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());

  std::vector<double> zi(n()), zn(n());
  mg::diag_scale_row(ci, 1.25, d, r, zi);
  mg::diag_scale_row(cx, 1.25, d, r, zn);
  expect_bits_equal(zi, zn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

TEST_P(FastPathSweep, RestrictRow) {
  Rng rng(20);
  const std::size_t nc = n();
  // Fine rows are 2·nc wide with one readable ghost on each side.
  std::vector<std::vector<double>> fine;
  const double* frows[4];
  for (int dj = 0; dj < 4; ++dj) {
    fine.push_back(random_vec(2 * nc + 2, rng));
    frows[dj] = fine.back().data() + 1;
  }
  std::vector<std::int64_t> fm1(nc), f0(nc), f1(nc), f2(nc), near, far;
  for (std::size_t c = 0; c < nc; ++c) {
    fm1[c] = static_cast<std::int64_t>(2 * c) - 1;
    f0[c] = static_cast<std::int64_t>(2 * c);
    f1[c] = static_cast<std::int64_t>(2 * c) + 1;
    f2[c] = static_cast<std::int64_t>(2 * c) + 2;
  }
  const mg::TransferTables tab{fm1, f0, f1, f2, near, far};
  std::vector<double> yi(nc), yn(nc);
  Context ci = interp_ctx(), cx = native_ctx();
  mg::restrict_row(ci, frows, tab, yi);
  mg::restrict_row(cx, frows, tab, yn);
  expect_bits_equal(yi, yn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

TEST_P(FastPathSweep, ProlongRow) {
  Rng rng(21);
  const std::size_t nf = n();
  // Coarse rows are ⌈nf/2⌉ wide with one readable ghost on each side.
  const std::size_t ncw = nf / 2 + 2;
  const auto cnear = random_vec(ncw + 2, rng), cfar = random_vec(ncw + 2, rng);
  std::vector<std::int64_t> near(nf), far(nf), unused;
  for (std::size_t f = 0; f < nf; ++f) {
    const auto parent = static_cast<std::int64_t>(f / 2);
    near[f] = parent;
    far[f] = parent + ((f & 1) ? 1 : -1);
  }
  const mg::TransferTables tab{unused, unused, unused, unused, near, far};
  auto yi = random_vec(nf, rng), yn = yi;
  Context ci = interp_ctx(), cx = native_ctx();
  mg::prolong_row_add(ci, cnear.data() + 1, cfar.data() + 1, tab, yi);
  mg::prolong_row_add(cx, cnear.data() + 1, cfar.data() + 1, tab, yn);
  expect_bits_equal(yi, yn);
  expect_counts_equal(ci.take_counts(), cx.take_counts());
}

INSTANTIATE_TEST_SUITE_P(
    AllVlsAndTails, FastPathSweep,
    ::testing::Combine(::testing::Values(128u, 256u, 512u, 1024u, 2048u),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{3},
                                         std::size_t{4}, std::size_t{5},
                                         std::size_t{6}, std::size_t{7})));

TEST(FastPathCache, RepeatedCallsAccumulateExactly) {
  Context ctx(VectorArch(512), VlaExecMode::Native);
  std::vector<double> x(100, 1.0), y(100, 2.0);
  daxpy(ctx, 2.0, x, y);
  const auto once = ctx.take_counts();
  for (int i = 0; i < 7; ++i) daxpy(ctx, 2.0, x, y);
  const auto seven = ctx.take_counts();
  for (std::size_t i = 0; i < sim::kNumOpClasses; ++i) {
    EXPECT_EQ(seven.instr[i], 7 * once.instr[i]);
    EXPECT_EQ(seven.lanes[i], 7 * once.lanes[i]);
  }
  EXPECT_EQ(seven.bytes_moved(), 7 * once.bytes_moved());
}

TEST(FastPathCache, DistinctShapesWithSameLengthDoNotCollide) {
  Context ctx(VectorArch(512), VlaExecMode::Native);
  std::vector<double> x(64, 1.0), y(64, 2.0);
  daxpy(ctx, 2.0, x, y);
  const auto after_daxpy = ctx.take_counts();
  (void)dprod(ctx, x, y);
  const auto after_dprod = ctx.take_counts();
  // DPROD has a Reduce, DAXPY a StoreContig; a key collision would leak
  // one shape's formula into the other.
  EXPECT_EQ(after_daxpy.instr[static_cast<std::size_t>(sim::OpClass::Reduce)],
            0u);
  EXPECT_EQ(after_dprod.instr[static_cast<std::size_t>(sim::OpClass::Reduce)],
            1u);
  EXPECT_EQ(
      after_dprod.instr[static_cast<std::size_t>(sim::OpClass::StoreContig)],
      0u);
}

/// End-to-end: a full radiation step prices identically and produces the
/// identical field under both backends — the recorded stream, and
/// therefore every simulated clock, cannot tell the modes apart.
TEST(FastPathEndToEnd, SimulationTrajectoryAndClocksMatch) {
  core::RunConfig cfg;
  cfg.nx1 = 32;
  cfg.nx2 = 16;
  cfg.steps = 1;
  cfg.ns = 2;
  cfg.compilers = {"gnu"};

  cfg.vla_exec = "interpret";
  core::Simulation interp(cfg);
  interp.advance();

  cfg.vla_exec = "native";
  core::Simulation fast(cfg);
  fast.advance();

  const double ei = interp.total_energy();
  const double en = fast.total_energy();
  EXPECT_EQ(std::memcmp(&ei, &en, sizeof ei), 0);
  EXPECT_DOUBLE_EQ(interp.analytic_error(), fast.analytic_error());
  // Identical recordings ⇒ identical priced wall-time, to the last cycle.
  EXPECT_EQ(interp.elapsed(0), fast.elapsed(0));
}

}  // namespace
}  // namespace v2d::linalg
