/// \file test_properties.cpp
/// \brief Cross-cutting property tests that tie several modules together.

#include <gtest/gtest.h>

#include <cmath>

#include "core/v2d.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/cg.hpp"
#include "linalg/precond.hpp"
#include "linalg/stencil_op.hpp"
#include "mpisim/msgqueue.hpp"
#include "rad/gaussian.hpp"
#include "support/rng.hpp"

namespace v2d {
namespace {

// --- machine-sensitivity: the cost model must respond to hardware ------------

TEST(Properties, GenericX86PricesDifferentlyThanA64fx) {
  sim::KernelCounts c;
  c.record(sim::OpClass::LoadContig, 8, 1000);
  c.record(sim::OpClass::FlopFma, 8, 500);
  c.bytes_read = 64000;
  c.calls = 1;
  const sim::CodegenFactors f;
  const sim::CostModel a64fx(sim::MachineSpec::a64fx());
  const sim::CostModel x86(sim::MachineSpec::generic_x86());
  const double t_a = a64fx.seconds(
      a64fx.price(c, sim::ExecMode::SVE, f, 16 * 1024).total_cycles());
  const double t_x = x86.seconds(
      x86.price(c, sim::ExecMode::SVE, f, 16 * 1024).total_cycles());
  EXPECT_NE(t_a, t_x);
  EXPECT_GT(t_a, 0.0);
  EXPECT_GT(t_x, 0.0);
}

// --- solver agreement: CG and BiCGSTAB on the same symmetric system ----------

TEST(Properties, CgAndBicgstabAgreeOnSymmetricSystem) {
  const grid::Grid2D g(14, 10, 0, 1, 0, 1);
  const grid::Decomposition d(g, mpisim::CartTopology(2, 1));
  linalg::StencilOperator A(g, d, 1);
  A.cc().fill(5.0);
  A.cw().fill(-1.0);
  A.ce().fill(-1.0);
  A.cs().fill(-1.0);
  A.cn().fill(-1.0);
  A.zero_boundary_coefficients();

  linalg::DistVector b(g, d, 1), x_cg(g, d, 1), x_bi(g, d, 1);
  Rng rng(71);
  for (int j = 0; j < 10; ++j)
    for (int i = 0; i < 14; ++i) b.field().gset(0, i, j, rng.uniform(-1, 1));
  linalg::ExecContext ctx;
  x_cg.fill(ctx, 0.0);
  x_bi.fill(ctx, 0.0);

  linalg::SolveOptions opt;
  opt.rel_tol = 1e-12;
  linalg::IdentityPrecond ident;
  linalg::CgSolver cg(g, d, 1);
  linalg::BicgstabSolver bi(g, d, 1);
  ASSERT_TRUE(cg.solve(ctx, A, ident, x_cg, b, opt).converged);
  ASSERT_TRUE(bi.solve(ctx, A, ident, x_bi, b, opt).converged);

  const auto a = x_cg.field().gather_global();
  const auto c = x_bi.field().gather_global();
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k], c[k], 1e-9);
}

// --- msgqueue vs analytic exchange model -------------------------------------

TEST(Properties, MsgQueueMatchesAnalyticHaloCost) {
  // A 1-D ring halo exchange played through the event-level simulator must
  // land within 2x of the analytic ExecModel phase cost (they use the same
  // pt2pt pricing but different completion semantics).
  const int nranks = 4;
  const auto profile = compiler::cray_2103();
  const mpisim::Placement placement(nranks);
  const mpisim::NetCost net(profile.mpi(), placement);
  const std::uint64_t bytes = 1600;

  mpisim::MsgQueueSim q(net, nranks);
  std::vector<int> reqs;
  for (int r = 0; r < nranks - 1; ++r) {
    reqs.push_back(q.isend(r, r + 1, 0, bytes));
    reqs.push_back(q.irecv(r + 1, r, 0));
    reqs.push_back(q.isend(r + 1, r, 1, bytes));
    reqs.push_back(q.irecv(r, r + 1, 1));
  }
  q.wait_all();
  double queue_max = 0.0;
  for (int r = 0; r < nranks; ++r) queue_max = std::max(queue_max, q.clock(r));

  mpisim::ExecModel em(sim::MachineSpec::a64fx(), {profile}, nranks);
  std::vector<mpisim::Transfer> transfers;
  for (int r = 0; r < nranks - 1; ++r) {
    transfers.push_back({r, r + 1, bytes, false});
    transfers.push_back({r + 1, r, bytes, false});
  }
  em.exchange(transfers, "halo");
  const double analytic = em.elapsed(0);

  EXPECT_GT(queue_max, 0.0);
  EXPECT_GT(analytic, 0.0);
  // The analytic phase model adds pack/unpack costs the event simulator
  // does not track, so agreement is order-of-magnitude, not exact.
  EXPECT_LT(std::max(queue_max, analytic) / std::min(queue_max, analytic),
            4.0);
}

// --- Simulation properties ------------------------------------------------------

TEST(Properties, VectorLengthChangesSimulatedTimeNotPhysics) {
  auto run = [](unsigned bits) {
    core::RunConfig cfg;
    cfg.nx1 = 32;
    cfg.nx2 = 16;
    cfg.steps = 1;
    cfg.vector_bits = bits;
    core::Simulation sim(cfg);
    sim.run();
    return std::pair{sim.elapsed(0), sim.total_energy()};
  };
  const auto [t512, e512] = run(512);
  const auto [t128, e128] = run(128);
  // Same physics...
  EXPECT_NEAR(e512, e128, 1e-9 * std::fabs(e512));
  // ...different cost: the 128-bit machine also has narrower SIMD in the
  // pricing, so it must be slower.
  EXPECT_LT(t512, t128 * 1.05);
}

TEST(Properties, EnergyDecaysWithAbsorption) {
  core::RunConfig cfg;
  cfg.nx1 = 32;
  cfg.nx2 = 16;
  cfg.steps = 3;
  cfg.kappa_absorb = 2.0;
  core::Simulation sim(cfg);
  // Cold matter: emission (aT^4) must stay far below the radiation field
  // so absorption is a net sink.
  sim.stepper().builder().temperature().fill(0.01);
  const double e0 = sim.total_energy();
  sim.run();
  // Absorption moves radiation energy into matter (emission at the cold
  // initial temperature is smaller), so the radiation total must drop.
  EXPECT_LT(sim.total_energy(), e0);
}

TEST(Properties, ClassicAndGangedProduceSameField) {
  auto run = [](bool ganged) {
    core::RunConfig cfg;
    cfg.nx1 = 32;
    cfg.nx2 = 16;
    cfg.steps = 2;
    cfg.ganged = ganged;
    core::Simulation sim(cfg);
    sim.run();
    return sim.radiation().field().gather_global();
  };
  const auto a = run(true);
  const auto b = run(false);
  ASSERT_EQ(a.size(), b.size());
  // Same systems, same preconditioner; trajectories differ only through
  // the (differently grouped but dd-compensated) reductions.
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_NEAR(a[k], b[k], 1e-8 * std::fabs(a[k]) + 1e-14);
}

TEST(Properties, CylindricalDiffusionConservesEnergy) {
  // The FLD discretization in cylindrical coordinates (r, z) must conserve
  // Σ E·V under zero-flux boundaries, exercising the area/volume factors.
  const grid::Grid2D g(24, 16, 0.1, 1.1, 0.0, 1.0, grid::Coord::Cylindrical);
  const grid::Decomposition d(g, mpisim::CartTopology(1, 1));
  rad::OpacitySet opac(2);
  for (int s = 0; s < 2; ++s) {
    opac.absorption(s) = rad::OpacityLaw::constant(0.0);
    opac.scattering(s) = rad::OpacityLaw::constant(10.0);
  }
  rad::FldConfig fcfg;
  fcfg.include_absorption = false;
  rad::FldBuilder builder(g, d, 2, opac, fcfg);
  rad::RadiationStepper stepper(g, d, std::move(builder));
  linalg::DistVector e(g, d, 2);
  // Off-axis blob.
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 24; ++i)
      for (int s = 0; s < 2; ++s)
        e.field().gset(s, i, j,
                       std::exp(-20.0 * (std::pow(g.x1c(i) - 0.6, 2) +
                                         std::pow(g.x2c(j) - 0.5, 2))));
  const double before = rad::GaussianPulse::total_energy(e);
  linalg::ExecContext ctx;
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(stepper.step(ctx, e, 0.02).all_converged());
  }
  EXPECT_NEAR(rad::GaussianPulse::total_energy(e), before, 1e-6 * before);
}

}  // namespace
}  // namespace v2d
