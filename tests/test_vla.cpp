/// \file test_vla.cpp
/// \brief Unit and property tests for the SVE-like VLA execution layer.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/rng.hpp"
#include "vla/loops.hpp"
#include "vla/vla.hpp"

namespace v2d::vla {
namespace {

using sim::OpClass;

TEST(VectorArchTest, ValidLengths) {
  for (unsigned bits = 128; bits <= 2048; bits += 128) {
    EXPECT_EQ(VectorArch(bits).lanes(), bits / 64);
  }
  EXPECT_THROW(VectorArch(64), Error);
  EXPECT_THROW(VectorArch(192), Error);   // not a multiple of 128
  EXPECT_THROW(VectorArch(4096), Error);
}

TEST(Predicates, WhileltShapes) {
  Context ctx(VectorArch(512));  // 8 lanes
  EXPECT_EQ(ctx.whilelt(0, 20).active, 8u);
  EXPECT_EQ(ctx.whilelt(16, 20).active, 4u);
  EXPECT_EQ(ctx.whilelt(24, 20).active, 0u);
  EXPECT_TRUE(ctx.ptrue().full());
}

TEST(Ops, LoadComputeStore) {
  Context ctx(VectorArch(512));
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> y(8, 0.0);
  const Predicate p = ctx.ptrue();
  const VReg vx = ctx.ld1(p, x.data());
  const VReg two = ctx.dup(2.0);
  ctx.st1(p, y.data(), ctx.mul(p, vx, two));
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(y[i], 2.0 * x[i]);
}

TEST(Ops, PredicationMasksTail) {
  Context ctx(VectorArch(512));
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> y(8, -1.0);
  const Predicate p = ctx.whilelt(5, 8);  // 3 active lanes
  ctx.st1(p, y.data(), ctx.ld1(p, x.data()));
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
  EXPECT_DOUBLE_EQ(y[3], -1.0);  // untouched
}

TEST(Ops, FmaAndSubDivSqrtAbs) {
  Context ctx(VectorArch(256));  // 4 lanes
  const Predicate p = ctx.ptrue();
  std::vector<double> a = {1, 4, 9, 16}, b = {2, 2, 2, 2}, c = {1, 1, 1, 1};
  const VReg va = ctx.ld1(p, a.data());
  const VReg vb = ctx.ld1(p, b.data());
  const VReg vc = ctx.ld1(p, c.data());
  const VReg fma = ctx.fma(p, va, vb, vc);
  EXPECT_DOUBLE_EQ(fma[2], 19.0);
  const VReg sub = ctx.sub(p, va, vb);
  EXPECT_DOUBLE_EQ(sub[0], -1.0);
  const VReg div = ctx.div(p, va, vb);
  EXPECT_DOUBLE_EQ(div[3], 8.0);
  const VReg sq = ctx.sqrt(p, va);
  EXPECT_DOUBLE_EQ(sq[2], 3.0);
  const VReg ab = ctx.abs(p, sub);
  EXPECT_DOUBLE_EQ(ab[0], 1.0);
  const VReg mn = ctx.vmin(p, va, vb);
  EXPECT_DOUBLE_EQ(mn[1], 2.0);
  const VReg mx = ctx.vmax(p, va, vb);
  EXPECT_DOUBLE_EQ(mx[1], 4.0);
}

TEST(Ops, GatherScatter) {
  Context ctx(VectorArch(256));
  const Predicate p = ctx.ptrue();
  std::vector<double> base = {10, 20, 30, 40, 50};
  const std::vector<std::int64_t> idx = {4, 0, 2, 1};
  const VReg g = ctx.ld1_gather(p, base.data(), idx);
  EXPECT_DOUBLE_EQ(g[0], 50.0);
  EXPECT_DOUBLE_EQ(g[3], 20.0);
  std::vector<double> out(5, 0.0);
  ctx.st1_scatter(p, out.data(), idx, g);
  EXPECT_DOUBLE_EQ(out[4], 50.0);
  EXPECT_DOUBLE_EQ(out[1], 20.0);
}

TEST(Ops, Reductions) {
  Context ctx(VectorArch(512));
  const Predicate p = ctx.whilelt(0, 5);
  std::vector<double> x = {1, 2, 3, 4, 5, 99, 99, 99};
  const VReg v = ctx.ld1(p, x.data());
  EXPECT_DOUBLE_EQ(ctx.reduce_add(p, v), 15.0);
  EXPECT_DOUBLE_EQ(ctx.reduce_max(p, v), 5.0);
}

TEST(Recording, CountsInstructionsAndLanes) {
  Context ctx(VectorArch(512));
  std::vector<double> x(20, 1.0), y(20, 2.0);
  strip_mine(ctx, 20, [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.add(p, vx, vy));
  });
  const sim::KernelCounts c = ctx.take_counts();
  const auto idx = [](OpClass o) { return static_cast<std::size_t>(o); };
  EXPECT_EQ(c.instr[idx(OpClass::LoadContig)], 6u);   // 3 strips x 2 loads
  EXPECT_EQ(c.lanes[idx(OpClass::LoadContig)], 40u);  // 20 elements x 2
  EXPECT_EQ(c.instr[idx(OpClass::StoreContig)], 3u);
  EXPECT_EQ(c.lanes[idx(OpClass::FlopAdd)], 20u);
  EXPECT_EQ(c.bytes_read, 40u * 8);
  EXPECT_EQ(c.bytes_written, 20u * 8);
  // take_counts resets.
  EXPECT_EQ(ctx.counts().total_instr(), 0u);
}

TEST(Recording, RecordExternalFoldsIn) {
  Context ctx(VectorArch(512));
  ctx.record_external(OpClass::LoadContig, 80, 640, 0);
  const auto c = ctx.take_counts();
  const auto idx = [](OpClass o) { return static_cast<std::size_t>(o); };
  EXPECT_EQ(c.lanes[idx(OpClass::LoadContig)], 80u);
  EXPECT_EQ(c.instr[idx(OpClass::LoadContig)], 10u);
  EXPECT_EQ(c.bytes_read, 640u);
}

TEST(Loops, StripReduceMatchesStdAccumulate) {
  Context ctx(VectorArch(384));  // 6 lanes, odd size
  std::vector<double> x(101);
  Rng rng(5);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const double got =
      strip_reduce(ctx, x.size(), [&](std::uint64_t i, const Predicate& p,
                                      VReg acc) {
        const VReg vx = ctx.ld1(p, &x[i]);
        const VReg one = ctx.dup(1.0);
        return ctx.fma_merge(p, vx, one, acc);
      });
  const double want = std::accumulate(x.begin(), x.end(), 0.0);
  EXPECT_NEAR(got, want, 1e-12);
}

TEST(Predicates, MismatchedWidthRejected) {
  Context ctx8(VectorArch(512));
  Context ctx4(VectorArch(256));
  const Predicate p4 = ctx4.ptrue();
  std::vector<double> x(8, 0.0);
  EXPECT_THROW(ctx8.ld1(p4, x.data()), Error);
}

/// Property: every arithmetic kernel produces identical results at every
/// architectural vector length (VLA correctness — the paper's §I-B).
class VlSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(VlSweep, AxpyMatchesScalarReference) {
  const unsigned bits = GetParam();
  Context ctx{VectorArch(bits)};
  const std::size_t n = 137;  // awkward tail for every VL
  std::vector<double> x(n), y(n), ref(n);
  Rng rng(bits);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-2, 2);
    y[i] = ref[i] = rng.uniform(-2, 2);
  }
  const double a = 1.00007;
  const VReg va = ctx.dup(a);
  strip_mine(ctx, n, [&](std::uint64_t i, const Predicate& p) {
    const VReg vx = ctx.ld1(p, &x[i]);
    const VReg vy = ctx.ld1(p, &y[i]);
    ctx.st1(p, &y[i], ctx.fma(p, vx, va, vy));
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(y[i], a * x[i] + ref[i]) << "lane " << i;
  }
}

TEST_P(VlSweep, DotIsVlInvariantToRounding) {
  const unsigned bits = GetParam();
  Context ctx{VectorArch(bits)};
  const std::size_t n = 97;
  std::vector<double> x(n), y(n);
  Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0, 1);
    y[i] = rng.uniform(0, 1);
  }
  const double got =
      strip_reduce(ctx, n, [&](std::uint64_t i, const Predicate& p, VReg acc) {
        return ctx.fma_merge(p, ctx.ld1(p, &x[i]), ctx.ld1(p, &y[i]), acc);
      });
  double want = 0.0;
  for (std::size_t i = 0; i < n; ++i) want += x[i] * y[i];
  EXPECT_NEAR(got, want, 1e-12 * n);
}

TEST_P(VlSweep, StripMineCoversEveryIndexOnce) {
  const unsigned bits = GetParam();
  Context ctx{VectorArch(bits)};
  std::vector<int> touched(1000, 0);
  strip_mine(ctx, touched.size(), [&](std::uint64_t i, const Predicate& p) {
    for (unsigned l = 0; l < p.active; ++l) touched[i + l]++;
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

INSTANTIATE_TEST_SUITE_P(AllVectorLengths, VlSweep,
                         ::testing::Values(128u, 256u, 384u, 512u, 1024u,
                                           2048u));

}  // namespace
}  // namespace v2d::vla
