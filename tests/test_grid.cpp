/// \file test_grid.cpp
/// \brief Unit tests for grid geometry, decomposition and distributed fields.

#include <gtest/gtest.h>

#include "grid/decomp.hpp"
#include "grid/dist_field.hpp"
#include "grid/grid2d.hpp"

namespace v2d::grid {
namespace {

// --- grid2d ------------------------------------------------------------------

TEST(Grid2D, CartesianGeometry) {
  const Grid2D g(200, 100, -1.0, 1.0, -0.5, 0.5);
  EXPECT_DOUBLE_EQ(g.dx1(), 0.01);
  EXPECT_DOUBLE_EQ(g.dx2(), 0.01);
  EXPECT_DOUBLE_EQ(g.x1c(0), -0.995);
  EXPECT_DOUBLE_EQ(g.x1f(200), 1.0);
  EXPECT_DOUBLE_EQ(g.volume(5, 7), 1e-4);
  EXPECT_DOUBLE_EQ(g.area1(3, 9), 0.01);
}

TEST(Grid2D, CylindricalGeometry) {
  const Grid2D g(10, 10, 0.0, 1.0, 0.0, 1.0, Coord::Cylindrical);
  // Volume grows linearly with radius.
  EXPECT_GT(g.volume(9, 0), g.volume(0, 0));
  EXPECT_NEAR(g.volume(4, 0) / g.volume(0, 0), g.x1c(4) / g.x1c(0), 1e-12);
  // Face at r=0 has zero area (axis).
  EXPECT_DOUBLE_EQ(g.area1(0, 0), 0.0);
  EXPECT_THROW(Grid2D(4, 4, -1.0, 1.0, 0.0, 1.0, Coord::Cylindrical), Error);
}

TEST(Grid2D, LinearIndexDictionaryOrder) {
  const Grid2D g(200, 100, 0, 1, 0, 1);
  EXPECT_EQ(g.linear_index(0, 0, 0), 0);
  EXPECT_EQ(g.linear_index(0, 1, 0), 1);       // x1 fastest
  EXPECT_EQ(g.linear_index(0, 0, 1), 200);     // then x2
  EXPECT_EQ(g.linear_index(1, 0, 0), 20000);   // then species
  EXPECT_EQ(g.linear_index(1, 199, 99), 39999);
  EXPECT_THROW(g.linear_index(0, 200, 0), Error);
}

TEST(Grid2D, InvalidShapesRejected) {
  EXPECT_THROW(Grid2D(0, 10, 0, 1, 0, 1), Error);
  EXPECT_THROW(Grid2D(10, 10, 1, 0, 0, 1), Error);
}

// --- decomposition -------------------------------------------------------------

TEST(DecompTest, EvenSplit) {
  const Grid2D g(200, 100, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(5, 4));
  for (int r = 0; r < d.nranks(); ++r) {
    EXPECT_EQ(d.extent(r).ni, 40);
    EXPECT_EQ(d.extent(r).nj, 25);
  }
  EXPECT_EQ(d.max_tile_zones(), 1000);
}

TEST(DecompTest, UnevenSplitCoversEverything) {
  const Grid2D g(10, 7, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(3, 2));
  // Every zone owned by exactly one rank.
  std::vector<int> owners(70, -1);
  for (int r = 0; r < d.nranks(); ++r) {
    const TileExtent& e = d.extent(r);
    for (int j = e.j0; j < e.j0 + e.nj; ++j) {
      for (int i = e.i0; i < e.i0 + e.ni; ++i) {
        EXPECT_EQ(owners[i + 10 * j], -1);
        owners[i + 10 * j] = r;
      }
    }
  }
  for (int o : owners) EXPECT_NE(o, -1);
  // owner() agrees with the extents.
  EXPECT_EQ(d.owner(0, 0), 0);
  EXPECT_EQ(d.owner(9, 6), d.nranks() - 1);
}

TEST(DecompTest, TooManyTilesRejected) {
  const Grid2D g(4, 4, 0, 1, 0, 1);
  EXPECT_THROW(Decomposition(g, mpisim::CartTopology(5, 1)), Error);
}

// --- dist field ------------------------------------------------------------------

TEST(DistFieldTest, GlobalAccessRoundTrip) {
  const Grid2D g(16, 8, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(4, 2));
  DistField f(g, d, 2, 1);
  int v = 0;
  for (int s = 0; s < 2; ++s)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 16; ++i) f.gset(s, i, j, v++);
  v = 0;
  for (int s = 0; s < 2; ++s)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(f.gget(s, i, j), v++);
}

TEST(DistFieldTest, GhostExchangeMatchesNeighbours) {
  const Grid2D g(12, 12, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(3, 3));
  DistField f(g, d, 1, 1);
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i < 12; ++i) f.gset(0, i, j, 100.0 * i + j);
  const auto transfers = f.exchange_ghosts();
  // Middle tile (rank 4) sees all four neighbours in its ghosts.
  const TileExtent& e = d.extent(4);
  TileView v = f.view(4, 0);
  for (int lj = 0; lj < e.nj; ++lj) {
    EXPECT_DOUBLE_EQ(v(-1, lj), 100.0 * (e.i0 - 1) + (e.j0 + lj));
    EXPECT_DOUBLE_EQ(v(e.ni, lj), 100.0 * (e.i0 + e.ni) + (e.j0 + lj));
  }
  for (int li = 0; li < e.ni; ++li) {
    EXPECT_DOUBLE_EQ(v(li, -1), 100.0 * (e.i0 + li) + (e.j0 - 1));
    EXPECT_DOUBLE_EQ(v(li, e.nj), 100.0 * (e.i0 + li) + (e.j0 + e.nj));
  }
  // 2 directed transfers per interior edge: 3x3 grid has 12 edges.
  EXPECT_EQ(transfers.size(), 24u);
}

TEST(DistFieldTest, FullExchangeFillsCornerGhosts) {
  const Grid2D g(12, 12, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(3, 3));
  DistField f(g, d, 1, 1);
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i < 12; ++i) f.gset(0, i, j, 100.0 * i + j);
  const auto transfers = f.exchange_ghosts_full();
  // Middle tile (rank 4): all four corner ghosts hold the diagonal
  // neighbours' values, delivered through the two-phase face exchange.
  const TileExtent& e = d.extent(4);
  TileView v = f.view(4, 0);
  EXPECT_DOUBLE_EQ(v(-1, -1), 100.0 * (e.i0 - 1) + (e.j0 - 1));
  EXPECT_DOUBLE_EQ(v(e.ni, -1), 100.0 * (e.i0 + e.ni) + (e.j0 - 1));
  EXPECT_DOUBLE_EQ(v(-1, e.nj), 100.0 * (e.i0 - 1) + (e.j0 + e.nj));
  EXPECT_DOUBLE_EQ(v(e.ni, e.nj), 100.0 * (e.i0 + e.ni) + (e.j0 + e.nj));
  // Same message count as the plain exchange; corners ride along.
  EXPECT_EQ(transfers.size(), 24u);
  // Domain-corner ghosts are the BC's job.
  f.apply_bc(BcKind::Dirichlet0);
  EXPECT_DOUBLE_EQ(f.view(0, 0)(-1, -1), 0.0);
  TileView v8 = f.view(8, 0);
  const TileExtent& e8 = d.extent(8);
  EXPECT_DOUBLE_EQ(v8(e8.ni, e8.nj), 0.0);
}

TEST(DistFieldTest, FullExchangeCornerTransferStructure) {
  // exchange_ghosts_full delivers corner values with NO diagonal messages:
  // the transfer list must hold exactly the face transfers of the plain
  // exchange — x1 columns first (phase 1), then x2 rows widened by the
  // ghost padding so the corners ride along (phase 2).
  const Grid2D g(12, 12, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(3, 3));
  DistField f(g, d, 1, 1);
  const auto transfers = f.exchange_ghosts_full();
  // 3x3 tiles: 6 vertical interfaces -> 12 directed x1 transfers, 6
  // horizontal interfaces -> 12 directed x2 transfers.
  ASSERT_EQ(transfers.size(), 24u);
  std::size_t n_strided = 0, n_contig = 0;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const auto& t = transfers[i];
    const TileExtent& e = d.extent(t.dst);
    if (t.strided) {
      // Phase-1 column: interior rows only, and phase 1 precedes phase 2.
      EXPECT_LT(i, 12u);
      EXPECT_EQ(t.bytes, static_cast<std::uint64_t>(e.nj) * sizeof(double));
      ++n_strided;
    } else {
      // Phase-2 row over the padded width ni + 2*ng.
      EXPECT_GE(i, 12u);
      EXPECT_EQ(t.bytes,
                static_cast<std::uint64_t>(e.ni + 2) * sizeof(double));
      ++n_contig;
    }
  }
  EXPECT_EQ(n_strided, 12u);
  EXPECT_EQ(n_contig, 12u);
}

TEST(DistFieldTest, StridedFlagOnX1Halos) {
  const Grid2D g(8, 8, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(2, 2));
  DistField f(g, d, 1, 1);
  for (const auto& t : f.exchange_ghosts()) {
    const int src_px1 = d.topology().px1_of(t.src);
    const int dst_px1 = d.topology().px1_of(t.dst);
    EXPECT_EQ(t.strided, src_px1 != dst_px1)
        << "transfer " << t.src << "->" << t.dst;
  }
}

TEST(DistFieldTest, BoundaryConditions) {
  const Grid2D g(4, 4, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(1, 1));
  DistField f(g, d, 1, 1);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) f.gset(0, i, j, 10.0 + i + 4 * j);
  TileView v = f.view(0, 0);

  f.apply_bc(BcKind::Dirichlet0);
  EXPECT_DOUBLE_EQ(v(-1, 0), 0.0);
  EXPECT_DOUBLE_EQ(v(4, 3), 0.0);

  f.apply_bc(BcKind::Neumann0);
  EXPECT_DOUBLE_EQ(v(-1, 2), v(0, 2));
  EXPECT_DOUBLE_EQ(v(2, 4), v(2, 3));

  f.apply_bc(BcKind::Periodic);
  EXPECT_DOUBLE_EQ(v(-1, 1), v(3, 1));
  EXPECT_DOUBLE_EQ(v(1, -1), v(1, 3));
}

TEST(DistFieldTest, GatherGlobalDictionaryOrder) {
  const Grid2D g(6, 4, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(3, 2));
  DistField f(g, d, 2, 1);
  for (int s = 0; s < 2; ++s)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 6; ++i)
        f.gset(s, i, j, static_cast<double>(g.linear_index(s, i, j)));
  const auto flat = f.gather_global();
  ASSERT_EQ(flat.size(), 48u);
  for (std::size_t k = 0; k < flat.size(); ++k)
    EXPECT_DOUBLE_EQ(flat[k], static_cast<double>(k));
}

TEST(DistFieldTest, TileBytesIncludesGhosts) {
  const Grid2D g(8, 8, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(1, 1));
  const DistField f(g, d, 2, 1);
  EXPECT_EQ(f.tile_bytes(0), 2u * 10 * 10 * sizeof(double));
}

TEST(DistFieldTest, FillSetsEverything) {
  const Grid2D g(4, 4, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(2, 1));
  DistField f(g, d, 1, 1);
  f.fill(7.5);
  EXPECT_DOUBLE_EQ(f.gget(0, 3, 3), 7.5);
  EXPECT_DOUBLE_EQ(f.view(0, 0)(-1, -1), 7.5);  // ghosts too
}

/// Property: ghost exchange over any tiling reproduces the same global
/// neighbourhood values.
class TilingSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TilingSweep, GhostsAlwaysMatchGlobalField) {
  const auto [px1, px2] = GetParam();
  const Grid2D g(24, 18, 0, 1, 0, 1);
  const Decomposition d(g, mpisim::CartTopology(px1, px2));
  DistField f(g, d, 2, 1);
  for (int s = 0; s < 2; ++s)
    for (int j = 0; j < 18; ++j)
      for (int i = 0; i < 24; ++i)
        f.gset(s, i, j, s * 1000.0 + i + 24.0 * j);
  f.exchange_ghosts();
  for (int r = 0; r < d.nranks(); ++r) {
    const TileExtent& e = d.extent(r);
    for (int s = 0; s < 2; ++s) {
      const TileView v = f.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        if (e.i0 > 0)
          EXPECT_DOUBLE_EQ(v(-1, lj),
                           s * 1000.0 + (e.i0 - 1) + 24.0 * (e.j0 + lj));
        if (e.i0 + e.ni < 24)
          EXPECT_DOUBLE_EQ(v(e.ni, lj),
                           s * 1000.0 + (e.i0 + e.ni) + 24.0 * (e.j0 + lj));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tilings, TilingSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{1, 2},
                      std::pair{4, 3}, std::pair{6, 2}, std::pair{3, 6},
                      std::pair{24, 1}, std::pair{1, 18}, std::pair{5, 4}));

}  // namespace
}  // namespace v2d::grid
