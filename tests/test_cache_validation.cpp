/// \file test_cache_validation.cpp
/// \brief Cross-validation of the O(1) working-set classifier against the
/// trace-driven cache simulator.
///
/// The cost model classifies each kernel call's working set to a memory
/// level in O(1); the SetAssocCache/CacheHierarchy model replays actual
/// access streams. These tests check the two agree on streaming patterns
/// like the V2D kernels': when the classifier says "L1", the trace-driven
/// L1 must show high steady-state hit rates, and so on down the hierarchy.

#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/machine.hpp"

namespace v2d::sim {
namespace {

/// Stream `arrays` disjoint buffers of `bytes_each` through the hierarchy
/// `passes` times (after a warm-up pass) and return the steady-state L1
/// and L2 hit rates over the measured passes.
std::pair<double, double> stream(const MachineSpec& m, int arrays,
                                 std::uint64_t bytes_each, int passes) {
  CacheHierarchy h(m);
  const std::uint64_t stride = 1ull << 30;  // keep buffers far apart
  auto one_pass = [&] {
    for (int a = 0; a < arrays; ++a) {
      h.access_range(a * stride, bytes_each, /*is_write=*/a == 0);
    }
  };
  one_pass();  // warm-up (cold misses)
  const std::uint64_t l1_h0 = h.l1().hits(), l1_a0 = h.l1().accesses();
  const std::uint64_t l2_h0 = h.l2().hits(), l2_a0 = h.l2().accesses();
  for (int p = 0; p < passes; ++p) one_pass();
  const double l1_rate =
      static_cast<double>(h.l1().hits() - l1_h0) /
      static_cast<double>(h.l1().accesses() - l1_a0);
  const std::uint64_t l2_acc = h.l2().accesses() - l2_a0;
  const double l2_rate =
      l2_acc ? static_cast<double>(h.l2().hits() - l2_h0) / l2_acc : 1.0;
  return {l1_rate, l2_rate};
}

class ClassifierVsTrace : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifierVsTrace, AgreeOnStreamingWorkingSets) {
  const MachineSpec m = MachineSpec::a64fx();
  const std::uint64_t total = GetParam();
  const int arrays = 4;
  const std::uint64_t per_array = total / arrays;
  const MemLevel predicted = classify_working_set(total, m, 1);
  const auto [l1_rate, l2_rate] = stream(m, arrays, per_array, 3);
  switch (predicted) {
    case MemLevel::L1:
      EXPECT_GT(l1_rate, 0.9) << "classifier said L1 for " << total << " B";
      break;
    case MemLevel::L2:
      EXPECT_LT(l1_rate, 0.5) << "too big for L1 (" << total << " B)";
      EXPECT_GT(l2_rate, 0.9) << "classifier said L2 for " << total << " B";
      break;
    case MemLevel::HBM:
      EXPECT_LT(l2_rate, 0.5) << "classifier said HBM for " << total << " B";
      break;
    case MemLevel::kCount:
      FAIL();
  }
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, ClassifierVsTrace,
                         ::testing::Values(
                             // Comfortably inside each level (the
                             // classifier uses capacity boundaries; near
                             // the boundary conflict misses blur the
                             // answer, which is exactly why the cheap
                             // classifier is an approximation).
                             std::uint64_t{16} * 1024,        // L1
                             std::uint64_t{32} * 1024,        // L1
                             std::uint64_t{512} * 1024,       // L2
                             std::uint64_t{4} * 1024 * 1024,  // L2
                             std::uint64_t{32} * 1024 * 1024,   // HBM
                             std::uint64_t{128} * 1024 * 1024   // HBM
                             ));

TEST(ClassifierVsTrace, SharedL2ShrinksEffectiveCapacity) {
  // 1 MiB/rank fits an exclusive L2; with 12 ranks, the classifier demotes
  // to HBM — and the trace model agrees if we interleave 12 such streams
  // through one L2.
  const MachineSpec m = MachineSpec::a64fx();
  EXPECT_EQ(classify_working_set(1 << 20, m, 1), MemLevel::L2);
  EXPECT_EQ(classify_working_set(1 << 20, m, 12), MemLevel::HBM);

  CacheHierarchy h(m);
  const std::uint64_t stride = 1ull << 30;
  auto pass = [&] {
    for (int r = 0; r < 12; ++r) h.access_range(r * stride, 1 << 20, false);
  };
  pass();
  const std::uint64_t h0 = h.l2().hits(), a0 = h.l2().accesses();
  for (int p = 0; p < 2; ++p) pass();
  const double l2_rate = static_cast<double>(h.l2().hits() - h0) /
                         static_cast<double>(h.l2().accesses() - a0);
  EXPECT_LT(l2_rate, 0.5);  // 12 MiB of live streams thrash the 8 MiB L2
}

TEST(ClassifierVsTrace, MatvecWorkingSetsAcrossTableOneTopologies) {
  // The Table I working sets: 7 tile-shaped arrays of the 200×100×2
  // problem. P = 1 must classify L2 (2.24 MiB), P = 40 with 10 CMG
  // sharers still L2 (56 KiB each but a 0.67 MiB share), never HBM.
  const MachineSpec m = MachineSpec::a64fx();
  const std::uint64_t zones = 200 * 100 * 2;
  for (const int p : {1, 10, 20, 25, 40, 50}) {
    const std::uint64_t ws = 7 * zones / p * 8;
    const int sharers = p >= 4 ? std::min(12, (p + 3) / 4) : 1;
    const MemLevel level =
        classify_working_set(ws, m, static_cast<std::uint32_t>(sharers));
    EXPECT_NE(level, MemLevel::HBM) << "P=" << p;
    if (p == 1) EXPECT_EQ(level, MemLevel::L2);
  }
}

}  // namespace
}  // namespace v2d::sim
