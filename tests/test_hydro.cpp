/// \file test_hydro.cpp
/// \brief Tests for the EOS, the HLL Euler solver and rad-hydro coupling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hydro/coupling.hpp"
#include "hydro/euler.hpp"
#include "hydro/setups.hpp"
#include "rad/gaussian.hpp"
#include "support/error.hpp"

namespace v2d::hydro {
namespace {

struct HydroSetup {
  grid::Grid2D g;
  grid::Decomposition d;
  GammaLawEos eos;

  explicit HydroSetup(int nx1 = 64, int nx2 = 8, int px1 = 1, int px2 = 1,
                      double gamma = 1.4)
      : g(nx1, nx2, 0.0, 1.0, 0.0, 0.125),
        d(g, mpisim::CartTopology(px1, px2)),
        eos(gamma) {}
};

// --- EOS --------------------------------------------------------------------

TEST(Eos, GammaLawIdentities) {
  const GammaLawEos eos(1.4);
  const double rho = 2.0, p = 3.0;
  EXPECT_DOUBLE_EQ(eos.pressure(rho, eos.eint(rho, p)), p);
  EXPECT_NEAR(eos.sound_speed(rho, p), std::sqrt(1.4 * 1.5), 1e-12);
  EXPECT_THROW(GammaLawEos(1.0), Error);
}

// --- primitive/conserved round trip ------------------------------------------

TEST(HydroStateTest, PrimitiveRoundTrip) {
  HydroSetup su(8, 8);
  HydroState state(su.g, su.d);
  state.set_primitive(su.eos, 3, 4, 2.0, 0.5, -0.25, 1.5);
  EXPECT_DOUBLE_EQ(state.field().gget(kRho, 3, 4), 2.0);
  EXPECT_DOUBLE_EQ(state.field().gget(kMom1, 3, 4), 1.0);
  EXPECT_DOUBLE_EQ(state.field().gget(kMom2, 3, 4), -0.5);
  const double kinetic = 0.5 * 2.0 * (0.25 + 0.0625);
  EXPECT_NEAR(state.field().gget(kEner, 3, 4),
              1.5 / 0.4 + kinetic, 1e-12);
  EXPECT_THROW(state.set_primitive(su.eos, 0, 0, -1.0, 0, 0, 1.0), Error);
}

// --- Sod shock tube -------------------------------------------------------------

TEST(Euler, SodShockTube) {
  HydroSetup su(200, 4);
  HydroState state(su.g, su.d);
  setup_sod(state, su.eos, 0.5);
  HydroSolver solver(su.g, su.d, su.eos, HydroBc::Outflow, 0.4);
  linalg::ExecContext ctx;
  double t = 0.0;
  while (t < 0.2) {
    const double dt = std::min(solver.cfl_dt(ctx, state), 0.2 - t);
    solver.step(ctx, state, dt);
    t += dt;
  }
  // Exact Sod solution at t=0.2 (gamma=1.4): contact at x≈0.685, shock at
  // x≈0.850, post-shock density ≈ 0.266, left state undisturbed до x≈0.26.
  const int j = 2;
  auto rho_at = [&](double x) {
    const int i = static_cast<int>(x * 200);
    return state.field().gget(kRho, i, j);
  };
  EXPECT_NEAR(rho_at(0.10), 1.0, 0.02);     // undisturbed left state
  EXPECT_NEAR(rho_at(0.95), 0.125, 0.01);   // undisturbed right state
  EXPECT_NEAR(rho_at(0.75), 0.266, 0.05);   // between contact and shock
  // Shock has passed x=0.8 but not x=0.9.
  EXPECT_GT(rho_at(0.80), 0.2);
  EXPECT_LT(rho_at(0.90), 0.15);
}

TEST(Euler, SodPositivity) {
  HydroSetup su(100, 4);
  HydroState state(su.g, su.d);
  setup_sod(state, su.eos);
  HydroSolver solver(su.g, su.d, su.eos);
  linalg::ExecContext ctx;
  for (int s = 0; s < 50; ++s) {
    solver.step(ctx, state, solver.cfl_dt(ctx, state));
  }
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 100; ++i)
      EXPECT_GT(state.field().gget(kRho, i, j), 0.0);
}

TEST(Euler, UniformFlowIsExact) {
  // A uniform moving state must stay exactly uniform (Galilean sanity).
  HydroSetup su(32, 8);
  HydroState state(su.g, su.d);
  const auto& g = su.g;
  for (int j = 0; j < g.nx2(); ++j)
    for (int i = 0; i < g.nx1(); ++i)
      state.set_primitive(su.eos, i, j, 1.0, 0.3, 0.1, 1.0);
  HydroSolver solver(su.g, su.d, su.eos, HydroBc::Outflow);
  linalg::ExecContext ctx;
  for (int s = 0; s < 5; ++s) solver.step(ctx, state, 0.001);
  for (int j = 0; j < g.nx2(); ++j)
    for (int i = 0; i < g.nx1(); ++i)
      EXPECT_NEAR(state.field().gget(kRho, i, j), 1.0, 1e-12);
}

// --- Sedov blast ------------------------------------------------------------------

TEST(Euler, SedovConservesMassAndSymmetry) {
  const grid::Grid2D g(40, 40, 0.0, 1.0, 0.0, 1.0);
  const grid::Decomposition d(g, mpisim::CartTopology(2, 2));
  const GammaLawEos eos(1.4);
  HydroState state(g, d);
  setup_sedov(state, eos, 1.0, 0.08);
  const double mass0 = state.total_mass();
  const double energy0 = state.total_energy();
  HydroSolver solver(g, d, eos, HydroBc::Reflecting, 0.3);
  linalg::ExecContext ctx;
  for (int s = 0; s < 20; ++s) {
    solver.step(ctx, state, solver.cfl_dt(ctx, state));
  }
  // Reflecting box: mass and energy conserved.
  EXPECT_NEAR(state.total_mass(), mass0, 1e-10 * mass0);
  EXPECT_NEAR(state.total_energy(), energy0, 1e-10 * energy0);
  // Quadrant symmetry of the blast (center at 0.5, 0.5).
  EXPECT_NEAR(state.field().gget(kRho, 10, 20),
              state.field().gget(kRho, 29, 19), 1e-9);
  EXPECT_NEAR(state.field().gget(kRho, 20, 10),
              state.field().gget(kRho, 19, 29), 1e-9);
}

TEST(Euler, BlastExpandsOutward) {
  const grid::Grid2D g(32, 32, 0.0, 1.0, 0.0, 1.0);
  const grid::Decomposition d(g, mpisim::CartTopology(1, 1));
  const GammaLawEos eos(1.4);
  HydroState state(g, d);
  setup_sedov(state, eos, 1.0, 0.1);
  HydroSolver solver(g, d, eos, HydroBc::Outflow, 0.3);
  linalg::ExecContext ctx;
  const double rho_mid_before = state.field().gget(kRho, 24, 16);
  for (int s = 0; s < 30; ++s)
    solver.step(ctx, state, solver.cfl_dt(ctx, state));
  // A shell forms: density at the former center drops, mid-radius rises.
  EXPECT_LT(state.field().gget(kRho, 16, 16), 1.0);
  EXPECT_GT(state.field().gget(kRho, 24, 16), rho_mid_before);
}

TEST(Euler, CflRespectsSoundSpeed) {
  HydroSetup su(32, 8);
  HydroState state(su.g, su.d);
  setup_uniform(state, su.eos, 1.0, 1.0);
  HydroSolver solver(su.g, su.d, su.eos, HydroBc::Outflow, 0.4);
  linalg::ExecContext ctx;
  const double dt = solver.cfl_dt(ctx, state);
  const double c = su.eos.sound_speed(1.0, 1.0);
  // The limiting direction is whichever has the smaller zone width.
  EXPECT_NEAR(dt, 0.4 * std::min(su.g.dx1(), su.g.dx2()) / c, 1e-12);
}

TEST(Euler, TilingInvariance) {
  // Hydro is tiling-exact (elementwise fluxes + ghost exchange).
  auto run = [](int px1, int px2) {
    const grid::Grid2D g(48, 12, 0.0, 1.0, 0.0, 0.25);
    const grid::Decomposition d(g, mpisim::CartTopology(px1, px2));
    const GammaLawEos eos(1.4);
    HydroState state(g, d);
    setup_sod(state, eos);
    HydroSolver solver(g, d, eos);
    linalg::ExecContext ctx;
    for (int s = 0; s < 10; ++s) solver.step(ctx, state, 0.002);
    return state.field().gather_global();
  };
  const auto a = run(1, 1);
  const auto b = run(4, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(a[k], b[k]);
}

// --- rad-hydro coupling --------------------------------------------------------

TEST(Coupling, EnergyIsExactlyTransferred) {
  const grid::Grid2D g(16, 16, 0.0, 1.0, 0.0, 1.0);
  const grid::Decomposition d(g, mpisim::CartTopology(2, 1));
  const GammaLawEos eos(5.0 / 3.0);
  HydroState gas(g, d);
  setup_uniform(gas, eos, 1.0, 0.1);

  rad::OpacitySet opac(2);
  opac.absorption(0) = rad::OpacityLaw::constant(3.0);
  opac.absorption(1) = rad::OpacityLaw::constant(3.0);
  rad::FldConfig cfg;
  rad::FldBuilder builder(g, d, 2, opac, cfg);
  builder.temperature().fill(0.1);  // cold matter, hot radiation

  linalg::DistVector e_rad(g, d, 2);
  linalg::ExecContext ctx;
  e_rad.fill(ctx, 5.0);

  const double gas_before = gas.total_energy();
  const double rad_before = rad::GaussianPulse::total_energy(e_rad);
  const CouplingResult res =
      apply_rad_heating(ctx, gas, e_rad, builder, eos, 0.01);
  const double gas_after = gas.total_energy();
  const double rad_after = rad::GaussianPulse::total_energy(e_rad);

  EXPECT_GT(res.energy_to_gas, 0.0);  // radiation heats the cold gas
  EXPECT_NEAR(gas_after - gas_before, res.energy_to_gas,
              1e-10 * std::fabs(res.energy_to_gas));
  EXPECT_NEAR(rad_before - rad_after, res.energy_to_gas,
              1e-10 * std::fabs(res.energy_to_gas));
}

}  // namespace
}  // namespace v2d::hydro
