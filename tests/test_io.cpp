/// \file test_io.cpp
/// \brief Unit tests for the h5lite hierarchical container.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "io/h5lite.hpp"
#include "support/error.hpp"

namespace v2d::io {
namespace {

TEST(H5Lite, AttrsOfAllKinds) {
  H5File f;
  f.root().set_attr("i", std::int64_t{-42});
  f.root().set_attr("d", 3.25);
  f.root().set_attr("s", std::string("hello"));
  EXPECT_EQ(f.root().attr_i64("i"), -42);
  EXPECT_DOUBLE_EQ(f.root().attr_f64("d"), 3.25);
  EXPECT_EQ(f.root().attr_str("s"), "hello");
  EXPECT_TRUE(f.root().has_attr("i"));
  EXPECT_FALSE(f.root().has_attr("missing"));
  EXPECT_THROW(f.root().attr("missing"), Error);
}

TEST(H5Lite, DatasetDimsMustMatch) {
  H5File f;
  const std::vector<double> d = {1, 2, 3, 4, 5, 6};
  EXPECT_NO_THROW(f.root().write("ok", std::span<const double>(d), {2, 3}));
  EXPECT_THROW(f.root().write("bad", std::span<const double>(d), {2, 2}),
               Error);
}

TEST(H5Lite, NestedGroups) {
  H5File f;
  Group& mesh = f.root().create_group("mesh");
  Group& fields = mesh.create_group("fields");
  fields.set_attr("n", std::int64_t{1});
  EXPECT_TRUE(f.root().has_group("mesh"));
  EXPECT_EQ(f.root().group("mesh").group("fields").attr_i64("n"), 1);
  EXPECT_THROW(f.root().group("nope"), Error);
  // create_group is idempotent.
  EXPECT_EQ(&f.root().create_group("mesh"), &mesh);
}

TEST(H5Lite, SerializeRoundTrip) {
  H5File f;
  f.root().set_attr("time", 1.25);
  Group& g = f.root().create_group("fields");
  const std::vector<double> e = {0.5, 1.5, 2.5, 3.5};
  g.write("energy", std::span<const double>(e), {2, 2});
  const std::vector<std::int64_t> ids = {7, 8, 9};
  g.write("ids", std::span<const std::int64_t>(ids), {3});

  const H5File back = H5File::deserialize(f.serialize());
  EXPECT_DOUBLE_EQ(back.root().attr_f64("time"), 1.25);
  const Dataset& d = back.root().group("fields").dataset("energy");
  EXPECT_EQ(d.type, Dataset::Type::F64);
  ASSERT_EQ(d.dims, (std::vector<std::uint64_t>{2, 2}));
  EXPECT_DOUBLE_EQ(d.f64[3], 3.5);
  const Dataset& di = back.root().group("fields").dataset("ids");
  EXPECT_EQ(di.type, Dataset::Type::I64);
  EXPECT_EQ(di.i64[2], 9);
}

TEST(H5Lite, TruncatedStreamRejected) {
  H5File f;
  f.root().set_attr("x", 1.0);
  auto bytes = f.serialize();
  bytes.resize(bytes.size() - 4);
  EXPECT_THROW(H5File::deserialize(bytes), Error);
}

TEST(H5Lite, BadMagicRejected) {
  std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_THROW(H5File::deserialize(junk), Error);
}

TEST(H5Lite, TrailingBytesRejected) {
  H5File f;
  auto bytes = f.serialize();
  bytes.push_back(0);
  EXPECT_THROW(H5File::deserialize(bytes), Error);
}

TEST(H5Lite, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "/h5lite_test.h5l";
  {
    H5File f;
    f.root().set_attr("step", std::int64_t{12});
    const std::vector<double> d = {1.0, 2.0};
    f.root().write("v", std::span<const double>(d), {2});
    f.save(path);
  }
  const H5File back = H5File::load(path);
  EXPECT_EQ(back.root().attr_i64("step"), 12);
  EXPECT_DOUBLE_EQ(back.root().dataset("v").f64[1], 2.0);
  std::remove(path.c_str());
}

TEST(H5Lite, LoadMissingFileThrows) {
  EXPECT_THROW(H5File::load("/nonexistent/path/file.h5l"), Error);
}

TEST(H5Lite, EmptyFileRoundTrips) {
  const H5File back = H5File::deserialize(H5File{}.serialize());
  EXPECT_TRUE(back.root().groups().empty());
  EXPECT_TRUE(back.root().datasets().empty());
}

/// save() is atomic: bytes land on a side file first, then rename onto
/// the real path.  A stale torn side file (a crashed earlier writer) is
/// simply overwritten, and the real path never holds a half-written
/// checkpoint.
TEST(H5Lite, SaveIsAtomicAndSurvivesAStaleTornSideFile) {
  const std::string path = ::testing::TempDir() + "/h5_atomic.h5l";
  {
    // A previous writer died mid-save, leaving garbage on the side file.
    std::ofstream torn(path + ".tmp", std::ios::binary);
    torn << "H5L!garbage";
  }
  H5File f;
  f.root().set_attr("step", std::int64_t{4});
  f.save(path);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());  // renamed away
  EXPECT_EQ(H5File::load(path).root().attr_i64("step"), 4);

  // Overwrite through the same path is also atomic.
  f.root().set_attr("step", std::int64_t{8});
  f.save(path);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  EXPECT_EQ(H5File::load(path).root().attr_i64("step"), 8);
  std::remove(path.c_str());
}

TEST(H5Lite, DatasetOverwriteReplaces) {
  H5File f;
  const std::vector<double> a = {1.0}, b = {2.0, 3.0};
  f.root().write("x", std::span<const double>(a), {1});
  f.root().write("x", std::span<const double>(b), {2});
  EXPECT_EQ(f.root().dataset("x").element_count(), 2u);
}

}  // namespace
}  // namespace v2d::io
