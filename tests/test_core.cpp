/// \file test_core.cpp
/// \brief End-to-end tests of the Simulation driver and run configuration.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/v2d.hpp"
#include "io/h5lite.hpp"
#include "support/error.hpp"

namespace v2d::core {
namespace {

RunConfig small_config() {
  RunConfig cfg;
  cfg.nx1 = 40;
  cfg.nx2 = 20;
  cfg.steps = 2;
  cfg.dt = 0.02;
  return cfg;
}

TEST(Config, OptionRoundTrip) {
  Options opt;
  RunConfig::register_options(opt);
  const char* argv[] = {"prog",          "--nx1",      "64",
                        "--nprx1",       "4",          "--nprx2",
                        "2",             "--compilers", "gnu,cray",
                        "--ganged",      "0",          "--limiter",
                        "wilson",        "--precond",  "jacobi"};
  opt.parse(15, argv);
  const RunConfig cfg = RunConfig::from_options(opt);
  EXPECT_EQ(cfg.nx1, 64);
  EXPECT_EQ(cfg.nranks(), 8);
  ASSERT_EQ(cfg.compilers.size(), 2u);
  EXPECT_EQ(cfg.compilers[1], "cray");
  EXPECT_FALSE(cfg.ganged);
  EXPECT_EQ(cfg.limiter, rad::LimiterKind::Wilson);
  EXPECT_EQ(cfg.preconditioner, "jacobi");
}

TEST(SimulationTest, RunsAndConverges) {
  core::Simulation sim(small_config());
  sim.run();
  EXPECT_EQ(sim.steps_taken(), 2);
  EXPECT_NEAR(sim.time(), 0.04, 1e-12);
  EXPECT_GT(sim.elapsed(0), 0.0);
  EXPECT_GT(sim.total_energy(), 0.0);
}

TEST(SimulationTest, SveFasterThanNoSve) {
  RunConfig cfg = small_config();
  cfg.compilers = {"cray", "cray-noopt"};
  core::Simulation sim(cfg);
  sim.run();
  EXPECT_LT(sim.elapsed(0), sim.elapsed(1));
}

TEST(SimulationTest, CompilerOrderingAtOneProcessor) {
  RunConfig cfg = small_config();
  cfg.compilers = {"gnu", "fujitsu", "cray"};
  core::Simulation sim(cfg);
  sim.run();
  // Table I, P = 1: GNU slowest, Cray fastest.
  EXPECT_GT(sim.elapsed(0), sim.elapsed(1));
  EXPECT_GT(sim.elapsed(1), sim.elapsed(2));
}

TEST(SimulationTest, ProfilerSeesThreeCallSites) {
  core::Simulation sim(small_config());
  sim.run();
  const auto flat = sim.profiler(0).flat();
  int sites = 0;
  for (const auto& e : flat) {
    if (e.path.find("bicgstab-site-") != std::string::npos) {
      ++sites;
      EXPECT_EQ(e.calls, 2u);  // two steps
      EXPECT_GT(e.inclusive_s, 0.0);
    }
  }
  EXPECT_EQ(sites, 3);
}

TEST(SimulationTest, IterationsAreTilingIndependent) {
  int total_ref = -1;
  for (const auto [px1, px2] : {std::pair{1, 1}, std::pair{4, 2},
                                std::pair{2, 4}}) {
    RunConfig cfg = small_config();
    cfg.nprx1 = px1;
    cfg.nprx2 = px2;
    core::Simulation sim(cfg);
    const auto stats = sim.advance();
    if (total_ref < 0) total_ref = stats.total_iterations();
    EXPECT_EQ(stats.total_iterations(), total_ref)
        << px1 << "x" << px2;
  }
}

TEST(SimulationTest, MoreRanksDontSlowSmallCounts) {
  // With the paper's configuration shape, going 1 -> 8 ranks must reduce
  // the simulated time (parallel speedup at small P).
  RunConfig cfg1 = small_config();
  RunConfig cfg8 = small_config();
  cfg8.nprx1 = 4;
  cfg8.nprx2 = 2;
  core::Simulation s1(cfg1), s8(cfg8);
  s1.run();
  s8.run();
  EXPECT_LT(s8.elapsed(0), s1.elapsed(0));
}

TEST(SimulationTest, AnalyticErrorSmallForUnlimitedDiffusion) {
  RunConfig cfg = small_config();
  cfg.nx1 = 64;
  cfg.nx2 = 32;
  cfg.limiter = rad::LimiterKind::None;
  cfg.steps = 5;
  core::Simulation sim(cfg);
  sim.run();
  // First-order backward Euler at dt=0.02: a few percent truncation error.
  EXPECT_LT(sim.analytic_error(), 0.04);
}

TEST(SimulationTest, CheckpointWritesFields) {
  const std::string path = ::testing::TempDir() + "/v2d_ckpt.h5l";
  RunConfig cfg = small_config();
  cfg.checkpoint_path = path;
  core::Simulation sim(cfg);
  sim.run();

  const io::H5File f = io::H5File::load(path);
  EXPECT_EQ(f.root().attr_str("code"), "v2dsve");
  EXPECT_EQ(f.root().attr_i64("step"), 2);
  const io::Dataset& d = f.root().group("fields").dataset("radiation_energy");
  EXPECT_EQ(d.element_count(),
            static_cast<std::uint64_t>(cfg.ns) * cfg.nx1 * cfg.nx2);
  // Io work was priced.
  EXPECT_TRUE(sim.exec().merged_ledger(0).has("checkpoint"));
  std::remove(path.c_str());
}

TEST(SimulationTest, GangedReducesAllreduceCount) {
  RunConfig ganged = small_config(), classic = small_config();
  ganged.nprx1 = classic.nprx1 = 4;
  classic.ganged = false;
  core::Simulation sg(ganged), sc(classic);
  sg.run();
  sc.run();
  const auto mg = sg.exec().merged_ledger(0);
  const auto mc = sc.exec().merged_ledger(0);
  EXPECT_LT(mg.at("mpi_allreduce").comm_messages,
            mc.at("mpi_allreduce").comm_messages);
}

TEST(SimulationTest, UnknownCompilerRejected) {
  RunConfig cfg = small_config();
  cfg.compilers = {"msvc"};
  EXPECT_THROW(core::Simulation sim(cfg), Error);
}

}  // namespace
}  // namespace v2d::core
