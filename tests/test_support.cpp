/// \file test_support.cpp
/// \brief Unit tests for the support substrate.

#include <gtest/gtest.h>

#include <sstream>

#include "support/dd.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace v2d {
namespace {

// --- error ------------------------------------------------------------------

TEST(Error, RequireThrowsWithContext) {
  try {
    V2D_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  V2D_CHECK(2 + 2 == 4, "never");
  SUCCEED();
}

TEST(Error, FailAlwaysThrows) { EXPECT_THROW(V2D_FAIL("boom"), Error); }

// --- options ----------------------------------------------------------------

TEST(Options, DefaultsAndTypes) {
  Options o;
  o.add("alpha", "1.5", "a double").add("count", "7", "an int");
  o.add_flag("verbose", "a flag");
  const char* argv[] = {"prog"};
  o.parse(1, argv);
  EXPECT_DOUBLE_EQ(o.get_double("alpha"), 1.5);
  EXPECT_EQ(o.get_int("count"), 7);
  EXPECT_FALSE(o.get_bool("verbose"));
  EXPECT_FALSE(o.was_set("alpha"));
}

TEST(Options, ParseBothSyntaxes) {
  Options o;
  o.add("alpha", "0", "").add("beta", "0", "");
  o.add_flag("flag", "");
  const char* argv[] = {"prog", "--alpha", "3", "--beta=4", "--flag", "pos"};
  o.parse(6, argv);
  EXPECT_EQ(o.get_int("alpha"), 3);
  EXPECT_EQ(o.get_int("beta"), 4);
  EXPECT_TRUE(o.get_bool("flag"));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "pos");
  EXPECT_TRUE(o.was_set("alpha"));
}

TEST(Options, UnknownOptionThrows) {
  Options o;
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(o.parse(3, argv), Error);
}

TEST(Options, MissingValueThrows) {
  Options o;
  o.add("alpha", "0", "");
  const char* argv[] = {"prog", "--alpha"};
  EXPECT_THROW(o.parse(2, argv), Error);
}

TEST(Options, BadNumberThrows) {
  Options o;
  o.add("alpha", "0", "");
  const char* argv[] = {"prog", "--alpha", "xyz"};
  o.parse(3, argv);
  EXPECT_THROW(o.get_int("alpha"), Error);
  EXPECT_THROW(o.get_double("alpha"), Error);
}

TEST(Options, DuplicateRegistrationThrows) {
  Options o;
  o.add("a", "1", "");
  EXPECT_THROW(o.add("a", "2", ""), Error);
}

TEST(Options, UsageListsEverything) {
  Options o;
  o.add("alpha", "1", "the alpha value");
  o.add_flag("quiet", "hush");
  const std::string u = o.usage("prog");
  EXPECT_NE(u.find("--alpha"), std::string::npos);
  EXPECT_NE(u.find("--quiet"), std::string::npos);
  EXPECT_NE(u.find("the alpha value"), std::string::npos);
}

// --- table ------------------------------------------------------------------

TEST(TableWriter, AlignsColumns) {
  TableWriter t("title");
  t.set_columns({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("| 333 |"), std::string::npos);
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter t;
  t.set_columns({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableWriter, TsvRoundTrip) {
  TableWriter t;
  t.set_columns({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.tsv(), "x\ty\n1\t2\n");
}

TEST(TableWriter, NumFormatting) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::integer(42), "42");
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BelowStaysBelow) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

// --- units ------------------------------------------------------------------

TEST(Units, Bytes) {
  EXPECT_EQ(units::bytes(512), "512.00 B");
  EXPECT_EQ(units::bytes(2048), "2.00 KiB");
  EXPECT_EQ(units::bytes(3.0 * 1024 * 1024), "3.00 MiB");
}

TEST(Units, Seconds) {
  EXPECT_EQ(units::seconds(2.5), "2.50 s");
  EXPECT_EQ(units::seconds(2.5e-3), "2.50 ms");
  EXPECT_EQ(units::seconds(2.5e-6), "2.50 us");
}

TEST(Units, Rate) {
  EXPECT_EQ(units::rate(2.0e9, "flop"), "2.00 Gflop/s");
}

// --- log --------------------------------------------------------------------

TEST(Log, LevelFilters) {
  std::ostringstream os;
  log::set_stream(&os);
  log::set_level(log::Level::Warn);
  V2D_LOG_INFO("hidden");
  V2D_LOG_WARN("visible");
  log::set_stream(nullptr);
  EXPECT_EQ(os.str().find("hidden"), std::string::npos);
  EXPECT_NE(os.str().find("visible"), std::string::npos);
}

// --- dd ---------------------------------------------------------------------

TEST(DdAccumulator, ExactForCancellation) {
  DdAccumulator s;
  s.add(1.0e16);
  s.add(1.0);
  s.add(-1.0e16);
  EXPECT_DOUBLE_EQ(s.value(), 1.0);
}

TEST(DdAccumulator, OrderIndependent) {
  // Same addends, two groupings: results must agree to the last bit.
  Rng r(42);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = r.uniform(-1.0, 1.0) * std::pow(10.0, r.below(12));
  DdAccumulator fwd, rev;
  for (std::size_t i = 0; i < xs.size(); ++i) fwd.add(xs[i]);
  for (std::size_t i = xs.size(); i-- > 0;) rev.add(xs[i]);
  EXPECT_DOUBLE_EQ(fwd.value(), rev.value());
}

TEST(DdAccumulator, MergePartials) {
  std::vector<double> xs = {1e8, -1e-8, 3.5, -1e8, 2e-8};
  DdAccumulator whole;
  for (double x : xs) whole.add(x);
  DdAccumulator a, b;
  a.add(xs[0]);
  a.add(xs[1]);
  b.add(xs[2]);
  b.add(xs[3]);
  b.add(xs[4]);
  a.add(b);
  EXPECT_DOUBLE_EQ(whole.value(), a.value());
}

}  // namespace
}  // namespace v2d
