/// \file test_restart.cpp
/// \brief h5lite checkpoint -> restart round-trips: a restarted run must
/// be bit-identical to an uninterrupted one — fields, step count,
/// simulated time, and every profile's per-rank clocks and ledgers — in
/// both VLA execution modes; plus the checkpoint-cadence contract (no
/// duplicate priced final write).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/v2d.hpp"
#include "io/h5lite.hpp"
#include "support/error.hpp"

#include "ledger_testutil.hpp"

namespace v2d {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::RunConfig base_config(const std::string& problem,
                            const std::string& vla_exec) {
  core::RunConfig cfg;
  cfg.problem = problem;
  cfg.nx1 = 32;
  cfg.nx2 = 16;
  cfg.steps = 4;
  cfg.dt = 0.02;
  cfg.nprx1 = 2;
  cfg.nprx2 = 2;
  cfg.compilers = {"cray", "gnu"};
  cfg.vla_exec = vla_exec;
  if (problem == "gaussian-pulse") cfg.kappa_absorb = 0.4;  // evolve T too
  if (problem == "sedov-radhydro") cfg.nx2 = 32;
  return cfg;
}

void expect_exec_state_equal(const core::Simulation& a,
                             const core::Simulation& b,
                             const std::string& where) {
  ASSERT_EQ(a.exec().nprofiles(), b.exec().nprofiles()) << where;
  for (std::size_t p = 0; p < a.exec().nprofiles(); ++p) {
    for (int r = 0; r < a.exec().nranks(); ++r) {
      const std::string tag =
          where + " p" + std::to_string(p) + " r" + std::to_string(r);
      EXPECT_EQ(a.exec().rank_time(p, r), b.exec().rank_time(p, r)) << tag;
      testutil::expect_ledgers_identical(a.exec().ledger(p, r),
                                         b.exec().ledger(p, r), tag);
    }
  }
}

/// Uninterrupted run vs. run-to-midpoint + restart + run-to-end, with the
/// same periodic checkpoint cadence so both runs price identical Io.
void round_trip(const std::string& problem, const std::string& vla_exec) {
  const std::string mid = temp_path("v2d_mid_" + problem + vla_exec + ".h5l");
  const std::string full =
      temp_path("v2d_full_" + problem + vla_exec + ".h5l");
  const std::string resumed =
      temp_path("v2d_res_" + problem + vla_exec + ".h5l");

  // Uninterrupted reference: checkpoints at steps 2 and 4.
  core::RunConfig cfg = base_config(problem, vla_exec);
  cfg.checkpoint_path = full;
  cfg.checkpoint_every = 2;
  core::Simulation ref(cfg);
  ref.run();
  ASSERT_EQ(ref.steps_taken(), cfg.steps);

  // Interrupted run: stop after the step-2 checkpoint.
  core::RunConfig half = cfg;
  half.steps = 2;
  half.checkpoint_path = mid;
  core::Simulation first(half);
  first.run();
  ASSERT_EQ(first.steps_taken(), 2);

  // Resume from the midpoint file and finish.
  core::RunConfig rest = cfg;
  rest.checkpoint_path = resumed;
  core::Simulation second(rest);
  second.restart(mid);
  ASSERT_EQ(second.steps_taken(), 2);
  second.run();

  const std::string where = problem + "/" + vla_exec;
  ASSERT_EQ(second.steps_taken(), ref.steps_taken()) << where;
  EXPECT_EQ(second.time(), ref.time()) << where;

  const auto fa = ref.radiation().field().gather_global();
  const auto fb = second.radiation().field().gather_global();
  ASSERT_EQ(fa.size(), fb.size()) << where;
  for (std::size_t i = 0; i < fa.size(); ++i)
    ASSERT_EQ(fa[i], fb[i]) << where << " zone " << i;

  EXPECT_EQ(second.analytic_error(), ref.analytic_error()) << where;
  expect_exec_state_equal(ref, second, where);

  std::remove(mid.c_str());
  std::remove(full.c_str());
  std::remove(resumed.c_str());
}

TEST(Restart, GaussianPulseRoundTripNative) {
  round_trip("gaussian-pulse", "native");
}
TEST(Restart, GaussianPulseRoundTripInterpret) {
  round_trip("gaussian-pulse", "interpret");
}
TEST(Restart, HotspotAbsorberRoundTripNative) {
  round_trip("hotspot-absorber", "native");
}
TEST(Restart, TwoSpeciesRelaxRoundTripNative) {
  round_trip("two-species-relax", "native");
}
TEST(Restart, SedovRadhydroRoundTripNative) {
  round_trip("sedov-radhydro", "native");
}

// --- cadence contract --------------------------------------------------------

std::uint64_t checkpoint_calls(const core::Simulation& sim) {
  const auto led = sim.exec().merged_ledger(0);
  return led.has("checkpoint") ? led.at("checkpoint").counts.calls : 0;
}

TEST(Restart, FinalCheckpointNotDuplicatedWhenCadenceCoversLastStep) {
  // steps = 4, every 2: the periodic cadence already wrote step 4 — the
  // run must price exactly 2 checkpoint writes per rank, not 3.
  const std::string path = temp_path("v2d_cadence.h5l");
  core::RunConfig cfg = base_config("gaussian-pulse", "native");
  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 2;
  core::Simulation sim(cfg);
  sim.run();
  EXPECT_EQ(checkpoint_calls(sim),
            2u * static_cast<std::uint64_t>(cfg.nranks()));
  const io::H5File f = io::H5File::load(path);
  EXPECT_EQ(f.root().attr_i64("step"), 4);
  std::remove(path.c_str());
}

TEST(Restart, FinalCheckpointStillWrittenOffCadence) {
  // steps = 3, every 2: periodic write at step 2 plus the final at 3.
  const std::string path = temp_path("v2d_cadence_off.h5l");
  core::RunConfig cfg = base_config("gaussian-pulse", "native");
  cfg.steps = 3;
  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 2;
  core::Simulation sim(cfg);
  sim.run();
  EXPECT_EQ(checkpoint_calls(sim),
            2u * static_cast<std::uint64_t>(cfg.nranks()));
  const io::H5File f = io::H5File::load(path);
  EXPECT_EQ(f.root().attr_i64("step"), 3);
  std::remove(path.c_str());
}

TEST(Restart, ResumePastEndStillWritesTheConfiguredCheckpoint) {
  // Resuming at step == cfg.steps from file A with --checkpoint B takes
  // zero steps, but B must still be written (only a resume from B itself
  // counts as B being up to date).
  const std::string a = temp_path("v2d_resume_a.h5l");
  const std::string b = temp_path("v2d_resume_b.h5l");
  core::RunConfig cfg = base_config("gaussian-pulse", "native");
  cfg.steps = 2;
  cfg.checkpoint_path = a;
  core::Simulation first(cfg);
  first.run();

  core::RunConfig cont = cfg;
  cont.checkpoint_path = b;
  core::Simulation second(cont);
  second.restart(a);
  second.run();
  const io::H5File f = io::H5File::load(b);  // throws if never written
  EXPECT_EQ(f.root().attr_i64("step"), 2);

  // Resuming from the configured path itself writes no duplicate.
  core::Simulation third(cfg);
  third.restart(a);
  const auto before = checkpoint_calls(third);
  third.run();
  EXPECT_EQ(checkpoint_calls(third), before);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Restart, MismatchedConfigurationRejected) {
  const std::string path = temp_path("v2d_mismatch.h5l");
  core::RunConfig cfg = base_config("gaussian-pulse", "native");
  cfg.steps = 1;
  core::Simulation sim(cfg);
  sim.run();
  sim.checkpoint(path);

  core::RunConfig other = cfg;
  other.problem = "two-species-relax";
  other.kappa_absorb = 0.0;
  core::Simulation wrong_problem(other);
  EXPECT_THROW(wrong_problem.restart(path), Error);

  core::RunConfig small = cfg;
  small.nx1 = 16;
  core::Simulation wrong_mesh(small);
  EXPECT_THROW(wrong_mesh.restart(path), Error);

  // Physics/solver/pricing knobs are pinned in the checkpoint: resuming
  // under different ones is not bit-identical and must be rejected.
  for (auto mutate : {+[](core::RunConfig& c) { c.kappa_total = 12.0; },
                      +[](core::RunConfig& c) { c.dt = 0.05; },
                      +[](core::RunConfig& c) { c.preconditioner = "jacobi"; },
                      +[](core::RunConfig& c) { c.fuse = "on"; }}) {
    core::RunConfig knob = cfg;
    mutate(knob);
    core::Simulation wrong_knob(knob);
    EXPECT_THROW(wrong_knob.restart(path), Error);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace v2d
