/// \file test_fusion_planner.cpp
/// \brief The fusion planner: plan determinism, legality, DAG capture and
/// the --fuse plan differential contract.
///
/// Four layers, extending test_fusion.cpp's oracle suite:
///   1. plan determinism — the built-in plan dump is byte-identical across
///      repeated planning and across host-thread counts;
///   2. legality — write-after-read across a reduction cuts the group (in
///      both plan_chain and the DAG annotator), and a reduction over an
///      unstored temporary is rejected outright;
///   3. DAG capture — the first Plan-mode solver iteration of each
///      configuration is recorded once, on the driving thread only, and
///      the capture prices nothing;
///   4. differential — --fuse plan is bit-identical in fields to both off
///      and on, and bit-identical in per-profile per-rank clocks and full
///      cost ledgers to on (the hand-written oracle), across solvers ×
///      preconditioners × exec modes × VL tail shapes — solo and in a
///      mixed-fuse farm.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/v2d.hpp"
#include "farm/farm.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/cg.hpp"
#include "linalg/dag_capture.hpp"
#include "linalg/fusion/fused_exec.hpp"
#include "linalg/fusion/planner.hpp"
#include "linalg/precond.hpp"
#include "linalg/stencil_op.hpp"
#include "sim_capture.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "vla/kernel_dag.hpp"

namespace v2d::linalg {
namespace {

using vla::Context;
using vla::VectorArch;
using vla::VlaExecMode;

// --- 1. plan determinism ------------------------------------------------------

TEST(PlanDeterminism, BuiltinDumpByteIdenticalAcrossRunsAndThreads) {
  const std::string first = fusion::describe_builtin_plans();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, fusion::describe_builtin_plans());
  for (const int threads : {1, 4}) {
    set_host_threads(threads);
    EXPECT_EQ(first, fusion::describe_builtin_plans())
        << "threads=" << threads;
  }
  set_host_threads(0);
}

TEST(PlanDeterminism, RuntimeChainPlansMatchCompileTimePlans) {
  // The same planner code runs at compile time (built-in template set) and
  // at runtime (tests, DAG annotation); both must emit the same plan.
  constexpr auto ct = fusion::plan_chain(fusion::make_daxpy2_chain());
  const auto chain = fusion::make_daxpy2_chain();
  const auto rt = fusion::plan_chain(chain);
  EXPECT_EQ(fusion::dump_plan(chain, ct), fusion::dump_plan(chain, rt));
  EXPECT_EQ(ct.ngroups, 1);
  EXPECT_EQ(ct.group[0].sig, rt.group[0].sig);
}

// --- 2. legality --------------------------------------------------------------

/// A node that writes a slot some Dot already in the group reads must not
/// fuse: the sweep would feed the reduction post-update values.
TEST(FusionLegality, WriteAfterReadAcrossReductionCutsTheGroup) {
  fusion::Chain c{};
  fusion::detail::set_name(c, "war");
  c.nslots = 3;
  c.nscal = 1;
  c.naccs = 1;
  c.live_out[1] = true;
  c.live_out[2] = true;
  // z ← m ⊙ r ; acc += Σ z·r ; r ← r + s·z  — the DAXPY writes slot 1,
  // which the Dot reads.
  fusion::detail::push(
      c, {fusion::Prim::Mul, 2, 0, 1, fusion::kNone, fusion::kNone,
          fusion::kNone});
  fusion::detail::push(
      c, {fusion::Prim::Dot, fusion::kNone, 2, 1, fusion::kNone,
          fusion::kNone, 0});
  fusion::detail::push(
      c, {fusion::Prim::Axpy, 1, 2, 1, fusion::kNone, 0, fusion::kNone});
  const auto p = fusion::plan_chain(c);
  ASSERT_EQ(p.ngroups, 2);
  EXPECT_EQ(p.group[0].nnodes, 2);  // Mul + Dot fuse
  EXPECT_EQ(p.group[1].first_node, 2);  // the aliasing writer starts anew
  EXPECT_EQ(p.group[1].nnodes, 1);
}

TEST(FusionLegality, ReductionOverUnstoredTemporaryIsRejected) {
  fusion::Chain c{};
  fusion::detail::set_name(c, "temp-dot");
  c.nslots = 3;
  c.naccs = 1;
  // z ← m ⊙ r with z NOT live-out, then acc += Σ z·r: the compensated
  // tail reads operand memory images, so a register-only z is illegal.
  fusion::detail::push(
      c, {fusion::Prim::Mul, 2, 0, 1, fusion::kNone, fusion::kNone,
          fusion::kNone});
  fusion::detail::push(
      c, {fusion::Prim::Dot, fusion::kNone, 2, 1, fusion::kNone,
          fusion::kNone, 0});
  EXPECT_THROW((void)fusion::plan_chain(c), Error);
}

TEST(FusionLegality, AnnotatorAppliesTheSameCuts) {
  double a, b, x, y;
  vla::DagRecorder rec;
  rec.op("hadamard", 64, {&a, &x}, {&y});
  rec.op("dot", 64, {&y, &x}, {});
  rec.op("daxpy", 64, {&y, &x}, {&x});  // writes x, which the dot read
  rec.barrier("allreduce");
  rec.op("matvec", 64, {&x, &b}, {&y});  // stencil: only heads a group
  rec.op("daxpy", 64, {&y, &b}, {&b});
  rec.op("daxpy", 32, {&y, &a}, {&a});  // different n: cannot join
  vla::KernelDag dag = rec.take("unit");
  fusion::annotate_dag(dag);
  ASSERT_EQ(dag.nodes.size(), 7u);
  EXPECT_EQ(dag.nodes[0].group, 0);
  EXPECT_EQ(dag.nodes[0].rule, "head");
  EXPECT_EQ(dag.nodes[1].group, 0);
  EXPECT_EQ(dag.nodes[1].rule, "reduction-tail");
  EXPECT_EQ(dag.nodes[2].group, 1);
  EXPECT_EQ(dag.nodes[2].rule, "war-cut");
  EXPECT_EQ(dag.nodes[3].group, -1);
  EXPECT_EQ(dag.nodes[3].rule, "barrier");
  EXPECT_EQ(dag.nodes[4].group, 2);
  EXPECT_EQ(dag.nodes[4].rule, "stencil-head");
  EXPECT_EQ(dag.nodes[5].group, 2);
  EXPECT_EQ(dag.nodes[5].rule, "elementwise");
  EXPECT_EQ(dag.nodes[6].group, 3);
  EXPECT_EQ(dag.nodes[6].rule, "head");
}

// --- shared solver scaffolding (mirrors test_fusion.cpp) ----------------------

struct Problem {
  grid::Grid2D g;
  grid::Decomposition d;
  StencilOperator A;

  Problem(int nx1, int nx2, int ns, int px1 = 1, int px2 = 1)
      : g(nx1, nx2, 0.0, 1.0, 0.0, 1.0),
        d(g, mpisim::CartTopology(px1, px2)),
        A(g, d, ns) {}
};

double zone_noise(std::uint64_t seed, int s, int i, int j) {
  Rng r(seed ^ (static_cast<std::uint64_t>(s) * 73856093u +
                static_cast<std::uint64_t>(i) * 19349663u +
                static_cast<std::uint64_t>(j) * 83492791u));
  return r.uniform();
}

void fill_operator(StencilOperator& A, std::uint64_t seed) {
  const auto& dec = A.decomp();
  for (int r = 0; r < dec.nranks(); ++r) {
    const grid::TileExtent& e = dec.extent(r);
    for (int s = 0; s < A.ns(); ++s) {
      auto cc = A.cc().view(r, s), cw = A.cw().view(r, s),
           ce = A.ce().view(r, s), cs = A.cs().view(r, s),
           cn = A.cn().view(r, s);
      for (int lj = 0; lj < e.nj; ++lj) {
        for (int li = 0; li < e.ni; ++li) {
          const int gi = e.i0 + li, gj = e.j0 + lj;
          const double w = 0.5 + zone_noise(seed, s, gi, gj);
          cw(li, lj) = -w;
          ce(li, lj) = -w;
          cs(li, lj) = -w;
          cn(li, lj) = -w;
          cc(li, lj) = 4.5 * w + 0.5;
        }
      }
    }
  }
  A.zero_boundary_coefficients();
}

void randomize(DistVector& v, std::uint64_t seed) {
  auto& f = v.field();
  for (int r = 0; r < f.decomp().nranks(); ++r) {
    const grid::TileExtent& e = f.decomp().extent(r);
    for (int s = 0; s < v.ns(); ++s) {
      auto view = f.view(r, s);
      for (int lj = 0; lj < e.nj; ++lj)
        for (int li = 0; li < e.ni; ++li)
          view(li, lj) =
              2.0 * zone_noise(seed, s, e.i0 + li, e.j0 + lj) - 1.0;
    }
  }
}

struct SolveOutcome {
  SolveStats stats;
  std::vector<double> x;
};

void expect_same_trajectory(const SolveOutcome& a, const SolveOutcome& b,
                            const std::string& label) {
  EXPECT_EQ(a.stats.iterations, b.stats.iterations) << label;
  EXPECT_EQ(a.stats.converged, b.stats.converged) << label;
  EXPECT_EQ(a.stats.global_reductions, b.stats.global_reductions) << label;
  EXPECT_EQ(a.stats.final_relative_residual, b.stats.final_relative_residual)
      << label;
  EXPECT_STREQ(a.stats.stop_reason, b.stats.stop_reason) << label;
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i)
    ASSERT_EQ(a.x[i], b.x[i]) << label << " zone " << i;
}

// --- 3. DAG capture -----------------------------------------------------------

TEST(DagCapture, RecordsFirstPlanIterationOncePerConfiguration) {
  Problem prob(24, 16, 1);
  fill_operator(prob.A, 1234);
  ExecContext ctx(VectorArch(512), nullptr, VlaExecMode::Native,
                  FuseMode::Plan);
  auto M = make_preconditioner("jacobi", ctx, prob.A);
  DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
  randomize(b, 99);
  x.fill(ctx, 0.0);
  CgSolver cg(prob.g, prob.d, 1);
  EXPECT_EQ(ctx.vctx.dag_store().size(), 0u);
  ASSERT_TRUE(cg.solve(ctx, prob.A, *M, x, b, {}).converged);
  ASSERT_EQ(ctx.vctx.dag_store().size(), 1u);
  const std::string key = dag_key("cg", "jacobi", 24 * 16, ctx.vctx);
  EXPECT_TRUE(ctx.vctx.dag_store().contains(key));

  // One CG iteration: matvec+dot head, twin update / precond tail, and the
  // collectives — all annotated.
  const std::string dump = ctx.vctx.dag_store().dump_all();
  EXPECT_NE(dump.find("matvec"), std::string::npos) << dump;
  EXPECT_NE(dump.find("rule=stencil-head"), std::string::npos) << dump;
  EXPECT_NE(dump.find("rule=reduction-tail"), std::string::npos) << dump;
  EXPECT_NE(dump.find("barrier:allreduce"), std::string::npos) << dump;

  // A second solve of the same configuration records nothing new.
  x.fill(ctx, 0.0);
  ASSERT_TRUE(cg.solve(ctx, prob.A, *M, x, b, {}).converged);
  EXPECT_EQ(ctx.vctx.dag_store().size(), 1u);
  EXPECT_EQ(dump, ctx.vctx.dag_store().dump_all());

  // A different configuration gets its own entry.
  BicgstabSolver bi(prob.g, prob.d, 1);
  x.fill(ctx, 0.0);
  ASSERT_TRUE(bi.solve(ctx, prob.A, *M, x, b, {}).converged);
  EXPECT_EQ(ctx.vctx.dag_store().size(), 2u);
}

TEST(DagCapture, OffAndOnModesNeverRecord) {
  for (const auto fuse : {FuseMode::Off, FuseMode::On}) {
    Problem prob(24, 16, 1);
    fill_operator(prob.A, 1234);
    ExecContext ctx(VectorArch(512), nullptr, VlaExecMode::Native, fuse);
    auto M = make_preconditioner("jacobi", ctx, prob.A);
    DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
    randomize(b, 99);
    x.fill(ctx, 0.0);
    CgSolver cg(prob.g, prob.d, 1);
    ASSERT_TRUE(cg.solve(ctx, prob.A, *M, x, b, {}).converged);
    EXPECT_EQ(ctx.vctx.dag_store().size(), 0u);
  }
}

/// Recording happens on the driving thread only, so the captured dump is
/// byte-identical at any host-thread count.
TEST(DagCapture, DumpInvariantUnderHostThreads) {
  std::string reference;
  for (const int threads : {1, 4}) {
    set_host_threads(threads);
    Problem prob(24, 16, 1, 2, 2);
    fill_operator(prob.A, 77);
    ExecContext ctx(VectorArch(512), nullptr, VlaExecMode::Native,
                    FuseMode::Plan);
    auto M = make_preconditioner("spai0", ctx, prob.A);
    DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
    randomize(b, 3);
    x.fill(ctx, 0.0);
    CgSolver cg(prob.g, prob.d, 1);
    ASSERT_TRUE(cg.solve(ctx, prob.A, *M, x, b, {}).converged);
    const std::string dump = ctx.vctx.dag_store().dump_all();
    if (reference.empty()) {
      reference = dump;
    } else {
      EXPECT_EQ(reference, dump) << "threads=" << threads;
    }
  }
  set_host_threads(0);
}

// --- 4. differential: plan vs off vs on ---------------------------------------

/// Every solver/precond/exec-mode/VL combination: --fuse plan reproduces
/// the off and on trajectories bit-for-bit.  VL 2048 leaves a 22-element
/// row as pure tail (vl = 32); VL 512 splits it 8+8+6.
TEST(PlannedSolvers, TrajectoryMatchesOffAndOnAcrossTheMatrix) {
  for (const auto mode : {VlaExecMode::Native, VlaExecMode::Interpret}) {
    for (const std::string precond : {"jacobi", "spai0", "mg"}) {
      for (const unsigned bits : {512u, 2048u}) {
        for (const bool use_cg : {true, false}) {
          SolveOutcome out[3];
          for (const auto fuse :
               {FuseMode::Off, FuseMode::On, FuseMode::Plan}) {
            Problem prob(22, 14, 1, 2, 1);
            fill_operator(prob.A, 4242);
            ExecContext ctx(VectorArch(bits), nullptr, mode, fuse);
            auto M = make_preconditioner(precond, ctx, prob.A);
            DistVector x(prob.g, prob.d, 1), b(prob.g, prob.d, 1);
            randomize(b, 11);
            x.fill(ctx, 0.0);
            SolveOptions opt;
            opt.rel_tol = 1e-9;
            auto& slot = out[static_cast<int>(fuse)];
            if (use_cg) {
              CgSolver s(prob.g, prob.d, 1);
              slot.stats = s.solve(ctx, prob.A, *M, x, b, opt);
            } else {
              BicgstabSolver s(prob.g, prob.d, 1);
              slot.stats = s.solve(ctx, prob.A, *M, x, b, opt);
            }
            slot.x = x.field().gather_global();
            EXPECT_TRUE(slot.stats.converged) << precond;
          }
          const std::string label =
              std::string(use_cg ? "cg/" : "bicgstab/") + precond + "/vl" +
              std::to_string(bits) +
              (mode == VlaExecMode::Native ? "/native" : "/interpret");
          const auto off = static_cast<int>(FuseMode::Off);
          const auto on = static_cast<int>(FuseMode::On);
          const auto plan = static_cast<int>(FuseMode::Plan);
          expect_same_trajectory(out[off], out[plan], label + " off/plan");
          expect_same_trajectory(out[on], out[plan], label + " on/plan");
        }
      }
    }
  }
}

/// End-to-end Simulation contract: plan fields are bit-identical to off
/// and on, plan clocks and full ledgers are bit-identical to on (same
/// composites, now planner-emitted), and plan beats off on every profile.
TEST(PlannedSolvers, SimulationPlanMatchesOnExactlyAndBeatsOff) {
  core::RunConfig cfg;
  cfg.nx1 = 48;
  cfg.nx2 = 24;
  cfg.ns = 2;
  cfg.steps = 2;
  cfg.compilers = {"cray", "gnu"};

  testutil::SimCapture caps[3];
  const char* modes[3] = {"off", "on", "plan"};
  for (int i = 0; i < 3; ++i) {
    cfg.fuse = modes[i];
    core::Simulation sim(cfg);
    sim.run();
    caps[i] = testutil::capture(sim);
  }

  // Fields/trajectory: all three identical.
  ASSERT_EQ(caps[0].field.size(), caps[2].field.size());
  EXPECT_EQ(std::memcmp(caps[0].field.data(), caps[2].field.data(),
                        caps[0].field.size() * sizeof(double)),
            0);
  EXPECT_EQ(caps[0].time, caps[2].time);
  EXPECT_EQ(caps[0].steps, caps[2].steps);

  // Clocks + ledgers: plan == on exactly.
  testutil::expect_captures_identical(caps[1], caps[2], "on-vs-plan");

  // And plan is strictly cheaper than off on every profile clock.
  for (std::size_t p = 0; p < caps[0].clocks.size(); ++p)
    for (std::size_t r = 0; r < caps[0].clocks[p].size(); ++r)
      EXPECT_LT(caps[2].clocks[p][r], caps[0].clocks[p][r])
          << "profile " << p << " rank " << r;
}

/// Mixed-fuse farm regression (memo-key separation): off/on/plan jobs
/// sharing one farm — and its shared per-VL count caches — reproduce
/// their solo runs exactly, and the plan job still equals the on job.
TEST(PlannedSolvers, MixedFuseFarmBitIdenticalToSolo) {
  core::RunConfig base;
  base.problem = "gaussian-pulse";
  base.nx1 = 48;
  base.nx2 = 24;
  base.steps = 2;
  base.dt = 0.05;
  base.nprx1 = 2;
  base.compilers = {"cray"};
  base.host_threads = 1;

  std::vector<farm::FarmJob> jobs;
  for (const char* fuse : {"off", "on", "plan", "plan"}) {
    core::RunConfig cfg = base;
    cfg.fuse = fuse;
    jobs.push_back({std::string("pulse-") + fuse +
                        (jobs.size() == 3 ? "-again" : ""),
                    cfg});
  }

  std::vector<testutil::SimCapture> solo;
  for (const auto& j : jobs) {
    core::Simulation sim(j.cfg);
    sim.run();
    solo.push_back(testutil::capture(sim));
  }

  farm::FarmOptions opt;
  opt.host_threads = 2;
  std::vector<testutil::SimCapture> farmed(jobs.size());
  opt.on_job_complete = [&farmed](std::size_t i, core::Simulation& sim) {
    farmed[i] = testutil::capture(sim);
  };
  farm::FarmScheduler sched(opt);
  for (const auto& j : jobs) sched.add(j);
  const farm::FarmSummary sum = sched.run();
  set_host_threads(0);
  ASSERT_EQ(sum.failed, 0u);

  for (std::size_t i = 0; i < jobs.size(); ++i)
    testutil::expect_captures_identical(solo[i], farmed[i], jobs[i].name);
  // The plan jobs equal the on job exactly — no cache cross-talk in
  // either direction.
  testutil::expect_captures_identical(farmed[1], farmed[2], "on-vs-plan");
  testutil::expect_captures_identical(farmed[2], farmed[3], "plan-vs-plan");
}

/// The fuse knob is pinned in checkpoints: a plan checkpoint refuses to
/// resume under a different mode.
TEST(PlannedSolvers, FuseModePinnedAcrossRestart) {
  const std::string path = ::testing::TempDir() + "/fuse_pin.h5l";
  core::RunConfig cfg;
  cfg.nx1 = 24;
  cfg.nx2 = 12;
  cfg.steps = 2;
  cfg.fuse = "plan";
  cfg.checkpoint_path = path;
  {
    core::Simulation sim(cfg);
    sim.run();
  }
  core::RunConfig wrong = cfg;
  wrong.fuse = "off";
  core::Simulation resumed(wrong);
  EXPECT_THROW(resumed.restart(path), Error);
  core::RunConfig right = cfg;
  right.steps = 3;
  core::Simulation ok(right);
  ok.restart(path);
  std::remove(path.c_str());
}

TEST(FuseModeNames, TriStateRoundTripAndError) {
  EXPECT_EQ(fuse_mode_from_name("off"), FuseMode::Off);
  EXPECT_EQ(fuse_mode_from_name("on"), FuseMode::On);
  EXPECT_EQ(fuse_mode_from_name("plan"), FuseMode::Plan);
  EXPECT_STREQ(fuse_mode_name(FuseMode::Plan), "plan");
  try {
    (void)fuse_mode_from_name("auto");
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("off|on|plan"), std::string::npos);
  }
}

}  // namespace
}  // namespace v2d::linalg
